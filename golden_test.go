package wfsim_test

// Golden regression tests for the datum-interning refactor: the string→ID
// rewrite of the workflow hot path is a pure performance change, so its
// outputs must be byte-identical to the pre-refactor tree. The fixtures
// under testdata/ were captured on the commit *before* the refactor:
//
//   - golden_fig1_render.txt        full fig1 experiment render text
//   - golden_kmeans256_trace.sha256 SHA-256 + byte length of the 256-block
//     K-means GPU stage trace CSV
//
// Any divergence means the refactor changed scheduling, placement or
// timing — not just speed — and is a bug.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"wfsim"
)

func TestGoldenKMeans256Trace(t *testing.T) {
	// Both queue implementations must reproduce the fixture byte for byte:
	// the eventQueue contract pops in exactly (at, seq) order, so pinning
	// the ladder — which the 256-block run would never select on its own —
	// proves the queue swap is invisible to results, not just usually so.
	for _, tc := range []struct {
		name  string
		queue wfsim.QueueKind
	}{
		{"auto", wfsim.QueueAuto},
		{"ladder", wfsim.QueueLadder},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := os.ReadFile("testdata/golden_kmeans256_trace.sha256")
			if err != nil {
				t.Fatal(err)
			}
			fields := strings.Fields(string(raw))
			if len(fields) != 2 {
				t.Fatalf("malformed golden digest file: %q", raw)
			}
			wantSum, wantLen := fields[0], fields[1]

			trace := kmeansTraceQ(t, tc.queue)
			sum := sha256.Sum256(trace)
			if got := hex.EncodeToString(sum[:]); got != wantSum || fmt.Sprint(len(trace)) != wantLen {
				t.Fatalf("256-block K-means trace diverged from pre-refactor golden:\n"+
					"  got  %s (%d bytes)\n  want %s (%s bytes)", got, len(trace), wantSum, wantLen)
			}
		})
	}
}

func TestGoldenFig1Render(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 runs the full block-size sweep; skipped in -short")
	}
	want, err := os.ReadFile("testdata/golden_fig1_render.txt")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := wfsim.ExperimentByID("fig1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background(), wfsim.NewRunner(0))
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(res.Render())
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := range wl {
			if i >= len(gl) || gl[i] != wl[i] {
				t.Fatalf("fig1 render diverges at line %d:\n  got  %q\n  want %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("fig1 render differs in length: %d vs %d lines", len(gl), len(wl))
	}
}
