package wfsim_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5): one benchmark per artifact, each running the full
// paper-scale experiment on the simulated Minotauro cluster and reporting
// paper-comparable metrics via b.ReportMetric. Run with:
//
//	go test -bench=. -benchmem
//
// Shape assertions live in internal/experiments (calibration_test.go,
// observations_test.go); these benches measure and report.

import (
	"context"
	"fmt"
	goruntime "runtime"
	"testing"

	"wfsim"
	"wfsim/internal/experiments"
	"wfsim/internal/metrics"
	"wfsim/internal/runner"
	"wfsim/internal/sched"
	"wfsim/internal/sim"
	"wfsim/internal/stats"
)

func runExperiment(b *testing.B, id string) experiments.Result {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration: memoization must not carry results
		// across iterations, or every iteration after the first is a no-op.
		res, err = e.Run(context.Background(), runner.New(0))
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkFig1 regenerates Figure 1: K-means stage speedups.
func BenchmarkFig1(b *testing.B) {
	res := runExperiment(b, "fig1").(*experiments.Fig1Result)
	b.ReportMetric(res.PFracSpeedup, "pfrac-speedup")
	b.ReportMetric(res.UserCodeSpeedup, "usrcode-speedup")
	b.ReportMetric(res.PTaskSpeedup, "ptask-speedup")
}

// BenchmarkFig7a regenerates Figure 7a: Matmul end-to-end analysis.
func BenchmarkFig7a(b *testing.B) {
	res := runExperiment(b, "fig7a").(*experiments.Fig7Result)
	max := 0.0
	for _, p := range res.Sweeps[0].Points {
		if !p.CPU.OOM && !p.GPU.OOM && p.PFracSpd > max {
			max = p.PFracSpd
		}
	}
	b.ReportMetric(max, "max-pfrac-speedup")
}

// BenchmarkFig7b regenerates Figure 7b: K-means end-to-end analysis.
func BenchmarkFig7b(b *testing.B) {
	res := runExperiment(b, "fig7b").(*experiments.Fig7Result)
	first := res.Sweeps[0].Points[0]
	b.ReportMetric(first.PTaskSpd, "finegrain-ptask-speedup")
}

// BenchmarkFig8 regenerates Figure 8: matmul_func vs add_func complexity.
func BenchmarkFig8(b *testing.B) {
	res := runExperiment(b, "fig8").(*experiments.Fig8Result)
	var mmMax, addMax float64
	for _, p := range res.Sweeps[0].Points {
		if p.CPU.OOM || p.GPU.OOM {
			continue
		}
		if s := experiments.Speedup(p.CPU.UserMean, p.GPU.UserMean); s > mmMax {
			mmMax = s
		}
		if s := experiments.AddFuncSpeedup(p); s > addMax {
			addMax = s
		}
	}
	b.ReportMetric(mmMax, "matmul_func-max-speedup")
	b.ReportMetric(addMax, "add_func-max-speedup")
}

// BenchmarkFig9a regenerates Figure 9a: the #clusters effect.
func BenchmarkFig9a(b *testing.B) {
	res := runExperiment(b, "fig9a").(*experiments.Fig9aResult)
	b.ReportMetric(res.Sweeps[0].Points[0].UserSpd, "speedup-k10")
	b.ReportMetric(res.Sweeps[2].Points[0].UserSpd, "speedup-k1000")
}

// BenchmarkFig9b regenerates Figure 9b: the data-skew (non-)effect, with
// real kernel execution.
func BenchmarkFig9b(b *testing.B) {
	res := runExperiment(b, "fig9b").(*experiments.Fig9bResult)
	var maxDelta float64
	for _, p := range res.Points {
		if d := p.Delta(); d > maxDelta {
			maxDelta = d
		}
	}
	b.ReportMetric(maxDelta*100, "max-skew-delta-%")
}

// BenchmarkFig10 regenerates Figure 10: storage × scheduler effects.
func BenchmarkFig10(b *testing.B) {
	b.Run("matmul", func(b *testing.B) { runExperiment(b, "fig10a") })
	b.Run("kmeans", func(b *testing.B) {
		res := runExperiment(b, "fig10b").(*experiments.Fig10Result)
		// Shared-vs-local aggregate ratio (CPU, FIFO).
		var local, shared float64
		for gi := range res.Grids {
			local += res.Points[0][gi].CPU.PTaskMean
			shared += res.Points[2][gi].CPU.PTaskMean
		}
		b.ReportMetric(shared/local, "shared/local-ratio")
	})
}

// BenchmarkFig11 regenerates Figure 11: the 192-sample Spearman matrix.
func BenchmarkFig11(b *testing.B) {
	res := runExperiment(b, "fig11").(*experiments.Fig11Result)
	b.ReportMetric(float64(res.Samples), "samples")
	if v, err := res.Matrix.At(experiments.FeatPTaskTime, experiments.FeatComplexity); err == nil {
		b.ReportMetric(v, "r-time-complexity")
	}
}

// BenchmarkFig12 regenerates Figure 12: the Matmul FMA generalizability
// experiment.
func BenchmarkFig12(b *testing.B) {
	res := runExperiment(b, "fig12").(*experiments.Fig8Result)
	var max float64
	for _, p := range res.Sweeps[0].Points {
		if !p.CPU.OOM && !p.GPU.OOM {
			if s := experiments.Speedup(p.CPU.UserMean, p.GPU.UserMean); s > max {
				max = s
			}
		}
	}
	b.ReportMetric(max, "fma-max-speedup")
}

// BenchmarkTable1 regenerates Table 1 (trivially: it is a taxonomy).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1")
}

// BenchmarkRunnerFig11 measures the trial-runner engine on the widest
// sweep in the suite (the 192-sample Figure 11 design) at serial vs
// all-core parallelism. The j1/jN ratio is the engine's wall-clock win;
// on a single-core machine the two coincide.
func BenchmarkRunnerFig11(b *testing.B) {
	for _, j := range []int{1, goruntime.NumCPU()} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, _, err := experiments.CollectFig11Cells(context.Background(), runner.New(j))
				if err != nil {
					b.Fatal(err)
				}
				if len(cells) == 0 {
					b.Fatal("no cells")
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks: the simulator itself must be fast
// enough to sweep hundreds of configurations.

// BenchmarkSimEngine measures raw event throughput of the DES engine.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j)*1e-3, func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimHandoff measures the cost of one park/resume cycle: a process
// blocking on Wait hands the baton off and takes it back — the dominant
// operation of every simulated task (queueing, I/O, compute stages are all
// Waits). Steady state should allocate nothing.
func BenchmarkSimHandoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		e.Go("h", func(p *sim.Proc) {
			for j := 0; j < 1000; j++ {
				p.Wait(1e-6)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimLinkChurn measures fair-share link membership churn: flows
// continually joining and leaving force a completion-event reschedule and a
// rate recomputation per change, the hot path of the storage/PCIe model.
func BenchmarkSimLinkChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		l := sim.NewLink(e, "net", 1e6, 0)
		for w := 0; w < 8; w++ {
			w := w
			e.Go("t", func(p *sim.Proc) {
				p.Wait(float64(w) * 1e-4) // staggered: constant join/leave churn
				for j := 0; j < 125; j++ {
					l.Transfer(p, 1000+float64(j))
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimServerContention measures FIFO queue pressure: many more
// processes than slots, so nearly every Acquire queues and every Release
// performs a direct handoff to the head waiter.
func BenchmarkSimServerContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.New()
		srv := sim.NewServer(e, "cpu", 4)
		for w := 0; w < 32; w++ {
			e.Go("t", func(p *sim.Proc) {
				for j := 0; j < 32; j++ {
					srv.Acquire(p)
					p.Wait(1e-5)
					srv.Release()
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimWorkflow measures a full paper-scale simulated K-means run
// (1285 tasks, 10 GB, 256 blocks, 5 iterations).
func BenchmarkSimWorkflow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
			Dataset: wfsim.Datasets.KMeansSmall, Grid: 256, Clusters: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wfsim.RunSim(wf, wfsim.SimConfig{Device: wfsim.GPU}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimWorkflowLarge measures the 100k-task scale point the datum
// interning work opens: a 1024-block K-means with 100 Lloyd iterations
// (102,500 tasks) under the pricier locality policy on node-local storage,
// where every placement decision scores per-datum residency. Before
// interning, string-keyed location maps made this configuration
// allocation-bound; with dense IDs it is a routine benchmark.
func BenchmarkSimWorkflowLarge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
			Dataset: wfsim.Datasets.KMeansSmall, Grid: 1024, Clusters: 10,
			Iterations: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := wfsim.RunSim(wf, wfsim.SimConfig{
			Device:  wfsim.GPU,
			Storage: wfsim.LocalDisk,
			Policy:  wfsim.DataLocality,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.SchedDecisions != 1024*100+100 {
			b.Fatalf("scheduled %d tasks, want %d", res.SchedDecisions, 1024*100+100)
		}
	}
}

// BenchmarkSimWorkflowHuge is the million-task scale point: a 4096-block
// K-means with 250 Lloyd iterations (1,024,250 tasks). At this scale the
// retained-records Collector alone would hold ~7M records, so the run
// streams metrics into an Aggregates sink (memory stays O(aggregate
// state), not O(tasks)) and recycles substrate storage through an arena
// across iterations; the engine's auto queue selection migrates to the
// ladder queue once the event population crosses the threshold.
func BenchmarkSimWorkflowHuge(b *testing.B) {
	b.ReportAllocs()
	var arena wfsim.Arena
	agg := metrics.NewAggregates()
	const wantTasks = 4096*250 + 250
	for i := 0; i < b.N; i++ {
		wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
			Dataset: wfsim.Datasets.KMeansSmall, Grid: 4096, Clusters: 10,
			Iterations: 250,
		})
		if err != nil {
			b.Fatal(err)
		}
		agg.Reset()
		res, err := wfsim.RunSim(wf, wfsim.SimConfig{
			Device:  wfsim.GPU,
			Storage: wfsim.LocalDisk,
			Policy:  wfsim.DataLocality,
			Sink:    agg,
			Arena:   &arena,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.SchedDecisions != wantTasks {
			b.Fatalf("scheduled %d tasks, want %d", res.SchedDecisions, wantTasks)
		}
		if res.Collector != nil {
			b.Fatal("streaming run retained a collector")
		}
	}
	b.ReportMetric(wantTasks, "tasks")
}

// BenchmarkDAGBuild isolates workflow construction — task generation,
// datum interning, dependency wiring — without simulating anything.
func BenchmarkDAGBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
			Dataset: wfsim.Datasets.KMeansSmall, Grid: 256, Clusters: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalityPlace isolates one locality placement decision: scoring
// a task's input residency across nodes. This is the per-task inner loop
// the interning refactor turned from string-map lookups into flat
// slice indexing; it must stay allocation-free.
func BenchmarkLocalityPlace(b *testing.B) {
	s, err := sched.New(sched.Locality, 0)
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 8
	loc := make([]int32, 64)
	for i := range loc {
		loc[i] = int32(i % nodes)
	}
	view := sched.View{
		NumNodes: nodes,
		Load:     make([]int, nodes),
		Locate: func(id int32) (int, bool) {
			if int(id) < len(loc) {
				return int(loc[id]), true
			}
			return 0, false
		},
	}
	ref := sched.TaskRef{ID: 1, Name: "partial_sum", Inputs: []sched.DataLoc{
		{ID: 3, Bytes: 64 << 20}, {ID: 11, Bytes: 64 << 20}, {ID: 42, Bytes: 1 << 10},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.Place(ref, &view); n < 0 || n >= nodes {
			b.Fatalf("placed on node %d", n)
		}
	}
}

// BenchmarkHEFTPlace isolates one earliest-finish-time placement: tallying
// input residency, then estimating finish time on every candidate node of
// a speed-skewed cluster. Like locality placement it must stay
// allocation-free — it runs once per task grant.
func BenchmarkHEFTPlace(b *testing.B) {
	s, err := sched.New(sched.HEFT, 0)
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 8
	loc := make([]int32, 64)
	for i := range loc {
		loc[i] = int32(i % nodes)
	}
	speed := make([]float64, nodes)
	for i := range speed {
		speed[i] = 1.0
		if i%2 == 1 {
			speed[i] = 0.6
		}
	}
	view := sched.View{
		NumNodes: nodes,
		Load:     make([]int, nodes),
		Speed:    speed,
		XferRate: 1 << 30,
		Locate: func(id int32) (int, bool) {
			if int(id) < len(loc) {
				return int(loc[id]), true
			}
			return 0, false
		},
	}
	ref := sched.TaskRef{ID: 1, Name: "partial_sum", Cost: 2.5, Inputs: []sched.DataLoc{
		{ID: 3, Bytes: 64 << 20}, {ID: 11, Bytes: 64 << 20}, {ID: 42, Bytes: 1 << 10},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.Place(ref, &view); n < 0 || n >= nodes {
			b.Fatalf("placed on node %d", n)
		}
	}
}

// BenchmarkWorkStealNext isolates one work-stealing dispatch: finding the
// idlest node, scanning the ready queue newest-first for a task homed on
// it, and falling back to stealing the oldest. The queue is refilled in
// batches outside the measured cost per pop so the scan always has depth.
func BenchmarkWorkStealNext(b *testing.B) {
	s, err := sched.New(sched.WorkSteal, 0)
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 8
	view := sched.View{
		NumNodes: nodes,
		Load:     make([]int, nodes),
		Locate:   func(id int32) (int, bool) { return -1, false },
	}
	s.(interface{ BindView(*sched.View) }).BindView(&view)
	const depth = 64
	var q sched.Queue
	fill := func() {
		for j := 0; j < depth; j++ {
			q.Push(sched.TaskRef{ID: j})
		}
	}
	fill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, ok := s.Next(&q)
		if !ok {
			b.Fatal("queue empty")
		}
		if q.Len() == 0 {
			b.StopTimer()
			fill()
			b.StartTimer()
		}
		_ = ref
	}
}

// BenchmarkRealMatmul measures the real blocked-multiply backend.
func BenchmarkRealMatmul(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wf, err := wfsim.BuildMatmul(wfsim.MatmulConfig{
			Dataset:     wfsim.Dataset{Name: "bench", Rows: 256, Cols: 256},
			Grid:        2,
			Materialize: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wfsim.RunLocal(wf, wfsim.LocalConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpearman measures the correlation kernel on 192 samples × 15
// features (the Figure 11 shape).
func BenchmarkSpearman(b *testing.B) {
	names := make([]string, 15)
	cols := make([][]float64, 15)
	for i := range cols {
		names[i] = string(rune('a' + i))
		cols[i] = make([]float64, 192)
		for j := range cols[i] {
			cols[i][j] = float64((j*31+i*17)%97) / 97
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.CorrelationMatrix(names, cols); err != nil {
			b.Fatal(err)
		}
	}
}
