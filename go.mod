module wfsim

go 1.22
