module wfsim

go 1.23
