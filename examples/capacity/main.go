// Capacity planning: the paper's §5.4.3 "toward automated design"
// direction made concrete. Given a workload (here: the 10 GB K-means),
// sweep the execution-parameter space — block dimension × processor type ×
// storage architecture × scheduling policy — on the simulator and report
// the best configurations, instead of the trial-and-error reruns the
// paper's introduction laments.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"sort"

	"wfsim"
	"wfsim/internal/dataset"
	"wfsim/internal/experiments"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
	"wfsim/internal/tables"
)

type candidate struct {
	cell experiments.Cell
	note string
}

func main() {
	ds := wfsim.Datasets.KMeansSmall
	fmt.Printf("capacity planning for K-means on %s over Minotauro\n", ds)
	fmt.Println("sweeping block dimension × processor × storage × scheduler ...")

	var results []candidate
	oom := 0
	for _, grid := range dataset.KMeansGrids {
		for _, dev := range []struct {
			kind wfsim.SimConfig
		}{{wfsim.SimConfig{Device: wfsim.CPU}}, {wfsim.SimConfig{Device: wfsim.GPU}}} {
			for _, sto := range []storage.Architecture{storage.Shared, storage.Local} {
				for _, pol := range []sched.Policy{sched.FIFO, sched.Locality} {
					cell, err := experiments.RunCell(experiments.CellConfig{
						Algorithm: experiments.KMeans,
						Dataset:   ds,
						Grid:      grid,
						Clusters:  10,
						Device:    dev.kind.Device,
						Storage:   sto,
						Policy:    pol,
					})
					if err != nil {
						log.Fatal(err)
					}
					if cell.OOM {
						oom++
						continue
					}
					results = append(results, candidate{cell: cell})
				}
			}
		}
	}

	sort.Slice(results, func(i, j int) bool {
		return results[i].cell.Makespan < results[j].cell.Makespan
	})

	t := tables.New(fmt.Sprintf("\nTop configurations (%d evaluated, %d OOM)", len(results)+oom, oom),
		"rank", "block (grid)", "device", "storage", "scheduler", "makespan (s)", "core util", "gpu util")
	for i, r := range results {
		if i >= 8 {
			break
		}
		c := r.cell
		t.AddRow(
			fmt.Sprint(i+1),
			fmt.Sprintf("%s (%s)", dataset.FormatBytes(c.BlockBytes), c.GridString),
			c.Device.String(),
			c.Storage.String(),
			c.Policy.String(),
			tables.FormatFloat(c.Makespan),
			fmt.Sprintf("%.0f%%", c.CoreUtil*100),
			fmt.Sprintf("%.0f%%", c.GPUUtil*100),
		)
	}
	fmt.Print(t.String())

	best := results[0].cell
	fmt.Printf("\nrecommendation: %s blocks (%s grid) on %s, %s, %s scheduling\n",
		dataset.FormatBytes(best.BlockBytes), best.GridString,
		best.Device, best.Storage, best.Policy)
	fmt.Println("\nNote how no single factor decides the winner — the paper's core claim:")
	fmt.Println("block dimension, processor type, storage and scheduling interact.")
}
