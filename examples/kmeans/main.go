// Distributed K-means: the paper's partially parallelizable workload
// (§4.4.4). Clusters real blob data with the local backend, reports
// convergence, then reproduces the paper's Figure 1 motivating numbers on
// the simulated cluster: GPU gains that shine per-kernel, shrink per-task,
// and invert end-to-end.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"wfsim"
	"wfsim/internal/apps/kmeans"
	"wfsim/internal/cluster"
	"wfsim/internal/experiments"
	"wfsim/internal/tables"
)

func main() {
	// --- Real clustering of blob data.
	cfg := kmeans.Config{
		Dataset:     wfsim.Dataset{Name: "blobs", Rows: 40_000, Cols: 8},
		Grid:        8,
		Clusters:    6,
		Iterations:  8,
		Materialize: true,
	}
	wf, err := wfsim.BuildKMeans(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real run: %d samples, %d blocks, %d clusters, %d iterations (DAG height %d)\n",
		cfg.Dataset.Rows, cfg.Grid, cfg.Clusters, cfg.Iterations, wf.Graph.MaxHeight())
	res, err := wfsim.RunLocal(wf, wfsim.LocalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %v; inertia per iteration:\n", res.Elapsed)
	var firstInertia float64
	for it := 1; it <= cfg.Iterations; it++ {
		in, err := kmeans.Inertia(res.Store, cfg, kmeans.KeyCenters(it))
		if err != nil {
			log.Fatal(err)
		}
		if it == 1 {
			firstInertia = in
		}
		fmt.Printf("  iter %2d: %14.1f %s\n", it, in, tables.Bar(in, firstInertia, 40))
	}

	// --- The paper's Figure 1 on the simulator.
	fmt.Println("\nsimulated 10 GB K-means, 256 tasks, on Minotauro (cf. paper Figure 1):")
	single := experiments.CellConfig{
		Algorithm: experiments.KMeans,
		Dataset:   wfsim.Datasets.KMeansSmall,
		Grid:      256, Clusters: 10, Iterations: 1,
		Cluster: cluster.Spec{Name: "single", Nodes: 1, CoresPerNode: 1, GPUsPerNode: 1},
	}
	sCPU, sGPU, err := experiments.RunPair(single)
	if err != nil {
		log.Fatal(err)
	}
	full := single
	full.Cluster = cluster.Spec{}
	full.Iterations = 0
	pCPU, pGPU, err := experiments.RunPair(full)
	if err != nil {
		log.Fatal(err)
	}
	t := tables.New("", "stage", "GPU speedup over CPU")
	t.AddRow("parallel fraction (single task)",
		tables.FormatSpeedup(experiments.Speedup(sCPU.PFracMean, sGPU.PFracMean)))
	t.AddRow("task user code (single task)",
		tables.FormatSpeedup(experiments.Speedup(sCPU.UserMean, sGPU.UserMean)))
	t.AddRow("parallel tasks (256 tasks)",
		tables.FormatSpeedup(experiments.Speedup(pCPU.PTaskMean, pGPU.PTaskMean)))
	fmt.Print(t.String())
	fmt.Println("\nThe kernel's 5.7x gain shrinks to ~1.2x once the serial fraction and")
	fmt.Println("CPU-GPU transfer are charged, and inverts end-to-end because only 32")
	fmt.Println("GPU tasks run in parallel against 128 CPU tasks — the paper's headline.")
}
