// Distributed array expressions: the dislib-style programming layer of the
// paper's §3.5. Builds G = (Aᵀ·A)·0.5 + A with block-partitioned arrays,
// runs it for real, and shows how the same expression's DAG projects onto
// the simulated cluster for both block-size extremes — the thread-level vs
// task-level parallelism trade-off in one program.
//
//	go run ./examples/expressions
package main

import (
	"fmt"
	"log"

	"wfsim"
	"wfsim/internal/tables"
)

func main() {
	// --- Real execution at host scale.
	ctx := wfsim.NewArrayContext("expressions", true)
	ds := wfsim.Dataset{Name: "A", Rows: 240, Cols: 240}
	a, err := ctx.Random(ds, 3, 3, wfsim.NewGenerator(11))
	if err != nil {
		log.Fatal(err)
	}
	at, err := a.Transpose()
	if err != nil {
		log.Fatal(err)
	}
	gram, err := at.MatMul(a)
	if err != nil {
		log.Fatal(err)
	}
	half, err := gram.Scale(0.5)
	if err != nil {
		log.Fatal(err)
	}
	g, err := half.Add(a)
	if err != nil {
		log.Fatal(err)
	}
	total, err := g.Sum()
	if err != nil {
		log.Fatal(err)
	}

	wf := ctx.Workflow()
	fmt.Printf("expression DAG: %d tasks, width %d, height %d\n",
		wf.Graph.Len(), wf.Graph.MaxWidth(), wf.Graph.MaxHeight())
	fmt.Println("  ", wf.Graph.Summary())

	res, err := wfsim.RunLocal(wf, wfsim.LocalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal run in %v; Σ((AᵀA)/2 + A) = %.2f\n", res.Elapsed, res.Store.MustGet(total).Data[0])

	// --- The same expression at paper scale, fine vs coarse blocks.
	fmt.Println("\nsimulated on Minotauro with the 8 GB dataset:")
	t := tables.New("", "grid", "tasks", "DAG width", "CPU makespan (s)", "GPU makespan (s)")
	for _, grid := range []int64{16, 4} {
		simCtx := wfsim.NewArrayContext("expressions-sim", false)
		sa, err := simCtx.Random(wfsim.Datasets.MatmulSmall, grid, grid, nil)
		if err != nil {
			log.Fatal(err)
		}
		sat, err := sa.Transpose()
		if err != nil {
			log.Fatal(err)
		}
		sg, err := sat.MatMul(sa)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sg.Sum(); err != nil {
			log.Fatal(err)
		}
		swf := simCtx.Workflow()
		makespan := func(dev wfsim.SimConfig) string {
			r, err := wfsim.RunSim(swf, dev)
			if err != nil {
				return "OOM"
			}
			return tables.FormatFloat(r.Makespan)
		}
		t.AddRow(fmt.Sprintf("%dx%d", grid, grid),
			fmt.Sprint(swf.Graph.Len()),
			fmt.Sprint(swf.Graph.MaxWidth()),
			makespan(wfsim.SimConfig{Device: wfsim.CPU}),
			makespan(wfsim.SimConfig{Device: wfsim.GPU}))
	}
	fmt.Print(t.String())
	fmt.Println("\nCoarse blocks hand the GPU big kernels but strand task-level")
	fmt.Println("parallelism; fine blocks do the reverse — the paper's central trade-off.")
}
