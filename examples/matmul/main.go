// Distributed blocked matrix multiplication: the paper's fully
// parallelizable workload (§4.4.4). Runs a real block-level multiply on
// the local backend, verifies it against a naive product, then projects
// the 8 GB paper-scale configuration onto the simulated Minotauro cluster
// to show where GPU acceleration pays off (Figures 7a and 8).
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"wfsim"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/dataset"
	"wfsim/internal/experiments"
	"wfsim/internal/tables"
)

func main() {
	// --- Real execution at host scale: 512x512 over a 4x4 grid.
	real := matmul.Config{
		Dataset:     wfsim.Dataset{Name: "demo", Rows: 512, Cols: 512},
		Grid:        4,
		Materialize: true,
		Generator:   wfsim.NewGenerator(7),
	}
	wf, err := wfsim.BuildMatmul(real)
	if err != nil {
		log.Fatal(err)
	}
	counts := wf.Graph.CountByName()
	fmt.Printf("real run: %d matmul_func + %d add_func tasks (DAG width %d, height %d)\n",
		counts["matmul_func"], counts["add_func"], wf.Graph.MaxWidth(), wf.Graph.MaxHeight())
	res, err := wfsim.RunLocal(wf, wfsim.LocalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := matmul.Reference(wf, res.Store, real); err != nil {
		log.Fatalf("verification FAILED: %v", err)
	}
	fmt.Printf("verified against naive product in %v\n\n", res.Elapsed)

	// --- Paper-scale projection: 8 GB dataset on Minotauro, CPU vs GPU.
	fmt.Println("simulated 8 GB Matmul on Minotauro (cf. paper Figure 7a):")
	t := tables.New("", "block size", "grid", "CPU time (s)", "GPU time (s)", "GPU speedup", "")
	grids := dataset.MatmulGrids
	for i := len(grids) - 1; i >= 0; i-- {
		cpu, gpu, err := experiments.RunPair(experiments.CellConfig{
			Algorithm: experiments.Matmul,
			Dataset:   wfsim.Datasets.MatmulSmall,
			Grid:      grids[i],
		})
		if err != nil {
			log.Fatal(err)
		}
		note, gpuS, spd := "", "-", "-"
		if gpu.OOM {
			note = "GPU OOM (3 blocks > 12 GB)"
		} else {
			gpuS = tables.FormatFloat(gpu.Makespan)
			spd = tables.FormatSpeedup(experiments.Speedup(cpu.Makespan, gpu.Makespan))
		}
		t.AddRow(dataset.FormatBytes(cpu.BlockBytes), cpu.GridString,
			tables.FormatFloat(cpu.Makespan), gpuS, spd, note)
	}
	fmt.Print(t.String())
	fmt.Println("\nThe O(N³) matmul_func gains grow with block size until the 12 GB GPU")
	fmt.Println("memory bound; the O(N²) add_func stays communication-dominated (Figure 8).")
}
