// Quickstart: define a tiny task-based workflow with the public API, run
// it for real on the local backend, then project it onto the paper's
// Minotauro cluster with the simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"wfsim"
)

func main() {
	// A three-stage pipeline over named data: produce -> square -> sum.
	// Dependencies are inferred from the data directions, PyCOMPSs-style.
	wf := wfsim.NewWorkflow("quickstart")

	const n = 1 << 16
	prof := wfsim.Profile{
		SerialOps:      1000,
		ParallelOps:    4 * n,
		Threads:        n,
		BytesIn:        8 * n,
		BytesOut:       8 * n,
		DeviceMemBytes: 16 * n,
		HostMemBytes:   16 * n,
	}

	wf.SetSize("v", 8*n)
	wf.SetSize("v2", 8*n)
	wf.SetSize("total", 8)

	wf.AddTask("produce", wfsim.TaskSpec{
		Profile: prof,
		Exec: func(s *wfsim.Store) error {
			b := newVector(n)
			for i := range b.Data {
				b.Data[i] = float64(i % 100)
			}
			s.Put("v", b)
			return nil
		},
	}, wfsim.Param{Data: "v", Dir: wfsim.Out})

	wf.AddTask("square", wfsim.TaskSpec{
		Profile: prof,
		Exec: func(s *wfsim.Store) error {
			in := s.MustGet("v")
			out := newVector(n)
			for i, v := range in.Data {
				out.Data[i] = v * v
			}
			s.Put("v2", out)
			return nil
		},
	}, wfsim.Param{Data: "v", Dir: wfsim.In}, wfsim.Param{Data: "v2", Dir: wfsim.Out})

	wf.AddTask("sum", wfsim.TaskSpec{
		Profile: wfsim.Profile{SerialOps: n},
		Exec: func(s *wfsim.Store) error {
			in := s.MustGet("v2")
			total := newVector(1)
			for _, v := range in.Data {
				total.Data[0] += v
			}
			s.Put("total", total)
			return nil
		},
	}, wfsim.Param{Data: "v2", Dir: wfsim.In}, wfsim.Param{Data: "total", Dir: wfsim.Out})

	fmt.Printf("DAG: %d tasks, width %d, height %d\n", wf.Graph.Len(), wf.Graph.MaxWidth(), wf.Graph.MaxHeight())
	fmt.Println("    ", wf.Graph.Summary())
	fmt.Println("\nGraphviz DOT:")
	if err := wf.Graph.DOT(os.Stdout, "quickstart"); err != nil {
		log.Fatal(err)
	}

	// Real execution.
	local, err := wfsim.RunLocal(wf, wfsim.LocalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal run: Σ v² = %.0f in %v\n", local.Store.MustGet("total").Data[0], local.Elapsed)

	// Simulated execution on the paper's cluster, CPU vs GPU.
	for _, dev := range []struct {
		name string
		kind wfsim.SimConfig
	}{
		{"CPU", wfsim.SimConfig{Device: wfsim.CPU}},
		{"GPU", wfsim.SimConfig{Device: wfsim.GPU}},
	} {
		res, err := wfsim.RunSim(wf, dev.kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated on Minotauro (%s tasks): makespan %.6fs, core util %.1f%%\n",
			dev.name, res.Makespan, res.CoreUtilization*100)
	}
}

func newVector(n int64) *wfsim.Block {
	return wfsim.NewBlock(wfsim.BlockID{}, n, 1)
}
