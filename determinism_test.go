package wfsim_test

// Determinism regression tests for the DES substrate: the simulator pools
// event nodes, reuses goroutines and reschedules events in place on the live
// heap, and none of it may perturb results. A paper-scale run executed twice
// must produce identical metrics traces, record for record.

import (
	"bytes"
	"testing"

	"wfsim"
)

func kmeansTrace(t *testing.T) []byte {
	return kmeansTraceQ(t, wfsim.QueueAuto)
}

// kmeansTraceQ parameterizes the trace run by event-queue kind: the queue
// choice must never leak into results, so golden tests run it both ways.
func kmeansTraceQ(t *testing.T, q wfsim.QueueKind) []byte {
	t.Helper()
	wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
		Dataset: wfsim.Datasets.KMeansSmall, Grid: 256, Clusters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfsim.RunSim(wf, wfsim.SimConfig{Device: wfsim.GPU, EventQueue: q})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Collector.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func kmeansFaultTrace(t *testing.T) ([]byte, wfsim.FaultStats) {
	t.Helper()
	wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
		Dataset: wfsim.Datasets.KMeansSmall, Grid: 256, Clusters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfsim.RunSim(wf, wfsim.SimConfig{
		Device: wfsim.GPU, Storage: wfsim.LocalDisk,
		Faults: wfsim.FaultConfig{
			// Calibrated against the ~54 s fault-free local-disk makespan:
			// several crashes and dozens of transient failures per run, while
			// staying subcritical — lineage recovery inflates the makespan,
			// which buys more crashes, and below ~300 s MTBF the feedback
			// diverges on this workload.
			Seed: 7, NodeMTBF: 500, NodeMTTR: 20,
			TaskFailProb: 0.02, MaxAttempts: 10,
			StragglerMTBF: 1000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Collector.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Faults
}

// TestSimDeterminismKMeans256 runs the 256-block K-means simulation twice
// and demands byte-identical stage-record traces: same tasks, same
// placements, same timestamps, in the same order.
func TestSimDeterminismKMeans256(t *testing.T) {
	a, b := kmeansTrace(t), kmeansTrace(t)
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := range la {
			if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("trace diverges at line %d:\n  first:  %s\n  second: %s",
					i+1, la[i], lb[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(la), len(lb))
	}
}

// TestSimDeterminismKMeans256Faulty repeats the byte-identity demand with
// failure injection live: crashes, lineage recomputation, retries and
// straggler episodes all ride the engine's virtual clock and seeded PCG
// streams, so a faulty run must replay exactly.
func TestSimDeterminismKMeans256Faulty(t *testing.T) {
	a, fa := kmeansFaultTrace(t)
	b, fb := kmeansFaultTrace(t)
	if fa.Crashes == 0 || fa.TransientFailures == 0 {
		t.Fatalf("fault schedule too quiet to test determinism: %+v", fa)
	}
	if fa != fb {
		t.Fatalf("fault stats diverged:\n  first:  %+v\n  second: %+v", fa, fb)
	}
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := range la {
			if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("faulty trace diverges at line %d:\n  first:  %s\n  second: %s",
					i+1, la[i], lb[i])
			}
		}
		t.Fatalf("faulty traces differ in length: %d vs %d lines", len(la), len(lb))
	}
}
