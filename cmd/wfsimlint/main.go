// Command wfsimlint is wfsim's determinism multichecker: it applies the
// internal/lint analyzers — maporder, walltime, seedrand, floatreduce —
// to the module and exits non-zero on any finding. CI runs it as the
// Lint step; locally:
//
//	go run ./cmd/wfsimlint ./...            # whole module
//	go run ./cmd/wfsimlint ./internal/sim   # one package
//	go run ./cmd/wfsimlint -tests=false ./...
//	go run ./cmd/wfsimlint -help            # rule documentation
//
// Findings print as file:line:col: rule: message. See DESIGN.md
// ("Determinism invariants") for each rule's rationale and the
// //wfsimlint:allow escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wfsim/internal/lint"
	"wfsim/internal/lint/analysis"
)

func main() {
	tests := flag.Bool("tests", true, "also lint _test.go files (walltime and seedrand always skip them)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	byName := map[string]*analysis.Analyzer{}
	for _, az := range lint.Analyzers {
		byName[az.Name] = az
	}
	active := lint.Analyzers
	if *rules != "" {
		active = active[:0:0]
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r == "" {
				continue
			}
			az, ok := byName[r]
			if !ok {
				fmt.Fprintf(os.Stderr, "wfsimlint: unknown rule %q\n", r)
				os.Exit(2)
			}
			active = append(active, az)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsimlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, active, *tests, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsimlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wfsimlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: wfsimlint [-tests=bool] [-rules r1,r2] [./... | ./pkg/path ...]\n\nrules:\n")
	for _, az := range lint.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", az.Name, az.Doc)
	}
	flag.PrintDefaults()
}
