// Command wfsimlint is wfsim's determinism multichecker: it applies the
// internal/lint analyzers — floatreduce, hotalloc, maporder, seedrand,
// simblock, walltime — to the module and exits non-zero on any finding
// not absorbed by the committed baseline. CI runs it as the Lint step;
// locally:
//
//	go run ./cmd/wfsimlint ./...            # whole module
//	go run ./cmd/wfsimlint ./internal/sim   # one package
//	go run ./cmd/wfsimlint -json ./...      # machine-readable findings
//	go run ./cmd/wfsimlint -write-baseline  # accept current findings as debt
//	go run ./cmd/wfsimlint -help            # rule documentation
//
// Findings print as file:line:col: rule: message; baseline-absorbed
// findings are suffixed "(baselined)" and do not fail the run. See
// DESIGN.md ("Determinism invariants") for each rule's rationale, the
// //wfsimlint:allow escape hatch, and the baseline workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wfsim/internal/lint"
	"wfsim/internal/lint/analysis"
)

// jsonDiag is the -json output shape, one object per finding.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	tests := flag.Bool("tests", true, "also lint _test.go files (walltime and seedrand always skip them)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baseline := flag.String("baseline", "", "suppression baseline file (default: <modroot>/"+lint.BaselineFile+")")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to the baseline file and exit")
	flag.Usage = usage
	flag.Parse()

	byName := map[string]*analysis.Analyzer{}
	for _, az := range lint.Analyzers {
		byName[az.Name] = az
	}
	active := lint.Analyzers
	if *rules != "" {
		active = active[:0:0]
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r == "" {
				continue
			}
			az, ok := byName[r]
			if !ok {
				fmt.Fprintf(os.Stderr, "wfsimlint: unknown rule %q\n", r)
				os.Exit(2)
			}
			active = append(active, az)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsimlint:", err)
		os.Exit(2)
	}

	if *writeBaseline {
		// Findings are collected baseline-free over the whole module so
		// the written file is complete, not relative to prior debt.
		res, err := lint.RunModule(cwd, active, *tests, nil, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfsimlint:", err)
			os.Exit(2)
		}
		path := *baseline
		if path == "" {
			path = filepath.Join(res.ModRoot, lint.BaselineFile)
		}
		if err := os.WriteFile(path, []byte(lint.FormatBaseline(res.ModRoot, res.Diagnostics)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wfsimlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wfsimlint: wrote %d finding(s) to %s\n", len(res.Diagnostics), path)
		return
	}

	res, err := lint.RunModule(cwd, active, *tests, patterns, resolveBaseline(cwd, *baseline))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsimlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := []jsonDiag{} // encode [] rather than null when clean
		for _, d := range res.Diagnostics {
			out = append(out, jsonDiag{
				File:       relTo(res.ModRoot, d.Position.Filename),
				Line:       d.Position.Line,
				Column:     d.Position.Column,
				Rule:       d.Rule,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "wfsimlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	// Stale entries are only meaningful on a whole-module, all-rules run:
	// a narrowed run legitimately leaves entries for unvisited packages
	// unmatched, and a -rules subset leaves every other rule's entries
	// unmatched.
	if *rules == "" && len(patterns) == 1 && patterns[0] == "./..." {
		for _, s := range res.Stale {
			fmt.Fprintf(os.Stderr, "wfsimlint: stale baseline entry (no longer found): %s\n", s)
		}
	}
	if n := res.Failing(); n > 0 {
		fmt.Fprintf(os.Stderr, "wfsimlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// resolveBaseline picks the baseline path: the explicit flag, or the
// conventional file at the module root of cwd's module (found by walking
// up to go.mod). Missing files load as empty baselines, so defaulting is
// always safe.
func resolveBaseline(cwd, flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	dir := cwd
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, lint.BaselineFile)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return filepath.Join(cwd, lint.BaselineFile)
		}
		dir = parent
	}
}

// relTo renders path relative to root when possible, slash-separated, for
// stable JSON output across machines.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: wfsimlint [-tests=bool] [-rules r1,r2] [-json] [-baseline file] [-write-baseline] [./... | ./pkg/path ...]\n\nrules:\n")
	for _, az := range lint.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", az.Name, az.Doc)
	}
	flag.PrintDefaults()
}
