// Command wfsim runs the paper's experiments and utilities from the
// command line.
//
// Usage:
//
//	wfsim list                         list available experiments
//	wfsim run [-j N] <id> [...]        run experiments by ID (fig1, fig7a, ... table1, all)
//	wfsim dag <kmeans|matmul|fma> [-grid g] [-iters n]
//	                                   emit the workload DAG as Graphviz DOT (Figure 6)
//	wfsim sweep [-alg kmeans|matmul] [-dataset small|large|tiny]
//	                                   print a block-size sweep (CPU vs GPU)
//	wfsim trace [-grid g] [-out file]  run K-means and dump a Paraver-like trace
//
// The CLI reports real elapsed time to humans, so it is wall-clock layer
// by design and exempt from the walltime determinism lint.
//
//wfsimlint:wallclock
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/dataset"
	"wfsim/internal/experiments"
	"wfsim/internal/faults"
	"wfsim/internal/model"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/storage"
	"wfsim/internal/tables"

	"wfsim/internal/costmodel"
)

// simFlags registers the storage and fault-injection knobs shared by the
// trace and gantt commands and returns a builder that assembles their part
// of the SimConfig after parsing.
func simFlags(fs *flag.FlagSet) func(*runtime.SimConfig) {
	arch := fs.String("storage", "shared", "storage architecture: shared or local")
	seed := fs.Uint64("fault-seed", 1, "failure-injection seed")
	mtbf := fs.Float64("fault-mtbf", 0, "mean time between node crashes per node, virtual s (0 = off)")
	mttr := fs.Float64("fault-mttr", 0, "mean node repair time, virtual s (default mtbf/10)")
	prob := fs.Float64("fault-p", 0, "transient failure probability per task attempt (0 = off)")
	slow := fs.Float64("fault-straggler-mtbf", 0, "mean time between straggler episodes per node, virtual s (0 = off)")
	return func(cfg *runtime.SimConfig) {
		if *arch == "local" {
			cfg.Storage = storage.Local
		}
		cfg.Faults = faults.Config{
			Seed: *seed, NodeMTBF: *mtbf, NodeMTTR: *mttr,
			TaskFailProb: *prob, StragglerMTBF: *slow,
		}
	}
}

// faultSummary prints one line of failure-injection accounting when it is
// enabled; silent otherwise so fault-free output stays byte-stable.
func faultSummary(cfg runtime.SimConfig, res *runtime.SimResult) {
	if !cfg.Faults.Enabled() {
		return
	}
	f := res.Faults
	fmt.Fprintf(os.Stderr,
		"faults: %d crashes, %d requeues, %d retries, %d blocks lost, %d recomputes, %d restages, wasted %.2fs, recovery %.2fs\n",
		f.Crashes, f.CrashRequeues, f.Retries, f.BlocksLost,
		f.LineageRecomputes, f.InputRestages, f.WastedWork, f.RecoveryWork)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "dag":
		err = cmdDAG(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	case "gantt":
		err = cmdGantt(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "wfsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  wfsim list                       list available experiments
  wfsim run [-j N] <id>... | all   run experiments (fig1 fig7a fig7b fig8 fig9a fig9b fig10a fig10b fig11 fig12 table1)
                                   -j sets trial parallelism (0 = all CPUs); Ctrl-C cancels
  wfsim dag <kmeans|matmul|fma>    emit a workload DAG as Graphviz DOT
  wfsim sweep                      block-size sweep, CPU vs GPU
  wfsim trace                      dump a Paraver-like trace of a K-means run
  wfsim advise                     analytic CPU-vs-GPU recommendation for a workload
  wfsim gantt                      ASCII per-core timeline of a simulated run

trace and gantt accept -storage shared|local and deterministic failure
injection: -fault-seed -fault-mtbf -fault-mttr -fault-p -fault-straggler-mtbf`)
}

func cmdList() error {
	t := tables.New("Experiments", "id", "title")
	for _, e := range experiments.All() {
		t.AddRow(e.ID, e.Title)
	}
	fmt.Print(t.String())
	return nil
}

func cmdRun(args []string) error {
	asJSON := false
	workers := 0
	var ids []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			asJSON = true
		case a == "-j" || a == "--j":
			i++
			if i >= len(args) {
				return fmt.Errorf("run: -j needs a worker count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("run: -j %q: %w", args[i], err)
			}
			workers = n
		case strings.HasPrefix(a, "-j="):
			n, err := strconv.Atoi(strings.TrimPrefix(a, "-j="))
			if err != nil {
				return fmt.Errorf("run: %q: %w", a, err)
			}
			workers = n
		default:
			ids = append(ids, a)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment id (try `wfsim list`)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// One engine across all requested experiments: identical factor
	// combinations appearing in several figures simulate once.
	eng := runner.New(workers)
	type jsonOut struct {
		ID     string             `json:"id"`
		Title  string             `json:"title"`
		Result experiments.Result `json:"result"`
	}
	var outs []jsonOut
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := e.Run(ctx, eng)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if asJSON {
			outs = append(outs, jsonOut{ID: e.ID, Title: e.Title, Result: res})
			continue
		}
		fmt.Printf("==== %s — %s (%v)\n\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), res.Render())
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(outs)
	}
	return nil
}

func cmdDAG(args []string) error {
	fs := flag.NewFlagSet("dag", flag.ContinueOnError)
	grid := fs.Int64("grid", 4, "grid dimension g")
	iters := fs.Int("iters", 3, "K-means iterations")
	if len(args) == 0 {
		return fmt.Errorf("dag: missing workload (kmeans|matmul|fma)")
	}
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var wf *runtime.Workflow
	var err error
	switch args[0] {
	case "kmeans":
		wf, err = kmeans.Build(kmeans.Config{
			Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10, Iterations: *iters,
		})
	case "matmul":
		wf, err = matmul.Build(matmul.Config{Dataset: dataset.MatmulSmall, Grid: *grid})
	case "fma":
		wf, err = matmul.Build(matmul.Config{Dataset: dataset.MatmulSmall, Grid: *grid, Variant: matmul.FMA})
	default:
		return fmt.Errorf("dag: unknown workload %q", args[0])
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# %s: %d tasks, width %d, height %d\n# %s\n",
		args[0], wf.Graph.Len(), wf.Graph.MaxWidth(), wf.Graph.MaxHeight(), wf.Graph.Summary())
	return wf.Graph.DOT(os.Stdout, fmt.Sprintf("%s grid %d", args[0], *grid))
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	alg := fs.String("alg", "kmeans", "algorithm: kmeans or matmul")
	dsName := fs.String("dataset", "small", "dataset: tiny, small or large")
	clusters := fs.Int64("clusters", 10, "K-means clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var a experiments.Algorithm
	var ds dataset.Dataset
	var grids []int64
	switch *alg {
	case "kmeans":
		a = experiments.KMeans
		grids = dataset.KMeansGrids
		switch *dsName {
		case "tiny":
			ds = dataset.KMeansTiny
		case "large":
			ds = dataset.KMeansLarge
		default:
			ds = dataset.KMeansSmall
		}
	case "matmul":
		a = experiments.Matmul
		grids = dataset.MatmulGrids
		switch *dsName {
		case "tiny":
			ds = dataset.MatmulTiny
		case "large":
			ds = dataset.MatmulLarge
		default:
			ds = dataset.MatmulSmall
		}
	default:
		return fmt.Errorf("sweep: unknown algorithm %q", *alg)
	}
	t := tables.New(fmt.Sprintf("Sweep: %s on %s", a, ds),
		"block size", "grid", "CPU p.tasks (s)", "GPU p.tasks (s)", "GPU speedup", "")
	for i := len(grids) - 1; i >= 0; i-- {
		cpu, gpu, err := experiments.RunPair(experiments.CellConfig{
			Algorithm: a, Dataset: ds, Grid: grids[i], Clusters: *clusters,
		})
		if err != nil {
			return err
		}
		note := ""
		switch {
		case cpu.OOM && gpu.OOM:
			note = "CPU GPU OOM"
		case gpu.OOM:
			note = "GPU OOM"
		}
		spd := "-"
		cpuS, gpuS := "-", "-"
		if !cpu.OOM {
			cpuS = tables.FormatFloat(cpu.PTaskMean)
		}
		if !gpu.OOM {
			gpuS = tables.FormatFloat(gpu.PTaskMean)
		}
		if !cpu.OOM && !gpu.OOM {
			spd = tables.FormatSpeedup(experiments.Speedup(cpu.PTaskMean, gpu.PTaskMean))
		}
		t.AddRow(dataset.FormatBytes(cpu.BlockBytes), cpu.GridString, cpuS, gpuS, spd, note)
	}
	fmt.Print(t.String())
	return nil
}

// cmdAdvise runs the §5.4.3 analytic advisor on one of the paper's
// workloads: it decomposes the task user code (Amdahl view) and predicts
// whether GPU offload pays off at the configured task count, without
// running a simulation.
func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	alg := fs.String("alg", "kmeans", "workload: kmeans or matmul")
	grid := fs.Int64("grid", 256, "grid dimension (= task count per level)")
	clusters := fs.Int64("clusters", 10, "K-means clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := costmodel.DefaultParams()
	var prof costmodel.Profile
	var tasks int
	switch *alg {
	case "kmeans":
		part, err := dataset.ByGrid(dataset.KMeansSmall, *grid, 1)
		if err != nil {
			return err
		}
		prof = kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, *clusters)
		prof.ReadBytes = float64(part.BlockBytes())
		prof.WriteBytes = float64(*clusters * (part.BlockCols + 1) * 8)
		tasks = int(*grid)
	case "matmul":
		part, err := dataset.ByGrid(dataset.MatmulSmall, *grid, *grid)
		if err != nil {
			return err
		}
		prof, _ = matmul.Profiles(part.BlockRows)
		prof.ReadBytes, prof.WriteBytes = prof.BytesIn, prof.BytesOut
		tasks = int(*grid * *grid * *grid)
	default:
		return fmt.Errorf("advise: unknown workload %q", *alg)
	}

	b := model.Breakdown(params, prof)
	t := tables.New("Analytic user-code breakdown (per task)",
		"component", "seconds")
	t.AddRow("serial fraction", tables.FormatFloat(b.SerialSec))
	t.AddRow("parallel fraction (CPU core)", tables.FormatFloat(b.CPUParallel))
	t.AddRow("parallel fraction (GPU)", tables.FormatFloat(b.GPUParallel))
	t.AddRow("CPU-GPU communication", tables.FormatFloat(b.CommSec))
	fmt.Print(t.String())
	fmt.Printf("\nkernel speedup %.2fx | user-code speedup %.2fx | parallel fraction %.0f%% | Amdahl limit %.2fx\n\n",
		b.KernelSpeedup, b.UserCodeSpeedup, b.ParallelFraction*100, b.AmdahlLimit)

	adv := model.NewAdvisor()
	rec := adv.Recommend(prof, tasks)
	r := tables.New(fmt.Sprintf("Level prediction for %d tasks on Minotauro", tasks),
		"device", "lower bound (s)", "upper bound (s)", "")
	for _, p := range []model.Prediction{rec.CPU, rec.GPU} {
		if p.OOM {
			r.AddRow(p.Device.String(), "-", "-", "OOM")
			continue
		}
		r.AddRow(p.Device.String(), tables.FormatFloat(p.LevelLower), tables.FormatFloat(p.LevelUpper), "")
	}
	fmt.Print(r.String())
	verdict := "CPU"
	if rec.UseGPU {
		verdict = "GPU"
	}
	conf := "bounds overlap — verify with `wfsim sweep`"
	if rec.Confident {
		conf = "confident (bounds separated)"
	}
	fmt.Printf("\nrecommendation: %s (%s)\n", verdict, conf)
	return nil
}

// cmdGantt simulates a K-means run and renders a per-core ASCII timeline:
// the terminal equivalent of a Paraver view, showing where cores spend
// their time ((de)serialization dominance, GPU waves, stragglers).
func cmdGantt(args []string) error {
	fs := flag.NewFlagSet("gantt", flag.ContinueOnError)
	grid := fs.Int64("grid", 32, "grid dimension")
	gpu := fs.Bool("gpu", true, "GPU-accelerate parallel tasks")
	width := fs.Int("width", 100, "timeline width in characters")
	rows := fs.Int("rows", 16, "max core rows (busiest first)")
	sim := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wf, err := kmeans.Build(kmeans.Config{
		Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10, Iterations: 2,
	})
	if err != nil {
		return err
	}
	dev := costmodel.CPU
	if *gpu {
		dev = costmodel.GPU
	}
	cfg := runtime.SimConfig{Device: dev}
	sim(&cfg)
	res, err := runtime.RunSim(wf, cfg)
	if err != nil {
		return err
	}
	faultSummary(cfg, res)
	fmt.Printf("K-means 10 GB, grid %dx1, %s tasks — makespan %.2fs, core util %.0f%%, gpu util %.0f%%\n",
		*grid, dev, res.Makespan, res.CoreUtilization*100, res.GPUUtilization*100)
	return res.Collector.WriteGantt(os.Stdout, *width, *rows)
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	grid := fs.Int64("grid", 32, "grid dimension")
	out := fs.String("out", "", "output file (default stdout)")
	format := fs.String("format", "prv", "trace format: prv or csv")
	sim := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wf, err := kmeans.Build(kmeans.Config{Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10})
	if err != nil {
		return err
	}
	cfg := runtime.SimConfig{Device: costmodel.GPU}
	sim(&cfg)
	res, err := runtime.RunSim(wf, cfg)
	if err != nil {
		return err
	}
	faultSummary(cfg, res)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "csv" {
		return res.Collector.WriteCSV(w)
	}
	return res.Collector.WritePRV(w)
}
