// Command wfsim runs the paper's experiments and utilities from the
// command line.
//
// Usage:
//
//	wfsim list                         list available experiments
//	wfsim run [-j N] <id> [...]        run experiments by ID (fig1, fig7a, ... table1, all)
//	wfsim dag <kmeans|matmul|fma> [-grid g] [-iters n]
//	                                   emit the workload DAG as Graphviz DOT (Figure 6)
//	wfsim sweep [-alg kmeans|matmul] [-dataset small|large|tiny]
//	                                   print a block-size sweep (CPU vs GPU)
//	wfsim trace [-grid g] [-out file]  run K-means and dump a Paraver-like trace
//	wfsim service [-tenants n] [-load l] [-arrivals poisson|g1,g2,...]
//	                                   serve a stream of workflows on one shared cluster and
//	                                   report per-tenant queue wait / response / slowdown
//
// The CLI reports real elapsed time to humans, so it is wall-clock layer
// by design and exempt from the walltime determinism lint.
//
//wfsimlint:wallclock
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/dataset"
	"wfsim/internal/experiments"
	"wfsim/internal/faults"
	"wfsim/internal/model"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/server"
	"wfsim/internal/service"
	"wfsim/internal/storage"
	"wfsim/internal/tables"

	"wfsim/internal/costmodel"
)

// simFlags registers the storage and fault-injection knobs shared by the
// trace and gantt commands and returns a builder that assembles their part
// of the SimConfig after parsing.
func simFlags(fs *flag.FlagSet) func(*runtime.SimConfig) {
	arch := fs.String("storage", "shared", "storage architecture: shared or local")
	seed := fs.Uint64("fault-seed", 1, "failure-injection seed")
	mtbf := fs.Float64("fault-mtbf", 0, "mean time between node crashes per node, virtual s (0 = off)")
	mttr := fs.Float64("fault-mttr", 0, "mean node repair time, virtual s (default mtbf/10)")
	prob := fs.Float64("fault-p", 0, "transient failure probability per task attempt (0 = off)")
	slow := fs.Float64("fault-straggler-mtbf", 0, "mean time between straggler episodes per node, virtual s (0 = off)")
	return func(cfg *runtime.SimConfig) {
		if *arch == "local" {
			cfg.Storage = storage.Local
		}
		cfg.Faults = faults.Config{
			Seed: *seed, NodeMTBF: *mtbf, NodeMTTR: *mttr,
			TaskFailProb: *prob, StragglerMTBF: *slow,
		}
	}
}

// faultSummary prints one line of failure-injection accounting when it is
// enabled; silent otherwise so fault-free output stays byte-stable.
func faultSummary(cfg runtime.SimConfig, res *runtime.SimResult) {
	if !cfg.Faults.Enabled() {
		return
	}
	f := res.Faults
	fmt.Fprintf(os.Stderr,
		"faults: %d crashes, %d requeues, %d retries, %d blocks lost, %d recomputes, %d restages, wasted %.2fs, recovery %.2fs\n",
		f.Crashes, f.CrashRequeues, f.Retries, f.BlocksLost,
		f.LineageRecomputes, f.InputRestages, f.WastedWork, f.RecoveryWork)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "dag":
		err = cmdDAG(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	case "gantt":
		err = cmdGantt(os.Args[2:])
	case "service":
		err = cmdService(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "wfsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  wfsim list                       list available experiments
  wfsim run [-j N] <id>... | all   run experiments (fig1 fig7a fig7b fig8 fig9a fig9b fig10a fig10b fig11 fig12 table1)
                                   -j sets trial parallelism (0 = all CPUs); Ctrl-C cancels
  wfsim dag <kmeans|matmul|fma>    emit a workload DAG as Graphviz DOT
  wfsim sweep                      block-size sweep, CPU vs GPU
  wfsim trace                      dump a Paraver-like trace of a K-means run
  wfsim advise                     analytic CPU-vs-GPU recommendation for a workload
  wfsim gantt                      ASCII per-core timeline of a simulated run
  wfsim service                    multi-tenant online simulation: a workflow stream on one cluster
                                   -tenants N -load L -arrivals poisson|g1,g2,... -count -weights -quota
  wfsim serve                      HTTP/JSON server over the experiment registry
                                   -addr :8080 -cache DIR -cache-max BYTES
                                   GET /experiments /run/{id} /stats, POST /whatif

run accepts -cache DIR to persist trial results: a second identical run
is served from the cache instead of re-simulated.

trace, gantt and service accept -storage shared|local and deterministic failure
injection: -fault-seed -fault-mtbf -fault-mttr -fault-p -fault-straggler-mtbf`)
}

func cmdList() error {
	t := tables.New("Experiments", "id", "title")
	for _, e := range experiments.All() {
		t.AddRow(e.ID, e.Title)
	}
	fmt.Print(t.String())
	return nil
}

func cmdRun(args []string) error {
	asJSON := false
	workers := 0
	cacheDir := ""
	var ids []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			asJSON = true
		case a == "-j" || a == "--j":
			i++
			if i >= len(args) {
				return fmt.Errorf("run: -j needs a worker count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("run: -j %q: %w", args[i], err)
			}
			workers = n
		case strings.HasPrefix(a, "-j="):
			n, err := strconv.Atoi(strings.TrimPrefix(a, "-j="))
			if err != nil {
				return fmt.Errorf("run: %q: %w", a, err)
			}
			workers = n
		case a == "-cache" || a == "--cache":
			i++
			if i >= len(args) {
				return fmt.Errorf("run: -cache needs a directory")
			}
			cacheDir = args[i]
		case strings.HasPrefix(a, "-cache="):
			cacheDir = strings.TrimPrefix(a, "-cache=")
		default:
			ids = append(ids, a)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment id (try `wfsim list`)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// One engine across all requested experiments: identical factor
	// combinations appearing in several figures simulate once.
	eng := runner.New(workers)
	if cacheDir != "" {
		store, err := resultcache.Open(cacheDir, 0)
		if err != nil {
			return err
		}
		defer func() {
			st := store.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d puts, %d entries, %d bytes\n",
				st.Hits, st.Misses, st.Puts, st.Entries, st.Bytes)
			store.Close()
		}()
		eng.SetCache(store)
	}
	type jsonOut struct {
		ID     string             `json:"id"`
		Title  string             `json:"title"`
		Result experiments.Result `json:"result"`
	}
	var outs []jsonOut
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := e.Run(ctx, eng)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if asJSON {
			outs = append(outs, jsonOut{ID: e.ID, Title: e.Title, Result: res})
			continue
		}
		fmt.Printf("==== %s — %s (%v)\n\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), res.Render())
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(outs)
	}
	return nil
}

func cmdDAG(args []string) error {
	fs := flag.NewFlagSet("dag", flag.ContinueOnError)
	grid := fs.Int64("grid", 4, "grid dimension g")
	iters := fs.Int("iters", 3, "K-means iterations")
	if len(args) == 0 {
		return fmt.Errorf("dag: missing workload (kmeans|matmul|fma)")
	}
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var wf *runtime.Workflow
	var err error
	switch args[0] {
	case "kmeans":
		wf, err = kmeans.Build(kmeans.Config{
			Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10, Iterations: *iters,
		})
	case "matmul":
		wf, err = matmul.Build(matmul.Config{Dataset: dataset.MatmulSmall, Grid: *grid})
	case "fma":
		wf, err = matmul.Build(matmul.Config{Dataset: dataset.MatmulSmall, Grid: *grid, Variant: matmul.FMA})
	default:
		return fmt.Errorf("dag: unknown workload %q", args[0])
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# %s: %d tasks, width %d, height %d\n# %s\n",
		args[0], wf.Graph.Len(), wf.Graph.MaxWidth(), wf.Graph.MaxHeight(), wf.Graph.Summary())
	return wf.Graph.DOT(os.Stdout, fmt.Sprintf("%s grid %d", args[0], *grid))
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	alg := fs.String("alg", "kmeans", "algorithm: kmeans or matmul")
	dsName := fs.String("dataset", "small", "dataset: tiny, small or large")
	clusters := fs.Int64("clusters", 10, "K-means clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var a experiments.Algorithm
	var ds dataset.Dataset
	var grids []int64
	switch *alg {
	case "kmeans":
		a = experiments.KMeans
		grids = dataset.KMeansGrids
		switch *dsName {
		case "tiny":
			ds = dataset.KMeansTiny
		case "large":
			ds = dataset.KMeansLarge
		default:
			ds = dataset.KMeansSmall
		}
	case "matmul":
		a = experiments.Matmul
		grids = dataset.MatmulGrids
		switch *dsName {
		case "tiny":
			ds = dataset.MatmulTiny
		case "large":
			ds = dataset.MatmulLarge
		default:
			ds = dataset.MatmulSmall
		}
	default:
		return fmt.Errorf("sweep: unknown algorithm %q", *alg)
	}
	t := tables.New(fmt.Sprintf("Sweep: %s on %s", a, ds),
		"block size", "grid", "CPU p.tasks (s)", "GPU p.tasks (s)", "GPU speedup", "")
	for i := len(grids) - 1; i >= 0; i-- {
		cpu, gpu, err := experiments.RunPair(experiments.CellConfig{
			Algorithm: a, Dataset: ds, Grid: grids[i], Clusters: *clusters,
		})
		if err != nil {
			return err
		}
		note := ""
		switch {
		case cpu.OOM && gpu.OOM:
			note = "CPU GPU OOM"
		case gpu.OOM:
			note = "GPU OOM"
		}
		spd := "-"
		cpuS, gpuS := "-", "-"
		if !cpu.OOM {
			cpuS = tables.FormatFloat(cpu.PTaskMean)
		}
		if !gpu.OOM {
			gpuS = tables.FormatFloat(gpu.PTaskMean)
		}
		if !cpu.OOM && !gpu.OOM {
			spd = tables.FormatSpeedup(experiments.Speedup(cpu.PTaskMean, gpu.PTaskMean))
		}
		t.AddRow(dataset.FormatBytes(cpu.BlockBytes), cpu.GridString, cpuS, gpuS, spd, note)
	}
	fmt.Print(t.String())
	return nil
}

// cmdAdvise runs the §5.4.3 analytic advisor on one of the paper's
// workloads: it decomposes the task user code (Amdahl view) and predicts
// whether GPU offload pays off at the configured task count, without
// running a simulation.
func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	alg := fs.String("alg", "kmeans", "workload: kmeans or matmul")
	grid := fs.Int64("grid", 256, "grid dimension (= task count per level)")
	clusters := fs.Int64("clusters", 10, "K-means clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := costmodel.DefaultParams()
	var prof costmodel.Profile
	var tasks int
	switch *alg {
	case "kmeans":
		part, err := dataset.ByGrid(dataset.KMeansSmall, *grid, 1)
		if err != nil {
			return err
		}
		prof = kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, *clusters)
		prof.ReadBytes = float64(part.BlockBytes())
		prof.WriteBytes = float64(*clusters * (part.BlockCols + 1) * 8)
		tasks = int(*grid)
	case "matmul":
		part, err := dataset.ByGrid(dataset.MatmulSmall, *grid, *grid)
		if err != nil {
			return err
		}
		prof, _ = matmul.Profiles(part.BlockRows)
		prof.ReadBytes, prof.WriteBytes = prof.BytesIn, prof.BytesOut
		tasks = int(*grid * *grid * *grid)
	default:
		return fmt.Errorf("advise: unknown workload %q", *alg)
	}

	b := model.Breakdown(params, prof)
	t := tables.New("Analytic user-code breakdown (per task)",
		"component", "seconds")
	t.AddRow("serial fraction", tables.FormatFloat(b.SerialSec))
	t.AddRow("parallel fraction (CPU core)", tables.FormatFloat(b.CPUParallel))
	t.AddRow("parallel fraction (GPU)", tables.FormatFloat(b.GPUParallel))
	t.AddRow("CPU-GPU communication", tables.FormatFloat(b.CommSec))
	fmt.Print(t.String())
	fmt.Printf("\nkernel speedup %.2fx | user-code speedup %.2fx | parallel fraction %.0f%% | Amdahl limit %.2fx\n\n",
		b.KernelSpeedup, b.UserCodeSpeedup, b.ParallelFraction*100, b.AmdahlLimit)

	adv := model.NewAdvisor()
	rec := adv.Recommend(prof, tasks)
	r := tables.New(fmt.Sprintf("Level prediction for %d tasks on Minotauro", tasks),
		"device", "lower bound (s)", "upper bound (s)", "")
	for _, p := range []model.Prediction{rec.CPU, rec.GPU} {
		if p.OOM {
			r.AddRow(p.Device.String(), "-", "-", "OOM")
			continue
		}
		r.AddRow(p.Device.String(), tables.FormatFloat(p.LevelLower), tables.FormatFloat(p.LevelUpper), "")
	}
	fmt.Print(r.String())
	verdict := "CPU"
	if rec.UseGPU {
		verdict = "GPU"
	}
	conf := "bounds overlap — verify with `wfsim sweep`"
	if rec.Confident {
		conf = "confident (bounds separated)"
	}
	fmt.Printf("\nrecommendation: %s (%s)\n", verdict, conf)
	return nil
}

// cmdGantt simulates a K-means run and renders a per-core ASCII timeline:
// the terminal equivalent of a Paraver view, showing where cores spend
// their time ((de)serialization dominance, GPU waves, stragglers).
func cmdGantt(args []string) error {
	fs := flag.NewFlagSet("gantt", flag.ContinueOnError)
	grid := fs.Int64("grid", 32, "grid dimension")
	gpu := fs.Bool("gpu", true, "GPU-accelerate parallel tasks")
	width := fs.Int("width", 100, "timeline width in characters")
	rows := fs.Int("rows", 16, "max core rows (busiest first)")
	sim := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wf, err := kmeans.Build(kmeans.Config{
		Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10, Iterations: 2,
	})
	if err != nil {
		return err
	}
	dev := costmodel.CPU
	if *gpu {
		dev = costmodel.GPU
	}
	cfg := runtime.SimConfig{Device: dev}
	sim(&cfg)
	res, err := runtime.RunSim(wf, cfg)
	if err != nil {
		return err
	}
	faultSummary(cfg, res)
	fmt.Printf("K-means 10 GB, grid %dx1, %s tasks — makespan %.2fs, core util %.0f%%, gpu util %.0f%%\n",
		*grid, dev, res.Makespan, res.CoreUtilization*100, res.GPUUtilization*100)
	return res.Collector.WriteGantt(os.Stdout, *width, *rows)
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	grid := fs.Int64("grid", 32, "grid dimension")
	out := fs.String("out", "", "output file (default stdout)")
	format := fs.String("format", "prv", "trace format: prv or csv")
	sim := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wf, err := kmeans.Build(kmeans.Config{Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10})
	if err != nil {
		return err
	}
	cfg := runtime.SimConfig{Device: costmodel.GPU}
	sim(&cfg)
	res, err := runtime.RunSim(wf, cfg)
	if err != nil {
		return err
	}
	faultSummary(cfg, res)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "csv" {
		return res.Collector.WriteCSV(w)
	}
	return res.Collector.WritePRV(w)
}

// cmdServe exposes the experiment registry and the persistent result
// cache over HTTP: run-by-name, single-trial what-if queries answered
// from cache when warm, and cache/engine counters.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheDir := fs.String("cache", "", "persistent result-cache directory (empty = in-memory memo only)")
	cacheMax := fs.Int64("cache-max", 0, "cache size bound in bytes (0 = unbounded)")
	workers := fs.Int("j", 0, "trial parallelism (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng := runner.New(*workers)
	var store *resultcache.Store
	if *cacheDir != "" {
		var err error
		store, err = resultcache.Open(*cacheDir, *cacheMax)
		if err != nil {
			return err
		}
		defer store.Close()
		fmt.Fprintf(os.Stderr, "wfsim serve: cache %s (%d entries warm)\n", *cacheDir, store.Stats().Entries)
	}
	srv := server.New(eng, store)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "wfsim serve: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// cmdService runs the cluster as an online multi-tenant service: a seeded
// stream of K-means workflows arrives over virtual time on one shared
// cluster, and the output is per-tenant service statistics rather than a
// single makespan.
func cmdService(args []string) error {
	fs := flag.NewFlagSet("service", flag.ContinueOnError)
	tenants := fs.Int("tenants", 2, "number of tenants sharing the cluster")
	load := fs.Float64("load", 1.5, "offered load: cluster-wide arrival rate as a multiple of the isolated completion rate")
	arrivals := fs.String("arrivals", "poisson", `arrival process: "poisson", or a comma list of interarrival gaps in virtual s (replayed by every tenant)`)
	count := fs.Int("count", 6, "workflows per tenant (ignored when -arrivals is a trace)")
	grid := fs.Int64("grid", 32, "K-means grid dimension per workflow")
	seed := fs.Uint64("seed", 42, "arrival-stream seed")
	weights := fs.String("weights", "", "comma list of fair-share weights, one per tenant (default equal)")
	quota := fs.Int("quota", 0, "per-tenant concurrent-task admission quota (0 = unlimited)")
	gpu := fs.Bool("gpu", true, "GPU-accelerate parallel tasks")
	sim := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants <= 0 {
		return fmt.Errorf("service: -tenants %d, must be positive", *tenants)
	}
	dev := costmodel.CPU
	if *gpu {
		dev = costmodel.GPU
	}
	cfg := runtime.SimConfig{Device: dev}
	sim(&cfg)

	var w []float64
	if *weights != "" {
		for _, s := range strings.Split(*weights, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("service: -weights %q: %w", *weights, err)
			}
			w = append(w, v)
		}
		if len(w) != *tenants {
			return fmt.Errorf("service: %d weights for %d tenants", len(w), *tenants)
		}
	}
	var trace []float64
	if *arrivals != "poisson" {
		for _, s := range strings.Split(*arrivals, ",") {
			g, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("service: -arrivals %q: %w", *arrivals, err)
			}
			trace = append(trace, g)
		}
	}

	build := func(int) (*runtime.Workflow, error) {
		return kmeans.Build(kmeans.Config{
			Dataset: dataset.KMeansSmall, Grid: *grid, Clusters: 10, Iterations: 2,
		})
	}
	// The isolated makespan anchors both the Poisson rate (-load is a
	// multiple of the cluster's lone-workflow completion rate) and the
	// slowdown denominator, so measure it once here.
	wf, err := build(0)
	if err != nil {
		return err
	}
	iso := cfg
	iso.Faults = faults.Config{}
	base, err := runtime.RunSim(wf, iso)
	if err != nil {
		return err
	}

	svc := service.Config{Sim: cfg, Seed: *seed}
	for i := 0; i < *tenants; i++ {
		t := service.Tenant{
			Name:     fmt.Sprintf("tenant%d", i),
			Quota:    *quota,
			Count:    *count,
			Build:    build,
			Baseline: base.Makespan,
		}
		if len(w) > 0 {
			t.Weight = w[i]
		}
		if len(trace) > 0 {
			t.Interarrival, t.Count = trace, len(trace)
		} else {
			t.Rate = *load / base.Makespan / float64(*tenants)
		}
		svc.Tenants = append(svc.Tenants, t)
	}
	res, err := service.Run(svc)
	if err != nil {
		return err
	}

	fmt.Printf("K-means 10 GB grid %d ×2 iter on %s — isolated makespan %.2fs, load %gx, %d tenants\n",
		*grid, dev, base.Makespan, *load, *tenants)
	t := tables.New("", "tenant", "workflows", "tasks",
		"queue wait p50/p95 (s)", "response p50/p95 (s)", "slowdown p50/p95/p99")
	for _, ten := range res.Tenants {
		t.AddRow(ten.Name,
			fmt.Sprint(ten.Workflows), fmt.Sprint(ten.Tasks),
			tables.FormatFloat(ten.QueueWait.P50)+" / "+tables.FormatFloat(ten.QueueWait.P95),
			tables.FormatFloat(ten.Response.P50)+" / "+tables.FormatFloat(ten.Response.P95),
			fmt.Sprintf("%.2f / %.2f / %.2f", ten.Slowdown.P50, ten.Slowdown.P95, ten.Slowdown.P99))
	}
	fmt.Print(t.String())
	fmt.Printf("\nhorizon %.2fs, core util %.0f%%, gpu util %.0f%%\n",
		res.Horizon, res.CoreUtilization*100, res.GPUUtilization*100)
	if cfg.Faults.Enabled() {
		f := res.Faults
		fmt.Fprintf(os.Stderr,
			"faults: %d crashes, %d requeues, %d retries, %d blocks lost, %d recomputes, %d restages, wasted %.2fs, recovery %.2fs\n",
			f.Crashes, f.CrashRequeues, f.Retries, f.BlocksLost,
			f.LineageRecomputes, f.InputRestages, f.WastedWork, f.RecoveryWork)
	}
	return nil
}
