package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var sb strings.Builder
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatalf("command failed: %v", errRun)
	}
	return out
}

// elapsedStamp matches the wall-clock duration printed in the run header
// ("(1.234s)") — the only non-deterministic part of rendered output.
var elapsedStamp = regexp.MustCompile(`\([0-9a-zµ.]+s\)`)

// TestCmdRunDeterminism is a regression test for the DES substrate: the
// rendered experiment output must be byte-identical across runs. Event
// pooling, goroutine reuse and in-heap rescheduling must be invisible.
func TestCmdRunDeterminism(t *testing.T) {
	render := func() string {
		out := captureStdout(t, func() error { return cmdRun([]string{"fig1"}) })
		return elapsedStamp.ReplaceAllString(out, "")
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("fig1 output differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestCmdList(t *testing.T) {
	out := captureStdout(t, cmdList)
	for _, want := range []string{"fig1", "fig11", "table1", "ext1", "ext2"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestCmdRunTable1(t *testing.T) {
	out := captureStdout(t, func() error { return cmdRun([]string{"table1"}) })
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "block dimension") {
		t.Errorf("run table1 output unexpected:\n%s", out)
	}
}

func TestCmdRunJSON(t *testing.T) {
	out := captureStdout(t, func() error { return cmdRun([]string{"-json", "fig1"}) })
	for _, want := range []string{`"id": "fig1"`, `"PFracSpeedup"`, `"UserCodeSpeedup"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

func TestCmdRunErrors(t *testing.T) {
	if err := cmdRun(nil); err == nil {
		t.Error("empty run accepted")
	}
	if err := cmdRun([]string{"nope"}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestCmdDAG(t *testing.T) {
	for _, workload := range []string{"kmeans", "matmul", "fma"} {
		out := captureStdout(t, func() error {
			return cmdDAG([]string{workload, "-grid", "2", "-iters", "1"})
		})
		if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
			t.Errorf("%s: DOT output missing graph structure", workload)
		}
	}
	if err := cmdDAG(nil); err == nil {
		t.Error("missing workload accepted")
	}
	if err := cmdDAG([]string{"bogus"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCmdSweep(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdSweep([]string{"-alg", "matmul", "-dataset", "tiny"})
	})
	if !strings.Contains(out, "GPU speedup") || !strings.Contains(out, "matmul") {
		t.Errorf("sweep output unexpected:\n%s", out)
	}
	if err := cmdSweep([]string{"-alg", "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCmdAdvise(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdAdvise([]string{"-alg", "matmul", "-grid", "2"})
	})
	for _, want := range []string{"kernel speedup", "recommendation: GPU", "Amdahl"} {
		if !strings.Contains(out, want) {
			t.Errorf("advise output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() error {
		return cmdAdvise([]string{"-alg", "kmeans", "-grid", "256"})
	})
	if !strings.Contains(out, "recommendation: CPU") {
		t.Errorf("256-task kmeans should recommend CPU:\n%s", out)
	}
	if err := cmdAdvise([]string{"-alg", "bogus"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCmdGantt(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdGantt([]string{"-grid", "8", "-width", "40", "-rows", "4"})
	})
	for _, want := range []string{"timeline", "legend", "core"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q", want)
		}
	}
}

func TestCmdTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.prv")
	captureStdout(t, func() error {
		return cmdTrace([]string{"-grid", "8", "-out", path})
	})
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "#Paraver") {
		t.Fatalf("trace file missing header: %q", string(b[:40]))
	}
	csvPath := filepath.Join(dir, "run.csv")
	captureStdout(t, func() error {
		return cmdTrace([]string{"-grid", "8", "-out", csvPath, "-format", "csv"})
	})
	c, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(c), "task_id,") {
		t.Fatal("CSV trace missing header")
	}
}
