#!/bin/sh
# Mirror of CI's Lint step for local use. Run from the repository root:
#
#     scripts/lint.sh          # full run: all six rules over the whole module
#     scripts/lint.sh -fast    # changed packages only (pre-commit loop)
#
# Runs the wfsimlint determinism suite (floatreduce, hotalloc, maporder,
# seedrand, simblock, walltime — see DESIGN.md "Determinism invariants")
# and then checks gofmt cleanliness. Exits non-zero on any finding not
# absorbed by lint.baseline.
#
# -fast narrows the *reported* scope to packages with uncommitted or
# tip-commit changes (per git). The interprocedural analyses still build
# the whole-module call graph — summaries for unchanged callees stay
# exact — but findings outside changed packages are not re-reported, and
# gofmt only checks the changed files. Stale-baseline detection is a
# whole-module question, so it only happens in the full mode.
set -eu

fast=0
if [ "${1:-}" = "-fast" ]; then
    fast=1
fi

if [ "$fast" = 1 ]; then
    # Changed .go files: working tree + index vs HEAD, plus the tip
    # commit itself (so `git commit` followed by `lint.sh -fast` still
    # covers what just landed).
    changed=$( { git diff --name-only --diff-filter=d HEAD -- '*.go' 2>/dev/null || true
                 git diff --name-only --diff-filter=d 'HEAD~1..HEAD' -- '*.go' 2>/dev/null || true
               } | sort -u )
    pkgs=$(printf '%s\n' "$changed" | while read -r f; do
        [ -n "$f" ] && [ -f "$f" ] && dirname "$f" || true
    done | sort -u | sed 's|^|./|')
    if [ -z "$pkgs" ]; then
        echo "lint: no changed Go files"
        exit 0
    fi
    # shellcheck disable=SC2086 # word-splitting into package patterns is intended
    go run ./cmd/wfsimlint $pkgs

    unformatted=$(printf '%s\n' "$changed" | while read -r f; do
        [ -n "$f" ] && [ -f "$f" ] && gofmt -l "$f" || true
    done)
else
    go run ./cmd/wfsimlint ./...
    unformatted=$(gofmt -l .)
fi

if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "lint: clean"
