#!/bin/sh
# Mirror of CI's Lint step for local use. Run from the repository root:
#
#     scripts/lint.sh
#
# Runs the wfsimlint determinism suite (maporder, walltime, seedrand,
# floatreduce — see DESIGN.md "Determinism invariants") over the whole
# module, then checks gofmt cleanliness. Exits non-zero on any finding.
set -eu

go run ./cmd/wfsimlint ./...

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "lint: clean"
