#!/bin/sh
# Run the DES-substrate micro-benchmarks and append a labelled snapshot to
# BENCH_substrate.json. Run from the repository root:
#
#     scripts/bench.sh -label <label> [-count N] [-bench <regexp>]
#
# -label names the snapshot (e.g. "pre-refactor", "after-pooling") and is
# required; -count is the go test -count repetition (default 5; results are
# averaged); -bench overrides the benchmark selection regexp. Flags go
# straight through to benchsnap/go test, so snapshots are never hand-edited.
set -eu

label=
count=5
bench='Sim(Engine|Handoff|LinkChurn|ServerContention|Workflow|WorkflowLarge|WorkflowHuge)$|^Benchmark(DAGBuild|LocalityPlace|HEFTPlace|WorkStealNext|EventQueue)$'

usage() {
    echo "usage: scripts/bench.sh -label <label> [-count N] [-bench <regexp>]" >&2
    exit 2
}

while [ $# -gt 0 ]; do
    case $1 in
    -label) [ $# -ge 2 ] || usage; label=$2; shift 2 ;;
    -count) [ $# -ge 2 ] || usage; count=$2; shift 2 ;;
    -bench) [ $# -ge 2 ] || usage; bench=$2; shift 2 ;;
    *) usage ;;
    esac
done
[ -n "$label" ] || usage

# BenchmarkEventQueue (the data behind the engine's adaptive ladder
# threshold) lives in internal/sim; everything else is in the root package.
go test -run '^$' -bench "$bench" -benchmem -count "$count" . ./internal/sim |
    go run scripts/benchsnap.go -label "$label"
