#!/bin/sh
# Run the DES-substrate micro-benchmarks and append a labelled snapshot to
# BENCH_substrate.json. Run from the repository root:
#
#     scripts/bench.sh <label> [count]
#
# <label> names the snapshot (e.g. "pre-refactor", "after-pooling");
# [count] is the go test -count repetition (default 5; results are averaged).
set -eu

label=${1:?usage: scripts/bench.sh <label> [count]}
count=${2:-5}

go test -run '^$' -bench 'Sim(Engine|Handoff|LinkChurn|ServerContention|Workflow|WorkflowLarge)$|^Benchmark(DAGBuild|LocalityPlace)$' \
    -benchmem -count "$count" . |
    go run scripts/benchsnap.go -label "$label"
