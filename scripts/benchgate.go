//go:build ignore

// benchgate parses `go test -bench` output on stdin and fails (exit 1) if
// any gated benchmark regressed past its budget relative to the latest
// snapshot in the benchmark-tracking file that records it. Usage:
//
//	go test -run '^$' -bench 'SimWorkflow(Large|Huge)?$' -benchmem -count 2 . |
//	    go run scripts/benchgate.go -gate SimWorkflow,SimWorkflowLarge,SimWorkflowHuge
//
// The budgets are asymmetric on purpose: ns/op gets 25% headroom because
// shared CI runners time noisily, while allocs/op gets only 10% — counting
// is exact, so any growth there is a real hot-path change, not noise.
// Improvements never fail the gate; record them with scripts/bench.sh so
// the next gate measures against the new level.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	runs        int
}

type snapshot struct {
	Label      string            `json:"label"`
	Date       string            `json:"date"`
	Go         string            `json:"go"`
	Benchmarks map[string]*bench `json:"benchmarks"`
}

type file struct {
	Snapshots []*snapshot `json:"snapshots"`
}

func main() {
	in := flag.String("file", "BENCH_substrate.json", "tracking file holding the baseline snapshots")
	gate := flag.String("gate", "SimWorkflow,SimWorkflowLarge,SimWorkflowHuge", "comma-separated benchmarks to gate")
	nsBudget := flag.Float64("ns-budget", 0.25, "allowed fractional ns/op regression")
	allocBudget := flag.Float64("alloc-budget", 0.10, "allowed fractional allocs/op regression")
	flag.Parse()

	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	var all file
	if err := json.Unmarshal(data, &all); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s is not valid JSON: %v\n", *in, err)
		os.Exit(1)
	}

	// Baseline for each gated benchmark: the most recent snapshot that
	// records it (not every snapshot runs every benchmark).
	base := map[string]*bench{}
	baseLabel := map[string]string{}
	for _, name := range strings.Split(*gate, ",") {
		for i := len(all.Snapshots) - 1; i >= 0; i-- {
			if b, ok := all.Snapshots[i].Benchmarks[name]; ok {
				base[name] = b
				baseLabel[name] = all.Snapshots[i].Label
				break
			}
		}
		if base[name] == nil {
			fmt.Fprintf(os.Stderr, "benchgate: no snapshot in %s records %q\n", *in, name)
			os.Exit(1)
		}
	}

	got := map[string]*bench{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// BenchmarkName-8  N  ns/op  [B/op]  [allocs/op]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		if base[name] == nil {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		b := got[name]
		if b == nil {
			b = &bench{}
			got[name] = b
		}
		b.runs++
		b.NsPerOp += (ns - b.NsPerOp) / float64(b.runs)
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp += (v - b.BytesPerOp) / float64(b.runs)
			case "allocs/op":
				b.AllocsPerOp += (v - b.AllocsPerOp) / float64(b.runs)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}

	failed := false
	for name, want := range base {
		have := got[name]
		if have == nil {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: gated benchmark missing from input\n", name)
			failed = true
			continue
		}
		nsLimit := want.NsPerOp * (1 + *nsBudget)
		if have.NsPerOp > nsLimit {
			fmt.Fprintf(os.Stderr,
				"benchgate: FAIL %s: %.0f ns/op exceeds %.0f (baseline %q: %.0f, budget +%d%%)\n",
				name, have.NsPerOp, nsLimit, baseLabel[name], want.NsPerOp, int(*nsBudget*100))
			failed = true
		}
		allocLimit := want.AllocsPerOp * (1 + *allocBudget)
		if want.AllocsPerOp > 0 && have.AllocsPerOp > allocLimit {
			fmt.Fprintf(os.Stderr,
				"benchgate: FAIL %s: %.1f allocs/op exceeds %.1f (baseline %q: %.1f, budget +%d%%)\n",
				name, have.AllocsPerOp, allocLimit, baseLabel[name], want.AllocsPerOp, int(*allocBudget*100))
			failed = true
		}
		if have.NsPerOp <= nsLimit && (want.AllocsPerOp == 0 || have.AllocsPerOp <= allocLimit) {
			fmt.Fprintf(os.Stderr, "benchgate: ok %s: %.0f ns/op, %.1f allocs/op (baseline %q)\n",
				name, have.NsPerOp, have.AllocsPerOp, baseLabel[name])
		}
	}
	if failed {
		os.Exit(1)
	}
}
