//go:build ignore

// benchsnap parses `go test -bench` output on stdin and appends a labelled
// snapshot to a JSON benchmark-tracking file (default BENCH_substrate.json).
// Multiple -count runs of the same benchmark are averaged. Usage:
//
//	go test -run '^$' -bench 'Sim' -benchmem -count 5 . |
//	    go run scripts/benchsnap.go -label after-my-change
//
// The file keeps every snapshot ever recorded, so a perf regression (or an
// optimisation claim) is checkable against history instead of folklore.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	runs        int
}

type snapshot struct {
	Label      string            `json:"label"`
	Date       string            `json:"date"`
	Go         string            `json:"go"`
	Benchmarks map[string]*bench `json:"benchmarks"`
}

type file struct {
	Snapshots []*snapshot `json:"snapshots"`
}

func main() {
	label := flag.String("label", "", "snapshot label (required)")
	out := flag.String("out", "BENCH_substrate.json", "tracking file to append to")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchsnap: -label is required")
		os.Exit(2)
	}

	snap := &snapshot{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		Benchmarks: map[string]*bench{},
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// BenchmarkName-8  N  ns/op  [B/op]  [allocs/op]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		b := snap.Benchmarks[name]
		if b == nil {
			b = &bench{}
			snap.Benchmarks[name] = b
		}
		b.runs++
		b.NsPerOp += (ns - b.NsPerOp) / float64(b.runs)
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp += (v - b.BytesPerOp) / float64(b.runs)
			case "allocs/op":
				b.AllocsPerOp += (v - b.AllocsPerOp) / float64(b.runs)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}

	var all file
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	all.Snapshots = append(all.Snapshots, snap)
	data, err := json.MarshalIndent(&all, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: recorded %d benchmark(s) as %q in %s\n",
		len(snap.Benchmarks), *label, *out)
}
