package wfsim_test

import (
	"testing"

	"wfsim"
)

// simAllocs returns the allocations of one full build+simulate cycle of a
// 64-block K-means with the given iteration count and environment,
// averaged over a few runs.
func simAllocs(t *testing.T, iterations int, cfg wfsim.SimConfig) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
			Dataset: wfsim.Datasets.KMeansSmall, Grid: 64, Clusters: 10,
			Iterations: iterations,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wfsim.RunSim(wf, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSimAllocBudget is the hot-path allocation-regression guard: it
// measures the marginal allocations per simulated task — the difference
// between a deep and a shallow run of the same workflow shape, so
// fixed per-run costs (cluster construction, collector buffer, coroutine
// warm-up) cancel out — and fails if the hot path regresses past a small
// fixed budget.
//
// The datum-interning refactor pinned this near 2 allocations per task:
// the task's datum-name string built by the app and its interner map
// entry, both build-time; the simulate path itself is allocation-free in
// steady state. The budget leaves headroom for noise, not for regressions:
// if this fails, something on the per-task path started allocating.
//
// Both environments must hold the budget: the default shared-disk FIFO
// path, and the local-disk locality path that exercises the placement
// scratch and the storage location table. In particular the fault-injection
// machinery must stay free on fault-free runs — attempt buffers and
// recovery bookkeeping are only allocated when SimConfig.Faults is enabled.
func TestSimAllocBudget(t *testing.T) {
	const (
		shallowIters = 2
		deepIters    = 12
		grid         = 64
		budget       = 6.0 // marginal allocs per task, ~5× observed
	)
	configs := []struct {
		name string
		cfg  wfsim.SimConfig
	}{
		{"shared-fifo-gpu", wfsim.SimConfig{Device: wfsim.GPU}},
		{"local-locality-gpu", wfsim.SimConfig{
			Device: wfsim.GPU, Storage: wfsim.LocalDisk, Policy: wfsim.DataLocality,
		}},
		// The lookahead path allocates its rank tables once per workflow at
		// submission; the per-task dispatch (rank pop + EFT placement) must
		// stay free, so the marginal budget holds unchanged.
		{"shared-heft-cpu", wfsim.SimConfig{
			Device: wfsim.CPU, Policy: wfsim.HEFT,
		}},
		{"local-worksteal-gpu", wfsim.SimConfig{
			Device: wfsim.GPU, Storage: wfsim.LocalDisk, Policy: wfsim.WorkStealing,
		}},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			// Warm the engine's global coroutine pool and the allocator so
			// both measured runs see identical steady-state conditions.
			simAllocs(t, deepIters, c.cfg)

			shallow := simAllocs(t, shallowIters, c.cfg)
			deep := simAllocs(t, deepIters, c.cfg)
			marginalTasks := float64((grid + 1) * (deepIters - shallowIters))
			perTask := (deep - shallow) / marginalTasks
			t.Logf("allocs: shallow=%.0f deep=%.0f marginal/task=%.2f (budget %v)",
				shallow, deep, perTask, budget)
			if perTask > budget {
				t.Errorf("hot path allocates %.2f allocations per task, budget %v", perTask, budget)
			}
		})
	}

	// Streaming mode must hold the same budget with the same cancellation
	// trick: a shared Aggregates sink and substrate arena persist across
	// runs (the sweep-worker usage pattern), so in steady state the
	// simulate path allocates nothing at all and the marginal cost is the
	// build side's datum strings. This is the regime the million-task
	// benchmark depends on — a collector would retain one record per task
	// stage, while the sink's footprint stays O(task types), independent of
	// depth.
	t.Run("streaming-sink-arena", func(t *testing.T) {
		var arena wfsim.Arena
		agg := wfsim.NewAggregates()
		streamAllocs := func(iterations int) float64 {
			return testing.AllocsPerRun(3, func() {
				wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
					Dataset: wfsim.Datasets.KMeansSmall, Grid: grid, Clusters: 10,
					Iterations: iterations,
				})
				if err != nil {
					t.Fatal(err)
				}
				agg.Reset()
				res, err := wfsim.RunSim(wf, wfsim.SimConfig{
					Device: wfsim.GPU, Storage: wfsim.LocalDisk, Policy: wfsim.DataLocality,
					Sink: agg, Arena: &arena,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Collector != nil {
					t.Fatal("streaming run retained a collector")
				}
			})
		}
		streamAllocs(deepIters)
		shallow := streamAllocs(shallowIters)
		deep := streamAllocs(deepIters)
		marginalTasks := float64((grid + 1) * (deepIters - shallowIters))
		perTask := (deep - shallow) / marginalTasks
		t.Logf("allocs: shallow=%.0f deep=%.0f marginal/task=%.2f (budget %v)",
			shallow, deep, perTask, budget)
		if perTask > budget {
			t.Errorf("streaming hot path allocates %.2f allocations per task, budget %v", perTask, budget)
		}
	})

	// The multi-tenant substrate must hold the same budget: the fair-share
	// gate, tenant accounting and per-session indirection may not put
	// allocations on the per-task path. Two tenants submit overlapping
	// K-means workflows onto one shared cluster; per-session fixed costs
	// (session structs, collectors, quota bookkeeping) cancel between the
	// shallow and deep measurement exactly like per-run costs do above.
	t.Run("two-tenant-multiplexed", func(t *testing.T) {
		const (
			shallowIters = 2
			deepIters    = 12
			grid         = 64
			budget       = 6.0
		)
		multiAllocs := func(iterations int) float64 {
			return testing.AllocsPerRun(3, func() {
				cs, err := wfsim.NewClusterSim(wfsim.SimConfig{Device: wfsim.GPU},
					[]wfsim.TenantSpec{{Weight: 2}, {Weight: 1}})
				if err != nil {
					t.Fatal(err)
				}
				for tenant := 0; tenant < 2; tenant++ {
					wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
						Dataset: wfsim.Datasets.KMeansSmall, Grid: grid, Clusters: 10,
						Iterations: iterations,
					})
					if err != nil {
						t.Fatal(err)
					}
					err = cs.Submit(tenant, wf, float64(tenant)*0.5, func(wfsim.WorkflowResult) {})
					if err != nil {
						t.Fatal(err)
					}
				}
				if err := cs.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
		multiAllocs(deepIters)
		shallow := multiAllocs(shallowIters)
		deep := multiAllocs(deepIters)
		marginalTasks := float64(2 * (grid + 1) * (deepIters - shallowIters))
		perTask := (deep - shallow) / marginalTasks
		t.Logf("allocs: shallow=%.0f deep=%.0f marginal/task=%.2f (budget %v)",
			shallow, deep, perTask, budget)
		if perTask > budget {
			t.Errorf("multi-tenant hot path allocates %.2f allocations per task, budget %v", perTask, budget)
		}
	})
}
