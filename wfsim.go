// Package wfsim is a task-based workflow runtime and heterogeneous
// CPU-GPU cluster simulator: a from-scratch Go reproduction of
// "Performance Analysis of Distributed GPU-Accelerated Task-Based
// Workflows" (EDBT 2024).
//
// The package re-exports the stable public surface:
//
//   - Workflow construction and the two execution backends (a deterministic
//     discrete-event cluster simulator and a real goroutine-pool executor);
//   - the block-partitioned dataset abstraction (dislib-style ds-arrays);
//   - the calibrated cost model of the paper's Minotauro testbed;
//   - the paper's workloads (blocked Matmul, distributed K-means);
//   - every experiment of the paper's evaluation, runnable by ID.
//
// Quick start:
//
//	wf, _ := wfsim.BuildKMeans(wfsim.KMeansConfig{
//		Dataset: wfsim.Datasets.KMeansSmall, Grid: 256, Clusters: 10,
//	})
//	res, _ := wfsim.RunSim(wf, wfsim.SimConfig{Device: wfsim.GPU})
//	fmt.Println(res.Makespan)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and the paper-to-module map.
package wfsim

import (
	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/linreg"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/dsarray"
	"wfsim/internal/experiments"
	"wfsim/internal/faults"
	"wfsim/internal/metrics"
	"wfsim/internal/model"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/service"
	"wfsim/internal/sim"
	"wfsim/internal/storage"
)

// Core workflow types.
type (
	// Workflow is an application expressed as tasks over named data.
	Workflow = runtime.Workflow
	// TaskSpec couples a task's analytic cost profile with its real kernel.
	TaskSpec = runtime.TaskSpec
	// Store is the local backend's in-memory data space.
	Store = runtime.Store
	// SimConfig selects the simulated environment (cluster, storage,
	// scheduler, processor type).
	SimConfig = runtime.SimConfig
	// SimResult carries simulated metrics.
	SimResult = runtime.SimResult
	// FaultConfig parameterizes deterministic failure injection
	// (SimConfig.Faults); the zero value disables it.
	FaultConfig = faults.Config
	// FaultStats summarizes injected failures and recovery cost
	// (SimResult.Faults).
	FaultStats = runtime.FaultStats
	// Arena recycles a run's substrate allocations across trials
	// (SimConfig.Arena); one run at a time per arena.
	Arena = runtime.Arena
	// MetricsSink consumes stage records as a run produces them
	// (SimConfig.Sink); use Aggregates for O(1)-memory streaming runs.
	MetricsSink = metrics.Sink
	// Aggregates is a streaming MetricsSink that folds records into the
	// paper's aggregate metrics on the fly, bit-for-bit equal to querying
	// a retained-records collector.
	Aggregates = metrics.Aggregates
	// LocalConfig controls real execution.
	LocalConfig = runtime.LocalConfig
	// LocalResult carries real-execution results.
	LocalResult = runtime.LocalResult
	// Param declares a task's data access (name + direction).
	Param = dag.Param
	// Profile is a task's analytic cost profile.
	Profile = costmodel.Profile
	// Params are the calibrated testbed constants.
	Params = costmodel.Params
	// ClusterSpec describes a cluster topology.
	ClusterSpec = cluster.Spec
	// Dataset describes a dense float64 matrix.
	Dataset = dataset.Dataset
	// Block is one materialized (or lazy) tile of a dataset.
	Block = dataset.Block
	// BlockID addresses a block within a grid.
	BlockID = dataset.BlockID
	// Partition is a grid layout of a dataset.
	Partition = dataset.Partition
	// Generator produces reproducible synthetic data.
	Generator = dataset.Generator
	// Experiment is one reproducible paper artifact.
	Experiment = experiments.Experiment
	// Runner executes experiment trials on a bounded worker pool with
	// cancellation and memoization.
	Runner = runner.Engine
)

// Parameter directions (PyCOMPSs-style).
const (
	In    = dag.In
	Out   = dag.Out
	InOut = dag.InOut
)

// Processor types (the paper's Table 1 factor f).
const (
	CPU = costmodel.CPU
	GPU = costmodel.GPU
)

// Storage architectures (factor g).
const (
	SharedDisk = storage.Shared
	LocalDisk  = storage.Local
)

// Scheduling policies (factor h). The first four are the paper's
// COMPSs-style baselines; the rest are the lookahead and work-stealing
// extensions studied under the calibrated dispatch-cost model (ext6).
const (
	GenerationOrder = sched.FIFO
	DataLocality    = sched.Locality
	LIFO            = sched.LIFO
	RandomPlacement = sched.Random
	HEFT            = sched.HEFT
	BLevel          = sched.BLevel
	MinMin          = sched.MinMin
	WorkStealing    = sched.WorkSteal
)

// QueueKind selects the engine's pending-event queue implementation.
type QueueKind = sim.QueueKind

// Event-queue selection (SimConfig.EventQueue). QueueAuto — the zero
// value — starts on the heap and migrates to the ladder queue when the
// pending-event population crosses the engine's threshold; the choice
// never changes a run's trace, only its speed at scale.
const (
	QueueAuto   = sim.QueueAuto
	QueueHeap   = sim.QueueHeap
	QueueLadder = sim.QueueLadder
)

// NewWorkflow returns an empty workflow.
func NewWorkflow(name string) *Workflow { return runtime.NewWorkflow(name) }

// NewAggregates returns an empty streaming metrics aggregator.
func NewAggregates() *Aggregates { return metrics.NewAggregates() }

// RunSim executes the workflow on the simulated cluster.
func RunSim(wf *Workflow, cfg SimConfig) (*SimResult, error) { return runtime.RunSim(wf, cfg) }

// RunLocal executes the workflow's real kernels on a goroutine pool.
func RunLocal(wf *Workflow, cfg LocalConfig) (*LocalResult, error) { return runtime.RunLocal(wf, cfg) }

// Minotauro returns the paper's cluster topology (8 nodes × 16 cores ×
// 4 GPUs).
func Minotauro() ClusterSpec { return cluster.Minotauro() }

// DefaultParams returns the calibrated testbed model.
func DefaultParams() Params { return costmodel.DefaultParams() }

// NewBlock allocates a materialized zero block of the given shape.
func NewBlock(id BlockID, rows, cols int64) *Block { return dataset.NewBlock(id, rows, cols) }

// NewGenerator returns a seeded uniform data generator.
func NewGenerator(seed uint64) *Generator { return dataset.NewGenerator(seed) }

// NewSkewedGenerator returns a seeded 50%-skew generator (Figure 9b).
func NewSkewedGenerator(seed uint64) *Generator { return dataset.NewSkewedGenerator(seed) }

// ByGrid partitions a dataset into a k×l grid (Eq. (1) of the paper).
func ByGrid(d Dataset, k, l int64) (Partition, error) { return dataset.ByGrid(d, k, l) }

// ByBlock partitions a dataset by block dimension (Eq. (2) of the paper).
func ByBlock(d Dataset, m, n int64) (Partition, error) { return dataset.ByBlock(d, m, n) }

// Workload configs.
type (
	// MatmulConfig parameterizes a blocked matrix multiplication.
	MatmulConfig = matmul.Config
	// KMeansConfig parameterizes a distributed K-means.
	KMeansConfig = kmeans.Config
)

// BuildMatmul constructs a dislib-style blocked Matmul workflow.
func BuildMatmul(cfg MatmulConfig) (*Workflow, error) { return matmul.Build(cfg) }

// BuildKMeans constructs a dislib-style distributed K-means workflow.
func BuildKMeans(cfg KMeansConfig) (*Workflow, error) { return kmeans.Build(cfg) }

// Datasets groups the paper's preset datasets.
var Datasets = struct {
	MatmulSmall, MatmulLarge, MatmulSkew, MatmulTiny Dataset
	KMeansSmall, KMeansLarge, KMeansSkew, KMeansTiny Dataset
}{
	dataset.MatmulSmall, dataset.MatmulLarge, dataset.MatmulSkew, dataset.MatmulTiny,
	dataset.KMeansSmall, dataset.KMeansLarge, dataset.KMeansSkew, dataset.KMeansTiny,
}

// NewRunner returns a trial-execution engine with the given worker count
// (0 or negative = all CPUs). Pass it to Experiment.Run; sharing one
// engine across experiments shares its memoization cache.
func NewRunner(workers int) *Runner { return runner.New(workers) }

// ExperimentByID returns a paper experiment (fig1, fig7a, ... table1).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// AllExperiments lists every registered paper experiment.
func AllExperiments() []Experiment { return experiments.All() }

// Advisor re-exports the analytic device-selection model (§5.4.3 "toward
// automated design"): closed-form predictions of whether GPU offload pays
// off for a task profile, validated against the simulator.
type Advisor = model.Advisor

// Recommendation is the advisor's verdict for a task profile.
type Recommendation = model.Recommendation

// NewAdvisor returns an advisor for the paper's default environment
// (Minotauro, shared disk).
func NewAdvisor() *Advisor { return model.NewAdvisor() }

// Breakdown decomposes a task profile's user-code time analytically
// (serial/parallel/communication, Amdahl limit) without simulation.
func Breakdown(p Params, prof Profile) model.UserCodeBreakdown { return model.Breakdown(p, prof) }

// ArrayContext is the dislib-style distributed-array layer (§3.5 of the
// paper): compose block-partitioned matrix expressions and the runtime
// derives the task DAG.
type ArrayContext = dsarray.Context

// Array is a handle to a block-partitioned matrix within an ArrayContext.
type Array = dsarray.Array

// NewArrayContext creates a distributed-array context; materialize selects
// real blocks (local backend) vs metadata-only (simulation).
func NewArrayContext(name string, materialize bool) *ArrayContext {
	return dsarray.New(name, materialize)
}

// LinRegConfig parameterizes distributed linear regression via local
// gradient descent — the third algorithm on the parallel-fraction spectrum
// (the paper's §5.5.1 extension direction).
type LinRegConfig = linreg.Config

// BuildLinReg constructs a distributed linear-regression workflow.
func BuildLinReg(cfg LinRegConfig) (*Workflow, error) { return linreg.Build(cfg) }

// Multi-tenant online simulation: one shared simulated cluster serving a
// stream of workflows from several tenants, with weighted fair-share
// dispatch, admission quotas and streaming service metrics.
type (
	// ServiceConfig parameterizes an online service run (cluster, seed,
	// tenant workload streams).
	ServiceConfig = service.Config
	// ServiceTenant describes one workload stream: fair-share weight,
	// admission quota, Poisson rate or interarrival trace, and the
	// workflow builder.
	ServiceTenant = service.Tenant
	// ServiceResult carries per-tenant queue-wait / response / slowdown
	// distributions plus horizon and utilization.
	ServiceResult = service.Result
	// TenantReport is one tenant's service-level outcome.
	TenantReport = service.TenantReport
	// ClusterSim is the lower-level substrate: submit workflows at chosen
	// virtual instants onto one shared cluster and collect per-workflow
	// results as they finish.
	ClusterSim = runtime.ClusterSim
	// TenantSpec configures one ClusterSim tenant (weight, quota).
	TenantSpec = runtime.TenantSpec
	// WorkflowResult is one completed workflow's outcome in a ClusterSim.
	WorkflowResult = runtime.WorkflowResult
)

// RunService executes the configured arrival streams on one shared
// cluster and returns per-tenant service statistics. Deterministic in
// (config, seed).
func RunService(cfg ServiceConfig) (*ServiceResult, error) { return service.Run(cfg) }

// NewClusterSim builds a shared-cluster simulation ready to accept
// workflow submissions from the given tenants.
func NewClusterSim(cfg SimConfig, tenants []TenantSpec) (*ClusterSim, error) {
	return runtime.NewClusterSim(cfg, tenants)
}
