package wfsim_test

import (
	"fmt"
	"log"
	"math"
	"testing"

	"wfsim"
)

func TestFacadeKMeansSim(t *testing.T) {
	wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
		Dataset: wfsim.Datasets.KMeansSmall, Grid: 64, Clusters: 10, Iterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfsim.RunSim(wf, wfsim.SimConfig{
		Device:  wfsim.GPU,
		Storage: wfsim.LocalDisk,
		Policy:  wfsim.DataLocality,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.GPUUtilization <= 0 {
		t.Fatalf("makespan=%v gpuutil=%v", res.Makespan, res.GPUUtilization)
	}
}

func TestFacadeMatmulLocal(t *testing.T) {
	wf, err := wfsim.BuildMatmul(wfsim.MatmulConfig{
		Dataset:     wfsim.Dataset{Name: "t", Rows: 64, Cols: 64},
		Grid:        2,
		Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfsim.RunLocal(wf, wfsim.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Get("C[0,0]") == nil {
		t.Fatal("output block missing")
	}
}

func TestFacadePartitionMath(t *testing.T) {
	p, err := wfsim.ByGrid(wfsim.Datasets.MatmulSmall, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockBytes() != 512<<20 {
		t.Fatalf("block bytes = %d", p.BlockBytes())
	}
	p2, err := wfsim.ByBlock(wfsim.Datasets.MatmulSmall, p.BlockRows, p.BlockCols)
	if err != nil {
		t.Fatal(err)
	}
	if p2.GridRows != 4 || p2.GridCols != 4 {
		t.Fatalf("round trip grid = %s", p2.GridString())
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := wfsim.AllExperiments()
	if len(all) < 11 {
		t.Fatalf("experiments = %d, want ≥ 11 (every paper artifact)", len(all))
	}
	if _, err := wfsim.ExperimentByID("fig1"); err != nil {
		t.Fatal(err)
	}
	if _, err := wfsim.ExperimentByID("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeClusterAndParams(t *testing.T) {
	spec := wfsim.Minotauro()
	if spec.TotalCores() != 128 || spec.TotalGPUs() != 32 {
		t.Fatalf("minotauro = %+v", spec)
	}
	params := wfsim.DefaultParams()
	if params.GPUMemBytes != 12e9 {
		t.Fatalf("GPU memory = %v, want the K80's 12 GB", params.GPUMemBytes)
	}
}

func TestFacadeGenerators(t *testing.T) {
	b := wfsim.NewBlock(wfsim.BlockID{}, 100, 100)
	wfsim.NewGenerator(1).Fill(b)
	var mean float64
	for _, v := range b.Data {
		mean += v
	}
	mean /= float64(len(b.Data))
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("uniform mean = %v", mean)
	}
	sk := wfsim.NewBlock(wfsim.BlockID{}, 100, 100)
	wfsim.NewSkewedGenerator(1).Fill(sk)
	if sk.Data[0] == b.Data[0] && sk.Data[1] == b.Data[1] {
		t.Fatal("skewed generator produced uniform stream")
	}
}

// ExampleNewWorkflow demonstrates defining and simulating a workflow.
func ExampleNewWorkflow() {
	wf := wfsim.NewWorkflow("example")
	wf.SetSize("x", 1e6)
	wf.SetSize("y", 1e6)
	prof := wfsim.Profile{SerialOps: 1e5, ParallelOps: 1e8, Threads: 1e5,
		BytesIn: 1e6, BytesOut: 1e6, DeviceMemBytes: 2e6, HostMemBytes: 2e6}
	wf.AddTask("make", wfsim.TaskSpec{Profile: prof}, wfsim.Param{Data: "x", Dir: wfsim.Out})
	wf.AddTask("use", wfsim.TaskSpec{Profile: prof},
		wfsim.Param{Data: "x", Dir: wfsim.In}, wfsim.Param{Data: "y", Dir: wfsim.Out})
	fmt.Println("tasks:", wf.Graph.Len(), "height:", wf.Graph.MaxHeight())
	// Output:
	// tasks: 2 height: 2
}

// ExampleRunSim demonstrates projecting the paper's K-means onto the
// simulated Minotauro cluster.
func ExampleRunSim() {
	wf, err := wfsim.BuildKMeans(wfsim.KMeansConfig{
		Dataset: wfsim.Datasets.KMeansSmall, Grid: 256, Clusters: 10, Iterations: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := wfsim.RunSim(wf, wfsim.SimConfig{Device: wfsim.CPU})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tasks simulated:", res.SchedDecisions)
	// Output:
	// tasks simulated: 257
}
