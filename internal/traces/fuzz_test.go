package traces

import (
	"strings"
	"testing"
)

// FuzzParse ensures the trace parser never panics and that accepted
// records always satisfy basic invariants, whatever bytes arrive (traces
// may come from foreign tools).
func FuzzParse(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("")
	f.Add("#Paraver header only\n")
	f.Add("1:1:1:1:1:0:100:2\n")
	f.Add("1:1:1:1:1:0:100\n")
	f.Add("2:9:9:9\n")
	f.Add("1:-1:1:1:1:-5:100:2\n")
	f.Add(strings.Repeat("1:1:1:1:1:0:1:1\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, r := range tr.Records {
			if r.EndNS < r.StartNS {
				t.Fatalf("accepted negative interval: %+v", r)
			}
		}
		// Aggregates must not panic on any accepted trace.
		_ = tr.StateTotals()
		_, _ = tr.Span()
		_ = tr.BusiestCores(3)
		_ = tr.MeanPerCore(1)
	})
}
