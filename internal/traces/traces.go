// Package traces reads and analyzes Paraver-style state traces — the
// instrumentation format the paper extracted its (de)serialization timings
// from (§4.4.3, via the Paraver toolchain on PyCOMPSs-generated traces).
//
// The format understood here is the state-record subset emitted by
// metrics.Collector.WritePRV:
//
//	#Paraver (header)
//	1:<core>:<appl>:<task>:<thread>:<start_ns>:<end_ns>:<state>
//
// An Analyzer recomputes, from the raw trace alone, the same aggregate
// views the paper builds in Paraver: total and per-core time in each
// state, state histograms, and busiest-core rankings. Round-tripping a
// simulation through WritePRV and this parser is tested to preserve every
// stage duration.
package traces

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one state interval of one (core, task) pair.
type Record struct {
	Core    int
	Task    int
	StartNS int64
	EndNS   int64
	State   int
}

// Duration returns the record length in nanoseconds.
func (r Record) Duration() int64 { return r.EndNS - r.StartNS }

// Trace is a parsed Paraver state trace.
type Trace struct {
	Header  string
	Records []Record
}

// Parse reads a state trace. Unknown record types (events, communications)
// are skipped, matching Paraver's tolerance; malformed state records are
// errors.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if t.Header == "" {
				t.Header = line
			}
			continue
		}
		fields := strings.Split(line, ":")
		if fields[0] != "1" { // not a state record
			continue
		}
		if len(fields) != 8 {
			return nil, fmt.Errorf("traces: line %d: state record has %d fields, want 8", lineNo, len(fields))
		}
		rec := Record{}
		var err error
		parse := func(s string) int64 {
			if err != nil {
				return 0
			}
			var v int64
			v, err = strconv.ParseInt(s, 10, 64)
			return v
		}
		rec.Core = int(parse(fields[1]))
		rec.Task = int(parse(fields[3]))
		rec.StartNS = parse(fields[5])
		rec.EndNS = parse(fields[6])
		rec.State = int(parse(fields[7]))
		if err != nil {
			return nil, fmt.Errorf("traces: line %d: %v", lineNo, err)
		}
		if rec.EndNS < rec.StartNS {
			return nil, fmt.Errorf("traces: line %d: negative interval", lineNo)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traces: %w", err)
	}
	return t, nil
}

// Span returns the trace's [min start, max end] window in nanoseconds.
func (t *Trace) Span() (start, end int64) {
	if len(t.Records) == 0 {
		return 0, 0
	}
	start, end = t.Records[0].StartNS, t.Records[0].EndNS
	for _, r := range t.Records[1:] {
		if r.StartNS < start {
			start = r.StartNS
		}
		if r.EndNS > end {
			end = r.EndNS
		}
	}
	return start, end
}

// StateTotals returns the total nanoseconds spent in each state across all
// cores — Paraver's state profile.
func (t *Trace) StateTotals() map[int]int64 {
	out := make(map[int]int64)
	for _, r := range t.Records {
		out[r.State] += r.Duration()
	}
	return out
}

// PerCoreState returns, per core, the total nanoseconds in the given state
// — the view the paper uses for its per-core (de)serialization metric.
func (t *Trace) PerCoreState(state int) map[int]int64 {
	out := make(map[int]int64)
	for _, r := range t.Records {
		if r.State == state {
			out[r.Core] += r.Duration()
		}
	}
	return out
}

// MeanPerCore returns the mean per-active-core time in the given state, in
// seconds.
func (t *Trace) MeanPerCore(state int) float64 {
	per := t.PerCoreState(state)
	if len(per) == 0 {
		return 0
	}
	var sum int64
	for _, v := range per {
		sum += v
	}
	return float64(sum) / float64(len(per)) / 1e9
}

// BusiestCores returns up to n (core, busy-ns) pairs sorted by decreasing
// total state time — a load-imbalance view.
func (t *Trace) BusiestCores(n int) []CoreLoad {
	per := make(map[int]int64)
	for _, r := range t.Records {
		per[r.Core] += r.Duration()
	}
	out := make([]CoreLoad, 0, len(per))
	for c, v := range per {
		out = append(out, CoreLoad{Core: c, BusyNS: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusyNS != out[j].BusyNS {
			return out[i].BusyNS > out[j].BusyNS
		}
		return out[i].Core < out[j].Core
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// CoreLoad is a core's aggregate busy time.
type CoreLoad struct {
	Core   int
	BusyNS int64
}

// Histogram buckets state durations into bins of width ns; the result maps
// bin index -> count. Paraver's 2D histograms reduce to this per state.
func (t *Trace) Histogram(state int, binNS int64) map[int64]int {
	out := make(map[int64]int)
	for _, r := range t.Records {
		if r.State == state {
			out[r.Duration()/binNS]++
		}
	}
	return out
}
