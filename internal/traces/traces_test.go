package traces

import (
	"math"
	"strings"
	"testing"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/metrics"
	"wfsim/internal/runtime"
)

const sampleTrace = `#Paraver (wfsim):1000_ns:1(3):1:1(3:1)
1:1:1:1:1:0:100:2
1:1:1:1:1:100:400:4
1:2:1:2:1:0:200:2
1:2:1:2:1:200:900:4
9:9:9
`

func TestParse(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 4 {
		t.Fatalf("records = %d, want 4 (non-state lines skipped)", len(tr.Records))
	}
	if !strings.HasPrefix(tr.Header, "#Paraver") {
		t.Fatalf("header = %q", tr.Header)
	}
	r := tr.Records[1]
	if r.Core != 1 || r.Task != 1 || r.StartNS != 100 || r.EndNS != 400 || r.State != 4 {
		t.Fatalf("record = %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1:1:1:1:1:0:100",     // 7 fields
		"1:x:1:1:1:0:100:2",   // non-numeric
		"1:1:1:1:1:500:100:2", // negative interval
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("accepted malformed record %q", c)
		}
	}
}

func TestAggregates(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	start, end := tr.Span()
	if start != 0 || end != 900 {
		t.Fatalf("span = [%d,%d]", start, end)
	}
	totals := tr.StateTotals()
	if totals[2] != 300 { // 100 + 200
		t.Fatalf("state 2 total = %d, want 300", totals[2])
	}
	if totals[4] != 1000 { // 300 + 700
		t.Fatalf("state 4 total = %d, want 1000", totals[4])
	}
	per := tr.PerCoreState(4)
	if per[1] != 300 || per[2] != 700 {
		t.Fatalf("per-core state 4 = %v", per)
	}
	if got := tr.MeanPerCore(4); math.Abs(got-500e-9) > 1e-15 {
		t.Fatalf("mean per core = %v, want 500ns", got)
	}
	busiest := tr.BusiestCores(1)
	if len(busiest) != 1 || busiest[0].Core != 2 || busiest[0].BusyNS != 900 {
		t.Fatalf("busiest = %+v", busiest)
	}
	hist := tr.Histogram(2, 150)
	if hist[0] != 1 || hist[1] != 1 {
		t.Fatalf("histogram = %v", hist)
	}
}

// TestRoundTripWithSimulator runs a real simulated workflow, exports its
// Paraver trace and re-derives the paper's per-core deserialization metric
// from the trace alone — it must match the collector's value.
func TestRoundTripWithSimulator(t *testing.T) {
	wf, err := kmeans.Build(kmeans.Config{
		Dataset: dataset.KMeansSmall, Grid: 32, Clusters: 10, Iterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.Collector.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != res.Collector.Len() {
		t.Fatalf("trace records = %d, collector = %d", len(tr.Records), res.Collector.Len())
	}
	// WritePRV encodes stage as state = int(Stage)+1 and core as Core+1.
	deserState := int(metrics.StageDeser) + 1
	fromTrace := tr.MeanPerCore(deserState)
	fromCollector := res.Collector.MovementPerCore(metrics.StageDeser)
	if rel := math.Abs(fromTrace-fromCollector) / fromCollector; rel > 1e-6 {
		t.Fatalf("per-core deser from trace %v vs collector %v (rel %v)",
			fromTrace, fromCollector, rel)
	}
	// Trace span must equal the collected makespan (ns resolution).
	s, e := tr.Span()
	if math.Abs(float64(e-s)/1e9-res.Collector.Makespan()) > 1e-6 {
		t.Fatalf("trace span %v vs makespan %v", float64(e-s)/1e9, res.Collector.Makespan())
	}
}
