package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetSizes(t *testing.T) {
	cases := []struct {
		d    Dataset
		gb   float64
		elem int64
	}{
		{MatmulSmall, 8, 1 << 30},
		{MatmulLarge, 32, 4 << 30},
		{MatmulSkew, 2, 256 << 20},
		{KMeansSmall, 10, 1_250_000_000},
		{KMeansLarge, 100, 12_500_000_000},
		{KMeansSkew, 1, 125_000_000},
	}
	for _, c := range cases {
		if c.d.Elements() != c.elem {
			t.Errorf("%s: elements = %d, want %d", c.d.Name, c.d.Elements(), c.elem)
		}
		gotGB := float64(c.d.SizeBytes()) / 1e9
		gotGiB := float64(c.d.SizeBytes()) / (1 << 30)
		// Paper sizes are approximate decimal/binary GB; accept either
		// interpretation within 8%.
		if math.Abs(gotGB-c.gb)/c.gb > 0.08 && math.Abs(gotGiB-c.gb)/c.gb > 0.08 {
			t.Errorf("%s: size = %.2f GB / %.2f GiB, want ≈%v", c.d.Name, gotGB, gotGiB, c.gb)
		}
	}
}

func TestByGridEquationOne(t *testing.T) {
	// Paper Eq. (1): i = k·m, j = l·n for exact partitions.
	p, err := ByGrid(MatmulSmall, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockRows != 8192 || p.BlockCols != 8192 {
		t.Fatalf("block = %dx%d, want 8192x8192", p.BlockRows, p.BlockCols)
	}
	if got := p.BlockBytes(); got != 512<<20 {
		t.Fatalf("block bytes = %d, want 512 MB", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByGridRagged(t *testing.T) {
	// 12.5M rows over 256 grid rows is not exact: 48829-row blocks with a
	// smaller last block.
	p, err := ByGrid(KMeansSmall, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, id := range p.Blocks() {
		r, c, err := p.BlockShape(id.Row, id.Col)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 || c <= 0 {
			t.Fatalf("block %v has shape %dx%d", id, r, c)
		}
		total += r * c
	}
	if total != KMeansSmall.Elements() {
		t.Fatalf("blocks cover %d elements, want %d", total, KMeansSmall.Elements())
	}
	// Paper labels this configuration "39 MB" blocks.
	mb := float64(p.BlockBytes()) / (1 << 20)
	if mb < 36 || mb > 40 {
		t.Fatalf("256x1 block size = %.1f MB, want ≈39 MB", mb)
	}
}

func TestByBlockRoundTrip(t *testing.T) {
	// Eq. (2): partitioning by the block dims derived from a grid
	// partition must reproduce the grid.
	f := func(rowsRaw, colsRaw, kRaw, lRaw uint16) bool {
		rows := int64(rowsRaw)%5000 + 1
		cols := int64(colsRaw)%5000 + 1
		k := int64(kRaw)%32 + 1
		l := int64(lRaw)%32 + 1
		if k > rows || l > cols {
			return true // skip invalid combos
		}
		d := Dataset{Name: "t", Rows: rows, Cols: cols}
		p1, err := ByGrid(d, k, l)
		if err != nil {
			return false
		}
		if p1.Validate() != nil {
			return false
		}
		p2, err := ByBlock(d, p1.BlockRows, p1.BlockCols)
		if err != nil {
			return false
		}
		return p2.GridRows == p1.GridRows && p2.GridCols == p1.GridCols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksCoverDataset(t *testing.T) {
	// Property: for any valid partition, blocks tile the dataset exactly.
	f := func(rowsRaw, colsRaw, mRaw, nRaw uint16) bool {
		rows := int64(rowsRaw)%3000 + 1
		cols := int64(colsRaw)%3000 + 1
		m := int64(mRaw)%300 + 1
		n := int64(nRaw)%300 + 1
		if m > rows || n > cols {
			return true
		}
		d := Dataset{Name: "t", Rows: rows, Cols: cols}
		p, err := ByBlock(d, m, n)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		var total int64
		for _, id := range p.Blocks() {
			r, c, err := p.BlockShape(id.Row, id.Col)
			if err != nil || r <= 0 || c <= 0 || r > m || c > n {
				return false
			}
			total += r * c
		}
		return total == d.Elements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	d := Dataset{Name: "t", Rows: 10, Cols: 10}
	if _, err := ByGrid(d, 0, 1); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := ByGrid(d, 11, 1); err == nil {
		t.Error("grid larger than dataset accepted")
	}
	if _, err := ByBlock(d, 0, 5); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := ByBlock(d, 20, 5); err == nil {
		t.Error("block larger than dataset accepted")
	}
	if _, err := ByGrid(Dataset{Name: "bad", Rows: 0, Cols: 5}, 1, 1); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestGeneratorReproducible(t *testing.T) {
	g1 := NewGenerator(42)
	g2 := NewGenerator(42)
	b1 := NewBlock(BlockID{1, 2}, 10, 10)
	b2 := NewBlock(BlockID{1, 2}, 10, 10)
	g1.Fill(b1)
	g2.Fill(b2)
	for i := range b1.Data {
		if b1.Data[i] != b2.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	g3 := NewGenerator(43)
	b3 := NewBlock(BlockID{1, 2}, 10, 10)
	g3.Fill(b3)
	same := true
	for i := range b1.Data {
		if b1.Data[i] != b3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratorBlockIndependence(t *testing.T) {
	// A block's content must not depend on materialization order.
	g := NewGenerator(7)
	a := NewBlock(BlockID{0, 0}, 5, 5)
	b := NewBlock(BlockID{0, 1}, 5, 5)
	g.Fill(a)
	g.Fill(b)

	g2 := NewGenerator(7)
	b2 := NewBlock(BlockID{0, 1}, 5, 5)
	g2.Fill(b2) // filled first this time
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("block content depends on fill order")
		}
	}
}

func TestSkewedGenerator(t *testing.T) {
	g := NewSkewedGenerator(42)
	b := NewBlock(BlockID{0, 0}, 200, 200)
	g.Fill(b)
	// ~50% of values collapse into 8 bands of width 0.01; a histogram of
	// 100 bins must show strong concentration vs uniform.
	bins := make([]int, 100)
	for _, v := range b.Data {
		idx := int(v * 100)
		if idx < 0 {
			idx = 0
		}
		if idx > 99 {
			idx = 99
		}
		bins[idx]++
	}
	max := 0
	for _, c := range bins {
		if c > max {
			max = c
		}
	}
	expected := len(b.Data) / 100
	if max < 3*expected {
		t.Fatalf("skewed data not concentrated: max bin %d vs uniform %d", max, expected)
	}
	for _, v := range b.Data {
		if v < -0.02 || v > 1.02 {
			t.Fatalf("skewed value %v outside domain", v)
		}
	}
}

func TestFillBlobs(t *testing.T) {
	g := NewGenerator(1)
	a := NewBlock(BlockID{0, 0}, 50, 4)
	b := NewBlock(BlockID{1, 0}, 50, 4)
	g.FillBlobs(a, 3, 0.1)
	g.FillBlobs(b, 3, 0.1)
	// Different blocks get different rows but share blob centers: the
	// per-column value ranges should overlap substantially.
	for j := int64(0); j < 4; j++ {
		minA, maxA := math.Inf(1), math.Inf(-1)
		for r := int64(0); r < a.Rows; r++ {
			v := a.At(r, j)
			minA, maxA = math.Min(minA, v), math.Max(maxA, v)
		}
		if maxA-minA < 0.1 {
			t.Fatalf("blobs column %d has no spread", j)
		}
	}
}

func TestBlockHelpers(t *testing.T) {
	b := NewBlock(BlockID{0, 0}, 3, 4)
	if !b.Materialized() {
		t.Fatal("NewBlock not materialized")
	}
	if b.Bytes() != 3*4*8 {
		t.Fatalf("Bytes = %d", b.Bytes())
	}
	b.Set(2, 3, 7.5)
	if b.At(2, 3) != 7.5 {
		t.Fatal("At/Set roundtrip failed")
	}
	c := b.Clone()
	c.Set(2, 3, 1.0)
	if b.At(2, 3) != 7.5 {
		t.Fatal("Clone not deep")
	}
	lz := NewLazyBlock(BlockID{1, 1}, 10, 10)
	if lz.Materialized() {
		t.Fatal("lazy block claims materialized")
	}
}

func TestMaterializeBudget(t *testing.T) {
	p, err := ByGrid(Dataset{Name: "t", Rows: 1000, Cols: 1000}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Materialize(NewGenerator(1), 1000); err == nil {
		t.Fatal("materialization over budget accepted")
	}
	blocks, err := p.Materialize(NewGenerator(1), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 16 {
		t.Fatalf("got %d blocks, want 16", len(blocks))
	}
	var total int64
	for _, b := range blocks {
		if !b.Materialized() {
			t.Fatal("block not materialized")
		}
		total += b.Rows * b.Cols
	}
	if total != 1000*1000 {
		t.Fatalf("materialized %d elements, want 1e6", total)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2 << 10:   "2KB",
		8 << 30:   "8GB", // binary-clean: the paper's Matmul labels
		512 << 20: "512MB",
		// Decimal values: the paper's K-means labels (10 GB / 256 tasks
		// = 39.06 decimal MB → "39MB"; /32 = 312.5 → "313MB").
		39_062_500:     "39MB",
		312_500_000:    "313MB",
		10_000_000_000: "10GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
