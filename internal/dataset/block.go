package dataset

import (
	"fmt"
)

// BlockID addresses a block within a partition's grid.
type BlockID struct {
	Row, Col int64
}

func (id BlockID) String() string { return fmt.Sprintf("(%d,%d)", id.Row, id.Col) }

// Block is one tile of a partitioned dataset. Data is nil for lazy blocks
// (metadata-only simulation at paper scale) and a row-major float64 slice
// for materialized blocks (real execution).
type Block struct {
	ID         BlockID
	Rows, Cols int64
	Data       []float64
}

// NewBlock allocates a materialized zero block.
func NewBlock(id BlockID, rows, cols int64) *Block {
	return &Block{ID: id, Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewLazyBlock creates a metadata-only block.
func NewLazyBlock(id BlockID, rows, cols int64) *Block {
	return &Block{ID: id, Rows: rows, Cols: cols}
}

// Materialized reports whether the block carries data.
func (b *Block) Materialized() bool { return b.Data != nil }

// Bytes returns the block's in-memory size.
func (b *Block) Bytes() int64 { return b.Rows * b.Cols * ElemSize }

// At returns the element at row r, column c of a materialized block.
func (b *Block) At(r, c int64) float64 { return b.Data[r*b.Cols+c] }

// Set assigns the element at row r, column c of a materialized block.
func (b *Block) Set(r, c int64, v float64) { b.Data[r*b.Cols+c] = v }

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := &Block{ID: b.ID, Rows: b.Rows, Cols: b.Cols}
	if b.Data != nil {
		nb.Data = make([]float64, len(b.Data))
		copy(nb.Data, b.Data)
	}
	return nb
}

// Blocks enumerates the partition's block IDs in row-major order — the
// task generation order of the paper's FIFO scheduling policy.
func (p Partition) Blocks() []BlockID {
	ids := make([]BlockID, 0, p.NumBlocks())
	for r := int64(0); r < p.GridRows; r++ {
		for c := int64(0); c < p.GridCols; c++ {
			ids = append(ids, BlockID{Row: r, Col: c})
		}
	}
	return ids
}

// LazyBlocks creates metadata-only blocks for the whole grid.
func (p Partition) LazyBlocks() ([]*Block, error) {
	out := make([]*Block, 0, p.NumBlocks())
	for _, id := range p.Blocks() {
		r, c, err := p.BlockShape(id.Row, id.Col)
		if err != nil {
			return nil, err
		}
		out = append(out, NewLazyBlock(id, r, c))
	}
	return out, nil
}

// Materialize creates and fills all blocks of the partition using gen.
// Intended for example/test scale; it refuses datasets over the given
// budget to avoid accidentally allocating a paper-scale matrix.
func (p Partition) Materialize(gen *Generator, maxBytes int64) ([]*Block, error) {
	if p.SizeBytes() > maxBytes {
		return nil, fmt.Errorf("dataset %q: %s exceeds materialization budget %s",
			p.Name, FormatBytes(p.SizeBytes()), FormatBytes(maxBytes))
	}
	out := make([]*Block, 0, p.NumBlocks())
	for _, id := range p.Blocks() {
		r, c, err := p.BlockShape(id.Row, id.Col)
		if err != nil {
			return nil, err
		}
		b := NewBlock(id, r, c)
		gen.Fill(b)
		out = append(out, b)
	}
	return out, nil
}
