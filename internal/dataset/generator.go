package dataset

import (
	"math/rand/v2"
)

// Distribution selects the synthetic data distribution. The paper uses a
// uniform NumPy random dataset with a fixed random state for
// reproducibility (§4.4.5), plus a 50%-skewed variant for the data-skew
// experiment (§5.2.3, Figure 9b).
type Distribution int

const (
	// Uniform draws each element uniformly from [0, 1).
	Uniform Distribution = iota
	// Skewed reproduces the paper's skew construction: the uniform
	// distribution is adapted so that 50% of the elements are moved into
	// narrow regions, forcing groups of similar values.
	Skewed
)

func (d Distribution) String() string {
	if d == Skewed {
		return "50% skew"
	}
	return "0% skew"
}

// Generator produces reproducible synthetic block contents. Each block is
// filled from a PRNG stream seeded by the generator seed and the block ID,
// so a block's content is independent of materialization order — the
// analog of the paper's fixed NumPy random state.
type Generator struct {
	Seed uint64
	Dist Distribution
	// SkewFraction is the fraction of elements concentrated into narrow
	// regions when Dist == Skewed (the paper uses 0.5).
	SkewFraction float64
	// Regions is the number of narrow regions skewed elements collapse
	// into.
	Regions int
}

// NewGenerator returns a uniform generator with the given seed.
func NewGenerator(seed uint64) *Generator {
	return &Generator{Seed: seed, Dist: Uniform, SkewFraction: 0.5, Regions: 8}
}

// NewSkewedGenerator returns a generator reproducing the paper's 50%-skew
// datasets.
func NewSkewedGenerator(seed uint64) *Generator {
	g := NewGenerator(seed)
	g.Dist = Skewed
	return g
}

func (g *Generator) rngFor(id BlockID) *rand.Rand {
	// Derive a per-block stream: PCG keyed on (seed, block coordinates).
	return rand.New(rand.NewPCG(g.Seed, uint64(id.Row)<<32^uint64(uint32(id.Col))+0x9e3779b97f4a7c15))
}

// Fill populates a materialized block according to the generator's
// distribution. Lazy blocks are left untouched.
func (g *Generator) Fill(b *Block) {
	if b.Data == nil {
		return
	}
	rng := g.rngFor(b.ID)
	switch g.Dist {
	case Uniform:
		for i := range b.Data {
			b.Data[i] = rng.Float64()
		}
	case Skewed:
		regions := g.Regions
		if regions < 1 {
			regions = 1
		}
		for i := range b.Data {
			v := rng.Float64()
			if rng.Float64() < g.SkewFraction {
				// Collapse the value into one of a few narrow bands:
				// region center ± 0.5% of the domain.
				center := (float64(rng.IntN(regions)) + 0.5) / float64(regions)
				v = center + (v-0.5)*0.01
			}
			b.Data[i] = v
		}
	}
}

// FillBlobs populates a block with K-means-style clustered rows: each row
// is drawn from one of k Gaussian-ish blobs in col-dimensional space. Used
// by the K-means example so the algorithm has real structure to find.
func (g *Generator) FillBlobs(b *Block, k int, spread float64) {
	if b.Data == nil || k < 1 {
		return
	}
	// Blob centers come from a stream independent of the block ID so all
	// blocks share the same centers.
	crng := rand.New(rand.NewPCG(g.Seed, 0xb10b5))
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, b.Cols)
		for j := range centers[i] {
			centers[i][j] = crng.Float64() * 10
		}
	}
	rng := g.rngFor(b.ID)
	for r := int64(0); r < b.Rows; r++ {
		c := centers[rng.IntN(k)]
		for j := int64(0); j < b.Cols; j++ {
			b.Set(r, j, c[j]+rng.NormFloat64()*spread)
		}
	}
}
