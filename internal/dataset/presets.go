package dataset

// Preset datasets used throughout the paper's experiments (§4.4.5, §5.2.3,
// §5.4). Sizes are exact: e.g. MatmulSmall is 32768×32768 float64 = 8 GiB.
var (
	// MatmulSmall is the 8 GB, 32K × 32K (1024M elements) Matmul dataset.
	MatmulSmall = Dataset{Name: "matmul-8GB", Rows: 32768, Cols: 32768}
	// MatmulLarge is the 32 GB, 64K × 64K (4B elements) Matmul dataset.
	MatmulLarge = Dataset{Name: "matmul-32GB", Rows: 65536, Cols: 65536}
	// MatmulSkew is the 2 GB, 16K × 16K (256M elements) skew-experiment
	// dataset (Figure 9b).
	MatmulSkew = Dataset{Name: "matmul-2GB", Rows: 16384, Cols: 16384}
	// MatmulTiny is the 128 MB, 4000 × 4000 dataset added for the
	// correlation analysis (§5.4).
	MatmulTiny = Dataset{Name: "matmul-128MB", Rows: 4000, Cols: 4000}

	// KMeansSmall is the 10 GB, 12.5M samples × 100 features dataset.
	KMeansSmall = Dataset{Name: "kmeans-10GB", Rows: 12_500_000, Cols: 100}
	// KMeansLarge is the 100 GB, 125M samples × 100 features dataset.
	KMeansLarge = Dataset{Name: "kmeans-100GB", Rows: 125_000_000, Cols: 100}
	// KMeansSkew is the 1 GB, 1.25M samples × 100 features skew-experiment
	// dataset (Figure 9b).
	KMeansSkew = Dataset{Name: "kmeans-1GB", Rows: 1_250_000, Cols: 100}
	// KMeansTiny is the 100 MB, 125K samples × 100 features dataset added
	// for the correlation analysis (§5.4).
	KMeansTiny = Dataset{Name: "kmeans-100MB", Rows: 125_000, Cols: 100}
)

// MatmulGrids are the grid dimensions the paper sweeps for Matmul (g×g).
var MatmulGrids = []int64{1, 2, 4, 8, 16}

// KMeansGrids are the grid dimensions the paper sweeps for K-means (g×1).
var KMeansGrids = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
