// Package dataset implements the block-partitioned matrix abstraction the
// paper's programming model is built on (§3.5): an input dataset D(i×j) is
// split into blocks B(m×n) organized in a grid G(k×l), with the partition
// relationship of Eq. (1)-(2):
//
//	i = k·m,  j = l·n        (1)
//	k = i/m,  l = j/n        (2)
//
// The grid dimension is inversely proportional to the block dimension,
// which is the thread-level vs task-level parallelism trade-off at the
// center of the paper. Like dislib's ds-array, partitions here tolerate
// ragged edges: when the dataset dimension is not an exact multiple of the
// block dimension the last row/column of blocks is smaller.
//
// Blocks can be lazy (shape metadata only — used when simulating the
// paper-scale 8-100 GB datasets) or materialized with synthetic float64
// content from a seeded, reproducible generator (used by the real-execution
// backend and the examples).
package dataset

import (
	"fmt"
	"math"
)

// ElemSize is the size of one dataset element in bytes (float64, matching
// the paper's double-precision NumPy arrays).
const ElemSize = 8

// Dataset describes a dense matrix D(i×j) of float64 values. It is a
// descriptor: no data is attached until blocks are materialized.
type Dataset struct {
	// Name labels the dataset in traces and experiment outputs.
	Name string
	// Rows (i) and Cols (j) are the matrix dimensions.
	Rows, Cols int64
}

// Elements returns i×j, the total number of matrix elements.
func (d Dataset) Elements() int64 { return d.Rows * d.Cols }

// SizeBytes returns the dataset's in-memory size.
func (d Dataset) SizeBytes() int64 { return d.Elements() * ElemSize }

func (d Dataset) String() string {
	return fmt.Sprintf("%s(%dx%d, %s)", d.Name, d.Rows, d.Cols, FormatBytes(d.SizeBytes()))
}

// Validate checks the descriptor dimensions are positive.
func (d Dataset) Validate() error {
	if d.Rows <= 0 || d.Cols <= 0 {
		return fmt.Errorf("dataset %q: non-positive shape %dx%d", d.Name, d.Rows, d.Cols)
	}
	return nil
}

// Partition is a concrete grid layout of a dataset: the result of choosing
// a block dimension (the developer-controlled factor a) of Table 1).
type Partition struct {
	Dataset
	// BlockRows (m) and BlockCols (n) are the nominal block dimensions;
	// edge blocks may be smaller.
	BlockRows, BlockCols int64
	// GridRows (k) and GridCols (l) are the grid dimensions.
	GridRows, GridCols int64
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// ByGrid partitions a dataset into a k×l grid, deriving the block dimension
// from Eq. (1). This is how the paper's experiments are parameterized
// ("grid dimension 4x4", "256x1", ...).
func ByGrid(d Dataset, k, l int64) (Partition, error) {
	if err := d.Validate(); err != nil {
		return Partition{}, err
	}
	if k <= 0 || l <= 0 {
		return Partition{}, fmt.Errorf("dataset %q: non-positive grid %dx%d", d.Name, k, l)
	}
	if k > d.Rows || l > d.Cols {
		// Constraint 2 of §3.5: the grid cannot out-dimension the data.
		return Partition{}, fmt.Errorf("dataset %q: grid %dx%d exceeds dataset %dx%d",
			d.Name, k, l, d.Rows, d.Cols)
	}
	// Derive the block dimension from Eq. (1), then recompute the
	// effective grid: with ragged datasets the requested grid may be
	// unachievable with uniform blocks (e.g. 120 columns over a 32-wide
	// grid yields 4-wide blocks, which need only 30 grid columns).
	m, n := ceilDiv(d.Rows, k), ceilDiv(d.Cols, l)
	return Partition{
		Dataset:   d,
		BlockRows: m, BlockCols: n,
		GridRows: ceilDiv(d.Rows, m), GridCols: ceilDiv(d.Cols, n),
	}, nil
}

// ByBlock partitions a dataset by nominal block dimension m×n, deriving the
// grid from Eq. (2).
func ByBlock(d Dataset, m, n int64) (Partition, error) {
	if err := d.Validate(); err != nil {
		return Partition{}, err
	}
	if m <= 0 || n <= 0 {
		return Partition{}, fmt.Errorf("dataset %q: non-positive block %dx%d", d.Name, m, n)
	}
	if m > d.Rows || n > d.Cols {
		return Partition{}, fmt.Errorf("dataset %q: block %dx%d exceeds dataset %dx%d",
			d.Name, m, n, d.Rows, d.Cols)
	}
	return Partition{
		Dataset:   d,
		BlockRows: m, BlockCols: n,
		GridRows: ceilDiv(d.Rows, m), GridCols: ceilDiv(d.Cols, n),
	}, nil
}

// NumBlocks returns k×l, the grid size — which, at the paper's
// one-block-per-task granularity (§3.5), is also the number of tasks
// spawned per pass over the dataset.
func (p Partition) NumBlocks() int64 { return p.GridRows * p.GridCols }

// BlockBytes returns the nominal (full-size) block memory footprint — the
// "block size MB" axis of every figure.
func (p Partition) BlockBytes() int64 { return p.BlockRows * p.BlockCols * ElemSize }

// GridString renders the grid dimension the way the paper labels it, e.g.
// "4x4" or "256x1".
func (p Partition) GridString() string { return fmt.Sprintf("%dx%d", p.GridRows, p.GridCols) }

// BlockShape returns the actual dimensions of the block at grid position
// (r, c), accounting for ragged edges.
func (p Partition) BlockShape(r, c int64) (rows, cols int64, err error) {
	if r < 0 || r >= p.GridRows || c < 0 || c >= p.GridCols {
		return 0, 0, fmt.Errorf("dataset %q: block (%d,%d) outside grid %s", p.Name, r, c, p.GridString())
	}
	rows = p.BlockRows
	if r == p.GridRows-1 {
		rows = p.Rows - p.BlockRows*(p.GridRows-1)
	}
	cols = p.BlockCols
	if c == p.GridCols-1 {
		cols = p.Cols - p.BlockCols*(p.GridCols-1)
	}
	return rows, cols, nil
}

// Validate checks the partition against Eq. (1) within ragged-edge
// tolerance: every element belongs to exactly one block.
func (p Partition) Validate() error {
	if err := p.Dataset.Validate(); err != nil {
		return err
	}
	if p.GridRows <= 0 || p.GridCols <= 0 || p.BlockRows <= 0 || p.BlockCols <= 0 {
		return fmt.Errorf("dataset %q: non-positive partition", p.Name)
	}
	// k·m must cover i but (k-1)·m must not: otherwise a grid row is empty.
	if p.GridRows*p.BlockRows < p.Rows || (p.GridRows-1)*p.BlockRows >= p.Rows {
		return fmt.Errorf("dataset %q: grid rows %d with block rows %d do not tile %d rows",
			p.Name, p.GridRows, p.BlockRows, p.Rows)
	}
	if p.GridCols*p.BlockCols < p.Cols || (p.GridCols-1)*p.BlockCols >= p.Cols {
		return fmt.Errorf("dataset %q: grid cols %d with block cols %d do not tile %d cols",
			p.Name, p.GridCols, p.BlockCols, p.Cols)
	}
	return nil
}

// FormatBytes renders a byte count the way the paper labels sizes: binary
// units when the value is a clean binary multiple (512MB block of the 8 GiB
// Matmul dataset), decimal otherwise (39MB block of the 10 GB K-means
// dataset, 313MB, ...).
func FormatBytes(b int64) string {
	format := func(dec, bin float64, unit string) string {
		if r := math.Round(bin); math.Abs(bin-r) < 1e-6*math.Max(bin, 1) {
			return fmt.Sprintf("%.0f%s", r, unit)
		}
		return fmt.Sprintf("%.0f%s", math.Round(dec), unit)
	}
	switch {
	case b >= 1e9:
		return format(float64(b)/1e9, float64(b)/(1<<30), "GB")
	case b >= 1e6:
		return format(float64(b)/1e6, float64(b)/(1<<20), "MB")
	case b >= 1e3:
		return format(float64(b)/1e3, float64(b)/(1<<10), "KB")
	default:
		return fmt.Sprintf("%dB", b)
	}
}
