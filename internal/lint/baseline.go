package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wfsim/internal/lint/analysis"
)

// The suppression baseline is the committed debt ledger for the lint
// suite: findings the team has looked at and decided to carry rather
// than fix right now. Baselined findings still print (suffixed
// "(baselined)") so the debt stays visible, but they do not fail the
// build — new findings do. The file lives at <modroot>/lint.baseline and
// is regenerated with `wfsimlint -write-baseline`.
//
// Entries are matched by (file, rule, message) — deliberately not by
// line, so unrelated edits that shift code do not churn the baseline.
// Matching is a multiset: an entry listed twice absorbs two identical
// findings; a third still fails. Entries that no finding matched are
// reported as stale so the ledger shrinks as debt is paid.

// BaselineFile is the conventional baseline filename at the module root.
const BaselineFile = "lint.baseline"

// A Baseline is a parsed suppression list.
type Baseline struct {
	// entries counts remaining (unconsumed) occurrences per key.
	entries map[string]int
}

// LoadBaseline reads the baseline at path. A missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]int)}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.entries[line]++
	}
	return b, nil
}

// baselineKey renders a diagnostic in the baseline's line format:
// "relative/file.go: rule: message".
func baselineKey(modroot string, d analysis.Diagnostic) string {
	file := d.Position.Filename
	if rel, err := filepath.Rel(modroot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s: %s: %s", file, d.Rule, d.Message)
}

// Apply marks every diagnostic matched by a baseline entry as
// Suppressed, consuming entries multiset-style, and returns the stale
// entries no finding matched (sorted).
func (b *Baseline) Apply(modroot string, diags []analysis.Diagnostic) (stale []string) {
	for i := range diags {
		key := baselineKey(modroot, diags[i])
		if b.entries[key] > 0 {
			b.entries[key]--
			diags[i].Suppressed = true
		}
	}
	for key, n := range b.entries {
		for ; n > 0; n-- {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return stale
}

// FormatBaseline renders diags as baseline file content (header comment
// plus one sorted entry line per finding). Suppressed findings are
// included — regenerating the baseline keeps existing debt.
func FormatBaseline(modroot string, diags []analysis.Diagnostic) string {
	var lines []string
	for _, d := range diags {
		lines = append(lines, baselineKey(modroot, d))
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# wfsimlint suppression baseline: findings carried as known debt.\n")
	sb.WriteString("# Entries match by (file, rule, message); regenerate with `wfsimlint -write-baseline`.\n")
	sb.WriteString("# Baselined findings still print, suffixed \"(baselined)\", but do not fail the build.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return sb.String()
}
