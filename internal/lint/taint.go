package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// This file is the interprocedural taint engine shared by the module
// halves of walltime and seedrand. It computes, bottom-up over the call
// graph's SCCs, a per-function summary of how taint (wall-clock
// instants, entropy-derived seed material) flows from sources and
// parameters to results, struct fields, and package-level variables —
// then replays each function with the solved summaries to report call
// sites where tainted values leak into checked code.
//
// Tracked flows: assignments (including := and var decls), returns
// (positional, multi-value, and named-result bare returns), struct
// field stores (both `x.f = v` and composite literals), package-level
// variable stores, range statements, method values/calls on tainted
// receivers, and call boundaries (results and parameters, receiver
// included). Fields and globals are keyed by declaration position, so
// identity survives the loader type-checking a package twice (once as
// an import, once as a lint target).
//
// Deliberate approximations, documented here once: taint does not
// survive a store into a parameter-dependent field (only source-tainted
// values mark fields), writes from a closure to captured variables of
// the enclosing function are not seen by the encloser's analysis, and
// calls with no static callee (interface or function-value dispatch)
// return untainted values unless the receiver itself is tainted.

// A taintVal describes one value's taint: a non-empty src names the
// original source ("the wall clock (time.Now)"); params is a bitset of
// the enclosing function's parameters the value derives from (bit 63 is
// the method receiver).
type taintVal struct {
	src    string
	params uint64
}

const recvBit = uint64(1) << 63

func (v taintVal) tainted() bool { return v.src != "" || v.params != 0 }

func (v taintVal) or(w taintVal) taintVal {
	if v.src == "" {
		v.src = w.src
	}
	v.params |= w.params
	return v
}

// A funcSummary is one function's solved dataflow facts.
type funcSummary struct {
	// results is the taint of each result value.
	results []taintVal
	// seedParams are the parameters that reach a generator-seed sink
	// (directly or through further calls). seedrand only.
	seedParams uint64
}

// taintHooks parameterize the engine per rule.
type taintHooks struct {
	// source classifies an expression (CallExpr or SelectorExpr) as an
	// original taint source and names the culprit, or returns "".
	source func(info *types.Info, n ast.Node) string
	// seedCtor recognizes generator constructors whose arguments are
	// seeds (rand.New, rand.NewPCG, ...) and returns a display name.
	// Such calls also propagate argument taint to their result, so
	// rand.New(rand.NewSource(seed)) chains. Nil when the rule has no
	// seed sinks.
	seedCtor func(info *types.Info, call *ast.CallExpr) (string, bool)
}

// reportHooks receive findings during the replay pass.
type reportHooks struct {
	// taintedCall fires for a call whose result is source-tainted given
	// the actual arguments — the laundering case.
	taintedCall func(call *ast.CallExpr, callee *analysis.FuncNode, culprit string)
	// seedSink fires when a source-tainted value reaches a seed sink:
	// a generator constructor argument, or a parameter that a callee's
	// summary says flows onward into one.
	seedSink func(call *ast.CallExpr, sinkName string, culprit string)
}

type taintEngine struct {
	graph *analysis.Graph
	fset  *token.FileSet
	hooks taintHooks

	summaries map[*analysis.FuncNode]*funcSummary
	// stored maps a field or package-level var (by declaration position)
	// to the culprit of the source-tainted value stored into it.
	stored  map[string]string
	changed bool
}

func newTaintEngine(graph *analysis.Graph, fset *token.FileSet, hooks taintHooks) *taintEngine {
	return &taintEngine{
		graph:     graph,
		fset:      fset,
		hooks:     hooks,
		summaries: make(map[*analysis.FuncNode]*funcSummary),
		stored:    make(map[string]string),
	}
}

// solve computes summaries bottom-up over the SCCs, iterating the whole
// module to a fixed point: field facts discovered in a caller can feed
// back into its callees, so one bottom-up pass is not always enough.
func (e *taintEngine) solve() {
	for range [8]int{} {
		e.changed = false
		anySummary := false
		for _, scc := range e.graph.SCCs {
			// Mutually recursive functions iterate locally until stable.
			for range [4]int{} {
				sccChanged := false
				for _, n := range scc {
					if e.update(n) {
						sccChanged = true
						anySummary = true
					}
				}
				if !sccChanged {
					break
				}
			}
		}
		if !e.changed && !anySummary {
			break
		}
	}
}

// update recomputes n's summary; reports whether it changed. Global
// field facts changing is tracked separately via e.changed.
func (e *taintEngine) update(n *analysis.FuncNode) bool {
	sum := e.analyze(n, reportHooks{})
	old := e.summaries[n]
	e.summaries[n] = sum
	return old == nil || !summaryEqual(old, sum)
}

func summaryEqual(a, b *funcSummary) bool {
	if a.seedParams != b.seedParams || len(a.results) != len(b.results) {
		return false
	}
	for i := range a.results {
		if a.results[i] != b.results[i] {
			return false
		}
	}
	return true
}

// report replays n with the solved summaries, firing the hooks at
// offending call sites.
func (e *taintEngine) report(n *analysis.FuncNode, hooks reportHooks) {
	e.analyze(n, hooks)
}

// posKey identifies a types.Object across duplicate type-checks of the
// same source: both copies parse the same file into the shared FileSet,
// so declaration positions coincide.
func (e *taintEngine) posKey(obj types.Object) string {
	return e.fset.Position(obj.Pos()).String()
}

// funcState is the intraprocedural scratch for one function.
type funcState struct {
	eng     *taintEngine
	node    *analysis.FuncNode
	info    *types.Info
	vars    map[types.Object]taintVal
	results []taintVal
	named   []types.Object // named result objects, nil entries for _
	sink    uint64         // param bits reaching a seed sink
	hooks   reportHooks
	// stmtCalls are calls used as bare statements: their results are
	// discarded, so taintedCall does not fire for them.
	stmtCalls map[*ast.CallExpr]bool
	changed   bool
}

// analyze runs the intraprocedural fixpoint for n and returns its
// summary. When hooks are set, a final armed pass fires them.
func (e *taintEngine) analyze(n *analysis.FuncNode, hooks reportHooks) *funcSummary {
	sig := n.Sig()
	if sig == nil || n.Body() == nil {
		return &funcSummary{}
	}
	fs := &funcState{
		eng:       e,
		node:      n,
		info:      n.Pkg.Info,
		vars:      make(map[types.Object]taintVal),
		results:   make([]taintVal, sig.Results().Len()),
		stmtCalls: make(map[*ast.CallExpr]bool),
	}
	for i := 0; i < sig.Params().Len() && i < 63; i++ {
		fs.vars[sig.Params().At(i)] = taintVal{params: uint64(1) << i}
	}
	if recv := sig.Recv(); recv != nil {
		fs.vars[recv] = taintVal{params: recvBit}
	}
	if res := sig.Results(); res.Len() > 0 && res.At(0).Name() != "" {
		for i := 0; i < res.Len(); i++ {
			fs.named = append(fs.named, res.At(i))
		}
	}
	analysis.InspectOwn(n, func(nd ast.Node) {
		if es, ok := nd.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				fs.stmtCalls[call] = true
			}
		}
	})
	for range [8]int{} {
		fs.changed = false
		fs.walk()
		if !fs.changed {
			break
		}
	}
	if hooks.taintedCall != nil || hooks.seedSink != nil {
		fs.hooks = hooks
		fs.walk()
	}
	return &funcSummary{results: fs.results, seedParams: fs.sink}
}

// walk evaluates every statement in the function's own body region.
func (fs *funcState) walk() {
	analysis.InspectOwn(fs.node, func(nd ast.Node) {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			fs.assign(nd.Lhs, nd.Rhs)
		case *ast.GenDecl:
			if nd.Tok == token.VAR {
				for _, spec := range nd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) == 0 {
						continue
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					fs.assign(lhs, vs.Values)
				}
			}
		case *ast.RangeStmt:
			v := fs.eval(nd.X)
			if v.tainted() {
				for _, kv := range []ast.Expr{nd.Key, nd.Value} {
					if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
						fs.setObj(objOf(fs.info, id), v)
					}
				}
			}
		case *ast.ReturnStmt:
			fs.ret(nd)
		case *ast.CallExpr:
			// Evaluate calls in statement position too, so sinks and
			// field stores inside argument expressions are seen.
			fs.eval(nd)
		}
	})
}

func (fs *funcState) assign(lhs, rhs []ast.Expr) {
	var vals []taintVal
	if len(lhs) > 1 && len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			vals = fs.callResults(call, len(lhs))
		} else {
			v := fs.eval(rhs[0]) // comma-ok and similar
			vals = make([]taintVal, len(lhs))
			for i := range vals {
				vals[i] = v
			}
		}
	} else {
		vals = make([]taintVal, len(lhs))
		for i := range lhs {
			if i < len(rhs) {
				vals[i] = fs.eval(rhs[i])
			}
		}
	}
	for i, l := range lhs {
		fs.store(l, vals[i])
	}
}

// store records taint flowing into an lvalue.
func (fs *funcState) store(lhs ast.Expr, v taintVal) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := objOf(fs.info, l)
		if isPackageLevel(obj) {
			fs.storeGlobal(obj, v)
			return
		}
		fs.setObj(obj, v)
	case *ast.SelectorExpr:
		if sel, ok := fs.info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			fs.storeGlobal(sel.Obj(), v)
			return
		}
		// Qualified package-level var (pkg.V).
		if obj := objOf(fs.info, l.Sel); isPackageLevel(obj) {
			fs.storeGlobal(obj, v)
		}
	case *ast.IndexExpr:
		if id := rootIdent(l.X); id != nil {
			fs.setObj(objOf(fs.info, id), v) // container holds tainted element
		}
	case *ast.StarExpr:
		if id := rootIdent(l.X); id != nil {
			fs.setObj(objOf(fs.info, id), v)
		}
	}
}

// storeGlobal records a source-tainted store into a struct field or a
// package-level variable (parameter-dependent taint is dropped here:
// the summary cannot express "field f is tainted at some call sites").
func (fs *funcState) storeGlobal(obj types.Object, v taintVal) {
	if obj == nil || v.src == "" {
		return
	}
	key := fs.eng.posKey(obj)
	if fs.eng.stored[key] == "" {
		fs.eng.stored[key] = v.src
		fs.eng.changed = true
	}
}

func (fs *funcState) setObj(obj types.Object, v taintVal) {
	if obj == nil || !v.tainted() {
		return
	}
	merged := fs.vars[obj].or(v)
	if merged != fs.vars[obj] {
		fs.vars[obj] = merged
		fs.changed = true
	}
}

func (fs *funcState) ret(r *ast.ReturnStmt) {
	if len(r.Results) == 0 {
		for i, obj := range fs.named {
			if obj != nil && i < len(fs.results) {
				fs.mergeResult(i, fs.vars[obj])
			}
		}
		return
	}
	if len(r.Results) == 1 && len(fs.results) > 1 {
		if call, ok := ast.Unparen(r.Results[0]).(*ast.CallExpr); ok {
			for i, v := range fs.callResults(call, len(fs.results)) {
				fs.mergeResult(i, v)
			}
			return
		}
	}
	for i, res := range r.Results {
		if i < len(fs.results) {
			fs.mergeResult(i, fs.eval(res))
		}
	}
}

func (fs *funcState) mergeResult(i int, v taintVal) {
	merged := fs.results[i].or(v)
	if merged != fs.results[i] {
		fs.results[i] = merged
		fs.changed = true
	}
}

// eval computes the taint of an expression, recording sink hits and
// field stores it encounters along the way.
func (fs *funcState) eval(expr ast.Expr) taintVal {
	if expr == nil {
		return taintVal{}
	}
	switch ex := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := objOf(fs.info, ex)
		if v, ok := fs.vars[obj]; ok {
			return v
		}
		if isPackageLevel(obj) {
			if culprit := fs.eng.stored[fs.eng.posKey(obj)]; culprit != "" {
				return taintVal{src: culprit}
			}
		}
		return taintVal{}
	case *ast.SelectorExpr:
		if fs.eng.hooks.source != nil {
			if culprit := fs.eng.hooks.source(fs.info, ex); culprit != "" {
				return taintVal{src: culprit}
			}
		}
		if sel, ok := fs.info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
			if culprit := fs.eng.stored[fs.eng.posKey(sel.Obj())]; culprit != "" {
				return taintVal{src: culprit}
			}
			return fs.eval(ex.X) // field of a tainted struct value
		}
		if obj := objOf(fs.info, ex.Sel); isPackageLevel(obj) {
			if culprit := fs.eng.stored[fs.eng.posKey(obj)]; culprit != "" {
				return taintVal{src: culprit}
			}
			return taintVal{}
		}
		return fs.eval(ex.X) // method value on a tainted receiver
	case *ast.CallExpr:
		return fs.call(ex)
	case *ast.BinaryExpr:
		return fs.eval(ex.X).or(fs.eval(ex.Y))
	case *ast.UnaryExpr:
		return fs.eval(ex.X)
	case *ast.StarExpr:
		return fs.eval(ex.X)
	case *ast.IndexExpr:
		return fs.eval(ex.X)
	case *ast.SliceExpr:
		return fs.eval(ex.X)
	case *ast.TypeAssertExpr:
		return fs.eval(ex.X)
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				ev := fs.eval(kv.Value)
				v = v.or(ev)
				// Struct literal: a tainted element taints its field.
				if id, ok := kv.Key.(*ast.Ident); ok {
					if f, ok := fs.info.Uses[id].(*types.Var); ok && f.IsField() {
						fs.storeGlobal(f, ev)
					}
				}
				continue
			}
			v = v.or(fs.eval(el))
		}
		// Positional struct literal: taint fields by index.
		if st, ok := structTypeOf(fs.info, ex); ok {
			for i, el := range ex.Elts {
				if _, keyed := el.(*ast.KeyValueExpr); keyed {
					continue
				}
				if i < st.NumFields() {
					fs.storeGlobal(st.Field(i), fs.eval(el))
				}
			}
		}
		return v
	}
	return taintVal{}
}

// call evaluates a call expression: conversions, sources, seed-sink
// constructors, known callees (summary application), and unknown
// callees (receiver pass-through).
func (fs *funcState) call(call *ast.CallExpr) taintVal {
	info := fs.info
	// Type conversion: taint passes through unchanged.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return fs.eval(call.Args[0])
		}
		return taintVal{}
	}
	if fs.eng.hooks.source != nil {
		if culprit := fs.eng.hooks.source(info, call); culprit != "" {
			return taintVal{src: culprit}
		}
	}
	// Seed-sink constructor: check arguments, propagate their taint.
	if fs.eng.hooks.seedCtor != nil {
		if name, ok := fs.eng.hooks.seedCtor(info, call); ok {
			var v taintVal
			for _, arg := range call.Args {
				av := fs.eval(arg)
				v = v.or(av)
				if av.src != "" && fs.hooks.seedSink != nil {
					fs.hooks.seedSink(call, name, av.src)
				}
				fs.sinkBits(av)
			}
			return v
		}
	}
	callee := analysis.StaticCallee(info, call)
	node := fs.eng.graph.NodeOf(callee)
	if node == nil {
		// Unknown callee. Builtins and stdlib propagate argument and
		// receiver taint conservatively (t.UnixNano() is as tainted as
		// t), but produce no reports.
		var v taintVal
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := info.Selections[sel]; isMethod {
				v = fs.eval(sel.X)
			}
		}
		if isBuiltinCall(info, call) {
			for _, arg := range call.Args {
				v = v.or(fs.eval(arg))
			}
		}
		return v
	}
	sum := fs.eng.summaries[node]
	if sum != nil && sum.seedParams != 0 {
		sig := node.Sig()
		np := 0
		if sig != nil {
			np = sig.Params().Len()
		}
		for j := 0; j < np && j < 63; j++ {
			if sum.seedParams&(uint64(1)<<j) == 0 {
				continue
			}
			var av taintVal
			if j < len(call.Args) {
				av = fs.eval(call.Args[j])
			}
			if av.src != "" && fs.hooks.seedSink != nil {
				fs.hooks.seedSink(call, node.Name(), av.src)
			}
			fs.sinkBits(av)
		}
	}
	var v taintVal
	if sum != nil {
		for _, sv := range sum.results {
			v = v.or(fs.applyAt(node, call, sv))
		}
	}
	if v.src != "" && fs.hooks.taintedCall != nil && !fs.stmtCalls[call] {
		fs.hooks.taintedCall(call, node, v.src)
	}
	// Evaluate remaining arguments for their side effects on the
	// analysis (nested sinks, field stores).
	for _, arg := range call.Args {
		fs.eval(arg)
	}
	return v
}

// applyAt maps a summary value's parameter bits through the receiver and
// actual arguments at a call site.
func (fs *funcState) applyAt(node *analysis.FuncNode, call *ast.CallExpr, sv taintVal) taintVal {
	out := taintVal{src: sv.src}
	if sv.params == 0 {
		return out
	}
	if sv.params&recvBit != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := fs.info.Selections[sel]; isMethod {
				out = out.or(fs.eval(sel.X))
			}
		}
	}
	sig := node.Sig()
	if sig == nil {
		return out
	}
	np := sig.Params().Len()
	for j := 0; j < np && j < 63; j++ {
		if sv.params&(uint64(1)<<j) == 0 {
			continue
		}
		if sig.Variadic() && j == np-1 {
			for k := j; k < len(call.Args); k++ {
				out = out.or(fs.eval(call.Args[k]))
			}
			continue
		}
		if j < len(call.Args) {
			out = out.or(fs.eval(call.Args[j]))
		}
	}
	return out
}

// callResults evaluates a call in multi-value context (x, y := f()),
// preserving per-result taint when the callee's summary is known.
func (fs *funcState) callResults(call *ast.CallExpr, n int) []taintVal {
	vals := make([]taintVal, n)
	merged := fs.call(call)
	node := fs.eng.graph.NodeOf(analysis.StaticCallee(fs.info, call))
	if node == nil {
		for i := range vals {
			vals[i] = merged
		}
		return vals
	}
	sum := fs.eng.summaries[node]
	if sum == nil {
		return vals
	}
	for i := range vals {
		if i < len(sum.results) {
			vals[i] = fs.applyAt(node, call, sum.results[i])
		}
	}
	return vals
}

// sinkBits records that the given parameters flow into a seed sink.
func (fs *funcState) sinkBits(v taintVal) {
	if v.params != 0 && fs.sink|v.params != fs.sink {
		fs.sink |= v.params
		fs.changed = true
	}
}

// isPackageLevel reports whether obj lives beyond any one function
// activation — a struct field or a package-level variable — and so
// resolves through the engine's position-keyed stored map.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

func structTypeOf(info *types.Info, lit *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := info.Types[lit]
	if !ok {
		return nil, false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = objOf(info, id).(*types.Builtin)
	return ok
}
