package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"wfsim/internal/lint/analysis"
)

func mkDiag(root, file string, line int, rule, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{
		Position: token.Position{Filename: filepath.Join(root, file), Line: line, Column: 1},
		Rule:     rule,
		Message:  msg,
	}
}

func TestBaselineApply(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, BaselineFile)
	content := "# comment line\n" +
		"\n" +
		"a.go: hotalloc: append may grow\n" +
		"a.go: hotalloc: append may grow\n" + // duplicate: absorbs two findings
		"b.go: walltime: stale entry\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	diags := []analysis.Diagnostic{
		mkDiag(root, "a.go", 10, "hotalloc", "append may grow"),
		mkDiag(root, "a.go", 20, "hotalloc", "append may grow"), // second hit on the doubled entry
		mkDiag(root, "a.go", 30, "hotalloc", "append may grow"), // third: not absorbed
		mkDiag(root, "a.go", 10, "maporder", "other rule"),      // same file, different rule
	}
	stale := base.Apply(root, diags)

	wantSuppressed := []bool{true, true, false, false}
	for i, want := range wantSuppressed {
		if diags[i].Suppressed != want {
			t.Errorf("diag %d (%s): Suppressed = %v, want %v", i, diags[i], diags[i].Suppressed, want)
		}
	}
	if len(stale) != 1 || stale[0] != "b.go: walltime: stale entry" {
		t.Errorf("stale = %v, want the one unmatched entry", stale)
	}
}

// TestBaselineMissingFile checks that no baseline file means an empty
// baseline, not an error — fresh checkouts and fresh modules lint fine.
func TestBaselineMissingFile(t *testing.T) {
	base, err := LoadBaseline(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	diags := []analysis.Diagnostic{mkDiag("/r", "a.go", 1, "hotalloc", "m")}
	if stale := base.Apply("/r", diags); len(stale) != 0 || diags[0].Suppressed {
		t.Errorf("empty baseline must suppress nothing: stale=%v suppressed=%v", stale, diags[0].Suppressed)
	}
}

// TestBaselineRoundTrip: formatting current findings and re-loading the
// result must absorb exactly those findings with nothing stale.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	diags := []analysis.Diagnostic{
		mkDiag(root, "x.go", 5, "hotalloc", "make allocates"),
		mkDiag(root, "x.go", 9, "hotalloc", "make allocates"), // same key twice: multiset
		mkDiag(root, "y.go", 2, "simblock", "channel send"),
	}
	path := filepath.Join(root, BaselineFile)
	if err := os.WriteFile(path, []byte(FormatBaseline(root, diags)), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := []analysis.Diagnostic{
		mkDiag(root, "x.go", 6, "hotalloc", "make allocates"), // lines moved: still matched
		mkDiag(root, "x.go", 11, "hotalloc", "make allocates"),
		mkDiag(root, "y.go", 2, "simblock", "channel send"),
	}
	stale := base.Apply(root, fresh)
	if len(stale) != 0 {
		t.Errorf("round trip left stale entries: %v", stale)
	}
	for i, d := range fresh {
		if !d.Suppressed {
			t.Errorf("diag %d not suppressed after round trip: %s", i, d)
		}
	}
}

// TestSuppressionPrecedence pins the layering: //wfsimlint:allow drops a
// finding before it exists, so a baseline entry for the same site goes
// stale rather than double-absorbing; file-level //wfsimlint:wallclock
// silences walltime without touching other rules; baseline entries only
// downgrade findings to non-fatal.
func TestSuppressionPrecedence(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, BaselineFile)
	entries := "a.go: walltime: allowed at source\n" + // allow already dropped it → stale
		"a.go: hotalloc: survives to baseline\n"
	if err := os.WriteFile(path, []byte(entries), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The walltime finding never made it out of Reportf (annotation), so
	// only the hotalloc one reaches baseline application.
	diags := []analysis.Diagnostic{
		mkDiag(root, "a.go", 3, "hotalloc", "survives to baseline"),
	}
	stale := base.Apply(root, diags)
	if !diags[0].Suppressed {
		t.Error("baselined finding not downgraded")
	}
	if len(stale) != 1 || stale[0] != "a.go: walltime: allowed at source" {
		t.Errorf("allow-covered entry should be stale, got %v", stale)
	}
}

// TestMatchesAny pins the go-tool-style pattern semantics: patterns
// resolve against the invocation directory (base), not the module root,
// so `wfsimlint .` from a subdirectory selects that package.
func TestMatchesAny(t *testing.T) {
	mod := filepath.Join("/", "mod")
	dag := filepath.Join(mod, "internal", "dag")
	cases := []struct {
		base, dir string
		patterns  []string
		want      bool
	}{
		{mod, dag, nil, true},                         // no patterns: everything
		{mod, dag, []string{"./..."}, true},           // whole tree
		{mod, dag, []string{"./internal/..."}, true},  // subtree
		{mod, dag, []string{"./internal/dag"}, true},  // exact
		{mod, dag, []string{"./internal/sim"}, false}, // sibling
		{mod, mod, []string{"./internal/..."}, false}, // root not under subtree
		{dag, dag, []string{"."}, true},               // invoked from the package dir
		{dag, dag, []string{"./..."}, true},           // subtree rooted at base
		{dag, mod, []string{"./..."}, false},          // parent not under base
		{filepath.Join(mod, "internal"), dag, []string{"./dag"}, true},
	}
	for _, c := range cases {
		if got := matchesAny(c.base, c.dir, c.patterns); got != c.want {
			t.Errorf("matchesAny(%q, %q, %v) = %v, want %v", c.base, c.dir, c.patterns, got, c.want)
		}
	}
}
