package lint

import (
	"go/ast"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// FloatReduce flags floating-point reductions whose summation order is
// not fixed by program text. Float addition is non-associative:
// (a+b)+c != a+(b+c) in general, so the same multiset of addends reduced
// in two different orders produces different bits — and wfsim promises
// byte-identical traces and tables across runs and across `-j N`
// parallelism. Two shapes are flagged:
//
//   - accumulation inside a map-range loop (`for _, v := range m
//     { sum += v }`): the addend order is Go's randomized map order;
//
//   - accumulation into a captured variable from inside a goroutine or a
//     callback function literal (`go func() { …; sum += x }()`): the
//     addend order is goroutine completion / callback invocation order.
//
// The fix is the same in both cases: accumulate per-key or per-worker
// into indexed storage, then reduce in a deterministic index order — the
// pattern internal/runner uses (results are combined in submission
// order, never completion order). A callback that is provably invoked in
// deterministic order can be annotated //wfsimlint:allow floatreduce.
var FloatReduce = &analysis.Analyzer{
	Name: "floatreduce",
	Doc:  "flags float accumulation in map order or goroutine/callback completion order",
	Run:  runFloatReduce,
}

func runFloatReduce(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapRange(pass.TypesInfo, n) {
					checkMapAccum(pass, n)
				}
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkCapturedAccum(pass, fl, "goroutine completion order")
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if fl, ok := arg.(*ast.FuncLit); ok {
						checkCapturedAccum(pass, fl, "callback invocation order")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkMapAccum reports float/string accumulation into loop-surviving
// variables inside a map-range body.
func checkMapAccum(pass *analysis.Pass, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		id := accumTarget(info, as)
		if id == nil || !isFloat(info.TypeOf(as.Lhs[0])) {
			return true
		}
		// `out[k] += v` with k the loop key is per-key sharding: every
		// iteration owns its slot, so order is invisible in the result.
		if indexedByLoopVar(info, as.Lhs[0], loopVars) {
			return true
		}
		if obj := objOf(info, id); declaredBefore(obj, rs.Pos()) && !loopVars[obj] {
			pass.Reportf(as.Pos(), "float accumulation into %q in map iteration order: addition is non-associative, so the result's bits differ run to run; reduce over sorted keys instead", id.Name)
		}
		return true
	})
}

// checkCapturedAccum reports float accumulation into variables captured
// from outside the function literal — the order such a literal runs in
// (relative to its siblings) is scheduler-determined.
func checkCapturedAccum(pass *analysis.Pass, fl *ast.FuncLit, orderKind string) {
	info := pass.TypesInfo
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		id := accumTarget(info, as)
		if id == nil || !isFloat(info.TypeOf(as.Lhs[0])) {
			return true
		}
		// Indexed accumulation (`partial[i] += x`) is the sharded
		// per-worker pattern this rule recommends; slot collisions are a
		// data race the -race CI step catches, not a lint matter.
		if _, indexed := as.Lhs[0].(*ast.IndexExpr); indexed {
			return true
		}
		if obj := objOf(info, id); declaredBefore(obj, fl.Pos()) {
			pass.Reportf(as.Pos(), "float accumulation into captured %q: %s decides the addend order, so the result's bits differ run to run; accumulate per-worker and reduce in index order", id.Name, orderKind)
		}
		return true
	})
}
