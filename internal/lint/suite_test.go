package lint

import (
	"testing"

	"wfsim/internal/lint/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", MapOrder, "maporder")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", WallTime, "walltime")
}

func TestSeedRand(t *testing.T) {
	analysistest.Run(t, "testdata", SeedRand, "seedrand")
}

func TestFloatReduce(t *testing.T) {
	analysistest.Run(t, "testdata", FloatReduce, "floatreduce")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", HotAlloc, "hotalloc")
}

// TestSimBlock loads the substrate (Engine) fixture and the client
// fixture as one module: process-body discovery crosses the package
// boundary, and the substrate package itself must come back exempt.
func TestSimBlock(t *testing.T) {
	analysistest.RunModule(t, "testdata", SimBlock, "simblockeng", "simblock")
}

// TestWallTimeChain is the laundering acceptance case: a wall-clock
// instant returned through a two-hop cross-package helper chain is
// flagged at every consuming call site in virtual-time code.
func TestWallTimeChain(t *testing.T) {
	analysistest.RunModule(t, "testdata", WallTime, "chain/inner", "chain")
}

// TestSeedRandChain exercises entropy flowing into generator seeds
// through helper returns, locals, parameters, and struct fields across
// a package boundary.
func TestSeedRandChain(t *testing.T) {
	analysistest.RunModule(t, "testdata", SeedRand, "seedchain/seeds", "seedchain")
}
