package lint

import (
	"testing"

	"wfsim/internal/lint/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", MapOrder, "maporder")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", WallTime, "walltime")
}

func TestSeedRand(t *testing.T) {
	analysistest.Run(t, "testdata", SeedRand, "seedrand")
}

func TestFloatReduce(t *testing.T) {
	analysistest.Run(t, "testdata", FloatReduce, "floatreduce")
}
