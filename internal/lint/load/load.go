// Package load type-checks wfsim packages for the lint suite without any
// dependency outside the standard library. The environment that builds
// this repo is offline (no module proxy), so golang.org/x/tools/go/packages
// is not available; instead we combine:
//
//   - the compiler-independent source importer (go/importer "source") for
//     standard-library imports, which type-checks GOROOT packages from
//     source and needs no pre-built export data; and
//
//   - a recursive module importer that resolves "wfsim/..." import paths
//     against the repository root and type-checks those directories from
//     source with the same machinery.
//
// The result is a []*Package close enough to go/packages' output for the
// analyzers in internal/lint: file syntax with comments, a *types.Package,
// and a fully populated *types.Info.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit to be linted.
type Package struct {
	// Path is the import path the package was loaded under. External test
	// packages load as "<path>_test".
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Files is the parsed syntax, with comments, in filename order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's resolution maps for Files.
	Info *types.Info
}

// A Loader resolves and type-checks packages of a single module plus its
// standard-library dependency closure. It is not safe for concurrent use.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet
	// ModRoot is the absolute module root directory (where go.mod lives);
	// empty for fixture loaders.
	ModRoot string
	// ModPath is the module path from go.mod ("wfsim"); empty for fixture
	// loaders.
	ModPath string
	// IncludeTests adds in-package _test.go files to each loaded target
	// package and loads external _test packages alongside them.
	IncludeTests bool

	ctxt  build.Context
	std   types.ImporterFrom
	cache map[string]*types.Package
}

// New returns a loader rooted at the module containing dir (dir itself or
// an ancestor must hold go.mod).
func New(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("load: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newBare()
	l.ModRoot, l.ModPath = root, modPath
	return l, nil
}

// NewFixture returns a loader for self-contained fixture packages: every
// import must resolve within the standard library.
func NewFixture() *Loader { return newBare() }

func newBare() *Loader {
	fset := token.NewFileSet()
	// The source importer snapshots go/build.Default at construction.
	// Disabling cgo first keeps the whole standard library type-checkable
	// from source with no C toolchain: every package we care about has
	// pure-Go variants under CgoEnabled=false.
	build.Default.CgoEnabled = false
	ctxt := build.Default
	return &Loader{
		Fset:  fset,
		ctxt:  ctxt,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache: make(map[string]*types.Package),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("load: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths resolve
// against ModRoot, everything else is delegated to the standard-library
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Previously loaded fixture packages resolve from the cache, so a
	// multi-package fixture (interprocedural analyzer tests) can import a
	// sibling fixture loaded earlier under its fixture path.
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.ModPath != "" && (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")) {
		return l.importModule(path)
	}
	return l.std.ImportFrom(path, dir, 0)
}

// importModule type-checks (and caches) a module-internal package from its
// non-test sources, recursing through this same importer.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath)))
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: import %q: %w", path, err)
	}
	files, err := l.parse(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, _, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check runs the type checker over files under the given import path. The
// returned Info is populated only when wantInfo is non-nil (targets being
// linted need it; imported dependencies do not).
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, *types.Info, error) {
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadFixture loads every .go file in dir as one package under the given
// import path. Used by the analysistest harness: fixture packages are
// single-directory and import only the standard library.
func (l *Loader) LoadFixture(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := l.check(path, files, newInfo())
	if err != nil {
		return nil, err
	}
	// Register so later fixtures (loaded with this same loader) can
	// import this one by its fixture path.
	l.cache[path] = pkg
	return &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// LoadAll walks the module tree and type-checks every package in it, in
// deterministic path order. With IncludeTests set, in-package test files
// are checked together with their package and external test packages are
// returned as separate "<path>_test" entries.
func (l *Loader) LoadAll() ([]*Package, error) {
	if l.ModRoot == "" {
		return nil, fmt.Errorf("load: LoadAll requires a module-rooted loader")
	}
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// loadDir loads the package rooted at dir (if any): the main package —
// with in-package test files when IncludeTests is set — plus an external
// test package when one exists.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}

	var pkgs []*Package
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	if len(names) > 0 {
		files, err := l.parse(dir, names)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path, files, newInfo())
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info})
	}
	if l.IncludeTests && len(bp.XTestGoFiles) > 0 {
		files, err := l.parse(dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		xpath := path + "_test"
		pkg, info, err := l.check(xpath, files, newInfo())
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{Path: xpath, Dir: dir, Files: files, Types: pkg, Info: info})
	}
	return pkgs, nil
}
