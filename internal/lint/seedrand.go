package lint

import (
	"go/ast"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// SeedRand enforces wfsim's randomness discipline: all randomness flows
// through an explicitly seeded *rand.Rand constructed from a seed that
// arrived via configuration. Two failure modes are flagged:
//
//   - calls to math/rand (or math/rand/v2) package-level functions —
//     rand.IntN, rand.Float64, rand.Shuffle, ... — which draw from the
//     process-global, OS-entropy-seeded generator and are different on
//     every run;
//
//   - rand.New / rand.NewSource / rand.NewPCG / rand.NewChaCha8 whose
//     seed expression involves the host clock (time.Now), crypto/rand
//     entropy, or the process identity (os.Getpid) — an explicitly
//     constructed generator that is still unreproducible.
//
// Constructor calls seeded from ordinary values (config fields,
// constants, derived counters) are the approved pattern and pass clean.
// Test files are exempt; a deliberate exception can be annotated
// //wfsimlint:allow seedrand.
var SeedRand = &analysis.Analyzer{
	Name: "seedrand",
	Doc:  "forbids global math/rand state and wall-clock/entropy-seeded generators",
	Run:  runSeedRand,
}

// randCtors are the constructors of explicit generators — the approved
// entry points (their seeds are checked separately).
var randCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runSeedRand(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				path, ok := pkgPathOf(info, n.X)
				if !ok || !isRandPath(path) {
					return true
				}
				fn, ok := info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // types, constants, methods on *rand.Rand
				}
				if !randCtors[n.Sel.Name] {
					pass.Reportf(n.Pos(), "rand.%s uses the process-global generator, which is seeded from OS entropy; thread an explicitly seeded *rand.Rand from config instead", n.Sel.Name)
				}
			case *ast.CallExpr:
				path, name, ok := pkgFunc(info, n)
				if !ok || !isRandPath(path) || !randCtors[name] {
					return true
				}
				if culprit := nondeterministicSeed(info, n); culprit != "" {
					pass.Reportf(n.Pos(), "rand.%s is seeded from %s, so the generator differs on every run; seeds must be constants or flow in from config", name, culprit)
				}
			}
			return true
		})
	}
	return nil
}

// nondeterministicSeed scans a generator-constructor call's arguments for
// run-varying seed material and names the first culprit found.
func nondeterministicSeed(info *types.Info, call *ast.CallExpr) string {
	culprit := ""
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if culprit != "" {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := pkgPathOf(info, sel.X)
			if !ok {
				return true
			}
			switch {
			case path == "time":
				culprit = "the wall clock (time." + sel.Sel.Name + ")"
			case path == "crypto/rand":
				culprit = "crypto/rand entropy"
			case path == "os" && sel.Sel.Name == "Getpid":
				culprit = "the process ID (os.Getpid)"
			}
			return culprit == ""
		})
		if culprit != "" {
			return culprit
		}
	}
	return ""
}
