package lint

import (
	"go/ast"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// SeedRand enforces wfsim's randomness discipline: all randomness flows
// through an explicitly seeded *rand.Rand constructed from a seed that
// arrived via configuration. Two failure modes are flagged:
//
//   - calls to math/rand (or math/rand/v2) package-level functions —
//     rand.IntN, rand.Float64, rand.Shuffle, ... — which draw from the
//     process-global, OS-entropy-seeded generator and are different on
//     every run (the per-package half);
//
//   - rand.New / rand.NewSource / rand.NewPCG / rand.NewChaCha8 whose
//     seed derives — through any chain of assignments, struct fields,
//     returns, and helper calls, across package boundaries — from the
//     host clock (time.Now), crypto/rand entropy, or the process
//     identity (os.Getpid). This is the module half, a taint analysis
//     over the call graph: `rand.NewSource(cfg.Seed())` is flagged when
//     `Seed` is a two-hop wrapper around time.Now().UnixNano(), and
//     `newGen(seed)` is flagged at its call site when newGen feeds its
//     parameter into a constructor and the argument is entropy-derived.
//
// Constructor calls seeded from ordinary values (config fields,
// constants, derived counters) are the approved pattern and pass clean.
// Test files are exempt; a deliberate exception can be annotated
// //wfsimlint:allow seedrand.
var SeedRand = &analysis.Analyzer{
	Name:      "seedrand",
	Doc:       "forbids global math/rand state and wall-clock/entropy-seeded generators, tracking seed material through helper calls",
	Run:       runSeedRand,
	RunModule: runSeedRandModule,
}

// randCtors are the constructors of explicit generators — the approved
// entry points (their seeds are checked by the module half).
var randCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runSeedRand(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := pkgPathOf(info, sel.X)
			if !ok || !isRandPath(path) {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true // types, constants, methods on *rand.Rand
			}
			if !randCtors[sel.Sel.Name] {
				pass.Reportf(n.Pos(), "rand.%s uses the process-global generator, which is seeded from OS entropy; thread an explicitly seeded *rand.Rand from config instead", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// entropySource classifies expressions producing run-varying seed
// material: host-clock reads, crypto/rand entropy, the process ID.
func entropySource(info *types.Info, n ast.Node) string {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		path, ok := pkgPathOf(info, sel.X)
		if !ok {
			return ""
		}
		switch {
		// Unlike walltime's sources, durations count here: a seed built
		// from a measured elapsed span varies run to run just as surely
		// as one built from an instant.
		case path == "time" && (wallValueFuncs[sel.Sel.Name] || sel.Sel.Name == "Since" || sel.Sel.Name == "Until"):
			return "the wall clock (time." + sel.Sel.Name + ")"
		case path == "os" && sel.Sel.Name == "Getpid":
			return "the process ID (os.Getpid)"
		case path == "crypto/rand":
			return "crypto/rand entropy"
		}
	case *ast.SelectorExpr:
		// rand.Reader and friends: any crypto/rand member is entropy.
		if path, ok := pkgPathOf(info, n.X); ok && path == "crypto/rand" {
			return "crypto/rand entropy"
		}
	}
	return ""
}

// randCtorCall recognizes generator-constructor calls — the seed sinks.
func randCtorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !randCtors[sel.Sel.Name] {
		return "", false
	}
	if path, ok := pkgPathOf(info, sel.X); ok && isRandPath(path) {
		return "rand." + sel.Sel.Name, true
	}
	return "", false
}

// runSeedRandModule is the interprocedural half: solve the entropy taint
// over the module, then flag seed sinks fed by run-varying material in
// non-test files.
func runSeedRandModule(pass *analysis.ModulePass) error {
	eng := newTaintEngine(pass.Graph, pass.Fset, taintHooks{
		source:   entropySource,
		seedCtor: randCtorCall,
	})
	eng.solve()
	for _, n := range pass.Graph.Nodes {
		if pass.IsTestFile(n.Pos()) {
			continue
		}
		eng.report(n, reportHooks{
			seedSink: func(call *ast.CallExpr, sinkName string, culprit string) {
				pass.Reportf(call.Pos(), "%s is seeded from %s, so the generator differs on every run; seeds must be constants or flow in from config", sinkName, culprit)
			},
		})
	}
	return nil
}
