package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// HotAlloc flags heap-allocating constructs in functions reachable from
// the steady-state simulate path — the set of functions the differential
// alloc guard (TestSimAllocBudget) protects dynamically. The engine's
// scaling story (DESIGN.md §2/§9/§12) rests on the steady state being
// allocation-free: ~1 marginal alloc per simulated task at the
// million-task scale. The guard catches a regression after the fact, in
// aggregate; this rule names the exact line at review time.
//
// Roots (the steady-state entry points, mirrored from the alloc guard's
// coverage): the sim event loop (Engine.Run), the runtime dispatch path
// (grantNext, taskProc, enqueue, completeTask), every scheduler's
// Place/Next/NextFor, and the streaming metrics sink
// (Aggregates.Observe). Additional roots can be declared by annotating a
// function's doc comment with //wfsimlint:hotpath. Reachability is
// computed over the module call graph, conservatively including function
// literals defined inside hot functions (event callbacks run on the hot
// path even though the graph cannot see their invocation).
//
// Flagged constructs, and why:
//
//   - append whose backing slice is not visibly recycled: growth
//     reallocates. The scratch idiom — `s = s[:0]` in the same function,
//     or a capacity-sized make — is recognized and exempt, matching the
//     zero-alloc Place pattern in internal/sched.
//   - map and slice composite literals, and make of maps/slices/chans:
//     always heap material in an escaping position.
//   - closures capturing variables: the capture escapes.
//   - fmt.Sprintf and friends: allocate their result (and box their
//     arguments).
//   - interface boxing: passing or returning a concrete non-pointer
//     value where an interface is expected allocates unless the escape
//     analysis gets lucky.
//
// Error paths and one-time setup inside hot functions are legitimate
// exceptions: annotate them //wfsimlint:allow hotalloc, or record them
// in the committed baseline (lint.baseline) where they stay visible but
// non-fatal.
var HotAlloc = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "flags heap-allocating constructs in functions reachable from the steady-state simulate path",
	RunModule: runHotAlloc,
}

// hotRootSpec matches steady-state entry points by package path,
// receiver type name (empty: any), and function name.
type hotRootSpec struct {
	pkg, recv, name string
}

var hotRoots = []hotRootSpec{
	{"wfsim/internal/sim", "Engine", "Run"},
	{"wfsim/internal/runtime", "simRun", "grantNext"},
	{"wfsim/internal/runtime", "simRun", "taskProc"},
	{"wfsim/internal/runtime", "simRun", "enqueue"},
	{"wfsim/internal/runtime", "simRun", "completeTask"},
	{"wfsim/internal/sched", "", "Place"},
	{"wfsim/internal/sched", "", "Next"},
	{"wfsim/internal/sched", "", "NextFor"},
	{"wfsim/internal/metrics", "Aggregates", "Observe"},
}

func runHotAlloc(pass *analysis.ModulePass) error {
	roots := hotPathRoots(pass)
	hot := analysis.Reachable(roots)
	witness := rootWitness(roots)
	for _, n := range pass.Graph.Nodes {
		if !hot[n] || pass.IsTestFile(n.Pos()) {
			continue
		}
		checkHotFunc(pass, n, witness[n])
	}
	return nil
}

// hotPathRoots collects the steady-state entry points: the built-in spec
// list plus //wfsimlint:hotpath-annotated functions. Test files never
// contribute roots.
func hotPathRoots(pass *analysis.ModulePass) []*analysis.FuncNode {
	var roots []*analysis.FuncNode
	for _, n := range pass.Graph.Nodes {
		if n.Decl == nil || pass.IsTestFile(n.Pos()) {
			continue
		}
		if analysis.FuncAnnotation(n.Decl, "hotpath") || matchesHotRoot(n) {
			roots = append(roots, n)
		}
	}
	return roots
}

func matchesHotRoot(n *analysis.FuncNode) bool {
	for _, spec := range hotRoots {
		if n.Pkg.Path != spec.pkg || n.Obj.Name() != spec.name {
			continue
		}
		if spec.recv == "" || recvTypeName(n.Obj) == spec.recv {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of fn's receiver type (pointer
// dereferenced), or "".
func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// rootWitness maps every reachable node to the first root that reaches
// it (BFS order, deterministic), for diagnostic provenance.
func rootWitness(roots []*analysis.FuncNode) map[*analysis.FuncNode]*analysis.FuncNode {
	witness := make(map[*analysis.FuncNode]*analysis.FuncNode)
	var queue []*analysis.FuncNode
	for _, r := range roots {
		if _, ok := witness[r]; !ok {
			witness[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if _, ok := witness[c.Node]; !ok {
				witness[c.Node] = witness[n]
				queue = append(queue, c.Node)
			}
		}
		for _, l := range n.Lits {
			if _, ok := witness[l]; !ok {
				witness[l] = witness[n]
				queue = append(queue, l)
			}
		}
	}
	return witness
}

func checkHotFunc(pass *analysis.ModulePass, n *analysis.FuncNode, root *analysis.FuncNode) {
	info := n.Pkg.Info
	via := ""
	if root != nil && root != n {
		via = fmt.Sprintf(" (hot path: reachable from %s)", root.Name())
	} else if root == n {
		via = " (hot path root)"
	}
	recycled := recycledSlices(info, n)
	analysis.InspectOwn(n, func(nd ast.Node) {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, info, n, nd, recycled, via)
		case *ast.CompositeLit:
			switch info.TypeOf(nd).Underlying().(type) {
			case *types.Map:
				pass.Reportf(nd.Pos(), "map literal allocates in the steady-state simulate path%s; hoist it to setup or reuse a scratch map", via)
			case *types.Slice:
				pass.Reportf(nd.Pos(), "slice literal allocates in the steady-state simulate path%s; hoist it to setup or reuse a scratch buffer", via)
			}
		case *ast.FuncLit:
			// InspectOwn stops at literal boundaries, so this is only
			// reached for... nothing; literals are their own nodes.
		}
	})
	// A closure defined in a hot function captures its environment on
	// the heap at creation time — report at the literal, attributed to
	// the defining (hot) function.
	for _, lit := range n.Lits {
		if capd := capturedVars(info, lit); len(capd) > 0 {
			pass.Reportf(lit.Pos(), "closure captures %s and allocates its environment in the steady-state simulate path%s; hoist the closure to setup and reuse it (the taskProcFn pattern)", quoteList(capd), via)
		}
	}
}

func checkHotCall(pass *analysis.ModulePass, info *types.Info, n *analysis.FuncNode, call *ast.CallExpr, recycled map[types.Object]bool, via string) {
	// append growing a non-recycled slice.
	if isBuiltin(info, call, "append") && len(call.Args) > 0 {
		target := rootIdent(call.Args[0])
		obj := types.Object(nil)
		if target != nil {
			obj = objOf(info, target)
		}
		if obj == nil || !recycled[obj] {
			name := "the slice"
			if target != nil {
				name = fmt.Sprintf("%q", target.Name)
			}
			pass.Reportf(call.Pos(), "append may grow %s in the steady-state simulate path%s; preallocate with capacity or recycle a scratch slice (s = s[:0])", name, via)
		}
		return
	}
	// make of maps, slices, chans.
	if isBuiltin(info, call, "make") {
		pass.Reportf(call.Pos(), "make allocates in the steady-state simulate path%s; hoist the allocation to setup and reuse it", via)
		return
	}
	// fmt.Sprintf and friends.
	if path, name, ok := pkgFunc(info, call); ok && path == "fmt" &&
		(name == "Sprintf" || name == "Sprint" || name == "Sprintln" || name == "Errorf" || name == "Appendf") {
		pass.Reportf(call.Pos(), "fmt.%s allocates in the steady-state simulate path%s; move formatting off the hot path (error paths can be annotated //wfsimlint:allow hotalloc)", name, via)
		return
	}
	// Interface boxing at call boundaries.
	checkBoxing(pass, info, call, via)
}

// checkBoxing flags arguments whose concrete non-pointer value is passed
// where an interface is expected — each such pass boxes on the heap.
func checkBoxing(pass *analysis.ModulePass, info *types.Info, call *ast.CallExpr, via string) {
	sigTV, ok := info.Types[call.Fun]
	if !ok || sigTV.IsType() {
		return // conversion, not a call
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the interface word
		}
		pass.Reportf(arg.Pos(), "passing %s by value into an interface parameter boxes it on the heap in the steady-state simulate path%s; pass a pointer or restructure the call", at.String(), via)
	}
}

// recycledSlices finds slice variables the function visibly recycles —
// truncated with s = s[:0] or made with an explicit capacity — which
// makes appends to them amortized-allocation-free.
func recycledSlices(info *types.Info, n *analysis.FuncNode) map[types.Object]bool {
	recycled := make(map[types.Object]bool)
	mark := func(lhs, rhs ast.Expr) {
		id := rootIdent(lhs)
		if id == nil {
			return
		}
		obj := objOf(info, id)
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.SliceExpr:
			// s = s[:0] (or any reslice of the same object).
			if rid := rootIdent(r.X); rid != nil && objOf(info, rid) == obj {
				recycled[obj] = true
			}
		case *ast.CallExpr:
			if isBuiltin(info, r, "make") && len(r.Args) == 3 {
				recycled[obj] = true
			}
		}
	}
	analysis.InspectOwn(n, func(nd ast.Node) {
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i := range as.Lhs {
			if i < len(as.Rhs) {
				mark(as.Lhs[i], as.Rhs[i])
			}
		}
	})
	return recycled
}

// capturedVars lists the variables lit captures from its enclosing
// function, in first-use order.
func capturedVars(info *types.Info, lit *analysis.FuncNode) []string {
	var names []string
	seen := make(map[types.Object]bool)
	litStart, litEnd := lit.Lit.Pos(), lit.Lit.End()
	ast.Inspect(lit.Lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Captured: declared outside the literal but not at package level.
		if v.Pos() >= litStart && v.Pos() < litEnd {
			return true // the literal's own params/locals
		}
		if isPackageLevel(v) {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

func quoteList(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%q", n)
	}
	return out
}
