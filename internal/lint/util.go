package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgPathOf resolves expr to an imported package path when expr is an
// identifier bound to an import (handles renamed imports).
func pkgPathOf(info *types.Info, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// pkgFunc decomposes a qualified call like fmt.Println into its package
// path and function name.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	path, ok := pkgPathOf(info, sel.X)
	if !ok {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression:
// x, x.f, x[i], *x, (x) all resolve to x.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object, whether the identifier is a
// use or a definition site.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredBefore reports whether obj's declaration precedes pos — i.e. the
// object outlives (was not created by) the construct starting at pos.
func declaredBefore(obj types.Object, pos token.Pos) bool {
	return obj != nil && obj.Pos().IsValid() && obj.Pos() < pos
}

// isFloat reports whether t's core type is a floating-point or complex
// type — the types whose addition is non-associative, so reduction order
// changes the bits of the result.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isString reports whether t's core type is a string (concatenation order
// is visible in the result).
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuiltin reports whether the call invokes the named predeclared
// function (append, copy, delete, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objOf(info, id).(*types.Builtin)
	return ok && b.Name() == name
}

// forEachStmtList visits every statement list in f: block bodies and
// switch/select case bodies. Range statements always live in one of
// these, so a visitor over statement lists sees every loop together with
// the statements that follow it — which is what the sorted-keys idiom
// recognizer needs.
func forEachStmtList(f *ast.File, visit func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		}
		return true
	})
}

// unwrapLabeled peels labels off a statement: `loop: for ... {}` is still
// a range statement for our purposes.
func unwrapLabeled(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

// indexedByLoopVar reports whether lhs is an index expression whose index
// is exactly one of the loop variables — the per-key sharding pattern
// (`out[k] += v`): every iteration owns its slot, so iteration order is
// invisible in the result.
func indexedByLoopVar(info *types.Info, lhs ast.Expr, loopVars map[types.Object]bool) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && loopVars[objOf(info, id)]
}

// accumTarget matches the two float/string accumulation shapes —
// `x op= expr` and `x = x op expr` — and returns the root identifier of x
// for ops where evaluation order is visible in the result (float/complex
// rounding, string concatenation). Integer accumulation is exact and
// commutative, so it is not matched.
func accumTarget(info *types.Info, as *ast.AssignStmt) *ast.Ident {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs := as.Lhs[0]
	t := info.TypeOf(lhs)
	floaty, stringy := isFloat(t), isString(t)
	if !floaty && !stringy {
		return nil
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if stringy && as.Tok != token.ADD_ASSIGN {
			return nil
		}
		return rootIdent(lhs)
	case token.ASSIGN:
		// x = x op expr (or x = expr op x for commutative-looking ops —
		// either way the old value feeds the new one).
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil
		}
		root := rootIdent(lhs)
		if root == nil {
			return nil
		}
		lobj := objOf(info, root)
		for _, side := range []ast.Expr{be.X, be.Y} {
			if sr := rootIdent(side); sr != nil && lobj != nil && objOf(info, sr) == lobj {
				return root
			}
		}
	}
	return nil
}
