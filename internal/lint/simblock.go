package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// SimBlock forbids real concurrency and real blocking inside simulated
// process bodies. The DES engine runs every process as a single-threaded
// coroutine (iter.Pull): a process body that performs a raw channel
// operation, takes a sync lock, sleeps on the host clock, or does I/O
// does not "run concurrently" — it blocks the one OS thread driving the
// entire simulation, deadlocking or stalling every other virtual
// process. Inside a process body the only legitimate ways to wait are
// the engine's primitives (Proc.Wait, Resource.Acquire, channel-free
// event sequencing on virtual time).
//
// Roots are discovered, not declared: every call to Go/GoAfter on a
// value of a type named Engine marks its final argument — a function
// literal, a named function, a method value, or a variable/field traced
// to the function assigned into it (the bound-once taskProcFn pattern)
// — as a process body. Everything reachable from a process body over
// static calls (plus enclosed function literals) is checked. Additional
// bodies can be declared with a //wfsimlint:procbody doc-comment
// annotation.
//
// The package that defines the Engine itself is exempt: the coroutine
// substrate legitimately manipulates the machinery (iter.Pull, pool
// locks) that process bodies must never touch. Test files are exempt as
// usual, and a deliberate exception can be annotated
// //wfsimlint:allow simblock.
var SimBlock = &analysis.Analyzer{
	Name:      "simblock",
	Doc:       "forbids raw channel ops, sync primitives, host sleeps, and I/O inside simulated process bodies reachable from Engine.Go",
	RunModule: runSimBlock,
}

func runSimBlock(pass *analysis.ModulePass) error {
	assigned := assignedFuncs(pass)
	roots, exempt := procBodyRoots(pass, assigned)
	checked := analysis.Reachable(roots)
	for _, n := range pass.Graph.Nodes {
		if !checked[n] || exempt[n.Pkg] || pass.IsTestFile(n.Pos()) {
			continue
		}
		checkProcBody(pass, n)
	}
	return nil
}

// procBodyRoots finds process-body functions (final arguments of
// Engine.Go/GoAfter calls, plus //wfsimlint:procbody annotations) and
// the set of Engine-defining packages, which are exempt substrate.
func procBodyRoots(pass *analysis.ModulePass, assigned map[string][]*analysis.FuncNode) (roots []*analysis.FuncNode, exempt map[*analysis.ModulePackage]bool) {
	exempt = make(map[*analysis.ModulePackage]bool)
	for _, n := range pass.Graph.Nodes {
		if n.Decl != nil && analysis.FuncAnnotation(n.Decl, "procbody") {
			roots = append(roots, n)
		}
		info := n.Pkg.Info
		analysis.InspectOwn(n, func(nd ast.Node) {
			call, ok := nd.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return
			}
			fn := analysis.StaticCallee(info, call)
			if fn == nil || (fn.Name() != "Go" && fn.Name() != "GoAfter") {
				return
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || namedTypeName(recv.Type()) != "Engine" {
				return
			}
			// The spawning package is a client; the Engine's own package
			// is substrate.
			if enginePkg := pass.Graph.NodeOf(fn); enginePkg != nil {
				exempt[enginePkg.Pkg] = true
			}
			bodyArg := call.Args[len(call.Args)-1]
			roots = append(roots, resolveFuncExpr(pass, info, bodyArg, assigned)...)
		})
	}
	return roots, exempt
}

// namedTypeName returns the name of t's (pointer-dereferenced) named
// type, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// assignedFuncs maps every variable or struct field (by declaration
// position, stable across duplicate type-checks) to the function nodes
// assigned into it anywhere in the module. This is what lets the rule
// see through the bound-once pattern:
//
//	r.taskProcFn = r.taskProc   // setup
//	eng.GoAfter("task", d, r.taskProcFn)
func assignedFuncs(pass *analysis.ModulePass) map[string][]*analysis.FuncNode {
	assigned := make(map[string][]*analysis.FuncNode)
	record := func(info *types.Info, lhs, rhs ast.Expr) {
		target := lvalueObj(info, lhs)
		if target == nil {
			return
		}
		fns := directFuncExpr(pass, info, rhs)
		if len(fns) == 0 {
			return
		}
		key := pass.Fset.Position(target.Pos()).String()
		assigned[key] = append(assigned[key], fns...)
	}
	for _, n := range pass.Graph.Nodes {
		info := n.Pkg.Info
		analysis.InspectOwn(n, func(nd ast.Node) {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				for i := range nd.Lhs {
					if i < len(nd.Rhs) {
						record(info, nd.Lhs[i], nd.Rhs[i])
					}
				}
			case *ast.GenDecl:
				if nd.Tok != token.VAR {
					return
				}
				for _, spec := range nd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								record(info, name, vs.Values[i])
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range nd.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						record(info, kv.Key, kv.Value)
					}
				}
			}
		})
	}
	return assigned
}

// lvalueObj resolves an assignment target to its variable or field
// object.
func lvalueObj(info *types.Info, lhs ast.Expr) types.Object {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := objOf(info, l); obj != nil {
			return obj
		}
		// Composite-literal keys are fields, found in Uses.
		return info.Uses[l]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return objOf(info, l.Sel)
	}
	return nil
}

// directFuncExpr resolves an expression directly denoting a function:
// a literal, a named function, or a method value.
func directFuncExpr(pass *analysis.ModulePass, info *types.Info, expr ast.Expr) []*analysis.FuncNode {
	switch ex := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		if n := pass.Graph.ByLit[ex]; n != nil {
			return []*analysis.FuncNode{n}
		}
	case *ast.Ident:
		if fn, ok := info.Uses[ex].(*types.Func); ok {
			if n := pass.Graph.NodeOf(fn); n != nil {
				return []*analysis.FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[ex]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if n := pass.Graph.NodeOf(fn); n != nil {
					return []*analysis.FuncNode{n}
				}
			}
		}
		if fn, ok := info.Uses[ex.Sel].(*types.Func); ok {
			if n := pass.Graph.NodeOf(fn); n != nil {
				return []*analysis.FuncNode{n}
			}
		}
	}
	return nil
}

// resolveFuncExpr resolves a Go/GoAfter body argument: directly, or —
// for a variable or field — through every function assigned into it.
func resolveFuncExpr(pass *analysis.ModulePass, info *types.Info, expr ast.Expr, assigned map[string][]*analysis.FuncNode) []*analysis.FuncNode {
	if fns := directFuncExpr(pass, info, expr); len(fns) > 0 {
		return fns
	}
	if obj := lvalueObj(info, expr); obj != nil {
		return assigned[pass.Fset.Position(obj.Pos()).String()]
	}
	return nil
}

// checkProcBody flags blocking constructs inside one checked function.
func checkProcBody(pass *analysis.ModulePass, n *analysis.FuncNode) {
	info := n.Pkg.Info
	analysis.InspectOwn(n, func(nd ast.Node) {
		switch nd := nd.(type) {
		case *ast.SendStmt:
			pass.Reportf(nd.Arrow, "channel send inside a simulated process body blocks the engine's single coroutine thread; sequence on virtual time with the engine's primitives instead")
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				pass.Reportf(nd.OpPos, "channel receive inside a simulated process body blocks the engine's single coroutine thread; wait on virtual time with the engine's primitives instead")
			}
		case *ast.SelectStmt:
			pass.Reportf(nd.Select, "select inside a simulated process body blocks the engine's single coroutine thread; processes wait via the engine, not via channels")
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(nd.X).Underlying().(*types.Chan); ok {
				pass.Reportf(nd.For, "ranging over a channel inside a simulated process body blocks the engine's single coroutine thread")
			}
		case *ast.GoStmt:
			pass.Reportf(nd.Go, "go statement inside a simulated process body spawns a real goroutine outside the engine's control; start simulated work with Engine.Go")
		case *ast.CallExpr:
			checkProcCall(pass, info, nd)
		}
	})
}

func checkProcCall(pass *analysis.ModulePass, info *types.Info, call *ast.CallExpr) {
	// Package-level calls: host sleeps and I/O.
	if path, name, ok := pkgFunc(info, call); ok {
		switch {
		case path == "time" && (name == "Sleep" || name == "After" || name == "Tick" || name == "NewTimer" || name == "NewTicker" || name == "AfterFunc"):
			pass.Reportf(call.Pos(), "time.%s inside a simulated process body waits on the host clock, stalling the whole simulation; use p.Wait (virtual seconds) instead", name)
		case path == "os" || path == "net" || path == "net/http" || path == "io" || path == "bufio":
			pass.Reportf(call.Pos(), "%s.%s performs real I/O inside a simulated process body; process bodies must stay pure compute over engine state", pkgBase(path), name)
		case path == "fmt" && (name == "Print" || name == "Printf" || name == "Println" || name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
			pass.Reportf(call.Pos(), "fmt.%s writes to a real stream inside a simulated process body; collect results in engine state and report after Run returns", name)
		}
		return
	}
	// Method calls on sync primitives.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := info.Selections[sel]
	if !ok {
		return
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	switch fn.Name() {
	case "Lock", "RLock", "Wait":
		pass.Reportf(call.Pos(), "sync %s.%s inside a simulated process body can block the engine's single coroutine thread; simulated processes are already mutually exclusive — drop the lock or move the contention into engine state", namedTypeName(s.Recv()), fn.Name())
	}
}

// pkgBase returns the last path element of an import path.
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
