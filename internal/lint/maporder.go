package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wfsim/internal/lint/analysis"
)

// MapOrder flags `for … range` over a map whose body has order-sensitive
// effects. Go randomizes map iteration order per iteration, so any such
// loop makes rendered output, simulation traces, or accumulated floats
// differ from run to run — exactly the nondeterminism wfsim's
// reproducibility guarantee forbids.
//
// Effects considered order-sensitive:
//
//   - append to a slice declared outside the loop (element order follows
//     map order);
//   - writes to an io.Writer / strings.Builder / bytes.Buffer declared
//     outside the loop, and fmt.Print/Fprint calls (byte order follows
//     map order);
//   - scheduling simulation events (Engine.Schedule/Reschedule/Go): the
//     engine's FIFO tie-break among same-instant events is seeded by
//     scheduling order;
//   - channel sends (delivery order follows map order);
//   - float/complex accumulation and string concatenation into a
//     variable declared outside the loop (result bits follow map order);
//   - returning a non-constant value from inside the loop (which of
//     several candidate values is returned follows map order).
//
// The sorted-keys idiom is recognized and not flagged: a loop that only
// collects keys (or key-derived values) into a slice which a following
// statement sorts — `for k := range m { keys = append(keys, k) };
// sort.Strings(keys)` — is the canonical fix, not a violation. Loops
// whose effects are genuinely order-free can be annotated with
// `//wfsimlint:allow maporder` on (or directly above) the `for` line.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose effects depend on Go's randomized map order",
	Run:  runMapOrder,
}

// writeMethods are method names that emit bytes into a stream the loop
// did not create: calling them in map order serializes map order into
// the output.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true, "Encode": true,
}

// schedMethods are the sim-engine entry points that enqueue events; the
// engine breaks same-instant ties by scheduling sequence number, so
// calling them in map order makes the whole downstream trace
// order-dependent.
var schedMethods = map[string]bool{
	"Schedule": true, "Reschedule": true, "Go": true,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		forEachStmtList(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := unwrapLabeled(stmt).(*ast.RangeStmt)
				if !ok || !isMapRange(pass.TypesInfo, rs) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
		})
	}
	return nil
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// effect is one order-sensitive action found in a map-range body.
type effect struct {
	pos  token.Pos
	desc string
	// appendTo is set for append effects: the slice being grown.
	appendTo types.Object
	// sortable marks append effects whose appended values derive only
	// from the loop variables — the collect-then-sort idiom's first half.
	sortable bool
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	info := pass.TypesInfo
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil {
				loopVars[obj] = true
			}
		}
	}

	var effects []effect
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if e, ok := appendEffect(info, n, rs, loopVars); ok {
				effects = append(effects, e)
				return true
			}
			if path, name, ok := pkgFunc(info, n); ok && path == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				effects = append(effects, effect{pos: n.Pos(), desc: "writes output via fmt." + name})
				return true
			}
			if e, ok := methodEffect(info, n, rs); ok {
				effects = append(effects, e)
			}
		case *ast.SendStmt:
			effects = append(effects, effect{pos: n.Pos(), desc: "sends on a channel"})
		case *ast.AssignStmt:
			if id := accumTarget(info, n); id != nil && !indexedByLoopVar(info, n.Lhs[0], loopVars) {
				if obj := objOf(info, id); declaredBefore(obj, rs.Pos()) && !loopVars[obj] {
					effects = append(effects, effect{pos: n.Pos(), desc: fmt.Sprintf("accumulates into %q (float/string reduction order is visible in the result)", id.Name)})
				}
			}
		case *ast.ReturnStmt:
			if returnsNonConstant(n) {
				effects = append(effects, effect{pos: n.Pos(), desc: "returns a non-constant value (which iteration returns first depends on map order)"})
			}
		}
		return true
	})
	if len(effects) == 0 {
		return
	}

	// Recognize the sorted-keys idiom: every effect is a loop-var-only
	// append, and each appended-to slice is sorted by a following
	// statement before anything else can observe it.
	idiom := true
	for _, e := range effects {
		if e.appendTo == nil || !e.sortable || !sortedAfter(info, rest, e.appendTo) {
			idiom = false
			break
		}
	}
	if idiom {
		return
	}

	descs := make([]string, 0, len(effects))
	seen := make(map[string]bool)
	for _, e := range effects {
		if !seen[e.desc] {
			seen[e.desc] = true
			descs = append(descs, e.desc)
		}
	}
	pass.Reportf(rs.Pos(), "map iteration order is randomized, but this loop %s; iterate a sorted key slice instead (or annotate //wfsimlint:allow maporder if the effect is genuinely order-free)",
		strings.Join(descs, "; "))
}

// appendEffect matches `s = append(s, …)` growing a slice that outlives
// the loop.
func appendEffect(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt, loopVars map[types.Object]bool) (effect, bool) {
	if !isBuiltin(info, call, "append") || len(call.Args) == 0 {
		return effect{}, false
	}
	target := rootIdent(call.Args[0])
	if target == nil {
		return effect{}, false
	}
	obj := objOf(info, target)
	if !declaredBefore(obj, rs.Pos()) {
		return effect{}, false
	}
	sortable := true
	for _, arg := range call.Args[1:] {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				// Struct-field identifiers — composite-literal keys and
				// selector fields like sp.start — name components of the
				// loop variables, not independent data sources.
				if v, isVar := objOf(info, id).(*types.Var); isVar && !v.IsField() && !loopVars[v] {
					sortable = false
				}
			}
			return true
		})
	}
	return effect{
		pos:      call.Pos(),
		desc:     fmt.Sprintf("appends to %q (element order follows map order)", target.Name),
		appendTo: obj,
		sortable: sortable,
	}, true
}

// methodEffect matches stream-writing and event-scheduling method calls
// on receivers that outlive the loop.
func methodEffect(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) (effect, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || info.Selections[sel] == nil {
		return effect{}, false
	}
	name := sel.Sel.Name
	isWrite, isSched := writeMethods[name], schedMethods[name]
	if !isWrite && !isSched {
		return effect{}, false
	}
	recv := rootIdent(sel.X)
	if recv == nil || !declaredBefore(objOf(info, recv), rs.Pos()) {
		return effect{}, false
	}
	if isSched {
		return effect{pos: call.Pos(), desc: fmt.Sprintf("schedules events via %s.%s (event tie-break order follows scheduling order)", recv.Name, name)}, true
	}
	return effect{pos: call.Pos(), desc: fmt.Sprintf("writes to %q via %s (byte order follows map order)", recv.Name, name)}, true
}

// returnsNonConstant reports whether the return statement yields anything
// beyond literals and nil/true/false — i.e. whether *which* iteration
// reaches it first is observable in the function's result.
func returnsNonConstant(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		switch r := res.(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if r.Name != "nil" && r.Name != "true" && r.Name != "false" {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// sortedAfter reports whether a statement following the loop passes the
// collected slice to a sort/slices call — the second half of the
// collect-then-sort idiom.
func sortedAfter(info *types.Info, rest []ast.Stmt, target types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, _, ok := pkgFunc(info, call)
			if !ok || (path != "sort" && path != "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && objOf(info, id) == target {
						found = true
					}
					return true
				})
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
