package lint_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"wfsim/internal/lint"
)

// TestRepoClean is the integration gate: the full analyzer suite — all
// six rules, package and module halves — must exit clean on the real
// repository after the committed baseline absorbs the known hot-path
// debt, with no stale baseline entries left over. This is the same
// invariant CI's `go run ./cmd/wfsimlint ./...` step enforces. It
// type-checks the whole module (plus its standard-library closure) from
// source, so it is skipped under -short.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunModule(wd, lint.Analyzers, true, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	base, err := lint.LoadBaseline(filepath.Join(res.ModRoot, lint.BaselineFile))
	if err != nil {
		t.Fatal(err)
	}
	stale := base.Apply(res.ModRoot, res.Diagnostics)
	for _, d := range res.Diagnostics {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (finding gone; remove the line): %s", s)
	}

	// The published order is the regression surface for tooling that
	// diffs lint output: globally sorted, no exceptions.
	if !sort.SliceIsSorted(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	}) {
		t.Error("diagnostics not in global (file, line, column, rule, message) order")
	}
}
