package lint_test

import (
	"os"
	"testing"

	"wfsim/internal/lint"
)

// TestRepoClean is the integration gate: the full analyzer suite must
// exit clean on the real repository, test files included — the same
// invariant CI's `go run ./cmd/wfsimlint ./...` step enforces. It
// type-checks the whole module (plus its standard-library closure) from
// source, so it is skipped under -short.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(wd, lint.Analyzers, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
