// Package analysistest runs a lint analyzer over fixture packages and
// checks its diagnostics against // want comments in the fixture source —
// a minimal offline reimplementation of
// golang.org/x/tools/go/analysis/analysistest (see internal/lint/analysis
// for why the upstream module cannot be used).
//
// Expectation syntax: a comment on the line the diagnostic is expected
// at, holding one quoted regular expression per expected diagnostic:
//
//	for k := range m { // want `appends to "out"`
//	rand.IntN(8)       // want "process-global generator"
//
// Lines without a want comment must produce no diagnostics, so fixture
// files double as negative tests — including the annotation-suppressed
// sites, which carry //wfsimlint:allow and no want.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"wfsim/internal/lint/analysis"
	"wfsim/internal/lint/load"
)

// Run loads testdata/src/<fixture> for each fixture as a single package,
// applies the analyzer, and reports any mismatch between produced
// diagnostics and // want expectations as test errors.
func Run(t *testing.T, testdata string, az *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	loader := load.NewFixture()
	for _, fixture := range fixtures {
		dir := filepath.Join(testdata, "src", fixture)
		pkg, err := loader.LoadFixture(dir, fixture)
		if err != nil {
			t.Errorf("%s: %v", fixture, err)
			continue
		}
		pass := analysis.NewPass(az, loader.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
		if err := az.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s: %v", fixture, az.Name, err)
			continue
		}
		check(t, fixture, loader.Fset, pkg, pass.Diagnostics)
	}
}

// key locates a source line.
type key struct {
	file string
	line int
}

func check(t *testing.T, fixture string, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		found := false
		for _, rx := range wants[k] {
			if !matched[rx] && rx.MatchString(d.Message) {
				matched[rx] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic %s", fixture, d)
		}
	}
	// Report unmatched expectations in source order, not map order.
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			if !matched[rx] {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", fixture, k.file, k.line, rx)
			}
		}
	}
}

// parseWant extracts the regexps from a want comment; each pattern is
// double-quoted (Go string syntax) or backquoted.
func parseWant(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var patterns []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, false
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, false
			}
			patterns = append(patterns, unq)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			patterns = append(patterns, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
	}
	if len(patterns) == 0 {
		return nil, false
	}
	return patterns, true
}
