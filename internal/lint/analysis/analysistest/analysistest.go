// Package analysistest runs a lint analyzer over fixture packages and
// checks its diagnostics against // want comments in the fixture source —
// a minimal offline reimplementation of
// golang.org/x/tools/go/analysis/analysistest (see internal/lint/analysis
// for why the upstream module cannot be used).
//
// Expectation syntax: a comment on the line the diagnostic is expected
// at, holding one quoted regular expression per expected diagnostic:
//
//	for k := range m { // want `appends to "out"`
//	rand.IntN(8)       // want "process-global generator"
//
// Lines without a want comment must produce no diagnostics, so fixture
// files double as negative tests — including the annotation-suppressed
// sites, which carry //wfsimlint:allow and no want.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"wfsim/internal/lint/analysis"
	"wfsim/internal/lint/load"
)

// Run loads testdata/src/<fixture> for each fixture as a single package
// and applies the analyzer — both halves: the package-scoped Run, and
// RunModule with the fixture standing in as a one-package module — then
// reports any mismatch between produced diagnostics and // want
// expectations as test errors. Analyzers whose rules span packages are
// exercised with RunModule instead.
func Run(t *testing.T, testdata string, az *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	loader := load.NewFixture()
	for _, fixture := range fixtures {
		dir := filepath.Join(testdata, "src", fixture)
		pkg, err := loader.LoadFixture(dir, fixture)
		if err != nil {
			t.Errorf("%s: %v", fixture, err)
			continue
		}
		var diags []analysis.Diagnostic
		if az.Run != nil {
			pass := analysis.NewPass(az, loader.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
			if err := az.Run(pass); err != nil {
				t.Errorf("%s: analyzer %s: %v", fixture, az.Name, err)
				continue
			}
			diags = append(diags, pass.Diagnostics...)
		}
		if az.RunModule != nil {
			mdiags, err := runModuleHalf(loader, az, []*load.Package{pkg})
			if err != nil {
				t.Errorf("%s: analyzer %s: %v", fixture, az.Name, err)
				continue
			}
			diags = append(diags, mdiags...)
		}
		analysis.SortDiagnostics(diags)
		check(t, fixture, loader.Fset, pkg, diags)
	}
}

// RunModule loads every fixture (in order, so dependencies come before
// their importers and cross-fixture imports resolve) into one module,
// applies the analyzer's module half once over all of them, and checks
// each fixture's // want expectations against the diagnostics landing in
// its files. This is how the interprocedural rules' cross-package flows
// — a wall-clock value laundered through a helper chain, a seed routed
// through another package — are exercised.
func RunModule(t *testing.T, testdata string, az *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	loader := load.NewFixture()
	var pkgs []*load.Package
	for _, fixture := range fixtures {
		dir := filepath.Join(testdata, "src", fixture)
		pkg, err := loader.LoadFixture(dir, fixture)
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := runModuleHalf(loader, az, pkgs)
	if err != nil {
		t.Fatalf("analyzer %s: %v", az.Name, err)
	}
	analysis.SortDiagnostics(diags)
	for i, pkg := range pkgs {
		var own []analysis.Diagnostic
		for _, d := range diags {
			if filepath.Dir(d.Position.Filename) == pkg.Dir {
				own = append(own, d)
			}
		}
		check(t, fixtures[i], loader.Fset, pkg, own)
	}
}

// runModuleHalf builds the call graph over pkgs and applies az.RunModule.
func runModuleHalf(loader *load.Loader, az *analysis.Analyzer, pkgs []*load.Package) ([]analysis.Diagnostic, error) {
	var mpkgs []*analysis.ModulePackage
	for _, pkg := range pkgs {
		mpkgs = append(mpkgs, &analysis.ModulePackage{
			Path: pkg.Path, Dir: pkg.Dir, Files: pkg.Files,
			Types: pkg.Types, Info: pkg.Info,
		})
	}
	graph := analysis.BuildGraph(loader.Fset, mpkgs)
	pass := analysis.NewModulePass(az, loader.Fset, mpkgs, graph)
	if err := az.RunModule(pass); err != nil {
		return nil, err
	}
	return pass.Diagnostics, nil
}

// key locates a source line.
type key struct {
	file string
	line int
}

func check(t *testing.T, fixture string, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		found := false
		for _, rx := range wants[k] {
			if !matched[rx] && rx.MatchString(d.Message) {
				matched[rx] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic %s", fixture, d)
		}
	}
	// Report unmatched expectations in source order, not map order.
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			if !matched[rx] {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", fixture, k.file, k.line, rx)
			}
		}
	}
}

// parseWant extracts the regexps from a want comment; each pattern is
// double-quoted (Go string syntax) or backquoted.
func parseWant(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var patterns []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, false
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, false
			}
			patterns = append(patterns, unq)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			patterns = append(patterns, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
	}
	if len(patterns) == 0 {
		return nil, false
	}
	return patterns, true
}
