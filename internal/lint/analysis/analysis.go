// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that wfsim's lint suite
// needs. The build environment is fully offline (no module proxy, empty
// module cache), so the real x/tools module cannot be added as a
// dependency; this package reimplements the small subset we use —
// Analyzer, Pass, and diagnostic reporting — with the same shape, so the
// analyzers in internal/lint would port to the upstream framework with
// only an import change.
//
// Two wfsim-specific conveniences live here because every analyzer needs
// them:
//
//   - Line-level suppression: a comment of the form
//
//     //wfsimlint:allow rule1,rule2   -- or space-separated
//
//     placed at the end of the offending line, or alone on the line
//     directly above it, suppresses diagnostics from the named rules on
//     that line.
//
//   - File-level annotations: a comment line of the form
//     "//wfsimlint:<name>" anywhere in a file's comments (conventionally
//     immediately above the package clause or the file's first
//     declaration) tags the whole file. The walltime analyzer uses
//     "//wfsimlint:wallclock" to mark the real-time layer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint rule: a named, documented static check.
// A rule may be package-scoped (Run), module-scoped (RunModule), or both:
// the package half sees one type-checked package at a time, the module
// half sees every package at once plus the interprocedural call graph.
type Analyzer struct {
	// Name identifies the rule; it is what //wfsimlint:allow matches
	// against and what diagnostics are prefixed with.
	Name string
	// Doc is the human-oriented description printed by `wfsimlint help`.
	Doc string
	// Run applies the rule to one package and reports findings via
	// pass.Reportf. Nil for module-only analyzers.
	Run func(*Pass) error
	// RunModule applies the rule to the whole module at once — every
	// loaded package plus the call graph — and reports findings via
	// pass.Reportf. Nil for package-only analyzers.
	RunModule func(*ModulePass) error
}

// A Diagnostic is one finding, already resolved to a concrete position
// and filtered through the suppression annotations.
type Diagnostic struct {
	// Position is the resolved file:line:column of the finding.
	Position token.Position
	// Rule is the reporting analyzer's name.
	Rule string
	// Message describes the finding and the expected fix.
	Message string
	// Suppressed marks a finding matched by an entry in the committed
	// suppression baseline (lint.baseline): still reported, but not
	// fatal. //wfsimlint:allow annotations, by contrast, drop findings
	// entirely before they reach this struct.
	Suppressed bool
}

// String renders the diagnostic in the conventional file:line:col form
// that editors and CI log scrapers understand.
func (d Diagnostic) String() string {
	suffix := ""
	if d.Suppressed {
		suffix = " (baselined)"
	}
	return fmt.Sprintf("%s: %s: %s%s", d.Position, d.Rule, d.Message, suffix)
}

// A Pass holds one (analyzer, package) unit of work: the type-checked
// syntax of a single package plus the reporting sink.
type Pass struct {
	// Analyzer is the rule being applied.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files is the package's syntax, including in-package test files when
	// the loader was asked for them.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression and identifier
	// resolution maps.
	TypesInfo *types.Info
	// PkgPath is the import path the package was loaded under.
	PkgPath string

	// Diagnostics accumulates surviving (non-suppressed) findings.
	Diagnostics []Diagnostic

	// allow maps filename → line → rule names suppressed on that line.
	allow map[string]map[int][]string
	// seen dedupes findings: nested constructs (a map range inside a map
	// range, a callback inside a goroutine) can rediscover the same site.
	seen map[Diagnostic]bool
}

// NewPass assembles a Pass for one analyzer over one loaded package and
// indexes its suppression comments.
func NewPass(az *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) *Pass {
	p := &Pass{
		Analyzer:  az,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		PkgPath:   path,
		allow:     make(map[string]map[int][]string),
		seen:      make(map[Diagnostic]bool),
	}
	indexAllows(p.allow, fset, files)
	return p
}

// indexAllows records every //wfsimlint:allow comment in files into the
// filename → line → rules map shared by Pass and ModulePass.
func indexAllows(allow map[string]map[int][]string, fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := allow[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					allow[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], rules...)
			}
		}
	}
}

// parseAllow recognizes "//wfsimlint:allow rule1,rule2" (comma- or
// space-separated) and returns the named rules.
func parseAllow(comment string) ([]string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	const prefix = "wfsimlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	if rest == "" {
		return nil, false
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	rules := fields[:0]
	for _, f := range fields {
		if f != "" {
			rules = append(rules, f)
		}
	}
	return rules, len(rules) > 0
}

// Reportf records a finding at pos unless a //wfsimlint:allow annotation
// for this rule covers the line (trailing comment on the same line, or a
// standalone comment on the line directly above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	d := Diagnostic{
		Position: position,
		Rule:     p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if p.seen[d] {
		return
	}
	p.seen[d] = true
	p.Diagnostics = append(p.Diagnostics, d)
}

func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// IsTestFile reports whether pos falls in a _test.go file. Rules that
// police the production simulation layer (walltime, seedrand) skip test
// files: tests legitimately sleep, time themselves, and live outside the
// simulated world.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileHasAnnotation reports whether any comment line in f is exactly
// "//wfsimlint:<name>" (a file-level tag, e.g. "wallclock").
func FileHasAnnotation(f *ast.File, name string) bool {
	want := "wfsimlint:" + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
				return true
			}
		}
	}
	return false
}

// SortDiagnostics orders findings by file, line, column, rule, then
// message, so multichecker output is a single deterministic global order
// regardless of analyzer or package scheduling — two analyzers (or one
// analyzer's package and module halves) reporting at the same position
// still land in a fixed order.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
