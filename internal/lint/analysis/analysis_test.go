package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		rules   []string
	}{
		{"//wfsimlint:allow maporder", []string{"maporder"}},
		{"// wfsimlint:allow maporder, walltime", []string{"maporder", "walltime"}},
		{"//wfsimlint:allow maporder,floatreduce", []string{"maporder", "floatreduce"}},
		{"//wfsimlint:allow", nil},
		{"//wfsimlint:wallclock", nil},
		{"// plain comment", nil},
	}
	for _, c := range cases {
		rules, ok := parseAllow(c.comment)
		if (len(c.rules) > 0) != ok || len(rules) != len(c.rules) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v", c.comment, rules, ok, c.rules)
			continue
		}
		for i := range rules {
			if rules[i] != c.rules[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.comment, rules, c.rules)
				break
			}
		}
	}
}

const suppressionSrc = `package p

func f() {
	_ = 1 //wfsimlint:allow demo
	//wfsimlint:allow demo
	_ = 2
	//wfsimlint:allow other
	_ = 3
	_ = 4
}
`

// TestSuppression covers both annotation placements — trailing the
// flagged line and standalone on the line above — plus the cases that
// must NOT suppress: a different rule's annotation and no annotation.
func TestSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressionSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	az := &Analyzer{Name: "demo"}
	pass := NewPass(az, fset, []*ast.File{f}, nil, nil, "p")

	stmts := f.Decls[0].(*ast.FuncDecl).Body.List
	if len(stmts) != 4 {
		t.Fatalf("got %d statements, want 4", len(stmts))
	}
	for i, s := range stmts {
		pass.Reportf(s.Pos(), "finding %d", i)
	}

	// Statements 0 and 1 are suppressed; 2 (wrong rule) and 3 (no
	// annotation) must survive.
	if len(pass.Diagnostics) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(pass.Diagnostics), pass.Diagnostics)
	}
	if pass.Diagnostics[0].Message != "finding 2" || pass.Diagnostics[1].Message != "finding 3" {
		t.Errorf("wrong findings survived: %v", pass.Diagnostics)
	}
}

const annotatedSrc = `// Doc comment.
//
//wfsimlint:wallclock
package p
`

func TestFileHasAnnotation(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", annotatedSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if !FileHasAnnotation(f, "wallclock") {
		t.Error("wallclock annotation not detected")
	}
	if FileHasAnnotation(f, "other") {
		t.Error("phantom annotation detected")
	}
}

// TestSortDiagnostics is the regression test for the global diagnostic
// order: file, then line, then column, then rule, then message —
// position ties between analyzers (or between one analyzer's package
// and module halves) must land in a fixed order no matter the order the
// findings were produced in.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, rule, msg string) Diagnostic {
		return Diagnostic{
			Position: token.Position{Filename: file, Line: line, Column: col},
			Rule:     rule,
			Message:  msg,
		}
	}
	want := []Diagnostic{
		mk("a.go", 1, 1, "hotalloc", "x"),
		mk("a.go", 1, 1, "walltime", "a"),
		mk("a.go", 1, 1, "walltime", "b"),
		mk("a.go", 1, 2, "maporder", "x"),
		mk("a.go", 2, 1, "floatreduce", "x"),
		mk("b.go", 1, 1, "seedrand", "x"),
	}
	// Feed in reversed and rotated orders; both must sort identically.
	for _, perm := range [][]int{{5, 4, 3, 2, 1, 0}, {2, 0, 5, 1, 4, 3}} {
		ds := make([]Diagnostic, len(want))
		for i, j := range perm {
			ds[i] = want[j]
		}
		SortDiagnostics(ds)
		for i := range want {
			if ds[i] != want[i] {
				t.Fatalf("perm %v: position %d = %v, want %v", perm, i, ds[i], want[i])
			}
		}
	}
}

// TestModulePassSuppression checks that the module-scoped Reportf honors
// //wfsimlint:allow the same way the package-scoped one does.
func TestModulePassSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressionSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	az := &Analyzer{Name: "demo"}
	pkg := &ModulePackage{Path: "p", Files: []*ast.File{f}}
	pass := NewModulePass(az, fset, []*ModulePackage{pkg}, &Graph{})

	stmts := f.Decls[0].(*ast.FuncDecl).Body.List
	for i, s := range stmts {
		pass.Reportf(s.Pos(), "finding %d", i)
	}
	if len(pass.Diagnostics) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(pass.Diagnostics), pass.Diagnostics)
	}
	if pass.Diagnostics[0].Message != "finding 2" || pass.Diagnostics[1].Message != "finding 3" {
		t.Errorf("wrong findings survived: %v", pass.Diagnostics)
	}
}

func TestReportfDedupes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", "package p\nvar x int\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := NewPass(&Analyzer{Name: "demo"}, fset, []*ast.File{f}, nil, nil, "p")
	pos := f.Decls[0].Pos()
	pass.Reportf(pos, "same finding")
	pass.Reportf(pos, "same finding")
	pass.Reportf(pos, "different finding")
	if len(pass.Diagnostics) != 2 {
		t.Errorf("got %d diagnostics, want 2 (duplicate collapsed)", len(pass.Diagnostics))
	}
}
