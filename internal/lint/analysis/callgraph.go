package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide call graph that module-scoped
// analyzers share: one node per function declaration or function
// literal, static call edges between them, and Tarjan SCCs in bottom-up
// (callees-before-callers) order so per-function summaries can be
// computed by a single walk.
//
// Cross-package identity: the offline loader type-checks each module
// package twice (once as an import dependency, once as a lint target),
// so *types.Func objects are not unique across packages. Nodes are
// therefore keyed by types.Func.FullName() — stable across both checks
// of the same source — and call edges resolve through that key.
//
// The graph is intentionally static: calls through interfaces, function
// variables, and channels of functions produce no edge. Analyzers that
// need those targets (hotalloc's scheduler implementations, simblock's
// process bodies) add them as roots directly.

// A FuncNode is one function in the call graph: a declared function or
// method (Decl set) or a function literal (Lit set).
type FuncNode struct {
	// Key is the node's stable identity: types.Func.FullName() for
	// declarations, a position-derived key for literals.
	Key string
	// Obj is the declared function object; nil for literals.
	Obj *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Pkg is the package the function was declared in.
	Pkg *ModulePackage
	// Parent is the enclosing function for literals; nil for decls.
	Parent *FuncNode
	// Callees are the statically resolved out-edges, in source order.
	Callees []Call
	// Lits are the function literals defined directly in this
	// function's body (not inside a nested literal).
	Lits []*FuncNode

	// Tarjan scratch.
	index, lowlink int
	onStack        bool
}

// A Call is one resolved call site.
type Call struct {
	// Node is the callee.
	Node *FuncNode
	// Pos is the call expression's position.
	Pos token.Pos
}

// Body returns the function's body block.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Sig returns the function's signature type.
func (n *FuncNode) Sig() *types.Signature {
	if n.Obj != nil {
		return n.Obj.Type().(*types.Signature)
	}
	if t, ok := n.Pkg.Info.Types[n.Lit].Type.(*types.Signature); ok {
		return t
	}
	return nil
}

// Name returns a human-readable display name: the declared function's
// qualified name, or "function literal in F" for literals.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return n.Obj.FullName()
	}
	if n.Parent != nil {
		return "function literal in " + n.Parent.Name()
	}
	return "function literal"
}

// A Graph is the module-wide call graph.
type Graph struct {
	// Nodes holds every function, in deterministic (package path, file,
	// position) order.
	Nodes []*FuncNode
	// ByKey resolves a node key (types.Func.FullName()) to its node.
	ByKey map[string]*FuncNode
	// ByLit resolves a function literal to its node.
	ByLit map[*ast.FuncLit]*FuncNode
	// SCCs are the strongly connected components in bottom-up order:
	// every component appears after all components it calls into.
	SCCs [][]*FuncNode
}

// NodeOf resolves a called function object to its graph node, or nil
// when the function has no body in the module (stdlib, declarations).
func (g *Graph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.ByKey[fn.FullName()]
}

// BuildGraph constructs the call graph over pkgs. Packages must be in
// deterministic order; the graph inherits it.
func BuildGraph(fset *token.FileSet, pkgs []*ModulePackage) *Graph {
	g := &Graph{ByKey: make(map[string]*FuncNode), ByLit: make(map[*ast.FuncLit]*FuncNode)}

	// Pass 1: create nodes for every declaration and literal, so edges
	// can resolve forward references and cross-package calls.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Key: obj.FullName(), Obj: obj, Decl: fd, Pkg: pkg}
				// External test packages shadow the real package under
				// "<path>_test"; first registration (the real package,
				// loaded earlier in path order) wins for edge resolution.
				if g.ByKey[n.Key] == nil {
					g.ByKey[n.Key] = n
				}
				g.Nodes = append(g.Nodes, n)
				collectLits(g, fset, pkg, n)
			}
		}
	}

	// Pass 2: resolve call edges inside every node's own body region
	// (literal bodies belong to the literal's node, not the encloser).
	for _, n := range g.Nodes {
		resolveCalls(g, n)
	}

	g.SCCs = tarjan(g.Nodes)
	return g
}

// collectLits registers a node for every function literal lexically
// inside parent (stopping at nested literals, which recurse).
func collectLits(g *Graph, fset *token.FileSet, pkg *ModulePackage, parent *FuncNode) {
	body := parent.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		lit, ok := nd.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := fset.Position(lit.Pos())
		ln := &FuncNode{
			Key:    fmt.Sprintf("lit@%s:%d:%d", pos.Filename, pos.Line, pos.Column),
			Lit:    lit,
			Pkg:    pkg,
			Parent: parent,
		}
		parent.Lits = append(parent.Lits, ln)
		g.ByLit[lit] = ln
		g.Nodes = append(g.Nodes, ln)
		collectLits(g, fset, pkg, ln)
		return false // nested literals handled by the recursion
	})
}

// resolveCalls records n's static out-edges: calls whose target is a
// declared function/method with a body in the module, or a directly
// invoked function literal.
func resolveCalls(g *Graph, n *FuncNode) {
	InspectOwn(n, func(nd ast.Node) {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			if ln := g.ByLit[lit]; ln != nil {
				n.Callees = append(n.Callees, Call{Node: ln, Pos: call.Pos()})
			}
			return
		}
		if callee := g.NodeOf(StaticCallee(n.Pkg.Info, call)); callee != nil {
			n.Callees = append(n.Callees, Call{Node: callee, Pos: call.Pos()})
		}
	})
}

// InspectOwn visits every node in fn's body that is not inside a nested
// function literal (literal bodies belong to the literal's own node).
func InspectOwn(fn *FuncNode, visit func(ast.Node)) {
	body := fn.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if nd != nil {
			visit(nd)
		}
		return true
	})
}

// StaticCallee resolves a call expression to the declared function or
// concrete method it invokes, or nil for dynamic calls (interface
// methods, function values), conversions, and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil // field of function type: dynamic
			}
			if types.IsInterface(sel.Recv()) {
				return nil // interface dispatch: dynamic
			}
			return fn
		}
		// Package-qualified call (pkg.F).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// tarjan computes strongly connected components over Callees edges,
// returned in reverse topological (bottom-up) order: a component is
// emitted only after every component it calls into.
func tarjan(nodes []*FuncNode) [][]*FuncNode {
	var (
		sccs  [][]*FuncNode
		stack []*FuncNode
		next  = 1
	)
	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		n.index, n.lowlink = next, next
		next++
		stack = append(stack, n)
		n.onStack = true
		for _, c := range n.Callees {
			m := c.Node
			if m.index == 0 {
				strongconnect(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			var scc []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	return sccs
}

// Reachable returns the set of nodes reachable from roots over call
// edges plus enclosed function literals. Including literals is a
// deliberate over-approximation: a literal created inside a hot or
// process-body function almost always runs in the same context (event
// callbacks, deferred cleanup), and the graph cannot see the indirect
// invocation that would prove it.
func Reachable(roots []*FuncNode) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var queue []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if !seen[c.Node] {
				seen[c.Node] = true
				queue = append(queue, c.Node)
			}
		}
		for _, l := range n.Lits {
			if !seen[l] {
				seen[l] = true
				queue = append(queue, l)
			}
		}
	}
	return seen
}
