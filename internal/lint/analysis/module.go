package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A ModulePackage is one loaded, type-checked package handed to
// module-scoped analyzers. It mirrors the loader's package shape without
// importing the loader (analysis stays dependency-free).
type ModulePackage struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Files is the parsed syntax, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's resolution maps for Files.
	Info *types.Info
}

// A ModulePass is one (analyzer, module) unit of work: every loaded
// package at once, the interprocedural call graph built over them, and
// the reporting sink. Suppression comments from all files are indexed,
// so Reportf behaves exactly like the package-scoped Pass.
type ModulePass struct {
	// Analyzer is the rule being applied.
	Analyzer *Analyzer
	// Fset maps token positions for every file in every package.
	Fset *token.FileSet
	// Pkgs is every package under analysis, in deterministic path order.
	Pkgs []*ModulePackage
	// Graph is the module-wide call graph (shared across analyzers).
	Graph *Graph

	// Diagnostics accumulates surviving (non-suppressed) findings.
	Diagnostics []Diagnostic

	allow map[string]map[int][]string
	seen  map[Diagnostic]bool
}

// NewModulePass assembles a ModulePass for one analyzer over the whole
// module and indexes the suppression comments of every file.
func NewModulePass(az *Analyzer, fset *token.FileSet, pkgs []*ModulePackage, graph *Graph) *ModulePass {
	p := &ModulePass{
		Analyzer: az,
		Fset:     fset,
		Pkgs:     pkgs,
		Graph:    graph,
		allow:    make(map[string]map[int][]string),
		seen:     make(map[Diagnostic]bool),
	}
	for _, pkg := range pkgs {
		indexAllows(p.allow, fset, pkg.Files)
	}
	return p
}

// Reportf records a finding at pos unless a //wfsimlint:allow annotation
// for this rule covers the line (same line or the line directly above).
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for _, rule := range p.allow[position.Filename][line] {
			if rule == p.Analyzer.Name {
				return
			}
		}
	}
	d := Diagnostic{
		Position: position,
		Rule:     p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if p.seen[d] {
		return
	}
	p.seen[d] = true
	p.Diagnostics = append(p.Diagnostics, d)
}

// IsTestFile reports whether pos falls in a _test.go file.
func (p *ModulePass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FuncAnnotation reports whether fn's doc comment carries the line
// "//wfsimlint:<name>" — a function-level tag. The hotalloc analyzer
// uses "//wfsimlint:hotpath" to add hot-path roots; simblock uses
// "//wfsimlint:procbody" to mark functions that run as process bodies
// through indirections the call graph cannot see.
func FuncAnnotation(fn *ast.FuncDecl, name string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	want := "wfsimlint:" + name
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
			return true
		}
	}
	return false
}
