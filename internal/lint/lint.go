// Package lint is wfsim's determinism lint suite: custom static
// analyzers that turn the project's reproducibility rules — byte-identical
// renders and traces across runs and across -j N parallelism — into
// compile-time-checkable facts. The analyzers mirror the
// golang.org/x/tools/go/analysis style (see internal/lint/analysis for
// why the framework is vendored as a minimal reimplementation) and are
// driven by the cmd/wfsimlint multichecker.
//
// Rules:
//
//	maporder     map iteration with order-sensitive effects
//	walltime     wall-clock time outside the annotated real-time layer
//	seedrand     global math/rand state or entropy-seeded generators
//	floatreduce  float reduction in map/goroutine/callback order
//
// Suppression: `//wfsimlint:allow <rule>[,<rule>...]` on or directly
// above the flagged line; `//wfsimlint:wallclock` tags a whole file as
// part of the real-time layer (walltime only). DESIGN.md's "Determinism
// invariants" section documents each rule's rationale.
package lint

import (
	"path/filepath"
	"strings"

	"wfsim/internal/lint/analysis"
	"wfsim/internal/lint/load"
)

// Analyzers is the full suite, in name order.
var Analyzers = []*analysis.Analyzer{FloatReduce, MapOrder, SeedRand, WallTime}

// Run loads the module rooted at (or above) dir and applies the analyzers
// to every package whose directory matches one of the patterns
// ("./..."-style, relative to the module root; empty means everything).
// Diagnostics come back in deterministic file/line order.
func Run(dir string, analyzers []*analysis.Analyzer, includeTests bool, patterns []string) ([]analysis.Diagnostic, error) {
	loader, err := load.New(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if !matchesAny(loader.ModRoot, pkg.Dir, patterns) {
			continue
		}
		for _, az := range analyzers {
			pass := analysis.NewPass(az, loader.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
			if err := az.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.Diagnostics...)
		}
	}
	analysis.SortDiagnostics(diags)
	return diags, nil
}

// matchesAny reports whether dir (a package directory) is selected by the
// patterns: "./..." selects everything, "./x/..." selects x and its
// subtree, "./x" selects exactly x. No patterns selects everything.
func matchesAny(root, dir string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if sub, ok := strings.CutSuffix(pat, "..."); ok {
			sub = strings.TrimSuffix(sub, "/")
			if sub == "" || sub == "." || rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat || (pat == "." && rel == ".") {
			return true
		}
	}
	return false
}
