// Package lint is wfsim's determinism lint suite: custom static
// analyzers that turn the project's reproducibility rules — byte-identical
// renders and traces across runs and across -j N parallelism — into
// compile-time-checkable facts. The analyzers mirror the
// golang.org/x/tools/go/analysis style (see internal/lint/analysis for
// why the framework is vendored as a minimal reimplementation) and are
// driven by the cmd/wfsimlint multichecker.
//
// Rules:
//
//	floatreduce  float reduction in map/goroutine/callback order
//	hotalloc     heap allocation in the steady-state simulate path
//	maporder     map iteration with order-sensitive effects
//	seedrand     global math/rand state or entropy-seeded generators
//	simblock     real blocking inside simulated process bodies
//	walltime     wall-clock time outside the annotated real-time layer
//
// walltime and seedrand are interprocedural: besides their per-package
// halves they run taint analyses over the module-wide call graph
// (internal/lint/analysis), so a wall-clock instant or entropy-derived
// seed laundered through any chain of helpers is still caught at the
// point where simulation code consumes it. hotalloc and simblock are
// purely module-scoped: they compute reachability from steady-state
// roots (the event loop, dispatch path, scheduler entry points) and
// from Engine.Go process-body arguments respectively.
//
// Suppression: `//wfsimlint:allow <rule>[,<rule>...]` on or directly
// above the flagged line; `//wfsimlint:wallclock` tags a whole file as
// part of the real-time layer (walltime only); `//wfsimlint:hotpath` and
// `//wfsimlint:procbody` doc-comment tags add analysis roots. Findings
// recorded in the committed baseline (lint.baseline at the module root)
// print but do not fail the build. DESIGN.md's "Determinism invariants"
// section documents each rule's rationale.
package lint

import (
	"path/filepath"
	"strings"

	"wfsim/internal/lint/analysis"
	"wfsim/internal/lint/load"
)

// Analyzers is the full suite, in name order.
var Analyzers = []*analysis.Analyzer{FloatReduce, HotAlloc, MapOrder, SeedRand, SimBlock, WallTime}

// A Result is one lint run's output.
type Result struct {
	// Diagnostics are the surviving findings in deterministic global
	// order (file, line, column, rule, message). Baseline-matched
	// findings are present with Suppressed set.
	Diagnostics []analysis.Diagnostic
	// Stale lists baseline entries no finding matched — debt that has
	// been paid and should be removed from the baseline.
	Stale []string
	// ModRoot is the absolute module root the run resolved.
	ModRoot string
}

// Failing counts the diagnostics that should fail the build: everything
// not absorbed by the baseline.
func (r *Result) Failing() int {
	n := 0
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			n++
		}
	}
	return n
}

// Run loads the module rooted at (or above) dir and applies the
// analyzers, returning the diagnostics in deterministic global order.
// No baseline is consulted; see RunModule for the full-featured entry
// point.
func Run(dir string, analyzers []*analysis.Analyzer, includeTests bool, patterns []string) ([]analysis.Diagnostic, error) {
	res, err := RunModule(dir, analyzers, includeTests, patterns, "")
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunModule loads the module rooted at (or above) dir and applies the
// analyzers. Package-scoped halves run on every package whose directory
// matches one of the patterns ("./..."-style, resolved relative to dir —
// the invocation directory, as the go tool does; empty means
// everything). Module-scoped halves always analyze
// the whole module — interprocedural facts do not respect package
// boundaries — and their diagnostics are then filtered to the matched
// packages, so a narrowed run stays sound and still only reports where
// it was asked to. baselinePath names the suppression baseline to
// apply; "" skips baselining.
func RunModule(dir string, analyzers []*analysis.Analyzer, includeTests bool, patterns []string, baselinePath string) (*Result, error) {
	loader, err := load.New(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}

	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	matched := make(map[string]bool)
	for _, pkg := range pkgs {
		if matchesAny(base, pkg.Dir, patterns) {
			matched[pkg.Dir] = true
		}
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if !matched[pkg.Dir] {
			continue
		}
		for _, az := range analyzers {
			if az.Run == nil {
				continue
			}
			pass := analysis.NewPass(az, loader.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Path)
			if err := az.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.Diagnostics...)
		}
	}

	var modPkgs []*analysis.ModulePackage
	for _, pkg := range pkgs {
		modPkgs = append(modPkgs, &analysis.ModulePackage{
			Path: pkg.Path, Dir: pkg.Dir, Files: pkg.Files,
			Types: pkg.Types, Info: pkg.Info,
		})
	}
	var graph *analysis.Graph
	for _, az := range analyzers {
		if az.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = analysis.BuildGraph(loader.Fset, modPkgs)
		}
		pass := analysis.NewModulePass(az, loader.Fset, modPkgs, graph)
		if err := az.RunModule(pass); err != nil {
			return nil, err
		}
		for _, d := range pass.Diagnostics {
			if matched[filepath.Dir(d.Position.Filename)] {
				diags = append(diags, d)
			}
		}
	}

	res := &Result{Diagnostics: diags, ModRoot: loader.ModRoot}
	if baselinePath != "" {
		base, err := LoadBaseline(baselinePath)
		if err != nil {
			return nil, err
		}
		res.Stale = base.Apply(loader.ModRoot, res.Diagnostics)
	}
	analysis.SortDiagnostics(res.Diagnostics)
	return res, nil
}

// matchesAny reports whether dir (an absolute package directory) is
// selected by the patterns, resolved against base (the invocation
// directory): "./..." selects everything under base, "./x/..." selects
// x and its subtree, "./x" (or ".") selects exactly that directory. No
// patterns selects everything.
func matchesAny(base, dir string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if sub, ok := strings.CutSuffix(filepath.ToSlash(pat), "..."); ok {
			root := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(sub, "/")))
			if dir == root || strings.HasPrefix(dir, root+string(filepath.Separator)) {
				return true
			}
			continue
		}
		if dir == filepath.Join(base, filepath.FromSlash(pat)) {
			return true
		}
	}
	return false
}
