package lint

import (
	"go/ast"
	"go/types"

	"wfsim/internal/lint/analysis"
)

// WallTime forbids reading or acting on the host's clock in simulation
// code. The simulated world advances on the DES engine's virtual clock
// (sim.Engine.Now); any time.Now/Since/Sleep in those packages either
// leaks nondeterministic wall-clock values into results or stalls a
// simulation that should complete in microseconds.
//
// The rule has two halves:
//
//   - Per package, every direct call into the host clock (time.Now,
//     time.Since, time.Sleep, ...) is flagged in non-annotated files.
//
//   - Per module, a taint analysis over the call graph tracks
//     wall-clock *values* through returns, assignments, struct fields,
//     and call boundaries: a helper that returns time.Now().UnixNano()
//     — even from a //wfsimlint:wallclock-annotated file, even through
//     a chain of helpers across packages — taints its result, and any
//     call consuming that result from simulation code is flagged. This
//     closes the laundering hole where a one-line wrapper converted a
//     forbidden direct call into an invisible indirect one.
//
// The rule is deny-by-default: every non-test file is virtual-time unless
// it carries the file-level annotation
//
//	//wfsimlint:wallclock
//
// (conventionally placed directly above the package clause), which marks
// it as part of the real-time layer — the trial runner that measures
// actual host wall-clock, the CLI that reports elapsed time to humans,
// and the real-execution local backend. Individual calls can also be
// waved through with //wfsimlint:allow walltime.
//
// Test files are exempt: tests and benchmarks legitimately sleep, time
// themselves, and live outside the simulated world.
var WallTime = &analysis.Analyzer{
	Name:      "walltime",
	Doc:       "forbids wall-clock time (time.Now/Since/Sleep/...) outside the annotated real-time layer, including wall-clock values laundered through helper calls",
	Run:       runWallTime,
	RunModule: runWallTimeModule,
}

// wallFuncs are the package-level `time` entry points that observe or
// wait on the host clock. Pure types and constants (time.Duration,
// time.Millisecond, ...) remain usable everywhere.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// wallValueFuncs are the subset that produce a host-clock *instant* (or
// a timer bound to one) — the taint sources for the module half. Since
// and Until are deliberately absent: they return durations, and a
// measured elapsed span is the real-time layer's legitimate data product
// (the experiment tables are full of them); only the instants that tie
// code to the live clock make downstream consumers nondeterministic.
// Direct Since/Until calls in simulation code are still flagged by the
// per-package half.
var wallValueFuncs = map[string]bool{
	"Now": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallTime(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) || analysis.FileHasAnnotation(f, "wallclock") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallFuncs[sel.Sel.Name] {
				return true
			}
			if path, ok := pkgPathOf(pass.TypesInfo, sel.X); ok && path == "time" {
				pass.Reportf(sel.Pos(), "time.%s reads the host clock: simulation code must use the engine's virtual clock (sim.Engine.Now); if this file is genuinely part of the real-time layer, annotate it //wfsimlint:wallclock", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// wallSource classifies calls to value-producing host-clock functions as
// taint sources.
func wallSource(info *types.Info, n ast.Node) string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !wallValueFuncs[sel.Sel.Name] {
		return ""
	}
	if path, ok := pkgPathOf(info, sel.X); ok && path == "time" {
		return "time." + sel.Sel.Name
	}
	return ""
}

// runWallTimeModule is the interprocedural half: solve the wall-clock
// taint over the whole module, then flag every call in checked
// (non-test, non-wallclock) files whose result is wall-clock-derived.
func runWallTimeModule(pass *analysis.ModulePass) error {
	eng := newTaintEngine(pass.Graph, pass.Fset, taintHooks{source: wallSource})
	eng.solve()
	for _, n := range pass.Graph.Nodes {
		if !checkedWallFile(pass, n) {
			continue
		}
		eng.report(n, reportHooks{
			taintedCall: func(call *ast.CallExpr, callee *analysis.FuncNode, culprit string) {
				pass.Reportf(call.Pos(), "call to %s returns a wall-clock-derived value (from %s): simulation code must not consume host-clock instants, however many helpers they pass through; use the engine's virtual clock or annotate the file //wfsimlint:wallclock", callee.Name(), culprit)
			},
		})
	}
	return nil
}

// checkedWallFile reports whether n's enclosing file is subject to
// walltime reporting.
func checkedWallFile(pass *analysis.ModulePass, n *analysis.FuncNode) bool {
	if pass.IsTestFile(n.Pos()) {
		return false
	}
	f := fileOf(n)
	return f != nil && !analysis.FileHasAnnotation(f, "wallclock")
}

// fileOf finds the *ast.File containing n's declaration.
func fileOf(n *analysis.FuncNode) *ast.File {
	pos := n.Pos()
	for _, f := range n.Pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
