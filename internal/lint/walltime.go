package lint

import (
	"go/ast"

	"wfsim/internal/lint/analysis"
)

// WallTime forbids reading or acting on the host's clock in simulation
// code. The simulated world advances on the DES engine's virtual clock
// (sim.Engine.Now); any time.Now/Since/Sleep in those packages either
// leaks nondeterministic wall-clock values into results or stalls a
// simulation that should complete in microseconds.
//
// The rule is deny-by-default: every non-test file is virtual-time unless
// it carries the file-level annotation
//
//	//wfsimlint:wallclock
//
// (conventionally placed directly above the package clause), which marks
// it as part of the real-time layer — the trial runner that measures
// actual host wall-clock, the CLI that reports elapsed time to humans,
// and the real-execution local backend. Individual calls can also be
// waved through with //wfsimlint:allow walltime.
//
// Test files are exempt: tests and benchmarks legitimately sleep and time
// themselves, and they are not part of the simulated world.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbids wall-clock time (time.Now/Since/Sleep/...) outside the annotated real-time layer",
	Run:  runWallTime,
}

// wallFuncs are the package-level `time` entry points that observe or
// wait on the host clock. Pure types and constants (time.Duration,
// time.Millisecond, ...) remain usable everywhere.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallTime(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) || analysis.FileHasAnnotation(f, "wallclock") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallFuncs[sel.Sel.Name] {
				return true
			}
			if path, ok := pkgPathOf(pass.TypesInfo, sel.X); ok && path == "time" {
				pass.Reportf(sel.Pos(), "time.%s reads the host clock: simulation code must use the engine's virtual clock (sim.Engine.Now); if this file is genuinely part of the real-time layer, annotate it //wfsimlint:wallclock", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
