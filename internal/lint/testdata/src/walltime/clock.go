// This file is the fixture's real-time layer: the file-level annotation
// exempts every host-clock call in it.
//
//wfsimlint:wallclock

package walltime

import "time"

// elapsed is clean here: the file is annotated wall-clock layer.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
