// Package walltime is the fixture for the walltime analyzer: host-clock
// calls are flagged in ordinary (virtual-time) files, waved through in a
// //wfsimlint:wallclock-annotated file, exempt in test files, and
// suppressible per line.
package walltime

import "time"

// stamp is flagged: simulation code must not read the host clock.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the host clock`
}

// pause is flagged: sleeping stalls a world that should advance on the
// virtual clock.
func pause() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep reads the host clock`
}

// timer is flagged: timers are host-clock waits too.
func timer() <-chan time.Time {
	return time.After(time.Second) // want `time.After reads the host clock`
}

// window is clean: durations and time constants are pure values.
func window() time.Duration {
	return 3 * time.Second
}

// profiled is the annotation-suppressed site: a deliberate exception.
func profiled() time.Time {
	return time.Now() //wfsimlint:allow walltime
}
