package walltime

import "time"

// testDelay is clean: _test.go files are exempt from walltime — tests
// and benchmarks legitimately sleep and time themselves.
func testDelay() {
	time.Sleep(time.Millisecond)
}
