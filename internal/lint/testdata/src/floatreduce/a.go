// Package floatreduce is the fixture for the floatreduce analyzer:
// float accumulation in map order or goroutine/callback completion order
// is flagged; sorted-key reduction, per-worker sharding, and integer
// reduction pass clean; //wfsimlint:allow suppresses a deliberate
// exception.
package floatreduce

import (
	"sort"
	"sync"
)

// mapSum is flagged: the addend order is Go's randomized map order, and
// float addition is non-associative.
func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum" in map iteration order`
	}
	return sum
}

// sortedSum is clean: reduction order is fixed by program text.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// groupSum is flagged: the bucket expression is not the loop key, so
// several iterations can hit one bucket in map order.
func groupSum(m map[string]float64, group func(string) string) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		out[group(k)] += v // want `float accumulation into "out" in map iteration order`
	}
	return out
}

// perKey is clean: every iteration owns its slot.
func perKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

// parallelSum is flagged: goroutine completion order decides the addend
// order even though the accumulation is mutex-protected.
func parallelSum(xs []float64) float64 {
	var (
		mu  sync.Mutex
		sum float64
		wg  sync.WaitGroup
	)
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += x // want `float accumulation into captured "sum": goroutine completion order`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}

// shardedSum is clean: per-worker shards reduced in index order — the
// fix this rule recommends.
func shardedSum(xs []float64) float64 {
	partial := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			partial[i] += x
		}()
	}
	wg.Wait()
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// walkSum is flagged: the callee decides the callback invocation order.
func walkSum(walk func(func(float64))) float64 {
	var sum float64
	walk(func(v float64) {
		sum += v // want `float accumulation into captured "sum": callback invocation order`
	})
	return sum
}

// orderedWalkSum is the annotation-suppressed site: the callee documents
// deterministic in-order invocation.
func orderedWalkSum(each func(func(float64))) float64 {
	var sum float64
	each(func(v float64) {
		sum += v //wfsimlint:allow floatreduce
	})
	return sum
}

// mapCount is clean: integer reduction is exact in any order.
func mapCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
