// Package inner is the annotated real-time layer of the walltime chain
// fixture: reading the host clock is legal here, but the values it
// returns stay tainted — consumers in virtual-time code are still
// flagged, however many hops away.
//
//wfsimlint:wallclock

package inner

import "time"

// StampNanos reads the host clock. Clean in this file; the returned
// value carries the taint.
func StampNanos() int64 {
	return time.Now().UnixNano()
}

// Deadline returns a host-clock instant directly.
func Deadline(grace time.Duration) time.Time {
	return time.Now().Add(grace)
}

// Budget is clean everywhere: a pure duration, no clock read.
func Budget() time.Duration {
	return 5 * time.Second
}
