// Package chain is the virtual-time side of the walltime chain fixture:
// it never touches the time package, yet consuming a wall-clock value
// laundered through two cross-package helper hops is still flagged —
// the acceptance case for the interprocedural half.
package chain

import (
	"time"

	"chain/inner"
)

// relay is the second hop: a one-line wrapper that would have made the
// clock read invisible to a per-package rule. The call it wraps is
// itself a flagged consumption — this file is virtual-time.
func relay() int64 {
	return inner.StampNanos() // want `call to chain/inner.StampNanos returns a wall-clock-derived value \(from time.Now\)`
}

// Consume is the laundering sink: two hops and a package boundary away
// from time.Now, and still caught.
func Consume() int64 {
	v := relay() // want `call to chain.relay returns a wall-clock-derived value \(from time.Now\)`
	return v
}

// Cutoff consumes an instant returned by the annotated layer.
func Cutoff() time.Time {
	return inner.Deadline(time.Second) // want `call to chain/inner.Deadline returns a wall-clock-derived value \(from time.Now\)`
}

// Plan is clean: durations are pure values, not clock reads.
func Plan() time.Duration {
	return inner.Budget() + time.Second
}

// discard proves result-insensitivity: a tainted call whose value is
// thrown away is not a consumption.
func discard() {
	relay()
}
