// Package simblock is the fixture for the simblock rule: process bodies
// handed to Engine.Go/GoAfter — directly, as literals, as method values,
// or through a bound-once field — must not block the engine's single
// coroutine thread, and neither may anything they call. Identical
// constructs outside any process body pass clean.
package simblock

import (
	"fmt"
	"sync"
	"time"

	"simblockeng"
)

type worker struct {
	mu     sync.Mutex
	bodyFn func(*simblockeng.Proc) // bound once at setup, spawned later
	done   chan int
}

// Start wires the fixture's process bodies: a named function, a bound
// method traced through the bodyFn field, and an inline literal.
func Start(e *simblockeng.Engine, w *worker) {
	w.bodyFn = w.step
	e.Go("direct", directBody)
	e.GoAfter("bound", 1, w.bodyFn)
	e.Go("inline", func(p *simblockeng.Proc) {
		time.Sleep(time.Millisecond) // want `time.Sleep inside a simulated process body waits on the host clock`
		p.Wait(1)
	})
}

// directBody is a process body by virtue of the e.Go call above; its own
// statements and everything it calls are checked.
func directBody(p *simblockeng.Proc) {
	p.Wait(2) // clean: virtual waiting is the approved primitive
	helper(p)
	go helper(p) // want `go statement inside a simulated process body spawns a real goroutine`
}

// helper is one hop from a process body: still checked.
func helper(p *simblockeng.Proc) {
	ch := make(chan int, 1)
	ch <- 1  // want `channel send inside a simulated process body`
	<-ch     // want `channel receive inside a simulated process body`
	select { // want `select inside a simulated process body`
	case v := <-ch: // want `channel receive inside a simulated process body`
		_ = v
	default:
	}
}

// step runs as a process through the bodyFn indirection; the rule traces
// the field back to this assignment.
func (w *worker) step(p *simblockeng.Proc) {
	w.mu.Lock() // want `sync Mutex.Lock inside a simulated process body`
	w.mu.Unlock()
	fmt.Println("step")     // want `fmt.Println writes to a real stream inside a simulated process body`
	for v := range w.done { // want `ranging over a channel inside a simulated process body`
		_ = v
	}
}

// annotatedBody runs as a process only via the doc-comment annotation —
// the spawn happens through an indirection the call graph cannot see.
//
//wfsimlint:procbody
func annotatedBody(p *simblockeng.Proc) {
	time.Sleep(time.Second) // want `time.Sleep inside a simulated process body`
	waved(p)
}

// waved carries a deliberate, line-annotated exception.
func waved(p *simblockeng.Proc) {
	time.Sleep(time.Millisecond) //wfsimlint:allow simblock
}

// Drive is ordinary (non-process) code: the same constructs are fine
// here — this is what keeps the rule reachability-scoped rather than a
// blanket channel ban.
func Drive(e *simblockeng.Engine, w *worker) {
	w.mu.Lock()
	w.mu.Unlock()
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	fmt.Println("driving")
	e.Run()
}
