// Package seeds provides run-varying seed material behind helper
// functions — the cross-package half of the seedrand chain fixture. The
// helpers themselves contain no generator constructors, so nothing is
// flagged here; the taint rides the return values.
package seeds

import (
	"os"
	"time"
)

// WallSeed returns the host clock as seed material.
func WallSeed() int64 {
	return time.Now().UnixNano()
}

// PidSeed derives seed material from the process identity.
func PidSeed() int64 {
	return int64(os.Getpid())
}

// FixedSeed is the approved kind of seed: a constant.
func FixedSeed() int64 {
	return 0x5eed
}
