// Package seedchain is the interprocedural seedrand fixture: entropy
// that flows into a generator constructor through helper returns, local
// variables, struct fields, and parameter positions — across a package
// boundary — is flagged at the point where the seed is committed, while
// constant seeds routed through the same shapes pass clean.
package seedchain

import (
	"math/rand"

	"seedchain/seeds"
)

// newGen commits its parameter as a seed; callers passing entropy are
// flagged at their call sites via the parameter-flow summary.
func newGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

type genConfig struct {
	seed int64
}

// Build exercises the flows.
func Build() *rand.Rand {
	// Helper-returned entropy straight into a constructor.
	src := rand.NewSource(seeds.WallSeed()) // want `rand.NewSource is seeded from the wall clock \(time.Now\)`
	_ = src

	// Entropy through a local variable.
	pid := seeds.PidSeed()
	_ = rand.NewSource(pid) // want `rand.NewSource is seeded from the process ID \(os.Getpid\)`

	// Entropy through a parameter, flagged where the caller supplies it.
	g := newGen(seeds.WallSeed()) // want `newGen is seeded from the wall clock \(time.Now\)`

	// Entropy through a struct field.
	cfg := genConfig{seed: seeds.WallSeed()}
	_ = rand.NewSource(cfg.seed) // want `rand.NewSource is seeded from the wall clock \(time.Now\)`

	// The same shapes with constant material are the approved pattern.
	_ = newGen(42)
	_ = newGen(seeds.FixedSeed())

	// Field taint is per-field, not per-instance (a documented
	// over-approximation): once any instance's seed field held entropy,
	// reads of that field flag even on a constant-initialized value.
	fixed := genConfig{seed: 7}
	_ = rand.NewSource(fixed.seed) // want `rand.NewSource is seeded from the wall clock \(time.Now\)`

	return g
}
