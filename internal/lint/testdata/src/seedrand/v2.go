// Package seedrand is the fixture for the seedrand analyzer: global
// math/rand state and run-varying seeds are flagged, explicitly seeded
// generators pass clean, test files are exempt, and //wfsimlint:allow
// suppresses a deliberate exception.
package seedrand

import (
	"math/rand/v2"
	"os"
	"time"
)

// pick is flagged: the package-level functions draw from the
// process-global, entropy-seeded generator.
func pick(n int) int {
	return rand.IntN(n) // want `rand.IntN uses the process-global generator`
}

// mix is flagged: shuffling with global state.
func mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the process-global generator`
}

// seeded is clean: an explicit generator seeded from a value that flowed
// in — wfsim's approved pattern.
func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b9))
}

// draw is clean: methods on an explicit generator.
func draw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// sloppy is flagged twice: both the constructor and its source are
// wall-clock seeded, so the generator differs on every run.
func sloppy() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1)) // want `rand.New is seeded from the wall clock` `rand.NewPCG is seeded from the wall clock`
}

// pidSeeded is flagged: process identity is run-varying seed material.
func pidSeeded() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(os.Getpid()), 2)) // want `rand.New is seeded from the process ID` `rand.NewPCG is seeded from the process ID`
}

// jitter is the annotation-suppressed site: a deliberately
// non-reproducible path, annotated as such.
func jitter() float64 {
	return rand.Float64() //wfsimlint:allow seedrand
}
