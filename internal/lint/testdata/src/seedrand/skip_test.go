package seedrand

import "math/rand/v2"

// testPick is clean: _test.go files are exempt from seedrand.
func testPick() int {
	return rand.IntN(4)
}
