package seedrand

import (
	"math/rand"
	"time"
)

// legacy is flagged twice: the classic pre-v2 antipattern —
// rand.New(rand.NewSource(time.Now().UnixNano())).
func legacy() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand.New is seeded from the wall clock` `rand.NewSource is seeded from the wall clock`
}

// legacyPick is flagged: legacy global helpers are global state too.
func legacyPick() int {
	return rand.Intn(10) // want `rand.Intn uses the process-global generator`
}

// legacySeeded is clean: explicit legacy generator with a threaded seed.
func legacySeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
