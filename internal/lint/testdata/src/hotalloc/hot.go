// Package hotalloc is the fixture for the hot-path allocation rule:
// allocation in functions reachable from a //wfsimlint:hotpath root is
// flagged — including through helper calls — while the capped-append
// scratch idiom, setup code off the hot path, and annotated exceptions
// pass clean.
package hotalloc

import "fmt"

type task struct {
	id   int
	deps []int
}

// dispatchLoop is the fixture's steady-state root, standing in for the
// runtime dispatch path.
//
//wfsimlint:hotpath
func dispatchLoop(tasks []task, ready []int) {
	for _, t := range tasks {
		ready = collectReady(ready, t) // the acceptance case: uncapped append one hop down
		noteDone(t.id)
		_ = scratchReuse(ready, tasks)
		hotMake(t.id)
		_ = hotClosure(t.id)
		annotated(t.id)
	}
}

// collectReady is one call away from the root: its uncapped append is a
// hot-path allocation even though this function carries no annotation.
func collectReady(ready []int, t task) []int {
	return append(ready, t.id) // want `append may grow "ready" in the steady-state simulate path`
}

// noteDone formats on the hot path; Sprintf allocates its result.
func noteDone(id int) {
	_ = fmt.Sprintf("task %d", id) // want `fmt.Sprintf allocates in the steady-state simulate path`
	record(id)
}

// record boxes its concrete argument into an interface parameter.
func record(id int) {
	observe(id) // want `passing int by value into an interface parameter boxes it`
}

func observe(v any) { _ = v }

// scratchReuse is clean: the slice is visibly recycled, so appends to it
// are amortized-allocation-free (the scheduler's Place idiom).
func scratchReuse(scratch []int, tasks []task) int {
	scratch = scratch[:0]
	for _, t := range tasks {
		scratch = append(scratch, t.id)
	}
	return len(scratch)
}

// hotMake allocates containers per call.
func hotMake(n int) {
	seen := make(map[int]bool) // want `make allocates in the steady-state simulate path`
	_ = seen
	_ = []int{n}          // want `slice literal allocates in the steady-state simulate path`
	_ = map[int]int{n: n} // want `map literal allocates in the steady-state simulate path`
}

// hotClosure builds a fresh closure per call; the environment capture is
// a heap allocation.
func hotClosure(base int) func(int) int {
	return func(x int) int { return x + base } // want `closure captures "base" and allocates its environment`
}

// annotated is a deliberate exception — an error path allowed to format.
func annotated(id int) {
	_ = fmt.Sprintf("task %d failed", id) //wfsimlint:allow hotalloc
}

// Everything below is off the hot path: identical constructs, no
// diagnostics, proving the rule is reachability-scoped rather than
// syntactic.

func setup(n int) []task {
	tasks := make([]task, 0)
	for i := 0; i < n; i++ {
		tasks = append(tasks, task{id: i, deps: []int{i - 1}})
	}
	return tasks
}

func report(tasks []task) string {
	return fmt.Sprintf("%d tasks", len(tasks))
}
