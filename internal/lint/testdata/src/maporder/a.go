// Package maporder is the fixture for the maporder analyzer: map-range
// loops with order-sensitive effects are flagged, the collect-then-sort
// idiom and order-free bodies pass clean, and //wfsimlint:allow maporder
// suppresses a deliberate exception.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// appendNoSort is flagged: element order follows map order and nothing
// re-establishes a deterministic order afterwards.
func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to "out"`
		out = append(out, strings.ToUpper(k))
	}
	return out
}

// sortedKeys is clean: the canonical collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type pair struct {
	key string
	val float64
}

// sortedPairs is clean: collecting structs built from the loop variables
// is still the idiom as long as a following sort fixes the order.
func sortedPairs(m map[string]float64) []pair {
	out := make([]pair, 0, len(m))
	for k, v := range m {
		out = append(out, pair{key: k, val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// printOrder is flagged: bytes reach the output in map order.
func printOrder(m map[string]int) {
	for k, v := range m { // want `writes output via fmt.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// buildOrder is flagged: builder writes serialize map order.
func buildOrder(m map[int]string) string {
	var b strings.Builder
	for _, v := range m { // want `writes to "b" via WriteString`
		b.WriteString(v)
	}
	return b.String()
}

// sendOrder is flagged: channel delivery order follows map order.
func sendOrder(m map[int]int, ch chan<- int) {
	for _, v := range m { // want `sends on a channel`
		ch <- v
	}
}

// sumOrder is flagged: float addition is non-associative, so the sum's
// bits follow map order.
func sumOrder(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates into "sum"`
		sum += v
	}
	return sum
}

// firstError is flagged: which key's error is returned depends on map
// order.
func firstError(m map[string]int) error {
	for k, v := range m { // want `returns a non-constant value`
		if v < 0 {
			return fmt.Errorf("bad %s", k)
		}
	}
	return nil
}

// count is clean: integer addition is exact and commutative.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// regroup is clean: per-key sharding — every iteration owns its slot, so
// iteration order is invisible in the result.
func regroup(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

type registry map[string]func() int

// callAll is flagged: named map types are still maps.
func callAll(r registry, sink chan<- int) {
	for _, f := range r { // want `sends on a channel`
		sink <- f()
	}
}

// debugDump is the annotation-suppressed site: byte order is accepted
// here, and the annotation on the line above the loop waves it through.
func debugDump(m map[string]int) {
	//wfsimlint:allow maporder
	for k, v := range m {
		fmt.Println(k, v)
	}
}
