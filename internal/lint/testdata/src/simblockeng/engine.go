// Package simblockeng is the coroutine-substrate fixture for the
// simblock rule: a minimal Engine with the Go/GoAfter process-spawning
// shape. Its own package is exempt from the rule — the substrate is
// allowed to touch the machinery process bodies must never use.
package simblockeng

// Proc is a simulated process handle.
type Proc struct {
	clock float64
}

// Wait advances the process's virtual clock — the approved way for a
// process body to spend time.
func (p *Proc) Wait(d float64) { p.clock += d }

// Engine runs process bodies as single-threaded coroutines.
type Engine struct {
	pending []func(*Proc)
}

// Go starts fn as a simulated process now.
func (e *Engine) Go(name string, fn func(*Proc)) { e.GoAfter(name, 0, fn) }

// GoAfter starts fn as a simulated process after delay virtual seconds.
func (e *Engine) GoAfter(name string, delay float64, fn func(*Proc)) {
	_ = delay
	e.pending = append(e.pending, fn)
}

// Run drains the pending processes; being in the substrate package, the
// machinery here is exempt however it synchronizes.
func (e *Engine) Run() {
	for _, fn := range e.pending {
		fn(&Proc{})
	}
}
