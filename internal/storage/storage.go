// Package storage implements the two storage architectures the paper
// compares (§3.4, Figure 10): node-local disks and a shared file system
// (GPFS). Both expose block reads and writes as simulated I/O over the
// cluster's contended links, plus the block-location metadata the
// data-locality scheduler consults.
//
// With local disks, a block read from the node that holds it costs only
// that node's disk; a remote read streams disk → network (owner's NIC and
// reader's NIC both traversed). With the shared architecture, every access
// crosses the reader's NIC and the cluster-wide GPFS backend pipe, adding
// the network latency and resource contention the paper attributes to
// shared disks.
package storage

import (
	"fmt"

	"wfsim/internal/cluster"
	"wfsim/internal/sim"
)

// Architecture enumerates the paper's storage factor (Table 1, factor g).
type Architecture int

const (
	// Shared is the decoupled processing/storage architecture (GPFS) —
	// the paper's default.
	Shared Architecture = iota
	// Local uses node-local disks.
	Local
)

func (a Architecture) String() string {
	if a == Local {
		return "local disk"
	}
	return "shared disk"
}

// System is a simulated storage architecture.
type System interface {
	// Arch identifies the architecture.
	Arch() Architecture
	// Place records the initial location of a block (Local) or its
	// presence on the backend (Shared). Node is ignored for Shared.
	Place(key string, node int)
	// Location returns the node holding the block and true, or -1 and
	// false when the block has no node affinity (shared storage or
	// unknown key). The data-locality scheduler uses this.
	Location(key string) (int, bool)
	// Read streams the block's bytes to the reader node, blocking p in
	// virtual time, and returns the I/O duration.
	Read(p *sim.Proc, reader *cluster.Node, key string, bytes float64) float64
	// Write streams bytes from the writer node to storage, records the
	// new block location, and returns the I/O duration.
	Write(p *sim.Proc, writer *cluster.Node, key string, bytes float64) float64
}

// LocalDisks is the node-local architecture.
type LocalDisks struct {
	c   *cluster.Cluster
	loc map[string]int
}

// NewLocal creates a local-disk system over the cluster.
func NewLocal(c *cluster.Cluster) *LocalDisks {
	return &LocalDisks{c: c, loc: make(map[string]int)}
}

// Arch implements System.
func (l *LocalDisks) Arch() Architecture { return Local }

// Place implements System.
func (l *LocalDisks) Place(key string, node int) { l.loc[key] = node }

// Location implements System.
func (l *LocalDisks) Location(key string) (int, bool) {
	n, ok := l.loc[key]
	if !ok {
		return -1, false
	}
	return n, true
}

// Read implements System. Local hits cost the node disk; remote reads
// stream through the owner's disk, the owner's NIC and the reader's NIC.
func (l *LocalDisks) Read(p *sim.Proc, reader *cluster.Node, key string, bytes float64) float64 {
	start := p.Now()
	owner, ok := l.loc[key]
	if !ok {
		owner = reader.ID // unplaced data is treated as local scratch
	}
	if owner == reader.ID {
		reader.Disk.Transfer(p, bytes)
	} else {
		ownerNode := l.c.Node(owner)
		ownerNode.Disk.Transfer(p, bytes)
		ownerNode.NIC.Transfer(p, bytes)
		reader.NIC.Transfer(p, bytes)
	}
	return p.Now() - start
}

// Write implements System. Output blocks land on the writer's local disk,
// which is what makes locality scheduling matter downstream.
func (l *LocalDisks) Write(p *sim.Proc, writer *cluster.Node, key string, bytes float64) float64 {
	start := p.Now()
	writer.Disk.Transfer(p, bytes)
	l.loc[key] = writer.ID
	return p.Now() - start
}

// SharedDisk is the GPFS-style decoupled architecture.
type SharedDisk struct {
	c     *cluster.Cluster
	known map[string]bool
}

// NewShared creates a shared-disk system over the cluster.
func NewShared(c *cluster.Cluster) *SharedDisk {
	return &SharedDisk{c: c, known: make(map[string]bool)}
}

// Arch implements System.
func (s *SharedDisk) Arch() Architecture { return Shared }

// Place implements System.
func (s *SharedDisk) Place(key string, node int) { s.known[key] = true }

// Location implements System: shared storage has no node affinity, so the
// locality scheduler gets no signal — matching the paper's finding that
// scheduling-policy changes behave differently on shared disk.
func (s *SharedDisk) Location(key string) (int, bool) { return -1, false }

// Read implements System: reader NIC + shared backend, both contended.
func (s *SharedDisk) Read(p *sim.Proc, reader *cluster.Node, key string, bytes float64) float64 {
	start := p.Now()
	reader.NIC.Transfer(p, bytes)
	s.c.Shared.Transfer(p, bytes)
	return p.Now() - start
}

// Write implements System.
func (s *SharedDisk) Write(p *sim.Proc, writer *cluster.Node, key string, bytes float64) float64 {
	start := p.Now()
	writer.NIC.Transfer(p, bytes)
	s.c.Shared.Transfer(p, bytes)
	s.known[key] = true
	return p.Now() - start
}

// New constructs the architecture selected by arch.
func New(arch Architecture, c *cluster.Cluster) (System, error) {
	switch arch {
	case Local:
		return NewLocal(c), nil
	case Shared:
		return NewShared(c), nil
	default:
		return nil, fmt.Errorf("storage: unknown architecture %d", arch)
	}
}
