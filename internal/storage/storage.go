// Package storage implements the two storage architectures the paper
// compares (§3.4, Figure 10): node-local disks and a shared file system
// (GPFS). Both expose block reads and writes as simulated I/O over the
// cluster's contended links, plus the block-location metadata the
// data-locality scheduler consults.
//
// Blocks are identified by their interned datum ID (see dag.Interner), so
// location metadata lives in flat slices indexed by ID — the per-access
// lookup the scheduler and the task lifecycle perform is a bounds check
// and a load, not a string hash.
//
// With local disks, a block read from the node that holds it costs only
// that node's disk; a remote read streams disk → network (owner's NIC and
// reader's NIC both traversed). With the shared architecture, every access
// crosses the reader's NIC and the cluster-wide GPFS backend pipe, adding
// the network latency and resource contention the paper attributes to
// shared disks.
package storage

import (
	"fmt"

	"wfsim/internal/cluster"
	"wfsim/internal/sim"
)

// Architecture enumerates the paper's storage factor (Table 1, factor g).
type Architecture int

const (
	// Shared is the decoupled processing/storage architecture (GPFS) —
	// the paper's default.
	Shared Architecture = iota
	// Local uses node-local disks.
	Local
)

func (a Architecture) String() string {
	if a == Local {
		return "local disk"
	}
	return "shared disk"
}

// System is a simulated storage architecture.
type System interface {
	// Arch identifies the architecture.
	Arch() Architecture
	// Place records the initial location of a block (Local) or its
	// presence on the backend (Shared). Node is ignored for Shared.
	Place(id int32, node int)
	// Location returns the node holding the block and true, or -1 and
	// false when the block has no node affinity (shared storage or
	// unknown block). The data-locality scheduler uses this.
	Location(id int32) (int, bool)
	// Read streams the block's bytes to the reader node, blocking p in
	// virtual time, and returns the I/O duration. A block the system has
	// no record of is an explicit miss: Read returns (0, false) without
	// simulating any I/O. In a fault-free run a miss is a placement bug
	// (the runtime asserts on it); under fault injection it means the
	// block died with a node's local disk and must be recovered.
	Read(p *sim.Proc, reader *cluster.Node, id int32, bytes float64) (float64, bool)
	// Write streams bytes from the writer node to storage, records the
	// new block location, and returns the I/O duration.
	Write(p *sim.Proc, writer *cluster.Node, id int32, bytes float64) float64
	// Invalidate discards every block whose only copy lives on the given
	// node (a crash takes the node's local disk with it) and returns the
	// number of blocks lost. Shared storage survives node loss untouched
	// and always returns 0.
	Invalidate(node int) int
	// Drop forgets one block (an aborted attempt's write on a crashed
	// node). A no-op for shared storage, where writes are durable.
	Drop(id int32)
}

// LocalDisks is the node-local architecture.
type LocalDisks struct {
	c   *cluster.Cluster
	loc []int32 // datum ID -> holding node, -1 unknown
}

// NewLocal creates a local-disk system over the cluster, pre-sized for
// numData distinct datum IDs (more are accommodated on demand).
func NewLocal(c *cluster.Cluster, numData int) *LocalDisks {
	l := &LocalDisks{c: c, loc: make([]int32, numData)}
	for i := range l.loc {
		l.loc[i] = -1
	}
	return l
}

// grow extends the location table to cover id.
func (l *LocalDisks) grow(id int32) {
	for int(id) >= len(l.loc) {
		l.loc = append(l.loc, -1)
	}
}

// Arch implements System.
func (l *LocalDisks) Arch() Architecture { return Local }

// Place implements System.
func (l *LocalDisks) Place(id int32, node int) {
	l.grow(id)
	l.loc[id] = int32(node)
}

// Location implements System.
func (l *LocalDisks) Location(id int32) (int, bool) {
	if int(id) >= len(l.loc) || l.loc[id] < 0 {
		return -1, false
	}
	return int(l.loc[id]), true
}

// Read implements System. Local hits cost the node disk; remote reads
// stream through the owner's disk, the owner's NIC and the reader's NIC.
// An unplaced block is a miss, not a free local hit — silently treating it
// as local scratch masked placement bugs and made lost blocks
// unobservable.
func (l *LocalDisks) Read(p *sim.Proc, reader *cluster.Node, id int32, bytes float64) (float64, bool) {
	owner, ok := l.Location(id)
	if !ok {
		return 0, false
	}
	start := p.Now()
	if owner == reader.ID {
		reader.Disk.Transfer(p, bytes)
	} else {
		ownerNode := l.c.Node(owner)
		ownerNode.Disk.Transfer(p, bytes)
		ownerNode.NIC.Transfer(p, bytes)
		reader.NIC.Transfer(p, bytes)
	}
	return p.Now() - start, true
}

// Invalidate implements System: a crashed node's disk contents are gone.
func (l *LocalDisks) Invalidate(node int) int {
	lost := 0
	for i, n := range l.loc {
		if n == int32(node) {
			l.loc[i] = -1
			lost++
		}
	}
	return lost
}

// Drop implements System.
func (l *LocalDisks) Drop(id int32) {
	if int(id) < len(l.loc) {
		l.loc[id] = -1
	}
}

// Write implements System. Output blocks land on the writer's local disk,
// which is what makes locality scheduling matter downstream.
func (l *LocalDisks) Write(p *sim.Proc, writer *cluster.Node, id int32, bytes float64) float64 {
	start := p.Now()
	writer.Disk.Transfer(p, bytes)
	l.grow(id)
	l.loc[id] = int32(writer.ID)
	return p.Now() - start
}

// SharedDisk is the GPFS-style decoupled architecture.
type SharedDisk struct {
	c     *cluster.Cluster
	known []bool // datum ID -> present on the backend
}

// NewShared creates a shared-disk system over the cluster, pre-sized for
// numData distinct datum IDs.
func NewShared(c *cluster.Cluster, numData int) *SharedDisk {
	return &SharedDisk{c: c, known: make([]bool, numData)}
}

// grow extends the presence table to cover id.
func (s *SharedDisk) grow(id int32) {
	for int(id) >= len(s.known) {
		s.known = append(s.known, false)
	}
}

// Arch implements System.
func (s *SharedDisk) Arch() Architecture { return Shared }

// Place implements System.
func (s *SharedDisk) Place(id int32, node int) {
	s.grow(id)
	s.known[id] = true
}

// Location implements System: shared storage has no node affinity, so the
// locality scheduler gets no signal — matching the paper's finding that
// scheduling-policy changes behave differently on shared disk.
func (s *SharedDisk) Location(id int32) (int, bool) { return -1, false }

// Read implements System: reader NIC + shared backend, both contended.
// A block never written to the backend is a miss.
func (s *SharedDisk) Read(p *sim.Proc, reader *cluster.Node, id int32, bytes float64) (float64, bool) {
	if int(id) >= len(s.known) || !s.known[id] {
		return 0, false
	}
	start := p.Now()
	reader.NIC.Transfer(p, bytes)
	s.c.Shared.Transfer(p, bytes)
	return p.Now() - start, true
}

// Invalidate implements System: the decoupled backend survives node loss.
func (s *SharedDisk) Invalidate(node int) int { return 0 }

// Drop implements System: shared writes are durable once issued.
func (s *SharedDisk) Drop(id int32) {}

// Write implements System.
func (s *SharedDisk) Write(p *sim.Proc, writer *cluster.Node, id int32, bytes float64) float64 {
	start := p.Now()
	writer.NIC.Transfer(p, bytes)
	s.c.Shared.Transfer(p, bytes)
	s.grow(id)
	s.known[id] = true
	return p.Now() - start
}

// New constructs the architecture selected by arch, pre-sized for numData
// distinct datum IDs.
func New(arch Architecture, c *cluster.Cluster, numData int) (System, error) {
	switch arch {
	case Local:
		return NewLocal(c, numData), nil
	case Shared:
		return NewShared(c, numData), nil
	default:
		return nil, fmt.Errorf("storage: unknown architecture %d", arch)
	}
}
