package storage

import (
	"testing"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/sim"
)

const blk int32 = 3

func buildCluster(t *testing.T) (*sim.Engine, *cluster.Cluster) {
	t.Helper()
	eng := sim.New()
	c, err := cluster.Build(eng, cluster.Spec{Name: "t", Nodes: 4, CoresPerNode: 2, GPUsPerNode: 1},
		costmodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestLocalReadLocalVsRemote(t *testing.T) {
	eng, c := buildCluster(t)
	sys := NewLocal(c, 4)
	sys.Place(blk, 0)
	var localT, remoteT float64
	eng.Go("local", func(p *sim.Proc) {
		localT, _ = sys.Read(p, c.Node(0), blk, 100e6)
	})
	eng.Go("remote", func(p *sim.Proc) {
		p.Wait(10) // avoid contention with the local read
		remoteT, _ = sys.Read(p, c.Node(1), blk, 100e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if localT <= 0 || remoteT <= 0 {
		t.Fatal("reads did not take time")
	}
	if remoteT <= localT {
		t.Fatalf("remote read (%v) should be slower than local (%v)", remoteT, localT)
	}
}

func TestLocalWriteRelocates(t *testing.T) {
	eng, c := buildCluster(t)
	sys := NewLocal(c, 4)
	sys.Place(blk, 0)
	eng.Go("w", func(p *sim.Proc) {
		sys.Write(p, c.Node(3), blk, 1e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	n, ok := sys.Location(blk)
	if !ok || n != 3 {
		t.Fatalf("location = %d,%v; want 3,true", n, ok)
	}
}

func TestLocalUnknownKeyIsMiss(t *testing.T) {
	// Regression: an unplaced block used to be silently served as a free
	// "local scratch" hit, masking placement bugs and making lost blocks
	// unobservable. It must be an explicit miss with zero simulated I/O.
	eng, c := buildCluster(t)
	sys := NewLocal(c, 4)
	if _, ok := sys.Location(int32(9)); ok {
		t.Fatal("unknown key located")
	}
	var d float64
	ok := true
	eng.Go("r", func(p *sim.Proc) {
		d, ok = sys.Read(p, c.Node(2), int32(9), 1e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unknown block read reported a hit")
	}
	if d != 0 {
		t.Fatalf("miss cost %v seconds of I/O, want 0", d)
	}
}

func TestSharedUnknownKeyIsMiss(t *testing.T) {
	eng, c := buildCluster(t)
	sys := NewShared(c, 4)
	var d float64
	ok := true
	eng.Go("r", func(p *sim.Proc) {
		d, ok = sys.Read(p, c.Node(0), int32(9), 1e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || d != 0 {
		t.Fatalf("unknown shared block read = (%v, %v), want (0, false)", d, ok)
	}
}

func TestLocalInvalidateAndDrop(t *testing.T) {
	_, c := buildCluster(t)
	sys := NewLocal(c, 8)
	sys.Place(int32(0), 1)
	sys.Place(int32(1), 1)
	sys.Place(int32(2), 2)
	if lost := sys.Invalidate(1); lost != 2 {
		t.Fatalf("Invalidate(1) lost %d blocks, want 2", lost)
	}
	if _, ok := sys.Location(int32(0)); ok {
		t.Fatal("invalidated block still located")
	}
	if n, ok := sys.Location(int32(2)); !ok || n != 2 {
		t.Fatal("unrelated block lost by Invalidate")
	}
	sys.Drop(int32(2))
	if _, ok := sys.Location(int32(2)); ok {
		t.Fatal("dropped block still located")
	}
}

func TestSharedSurvivesInvalidate(t *testing.T) {
	eng, c := buildCluster(t)
	sys := NewShared(c, 4)
	sys.Place(blk, 0)
	if lost := sys.Invalidate(0); lost != 0 {
		t.Fatalf("shared Invalidate lost %d blocks, want 0", lost)
	}
	sys.Drop(blk) // durable: must be a no-op
	ok := false
	eng.Go("r", func(p *sim.Proc) {
		_, ok = sys.Read(p, c.Node(1), blk, 1e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("shared block lost across node invalidation")
	}
}

func TestSharedNoAffinity(t *testing.T) {
	eng, c := buildCluster(t)
	sys := NewShared(c, 4)
	sys.Place(blk, 2)
	if _, ok := sys.Location(blk); ok {
		t.Fatal("shared storage must report no node affinity")
	}
	var d float64
	eng.Go("r", func(p *sim.Proc) {
		d, _ = sys.Read(p, c.Node(1), blk, 50e6)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("read took no time")
	}
	if c.Shared.BytesMoved() != 50e6 {
		t.Fatalf("shared backend moved %v bytes", c.Shared.BytesMoved())
	}
}

func TestSharedContention(t *testing.T) {
	// Two simultaneous shared reads of equal size must finish together at
	// ~2x the solo duration (backend fair sharing).
	eng, c := buildCluster(t)
	sys := NewShared(c, 4)
	sys.Place(int32(0), 0)
	sys.Place(int32(1), 0)
	solo := func() float64 {
		e2, c2 := buildCluster(t)
		s2 := NewShared(c2, 4)
		s2.Place(int32(0), 0)
		var d float64
		e2.Go("r", func(p *sim.Proc) { d, _ = s2.Read(p, c2.Node(0), int32(0), 500e6) })
		if err := e2.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}()
	var d1, d2 float64
	eng.Go("a", func(p *sim.Proc) { d1, _ = sys.Read(p, c.Node(0), int32(0), 500e6) })
	eng.Go("b", func(p *sim.Proc) { d2, _ = sys.Read(p, c.Node(1), int32(1), 500e6) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 < solo*1.5 || d2 < solo*1.5 {
		t.Fatalf("concurrent reads %v/%v should be ≈2x solo %v", d1, d2, solo)
	}
}

func TestSharedSlowerThanLocalHit(t *testing.T) {
	// Same volume: a local-disk hit should beat the shared path for these
	// parameters (Observation O5/O6 prerequisite: local < shared).
	engL, cL := buildCluster(t)
	local := NewLocal(cL, 4)
	local.Place(blk, 0)
	var tLocal float64
	engL.Go("r", func(p *sim.Proc) { tLocal, _ = local.Read(p, cL.Node(0), blk, 200e6) })
	if err := engL.Run(); err != nil {
		t.Fatal(err)
	}
	engS, cS := buildCluster(t)
	shared := NewShared(cS, 4)
	shared.Place(blk, 0)
	var tShared float64
	engS.Go("r", func(p *sim.Proc) { tShared, _ = shared.Read(p, cS.Node(0), blk, 200e6) })
	if err := engS.Run(); err != nil {
		t.Fatal(err)
	}
	// A single uncontended GPFS stream may beat one local disk; the paper's
	// "local faster" claim concerns aggregate bandwidth under load. Check
	// the aggregate: 8 concurrent readers.
	_ = tLocal
	_ = tShared
	engL2, cL2 := buildCluster(t)
	local2 := NewLocal(cL2, 4)
	var endL float64
	for i := 0; i < 4; i++ {
		i := i
		local2.Place(key(i), i)
		engL2.Go("r", func(p *sim.Proc) {
			local2.Read(p, cL2.Node(i), key(i), 500e6)
			if p.Now() > endL {
				endL = p.Now()
			}
		})
	}
	if err := engL2.Run(); err != nil {
		t.Fatal(err)
	}
	engS2, cS2 := buildCluster(t)
	shared2 := NewShared(cS2, 4)
	var endS float64
	for i := 0; i < 4; i++ {
		i := i
		shared2.Place(key(i), 0)
		engS2.Go("r", func(p *sim.Proc) {
			shared2.Read(p, cS2.Node(i), key(i), 500e6)
			if p.Now() > endS {
				endS = p.Now()
			}
		})
	}
	if err := engS2.Run(); err != nil {
		t.Fatal(err)
	}
	if endS <= endL {
		t.Fatalf("aggregate shared (%v) should be slower than aggregate local (%v)", endS, endL)
	}
}

func key(i int) int32 { return int32(i) }

func TestNewFactory(t *testing.T) {
	_, c := buildCluster(t)
	for _, arch := range []Architecture{Local, Shared} {
		s, err := New(arch, c, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.Arch() != arch {
			t.Fatalf("arch = %v, want %v", s.Arch(), arch)
		}
	}
	if _, err := New(Architecture(99), c, 4); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if Local.String() != "local disk" || Shared.String() != "shared disk" {
		t.Fatal("stringers broken")
	}
}
