package dag

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestRAWDependency(t *testing.T) {
	g := New()
	w := g.Add("writer", nil, Param{Data: "x", Dir: Out})
	r := g.Add("reader", nil, Param{Data: "x", Dir: In})
	if len(r.Deps()) != 1 || r.Deps()[0] != w.ID {
		t.Fatalf("reader deps = %v, want [%d]", r.Deps(), w.ID)
	}
	if r.Level != 1 || w.Level != 0 {
		t.Fatalf("levels = %d, %d; want 1, 0", r.Level, w.Level)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWAWDependency(t *testing.T) {
	g := New()
	w1 := g.Add("w1", nil, Param{Data: "x", Dir: Out})
	w2 := g.Add("w2", nil, Param{Data: "x", Dir: Out})
	if len(w2.Deps()) != 1 || w2.Deps()[0] != w1.ID {
		t.Fatalf("w2 deps = %v, want [%d]", w2.Deps(), w1.ID)
	}
	r := g.Add("r", nil, Param{Data: "x", Dir: In})
	if len(r.Deps()) != 1 || r.Deps()[0] != w2.ID {
		t.Fatalf("reader depends on %v, want last writer %d", r.Deps(), w2.ID)
	}
}

func TestIndependentReadersParallel(t *testing.T) {
	g := New()
	g.Add("w", nil, Param{Data: "x", Dir: Out})
	for i := 0; i < 4; i++ {
		g.Add("r", nil, Param{Data: "x", Dir: In})
	}
	if got := g.MaxWidth(); got != 4 {
		t.Fatalf("width = %d, want 4 (readers are independent)", got)
	}
	if got := g.MaxHeight(); got != 2 {
		t.Fatalf("height = %d, want 2", got)
	}
}

func TestInOutChain(t *testing.T) {
	// INOUT accumulation serializes: a chain, not a fan-out.
	g := New()
	g.Add("init", nil, Param{Data: "acc", Dir: Out})
	for i := 0; i < 5; i++ {
		g.Add("acc", nil, Param{Data: "acc", Dir: InOut})
	}
	if got := g.MaxHeight(); got != 6 {
		t.Fatalf("height = %d, want 6 (serialized chain)", got)
	}
	if got := g.MaxWidth(); got != 1 {
		t.Fatalf("width = %d, want 1", got)
	}
}

func TestNoWARDependency(t *testing.T) {
	// Versioning semantics: a write after a read does NOT depend on the
	// reader (the reader keeps the old version).
	g := New()
	g.Add("w1", nil, Param{Data: "x", Dir: Out})
	g.Add("r", nil, Param{Data: "x", Dir: In})
	w2 := g.Add("w2", nil, Param{Data: "x", Dir: Out})
	for _, d := range w2.Deps() {
		if g.Task(d).Name == "r" {
			t.Fatal("WAR edge created; versioning should avoid it")
		}
	}
	if g.Version("x") != 2 {
		t.Fatalf("version = %d, want 2", g.Version("x"))
	}
}

func TestDedupEdges(t *testing.T) {
	g := New()
	w := g.Add("w", nil, Param{Data: "a", Dir: Out}, Param{Data: "b", Dir: Out})
	r := g.Add("r", nil, Param{Data: "a", Dir: In}, Param{Data: "b", Dir: In})
	if len(r.Deps()) != 1 {
		t.Fatalf("deps = %v, want single deduplicated edge", r.Deps())
	}
	if len(w.Succs()) != 1 {
		t.Fatalf("succs = %v, want one", w.Succs())
	}
}

func TestLevelsPartitionTasks(t *testing.T) {
	g := New()
	g.Add("a", nil, Param{Data: "x", Dir: Out})
	g.Add("b", nil, Param{Data: "x", Dir: In}, Param{Data: "y", Dir: Out})
	g.Add("c", nil, Param{Data: "x", Dir: In})
	g.Add("d", nil, Param{Data: "y", Dir: In})
	total := 0
	for _, lvl := range g.Levels() {
		total += len(lvl)
	}
	if total != g.Len() {
		t.Fatalf("levels cover %d tasks, want %d", total, g.Len())
	}
	if g.Roots()[0] != 0 || len(g.Roots()) != 1 {
		t.Fatalf("roots = %v, want [0]", g.Roots())
	}
}

func TestCountByName(t *testing.T) {
	g := New()
	g.Add("mm", nil, Param{Data: "a", Dir: Out})
	g.Add("mm", nil, Param{Data: "b", Dir: Out})
	g.Add("add", nil, Param{Data: "a", Dir: In}, Param{Data: "b", Dir: In}, Param{Data: "c", Dir: Out})
	counts := g.CountByName()
	if counts["mm"] != 2 || counts["add"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestDOT(t *testing.T) {
	g := New()
	g.Add("mm", nil, Param{Data: "a", Dir: Out})
	g.Add("add", nil, Param{Data: "a", Dir: In})
	var b strings.Builder
	if err := g.DOT(&b, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "t0 -> t1", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	g := New()
	g.Add("mm", nil, Param{Data: "a", Dir: Out})
	g.Add("mm", nil, Param{Data: "b", Dir: Out})
	g.Add("add", nil, Param{Data: "a", Dir: In}, Param{Data: "b", Dir: In})
	s := g.Summary()
	if !strings.Contains(s, "L0: 2×mm") || !strings.Contains(s, "L1: 1×add") {
		t.Fatalf("summary = %q", s)
	}
}

// TestRandomDAGInvariants is a property test: graphs built from random
// parameter patterns are acyclic, level-consistent, and width/height bounds
// hold.
func TestRandomDAGInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewPCG(seed, 3))
		g := New()
		data := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i < n; i++ {
			nparams := rng.IntN(3) + 1
			params := make([]Param, nparams)
			for j := range params {
				params[j] = Param{
					Data: data[rng.IntN(len(data))],
					Dir:  Direction(rng.IntN(3)),
				}
			}
			g.Add("t", nil, params...)
		}
		if g.Validate() != nil {
			return false
		}
		if g.MaxWidth() > g.Len() || g.MaxHeight() > g.Len() {
			return false
		}
		if g.MaxWidth() < 1 || g.MaxHeight() < 1 {
			return false
		}
		// Every non-root task's level exceeds all of its deps' levels.
		for _, task := range g.Tasks() {
			for _, d := range task.Deps() {
				if g.Task(d).Level >= task.Level {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionStrings(t *testing.T) {
	if In.String() != "IN" || Out.String() != "OUT" || InOut.String() != "INOUT" {
		t.Fatal("direction stringers broken")
	}
	p := Param{Data: "x", Dir: InOut}
	if !p.Reads() || !p.Writes() {
		t.Fatal("INOUT must read and write")
	}
	if (Param{Dir: In}).Writes() || (Param{Dir: Out}).Reads() {
		t.Fatal("In/Out direction predicates broken")
	}
}
