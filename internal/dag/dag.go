// Package dag builds and analyzes the execution DAG of a task-based
// workflow (§3.1 of the paper). Tasks are added in program order with
// typed data parameters; edges are inferred automatically from data
// dependencies, exactly like PyCOMPSs: a task reading a datum depends on
// that datum's last writer (read-after-write), and a task writing a datum
// depends on the previous writer (write-after-write). Write-after-read
// hazards do not create edges because, as in COMPSs, each write conceptually
// creates a new version of the datum (the d3v1, d5v2 … labels of the
// paper's Figure 6); earlier readers keep the old version.
//
// The DAG's shape carries the paper's key structural features: its maximum
// width is the degree of task-level parallelism and its height the degree
// of task dependency (both appear in the Figure 11 correlation analysis).
//
// Datum names are application-chosen strings (e.g. "A[0,1]") at the API
// surface, but the graph interns every name into a dense int32 datum ID on
// first touch. All internal bookkeeping — last-writer tracking, version
// counts — and every layer below (workflow sizes, storage locations,
// scheduler locality scoring) is indexed by datum ID, so the steady-state
// task lifecycle never hashes a string.
package dag

import (
	"fmt"
	"io"
	"strings"
)

// Direction declares how a task uses a data parameter, mirroring
// PyCOMPSs' IN/OUT/INOUT parameter annotations.
type Direction int

const (
	// In marks data the task only reads.
	In Direction = iota
	// Out marks data the task creates or fully overwrites.
	Out
	// InOut marks data the task reads and updates in place.
	InOut
)

func (d Direction) String() string {
	switch d {
	case In:
		return "IN"
	case Out:
		return "OUT"
	case InOut:
		return "INOUT"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Param is one data parameter of a task: a datum name plus an access
// direction. Datum names are application-chosen (e.g. "A[0,1]").
type Param struct {
	Data string
	Dir  Direction
}

// Reads reports whether the parameter reads its datum.
func (p Param) Reads() bool { return p.Dir == In || p.Dir == InOut }

// Writes reports whether the parameter writes its datum.
func (p Param) Writes() bool { return p.Dir == Out || p.Dir == InOut }

// Interner maps datum names to dense int32 IDs and back. IDs are assigned
// in first-touch order starting at 0, so they index plain slices in every
// layer that tracks per-datum state.
type Interner struct {
	ids   map[string]int32
	names []string
}

// NewInterner returns an empty interner, pre-sized for workflow-scale
// datum counts so steady map growth does not dominate DAG construction.
func NewInterner() *Interner {
	return &Interner{
		ids:   make(map[string]int32, 1024),
		names: make([]string, 0, 1024),
	}
}

// Intern returns the ID of name, assigning the next dense ID on first use.
func (in *Interner) Intern(name string) int32 {
	if id, ok := in.ids[name]; ok {
		return id
	}
	id := int32(len(in.names))
	in.names = append(in.names, name)
	in.ids[name] = id
	return id
}

// Lookup returns the ID of name if it has been interned.
func (in *Interner) Lookup(name string) (int32, bool) {
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the name interned under id.
func (in *Interner) Name(id int32) string { return in.names[id] }

// Len returns the number of interned names (== 1 + the largest ID).
func (in *Interner) Len() int { return len(in.names) }

// Task is a node of the DAG.
type Task struct {
	// ID is the task's generation order (0-based) — the key the FIFO
	// scheduling policy sorts by.
	ID int
	// Name is the task type (e.g. "matmul_func"); per-type aggregation of
	// metrics (§4.2) groups on it.
	Name string
	// Params are the data parameters that induced the task's edges.
	// Graph.Add copies them, so the caller's slice is not retained.
	Params []Param
	// Payload carries runtime-specific data (cost profile, kernel
	// function); the dag package never inspects it.
	Payload any
	// Level is the task's depth: 0 for source tasks, otherwise
	// 1 + max(level of predecessors). Populated by Graph.Add.
	Level int

	dataIDs []int32 // interned datum ID of each Param, same indexing
	deps    []int   // predecessor task IDs, ascending, deduplicated
	succs   []int   // successor task IDs in insertion order (built lazily)
	g       *Graph
}

// Deps returns the task's predecessor IDs (do not modify).
func (t *Task) Deps() []int { return t.deps }

// Succs returns the task's successor IDs (do not modify).
func (t *Task) Succs() []int {
	if t.g != nil {
		t.g.ensureSuccs()
	}
	return t.succs
}

// DataIDs returns the interned datum ID of each parameter, parallel to
// Params (do not modify).
func (t *Task) DataIDs() []int32 { return t.dataIDs }

// Graph is an execution DAG under construction. The zero value is not
// usable; construct with New.
//
// Tasks, their parameter lists and their dependency lists are carved out
// of slab arenas owned by the graph, so building an n-task DAG costs O(log
// n) slab allocations instead of O(n) small ones — the difference between
// a 100k-task build thrashing the allocator and not.
type Graph struct {
	tasks []*Task
	data  *Interner

	lastWriter []int32 // datum ID -> task ID of last writer, -1 if none
	versions   []int32 // datum ID -> version count (for labels)

	taskArena  []Task  // current task slab; never moved once handed out
	paramArena []Param // current Param slab
	idArena    []int32 // current datum-ID slab
	depArena   []int   // current dependency slab

	succsBuilt bool // successor lists are up to date
	succArena  []int
	succCounts []int // reusable per-task counter/cursor scratch
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{data: NewInterner()}
}

// Hint pre-sizes the graph for a build of about tasks tasks, data
// distinct datums and params total task parameters, collapsing the
// geometric slab growth (and its copying) into one exact allocation per
// arena. A builder that knows its counts — every generator-style workload
// does — calls this once before the first Add; estimates only need to be
// close, construction still grows past them correctly.
func (g *Graph) Hint(tasks, data, params int) {
	if tasks > cap(g.tasks) {
		t := make([]*Task, len(g.tasks), tasks)
		copy(t, g.tasks)
		g.tasks = t
	}
	if free := cap(g.taskArena) - len(g.taskArena); tasks-len(g.tasks) > free {
		g.taskArena = make([]Task, 0, tasks-len(g.tasks))
	}
	if cap(g.paramArena)-len(g.paramArena) < params {
		g.paramArena = make([]Param, 0, params)
	}
	if cap(g.idArena)-len(g.idArena) < params {
		g.idArena = make([]int32, 0, params)
	}
	if cap(g.depArena)-len(g.depArena) < params {
		g.depArena = make([]int, 0, params)
	}
	if data > cap(g.lastWriter) {
		lw := make([]int32, len(g.lastWriter), data)
		copy(lw, g.lastWriter)
		g.lastWriter = lw
		v := make([]int32, len(g.versions), data)
		copy(v, g.versions)
		g.versions = v
	}
	g.data.Hint(data)
}

// Hint pre-sizes the interner for about data distinct names.
func (in *Interner) Hint(data int) {
	if data > cap(in.names) {
		n := make([]string, len(in.names), data)
		copy(n, in.names)
		in.names = n
	}
	if len(in.ids) == 0 && data > 1024 {
		in.ids = make(map[string]int32, data)
	}
}

// Data returns the graph's datum interner, shared with every layer that
// keys per-datum state by ID.
func (g *Graph) Data() *Interner { return g.data }

// NumData returns the number of distinct datum names seen so far.
func (g *Graph) NumData() int { return g.data.Len() }

// DatumID interns name and grows the per-datum bookkeeping to cover it.
// All datum IDs handed to the rest of the stack come from here (or from
// the workflow layer calling Intern plus its own growth).
func (g *Graph) DatumID(name string) int32 {
	id := g.data.Intern(name)
	for int(id) >= len(g.lastWriter) {
		g.lastWriter = append(g.lastWriter, -1)
		g.versions = append(g.versions, 0)
	}
	return id
}

// allocTask returns a stable pointer to a zeroed Task from the slab arena.
func (g *Graph) allocTask() *Task {
	if len(g.taskArena) == cap(g.taskArena) {
		c := 2 * cap(g.taskArena)
		if c < 64 {
			c = 64
		} else if c > 8192 {
			c = 8192
		}
		g.taskArena = make([]Task, 0, c)
	}
	g.taskArena = g.taskArena[:len(g.taskArena)+1]
	return &g.taskArena[len(g.taskArena)-1]
}

// allocParams returns a full-capacity slice of n Params from the slab
// arena. When the current slab is exhausted a fresh one is allocated; old
// slabs stay alive through the task slices pointing into them.
func (g *Graph) allocParams(n int) []Param {
	if cap(g.paramArena)-len(g.paramArena) < n {
		c := 2 * cap(g.paramArena)
		if c < 256 {
			c = 256
		}
		if c < n {
			c = n
		}
		g.paramArena = make([]Param, 0, c)
	}
	s := g.paramArena[len(g.paramArena) : len(g.paramArena)+n : len(g.paramArena)+n]
	g.paramArena = g.paramArena[:len(g.paramArena)+n]
	return s
}

// allocIDs is allocParams for datum-ID slices.
func (g *Graph) allocIDs(n int) []int32 {
	if cap(g.idArena)-len(g.idArena) < n {
		c := 2 * cap(g.idArena)
		if c < 256 {
			c = 256
		}
		if c < n {
			c = n
		}
		g.idArena = make([]int32, 0, c)
	}
	s := g.idArena[len(g.idArena) : len(g.idArena)+n : len(g.idArena)+n]
	g.idArena = g.idArena[:len(g.idArena)+n]
	return s
}

// reserveDeps returns an empty slice with capacity n at the dep slab's
// tail. The caller fills it (staying within cap) and commits the bytes
// actually used by advancing g.depArena itself.
func (g *Graph) reserveDeps(n int) []int {
	if cap(g.depArena)-len(g.depArena) < n {
		c := 2 * cap(g.depArena)
		if c < 256 {
			c = 256
		}
		if c < n {
			c = n
		}
		g.depArena = make([]int, 0, c)
	}
	return g.depArena[len(g.depArena) : len(g.depArena) : len(g.depArena)+n]
}

// Add appends a task in generation order, inferring its dependencies from
// the data parameters, and returns it. Edges always point from lower to
// higher IDs, so the graph is acyclic by construction and insertion order
// is a valid topological order. The params slice is copied.
func (g *Graph) Add(name string, payload any, params ...Param) *Task {
	t := g.allocTask()
	t.ID = len(g.tasks)
	t.Name = name
	t.Payload = payload
	t.g = g
	t.Params = g.allocParams(len(params))
	copy(t.Params, params)
	t.dataIDs = g.allocIDs(len(params))
	for i := range params {
		t.dataIDs[i] = g.DatumID(params[i].Data)
	}

	// Dependencies: RAW and WAW both edge on the last writer. Dedup via
	// insertion into the small sorted deps slice — a task has a handful of
	// params, so this beats a per-task map by a wide margin.
	deps := g.reserveDeps(len(params))
	for i, p := range params {
		if !p.Reads() && !p.Writes() {
			continue
		}
		w := g.lastWriter[t.dataIDs[i]]
		if w < 0 {
			continue
		}
		d := int(w)
		pos := len(deps)
		for pos > 0 && deps[pos-1] > d {
			pos--
		}
		if pos > 0 && deps[pos-1] == d {
			continue
		}
		deps = deps[:len(deps)+1]
		copy(deps[pos+1:], deps[pos:])
		deps[pos] = d
	}
	t.deps = deps[:len(deps):len(deps)]
	g.depArena = g.depArena[:len(g.depArena)+len(deps)] // commit the used prefix

	level := 0
	for _, d := range t.deps {
		if lvl := g.tasks[d].Level + 1; lvl > level {
			level = lvl
		}
	}
	t.Level = level
	for i, p := range params {
		if p.Writes() {
			id := t.dataIDs[i]
			g.lastWriter[id] = int32(t.ID)
			g.versions[id]++
		}
	}
	g.tasks = append(g.tasks, t)
	g.succsBuilt = false
	return t
}

// ensureSuccs (re)builds every task's successor list in one pass over the
// edge set: exact-size slices carved from a single arena, appended in task
// ID order — which is exactly the insertion order incremental building
// would produce.
func (g *Graph) ensureSuccs() {
	if g.succsBuilt {
		return
	}
	if cap(g.succCounts) < len(g.tasks) || cap(g.succArena) < g.edgeCount() {
		g.growSuccScratch()
	}
	counts := g.succCounts[:len(g.tasks)]
	clear(counts)
	total := 0
	for _, t := range g.tasks {
		for _, d := range t.deps {
			counts[d]++
			total++
		}
	}
	arena := g.succArena[:total]
	off := 0
	for _, t := range g.tasks {
		n := counts[t.ID]
		t.succs = arena[off : off+n : off+n]
		counts[t.ID] = 0 // becomes the fill cursor below
		off += n
	}
	// Indexed writes in task-ID order — exactly the insertion order
	// incremental building would produce, with no append in sight.
	for _, t := range g.tasks {
		for _, d := range t.deps {
			dt := g.tasks[d]
			dt.succs[counts[d]] = t.ID
			counts[d]++
		}
	}
	g.succsBuilt = true
}

func (g *Graph) edgeCount() int {
	total := 0
	for _, t := range g.tasks {
		total += len(t.deps)
	}
	return total
}

// growSuccScratch (re)sizes the successor-construction scratch to the
// current graph. Cold by construction: it runs when the graph has grown
// past the scratch high-water mark — once per graph shape, after which
// every rebuild reuses the buffers allocation-free.
func (g *Graph) growSuccScratch() {
	g.succCounts = make([]int, len(g.tasks)) //wfsimlint:allow hotalloc
	g.succArena = make([]int, g.edgeCount()) //wfsimlint:allow hotalloc
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// Tasks returns all tasks in generation order (do not modify the slice).
func (g *Graph) Tasks() []*Task { return g.tasks }

// Version returns how many times the datum has been written — the vN
// suffix in the paper's Figure 6 node labels.
func (g *Graph) Version(data string) int {
	id, ok := g.data.Lookup(data)
	if !ok || int(id) >= len(g.versions) {
		return 0
	}
	return int(g.versions[id])
}

// Levels groups task IDs by DAG level, index 0 being the sources.
func (g *Graph) Levels() [][]int {
	if len(g.tasks) == 0 {
		return nil
	}
	maxLevel := 0
	for _, t := range g.tasks {
		if t.Level > maxLevel {
			maxLevel = t.Level
		}
	}
	levels := make([][]int, maxLevel+1)
	for _, t := range g.tasks {
		levels[t.Level] = append(levels[t.Level], t.ID)
	}
	return levels
}

// MaxWidth returns the largest number of tasks on one level: the paper's
// "DAG maximum width" (degree of task parallelism).
func (g *Graph) MaxWidth() int {
	w := 0
	for _, lvl := range g.Levels() {
		if len(lvl) > w {
			w = len(lvl)
		}
	}
	return w
}

// MaxHeight returns the number of levels: the paper's "DAG maximum height"
// (degree of task dependency).
func (g *Graph) MaxHeight() int { return len(g.Levels()) }

// Roots returns the IDs of tasks with no dependencies.
func (g *Graph) Roots() []int {
	var out []int
	for _, t := range g.tasks {
		if len(t.deps) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// Validate checks structural invariants: edges point forward (acyclicity),
// dep/succ symmetry, and level consistency.
func (g *Graph) Validate() error {
	g.ensureSuccs()
	// Successor lists are built in ascending task-ID order, and tasks
	// iterate their deps in ascending ID order too, so one cursor per
	// producer checks every edge's successor record in O(E) total — a
	// per-edge scan of the producer's successor list would be quadratic
	// for the high-fanout producers broadcast data induces.
	cur := make([]int, len(g.tasks))
	for _, t := range g.tasks {
		want := 0
		for _, d := range t.deps {
			if d >= t.ID {
				return fmt.Errorf("dag: task %d depends on later task %d", t.ID, d)
			}
			succs := g.tasks[d].succs
			for cur[d] < len(succs) && succs[cur[d]] < t.ID {
				cur[d]++
			}
			if cur[d] >= len(succs) || succs[cur[d]] != t.ID {
				return fmt.Errorf("dag: edge %d->%d missing successor record", d, t.ID)
			}
			cur[d]++
			if g.tasks[d].Level+1 > want {
				want = g.tasks[d].Level + 1
			}
		}
		if t.Level != want {
			return fmt.Errorf("dag: task %d level %d, want %d", t.ID, t.Level, want)
		}
	}
	return nil
}

// CountByName returns the number of tasks per task type.
func (g *Graph) CountByName() map[string]int {
	out := make(map[string]int)
	for _, t := range g.tasks {
		out[t.Name]++
	}
	return out
}

// DOT writes the graph in Graphviz format, one node per task colored by
// task type — the rendering used to reproduce the paper's Figure 6.
func (g *Graph) DOT(w io.Writer, title string) error {
	var colors = []string{"lightblue", "white", "lightyellow", "lightpink", "lightgreen", "lightgray"}
	colorOf := map[string]string{}
	names := make([]string, 0)
	for _, t := range g.tasks {
		if _, ok := colorOf[t.Name]; !ok {
			colorOf[t.Name] = colors[len(names)%len(colors)]
			names = append(names, t.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [style=filled, shape=circle];\n", title)
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  t%d [label=%q, fillcolor=%q];\n", t.ID, fmt.Sprintf("%d", t.ID), colorOf[t.Name])
	}
	for _, t := range g.tasks {
		for _, d := range t.deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d, t.ID)
		}
	}
	fmt.Fprintf(&b, "  label=%q;\n}\n", title)
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders a short per-level textual description of the DAG shape,
// e.g. "L0: 16×matmul_func | L1: 8×add_func | ...".
func (g *Graph) Summary() string {
	var parts []string
	for i, lvl := range g.Levels() {
		byName := map[string]int{}
		order := []string{}
		for _, id := range lvl {
			n := g.tasks[id].Name
			if byName[n] == 0 {
				order = append(order, n)
			}
			byName[n]++
		}
		var seg []string
		for _, n := range order {
			seg = append(seg, fmt.Sprintf("%d×%s", byName[n], n))
		}
		parts = append(parts, fmt.Sprintf("L%d: %s", i, strings.Join(seg, "+")))
	}
	return strings.Join(parts, " | ")
}

// CriticalPath returns the longest weighted path through the DAG and its
// length, where weight(t) is the per-task cost supplied by the caller.
// The path is returned as task IDs in execution order. With unit weights
// this is the height; with service-time weights it is the span term of
// Graham's bound — no schedule on any number of processors beats it.
func (g *Graph) CriticalPath(weight func(*Task) float64) ([]int, float64) {
	if len(g.tasks) == 0 {
		return nil, 0
	}
	dist := make([]float64, len(g.tasks))
	prev := make([]int, len(g.tasks))
	best, bestEnd := -1.0, -1
	for _, t := range g.tasks { // insertion order is topological
		w := weight(t)
		if w < 0 {
			w = 0
		}
		d := w
		prev[t.ID] = -1
		for _, dep := range t.deps {
			if dist[dep]+w > d {
				d = dist[dep] + w
				prev[t.ID] = dep
			}
		}
		dist[t.ID] = d
		if d > best {
			best, bestEnd = d, t.ID
		}
	}
	var path []int
	for id := bestEnd; id >= 0; id = prev[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best
}

// TotalWeight sums weight(t) over all tasks: the work term of Graham's
// bound.
func (g *Graph) TotalWeight(weight func(*Task) float64) float64 {
	var sum float64
	for _, t := range g.tasks {
		if w := weight(t); w > 0 {
			sum += w
		}
	}
	return sum
}
