// Package dag builds and analyzes the execution DAG of a task-based
// workflow (§3.1 of the paper). Tasks are added in program order with
// typed data parameters; edges are inferred automatically from data
// dependencies, exactly like PyCOMPSs: a task reading a datum depends on
// that datum's last writer (read-after-write), and a task writing a datum
// depends on the previous writer (write-after-write). Write-after-read
// hazards do not create edges because, as in COMPSs, each write conceptually
// creates a new version of the datum (the d3v1, d5v2 … labels of the
// paper's Figure 6); earlier readers keep the old version.
//
// The DAG's shape carries the paper's key structural features: its maximum
// width is the degree of task-level parallelism and its height the degree
// of task dependency (both appear in the Figure 11 correlation analysis).
package dag

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Direction declares how a task uses a data parameter, mirroring
// PyCOMPSs' IN/OUT/INOUT parameter annotations.
type Direction int

const (
	// In marks data the task only reads.
	In Direction = iota
	// Out marks data the task creates or fully overwrites.
	Out
	// InOut marks data the task reads and updates in place.
	InOut
)

func (d Direction) String() string {
	switch d {
	case In:
		return "IN"
	case Out:
		return "OUT"
	case InOut:
		return "INOUT"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Param is one data parameter of a task: a datum name plus an access
// direction. Datum names are application-chosen (e.g. "A[0,1]").
type Param struct {
	Data string
	Dir  Direction
}

// Reads reports whether the parameter reads its datum.
func (p Param) Reads() bool { return p.Dir == In || p.Dir == InOut }

// Writes reports whether the parameter writes its datum.
func (p Param) Writes() bool { return p.Dir == Out || p.Dir == InOut }

// Task is a node of the DAG.
type Task struct {
	// ID is the task's generation order (0-based) — the key the FIFO
	// scheduling policy sorts by.
	ID int
	// Name is the task type (e.g. "matmul_func"); per-type aggregation of
	// metrics (§4.2) groups on it.
	Name string
	// Params are the data parameters that induced the task's edges.
	Params []Param
	// Payload carries runtime-specific data (cost profile, kernel
	// function); the dag package never inspects it.
	Payload any
	// Level is the task's depth: 0 for source tasks, otherwise
	// 1 + max(level of predecessors). Populated by Graph.Add.
	Level int

	deps  []int // predecessor task IDs, ascending, deduplicated
	succs []int // successor task IDs in insertion order
}

// Deps returns the task's predecessor IDs (do not modify).
func (t *Task) Deps() []int { return t.deps }

// Succs returns the task's successor IDs (do not modify).
func (t *Task) Succs() []int { return t.succs }

// Graph is an execution DAG under construction. The zero value is not
// usable; construct with New.
type Graph struct {
	tasks      []*Task
	lastWriter map[string]int // datum -> task ID of last writer
	versions   map[string]int // datum -> version count (for labels)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{lastWriter: make(map[string]int), versions: make(map[string]int)}
}

// Add appends a task in generation order, inferring its dependencies from
// the data parameters, and returns it. Edges always point from lower to
// higher IDs, so the graph is acyclic by construction and insertion order
// is a valid topological order.
func (g *Graph) Add(name string, payload any, params ...Param) *Task {
	t := &Task{ID: len(g.tasks), Name: name, Params: params, Payload: payload}
	seen := make(map[int]bool)
	for _, p := range params {
		if p.Reads() || p.Writes() { // RAW and WAW both edge on the last writer
			if w, ok := g.lastWriter[p.Data]; ok && !seen[w] {
				seen[w] = true
				t.deps = append(t.deps, w)
			}
		}
	}
	sort.Ints(t.deps)
	level := 0
	for _, d := range t.deps {
		dep := g.tasks[d]
		dep.succs = append(dep.succs, t.ID)
		if dep.Level+1 > level {
			level = dep.Level + 1
		}
	}
	t.Level = level
	for _, p := range params {
		if p.Writes() {
			g.lastWriter[p.Data] = t.ID
			g.versions[p.Data]++
		}
	}
	g.tasks = append(g.tasks, t)
	return t
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// Tasks returns all tasks in generation order (do not modify the slice).
func (g *Graph) Tasks() []*Task { return g.tasks }

// Version returns how many times the datum has been written — the vN
// suffix in the paper's Figure 6 node labels.
func (g *Graph) Version(data string) int { return g.versions[data] }

// Levels groups task IDs by DAG level, index 0 being the sources.
func (g *Graph) Levels() [][]int {
	if len(g.tasks) == 0 {
		return nil
	}
	maxLevel := 0
	for _, t := range g.tasks {
		if t.Level > maxLevel {
			maxLevel = t.Level
		}
	}
	levels := make([][]int, maxLevel+1)
	for _, t := range g.tasks {
		levels[t.Level] = append(levels[t.Level], t.ID)
	}
	return levels
}

// MaxWidth returns the largest number of tasks on one level: the paper's
// "DAG maximum width" (degree of task parallelism).
func (g *Graph) MaxWidth() int {
	w := 0
	for _, lvl := range g.Levels() {
		if len(lvl) > w {
			w = len(lvl)
		}
	}
	return w
}

// MaxHeight returns the number of levels: the paper's "DAG maximum height"
// (degree of task dependency).
func (g *Graph) MaxHeight() int { return len(g.Levels()) }

// Roots returns the IDs of tasks with no dependencies.
func (g *Graph) Roots() []int {
	var out []int
	for _, t := range g.tasks {
		if len(t.deps) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// Validate checks structural invariants: edges point forward (acyclicity),
// dep/succ symmetry, and level consistency.
func (g *Graph) Validate() error {
	for _, t := range g.tasks {
		want := 0
		for _, d := range t.deps {
			if d >= t.ID {
				return fmt.Errorf("dag: task %d depends on later task %d", t.ID, d)
			}
			found := false
			for _, s := range g.tasks[d].succs {
				if s == t.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dag: edge %d->%d missing successor record", d, t.ID)
			}
			if g.tasks[d].Level+1 > want {
				want = g.tasks[d].Level + 1
			}
		}
		if t.Level != want {
			return fmt.Errorf("dag: task %d level %d, want %d", t.ID, t.Level, want)
		}
	}
	return nil
}

// CountByName returns the number of tasks per task type.
func (g *Graph) CountByName() map[string]int {
	out := make(map[string]int)
	for _, t := range g.tasks {
		out[t.Name]++
	}
	return out
}

// DOT writes the graph in Graphviz format, one node per task colored by
// task type — the rendering used to reproduce the paper's Figure 6.
func (g *Graph) DOT(w io.Writer, title string) error {
	var colors = []string{"lightblue", "white", "lightyellow", "lightpink", "lightgreen", "lightgray"}
	colorOf := map[string]string{}
	names := make([]string, 0)
	for _, t := range g.tasks {
		if _, ok := colorOf[t.Name]; !ok {
			colorOf[t.Name] = colors[len(names)%len(colors)]
			names = append(names, t.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [style=filled, shape=circle];\n", title)
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  t%d [label=%q, fillcolor=%q];\n", t.ID, fmt.Sprintf("%d", t.ID), colorOf[t.Name])
	}
	for _, t := range g.tasks {
		for _, d := range t.deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d, t.ID)
		}
	}
	fmt.Fprintf(&b, "  label=%q;\n}\n", title)
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders a short per-level textual description of the DAG shape,
// e.g. "L0: 16×matmul_func | L1: 8×add_func | ...".
func (g *Graph) Summary() string {
	var parts []string
	for i, lvl := range g.Levels() {
		byName := map[string]int{}
		order := []string{}
		for _, id := range lvl {
			n := g.tasks[id].Name
			if byName[n] == 0 {
				order = append(order, n)
			}
			byName[n]++
		}
		var seg []string
		for _, n := range order {
			seg = append(seg, fmt.Sprintf("%d×%s", byName[n], n))
		}
		parts = append(parts, fmt.Sprintf("L%d: %s", i, strings.Join(seg, "+")))
	}
	return strings.Join(parts, " | ")
}

// CriticalPath returns the longest weighted path through the DAG and its
// length, where weight(t) is the per-task cost supplied by the caller.
// The path is returned as task IDs in execution order. With unit weights
// this is the height; with service-time weights it is the span term of
// Graham's bound — no schedule on any number of processors beats it.
func (g *Graph) CriticalPath(weight func(*Task) float64) ([]int, float64) {
	if len(g.tasks) == 0 {
		return nil, 0
	}
	dist := make([]float64, len(g.tasks))
	prev := make([]int, len(g.tasks))
	best, bestEnd := -1.0, -1
	for _, t := range g.tasks { // insertion order is topological
		w := weight(t)
		if w < 0 {
			w = 0
		}
		d := w
		prev[t.ID] = -1
		for _, dep := range t.deps {
			if dist[dep]+w > d {
				d = dist[dep] + w
				prev[t.ID] = dep
			}
		}
		dist[t.ID] = d
		if d > best {
			best, bestEnd = d, t.ID
		}
	}
	var path []int
	for id := bestEnd; id >= 0; id = prev[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best
}

// TotalWeight sums weight(t) over all tasks: the work term of Graham's
// bound.
func (g *Graph) TotalWeight(weight func(*Task) float64) float64 {
	var sum float64
	for _, t := range g.tasks {
		if w := weight(t); w > 0 {
			sum += w
		}
	}
	return sum
}
