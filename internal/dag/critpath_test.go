package dag

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func unit(*Task) float64 { return 1 }

func TestCriticalPathUnitWeightsEqualsHeight(t *testing.T) {
	g := New()
	g.Add("a", nil, Param{Data: "x", Dir: Out})
	g.Add("b", nil, Param{Data: "x", Dir: In}, Param{Data: "y", Dir: Out})
	g.Add("c", nil, Param{Data: "y", Dir: In})
	g.Add("d", nil, Param{Data: "x", Dir: In}) // parallel branch
	path, length := g.CriticalPath(unit)
	if length != 3 {
		t.Fatalf("length = %v, want 3", length)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Fatalf("path = %v, want [0 1 2]", path)
	}
}

func TestCriticalPathWeighted(t *testing.T) {
	// A heavy single task beats a longer light chain.
	g := New()
	g.Add("chain1", nil, Param{Data: "a", Dir: Out})
	g.Add("chain2", nil, Param{Data: "a", Dir: In}, Param{Data: "b", Dir: Out})
	g.Add("chain3", nil, Param{Data: "b", Dir: In})
	heavy := g.Add("heavy", nil, Param{Data: "c", Dir: Out})
	weights := map[int]float64{0: 1, 1: 1, 2: 1, heavy.ID: 10}
	path, length := g.CriticalPath(func(t *Task) float64 { return weights[t.ID] })
	if length != 10 {
		t.Fatalf("length = %v, want 10", length)
	}
	if len(path) != 1 || path[0] != heavy.ID {
		t.Fatalf("path = %v, want [heavy]", path)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	path, length := New().CriticalPath(unit)
	if path != nil || length != 0 {
		t.Fatal("empty graph should have zero critical path")
	}
}

func TestTotalWeight(t *testing.T) {
	g := New()
	g.Add("a", nil, Param{Data: "x", Dir: Out})
	g.Add("b", nil, Param{Data: "x", Dir: In})
	if got := g.TotalWeight(func(*Task) float64 { return 2.5 }); got != 5 {
		t.Fatalf("total = %v, want 5", got)
	}
	// Negative weights are clamped to zero.
	if got := g.TotalWeight(func(*Task) float64 { return -1 }); got != 0 {
		t.Fatalf("negative-weight total = %v, want 0", got)
	}
}

// Property: for random DAGs and random positive weights, the critical path
// (a) is a real dependency chain, (b) has length ≥ the max single weight,
// (c) has length ≤ total weight, and (d) with unit weights equals height.
func TestCriticalPathProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		rng := rand.New(rand.NewPCG(seed, 21))
		g := New()
		data := []string{"a", "b", "c", "d"}
		weights := make(map[int]float64)
		var maxW float64
		for i := 0; i < n; i++ {
			params := []Param{
				{Data: data[rng.IntN(len(data))], Dir: Direction(rng.IntN(3))},
			}
			task := g.Add("t", nil, params...)
			w := rng.Float64()*5 + 0.1
			weights[task.ID] = w
			if w > maxW {
				maxW = w
			}
		}
		wfn := func(t *Task) float64 { return weights[t.ID] }
		path, length := g.CriticalPath(wfn)
		if length < maxW-1e-9 || length > g.TotalWeight(wfn)+1e-9 {
			return false
		}
		// Path is a chain: each element depends on the previous.
		var sum float64
		for i, id := range path {
			sum += weights[id]
			if i == 0 {
				continue
			}
			found := false
			for _, d := range g.Task(id).Deps() {
				if d == path[i-1] {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		if sum < length-1e-9 || sum > length+1e-9 {
			return false
		}
		_, unitLen := g.CriticalPath(unit)
		return int(unitLen) == g.MaxHeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
