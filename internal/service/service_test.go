package service

import (
	"fmt"
	"math"
	"testing"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
)

var testProf = costmodel.Profile{
	Kernel:      costmodel.KernelGeneric,
	SerialOps:   1e6,
	ParallelOps: 1e9,
	Threads:     1e6,
	BytesIn:     1e6,
	BytesOut:    1e6,
	// Device/host footprints well within limits.
	DeviceMemBytes: 1e6,
	HostMemBytes:   1e6,
}

// buildFan returns a Build function producing an n-task fan workflow.
func buildFan(n int) func(int) (*runtime.Workflow, error) {
	return func(int) (*runtime.Workflow, error) {
		wf := runtime.NewWorkflow("fan")
		wf.SetSize("in", 1e6)
		for i := 0; i < n; i++ {
			out := fmt.Sprintf("out%d", i)
			wf.SetSize(out, 1e6)
			wf.AddTask("work", runtime.TaskSpec{Profile: testProf},
				dag.Param{Data: "in", Dir: dag.In},
				dag.Param{Data: out, Dir: dag.Out})
		}
		return wf, nil
	}
}

func testConfig(seed uint64) Config {
	return Config{
		Sim: runtime.SimConfig{
			Cluster: cluster.Spec{Name: "mini", Nodes: 2, CoresPerNode: 4, GPUsPerNode: 2},
			Device:  costmodel.GPU, Policy: sched.Locality,
		},
		Seed: seed,
		Tenants: []Tenant{
			{Name: "analytics", Weight: 2, Rate: 1.0, Count: 4, Build: buildFan(12)},
			{Name: "batch", Weight: 1, Quota: 6, Rate: 0.5, Count: 3, Build: buildFan(8)},
		},
	}
}

// TestServiceDeterministic: two identical seeded runs produce identical
// service statistics, bit for bit — the arrival streams, the dispatch
// gate and the percentile estimators are all pure functions of the seed.
func TestServiceDeterministic(t *testing.T) {
	a, err := Run(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon != b.Horizon || a.CoreUtilization != b.CoreUtilization {
		t.Fatalf("horizons diverged: %v/%v vs %v/%v",
			a.Horizon, a.CoreUtilization, b.Horizon, b.CoreUtilization)
	}
	for i := range a.Tenants {
		if a.Tenants[i] != b.Tenants[i] {
			t.Errorf("tenant %d reports diverged:\n%+v\n%+v", i, a.Tenants[i], b.Tenants[i])
		}
	}
	// A different seed shifts the Poisson arrivals and thus the horizon.
	c, err := Run(testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if c.Horizon == a.Horizon {
		t.Error("different seeds produced identical horizons — arrivals are not seeded")
	}
}

// TestServiceReportShape checks the per-tenant accounting: every submitted
// workflow completes, task counts line up, and slowdown is ≥ 1 within
// estimator noise (contention can only stretch a workflow).
func TestServiceReportShape(t *testing.T) {
	res, err := Run(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := []int{4 * 12, 3 * 8}
	for i, ten := range res.Tenants {
		cfgT := testConfig(5).Tenants[i]
		if ten.Workflows != cfgT.Count {
			t.Errorf("%s: %d workflows completed, want %d", ten.Name, ten.Workflows, cfgT.Count)
		}
		if ten.Tasks != wantTasks[i] {
			t.Errorf("%s: %d tasks observed, want %d", ten.Name, ten.Tasks, wantTasks[i])
		}
		if ten.Baseline <= 0 {
			t.Errorf("%s: baseline %v not measured", ten.Name, ten.Baseline)
		}
		if ten.Slowdown.Min < 0.999 {
			t.Errorf("%s: slowdown min %v < 1 — response beat the isolated baseline", ten.Name, ten.Slowdown.Min)
		}
		if ten.Response.N != cfgT.Count || math.IsNaN(ten.Response.P99) {
			t.Errorf("%s: response summary %+v malformed", ten.Name, ten.Response)
		}
		if ten.QueueWait.N != wantTasks[i] {
			t.Errorf("%s: queue-wait N %d, want one sample per task (%d)",
				ten.Name, ten.QueueWait.N, wantTasks[i])
		}
	}
	if res.Horizon <= 0 {
		t.Errorf("horizon %v", res.Horizon)
	}
}

// TestServiceTraceArrivals: an explicit interarrival trace overrides the
// Poisson process and pins exact arrival instants (observable through the
// response time of a lone workflow on an empty cluster).
func TestServiceTraceArrivals(t *testing.T) {
	cfg := testConfig(1)
	cfg.Tenants = cfg.Tenants[:1]
	cfg.Tenants[0].Interarrival = []float64{5, 100, 100, 100} // far apart: zero contention
	cfg.Tenants[0].Rate = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ten := res.Tenants[0]
	// Every workflow runs alone, so each response equals the baseline and
	// slowdown collapses to 1.
	if ten.Slowdown.Max > 1.0001 || ten.Slowdown.Min < 0.9999 {
		t.Errorf("spread-out arrivals still contend: slowdown [%v, %v]", ten.Slowdown.Min, ten.Slowdown.Max)
	}
	wantHorizon := 5 + 100 + 100 + 100 + ten.Baseline
	if math.Abs(res.Horizon-wantHorizon) > 1e-9 {
		t.Errorf("horizon %v, want last arrival + baseline = %v", res.Horizon, wantHorizon)
	}
}

// TestServiceExplicitBaseline: a caller-supplied baseline skips the
// isolated measurement run and feeds the slowdown denominator directly.
func TestServiceExplicitBaseline(t *testing.T) {
	cfg := testConfig(1)
	cfg.Tenants = cfg.Tenants[:1]
	cfg.Tenants[0].Interarrival = []float64{0, 50, 50, 50}
	cfg.Tenants[0].Baseline = 2.0 // deliberately wrong: slowdown scales by it
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ten := res.Tenants[0]
	if ten.Baseline != 2.0 {
		t.Fatalf("baseline %v, want the supplied 2.0", ten.Baseline)
	}
	if math.Abs(ten.Slowdown.Mean-ten.Response.Mean/2.0) > 1e-12 {
		t.Errorf("slowdown mean %v != response mean %v / 2", ten.Slowdown.Mean, ten.Response.Mean)
	}
}

func TestServiceConfigErrors(t *testing.T) {
	bad := []Config{
		{},
		{Tenants: []Tenant{{Count: 0, Rate: 1, Build: buildFan(1)}}},
		{Tenants: []Tenant{{Count: 1, Rate: 1}}},                                           // no Build
		{Tenants: []Tenant{{Count: 1, Build: buildFan(1)}}},                                // no rate or trace
		{Tenants: []Tenant{{Count: 3, Interarrival: []float64{1, 2}, Build: buildFan(1)}}}, // short trace
		{Tenants: []Tenant{{Count: 1, Interarrival: []float64{-1}, Build: buildFan(1)}}},   // negative gap
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
