// Package service runs the cluster as an online multi-tenant service: a
// stream of workflows arrives over virtual time on one shared simulated
// cluster, and the outcome is service-level statistics — queue wait,
// response time and slowdown percentiles per tenant — rather than a
// single workflow's makespan.
//
// Arrivals are generated per tenant from either a seeded Poisson process
// or a caller-supplied interarrival trace. Each tenant's Poisson draws
// come from its own PCG stream keyed on (Seed, tenant index), so adding a
// tenant or changing one tenant's rate never shifts another tenant's
// schedule — the same replayable-stream discipline the fault injector
// uses. Slowdown is measured against the workflow's isolated makespan
// (its makespan on an otherwise empty, fault-free cluster), the standard
// service-quality metric of the scheduling literature: 1.0 means
// contention cost nothing.
package service

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"wfsim/internal/faults"
	"wfsim/internal/metrics"
	"wfsim/internal/runtime"
)

// arrivalStream is the PCG stream-ID base for tenant arrival processes;
// tenant i draws from stream arrivalStream+i. Distinct from the fault
// injector's stream IDs so faults and arrivals never share a sequence.
const arrivalStream = 0xa221

// Tenant describes one workload stream sharing the cluster.
type Tenant struct {
	// Name labels the tenant in reports; defaults to "tenant<i>".
	Name string
	// Weight is the tenant's fair-share weight at the dispatch gate
	// (non-positive = 1).
	Weight float64
	// Quota caps the tenant's concurrently admitted tasks (0 = unlimited).
	Quota int
	// Rate is the Poisson arrival rate in workflows per virtual second.
	// Ignored when Interarrival is set.
	Rate float64
	// Interarrival optionally replaces the Poisson process with an
	// explicit trace: Interarrival[k] is the gap before the k-th arrival
	// (the first gap is measured from instant 0). Must cover Count gaps.
	Interarrival []float64
	// Count is the number of workflows the tenant submits.
	Count int
	// Build constructs the k-th workflow (k in [0, Count)). It is called
	// once per arrival before the simulation starts, so it may return the
	// same workflow object every time — sessions never mutate it.
	Build func(k int) (*runtime.Workflow, error)
	// Baseline is the workflow's isolated makespan used as the slowdown
	// denominator. Zero means "measure it": the service runs Build(0)
	// alone on an empty fault-free cluster first.
	Baseline float64
}

// Config parameterizes one service run.
type Config struct {
	// Sim is the shared cluster's configuration (topology, storage,
	// policy, device, faults).
	Sim runtime.SimConfig
	// Seed feeds the per-tenant arrival streams.
	Seed uint64
	// Tenants are the workload streams.
	Tenants []Tenant
}

// TenantReport is one tenant's service-level outcome.
type TenantReport struct {
	Name      string
	Workflows int
	Tasks     int
	// QueueWait is the per-task readiness-to-placement distribution.
	QueueWait metrics.Summary
	// Response is the per-workflow submit-to-finish distribution.
	Response metrics.Summary
	// Slowdown is Response normalized by the isolated baseline.
	Slowdown metrics.Summary
	// Baseline is the slowdown denominator used.
	Baseline float64
}

// Result is the outcome of a service run.
type Result struct {
	// Horizon is the completion instant of the last workflow.
	Horizon float64
	// CoreUtilization and GPUUtilization are mean busy fractions over the
	// horizon.
	CoreUtilization float64
	GPUUtilization  float64
	// Tenants holds one report per configured tenant, in tenant order.
	Tenants []TenantReport
	// Faults reports failure-injection activity across the whole stream.
	Faults runtime.FaultStats
}

func (c Config) validate() error {
	if len(c.Tenants) == 0 {
		return errors.New("service: no tenants configured")
	}
	for i, t := range c.Tenants {
		if t.Count <= 0 {
			return fmt.Errorf("service: tenant %d has Count %d, must be positive", i, t.Count)
		}
		if t.Build == nil {
			return fmt.Errorf("service: tenant %d has no Build function", i)
		}
		if len(t.Interarrival) > 0 {
			if len(t.Interarrival) < t.Count {
				return fmt.Errorf("service: tenant %d trace has %d gaps for %d arrivals",
					i, len(t.Interarrival), t.Count)
			}
			for k, g := range t.Interarrival[:t.Count] {
				if g < 0 {
					return fmt.Errorf("service: tenant %d interarrival[%d] = %v, must be non-negative", i, k, g)
				}
			}
		} else if t.Rate <= 0 {
			return fmt.Errorf("service: tenant %d needs a positive Rate or an Interarrival trace", i)
		}
	}
	return nil
}

// arrivalTimes precomputes tenant i's absolute arrival instants: the
// cumulative trace when given, otherwise seeded exponential gaps. Drawing
// everything up front keeps arrival randomness strictly ordered by
// (tenant, k), independent of simulation interleaving.
func arrivalTimes(t Tenant, seed uint64, tenantIdx int) []float64 {
	out := make([]float64, t.Count)
	at := 0.0
	if len(t.Interarrival) > 0 {
		for k := 0; k < t.Count; k++ {
			at += t.Interarrival[k]
			out[k] = at
		}
		return out
	}
	rng := rand.New(rand.NewPCG(seed, arrivalStream+uint64(tenantIdx)))
	for k := 0; k < t.Count; k++ {
		at += rng.ExpFloat64() / t.Rate
		out[k] = at
	}
	return out
}

// measureBaseline runs one workflow alone on an empty fault-free cluster
// and returns its makespan — the slowdown denominator.
func measureBaseline(t Tenant, sim runtime.SimConfig) (float64, error) {
	wf, err := t.Build(0)
	if err != nil {
		return 0, fmt.Errorf("service: baseline build: %w", err)
	}
	iso := sim
	iso.Faults = faults.Config{}
	res, err := runtime.RunSim(wf, iso)
	if err != nil {
		return 0, fmt.Errorf("service: baseline run: %w", err)
	}
	return res.Makespan, nil
}

// Run executes the configured arrival streams on one shared cluster and
// returns per-tenant service statistics. Everything is deterministic in
// (Config, Seed): two identical calls produce identical results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	specs := make([]runtime.TenantSpec, len(cfg.Tenants))
	baselines := make([]float64, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		specs[i] = runtime.TenantSpec{Weight: t.Weight, Quota: t.Quota}
		baselines[i] = t.Baseline
		if baselines[i] == 0 {
			b, err := measureBaseline(t, cfg.Sim)
			if err != nil {
				return nil, err
			}
			baselines[i] = b
		}
	}

	cs, err := runtime.NewClusterSim(cfg.Sim, specs)
	if err != nil {
		return nil, err
	}
	svc := metrics.NewServiceStats(len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		tenant, base := i, baselines[i]
		for k, at := range arrivalTimes(t, cfg.Seed, i) {
			wf, err := t.Build(k)
			if err != nil {
				return nil, fmt.Errorf("service: tenant %d workflow %d: %w", i, k, err)
			}
			err = cs.Submit(tenant, wf, at, func(r runtime.WorkflowResult) {
				resp := r.Finished - r.Submitted
				svc.ObserveWorkflow(tenant, resp, resp/base, r.Collector)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	if err := cs.Run(); err != nil {
		return nil, err
	}

	res := &Result{
		Horizon: cs.Now(),
		Tenants: make([]TenantReport, len(cfg.Tenants)),
		Faults:  cs.FaultStats(),
	}
	res.CoreUtilization, res.GPUUtilization = cs.Utilization()
	for i, t := range cfg.Tenants {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("tenant%d", i)
		}
		ten := svc.Tenant(i)
		res.Tenants[i] = TenantReport{
			Name:      name,
			Workflows: ten.Workflows,
			Tasks:     ten.Tasks,
			QueueWait: ten.QueueWaitSummary(),
			Response:  ten.ResponseSummary(),
			Slowdown:  ten.SlowdownSummary(),
			Baseline:  baselines[i],
		}
	}
	return res, nil
}
