package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/faults"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
	"wfsim/internal/tables"
)

// Ext4Row is one (failure level × storage × policy) measurement.
type Ext4Row struct {
	Level    string
	Storage  storage.Architecture
	Policy   sched.Policy
	Makespan float64
	Stats    runtime.FaultStats
}

// Ext4Result extends the paper's storage-architecture comparison (§5.3,
// Observations O5/O6) to the failure regime its testbed never exercised:
// deterministic node crashes, transient task failures and stragglers under
// both storage architectures. The asymmetry is structural: shared (GPFS)
// storage survives node loss, so a crash costs only re-queued attempts;
// local disks die with their node, so the same crash additionally costs
// lineage recomputation of every lost block — the paper's local-disk
// bandwidth advantage buys fragility that failure pressure converts back
// into time.
type Ext4Result struct {
	Rows []Ext4Row
}

// ext4Level is a named failure intensity, calibrated against the ~55-80 s
// fault-free makespans of the 128-block K-means: "moderate" injects about
// one crash per run, "heavy" several — while staying subcritical (lineage
// recovery inflates the makespan, which buys more crashes; much past this
// intensity the feedback diverges on local disks).
type ext4Level struct {
	name string
	cfg  faults.Config
}

func ext4Levels() []ext4Level {
	return []ext4Level{
		{name: "none"},
		{name: "moderate", cfg: faults.Config{
			Seed: 42, NodeMTBF: 600, NodeMTTR: 24,
			TaskFailProb: 0.02, MaxAttempts: 8, StragglerMTBF: 1200,
		}},
		{name: "heavy", cfg: faults.Config{
			Seed: 42, NodeMTBF: 250, NodeMTTR: 10,
			TaskFailProb: 0.02, MaxAttempts: 8, StragglerMTBF: 500,
		}},
	}
}

// ext4Spec is one trial configuration.
type ext4Spec struct {
	level ext4Level
	arch  storage.Architecture
	pol   sched.Policy
}

func runExt4(ctx context.Context, eng *runner.Engine) (Result, error) {
	var specs []ext4Spec
	for _, lvl := range ext4Levels() {
		for _, arch := range []storage.Architecture{storage.Shared, storage.Local} {
			for _, pol := range []sched.Policy{sched.FIFO, sched.Locality} {
				specs = append(specs, ext4Spec{level: lvl, arch: arch, pol: pol})
			}
		}
	}
	rows, err := runner.Map(ctx, eng, "ext4", specs,
		// Keyed on the fault config itself, not the level name: renaming
		// "moderate" must not alias two different fault schedules.
		func(s ext4Spec) string { return resultcache.KeyOf("ext4", s.level.cfg, int(s.arch), int(s.pol)).Hex() },
		func(_ context.Context, s ext4Spec) (Ext4Row, error) {
			wf, err := kmeans.Build(kmeans.Config{
				Dataset: dataset.KMeansSmall, Grid: 128, Clusters: 10,
			})
			if err != nil {
				return Ext4Row{}, err
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{
				Device:  costmodel.GPU,
				Storage: s.arch,
				Policy:  s.pol,
				Faults:  s.level.cfg,
			})
			if err != nil {
				return Ext4Row{}, err
			}
			return Ext4Row{
				Level: s.level.name, Storage: s.arch, Policy: s.pol,
				Makespan: res.Makespan, Stats: res.Faults,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Ext4Result{Rows: rows}, nil
}

// Render implements Result.
func (r *Ext4Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension: failure injection vs storage architecture (K-means 10 GB, 128 tasks, GPU)\n")
	b.WriteString("(deterministic seeded faults: node crash/restart, transient task failures, stragglers)\n\n")
	t := tables.New("", "faults", "storage", "policy", "makespan (s)",
		"crashes", "requeues", "retries", "lost blocks", "recomputes", "restages",
		"wasted (s)", "recovery (s)")
	for _, row := range r.Rows {
		s := row.Stats
		t.AddRow(
			row.Level,
			row.Storage.String(),
			row.Policy.Describe(),
			tables.FormatFloat(row.Makespan),
			fmt.Sprint(s.Crashes),
			fmt.Sprint(s.CrashRequeues),
			fmt.Sprint(s.Retries),
			fmt.Sprint(s.BlocksLost),
			fmt.Sprint(s.LineageRecomputes),
			fmt.Sprint(s.InputRestages),
			tables.FormatFloat(s.WastedWork),
			tables.FormatFloat(s.RecoveryWork),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nShared storage survives node loss: a crash costs only re-queued attempts\n")
	b.WriteString("(wasted work), never data. Local disks die with their node, so the same\n")
	b.WriteString("crash schedule additionally forces lineage recomputation of lost blocks and\n")
	b.WriteString("re-staging of lost inputs — and data-locality placement, by concentrating\n")
	b.WriteString("a task's blocks on one node, concentrates the damage when that node dies.\n")
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "ext4",
		Title: "Extension: failure injection, retry and lineage recovery vs storage architecture",
		Run:   runExt4,
	})
}
