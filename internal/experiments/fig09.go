package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/tables"
)

// Fig9aResult reproduces Figure 9a: the effect of the algorithm-specific
// parameter (#clusters) on K-means user-code performance. Speedups grow
// with K — whose impact on the O(M·N·K²) parallel fraction is quadratic
// while the serial fraction grows only linearly — and are insensitive to
// block size; large K × large blocks exhaust GPU and eventually host
// memory.
type Fig9aResult struct {
	// Sweeps indexed by cluster count (10, 100, 1000).
	Clusters []int64
	Sweeps   []DatasetSweep
}

func runFig9a(ctx context.Context, eng *runner.Engine) (Result, error) {
	r := &Fig9aResult{Clusters: []int64{10, 100, 1000}}
	// All three cluster counts form one flat trial set, so the full
	// 3 × |grids| × {CPU, GPU} sweep parallelizes as a unit.
	var cfgs []CellConfig
	for _, k := range r.Clusters {
		cfgs = append(cfgs, sweepConfigs(KMeans, dataset.KMeansSmall, dataset.KMeansGrids, k)...)
	}
	pairs, err := RunPairs(ctx, eng, "fig9a", cfgs)
	if err != nil {
		return nil, err
	}
	perSweep := len(dataset.KMeansGrids)
	for s := range r.Clusters {
		sw := DatasetSweep{Dataset: dataset.KMeansSmall}
		for _, p := range pairs[s*perSweep : (s+1)*perSweep] {
			sw.Points = append(sw.Points, sweepPoint(p))
		}
		r.Sweeps = append(r.Sweeps, sw)
	}
	return r, nil
}

// Render implements Result.
func (r *Fig9aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9a: effect of #clusters on K-means user code (10 GB dataset)\n\n")
	t := tables.New("User-code GPU speedup over CPU",
		append([]string{"block size"}, clustersHeaders(r.Clusters)...)...)
	for i := range r.Sweeps[0].Points {
		row := []string{dataset.FormatBytes(r.Sweeps[0].Points[i].CPU.BlockBytes)}
		for s := range r.Sweeps {
			p := r.Sweeps[s].Points[i]
			if lbl := p.OOMLabel(); lbl != "" {
				row = append(row, lbl)
			} else {
				row = append(row, tables.FormatSpeedup(p.UserSpd))
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())

	for s, k := range r.Clusters {
		d := tables.New(fmt.Sprintf("\nAverage time per task (s), %d clusters", k),
			"block size", "P.Frac CPU", "S.Frac", "P.Frac GPU", "CPU-GPU Comm")
		for _, p := range r.Sweeps[s].Points {
			if p.CPU.OOM || p.GPU.OOM {
				d.AddRow(dataset.FormatBytes(p.CPU.BlockBytes), p.OOMLabel(), "", "", "")
				continue
			}
			d.AddRow(
				dataset.FormatBytes(p.CPU.BlockBytes),
				tables.FormatFloat(p.CPU.PFracMean),
				tables.FormatFloat(p.CPU.SerialMean),
				tables.FormatFloat(p.GPU.PFracMean),
				tables.FormatFloat(p.GPU.CommMean),
			)
		}
		b.WriteString(d.String())
	}
	return b.String()
}

func clustersHeaders(ks []int64) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("%d clusters", k)
	}
	return out
}

// Fig9bPoint is one skew-experiment measurement: real (not simulated)
// user-code wall-clock per task, uniform vs 50%-skewed data.
type Fig9bPoint struct {
	Algorithm Algorithm
	Grid      int64
	BlockMB   float64
	// UniformSec and SkewedSec are mean per-task wall-clock times of the
	// real kernels on materialized data.
	UniformSec, SkewedSec float64
}

// Delta returns the relative difference |skewed-uniform|/uniform.
func (p Fig9bPoint) Delta() float64 {
	if p.UniformSec == 0 {
		return math.NaN()
	}
	return math.Abs(p.SkewedSec-p.UniformSec) / p.UniformSec
}

// Fig9bResult reproduces Figure 9b: the effect of data skew. The paper
// finds task user-code times unchanged between 0% and 50% skew because the
// algorithms do not process skewed data differently. Our simulator's cost
// model is value-independent by construction (matching that finding), so
// this experiment validates it with *real* kernel executions on
// materialized data at a reduced scale: per-task times must match across
// distributions.
type Fig9bResult struct {
	Points []Fig9bPoint
}

// fig9bScale is the real-execution dataset scale (the paper used 2 GB /
// 1 GB on its cluster; the local backend runs a host-sized equivalent that
// exercises the identical kernels).
var fig9bMatmulDS = dataset.Dataset{Name: "matmul-skew-real", Rows: 1024, Cols: 1024}
var fig9bKMeansDS = dataset.Dataset{Name: "kmeans-skew-real", Rows: 300_000, Cols: 40}

// fig9bSpec names one skew-comparison trial.
type fig9bSpec struct {
	alg  Algorithm
	grid int64
}

func runFig9b(ctx context.Context, eng *runner.Engine) (Result, error) {
	specs := []fig9bSpec{
		{Matmul, 2}, {Matmul, 4},
		{KMeans, 4}, {KMeans, 8},
	}
	// Each spec is one trial (a full interleaved uniform-vs-skew
	// comparison of real kernel runs). Never memoized: these measure
	// wall-clock, not the deterministic simulator.
	points, err := runner.Map(ctx, eng, "fig9b", specs, nil,
		func(_ context.Context, s fig9bSpec) (Fig9bPoint, error) {
			if s.alg == Matmul {
				return skewPointMatmul(s.grid)
			}
			return skewPointKMeans(s.grid)
		})
	if err != nil {
		return nil, err
	}
	return &Fig9bResult{Points: points}, nil
}

// measureOnce runs the workflow's real kernels once and returns the mean
// user-code wall time per task of the headline type.
func measureOnce(build func() (*runtime.Workflow, error), headline string) (float64, error) {
	wf, err := build()
	if err != nil {
		return 0, err
	}
	res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
	if err != nil {
		return 0, err
	}
	var sum float64
	n := 0
	for _, rec := range res.Collector.Records() {
		if rec.TaskName == headline {
			sum += rec.Duration()
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("no %s tasks ran", headline)
	}
	return sum / float64(n), nil
}

// comparePair measures two workflow variants with interleaved repetitions
// (A, B, A, B, ...), taking each variant's minimum — interleaving cancels
// systematic wall-clock drift (GC pressure, page-cache warmth) that would
// bias a sequential A-then-B comparison.
func comparePair(buildA, buildB func() (*runtime.Workflow, error), headline string, reps int) (a, b float64, err error) {
	a, b = math.Inf(1), math.Inf(1)
	for i := 0; i < reps; i++ {
		va, err := measureOnce(buildA, headline)
		if err != nil {
			return 0, 0, err
		}
		vb, err := measureOnce(buildB, headline)
		if err != nil {
			return 0, 0, err
		}
		a = math.Min(a, va)
		b = math.Min(b, vb)
	}
	return a, b, nil
}

func skewPointMatmul(grid int64) (Fig9bPoint, error) {
	part, err := dataset.ByGrid(fig9bMatmulDS, grid, grid)
	if err != nil {
		return Fig9bPoint{}, err
	}
	pt := Fig9bPoint{Algorithm: Matmul, Grid: grid, BlockMB: float64(part.BlockBytes()) / (1 << 20)}
	build := func(gen *dataset.Generator) func() (*runtime.Workflow, error) {
		return func() (*runtime.Workflow, error) {
			return matmul.Build(matmul.Config{
				Dataset: fig9bMatmulDS, Grid: grid, Materialize: true, Generator: gen,
			})
		}
	}
	pt.UniformSec, pt.SkewedSec, err = comparePair(
		build(dataset.NewGenerator(42)), build(dataset.NewSkewedGenerator(42)), "matmul_func", 5)
	return pt, err
}

func skewPointKMeans(grid int64) (Fig9bPoint, error) {
	part, err := dataset.ByGrid(fig9bKMeansDS, grid, 1)
	if err != nil {
		return Fig9bPoint{}, err
	}
	pt := Fig9bPoint{Algorithm: KMeans, Grid: grid, BlockMB: float64(part.BlockBytes()) / (1 << 20)}
	build := func(gen *dataset.Generator) func() (*runtime.Workflow, error) {
		return func() (*runtime.Workflow, error) {
			return kmeans.Build(kmeans.Config{
				Dataset: fig9bKMeansDS, Grid: grid, Clusters: 10, Iterations: 2,
				Materialize: true, Generator: gen, RawData: true,
			})
		}
	}
	pt.UniformSec, pt.SkewedSec, err = comparePair(
		build(dataset.NewGenerator(42)), build(dataset.NewSkewedGenerator(42)), "partial_sum", 5)
	return pt, err
}

// Render implements Result.
func (r *Fig9bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9b: effect of data skew on task user code (real kernel execution)\n")
	b.WriteString("(0% vs 50% skew; the paper finds no effect — deltas should be noise-level)\n\n")
	t := tables.New("Mean user-code time per task (s)",
		"algorithm", "grid", "block", "0% skew", "50% skew", "delta")
	for _, p := range r.Points {
		t.AddRow(
			p.Algorithm.String(),
			fmt.Sprint(p.Grid),
			fmt.Sprintf("%.1fMB", p.BlockMB),
			tables.FormatFloat(p.UniformSec),
			tables.FormatFloat(p.SkewedSec),
			fmt.Sprintf("%.1f%%", p.Delta()*100),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nSimulated (paper-scale) runs are value-independent by construction:\n")
	b.WriteString("the cost model depends on block shapes only, matching the paper's finding.\n")
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "fig9a",
		Title: "Figure 9a: effect of #clusters (algorithm-specific parameter) in K-means",
		Run:   runFig9a,
	})
	register(Experiment{
		ID:    "fig9b",
		Title: "Figure 9b: effect of data skew in Matmul and K-means (real execution)",
		Run:   runFig9b,
	})
}
