package experiments

import (
	"testing"

	"wfsim/internal/runner"
	"wfsim/internal/sched"
)

func TestRenderExt6(t *testing.T) {
	out := renderOf(t, "ext6")
	assertContains(t, out,
		"scheduler zoo",
		"overhead scale",
		"heft",
		"b-level",
		"min-min",
		"work stealing",
		"task generation order",
		"ranking flip at scale",
	)
}

// TestExt6RankingFlip pins the study's finding on every (shape, nodes)
// group: with free dispatch the lookahead schedulers strictly beat the
// myopic ones, a flip scale exists within the sweep, and from that scale
// up to the sweep's end the ordering stays inverted — the overhead model,
// not noise, drives the crossover.
func TestExt6RankingFlip(t *testing.T) {
	r := mustRun(t, "ext6").(*Ext6Result)
	groups := r.Groups()
	if len(groups) != len(ext6Shapes)*len(ext6Nodes) {
		t.Fatalf("got %d groups, want %d", len(groups), len(ext6Shapes)*len(ext6Nodes))
	}
	for _, g := range groups {
		myopic0 := g.bestAt(0, sched.FIFO, sched.Locality)
		lookahead0 := g.bestAt(0, sched.HEFT, sched.BLevel)
		if !(lookahead0 < myopic0) {
			t.Errorf("%s/%d nodes: at scale 0 lookahead (%v) does not beat myopic (%v)",
				g.Shape, g.Nodes, lookahead0, myopic0)
		}
		flip, ok := g.FlipScale()
		if !ok {
			t.Errorf("%s/%d nodes: no ranking flip within the sweep", g.Shape, g.Nodes)
			continue
		}
		if flip == 0 {
			t.Errorf("%s/%d nodes: flip at scale 0 contradicts the lookahead win", g.Shape, g.Nodes)
		}
		inverted := false
		for _, scale := range ext6Scales {
			if scale < flip {
				continue
			}
			inverted = true
			if my, la := g.bestAt(scale, sched.FIFO, sched.Locality), g.bestAt(scale, sched.HEFT, sched.BLevel); !(my < la) {
				t.Errorf("%s/%d nodes: at scale %g past the flip, myopic (%v) does not beat lookahead (%v)",
					g.Shape, g.Nodes, scale, my, la)
			}
		}
		if !inverted {
			t.Errorf("%s/%d nodes: flip scale %g not in the sweep", g.Shape, g.Nodes, flip)
		}
	}
}

// TestExt6Deterministic reruns the whole study on fresh engines at
// different parallelism and requires byte-identical renders: results are a
// pure function of configuration, which is what makes them cacheable.
func TestExt6Deterministic(t *testing.T) {
	serial := renderWith(t, "ext6", 1)
	parallel := renderWith(t, "ext6", 8)
	if serial != parallel {
		t.Errorf("ext6 render differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

// TestExt6MemoServesRerun pins warm serving: a second run on the same
// engine is answered entirely from the memo — no new trials.
func TestExt6MemoServesRerun(t *testing.T) {
	eng := runner.New(0)
	e, err := ByID("ext6")
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Run(t.Context(), eng)
	if err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	second, err := e.Run(t.Context(), eng)
	if err != nil {
		t.Fatal(err)
	}
	warm := eng.Stats()
	if asked, served := warm.Trials-cold.Trials, warm.Memoized-cold.Memoized; asked == 0 || served != asked {
		t.Errorf("warm rerun: %d of %d trials memo-served, want all", served, asked)
	}
	if first.Render() != second.Render() {
		t.Error("warm rerun renders differently from cold run")
	}
}
