package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/sched"
	"wfsim/internal/stats"
	"wfsim/internal/storage"
	"wfsim/internal/tables"
)

// Feature names of the Figure 11 correlation matrix, in the paper's order.
const (
	FeatPTaskTime  = "Parallel task exec. time"
	FeatBlockSize  = "Block size"
	FeatGridDim    = "Grid dimension"
	FeatPFrac      = "Parallel fraction"
	FeatAlgoParam  = "Algorithm-specific param."
	FeatComplexity = "Computational complexity"
	FeatDAGWidth   = "DAG maximum width"
	FeatDAGHeight  = "DAG maximum height"
	FeatDataset    = "Dataset size"
	FeatCPU        = "CPU"
	FeatGPU        = "GPU"
	FeatShared     = "Shared disk storage"
	FeatLocal      = "Local disk storage"
	FeatFIFO       = "Task gen. order scheduling"
	FeatLocality   = "Data locality scheduling"
)

// Fig11Result reproduces Figure 11: the Spearman correlation matrix over
// every factor and parameter of Table 1, computed from a fresh sweep of
// factor combinations (the paper uses 192 samples: the main experiments
// plus smaller 128 MB / 100 MB datasets).
type Fig11Result struct {
	Samples int
	Skipped int // OOM combinations (no execution time to correlate)
	Matrix  *stats.Matrix
}

// fig11Samples enumerates the sweep: for each algorithm the main dataset
// crosses every storage × scheduling combination, while the supplementary
// datasets and cluster counts run on the default system configuration
// (shared disk, generation order), mirroring §5.4.
func fig11Samples() []CellConfig {
	var out []CellConfig
	add := func(c CellConfig) { out = append(out, c) }

	fullSystem := []StorageSchedCombo{
		{storage.Shared, sched.FIFO},
		{storage.Shared, sched.Locality},
		{storage.Local, sched.FIFO},
		{storage.Local, sched.Locality},
	}
	devices := []costmodel.DeviceKind{costmodel.CPU, costmodel.GPU}

	// Matmul: main 8 GB dataset × full system cross; 128 MB and 32 GB
	// supplements on the default system.
	for _, g := range dataset.MatmulGrids {
		for _, dev := range devices {
			for _, combo := range fullSystem {
				add(CellConfig{Algorithm: Matmul, Dataset: dataset.MatmulSmall, Grid: g,
					Device: dev, Storage: combo.Storage, Policy: combo.Policy})
			}
			for _, ds := range []dataset.Dataset{dataset.MatmulTiny, dataset.MatmulLarge} {
				add(CellConfig{Algorithm: Matmul, Dataset: ds, Grid: g, Device: dev})
			}
		}
	}
	// K-means: main 10 GB dataset × full system cross; 100 MB and 100 GB
	// supplements; 100- and 1000-cluster supplements for the
	// algorithm-specific parameter.
	for _, g := range dataset.KMeansGrids {
		for _, dev := range devices {
			for _, combo := range fullSystem {
				add(CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: g,
					Clusters: 10, Device: dev, Storage: combo.Storage, Policy: combo.Policy})
			}
			for _, ds := range []dataset.Dataset{dataset.KMeansTiny, dataset.KMeansLarge} {
				add(CellConfig{Algorithm: KMeans, Dataset: ds, Grid: g, Clusters: 10, Device: dev})
			}
			for _, k := range []int64{100, 1000} {
				add(CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: g,
					Clusters: k, Device: dev})
			}
		}
	}
	return out
}

func runFig11(ctx context.Context, eng *runner.Engine) (Result, error) {
	cells, skipped, err := CollectFig11Cells(ctx, eng)
	if err != nil {
		return nil, err
	}
	m, err := CorrelateCells(cells)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Samples: len(cells), Skipped: skipped, Matrix: m}, nil
}

// CollectFig11Cells executes the 192-sample sweep as one trial set on
// the engine, then drops OOM combinations (they have no execution time).
// The correlation matrix is order-sensitive only through the sample
// order, which the engine preserves.
func CollectFig11Cells(ctx context.Context, eng *runner.Engine) ([]Cell, int, error) {
	all, err := RunCells(ctx, eng, "fig11", fig11Samples())
	if err != nil {
		return nil, 0, fmt.Errorf("fig11: %w", err)
	}
	var cells []Cell
	skipped := 0
	for _, cell := range all {
		if cell.OOM {
			skipped++
			continue
		}
		cells = append(cells, cell)
	}
	return cells, skipped, nil
}

// CorrelateCells builds the Figure 11 feature columns from measured cells
// and computes their Spearman matrix.
func CorrelateCells(cells []Cell) (*stats.Matrix, error) {
	n := len(cells)
	col := func(f func(Cell) float64) []float64 {
		xs := make([]float64, n)
		for i, c := range cells {
			xs[i] = f(c)
		}
		return xs
	}
	catCol := func(f func(Cell) string) []string {
		xs := make([]string, n)
		for i, c := range cells {
			xs[i] = f(c)
		}
		return xs
	}

	names := []string{
		FeatPTaskTime, FeatBlockSize, FeatGridDim, FeatPFrac, FeatAlgoParam,
		FeatComplexity, FeatDAGWidth, FeatDAGHeight, FeatDataset,
	}
	cols := [][]float64{
		col(func(c Cell) float64 { return c.PTaskMean }),
		col(func(c Cell) float64 { return float64(c.BlockBytes) }),
		col(func(c Cell) float64 { return gridCells(c) }),
		col(func(c Cell) float64 { return c.PFracMean }),
		col(func(c Cell) float64 { return float64(c.Clusters) }),
		col(func(c Cell) float64 { return c.Complexity }),
		col(func(c Cell) float64 { return float64(c.DAGWidth) }),
		col(func(c Cell) float64 { return float64(c.DAGHeight) }),
		col(func(c Cell) float64 { return float64(c.Dataset.SizeBytes()) }),
	}

	// One-hot categorical factors, matching the paper's encoding.
	devNames, devCols := stats.OneHot(catCol(func(c Cell) string { return c.Device.String() }))
	names, cols = appendOneHot(names, cols, devNames, devCols, map[string]string{
		"CPU": FeatCPU, "GPU": FeatGPU,
	})
	stoNames, stoCols := stats.OneHot(catCol(func(c Cell) string { return c.Storage.String() }))
	names, cols = appendOneHot(names, cols, stoNames, stoCols, map[string]string{
		"shared disk": FeatShared, "local disk": FeatLocal,
	})
	schNames, schCols := stats.OneHot(catCol(func(c Cell) string { return c.Policy.Describe() }))
	names, cols = appendOneHot(names, cols, schNames, schCols, map[string]string{
		"task generation order": FeatFIFO, "data locality": FeatLocality,
	})

	m, err := stats.CorrelationMatrix(names, cols)
	if err != nil {
		return nil, err
	}

	// The algorithm-specific parameter (#clusters) only exists for
	// K-means; including Matmul samples (which have no such parameter)
	// would wash its correlations out. Recompute that feature's row and
	// column on the K-means subset, which is what gives the paper its
	// strong param-complexity link (0.836).
	var kmIdx []int
	for i, c := range cells {
		if c.Algorithm == KMeans {
			kmIdx = append(kmIdx, i)
		}
	}
	paramCol := -1
	for i, nm := range names {
		if nm == FeatAlgoParam {
			paramCol = i
		}
	}
	if paramCol >= 0 && len(kmIdx) > 1 {
		sub := func(col []float64) []float64 {
			xs := make([]float64, len(kmIdx))
			for j, i := range kmIdx {
				xs[j] = col[i]
			}
			return xs
		}
		pSub := sub(cols[paramCol])
		for j := range names {
			r := stats.Spearman(pSub, sub(cols[j]))
			m.R[paramCol][j] = r
			m.R[j][paramCol] = r
		}
	}
	return m, nil
}

func appendOneHot(names []string, cols [][]float64, rawNames []string, rawCols [][]float64, rename map[string]string) ([]string, [][]float64) {
	for i, rn := range rawNames {
		name := rn
		if mapped, ok := rename[rn]; ok {
			name = mapped
		}
		names = append(names, name)
		cols = append(cols, rawCols[i])
	}
	return names, cols
}

func gridCells(c Cell) float64 {
	if c.Algorithm == KMeans {
		return float64(c.Grid)
	}
	return float64(c.Grid * c.Grid)
}

// Render implements Result.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Spearman correlation matrix of key features\n")
	fmt.Fprintf(&b, "(%d samples; %d OOM combinations excluded)\n\n", r.Samples, r.Skipped)

	// Header with short indices to keep the matrix readable.
	for i, n := range r.Matrix.Names {
		fmt.Fprintf(&b, "  [%2d] %s\n", i+1, n)
	}
	b.WriteString("\n")
	t := tables.New("", append([]string{""}, indexHeaders(len(r.Matrix.Names))...)...)
	for i := range r.Matrix.Names {
		row := []string{fmt.Sprintf("[%2d]", i+1)}
		for j := range r.Matrix.Names {
			row = append(row, fmt.Sprintf("%6.3f", r.Matrix.R[i][j]))
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())

	b.WriteString("\nKey cells vs paper (§5.4):\n")
	for _, probe := range []struct {
		a, b  string
		paper string
	}{
		{FeatPTaskTime, FeatPFrac, "+0.377"},
		{FeatPTaskTime, FeatBlockSize, "+0.398"},
		{FeatPTaskTime, FeatComplexity, "+0.499"},
		{FeatPTaskTime, FeatDAGWidth, "-0.005 (weakest)"},
		{FeatPTaskTime, FeatShared, "+0.194"},
		{FeatPTaskTime, FeatLocal, "-0.194"},
		{FeatPTaskTime, FeatCPU, "+0.066 (weak)"},
		{FeatCPU, FeatGPU, "-1.000"},
		{FeatAlgoParam, FeatComplexity, "+0.836"},
		{FeatBlockSize, FeatGridDim, "-0.778"},
		{FeatGridDim, FeatDAGWidth, "+0.961"},
		{FeatGPU, FeatPFrac, "-0.460"},
	} {
		v, err := r.Matrix.At(probe.a, probe.b)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  r(%s, %s) = %+.3f   (paper: %s)\n", probe.a, probe.b, v, probe.paper)
	}
	return b.String()
}

func indexHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("[%2d]", i+1)
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: Spearman correlation matrix over all factors (192-sample sweep)",
		Run:   runFig11,
	})
}
