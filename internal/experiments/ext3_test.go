package experiments

import "testing"

func TestRenderExt3(t *testing.T) {
	out := renderOf(t, "ext3")
	assertContains(t, out,
		"resource heterogeneity",
		"node-0 speed",
		"task generation order",
		"data locality",
	)
}

func TestExt3StragglerShapes(t *testing.T) {
	r := mustRun(t, "ext3").(*Ext3Result)
	byKey := map[[2]interface{}]Ext3Row{}
	for _, row := range r.Rows {
		byKey[[2]interface{}{row.SlowFactor, row.Policy}] = row
	}
	for _, pol := range []interface{}{r.Rows[0].Policy, r.Rows[1].Policy} {
		uniform := byKey[[2]interface{}{1.0, pol}]
		half := byKey[[2]interface{}{0.5, pol}]
		quarter := byKey[[2]interface{}{0.25, pol}]
		// Makespan grows with straggler severity...
		if !(uniform.MakespanCPU < half.MakespanCPU && half.MakespanCPU < quarter.MakespanCPU) {
			t.Errorf("%v: makespan not monotone in straggler severity: %v %v %v",
				pol, uniform.MakespanCPU, half.MakespanCPU, quarter.MakespanCPU)
		}
		// ...but sub-linearly: a 4x slower node must not quadruple it
		// (load-aware placement routes around the straggler).
		if quarter.MakespanCPU > 2.5*uniform.MakespanCPU {
			t.Errorf("%v: straggler damage unbounded: %v -> %v",
				pol, uniform.MakespanCPU, quarter.MakespanCPU)
		}
		// Utilization drops: the paper's resource wastage.
		if quarter.CoreUtil >= uniform.CoreUtil {
			t.Errorf("%v: straggler should waste capacity (util %v -> %v)",
				pol, uniform.CoreUtil, quarter.CoreUtil)
		}
	}
}
