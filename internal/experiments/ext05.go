package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/service"
	"wfsim/internal/storage"
	"wfsim/internal/tables"
)

// Ext5Row is one tenant's service outcome within one
// (load × tenancy × storage × policy) trial.
type Ext5Row struct {
	Load      float64
	NumTenant int
	Storage   storage.Architecture
	Policy    sched.Policy
	Tenant    string
	Workflows int
	Horizon   float64
	CoreUtil  float64
	QueueP95  float64
	Slowdown  Ext5Slowdown
}

// Ext5Slowdown is the slowdown percentile snapshot carried per row.
type Ext5Slowdown struct {
	P50, P95, P99, Mean float64
}

// Ext5Result is the load-sweep-to-saturation study: the cluster stops
// being a benchmark rig and becomes a service. A Poisson stream of
// K-means workflows arrives at a swept offered load (0.5× to 4× the
// cluster's isolated completion rate), split across one or two tenants,
// under both storage architectures and both COMPSs scheduling policies.
// Reported per tenant: slowdown percentiles (response over isolated
// makespan) and p95 queue wait — the service-level view in which
// scheduler and storage choices reorder, echoing Beránek et al.'s finding
// that scheduler rankings shift with contention.
type Ext5Result struct {
	Rows []Ext5Row
}

// ext5Spec is one trial configuration.
type ext5Spec struct {
	load    float64
	tenants int
	arch    storage.Architecture
	pol     sched.Policy
}

// ext5Workflows is the total workflow count per trial, split evenly
// across tenants so every trial offers the same amount of work.
const ext5Workflows = 8

func ext5Build(int) (*runtime.Workflow, error) {
	return kmeans.Build(kmeans.Config{
		Dataset: dataset.KMeansSmall, Grid: 32, Clusters: 10, Iterations: 2,
	})
}

func runExt5(ctx context.Context, eng *runner.Engine) (Result, error) {
	var specs []ext5Spec
	for _, load := range []float64{0.5, 1, 2, 4} {
		for _, tenants := range []int{1, 2} {
			for _, arch := range []storage.Architecture{storage.Shared, storage.Local} {
				for _, pol := range []sched.Policy{sched.FIFO, sched.Locality} {
					specs = append(specs, ext5Spec{load: load, tenants: tenants, arch: arch, pol: pol})
				}
			}
		}
	}
	rows, err := runner.Map(ctx, eng, "ext5", specs,
		func(s ext5Spec) string {
			return resultcache.KeyOf("ext5", s.load, s.tenants, int(s.arch), int(s.pol)).Hex()
		},
		func(_ context.Context, s ext5Spec) ([]Ext5Row, error) {
			sim := runtime.SimConfig{
				Device:  costmodel.GPU,
				Storage: s.arch,
				Policy:  s.pol,
			}
			// The isolated makespan anchors the sweep: offered load L means
			// workflows arrive cluster-wide at L times the rate the cluster
			// finishes one in isolation. It is also the slowdown baseline,
			// so it is measured once here and passed through.
			wf, err := ext5Build(0)
			if err != nil {
				return nil, err
			}
			base, err := runtime.RunSim(wf, sim)
			if err != nil {
				return nil, err
			}
			perTenantRate := s.load / base.Makespan / float64(s.tenants)
			count := ext5Workflows / s.tenants

			cfg := service.Config{Sim: sim, Seed: 42}
			for t := 0; t < s.tenants; t++ {
				cfg.Tenants = append(cfg.Tenants, service.Tenant{
					Name:     fmt.Sprintf("t%d", t),
					Rate:     perTenantRate,
					Count:    count,
					Build:    ext5Build,
					Baseline: base.Makespan,
				})
			}
			res, err := service.Run(cfg)
			if err != nil {
				return nil, err
			}
			out := make([]Ext5Row, 0, s.tenants)
			for _, ten := range res.Tenants {
				out = append(out, Ext5Row{
					Load: s.load, NumTenant: s.tenants, Storage: s.arch, Policy: s.pol,
					Tenant: ten.Name, Workflows: ten.Workflows,
					Horizon: res.Horizon, CoreUtil: res.CoreUtilization,
					QueueP95: ten.QueueWait.P95,
					Slowdown: Ext5Slowdown{
						P50: ten.Slowdown.P50, P95: ten.Slowdown.P95,
						P99: ten.Slowdown.P99, Mean: ten.Slowdown.Mean,
					},
				})
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	flat := make([]Ext5Row, 0, len(rows)*2)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return &Ext5Result{Rows: flat}, nil
}

// Render implements Result.
func (r *Ext5Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension: multi-tenant load sweep to saturation (K-means 32 blocks × 2 iter, GPU,\n")
	b.WriteString("Poisson arrivals, 8 workflows per trial split across tenants, weighted fair-share gate)\n\n")
	t := tables.New("", "load", "tenants", "storage", "policy", "tenant",
		"slowdown p50", "p95", "p99", "queue p95 (s)", "core util")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%gx", row.Load),
			fmt.Sprint(row.NumTenant),
			row.Storage.String(),
			row.Policy.Describe(),
			row.Tenant,
			tables.FormatFloat(row.Slowdown.P50),
			tables.FormatFloat(row.Slowdown.P95),
			tables.FormatFloat(row.Slowdown.P99),
			tables.FormatFloat(row.QueueP95),
			fmt.Sprintf("%.2f", row.CoreUtil),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nBelow saturation (load ≤ 1) slowdown stays near 1: arrivals rarely overlap.\n")
	b.WriteString("Past it, queueing dominates — tail slowdown (p99) grows much faster than the\n")
	b.WriteString("median, and policy/storage choices that tie on a lone workflow separate under\n")
	b.WriteString("contention. Splitting the same offered load across two fair-share tenants\n")
	b.WriteString("leaves the totals unchanged but isolates each stream's tail from the other's\n")
	b.WriteString("bursts — the service-level argument for tenant-aware dispatch.\n")
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "ext5",
		Title: "Extension: multi-tenant online service — load sweep to saturation",
		Run:   runExt5,
	})
}
