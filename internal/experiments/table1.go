package experiments

import (
	"context"
	"strings"

	"wfsim/internal/runner"
	"wfsim/internal/tables"
)

// Factor is one row of the paper's Table 1: a factor affecting task-based
// workflow performance, its dimension, derived parameters, and the system
// functions it affects.
type Factor struct {
	Dimension  string
	Name       string
	Parameters []string
	// Affects lists the system functions (§5's overhead taxonomy) the
	// factor influences: device speedup, storage I/O, network I/O,
	// CPU-GPU data transfer, task scheduling.
	Affects []string
}

// Factors is the paper's Table 1 as data: the factor taxonomy every
// experiment in this package sweeps.
var Factors = []Factor{
	{
		Dimension:  "Task algorithm",
		Name:       "block dimension",
		Parameters: []string{"block size", "grid dimension", "DAG shape"},
		Affects:    []string{"device speedup", "storage I/O", "network I/O", "CPU-GPU data transfer", "task scheduling"},
	},
	{
		Dimension: "Task algorithm",
		Name:      "computational complexity",
		Affects:   []string{"device speedup"},
	},
	{
		Dimension: "Task algorithm",
		Name:      "parallel fraction",
		Affects:   []string{"device speedup"},
	},
	{
		Dimension: "Task algorithm",
		Name:      "algorithm-specific parameter",
		Affects:   []string{"device speedup"},
	},
	{
		Dimension:  "Dataset",
		Name:       "dataset dimension",
		Parameters: []string{"dataset size"},
		Affects:    []string{"device speedup", "storage I/O", "network I/O", "CPU-GPU data transfer", "task scheduling"},
	},
	{
		Dimension:  "Resources",
		Name:       "processor type (CPU or GPU)",
		Parameters: []string{"maximum #CPU cores available depending on the processor type"},
		Affects:    []string{"device speedup"},
	},
	{
		Dimension: "Resources",
		Name:      "storage architecture",
		Affects:   []string{"storage I/O"},
	},
	{
		Dimension: "System",
		Name:      "scheduling policy",
		Affects:   []string{"network I/O", "task scheduling"},
	},
}

// Table1Result renders the factor taxonomy.
type Table1Result struct{}

// Render implements Result.
func (Table1Result) Render() string {
	t := tables.New("Table 1: Factors and parameters",
		"dimension", "factor", "parameters", "system functions affected")
	for _, f := range Factors {
		t.AddRow(f.Dimension, f.Name, strings.Join(f.Parameters, ", "), strings.Join(f.Affects, ", "))
	}
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: factors and parameters affecting task-based workflow performance",
		Run: func(context.Context, *runner.Engine) (Result, error) {
			return Table1Result{}, nil
		},
	})
}
