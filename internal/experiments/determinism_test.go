package experiments

import (
	"context"
	"testing"

	"wfsim/internal/runner"
	"wfsim/internal/sched"
)

// The engine must be a pure execution detail: rendered output at any
// parallelism level is byte-identical to the serial run. These tests pin
// that contract on the widest sweep (fig11) and on an ablation helper.

func renderWith(t *testing.T, id string, workers int) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), runner.New(workers))
	if err != nil {
		t.Fatal(err)
	}
	return res.Render()
}

func TestFig11DeterministicAcrossParallelism(t *testing.T) {
	serial := renderWith(t, "fig11", 1)
	parallel := renderWith(t, "fig11", 8)
	if serial != parallel {
		t.Errorf("fig11 render differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serial, parallel)
	}
}

func TestAblationDeterministicAcrossParallelism(t *testing.T) {
	serial := ablationScheduler(t, runner.New(1))
	parallel := ablationScheduler(t, runner.New(8))
	for _, pol := range sched.Policies() {
		if serial[pol] != parallel[pol] {
			t.Errorf("%v makespan differs between -j 1 and -j 8: %v vs %v",
				pol, serial[pol], parallel[pol])
		}
	}
}
