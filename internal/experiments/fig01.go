package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/cluster"
	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/tables"
)

// Fig1Result reproduces Figure 1: the performance of distributed K-means
// at different processing stages on CPUs and GPUs. The paper's headline
// numbers — the motivating example — are a 5.69× GPU speedup on the
// parallel fraction alone, collapsing to 1.24× for the whole task user
// code, and inverting to −1.20× (GPU loses) once 256 tasks are distributed
// over 128 cores vs 32 GPUs.
type Fig1Result struct {
	// Single-task stage times (1 CPU core vs 1 GPU device).
	SingleCPU, SingleGPU Cell
	// Parallel-tasks cells (full cluster: 128 cores, 32 GPUs, 256 tasks).
	ParCPU, ParGPU Cell

	// The three headline speedups.
	PFracSpeedup    float64
	UserCodeSpeedup float64
	PTaskSpeedup    float64
}

func runFig1(ctx context.Context, eng *runner.Engine) (Result, error) {
	base := CellConfig{
		Algorithm: KMeans,
		Dataset:   dataset.KMeansSmall, // 10 GB
		Grid:      256,                 // 256 tasks
		Clusters:  10,
	}

	// Single task: 1 CPU core and 1 GPU device (§1 footnote 1); user-code
	// metrics are per-task averages, so one iteration suffices.
	single := base
	single.Cluster = cluster.Spec{Name: "single", Nodes: 1, CoresPerNode: 1, GPUsPerNode: 1}
	single.Iterations = 1

	// Trial set: {single, parallel} × {CPU, GPU}. The parallel
	// configuration uses all 128 cores and 32 GPU devices.
	pairs, err := RunPairs(ctx, eng, "fig1", []CellConfig{single, base})
	if err != nil {
		return nil, err
	}
	for _, p := range pairs {
		if p.CPU.OOM || p.GPU.OOM {
			return nil, fmt.Errorf("fig1: unexpected OOM (cpu=%v gpu=%v)", p.CPU.OOM, p.GPU.OOM)
		}
	}
	sCPU, sGPU := pairs[0].CPU, pairs[0].GPU
	pCPU, pGPU := pairs[1].CPU, pairs[1].GPU

	return &Fig1Result{
		SingleCPU: sCPU, SingleGPU: sGPU,
		ParCPU: pCPU, ParGPU: pGPU,
		PFracSpeedup:    Speedup(sCPU.PFracMean, sGPU.PFracMean),
		UserCodeSpeedup: Speedup(sCPU.UserMean, sGPU.UserMean),
		PTaskSpeedup:    Speedup(pCPU.PTaskMean, pGPU.PTaskMean),
	}, nil
}

// Render implements Result.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: Performance of distributed K-means at different processing stages\n")
	b.WriteString("(10 GB dataset, 256 tasks, 10 clusters; cluster: 128 CPU cores, 32 GPUs)\n\n")

	t := tables.New("Stage times (seconds)",
		"stage", "CPU", "GPU", "GPU speedup over CPU")
	t.AddRow("parallel fraction (single task)",
		tables.FormatFloat(r.SingleCPU.PFracMean),
		tables.FormatFloat(r.SingleGPU.PFracMean),
		tables.FormatSpeedup(r.PFracSpeedup))
	t.AddRow("task user code (single task)",
		tables.FormatFloat(r.SingleCPU.UserMean),
		tables.FormatFloat(r.SingleGPU.UserMean),
		tables.FormatSpeedup(r.UserCodeSpeedup))
	t.AddRow("parallel tasks (256 tasks)",
		tables.FormatFloat(r.ParCPU.PTaskMean),
		tables.FormatFloat(r.ParGPU.PTaskMean),
		tables.FormatSpeedup(r.PTaskSpeedup))
	b.WriteString(t.String())

	b.WriteString(fmt.Sprintf("\nPaper reports: 5.69x / 1.24x / -1.20x — measured: %s / %s / %s\n",
		tables.FormatSpeedup(r.PFracSpeedup),
		tables.FormatSpeedup(r.UserCodeSpeedup),
		tables.FormatSpeedup(r.PTaskSpeedup)))

	d := tables.New("Single-task stage detail (seconds per task)",
		"device", "deser/core", "serial", "parallel", "comm", "user code")
	for _, c := range []Cell{r.SingleCPU, r.SingleGPU} {
		d.AddRow(c.Device.String(),
			tables.FormatFloat(c.DeserPerCore),
			tables.FormatFloat(c.SerialMean),
			tables.FormatFloat(c.PFracMean),
			tables.FormatFloat(c.CommMean),
			tables.FormatFloat(c.UserMean))
	}
	b.WriteString("\n" + d.String())
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: distributed K-means at different processing stages on CPUs and GPUs",
		Run:   runFig1,
	})
}
