package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/tables"
)

// SweepPoint is one grid-dimension point of a CPU-vs-GPU sweep: one X-axis
// position of the paper's end-to-end charts.
type SweepPoint struct {
	CPU, GPU Cell

	// GPU-over-CPU speedups at the three stages Figure 7 charts.
	PFracSpd float64
	UserSpd  float64
	PTaskSpd float64
}

// OOMLabel renders the paper's chart annotations for a point.
func (p SweepPoint) OOMLabel() string {
	switch {
	case p.CPU.OOM && p.GPU.OOM:
		return "CPU GPU OOM"
	case p.GPU.OOM:
		return "GPU OOM"
	case p.CPU.OOM:
		return "CPU OOM"
	default:
		return ""
	}
}

// DatasetSweep is the full grid sweep of one dataset.
type DatasetSweep struct {
	Dataset dataset.Dataset
	Points  []SweepPoint
}

// Fig7Result reproduces Figure 7: the end-to-end performance analysis —
// GPU speedups over CPU for the parallel fraction, the whole task user
// code, and parallel tasks, plus the underlying stage times, across block
// sizes, for both a small and a large dataset per algorithm.
type Fig7Result struct {
	Algorithm Algorithm
	Clusters  int64
	Sweeps    []DatasetSweep
}

// sweepConfigs enumerates a grid sweep's factor combinations, visiting
// the largest grid first so points come out in ascending block size —
// the X-axis order of the paper's charts.
func sweepConfigs(alg Algorithm, ds dataset.Dataset, grids []int64, clusters int64) []CellConfig {
	cfgs := make([]CellConfig, 0, len(grids))
	for i := len(grids) - 1; i >= 0; i-- {
		cfgs = append(cfgs, CellConfig{
			Algorithm: alg, Dataset: ds, Grid: grids[i], Clusters: clusters,
		})
	}
	return cfgs
}

// sweepPoint derives the Figure 7 stage speedups from a measured pair.
func sweepPoint(p Pair) SweepPoint {
	pt := SweepPoint{CPU: p.CPU, GPU: p.GPU}
	if !p.CPU.OOM && !p.GPU.OOM {
		pt.PFracSpd = Speedup(p.CPU.PFracMean, p.GPU.PFracMean)
		pt.UserSpd = Speedup(p.CPU.UserMean, p.GPU.UserMean)
		pt.PTaskSpd = Speedup(p.CPU.PTaskMean, p.GPU.PTaskMean)
	} else {
		pt.PFracSpd, pt.UserSpd, pt.PTaskSpd = math.NaN(), math.NaN(), math.NaN()
	}
	return pt
}

// runSweep executes one dataset's grid sweep as a trial set on the
// engine: every (grid, device) combination is an independent simulation.
func runSweep(ctx context.Context, eng *runner.Engine, alg Algorithm, ds dataset.Dataset, grids []int64, clusters int64) (DatasetSweep, error) {
	sw := DatasetSweep{Dataset: ds}
	pairs, err := RunPairs(ctx, eng, fmt.Sprintf("sweep:%s:%s", alg, ds.Name),
		sweepConfigs(alg, ds, grids, clusters))
	if err != nil {
		return sw, fmt.Errorf("%s %s: %w", alg, ds.Name, err)
	}
	for _, p := range pairs {
		sw.Points = append(sw.Points, sweepPoint(p))
	}
	return sw, nil
}

func runFig7(ctx context.Context, eng *runner.Engine, alg Algorithm) (Result, error) {
	r := &Fig7Result{Algorithm: alg, Clusters: 10}
	var cfgs []struct {
		ds    dataset.Dataset
		grids []int64
	}
	if alg == Matmul {
		cfgs = []struct {
			ds    dataset.Dataset
			grids []int64
		}{
			{dataset.MatmulSmall, dataset.MatmulGrids},
			{dataset.MatmulLarge, dataset.MatmulGrids},
		}
	} else {
		cfgs = []struct {
			ds    dataset.Dataset
			grids []int64
		}{
			{dataset.KMeansSmall, dataset.KMeansGrids},
			{dataset.KMeansLarge, dataset.KMeansGrids},
		}
	}
	for _, c := range cfgs {
		sw, err := runSweep(ctx, eng, alg, c.ds, c.grids, r.Clusters)
		if err != nil {
			return nil, err
		}
		r.Sweeps = append(r.Sweeps, sw)
	}
	return r, nil
}

// Render implements Result.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fig := "7a"
	if r.Algorithm == KMeans {
		fig = "7b"
	}
	fmt.Fprintf(&b, "Figure %s: End-to-end performance analysis, %s\n\n", fig, r.Algorithm)
	for _, sw := range r.Sweeps {
		fmt.Fprintf(&b, "Dataset %s\n", sw.Dataset)
		t := tables.New("GPU speedup over CPU",
			"block size", "grid", "P.Frac", "Usr.Code", "P.Tasks", "")
		for _, p := range sw.Points {
			t.AddRow(
				dataset.FormatBytes(p.CPU.BlockBytes),
				p.CPU.GridString,
				tables.FormatSpeedup(p.PFracSpd),
				tables.FormatSpeedup(p.UserSpd),
				tables.FormatSpeedup(p.PTaskSpd),
				p.OOMLabel(),
			)
		}
		b.WriteString(t.String())

		d := tables.New("Stage times (s; P.Frac per task, Comm+Serial per task, Ser/Deser per core, P.Tasks per level)",
			"block size", "dev", "P.Frac", "Comm+Serial", "Ser/Deser", "P.Tasks")
		for _, p := range sw.Points {
			for _, c := range []Cell{p.CPU, p.GPU} {
				if c.OOM {
					d.AddRow(dataset.FormatBytes(p.CPU.BlockBytes), c.Device.String(), "OOM", "", "", "")
					continue
				}
				d.AddRow(
					dataset.FormatBytes(c.BlockBytes),
					c.Device.String(),
					tables.FormatFloat(c.PFracMean),
					tables.FormatFloat(c.CommMean+c.SerialMean),
					tables.FormatFloat(c.DeserPerCore+c.SerPerCore),
					tables.FormatFloat(c.PTaskMean),
				)
			}
		}
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "fig7a",
		Title: "Figure 7a: end-to-end performance analysis, Matmul (8 GB and 32 GB)",
		Run: func(ctx context.Context, eng *runner.Engine) (Result, error) {
			return runFig7(ctx, eng, Matmul)
		},
	})
	register(Experiment{
		ID:    "fig7b",
		Title: "Figure 7b: end-to-end performance analysis, K-means (10 GB and 100 GB)",
		Run: func(ctx context.Context, eng *runner.Engine) (Result, error) {
			return runFig7(ctx, eng, KMeans)
		},
	})
}
