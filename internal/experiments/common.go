// Package experiments reproduces every figure and table of the paper's
// evaluation (§5). Each experiment builds the paper's workload at the
// paper's scale, executes it on the simulated Minotauro cluster, and
// renders the same rows/series the corresponding figure reports. The IDs
// match the paper artifacts: fig1, fig7a, fig7b, fig8, fig9a, fig9b,
// fig10a, fig10b, fig11, fig12, table1.
//
// Absolute times belong to the calibrated simulator, not the authors'
// testbed; the reproduction target is the shape of each result (who wins,
// by what factor, where the crossovers and OOMs fall). The calibration
// tests in this package pin those shapes.
//
// Execution model: every experiment enumerates its parameter sweep as a
// set of independent trials (one deterministic simulation each) and
// executes it through the internal/runner engine, which parallelizes
// across a bounded worker pool while preserving trial order — so rendered
// output is byte-identical regardless of the `-j` level.
package experiments

import (
	"context"
	"fmt"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/faults"
	"wfsim/internal/metrics"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// Algorithm selects the workload family.
type Algorithm int

const (
	// Matmul is the fully parallelizable workload.
	Matmul Algorithm = iota
	// MatmulFMA is the fused variant (Figure 12).
	MatmulFMA
	// KMeans is the partially parallelizable workload.
	KMeans
)

func (a Algorithm) String() string {
	switch a {
	case Matmul:
		return "matmul"
	case MatmulFMA:
		return "matmul-fma"
	case KMeans:
		return "kmeans"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// HeadlineTask returns the task type whose user-code metrics the paper
// charts for this algorithm.
func (a Algorithm) HeadlineTask() string {
	if a == KMeans {
		return "partial_sum"
	}
	if a == MatmulFMA {
		return "fma_func"
	}
	return "matmul_func"
}

// CellConfig is one factor combination of Table 1.
type CellConfig struct {
	Algorithm Algorithm
	Dataset   dataset.Dataset
	Grid      int64 // g (g×g for matmul, g×1 for kmeans)
	Clusters  int64 // K-means only
	Device    costmodel.DeviceKind
	Storage   storage.Architecture
	Policy    sched.Policy
	// Iterations overrides the K-means default (5).
	Iterations int
	// Cluster overrides the Minotauro topology (zero value keeps it);
	// Figure 1's "single task" bars use a 1-node/1-core/1-GPU cluster.
	Cluster cluster.Spec
	// Params overrides the calibrated K80-era testbed model (nil keeps
	// it); the ext2 experiment passes costmodel.ModernParams().
	Params *costmodel.Params
	// Seed feeds the Random scheduling policy (unused by the
	// deterministic policies, but always part of the cache key).
	Seed uint64
	// Faults parameterizes failure injection; the zero value disables it.
	Faults faults.Config
}

// Cell is the measured outcome of one factor combination — one point of a
// figure.
type Cell struct {
	CellConfig

	// OOM marks configurations that exceed device/host memory; the other
	// metric fields are zero for OOM cells (the paper annotates, not
	// plots, them).
	OOM     bool
	HostOOM bool

	// BlockBytes is the nominal block size (the figures' X axis).
	BlockBytes int64
	// GridString is the paper's "4x4" label.
	GridString string
	// Tasks is the total task count of the workflow.
	Tasks int

	// Per-task user-code means for the headline task type.
	PFracMean  float64 // parallel fraction
	SerialMean float64 // serial fraction
	CommMean   float64 // CPU-GPU communication (in + out)
	UserMean   float64 // serial + parallel + comm

	// SecondPFrac / SecondComm / SecondUser report the secondary task
	// type (add_func) for Matmul; zero otherwise.
	SecondPFrac float64
	SecondComm  float64
	SecondUser  float64

	// Data-movement means per active core.
	DeserPerCore float64
	SerPerCore   float64

	// PTaskMean is the paper's parallel task execution time: the average
	// wall time per algorithm iteration (makespan / #iterations; Matmul
	// is a single pass), including every data-movement and scheduling
	// overhead.
	PTaskMean float64
	// LevelSpanMean is the unweighted mean span across DAG levels, kept
	// as a secondary aggregate.
	LevelSpanMean float64
	// Makespan is the full workflow span.
	Makespan float64

	// Utilizations.
	CoreUtil, GPUUtil float64

	// DAG shape features for the correlation analysis.
	DAGWidth, DAGHeight int
	// Complexity is the headline task's parallel op count (the
	// "computational complexity" feature).
	Complexity float64
}

// buildWorkflow constructs the workload for a cell.
func buildWorkflow(cfg CellConfig) (*runtime.Workflow, error) {
	switch cfg.Algorithm {
	case Matmul:
		return matmul.Build(matmul.Config{Dataset: cfg.Dataset, Grid: cfg.Grid})
	case MatmulFMA:
		return matmul.Build(matmul.Config{Dataset: cfg.Dataset, Grid: cfg.Grid, Variant: matmul.FMA})
	case KMeans:
		return kmeans.Build(kmeans.Config{
			Dataset: cfg.Dataset, Grid: cfg.Grid,
			Clusters: cfg.Clusters, Iterations: cfg.Iterations,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %d", cfg.Algorithm)
	}
}

// cellScratch is per-worker state reused across RunCell trials: the
// simulation arena plus the streaming aggregator. Allocated once per
// runner slot; every later cell on that slot pays zero substrate and
// aggregator setup.
type cellScratch struct {
	arena runtime.Arena
	agg   *metrics.Aggregates
}

// scratchOf returns the worker slot's cellScratch, creating and stashing
// one on first use; nil ctx or a non-worker ctx yields a fresh throwaway.
func scratchOf(ctx context.Context) *cellScratch {
	slot := runner.WorkerSlot(ctx)
	if slot == nil {
		return &cellScratch{agg: metrics.NewAggregates()}
	}
	if sc, ok := slot.Value().(*cellScratch); ok {
		return sc
	}
	sc := &cellScratch{agg: metrics.NewAggregates()}
	slot.Set(sc)
	return sc
}

// RunCell executes one factor combination on the simulator and aggregates
// the paper's metrics. OOM configurations return a Cell with OOM set
// rather than an error, mirroring the figures' annotations.
func RunCell(cfg CellConfig) (Cell, error) {
	return runCell(cfg, &cellScratch{agg: metrics.NewAggregates()})
}

// runCell is RunCell with caller-provided scratch. Records stream into
// scratch.agg as the simulation produces them — the run never materializes
// a per-task record table — and every aggregate query below reproduces the
// Collector arithmetic bit-for-bit (see metrics.Aggregates), so cells are
// byte-identical to the retained-records implementation; the golden figure
// fixtures pin this.
func runCell(cfg CellConfig, scratch *cellScratch) (Cell, error) {
	wf, err := buildWorkflow(cfg)
	if err != nil {
		return Cell{}, err
	}
	cell := Cell{
		CellConfig: cfg,
		Tasks:      wf.Graph.Len(),
		DAGWidth:   wf.Graph.MaxWidth(),
		DAGHeight:  wf.Graph.MaxHeight(),
	}
	part, err := partitionOf(cfg)
	if err != nil {
		return Cell{}, err
	}
	cell.BlockBytes = part.BlockBytes()
	cell.GridString = part.GridString()
	cell.Complexity = headlineComplexity(cfg, part)

	scratch.agg.Reset()
	res, err := runtime.RunSim(wf, runtime.SimConfig{
		Cluster: cfg.Cluster,
		Params:  cfg.Params,
		Storage: cfg.Storage,
		Policy:  cfg.Policy,
		Device:  cfg.Device,
		Seed:    cfg.Seed,
		Faults:  cfg.Faults,
		Sink:    scratch.agg,
		Arena:   &scratch.arena,
	})
	if err != nil {
		if runtime.ErrOOM(err) {
			cell.OOM = true
			cell.HostOOM = cfg.Device == costmodel.CPU
			return cell, nil
		}
		return Cell{}, err
	}

	c := scratch.agg
	head := cfg.Algorithm.HeadlineTask()
	cell.PFracMean, _ = c.MeanStage(head, metrics.StageParallel)
	cell.SerialMean, _ = c.MeanStage(head, metrics.StageSerial)
	in, _ := c.MeanStage(head, metrics.StageCommIn)
	out, _ := c.MeanStage(head, metrics.StageCommOut)
	cell.CommMean = in + out
	cell.UserMean = cell.PFracMean + cell.SerialMean + cell.CommMean

	if cfg.Algorithm == Matmul {
		cell.SecondPFrac, _ = c.MeanStage("add_func", metrics.StageParallel)
		ain, _ := c.MeanStage("add_func", metrics.StageCommIn)
		aout, _ := c.MeanStage("add_func", metrics.StageCommOut)
		cell.SecondComm = ain + aout
		aser, _ := c.MeanStage("add_func", metrics.StageSerial)
		cell.SecondUser = cell.SecondPFrac + cell.SecondComm + aser
	}

	cell.DeserPerCore = c.MovementPerCore(metrics.StageDeser)
	cell.SerPerCore = c.MovementPerCore(metrics.StageSer)
	cell.LevelSpanMean = c.MeanLevelSpan()
	iters := 1
	if cfg.Algorithm == KMeans {
		iters = cfg.Iterations
		if iters == 0 {
			iters = 5 // the kmeans package default
		}
	}
	cell.PTaskMean = res.Makespan / float64(iters)
	cell.Makespan = res.Makespan
	cell.CoreUtil = res.CoreUtilization
	cell.GPUUtil = res.GPUUtilization
	return cell, nil
}

func partitionOf(cfg CellConfig) (dataset.Partition, error) {
	if cfg.Algorithm == KMeans {
		return dataset.ByGrid(cfg.Dataset, cfg.Grid, 1)
	}
	return dataset.ByGrid(cfg.Dataset, cfg.Grid, cfg.Grid)
}

func headlineComplexity(cfg CellConfig, part dataset.Partition) float64 {
	if cfg.Algorithm == KMeans {
		k := cfg.Clusters
		if k == 0 {
			k = 10
		}
		return kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, k).ParallelOps
	}
	if cfg.Algorithm == MatmulFMA {
		return matmul.FMAProfile(part.BlockRows).ParallelOps
	}
	mm, _ := matmul.Profiles(part.BlockRows)
	return mm.ParallelOps
}

// VirtualSeconds reports the cell's simulated time to the trial engine's
// virtual-time accounting.
func (c Cell) VirtualSeconds() float64 { return c.Makespan }

// CellKey is the canonical key of a factor combination: two configs with
// equal keys are guaranteed to simulate identically (the simulator is
// deterministic and the config captures every input), so the trial
// engine runs them once and shares the cell. The key is stable across
// processes and struct-field refactors (resultcache canonical encoding),
// which is what lets the persistent cache serve cells across runs.
func CellKey(cfg CellConfig) string {
	return resultcache.KeyOf("cell", cfg).Hex()
}

// RunPair runs the same configuration on CPU and GPU and returns both
// cells — the head-to-head comparison every speedup chart needs.
func RunPair(cfg CellConfig) (cpu, gpu Cell, err error) {
	cfg.Device = costmodel.CPU
	cpu, err = RunCell(cfg)
	if err != nil {
		return
	}
	cfg.Device = costmodel.GPU
	gpu, err = RunCell(cfg)
	return
}

// RunCells executes one RunCell trial per configuration on the engine,
// returning cells in configuration order. Identical configurations are
// simulated once and shared (CellKey memoization).
func RunCells(ctx context.Context, eng *runner.Engine, label string, cfgs []CellConfig) ([]Cell, error) {
	return runner.Map(ctx, eng, label, cfgs, CellKey,
		func(ctx context.Context, cfg CellConfig) (Cell, error) {
			return runCell(cfg, scratchOf(ctx))
		})
}

// Pair is a CPU/GPU cell pair for one factor combination.
type Pair struct {
	CPU, GPU Cell
}

// RunPairs expands each configuration into its CPU and GPU variants and
// executes all resulting cells as one trial set, returning pairs in
// configuration order. This is the parallel, batched form of RunPair.
func RunPairs(ctx context.Context, eng *runner.Engine, label string, cfgs []CellConfig) ([]Pair, error) {
	expanded := make([]CellConfig, 0, 2*len(cfgs))
	for _, cfg := range cfgs {
		cpu := cfg
		cpu.Device = costmodel.CPU
		gpu := cfg
		gpu.Device = costmodel.GPU
		expanded = append(expanded, cpu, gpu)
	}
	cells, err := RunCells(ctx, eng, label, expanded)
	if err != nil {
		return nil, err
	}
	pairs := make([]Pair, len(cfgs))
	for i := range pairs {
		pairs[i] = Pair{CPU: cells[2*i], GPU: cells[2*i+1]}
	}
	return pairs, nil
}

// Speedup returns tCPU/tGPU guarding zeros.
func Speedup(tCPU, tGPU float64) float64 { return costmodel.Speedup(tCPU, tGPU) }

// clusterSpec is a small helper for hypothetical-topology ablations.
func clusterSpec(nodes, cores, gpus int) cluster.Spec {
	return cluster.Spec{Name: "ablation", Nodes: nodes, CoresPerNode: cores, GPUsPerNode: gpus}
}
