package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/linreg"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/metrics"
	"wfsim/internal/model"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/tables"
)

// Ext1Point is one algorithm's position on the parallel-fraction spectrum.
type Ext1Point struct {
	Name string
	// ParallelFraction is the Amdahl f of the task user code on CPU.
	ParallelFraction float64
	// UserSpeedup is the analytic user-code GPU speedup.
	UserSpeedup float64
	// AmdahlLimit bounds the speedup achievable with free, infinitely
	// fast offload.
	AmdahlLimit float64
	// SimSpeedup is the simulator-measured user-code speedup (validation
	// of the analytic value).
	SimSpeedup float64
}

// Ext1Result is the §5.5.1 generalizability extension: the paper studies
// two extreme algorithm families and calls for "more data points between
// the two extreme cases". This experiment places a third algorithm —
// distributed linear regression with local gradient descent — on the
// spectrum between K-means (serial-heavy) and Matmul (fully parallel), and
// shows user-code GPU speedup tracking the parallel fraction, the paper's
// proposed decision signal ("devise a method to decide when it is worth
// exploiting GPUs based on the ratio of parallel / serial code").
type Ext1Result struct {
	Points []Ext1Point
}

func runExt1(ctx context.Context, eng *runner.Engine) (Result, error) {
	params := costmodel.DefaultParams()
	part, err := dataset.ByGrid(dataset.KMeansSmall, 256, 1)
	if err != nil {
		return nil, err
	}
	mmProf, _ := matmul.Profiles(16384)
	specs := []struct {
		name string
		prof costmodel.Profile
		cell CellConfig
	}{
		{
			name: "kmeans (partial_sum, K=10)",
			prof: kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, 10),
			cell: CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10},
		},
		{
			name: "linreg (gradient, E=10)",
			prof: linreg.GradientProfile(part.BlockRows, part.BlockCols, 10),
		},
		{
			name: "kmeans (partial_sum, K=100)",
			prof: kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, 100),
			cell: CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 100},
		},
		{
			name: "matmul (matmul_func, 2GB blocks)",
			prof: mmProf,
			cell: CellConfig{Algorithm: Matmul, Dataset: dataset.MatmulSmall, Grid: 2},
		},
	}
	// Each spectrum point's simulated speedup is one self-contained
	// trial closure; the analytic breakdown is computed inline (cheap).
	trials := make([]runner.Trial, len(specs))
	for i, s := range specs {
		cell := s.cell
		if cell.Dataset.Rows > 0 {
			trials[i] = runner.Trial{
				ID:    "ext1:" + s.name,
				Key:   resultcache.KeyOf("ext1pair", cell).Hex(),
				Codec: runner.JSONCodec[float64](),
				Run: func(context.Context) (any, error) {
					cpu, gpu, err := RunPair(cell)
					if err != nil {
						return nil, err
					}
					if cpu.OOM || gpu.OOM {
						return 0.0, nil
					}
					return Speedup(cpu.UserMean, gpu.UserMean), nil
				},
			}
		} else {
			// linreg: simulate directly (not a Cell algorithm). The config
			// is pinned inside linregSimSpeedup; the key names it exactly.
			trials[i] = runner.Trial{
				ID:    "ext1:" + s.name,
				Key:   resultcache.KeyOf("ext1linreg", dataset.KMeansSmall, int64(256), 2).Hex(),
				Codec: runner.JSONCodec[float64](),
				Run: func(context.Context) (any, error) {
					return linregSimSpeedup()
				},
			}
		}
	}
	rep, err := eng.Run(ctx, trials)
	if err != nil {
		return nil, err
	}

	r := &Ext1Result{}
	for i, s := range specs {
		b := model.Breakdown(params, s.prof)
		r.Points = append(r.Points, Ext1Point{
			Name:             s.name,
			ParallelFraction: b.ParallelFraction,
			UserSpeedup:      b.UserCodeSpeedup,
			AmdahlLimit:      b.AmdahlLimit,
			SimSpeedup:       rep.Outcomes[i].Value.(float64),
		})
	}
	return r, nil
}

func linregSimSpeedup() (float64, error) {
	span := func(dev costmodel.DeviceKind) (float64, error) {
		wf, err := linreg.Build(linreg.Config{
			Dataset: dataset.KMeansSmall, Grid: 256, Iterations: 2,
		})
		if err != nil {
			return 0, err
		}
		res, err := runtime.RunSim(wf, runtime.SimConfig{Device: dev})
		if err != nil {
			return 0, err
		}
		par, _ := res.Collector.MeanStage("gradient", metrics.StageParallel)
		ser, _ := res.Collector.MeanStage("gradient", metrics.StageSerial)
		in, _ := res.Collector.MeanStage("gradient", metrics.StageCommIn)
		out, _ := res.Collector.MeanStage("gradient", metrics.StageCommOut)
		return par + ser + in + out, nil
	}
	cpu, err := span(costmodel.CPU)
	if err != nil {
		return 0, err
	}
	gpu, err := span(costmodel.GPU)
	if err != nil {
		return 0, err
	}
	return Speedup(cpu, gpu), nil
}

// Render implements Result.
func (r *Ext1Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension (§5.5.1): the parallel-fraction spectrum\n")
	b.WriteString("(a third algorithm between the paper's two extremes; speedups track the\n")
	b.WriteString(" parallel/serial ratio — the paper's proposed offload-decision signal)\n\n")
	t := tables.New("User-code GPU speedup vs parallel fraction",
		"algorithm", "parallel fraction", "analytic speedup", "Amdahl limit", "simulated speedup")
	for _, p := range r.Points {
		limit := "∞"
		if p.AmdahlLimit < 1e6 {
			limit = tables.FormatSpeedup(p.AmdahlLimit)
		}
		t.AddRow(p.Name,
			fmt.Sprintf("%.0f%%", p.ParallelFraction*100),
			tables.FormatSpeedup(p.UserSpeedup),
			limit,
			tables.FormatSpeedup(p.SimSpeedup))
	}
	b.WriteString(t.String())
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "ext1",
		Title: "Extension: parallel-fraction spectrum with a third algorithm (§5.5.1 future work)",
		Run:   runExt1,
	})
}
