package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/tables"
)

// Ext2Era is one hardware generation's measurements of the paper's
// headline quantities.
type Ext2Era struct {
	Name string

	// Figure 1 trio for K-means at 256 tasks.
	PFracSpeedup, UserSpeedup, PTaskSpeedup float64

	// MatmulMaxSpeedup is the largest non-OOM matmul_func user speedup.
	MatmulMaxSpeedup float64
	// MatmulOOMBlock is the smallest Matmul block that OOMs the GPU (0 if
	// none in the sweep).
	MatmulOOMBlock int64
	// KMeansCrossoverTasks is the largest task count at which the GPU
	// wins the parallel-task comparison (0 if it never wins).
	KMeansCrossoverTasks int64
}

// Ext2Result is the §5.5.2 architectures extension: the paper argues newer
// GPUs (faster interconnects, more memory) would shift quantities without
// changing which factors matter. This experiment re-runs the headline
// measurements under an A100/NVLink-class parameterization and shows what
// moves (OOM boundaries, communication penalties, kernel speedups) and
// what does not (the serial-fraction Amdahl ceiling on K-means user code,
// the 32-vs-128 task-parallelism inversion).
type Ext2Result struct {
	Eras []Ext2Era
}

func runExt2(ctx context.Context, eng *runner.Engine) (Result, error) {
	paramSets := []struct {
		name   string
		params costmodel.Params
	}{
		{"K80-era (paper testbed)", costmodel.DefaultParams()},
		{"A100/NVLink-class", costmodel.ModernParams()},
	}
	r := &Ext2Result{}
	for _, ps := range paramSets {
		era := Ext2Era{Name: ps.name}
		params := ps.params

		// Every measurement of an era is a CPU/GPU pair, so the whole
		// era — the Figure 1 trio, the Matmul sweep, and the K-means
		// crossover scan — flattens into one trial set. The grid-256
		// crossover sample duplicates the trio's parallel-tasks config;
		// memoization simulates it once.
		single := CellConfig{
			Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10,
			Iterations: 1, Params: &params,
			Cluster: cluster.Spec{Name: "single", Nodes: 1, CoresPerNode: 1, GPUsPerNode: 1},
		}
		full := CellConfig{
			Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10,
			Params: &params,
		}
		cfgs := []CellConfig{single, full}
		mmStart := len(cfgs)
		for i := len(dataset.MatmulGrids) - 1; i >= 0; i-- {
			cfgs = append(cfgs, CellConfig{
				Algorithm: Matmul, Dataset: dataset.MatmulSmall,
				Grid: dataset.MatmulGrids[i], Params: &params,
			})
		}
		kmStart := len(cfgs)
		for _, g := range dataset.KMeansGrids {
			cfgs = append(cfgs, CellConfig{
				Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: g, Clusters: 10,
				Params: &params,
			})
		}
		pairs, err := RunPairs(ctx, eng, "ext2:"+ps.name, cfgs)
		if err != nil {
			return nil, err
		}

		// Figure 1 trio: single-task user-code metrics + parallel tasks.
		sCPU, sGPU := pairs[0].CPU, pairs[0].GPU
		era.PFracSpeedup = Speedup(sCPU.PFracMean, sGPU.PFracMean)
		era.UserSpeedup = Speedup(sCPU.UserMean, sGPU.UserMean)
		era.PTaskSpeedup = Speedup(pairs[1].CPU.PTaskMean, pairs[1].GPU.PTaskMean)

		// Matmul sweep: max speedup + first OOM block.
		for _, p := range pairs[mmStart:kmStart] {
			if p.GPU.OOM {
				if era.MatmulOOMBlock == 0 || p.CPU.BlockBytes < era.MatmulOOMBlock {
					era.MatmulOOMBlock = p.CPU.BlockBytes
				}
				continue
			}
			if s := Speedup(p.CPU.UserMean, p.GPU.UserMean); s > era.MatmulMaxSpeedup {
				era.MatmulMaxSpeedup = s
			}
		}

		// K-means crossover: largest task count where the GPU wins.
		for i, p := range pairs[kmStart:] {
			if p.CPU.OOM || p.GPU.OOM {
				continue
			}
			g := dataset.KMeansGrids[i]
			if Speedup(p.CPU.PTaskMean, p.GPU.PTaskMean) > 1 && g > era.KMeansCrossoverTasks {
				era.KMeansCrossoverTasks = g
			}
		}
		r.Eras = append(r.Eras, era)
	}
	return r, nil
}

// Render implements Result.
func (r *Ext2Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension (§5.5.2): the paper's headline quantities across GPU generations\n\n")
	t := tables.New("K-means 10 GB, 256 tasks, 10 clusters — Figure 1 trio per era",
		"era", "P.Frac", "Usr.Code", "P.Tasks", "matmul max", "matmul GPU OOM at", "kmeans GPU wins up to")
	for _, e := range r.Eras {
		oom := "never"
		if e.MatmulOOMBlock > 0 {
			oom = dataset.FormatBytes(e.MatmulOOMBlock)
		}
		cross := "never"
		if e.KMeansCrossoverTasks > 0 {
			cross = fmt.Sprintf("%d tasks", e.KMeansCrossoverTasks)
		}
		t.AddRow(e.Name,
			tables.FormatSpeedup(e.PFracSpeedup),
			tables.FormatSpeedup(e.UserSpeedup),
			tables.FormatSpeedup(e.PTaskSpeedup),
			tables.FormatSpeedup(e.MatmulMaxSpeedup),
			oom, cross)
	}
	b.WriteString(t.String())
	b.WriteString("\nWhat moves with hardware: kernel speedups, OOM boundaries, communication\n")
	b.WriteString("penalties. What does not: the serial fraction still caps K-means user-code\n")
	b.WriteString("gains (Amdahl), and GPU task-level parallelism stays bounded by device\n")
	b.WriteString("count — the paper's factor taxonomy is architecture-independent.\n")
	if len(r.Eras) == 2 {
		a, m := r.Eras[0], r.Eras[1]
		if !math.IsNaN(m.UserSpeedup) {
			fmt.Fprintf(&b, "\nK-means user-code speedup moved only %.2fx -> %.2fx despite a ~10x faster GPU.\n",
				a.UserSpeedup, m.UserSpeedup)
		}
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "ext2",
		Title: "Extension: headline quantities on A100/NVLink-class hardware (§5.5.2)",
		Run:   runExt2,
	})
}
