package experiments

import (
	"context"
	"math"
	"testing"

	"wfsim/internal/dataset"
	"wfsim/internal/runner"
)

// These tests pin the reproduction targets from DESIGN.md §3: each asserts
// that a paper headline *shape* (who wins, by what factor, where the
// crossovers and OOMs fall) holds on the calibrated simulator. Bands are
// deliberately loose — the substrate is a simulator, not the authors'
// testbed — but tight enough that a regression in the runtime, cost model
// or scheduler breaks them.

func mustRun(t *testing.T, id string) Result {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), runner.New(0))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCalibrationFig1(t *testing.T) {
	r := mustRun(t, "fig1").(*Fig1Result)
	// Paper: 5.69x parallel-fraction speedup.
	if r.PFracSpeedup < 4.5 || r.PFracSpeedup > 7.0 {
		t.Errorf("parallel fraction speedup = %.2f, want ≈5.69 in [4.5, 7.0]", r.PFracSpeedup)
	}
	// Paper: 1.24x user-code speedup.
	if r.UserCodeSpeedup < 1.05 || r.UserCodeSpeedup > 1.6 {
		t.Errorf("user code speedup = %.2f, want ≈1.24 in [1.05, 1.6]", r.UserCodeSpeedup)
	}
	// Paper: -1.20x — the GPU loses end-to-end with 256 tasks.
	if r.PTaskSpeedup >= 1.0 {
		t.Errorf("parallel task speedup = %.2f, want < 1 (GPU must lose)", r.PTaskSpeedup)
	}
	if inv := 1 / r.PTaskSpeedup; inv < 1.05 || inv > 2.2 {
		t.Errorf("parallel task inversion = -%.2fx, want ≈-1.20x in [-1.05, -2.2]", inv)
	}
}

func TestCalibrationFig8(t *testing.T) {
	r := mustRun(t, "fig8").(*Fig8Result)
	sw := r.Sweeps[0] // 8 GB dataset
	// matmul_func user-code speedup: monotone in block size, max ≈21x.
	prev := 0.0
	maxSpd := 0.0
	for _, p := range sw.Points {
		if p.CPU.OOM || p.GPU.OOM {
			continue
		}
		spd := Speedup(p.CPU.UserMean, p.GPU.UserMean)
		if spd <= prev {
			t.Errorf("matmul_func speedup not increasing at %s: %.2f <= %.2f",
				dataset.FormatBytes(p.CPU.BlockBytes), spd, prev)
		}
		prev = spd
		if spd > maxSpd {
			maxSpd = spd
		}
		// add_func: the GPU loses at every block size (communication
		// dominated).
		if add := AddFuncSpeedup(p); !math.IsNaN(add) && add >= 1 {
			t.Errorf("add_func speedup = %.2f at %s, want < 1",
				add, dataset.FormatBytes(p.CPU.BlockBytes))
		}
	}
	if maxSpd < 15 || maxSpd > 27 {
		t.Errorf("max matmul_func speedup = %.2f, want ≈21 in [15, 27]", maxSpd)
	}
	// The largest block (8 GB) OOMs the GPU: 3 × 8 GB > 12 GB (§5.3).
	last := sw.Points[len(sw.Points)-1]
	if !last.GPU.OOM {
		t.Error("8 GB block should OOM the 12 GB GPU")
	}
	if last.CPU.OOM {
		t.Error("8 GB block should fit in 128 GB host RAM")
	}
}

func TestCalibrationFig9a(t *testing.T) {
	r := mustRun(t, "fig9a").(*Fig9aResult)
	// Index 0: 10 clusters; 1: 100; 2: 1000. Compare at the smallest
	// block (first point after the ascending-block reorder).
	spd := func(s int) float64 { return r.Sweeps[s].Points[0].UserSpd }
	s10, s100, s1000 := spd(0), spd(1), spd(2)
	if s10 < 1.0 || s10 > 1.7 {
		t.Errorf("10-cluster speedup = %.2f, want ≈1.24", s10)
	}
	// Paper: 100 clusters ≈ 2x the 10-cluster speedup.
	if ratio := s100 / s10; ratio < 1.5 || ratio > 4 {
		t.Errorf("100/10 cluster speedup ratio = %.2f, want ≈2 in [1.5, 4]", ratio)
	}
	// Paper: 1000 clusters up to ≈7x the 10-cluster speedup.
	if ratio := s1000 / s10; ratio < 4 || ratio > 9 {
		t.Errorf("1000/10 cluster speedup ratio = %.2f, want ≈7 in [4, 9]", ratio)
	}
	// Speedups do not scale with block size (±15% across the sweep).
	for s := range r.Sweeps {
		base := r.Sweeps[s].Points[0].UserSpd
		for _, p := range r.Sweeps[s].Points {
			if p.CPU.OOM || p.GPU.OOM {
				continue
			}
			if math.Abs(p.UserSpd-base)/base > 0.15 {
				t.Errorf("clusters=%d: speedup varies with block size: %.2f vs %.2f",
					r.Clusters[s], p.UserSpd, base)
			}
		}
	}
	// OOM structure: 1000 clusters OOM at large blocks, including a host
	// OOM at the 10 GB block; 10 clusters OOM only at the largest.
	last1000 := r.Sweeps[2].Points[len(r.Sweeps[2].Points)-1]
	if !last1000.GPU.OOM || !last1000.CPU.OOM {
		t.Error("1000 clusters at 10 GB block should OOM both devices (CPU GPU OOM)")
	}
	last10 := r.Sweeps[0].Points[len(r.Sweeps[0].Points)-1]
	if !last10.GPU.OOM || last10.CPU.OOM {
		t.Error("10 clusters at 10 GB block should OOM only the GPU")
	}
}

func TestCalibrationFig7bCrossover(t *testing.T) {
	r := mustRun(t, "fig7b").(*Fig7Result)
	sw := r.Sweeps[0] // 10 GB
	// Points are in ascending block size: fine-grained first. The paper:
	// negative parallel-task speedup at small blocks, turning positive as
	// task count reaches the 32 available GPUs.
	first := sw.Points[0]
	if first.PTaskSpd >= 1 {
		t.Errorf("fine-grained parallel-task speedup = %.2f, want < 1", first.PTaskSpd)
	}
	crossed := false
	for _, p := range sw.Points {
		if p.CPU.OOM || p.GPU.OOM {
			continue
		}
		tasks := p.CPU.Grid // g×1 grid: g tasks per iteration
		if p.PTaskSpd > 1 && tasks > 32 {
			t.Errorf("GPU wins at %d tasks (> 32 GPUs): speedup %.2f", tasks, p.PTaskSpd)
		}
		if p.PTaskSpd > 1 {
			crossed = true
		}
	}
	if !crossed {
		t.Error("parallel-task speedup never turned positive at coarse grain")
	}
	// Dataset-size effect (§5.1.3): parallel-fraction speedup grows with
	// the larger dataset at the same grid dimension.
	large := r.Sweeps[1]
	if large.Points[0].PFracSpd <= sw.Points[0].PFracSpd {
		t.Errorf("100 GB parallel-fraction speedup (%.2f) should exceed 10 GB's (%.2f) at the same grid",
			large.Points[0].PFracSpd, sw.Points[0].PFracSpd)
	}
	// 100 GB: GPU memory limits testing to ≥16x1 grids (§5.1.3).
	for _, p := range large.Points {
		if p.CPU.Grid < 16 && !p.GPU.OOM {
			t.Errorf("100 GB at grid %dx1 should GPU-OOM", p.CPU.Grid)
		}
		if p.CPU.Grid >= 16 && p.GPU.OOM {
			t.Errorf("100 GB at grid %dx1 should fit the GPU", p.CPU.Grid)
		}
	}
}

func TestCalibrationFig10(t *testing.T) {
	r := mustRun(t, "fig10b").(*Fig10Result)
	// Local storage must beat shared overall (same grid, same policy,
	// CPU): compare aggregate across grids.
	var localSum, sharedSum float64
	for gi := range r.Grids {
		localSum += r.Points[0][gi].CPU.PTaskMean  // local, FIFO
		sharedSum += r.Points[2][gi].CPU.PTaskMean // shared, FIFO
	}
	if localSum >= sharedSum {
		t.Errorf("local (%v) should be faster than shared (%v) overall", localSum, sharedSum)
	}
	// O5/O6: the policy-change effect is larger on shared disk than on
	// local disk (mean relative delta across grids, CPU times).
	relDelta := func(a, b []Fig10Point) float64 {
		var sum float64
		n := 0
		for i := range a {
			if a[i].CPU.OOM || b[i].CPU.OOM {
				continue
			}
			base := a[i].CPU.PTaskMean
			if base > 0 {
				sum += math.Abs(a[i].CPU.PTaskMean-b[i].CPU.PTaskMean) / base
				n++
			}
		}
		return sum / float64(n)
	}
	localDelta := relDelta(r.Points[0], r.Points[1])
	sharedDelta := relDelta(r.Points[2], r.Points[3])
	if sharedDelta < localDelta {
		t.Errorf("policy sensitivity: shared %.4f < local %.4f, want shared ≥ local",
			sharedDelta, localDelta)
	}
	// §5.3: the maximum block size drops the time relative to the
	// previous block size for Matmul (single task, no distribution
	// overhead, node-wide threading).
	ma := mustRun(t, "fig10a").(*Fig10Result)
	nGrids := len(ma.Grids)
	cpu1x1 := ma.Points[2][0].CPU.PTaskMean // shared FIFO, grid index 0 = 1x1
	cpu2x2 := ma.Points[2][1].CPU.PTaskMean
	_ = nGrids
	if cpu1x1 >= cpu2x2 {
		t.Errorf("Matmul CPU time at max block (%.0f) should drop below 2x2's (%.0f)", cpu1x1, cpu2x2)
	}
}

func TestCalibrationFig12FMA(t *testing.T) {
	// §5.5.1: the FMA implementation follows the same trends as dislib's
	// Matmul — speedups scale with block size into the same band.
	r := mustRun(t, "fig12").(*Fig8Result)
	sw := r.Sweeps[0]
	prev, maxSpd := 0.0, 0.0
	for _, p := range sw.Points {
		if p.CPU.OOM || p.GPU.OOM {
			continue
		}
		spd := Speedup(p.CPU.UserMean, p.GPU.UserMean)
		if spd <= prev {
			t.Errorf("fma speedup not increasing at %s", dataset.FormatBytes(p.CPU.BlockBytes))
		}
		prev = spd
		if spd > maxSpd {
			maxSpd = spd
		}
	}
	if maxSpd < 15 || maxSpd > 30 {
		t.Errorf("max fma speedup = %.2f, want in [15, 30]", maxSpd)
	}
}

func TestCalibrationFig9bSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("real-execution timing experiment")
	}
	r := mustRun(t, "fig9b").(*Fig9bResult)
	for _, p := range r.Points {
		// Real kernels on uniform vs skewed data: the paper finds no
		// effect. Wall-clock noise (this test shares the machine with the
		// rest of the suite) is tolerated up to 40%; the paper-style
		// comparison in EXPERIMENTS.md uses quiet-machine runs.
		if d := p.Delta(); d > 0.40 {
			t.Errorf("%s grid %d: skew changed per-task time by %.0f%%, want ≈0",
				p.Algorithm, p.Grid, d*100)
		}
	}
}
