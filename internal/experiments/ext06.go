package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/metrics"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
	"wfsim/internal/tables"
)

// Ext6Row is one (shape × cluster × overhead scale × policy) outcome.
type Ext6Row struct {
	Shape     string
	Nodes     int
	Scale     float64
	Policy    sched.Policy
	Makespan  float64
	Decisions int
	CoreUtil  float64
}

// Ext6Result is the scheduler-zoo overhead study: every scheduling policy
// runs the same workflows on a heterogeneous CPU cluster while the
// calibrated per-decision dispatch cost is scaled from zero (an oracle
// master that decides for free) through nominal to far beyond it (a
// congested or remote master). Lookahead schedulers (HEFT, b-level,
// min-min) buy shorter schedules with more expensive decisions — their
// per-decision model grows with queue depth and cluster size — so the
// policy ranking flips as dispatch cost rises: the study reports, per
// workflow shape and cluster size, the smallest scale at which the best
// myopic policy (FIFO/locality) overtakes the best lookahead policy
// (HEFT/b-level). This is the paper's runtime-overhead lens (§4.3) turned
// into a controlled factor.
type Ext6Result struct {
	Rows []Ext6Row
}

// ext6Shape is one workflow shape of the study: "wide" stresses queue
// depth (many ready tasks per wave, the per-rank overhead term), "deep"
// stresses placement (a long narrow chain on a speed-skewed cluster).
type ext6Shape struct {
	name       string
	grid       int64
	iterations int
}

var ext6Shapes = []ext6Shape{
	{name: "wide", grid: 64, iterations: 2},
	{name: "deep", grid: 24, iterations: 6},
}

// ext6Scales sweeps the SchedOverheadScale knob across four orders of
// magnitude; 0 isolates pure schedule quality, 1 is the calibrated
// COMPSs-like master, and the upper decades stand in for congested or
// wide-area masters where each decision costs whole task-lengths.
var ext6Scales = []float64{0, 1, 16, 256, 4096}

var ext6Nodes = []int{4, 8}

// ext6Policies orders the zoo for the report: myopic policies first, then
// lookahead, then work stealing.
var ext6Policies = []sched.Policy{
	sched.FIFO, sched.Locality, sched.HEFT, sched.BLevel, sched.MinMin, sched.WorkSteal,
}

type ext6Spec struct {
	shape ext6Shape
	nodes int
	scale float64
	pol   sched.Policy
}

// ext6Speeds alternates nominal and 0.6-speed nodes: the heterogeneity
// that gives earliest-finish-time placement something to exploit.
func ext6Speeds(nodes int) []float64 {
	speeds := make([]float64, nodes)
	for i := range speeds {
		speeds[i] = 1.0
		if i%2 == 1 {
			speeds[i] = 0.6
		}
	}
	return speeds
}

func ext6Run(s ext6Spec) (Ext6Row, error) {
	wf, err := kmeans.Build(kmeans.Config{
		Dataset: dataset.KMeansSmall, Grid: s.shape.grid, Clusters: 10,
		Iterations: s.shape.iterations,
	})
	if err != nil {
		return Ext6Row{}, err
	}
	params := costmodel.DefaultParams()
	params.SchedOverheadScale = s.scale
	agg := metrics.NewAggregates()
	var arena runtime.Arena
	res, err := runtime.RunSim(wf, runtime.SimConfig{
		// Two cores per node keeps every wave wider than the cluster's
		// total core count, so per-node queueing is real and placement
		// quality separates the policies at scale 0.
		Cluster: cluster.Spec{
			Name: fmt.Sprintf("hetero%d", s.nodes), Nodes: s.nodes,
			CoresPerNode: 2, GPUsPerNode: 1,
		},
		Params:    &params,
		Device:    costmodel.CPU,
		Storage:   storage.Shared,
		Policy:    s.pol,
		NodeSpeed: ext6Speeds(s.nodes),
		Seed:      11,
		Sink:      agg,
		Arena:     &arena,
	})
	if err != nil {
		return Ext6Row{}, err
	}
	return Ext6Row{
		Shape: s.shape.name, Nodes: s.nodes, Scale: s.scale, Policy: s.pol,
		Makespan: res.Makespan, Decisions: res.SchedDecisions,
		CoreUtil: res.CoreUtilization,
	}, nil
}

func runExt6(ctx context.Context, eng *runner.Engine) (Result, error) {
	var specs []ext6Spec
	for _, shape := range ext6Shapes {
		for _, nodes := range ext6Nodes {
			for _, scale := range ext6Scales {
				for _, pol := range ext6Policies {
					specs = append(specs, ext6Spec{shape: shape, nodes: nodes, scale: scale, pol: pol})
				}
			}
		}
	}
	rows, err := runner.Map(ctx, eng, "ext6", specs,
		func(s ext6Spec) string {
			return resultcache.KeyOf("ext6", s.shape.name, s.nodes, s.scale, int(s.pol)).Hex()
		},
		func(_ context.Context, s ext6Spec) (Ext6Row, error) { return ext6Run(s) })
	if err != nil {
		return nil, err
	}
	return &Ext6Result{Rows: rows}, nil
}

// Ext6Group collects one (shape, nodes) block of rows in scale-major
// order, as produced by runExt6.
type Ext6Group struct {
	Shape string
	Nodes int
	Rows  []Ext6Row
}

// Groups splits the flat row list back into (shape, nodes) blocks.
func (r *Ext6Result) Groups() []Ext6Group {
	var out []Ext6Group
	for _, row := range r.Rows {
		if n := len(out); n == 0 || out[n-1].Shape != row.Shape || out[n-1].Nodes != row.Nodes {
			out = append(out, Ext6Group{Shape: row.Shape, Nodes: row.Nodes})
		}
		out[len(out)-1].Rows = append(out[len(out)-1].Rows, row)
	}
	return out
}

// bestAt returns the lowest makespan among pols at one overhead scale, or
// +Inf when absent.
func (g Ext6Group) bestAt(scale float64, pols ...sched.Policy) float64 {
	best := -1.0
	for _, row := range g.Rows {
		if row.Scale != scale {
			continue
		}
		for _, p := range pols {
			if row.Policy == p && (best < 0 || row.Makespan < best) {
				best = row.Makespan
			}
		}
	}
	return best
}

// FlipScale returns the smallest swept overhead scale at which the best
// myopic policy (FIFO or locality) strictly beats the best lookahead
// policy (HEFT or b-level), and whether such a scale exists in the sweep.
func (g Ext6Group) FlipScale() (float64, bool) {
	for _, scale := range ext6Scales {
		myopic := g.bestAt(scale, sched.FIFO, sched.Locality)
		lookahead := g.bestAt(scale, sched.HEFT, sched.BLevel)
		if myopic > 0 && lookahead > 0 && myopic < lookahead {
			return scale, true
		}
	}
	return 0, false
}

// Render implements Result.
func (r *Ext6Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension: scheduler zoo under a calibrated dispatch-cost model\n")
	b.WriteString("(K-means on CPU, shared disk, alternating 1.0/0.6 node speeds;\n")
	b.WriteString("SchedOverheadScale multiplies every per-decision master cost)\n\n")
	for _, g := range r.Groups() {
		t := tables.New(fmt.Sprintf("shape %s, %d nodes — makespan (s) by overhead scale", g.Shape, g.Nodes),
			append([]string{"policy"}, ext6ScaleHeaders()...)...)
		for _, pol := range ext6Policies {
			row := []string{pol.Describe()}
			for _, scale := range ext6Scales {
				cell := "-"
				for _, rr := range g.Rows {
					if rr.Policy == pol && rr.Scale == scale {
						cell = tables.FormatFloat(rr.Makespan)
					}
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		if scale, ok := g.FlipScale(); ok {
			fmt.Fprintf(&b, "ranking flip at scale %g: best myopic policy overtakes best lookahead policy\n\n", scale)
		} else {
			b.WriteString("no ranking flip within the swept scales\n\n")
		}
	}
	b.WriteString("At scale 0 the lookahead schedulers win: critical-path priorities and\n")
	b.WriteString("earliest-finish-time placement exploit the speed skew for free. Their\n")
	b.WriteString("decisions are the expensive kind, though — the per-decision model grows\n")
	b.WriteString("with queue depth and cluster size — so scaling dispatch cost up inverts\n")
	b.WriteString("the ranking: a capacity-1 master serializes grants, the schedule drains\n")
	b.WriteString("at decision speed, and the cheapest policy wins regardless of schedule\n")
	b.WriteString("quality. Where the flip lands depends on the shape: wide waves deepen the\n")
	b.WriteString("queue and tax per-rank scans; deep chains keep queues short and preserve\n")
	b.WriteString("the lookahead advantage longer.\n")
	return b.String()
}

func ext6ScaleHeaders() []string {
	out := make([]string, len(ext6Scales))
	for i, s := range ext6Scales {
		out[i] = fmt.Sprintf("×%g", s)
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "ext6",
		Title: "Extension: scheduler zoo vs dispatch cost — where lookahead stops paying",
		Run:   runExt6,
	})
}
