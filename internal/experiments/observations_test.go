package experiments

import (
	"context"
	"math"
	"testing"

	"wfsim/internal/dataset"
	"wfsim/internal/runner"
)

// These tests verify the paper's explicit observations O1-O6 (§5) plus the
// §5.4 correlation findings on our reproduction.

// O1: user-code speedups are not affected significantly by block size when
// parallel gains are diminished by serial processing and CPU-GPU
// communication costs (K-means).
func TestObservationO1(t *testing.T) {
	sw, err := runSweep(context.Background(), runner.New(0), KMeans, dataset.KMeansSmall, dataset.KMeansGrids, 10)
	if err != nil {
		t.Fatal(err)
	}
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, p := range sw.Points {
		if p.CPU.OOM || p.GPU.OOM {
			continue
		}
		min = math.Min(min, p.UserSpd)
		max = math.Max(max, p.UserSpd)
	}
	if (max-min)/min > 0.15 {
		t.Errorf("O1 violated: user-code speedup spans [%.2f, %.2f] across block sizes", min, max)
	}
}

// O2: parallel-task speedups do not increase significantly for
// coarse-grained tasks, but improve when data (de-)serialization is fully
// parallelized across cores: the per-core movement overhead is minimized
// near #tasks == #cores.
func TestObservationO2(t *testing.T) {
	sw, err := runSweep(context.Background(), runner.New(0), KMeans, dataset.KMeansSmall, dataset.KMeansGrids, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Movement per core (CPU runs) should be lowest when the 256- or
	// 128-task configurations spread (de)serialization over all 128
	// cores, and higher for coarse grains where few cores move all data.
	fineIdx, coarseIdx := -1, -1
	for i, p := range sw.Points {
		if p.CPU.Grid == 128 {
			fineIdx = i
		}
		if p.CPU.Grid == 2 {
			coarseIdx = i
		}
	}
	if fineIdx < 0 || coarseIdx < 0 {
		t.Fatal("sweep missing expected grids")
	}
	fine := sw.Points[fineIdx].CPU.DeserPerCore + sw.Points[fineIdx].CPU.SerPerCore
	coarse := sw.Points[coarseIdx].CPU.DeserPerCore + sw.Points[coarseIdx].CPU.SerPerCore
	if fine >= coarse {
		t.Errorf("O2 violated: per-core movement at 128 tasks (%.2fs) should be below 2 tasks (%.2fs)",
			fine, coarse)
	}
}

// O3: in tasks with low computational complexity (add_func), increasing
// task granularity does not increase GPU speedups significantly.
func TestObservationO3(t *testing.T) {
	sw, err := runSweep(context.Background(), runner.New(0), Matmul, dataset.MatmulSmall, dataset.MatmulGrids, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sw.Points {
		spd := AddFuncSpeedup(p)
		if math.IsNaN(spd) {
			continue
		}
		// add_func never rises above 1 at any granularity, while
		// matmul_func at the same block size is far above 1.
		if spd >= 1 {
			t.Errorf("O3 violated: add_func speedup %.2f at %s",
				spd, dataset.FormatBytes(p.CPU.BlockBytes))
		}
		mm := Speedup(p.CPU.UserMean, p.GPU.UserMean)
		if !math.IsNaN(mm) && mm < 2*spd {
			t.Errorf("O3: matmul_func (%.2f) should dwarf add_func (%.2f)", mm, spd)
		}
	}
}

// O4: GPU speedups are largely affected by algorithm-specific parameters
// when their effect dominates task complexity: the #clusters effect
// (quadratic) dominates the block-dimension effect (linear).
func TestObservationO4(t *testing.T) {
	// Speedup gain from 100x the clusters must far exceed the gain from
	// 100x the block size.
	cpu10, gpu10, err := RunPair(CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	cpu1000, gpu1000, err := RunPair(CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cpuBig, gpuBig, err := RunPair(CellConfig{Algorithm: KMeans, Dataset: dataset.KMeansSmall, Grid: 2, Clusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	s10 := Speedup(cpu10.UserMean, gpu10.UserMean)
	s1000 := Speedup(cpu1000.UserMean, gpu1000.UserMean)
	sBig := Speedup(cpuBig.UserMean, gpuBig.UserMean)
	clusterGain := s1000 / s10
	blockGain := sBig / s10
	if clusterGain < 3*blockGain {
		t.Errorf("O4 violated: cluster gain %.2f should dominate block gain %.2f", clusterGain, blockGain)
	}
}

// O5: on local disks, scheduling-policy variations barely change CPU/GPU
// execution times.
func TestObservationO5(t *testing.T) {
	r, err := runFig10(context.Background(), runner.New(0), KMeans)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig10Result)
	for gi := range res.Grids {
		fifo, loc := res.Points[0][gi], res.Points[1][gi] // local disk panels
		for _, pair := range [][2]Cell{{fifo.CPU, loc.CPU}, {fifo.GPU, loc.GPU}} {
			a, b := pair[0], pair[1]
			if a.OOM || b.OOM || a.PTaskMean == 0 {
				continue
			}
			if d := math.Abs(a.PTaskMean-b.PTaskMean) / a.PTaskMean; d > 0.15 {
				t.Errorf("O5 violated: local-disk policy delta %.0f%% at grid %s (%s)",
					d*100, a.GridString, a.Device)
			}
		}
	}
}

// O6: on shared disks, policy variations affect CPU and GPU differently
// for low-complexity tasks — K-means shows a larger policy effect than
// Matmul on shared storage.
func TestObservationO6(t *testing.T) {
	km, err := runFig10(context.Background(), runner.New(0), KMeans)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := runFig10(context.Background(), runner.New(0), Matmul)
	if err != nil {
		t.Fatal(err)
	}
	meanDelta := func(r *Fig10Result) float64 {
		var sum float64
		n := 0
		for gi := range r.Grids {
			a, b := r.Points[2][gi].CPU, r.Points[3][gi].CPU // shared panels
			if a.OOM || b.OOM || a.PTaskMean == 0 {
				continue
			}
			sum += math.Abs(a.PTaskMean-b.PTaskMean) / a.PTaskMean
			n++
		}
		return sum / float64(n)
	}
	dKM := meanDelta(km.(*Fig10Result))
	dMM := meanDelta(mm.(*Fig10Result))
	if dKM < dMM {
		t.Errorf("O6 violated: K-means shared-disk policy delta (%.4f) should exceed Matmul's (%.4f)",
			dKM, dMM)
	}
}

// TestCorrelationFindings pins the §5.4 trends on the Figure 11 matrix.
func TestCorrelationFindings(t *testing.T) {
	cells, _, err := CollectFig11Cells(context.Background(), runner.New(0))
	if err != nil {
		t.Fatal(err)
	}
	m, err := CorrelateCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	at := func(a, b string) float64 {
		v, err := m.At(a, b)
		if err != nil {
			t.Fatalf("missing cell %s/%s: %v", a, b, err)
		}
		return v
	}
	// O1 trend: positive correlation between exec time and parallel
	// fraction, comparable to block size's.
	if v := at(FeatPTaskTime, FeatPFrac); v < 0.2 {
		t.Errorf("r(time, parallel fraction) = %.3f, want positive ≥ 0.2", v)
	}
	if v := at(FeatPTaskTime, FeatBlockSize); v < 0.2 {
		t.Errorf("r(time, block size) = %.3f, want positive ≥ 0.2", v)
	}
	// O2 trend: DAG width has among the weakest correlations with time.
	if v := math.Abs(at(FeatPTaskTime, FeatDAGWidth)); v > 0.25 {
		t.Errorf("r(time, DAG width) = %.3f, want weak (|r| ≤ 0.25)", v)
	}
	// O3 trend: complexity is the strongest task-algorithm correlate.
	cx := at(FeatPTaskTime, FeatComplexity)
	if cx < at(FeatPTaskTime, FeatBlockSize) || cx < math.Abs(at(FeatPTaskTime, FeatDAGWidth)) {
		t.Errorf("complexity (%.3f) should be the strongest task-algorithm correlate", cx)
	}
	// O4 trend: algorithm-specific parameter correlates strongly with
	// complexity (paper: 0.836) and positively with parallel fraction.
	if v := at(FeatAlgoParam, FeatComplexity); v < 0.5 {
		t.Errorf("r(param, complexity) = %.3f, want ≥ 0.5 (paper 0.836)", v)
	}
	if v := at(FeatAlgoParam, FeatPFrac); v <= 0 {
		t.Errorf("r(param, parallel fraction) = %.3f, want positive (paper 0.532)", v)
	}
	// O5/O6 trend: shared positive, local negative with time; scheduling
	// correlations weaker than storage ones.
	if v := at(FeatPTaskTime, FeatShared); v <= 0 {
		t.Errorf("r(time, shared) = %.3f, want positive (paper +0.194)", v)
	}
	if v := at(FeatPTaskTime, FeatLocal); v >= 0 {
		t.Errorf("r(time, local) = %.3f, want negative (paper -0.194)", v)
	}
	if math.Abs(at(FeatPTaskTime, FeatFIFO)) > math.Abs(at(FeatPTaskTime, FeatShared)) {
		t.Error("scheduling-policy correlation should be weaker than storage's (paper ±0.065 vs ±0.194)")
	}
	// Additional findings (§5.4.2):
	// (a) block size correlates with time more strongly than dataset size.
	if at(FeatPTaskTime, FeatBlockSize) <= at(FeatPTaskTime, FeatDataset) {
		t.Error("(a) violated: block size should out-correlate dataset size with exec time")
	}
	// (b) block size anti-correlates with grid dimension and DAG width.
	if at(FeatBlockSize, FeatGridDim) >= -0.5 || at(FeatBlockSize, FeatDAGWidth) >= -0.5 {
		t.Error("(b) violated: block size vs grid/width should be strongly negative")
	}
	if at(FeatGridDim, FeatDAGWidth) < 0.9 {
		t.Error("(b) violated: grid dimension and DAG width should be nearly identical")
	}
	// (c) shared disk co-occurs with generation-order scheduling in the
	// sample design (paper: +0.425).
	if at(FeatShared, FeatFIFO) <= 0 {
		t.Error("(c) violated: shared disk should correlate positively with generation-order")
	}
	// (d) GPU anti-correlates with the parallel-fraction time.
	if at(FeatGPU, FeatPFrac) >= 0 {
		t.Error("(d) violated: GPU should reduce parallel-fraction time")
	}
	// (e) processor type has weak correlation with exec time.
	if v := math.Abs(at(FeatPTaskTime, FeatCPU)); v > 0.4 {
		t.Errorf("(e) violated: |r(time, CPU)| = %.3f, want weak", v)
	}
	// CPU/GPU one-hots are perfectly anti-correlated.
	if v := at(FeatCPU, FeatGPU); math.Abs(v+1) > 1e-9 {
		t.Errorf("r(CPU, GPU) = %.3f, want -1", v)
	}
}
