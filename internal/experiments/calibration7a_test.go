package experiments

import (
	"testing"
)

// TestCalibrationFig7a pins the Matmul end-to-end shapes.
func TestCalibrationFig7a(t *testing.T) {
	r := mustRun(t, "fig7a").(*Fig7Result)
	small := r.Sweeps[0] // 8 GB
	prevP := 0.0
	for _, p := range small.Points {
		if p.CPU.OOM || p.GPU.OOM {
			continue
		}
		// "Speedups obtained in the parallel fraction scale with the
		// block size" (§5.1).
		if p.PFracSpd <= prevP {
			t.Errorf("P.Frac speedup not increasing at %d bytes", p.CPU.BlockBytes)
		}
		prevP = p.PFracSpd
		// User-code speedup sits below the parallel-fraction speedup
		// (CPU-GPU communication discount), and the relative discount
		// shrinks as blocks grow coarse (computation amortizes
		// communication, §5.1).
		if p.UserSpd >= p.PFracSpd {
			t.Errorf("user-code speedup %.2f should trail P.Frac %.2f at %d bytes",
				p.UserSpd, p.PFracSpd, p.CPU.BlockBytes)
		}
	}
	fine := small.Points[0]
	var coarse SweepPoint
	for _, p := range small.Points {
		if !p.CPU.OOM && !p.GPU.OOM {
			coarse = p
		}
	}
	discount := func(p SweepPoint) float64 { return 1 - p.UserSpd/p.PFracSpd }
	if discount(fine) <= discount(coarse) {
		t.Errorf("communication discount should shrink with block size: fine %.4f vs coarse %.4f",
			discount(fine), discount(coarse))
	}
	// The 32 GB dataset raises parallel-fraction speedups at equal grid
	// dimension (§5.1.3) — compare matching grids.
	large := r.Sweeps[1]
	for _, lp := range large.Points {
		if lp.CPU.OOM || lp.GPU.OOM {
			continue
		}
		for _, sp := range small.Points {
			if sp.CPU.Grid == lp.CPU.Grid && !sp.CPU.OOM && !sp.GPU.OOM {
				if lp.PFracSpd <= sp.PFracSpd {
					t.Errorf("grid %d: 32 GB P.Frac speedup %.2f should exceed 8 GB's %.2f",
						lp.CPU.Grid, lp.PFracSpd, sp.PFracSpd)
				}
			}
		}
	}
	// OOM structure: 8 GB OOMs only at 1x1; 32 GB at 1x1 and 2x2.
	for _, p := range small.Points {
		wantOOM := p.CPU.Grid == 1
		if p.GPU.OOM != wantOOM {
			t.Errorf("8 GB grid %d: GPU OOM = %v, want %v", p.CPU.Grid, p.GPU.OOM, wantOOM)
		}
	}
	for _, p := range large.Points {
		wantOOM := p.CPU.Grid <= 2
		if p.GPU.OOM != wantOOM {
			t.Errorf("32 GB grid %d: GPU OOM = %v, want %v", p.CPU.Grid, p.GPU.OOM, wantOOM)
		}
	}
}
