package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
	"wfsim/internal/tables"
)

// StorageSchedCombo is one of Figure 10's four panel configurations.
type StorageSchedCombo struct {
	Storage storage.Architecture
	Policy  sched.Policy
}

func (c StorageSchedCombo) String() string {
	return fmt.Sprintf("%s, %s", c.Storage, c.Policy.Describe())
}

// Fig10Combos are the four panels of Figure 10, in the paper's order.
var Fig10Combos = []StorageSchedCombo{
	{storage.Local, sched.FIFO},
	{storage.Local, sched.Locality},
	{storage.Shared, sched.FIFO},
	{storage.Shared, sched.Locality},
}

// Fig10Point is one (grid × combo) measurement pair.
type Fig10Point struct {
	Combo    StorageSchedCombo
	CPU, GPU Cell
}

// Fig10Result reproduces Figure 10: parallel-task average time across
// storage architectures and scheduling policies. The paper's findings: on
// local disks policy changes barely matter (O5); on shared disk they are
// more visible, especially for low-complexity tasks (K-means, O6); local
// is faster than shared overall; times grow for coarse grains until the
// single-task point where distribution overheads vanish; Matmul's largest
// block OOMs the GPU.
type Fig10Result struct {
	Algorithm Algorithm
	Dataset   dataset.Dataset
	Grids     []int64
	// Points[comboIdx][gridIdx]
	Points [][]Fig10Point
}

func runFig10(ctx context.Context, eng *runner.Engine, alg Algorithm) (Result, error) {
	r := &Fig10Result{Algorithm: alg}
	if alg == Matmul {
		r.Dataset, r.Grids = dataset.MatmulSmall, dataset.MatmulGrids
	} else {
		r.Dataset, r.Grids = dataset.KMeansSmall, dataset.KMeansGrids
	}
	// One flat trial set covers all four panels: |combos| × |grids| ×
	// {CPU, GPU} independent simulations.
	var cfgs []CellConfig
	for _, combo := range Fig10Combos {
		for _, g := range r.Grids {
			cfgs = append(cfgs, CellConfig{
				Algorithm: alg, Dataset: r.Dataset, Grid: g, Clusters: 10,
				Storage: combo.Storage, Policy: combo.Policy,
			})
		}
	}
	pairs, err := RunPairs(ctx, eng, fmt.Sprintf("fig10:%s", alg), cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig10 %s: %w", alg, err)
	}
	for ci, combo := range Fig10Combos {
		row := make([]Fig10Point, len(r.Grids))
		for gi := range r.Grids {
			p := pairs[ci*len(r.Grids)+gi]
			row[gi] = Fig10Point{Combo: combo, CPU: p.CPU, GPU: p.GPU}
		}
		r.Points = append(r.Points, row)
	}
	return r, nil
}

// Render implements Result.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fig := "10a"
	if r.Algorithm == KMeans {
		fig = "10b"
	}
	fmt.Fprintf(&b, "Figure %s: storage architecture × scheduling policy, %s (%s)\n\n",
		fig, r.Algorithm, r.Dataset)
	for ci, combo := range Fig10Combos {
		t := tables.New(fmt.Sprintf("%s — parallel tasks average time (s)", combo),
			"block size (grid)", "CPU", "GPU", "")
		for _, p := range r.Points[ci] {
			label := fmt.Sprintf("%s (%s)", dataset.FormatBytes(p.CPU.BlockBytes), p.CPU.GridString)
			cpuS, gpuS := tables.FormatFloat(p.CPU.PTaskMean), tables.FormatFloat(p.GPU.PTaskMean)
			note := ""
			if p.GPU.OOM {
				gpuS, note = "-", "GPU OOM"
			}
			if p.CPU.OOM {
				cpuS = "-"
			}
			t.AddRow(label, cpuS, gpuS, note)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "fig10a",
		Title: "Figure 10a: storage × scheduler effects on Matmul (8 GB)",
		Run: func(ctx context.Context, eng *runner.Engine) (Result, error) {
			return runFig10(ctx, eng, Matmul)
		},
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "Figure 10b: storage × scheduler effects on K-means (10 GB)",
		Run: func(ctx context.Context, eng *runner.Engine) (Result, error) {
			return runFig10(ctx, eng, KMeans)
		},
	})
}
