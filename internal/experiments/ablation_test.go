package experiments

import (
	"context"
	"testing"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// Ablation studies for the design choices DESIGN.md calls out. Each runs
// as both a test (asserting the design choice matters in the expected
// direction) and a benchmark (reporting the ablated metric).

// AblationOccupancy removes the GPU occupancy saturation (SatThreads → 0:
// every kernel runs at peak rate). Without it, the Figure 8 "speedup
// scales with block size" shape collapses to a flat line — demonstrating
// that the saturation term, not the transfer model, produces the paper's
// scaling.
func ablationOccupancy(t testing.TB) (withSat, withoutSat float64) {
	ratioAcrossBlocks := func(params costmodel.Params) float64 {
		speedupAt := func(grid int64) float64 {
			prof, _ := matmul.Profiles(32768 / grid)
			return costmodel.Speedup(
				params.UserCodeTimeUncontended(prof, costmodel.CPU),
				params.UserCodeTimeUncontended(prof, costmodel.GPU))
		}
		return speedupAt(2) / speedupAt(16) // coarse vs fine block speedup ratio
	}
	withSat = ratioAcrossBlocks(costmodel.DefaultParams())
	flat := costmodel.DefaultParams()
	for k := range flat.Kernels {
		flat.Kernels[k].SatThreads = 0
	}
	withoutSat = ratioAcrossBlocks(flat)
	return withSat, withoutSat
}

func TestAblationOccupancy(t *testing.T) {
	withSat, withoutSat := ablationOccupancy(t)
	if withSat < 2 {
		t.Errorf("occupancy model: coarse/fine speedup ratio = %.2f, want > 2 (Figure 8 scaling)", withSat)
	}
	if withoutSat > 1.5 {
		t.Errorf("without occupancy the ratio should flatten, got %.2f", withoutSat)
	}
}

func BenchmarkAblationOccupancy(b *testing.B) {
	var withSat, withoutSat float64
	for i := 0; i < b.N; i++ {
		withSat, withoutSat = ablationOccupancy(b)
	}
	b.ReportMetric(withSat, "scaling-with-occupancy")
	b.ReportMetric(withoutSat, "scaling-without-occupancy")
}

// ablationSchedulerPolicies is the policy set of the scheduler ablation,
// in trial order.
var ablationSchedulerPolicies = sched.Policies()

// AblationScheduler compares all four policies on the locality-sensitive
// configuration (K-means, local disks): locality and generation order
// should be competitive; random placement must not beat the informed
// policies by any margin that matters. The four policy runs execute as
// one trial set on the engine.
func ablationScheduler(t testing.TB, eng *runner.Engine) map[sched.Policy]float64 {
	spans, err := runner.Map(context.Background(), eng, "ablation:sched",
		ablationSchedulerPolicies, nil,
		func(_ context.Context, pol sched.Policy) (float64, error) {
			wf, err := kmeans.Build(kmeans.Config{
				Dataset: dataset.KMeansSmall, Grid: 64, Clusters: 10,
			})
			if err != nil {
				return 0, err
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{
				Storage: storage.Local, Policy: pol, Device: costmodel.CPU, Seed: 7,
			})
			if err != nil {
				return 0, err
			}
			return res.Makespan, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	out := map[sched.Policy]float64{}
	for i, pol := range ablationSchedulerPolicies {
		out[pol] = spans[i]
	}
	return out
}

func TestAblationScheduler(t *testing.T) {
	m := ablationScheduler(t, runner.New(0))
	for pol, makespan := range m {
		if makespan <= 0 {
			t.Fatalf("%v produced zero makespan", pol)
		}
	}
	// The informed policies must be within 2x of each other; random may
	// trail but must complete.
	if m[sched.Locality] > 2*m[sched.FIFO] || m[sched.FIFO] > 2*m[sched.Locality] {
		t.Errorf("informed policies diverge: fifo=%v locality=%v", m[sched.FIFO], m[sched.Locality])
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	var m map[sched.Policy]float64
	for i := 0; i < b.N; i++ {
		m = ablationScheduler(b, runner.New(0))
	}
	b.ReportMetric(m[sched.FIFO], "fifo-makespan-s")
	b.ReportMetric(m[sched.Locality], "locality-makespan-s")
	b.ReportMetric(m[sched.LIFO], "lifo-makespan-s")
	b.ReportMetric(m[sched.Random], "random-makespan-s")
}

// AblationGPFS sweeps the calibrated shared-storage bandwidth. The Figure 1
// parallel-task inversion depends on the I/O floor: a slow GPFS bounds CPU
// and GPU runs alike (both wait for the same 10 GB), masking the GPU's
// 32-slot serialization, while a fast GPFS exposes it. Faster storage
// therefore *deepens* the GPU loss — documenting the sensitivity of the
// headline calibration and why the shared-disk bandwidth is the knob that
// places the measured −1.4× near the paper's −1.2×.
func ablationGPFS(t testing.TB, eng *runner.Engine, bandwidth float64) float64 {
	params := costmodel.DefaultParams()
	params.SharedBandwidth = bandwidth
	spans, err := runner.Map(context.Background(), eng, "ablation:gpfs",
		[]costmodel.DeviceKind{costmodel.CPU, costmodel.GPU}, nil,
		func(_ context.Context, dev costmodel.DeviceKind) (float64, error) {
			wf, err := kmeans.Build(kmeans.Config{
				Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10,
			})
			if err != nil {
				return 0, err
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{Device: dev, Params: &params})
			if err != nil {
				return 0, err
			}
			return res.Makespan, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return spans[0] / spans[1] // parallel-task speedup, CPU over GPU
}

func TestAblationGPFS(t *testing.T) {
	eng := runner.New(0)
	calibrated := ablationGPFS(t, eng, costmodel.DefaultParams().SharedBandwidth)
	fast := ablationGPFS(t, eng, 4*costmodel.DefaultParams().SharedBandwidth)
	slow := ablationGPFS(t, eng, costmodel.DefaultParams().SharedBandwidth/4)
	if calibrated >= 1 {
		t.Errorf("calibrated GPFS: GPU should lose (speedup %.2f)", calibrated)
	}
	if fast >= calibrated {
		t.Errorf("faster GPFS should expose the 32-slot serialization and deepen the loss: %.2f -> %.2f",
			calibrated, fast)
	}
	if slow <= calibrated {
		t.Errorf("slower GPFS should mask the asymmetry and shrink the loss: %.2f -> %.2f",
			calibrated, slow)
	}
}

func BenchmarkAblationGPFS(b *testing.B) {
	var calibrated, fast, slow float64
	base := costmodel.DefaultParams().SharedBandwidth
	eng := runner.New(0)
	for i := 0; i < b.N; i++ {
		calibrated = ablationGPFS(b, eng, base)
		fast = ablationGPFS(b, eng, 4*base)
		slow = ablationGPFS(b, eng, base/4)
	}
	b.ReportMetric(calibrated, "ptask-speedup-calibrated")
	b.ReportMetric(fast, "ptask-speedup-4x-gpfs")
	b.ReportMetric(slow, "ptask-speedup-quarter-gpfs")
}

// AblationReservation: the GPU whole-task reservation is what caps GPU
// task parallelism at 32 — verified indirectly: with as many GPUs as cores
// the inversion disappears.
func TestAblationGPUCount(t *testing.T) {
	span := func(gpusPerNode int, dev costmodel.DeviceKind) float64 {
		wf, err := kmeans.Build(kmeans.Config{
			Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.RunSim(wf, runtime.SimConfig{
			Cluster: clusterSpec(8, 16, gpusPerNode),
			Device:  dev,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	// Paper topology: GPU loses.
	if s := span(4, costmodel.CPU) / span(4, costmodel.GPU); s >= 1 {
		t.Errorf("4 GPUs/node: GPU should lose (%.2f)", s)
	}
	// Hypothetical 16 GPUs/node (one per core): GPU should win — the
	// asymmetry, not the device, caused the inversion.
	if s := span(16, costmodel.CPU) / span(16, costmodel.GPU); s <= 1 {
		t.Errorf("16 GPUs/node: GPU should win (%.2f)", s)
	}
}
