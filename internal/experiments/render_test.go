package experiments

import (
	"strings"
	"testing"
)

// Render coverage: every experiment's textual output must contain the
// structural elements a reader comparing against the paper needs. These
// run the full experiments, so they double as end-to-end smoke tests of
// the registry.

func renderOf(t *testing.T, id string) string {
	t.Helper()
	return mustRun(t, id).Render()
}

func assertContains(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n--- output:\n%s", w, out)
		}
	}
}

func TestRenderFig1(t *testing.T) {
	out := renderOf(t, "fig1")
	assertContains(t, out,
		"Figure 1",
		"parallel fraction (single task)",
		"task user code (single task)",
		"parallel tasks (256 tasks)",
		"Paper reports: 5.69x / 1.24x / -1.20x",
		"GPU speedup over CPU",
	)
}

func TestRenderFig7(t *testing.T) {
	out := renderOf(t, "fig7b")
	assertContains(t, out,
		"Figure 7b",
		"kmeans-10GB",
		"kmeans-100GB",
		"P.Frac", "Usr.Code", "P.Tasks",
		"GPU OOM",
		"39MB", "256x1",
		"Ser/Deser",
	)
}

func TestRenderFig8(t *testing.T) {
	out := renderOf(t, "fig8")
	assertContains(t, out,
		"Figure 8",
		"matmul_func", "add_func",
		"P.Frac CPU", "P.Frac GPU", "CPU-GPU Comm",
		"GPU OOM",
		"2GB",
	)
}

func TestRenderFig9a(t *testing.T) {
	out := renderOf(t, "fig9a")
	assertContains(t, out,
		"Figure 9a",
		"10 clusters", "100 clusters", "1000 clusters",
		"CPU GPU OOM", // the 10 GB × 1000 clusters cell
		"S.Frac",
	)
}

func TestRenderFig9b(t *testing.T) {
	if testing.Short() {
		t.Skip("real execution")
	}
	out := renderOf(t, "fig9b")
	assertContains(t, out,
		"Figure 9b",
		"0% skew", "50% skew",
		"matmul", "kmeans",
		"delta",
	)
}

func TestRenderFig10(t *testing.T) {
	out := renderOf(t, "fig10a")
	assertContains(t, out,
		"Figure 10a",
		"local disk, task generation order",
		"local disk, data locality",
		"shared disk, task generation order",
		"shared disk, data locality",
		"GPU OOM",
		"8GB (1x1)",
	)
}

func TestRenderFig11(t *testing.T) {
	out := renderOf(t, "fig11")
	assertContains(t, out,
		"Figure 11",
		"Spearman",
		"Parallel task exec. time",
		"Computational complexity",
		"Key cells vs paper",
		"r(CPU, GPU) = -1.000",
	)
}

func TestRenderFig12(t *testing.T) {
	out := renderOf(t, "fig12")
	assertContains(t, out,
		"Figure 12",
		"fma_func",
		"Matmul FMA",
	)
}

func TestRenderTable1(t *testing.T) {
	out := renderOf(t, "table1")
	assertContains(t, out,
		"Table 1",
		"block dimension",
		"processor type",
		"storage architecture",
		"scheduling policy",
		"device speedup",
	)
}

func TestRenderExt1(t *testing.T) {
	out := renderOf(t, "ext1")
	assertContains(t, out,
		"parallel-fraction spectrum",
		"kmeans (partial_sum, K=10)",
		"linreg (gradient, E=10)",
		"matmul (matmul_func, 2GB blocks)",
		"Amdahl limit",
	)
}

func TestExt1SpectrumOrdering(t *testing.T) {
	r := mustRun(t, "ext1").(*Ext1Result)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(r.Points))
	}
	// Points are listed in ascending parallel fraction; both analytic and
	// simulated speedups must be monotone along the spectrum — the
	// §5.4.3/§5.5.1 decision signal.
	for i := 1; i < len(r.Points); i++ {
		prev, cur := r.Points[i-1], r.Points[i]
		if cur.ParallelFraction <= prev.ParallelFraction {
			t.Errorf("parallel fraction not increasing: %s (%.2f) after %s (%.2f)",
				cur.Name, cur.ParallelFraction, prev.Name, prev.ParallelFraction)
		}
		if cur.UserSpeedup <= prev.UserSpeedup {
			t.Errorf("analytic speedup not increasing at %s", cur.Name)
		}
		if cur.SimSpeedup <= prev.SimSpeedup {
			t.Errorf("simulated speedup not increasing at %s", cur.Name)
		}
	}
	// Analytic and simulated values agree within 20%.
	for _, p := range r.Points {
		if p.SimSpeedup == 0 {
			continue
		}
		if rel := (p.UserSpeedup - p.SimSpeedup) / p.SimSpeedup; rel > 0.2 || rel < -0.2 {
			t.Errorf("%s: analytic %.2f vs simulated %.2f diverge", p.Name, p.UserSpeedup, p.SimSpeedup)
		}
	}
}

func TestRenderExt2(t *testing.T) {
	out := renderOf(t, "ext2")
	assertContains(t, out,
		"across GPU generations",
		"K80-era (paper testbed)",
		"A100/NVLink-class",
		"Amdahl",
	)
}

func TestExt2ArchitectureShifts(t *testing.T) {
	r := mustRun(t, "ext2").(*Ext2Result)
	if len(r.Eras) != 2 {
		t.Fatalf("eras = %d, want 2", len(r.Eras))
	}
	k80, modern := r.Eras[0], r.Eras[1]
	// What moves: kernel speedups and OOM boundaries.
	if modern.PFracSpeedup <= k80.PFracSpeedup {
		t.Errorf("modern parallel-fraction speedup (%.2f) should exceed K80's (%.2f)",
			modern.PFracSpeedup, k80.PFracSpeedup)
	}
	if modern.MatmulMaxSpeedup <= k80.MatmulMaxSpeedup {
		t.Error("modern matmul speedup should exceed K80's")
	}
	if k80.MatmulOOMBlock == 0 {
		t.Error("K80 era must OOM at the 8 GB Matmul block")
	}
	if modern.MatmulOOMBlock != 0 {
		t.Errorf("40 GB device should fit every Matmul block (OOM at %d)", modern.MatmulOOMBlock)
	}
	// What does not move: the Amdahl ceiling on K-means user code (serial
	// fraction bound) and the task-parallelism asymmetry.
	if modern.UserSpeedup > k80.UserSpeedup*1.3 {
		t.Errorf("K-means user speedup should barely move (%.2f -> %.2f): serial fraction bound",
			k80.UserSpeedup, modern.UserSpeedup)
	}
	if modern.PTaskSpeedup >= 1 {
		t.Errorf("parallel-task inversion should persist on modern hardware (%.2f)",
			modern.PTaskSpeedup)
	}
	if modern.KMeansCrossoverTasks > 32 {
		t.Errorf("GPU parallel-task win should stay bounded by the 32 devices (crossover %d)",
			modern.KMeansCrossoverTasks)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig7a", "fig7b", "fig8", "fig9a", "fig9b",
		"fig10a", "fig10b", "fig11", "fig12", "table1", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6"}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}
