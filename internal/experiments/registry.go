package experiments

import (
	"context"
	"fmt"
	"sort"

	"wfsim/internal/runner"
)

// Result is a rendered experiment outcome.
type Result interface {
	// Render returns the paper-style textual tables/series.
	Render() string
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the CLI name (fig1, fig7a, ...).
	ID string
	// Title is the paper artifact's caption-level description.
	Title string
	// Run executes the experiment at paper scale. The experiment builds
	// its parameter sweep as a trial set and executes it through eng;
	// ctx aborts the sweep between trials. Results are deterministic and
	// independent of the engine's parallelism.
	Run func(ctx context.Context, eng *runner.Engine) (Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try `list`)", id)
	}
	return e, nil
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
