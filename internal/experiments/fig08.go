package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"wfsim/internal/dataset"
	"wfsim/internal/runner"
	"wfsim/internal/tables"
)

// Fig8Result reproduces Figure 8: the effect of task computational
// complexity in Matmul. The O(N³) matmul_func scales its GPU speedup with
// block size up to ≈21×, while the O(N²) add_func — two orders of
// magnitude less complex — is dominated by CPU-GPU communication and the
// GPU loses at every block size.
type Fig8Result struct {
	// Variant distinguishes the dislib implementation (Figure 8) from the
	// FMA generalizability experiment (Figure 12), which shares this
	// harness per §5.5.1.
	Variant Algorithm
	Sweeps  []DatasetSweep
}

func runFig8(ctx context.Context, eng *runner.Engine, alg Algorithm) (Result, error) {
	r := &Fig8Result{Variant: alg}
	for _, ds := range []dataset.Dataset{dataset.MatmulSmall, dataset.MatmulLarge} {
		sw, err := runSweep(ctx, eng, alg, ds, dataset.MatmulGrids, 0)
		if err != nil {
			return nil, err
		}
		r.Sweeps = append(r.Sweeps, sw)
		if alg == MatmulFMA {
			break // Figure 12 uses the 8 GB dataset only
		}
	}
	return r, nil
}

// AddFuncSpeedup returns the add_func user-code speedup of a point, NaN
// when unavailable (OOM or single-block grid with no add tasks).
func AddFuncSpeedup(p SweepPoint) float64 {
	if p.CPU.OOM || p.GPU.OOM || p.CPU.SecondUser == 0 || p.GPU.SecondUser == 0 {
		return math.NaN()
	}
	return Speedup(p.CPU.SecondUser, p.GPU.SecondUser)
}

// Render implements Result.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	head := r.Variant.HeadlineTask()
	if r.Variant == MatmulFMA {
		b.WriteString("Figure 12: Analysis of task user code in Matmul FMA (8 GB)\n\n")
	} else {
		b.WriteString("Figure 8: Task computational complexity in Matmul (8 GB left, 32 GB right)\n\n")
	}
	for _, sw := range r.Sweeps {
		fmt.Fprintf(&b, "Dataset %s\n", sw.Dataset)
		t := tables.New("User-code GPU speedup over CPU per task type",
			"block size", head, "add_func", "")
		for _, p := range sw.Points {
			userSpd := math.NaN()
			if !p.CPU.OOM && !p.GPU.OOM {
				userSpd = Speedup(p.CPU.UserMean, p.GPU.UserMean)
			}
			addCell := "-"
			if r.Variant == Matmul {
				addCell = tables.FormatSpeedup(AddFuncSpeedup(p))
			}
			t.AddRow(
				dataset.FormatBytes(p.CPU.BlockBytes),
				tables.FormatSpeedup(userSpd),
				addCell,
				p.OOMLabel(),
			)
		}
		b.WriteString(t.String())

		d := tables.New("Average time per task (s)",
			"block size", "P.Frac CPU", "P.Frac GPU", "CPU-GPU Comm")
		for _, p := range sw.Points {
			if p.CPU.OOM || p.GPU.OOM {
				d.AddRow(dataset.FormatBytes(p.CPU.BlockBytes), p.OOMLabel(), "", "")
				continue
			}
			d.AddRow(
				dataset.FormatBytes(p.CPU.BlockBytes),
				tables.FormatFloat(p.CPU.PFracMean),
				tables.FormatFloat(p.GPU.PFracMean),
				tables.FormatFloat(p.GPU.CommMean),
			)
		}
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: task computational complexity in Matmul (matmul_func vs add_func)",
		Run: func(ctx context.Context, eng *runner.Engine) (Result, error) {
			return runFig8(ctx, eng, Matmul)
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: analysis of task user code in Matmul FMA",
		Run: func(ctx context.Context, eng *runner.Engine) (Result, error) {
			return runFig8(ctx, eng, MatmulFMA)
		},
	})
}
