package experiments

import (
	"context"
	"fmt"
	"strings"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/tables"
)

// Ext3Row is one (straggler severity × policy) measurement.
type Ext3Row struct {
	Policy      sched.Policy
	SlowFactor  float64 // 1.0 = uniform cluster
	MakespanCPU float64
	CoreUtil    float64
}

// Ext3Result probes the paper's "resource wastage" challenge (§1,
// challenge ii) beyond its uniform testbed: one node is slowed to a
// fraction of nominal speed and the scheduling policies face the resulting
// load imbalance. Load-aware placement (both policies use outstanding-task
// counts) bounds the damage: the makespan grows far less than the
// straggler's slowdown, and utilization reveals the wasted capacity the
// paper's motivation describes.
type Ext3Result struct {
	Rows []Ext3Row
}

// ext3Spec is one (straggler severity × policy) trial configuration.
type ext3Spec struct {
	slow float64
	pol  sched.Policy
}

func runExt3(ctx context.Context, eng *runner.Engine) (Result, error) {
	spec := cluster.Minotauro()
	var specs []ext3Spec
	for _, slow := range []float64{1.0, 0.5, 0.25} {
		for _, pol := range []sched.Policy{sched.FIFO, sched.Locality} {
			specs = append(specs, ext3Spec{slow: slow, pol: pol})
		}
	}
	rows, err := runner.Map(ctx, eng, "ext3", specs,
		func(s ext3Spec) string { return resultcache.KeyOf("ext3", s.slow, int(s.pol)).Hex() },
		func(_ context.Context, s ext3Spec) (Ext3Row, error) {
			speeds := make([]float64, spec.Nodes)
			for i := range speeds {
				speeds[i] = 1
			}
			speeds[0] = s.slow
			wf, err := kmeans.Build(kmeans.Config{
				Dataset: dataset.KMeansSmall, Grid: 128, Clusters: 10,
			})
			if err != nil {
				return Ext3Row{}, err
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{
				Device:    costmodel.CPU,
				Policy:    s.pol,
				NodeSpeed: speeds,
			})
			if err != nil {
				return Ext3Row{}, err
			}
			return Ext3Row{
				Policy: s.pol, SlowFactor: s.slow,
				MakespanCPU: res.Makespan, CoreUtil: res.CoreUtilization,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Ext3Result{Rows: rows}, nil
}

// Render implements Result.
func (r *Ext3Result) Render() string {
	var b strings.Builder
	b.WriteString("Extension: resource heterogeneity (the paper's 'resource wastage' challenge)\n")
	b.WriteString("(K-means 10 GB, 128 tasks, CPU; node 0 slowed to the given fraction)\n\n")
	t := tables.New("", "node-0 speed", "policy", "makespan (s)", "core util")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.0f%%", row.SlowFactor*100),
			row.Policy.Describe(),
			tables.FormatFloat(row.MakespanCPU),
			fmt.Sprintf("%.0f%%", row.CoreUtil*100),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nA 4x straggler node does not quadruple the makespan: load-aware placement\n")
	b.WriteString("routes work around it, at the cost of idle capacity elsewhere — the\n")
	b.WriteString("imbalance/wastage trade-off the paper's automated-design agenda targets.\n")
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "ext3",
		Title: "Extension: scheduling under resource heterogeneity (stragglers)",
		Run:   runExt3,
	})
}
