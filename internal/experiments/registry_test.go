package experiments

import (
	"strings"
	"testing"
)

func TestRegisterDuplicateIDPanics(t *testing.T) {
	defer delete(registry, "test-dup")
	register(Experiment{ID: "test-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("registering a duplicate ID did not panic")
		}
	}()
	register(Experiment{ID: "test-dup"})
}

func TestByIDUnknown(t *testing.T) {
	_, err := ByID("nope")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), `unknown experiment "nope"`) {
		t.Errorf("error should name the bad id: %v", err)
	}
}

// TestAllCoversDesignDoc pins the registry to the experiment inventory in
// DESIGN.md §3: every paper artifact plus the six extensions, no
// strays, sorted by ID.
func TestAllCoversDesignDoc(t *testing.T) {
	want := []string{
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6",
		"fig1", "fig10a", "fig10b", "fig11", "fig12",
		"fig7a", "fig7b", "fig8", "fig9a", "fig9b",
		"table1",
	}
	all := All()
	var got []string
	for _, e := range all {
		got = append(got, e.ID)
	}
	if len(got) != len(want) {
		t.Fatalf("All() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration (title %q, run nil=%v)", e.ID, e.Title, e.Run == nil)
		}
	}
}
