// Package dsarray is the dislib-style programming layer of the paper's
// §3.5: distributed, block-partitioned arrays whose operations expand into
// tasks on the workflow runtime. Users compose array expressions; the
// runtime derives the DAG, and either backend executes it — the simulator
// with calibrated cost profiles, or the local backend with real float64
// kernels.
//
//	ctx := dsarray.New("pipeline", true /* materialize */)
//	a, _ := ctx.Random(ds, 4, 4, dataset.NewGenerator(1))
//	b, _ := ctx.Random(ds, 4, 4, dataset.NewGenerator(2))
//	c, _ := a.MatMul(b)          // g³ matmul_func + add tree
//	d, _ := c.Add(a)             // elementwise add_func tasks
//	res, _ := runtime.RunLocal(ctx.Workflow(), runtime.LocalConfig{})
//
// Operations follow the paper's task taxonomy: MatMul emits the
// compute-bound O(N³) kernel, Add/Scale/Transpose emit bandwidth-bound
// O(N²) kernels, and Sum reduces with a task tree — so every dsarray
// program exposes the same thread-level/task-level parallelism trade-offs
// the paper analyzes.
package dsarray

import (
	"fmt"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

// Context owns the workflow that array operations append tasks to.
type Context struct {
	wf          *runtime.Workflow
	materialize bool
	budget      int64
	counter     int
}

// New creates a context. With materialize set, input arrays carry real
// blocks and operations attach real kernels (local backend); otherwise the
// workflow is metadata-only (simulation at paper scale).
func New(name string, materialize bool) *Context {
	return &Context{
		wf:          runtime.NewWorkflow(name),
		materialize: materialize,
		budget:      512 << 20,
	}
}

// Workflow returns the underlying workflow for execution.
func (c *Context) Workflow() *runtime.Workflow { return c.wf }

// SetBudget caps total materialized bytes per array (default 512 MB).
func (c *Context) SetBudget(bytes int64) { c.budget = bytes }

func (c *Context) fresh(prefix string) string {
	c.counter++
	return fmt.Sprintf("%s#%d", prefix, c.counter)
}

// Array is a handle to a block-partitioned matrix within the context's
// workflow. Its blocks are workflow data; using an Array as an operand
// creates dependencies on the tasks that produced it.
type Array struct {
	ctx  *Context
	part dataset.Partition
	keys [][]string // keys[r][c] names block (r, c)
}

// Partition returns the array's grid layout.
func (a *Array) Partition() dataset.Partition { return a.part }

// Key returns the datum name of block (r, c), e.g. to fetch results from a
// LocalResult store.
func (a *Array) Key(r, c int64) string { return a.keys[r][c] }

// newArray allocates the key grid and declares block sizes.
func (c *Context) newArray(part dataset.Partition, prefix string) (*Array, error) {
	a := &Array{ctx: c, part: part}
	base := c.fresh(prefix)
	for r := int64(0); r < part.GridRows; r++ {
		row := make([]string, part.GridCols)
		for col := int64(0); col < part.GridCols; col++ {
			rows, cols, err := part.BlockShape(r, col)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s[%d,%d]", base, r, col)
			row[col] = key
			c.wf.SetSize(key, float64(rows*cols*dataset.ElemSize))
		}
		a.keys = append(a.keys, row)
	}
	return a, nil
}

// Random declares an input array filled by gen (materialized contexts
// allocate and fill real blocks).
func (c *Context) Random(d dataset.Dataset, k, l int64, gen *dataset.Generator) (*Array, error) {
	part, err := dataset.ByGrid(d, k, l)
	if err != nil {
		return nil, err
	}
	if c.materialize && part.SizeBytes() > c.budget {
		return nil, fmt.Errorf("dsarray: %s exceeds materialization budget %s",
			dataset.FormatBytes(part.SizeBytes()), dataset.FormatBytes(c.budget))
	}
	a, err := c.newArray(part, "in")
	if err != nil {
		return nil, err
	}
	if c.materialize {
		if gen == nil {
			gen = dataset.NewGenerator(42)
		}
		for r := int64(0); r < part.GridRows; r++ {
			for col := int64(0); col < part.GridCols; col++ {
				rows, cols, err := part.BlockShape(r, col)
				if err != nil {
					return nil, err
				}
				b := dataset.NewBlock(dataset.BlockID{Row: r, Col: col}, rows, cols)
				gen.Fill(b)
				c.wf.SetInput(a.keys[r][col], b)
			}
		}
	}
	return a, nil
}

// elementwiseProfile is the bandwidth-bound O(elements) profile shared by
// Add/Scale/Transpose — the add_func class of the paper's Figure 8.
func elementwiseProfile(rows, cols int64, inputs int) costmodel.Profile {
	n := float64(rows * cols)
	bytes := n * dataset.ElemSize
	return costmodel.Profile{
		Kernel:      costmodel.KernelAdd,
		ParallelOps: n,
		Threads:     n,
		BytesIn:     float64(inputs) * bytes,
		BytesOut:    bytes,
		// inputs + output resident on device.
		DeviceMemBytes: float64(inputs+1) * bytes,
		HostMemBytes:   float64(inputs+1) * bytes,
	}
}

func sameShape(a, b *Array) error {
	if a.part.GridRows != b.part.GridRows || a.part.GridCols != b.part.GridCols ||
		a.part.Rows != b.part.Rows || a.part.Cols != b.part.Cols {
		return fmt.Errorf("dsarray: shape mismatch %dx%d/%s vs %dx%d/%s",
			a.part.Rows, a.part.Cols, a.part.GridString(),
			b.part.Rows, b.part.Cols, b.part.GridString())
	}
	return nil
}

// Add returns a + b elementwise, one task per block.
func (a *Array) Add(b *Array) (*Array, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	out, err := a.ctx.newArray(a.part, "add")
	if err != nil {
		return nil, err
	}
	for r := int64(0); r < a.part.GridRows; r++ {
		for col := int64(0); col < a.part.GridCols; col++ {
			rows, cols, err := a.part.BlockShape(r, col)
			if err != nil {
				return nil, err
			}
			spec := runtime.TaskSpec{Profile: elementwiseProfile(rows, cols, 2)}
			if a.ctx.materialize {
				x, y, o := a.keys[r][col], b.keys[r][col], out.keys[r][col]
				spec.Exec = func(s *runtime.Store) error {
					bx, by := s.MustGet(x), s.MustGet(y)
					bo := dataset.NewBlock(dataset.BlockID{}, bx.Rows, bx.Cols)
					for i := range bo.Data {
						bo.Data[i] = bx.Data[i] + by.Data[i]
					}
					s.Put(o, bo)
					return nil
				}
			}
			a.ctx.wf.AddTask("add_func", spec,
				dag.Param{Data: a.keys[r][col], Dir: dag.In},
				dag.Param{Data: b.keys[r][col], Dir: dag.In},
				dag.Param{Data: out.keys[r][col], Dir: dag.Out})
		}
	}
	return out, nil
}

// Scale returns f·a, one task per block.
func (a *Array) Scale(f float64) (*Array, error) {
	out, err := a.ctx.newArray(a.part, "scale")
	if err != nil {
		return nil, err
	}
	for r := int64(0); r < a.part.GridRows; r++ {
		for col := int64(0); col < a.part.GridCols; col++ {
			rows, cols, err := a.part.BlockShape(r, col)
			if err != nil {
				return nil, err
			}
			spec := runtime.TaskSpec{Profile: elementwiseProfile(rows, cols, 1)}
			if a.ctx.materialize {
				x, o, factor := a.keys[r][col], out.keys[r][col], f
				spec.Exec = func(s *runtime.Store) error {
					bx := s.MustGet(x)
					bo := dataset.NewBlock(dataset.BlockID{}, bx.Rows, bx.Cols)
					for i := range bo.Data {
						bo.Data[i] = bx.Data[i] * factor
					}
					s.Put(o, bo)
					return nil
				}
			}
			a.ctx.wf.AddTask("scale_func", spec,
				dag.Param{Data: a.keys[r][col], Dir: dag.In},
				dag.Param{Data: out.keys[r][col], Dir: dag.Out})
		}
	}
	return out, nil
}

// Transpose returns aᵀ: block (r,c) of the result is the transpose of
// block (c,r) of a. One task per output block.
func (a *Array) Transpose() (*Array, error) {
	tPart, err := dataset.ByBlock(
		dataset.Dataset{Name: a.part.Name + "T", Rows: a.part.Cols, Cols: a.part.Rows},
		a.part.BlockCols, a.part.BlockRows)
	if err != nil {
		return nil, err
	}
	out, err := a.ctx.newArray(tPart, "t")
	if err != nil {
		return nil, err
	}
	for r := int64(0); r < tPart.GridRows; r++ {
		for col := int64(0); col < tPart.GridCols; col++ {
			rows, cols, err := tPart.BlockShape(r, col)
			if err != nil {
				return nil, err
			}
			spec := runtime.TaskSpec{Profile: elementwiseProfile(rows, cols, 1)}
			if a.ctx.materialize {
				src, dst := a.keys[col][r], out.keys[r][col]
				spec.Exec = func(s *runtime.Store) error {
					bx := s.MustGet(src)
					bo := dataset.NewBlock(dataset.BlockID{}, bx.Cols, bx.Rows)
					for i := int64(0); i < bx.Rows; i++ {
						for j := int64(0); j < bx.Cols; j++ {
							bo.Set(j, i, bx.At(i, j))
						}
					}
					s.Put(dst, bo)
					return nil
				}
			}
			a.ctx.wf.AddTask("transpose_func", spec,
				dag.Param{Data: a.keys[col][r], Dir: dag.In},
				dag.Param{Data: out.keys[r][col], Dir: dag.Out})
		}
	}
	return out, nil
}

// MatMul returns a × b using the dislib scheme: one O(N³) matmul_func per
// (i, j, k) block triple plus a binary add_func reduction tree per output
// block — the exact task structure of the paper's Figure 6b.
func (a *Array) MatMul(b *Array) (*Array, error) {
	if a.part.Cols != b.part.Rows || a.part.GridCols != b.part.GridRows {
		return nil, fmt.Errorf("dsarray: matmul inner dims %d/%d vs %d/%d",
			a.part.Cols, a.part.GridCols, b.part.Rows, b.part.GridRows)
	}
	outPart, err := dataset.ByBlock(
		dataset.Dataset{Name: "mm", Rows: a.part.Rows, Cols: b.part.Cols},
		a.part.BlockRows, b.part.BlockCols)
	if err != nil {
		return nil, err
	}
	out, err := a.ctx.newArray(outPart, "mm")
	if err != nil {
		return nil, err
	}
	inner := a.part.GridCols
	for r := int64(0); r < outPart.GridRows; r++ {
		for col := int64(0); col < outPart.GridCols; col++ {
			partials := make([]string, 0, inner)
			for k := int64(0); k < inner; k++ {
				pKey := out.keys[r][col]
				if inner > 1 {
					pKey = a.ctx.fresh("p")
					rows, cols, err := outPart.BlockShape(r, col)
					if err != nil {
						return nil, err
					}
					a.ctx.wf.SetSize(pKey, float64(rows*cols*dataset.ElemSize))
				}
				n := a.part.BlockRows // block order for the profile
				prof := costmodel.Profile{
					Kernel:         costmodel.KernelMatmul,
					ParallelOps:    2 * float64(n) * float64(a.part.BlockCols) * float64(b.part.BlockCols),
					Threads:        float64(n) * float64(b.part.BlockCols),
					BytesIn:        float64((a.part.BlockRows*a.part.BlockCols + b.part.BlockRows*b.part.BlockCols) * dataset.ElemSize),
					BytesOut:       float64(n * b.part.BlockCols * dataset.ElemSize),
					DeviceMemBytes: 3 * float64(n*b.part.BlockCols*dataset.ElemSize),
					HostMemBytes:   3 * float64(n*b.part.BlockCols*dataset.ElemSize),
				}
				spec := runtime.TaskSpec{Profile: prof}
				if a.ctx.materialize {
					x, y, o := a.keys[r][k], b.keys[k][col], pKey
					spec.Exec = func(s *runtime.Store) error {
						bx, by := s.MustGet(x), s.MustGet(y)
						if bx.Cols != by.Rows {
							return fmt.Errorf("dsarray: block inner dims %d vs %d", bx.Cols, by.Rows)
						}
						bo := dataset.NewBlock(dataset.BlockID{}, bx.Rows, by.Cols)
						for i := int64(0); i < bx.Rows; i++ {
							for kk := int64(0); kk < bx.Cols; kk++ {
								v := bx.At(i, kk)
								if v == 0 {
									continue
								}
								for j := int64(0); j < by.Cols; j++ {
									bo.Set(i, j, bo.At(i, j)+v*by.At(kk, j))
								}
							}
						}
						s.Put(o, bo)
						return nil
					}
				}
				a.ctx.wf.AddTask("matmul_func", spec,
					dag.Param{Data: a.keys[r][k], Dir: dag.In},
					dag.Param{Data: b.keys[k][col], Dir: dag.In},
					dag.Param{Data: pKey, Dir: dag.Out})
				partials = append(partials, pKey)
			}
			if err := a.ctx.reduceInto(partials, out.keys[r][col], outPart, r, col); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// reduceInto emits a binary add_func tree combining partials into dst.
func (c *Context) reduceInto(partials []string, dst string, part dataset.Partition, r, col int64) error {
	if len(partials) <= 1 {
		return nil // single partial already written to dst
	}
	rows, cols, err := part.BlockShape(r, col)
	if err != nil {
		return err
	}
	for len(partials) > 1 {
		var next []string
		for i := 0; i < len(partials); i += 2 {
			if i+1 == len(partials) {
				next = append(next, partials[i])
				continue
			}
			o := dst
			if len(partials) > 2 {
				o = c.fresh("s")
				c.wf.SetSize(o, float64(rows*cols*dataset.ElemSize))
			}
			spec := runtime.TaskSpec{Profile: elementwiseProfile(rows, cols, 2)}
			if c.materialize {
				x, y, oKey := partials[i], partials[i+1], o
				spec.Exec = func(s *runtime.Store) error {
					bx, by := s.MustGet(x), s.MustGet(y)
					bo := dataset.NewBlock(dataset.BlockID{}, bx.Rows, bx.Cols)
					for j := range bo.Data {
						bo.Data[j] = bx.Data[j] + by.Data[j]
					}
					s.Put(oKey, bo)
					return nil
				}
			}
			c.wf.AddTask("add_func", spec,
				dag.Param{Data: partials[i], Dir: dag.In},
				dag.Param{Data: partials[i+1], Dir: dag.In},
				dag.Param{Data: o, Dir: dag.Out})
			next = append(next, o)
		}
		partials = next
	}
	return nil
}

// Sum reduces the whole array to a scalar (stored under the returned key):
// one partial-sum task per block, then a serial combine task.
func (a *Array) Sum() (string, error) {
	var partials []string
	for r := int64(0); r < a.part.GridRows; r++ {
		for col := int64(0); col < a.part.GridCols; col++ {
			rows, cols, err := a.part.BlockShape(r, col)
			if err != nil {
				return "", err
			}
			p := a.ctx.fresh("psum")
			a.ctx.wf.SetSize(p, dataset.ElemSize)
			prof := elementwiseProfile(rows, cols, 1)
			prof.BytesOut = dataset.ElemSize
			spec := runtime.TaskSpec{Profile: prof}
			if a.ctx.materialize {
				x, o := a.keys[r][col], p
				spec.Exec = func(s *runtime.Store) error {
					bx := s.MustGet(x)
					bo := dataset.NewBlock(dataset.BlockID{}, 1, 1)
					for _, v := range bx.Data {
						bo.Data[0] += v
					}
					s.Put(o, bo)
					return nil
				}
			}
			a.ctx.wf.AddTask("block_sum", spec,
				dag.Param{Data: a.keys[r][col], Dir: dag.In},
				dag.Param{Data: p, Dir: dag.Out})
			partials = append(partials, p)
		}
	}
	outKey := a.ctx.fresh("total")
	a.ctx.wf.SetSize(outKey, dataset.ElemSize)
	params := make([]dag.Param, 0, len(partials)+1)
	for _, p := range partials {
		params = append(params, dag.Param{Data: p, Dir: dag.In})
	}
	params = append(params, dag.Param{Data: outKey, Dir: dag.Out})
	spec := runtime.TaskSpec{Profile: costmodel.Profile{
		Kernel:    costmodel.KernelGeneric,
		SerialOps: float64(len(partials)) * 50,
	}}
	if a.ctx.materialize {
		ps, o := partials, outKey
		spec.Exec = func(s *runtime.Store) error {
			bo := dataset.NewBlock(dataset.BlockID{}, 1, 1)
			for _, p := range ps {
				bo.Data[0] += s.MustGet(p).Data[0]
			}
			s.Put(o, bo)
			return nil
		}
	}
	a.ctx.wf.AddTask("combine_sum", spec, params...)
	return outKey, nil
}
