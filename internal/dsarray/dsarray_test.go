package dsarray

import (
	"math"
	"testing"

	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

func smallDS(rows, cols int64) dataset.Dataset {
	return dataset.Dataset{Name: "t", Rows: rows, Cols: cols}
}

// naive materializes the full matrix of an array from a result store.
func naive(t *testing.T, store *runtime.Store, a *Array) [][]float64 {
	t.Helper()
	p := a.Partition()
	out := make([][]float64, p.Rows)
	for i := range out {
		out[i] = make([]float64, p.Cols)
	}
	for r := int64(0); r < p.GridRows; r++ {
		for c := int64(0); c < p.GridCols; c++ {
			b := store.MustGet(a.Key(r, c))
			for i := int64(0); i < b.Rows; i++ {
				for j := int64(0); j < b.Cols; j++ {
					out[r*p.BlockRows+i][c*p.BlockCols+j] = b.At(i, j)
				}
			}
		}
	}
	return out
}

func TestAddScaleTranspose(t *testing.T) {
	ctx := New("ops", true)
	a, err := ctx.Random(smallDS(60, 40), 3, 2, dataset.NewGenerator(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Random(smallDS(60, 40), 3, 2, dataset.NewGenerator(2))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := sum.Scale(2.5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := scaled.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(ctx.Workflow(), runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ma := naive(t, res.Store, a)
	mb := naive(t, res.Store, b)
	mt := naive(t, res.Store, tr)
	if len(mt) != 40 || len(mt[0]) != 60 {
		t.Fatalf("transpose shape = %dx%d, want 40x60", len(mt), len(mt[0]))
	}
	for i := 0; i < 60; i++ {
		for j := 0; j < 40; j++ {
			want := 2.5 * (ma[i][j] + mb[i][j])
			if math.Abs(mt[j][i]-want) > 1e-9 {
				t.Fatalf("t[%d][%d] = %v, want %v", j, i, mt[j][i], want)
			}
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	ctx := New("mm", true)
	a, err := ctx.Random(smallDS(48, 36), 3, 3, dataset.NewGenerator(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Random(smallDS(36, 24), 3, 2, dataset.NewGenerator(4))
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.MatMul(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(ctx.Workflow(), runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ma, mb, mc := naive(t, res.Store, a), naive(t, res.Store, b), naive(t, res.Store, c)
	for i := 0; i < 48; i++ {
		for j := 0; j < 24; j++ {
			var want float64
			for k := 0; k < 36; k++ {
				want += ma[i][k] * mb[k][j]
			}
			if math.Abs(mc[i][j]-want) > 1e-6 {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, mc[i][j], want)
			}
		}
	}
}

func TestMatMulDAGStructure(t *testing.T) {
	// Metadata-only context at paper scale: dislib task structure.
	ctx := New("mm-sim", false)
	a, err := ctx.Random(dataset.MatmulSmall, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Random(dataset.MatmulSmall, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.MatMul(b); err != nil {
		t.Fatal(err)
	}
	counts := ctx.Workflow().Graph.CountByName()
	if counts["matmul_func"] != 64 || counts["add_func"] != 48 {
		t.Fatalf("counts = %v, want 64 matmul + 48 add (Figure 6b)", counts)
	}
	// The workflow simulates on the cluster.
	res, err := runtime.RunSim(ctx.Workflow(), runtime.SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestSum(t *testing.T) {
	ctx := New("sum", true)
	a, err := ctx.Random(smallDS(50, 20), 5, 2, dataset.NewGenerator(5))
	if err != nil {
		t.Fatal(err)
	}
	key, err := a.Sum()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(ctx.Workflow(), runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, row := range naive(t, res.Store, a) {
		for _, v := range row {
			want += v
		}
	}
	got := res.Store.MustGet(key).Data[0]
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestShapeErrors(t *testing.T) {
	ctx := New("err", false)
	a, _ := ctx.Random(smallDS(40, 40), 2, 2, nil)
	b, _ := ctx.Random(smallDS(40, 20), 2, 2, nil)
	if _, err := a.Add(b); err == nil {
		t.Error("mismatched Add accepted")
	}
	c, _ := ctx.Random(smallDS(30, 40), 3, 2, nil)
	if _, err := a.MatMul(c); err == nil {
		t.Error("mismatched MatMul accepted")
	}
}

func TestMaterializationBudget(t *testing.T) {
	ctx := New("budget", true)
	ctx.SetBudget(1000)
	if _, err := ctx.Random(smallDS(1000, 1000), 2, 2, nil); err == nil {
		t.Error("over-budget materialization accepted")
	}
}

func TestRaggedOps(t *testing.T) {
	// 50x50 over 3x3 grid: ragged blocks through a full expression chain.
	ctx := New("ragged", true)
	a, err := ctx.Random(smallDS(50, 50), 3, 3, dataset.NewGenerator(6))
	if err != nil {
		t.Fatal(err)
	}
	at, err := a.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	gram, err := at.MatMul(a) // aᵀ·a is symmetric PSD
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(ctx.Workflow(), runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := naive(t, res.Store, gram)
	for i := range g {
		if g[i][i] <= 0 {
			t.Fatalf("gram diagonal %d = %v, want positive", i, g[i][i])
		}
		for j := range g[i] {
			if math.Abs(g[i][j]-g[j][i]) > 1e-6 {
				t.Fatalf("gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
}
