package costmodel

import (
	"math"
	"testing"
)

func TestDefaultParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.SerialRate = 0 },
		func(p *Params) { p.PCIeBandwidth = -1 },
		func(p *Params) { p.GPUMemBytes = math.NaN() },
		func(p *Params) { p.SharedBandwidth = math.Inf(1) },
		func(p *Params) { p.PCIeLatency = -1e-6 },
		func(p *Params) { p.SchedFIFO = math.NaN() },
		func(p *Params) { p.SoloThreadSpeedup = 0 },
		func(p *Params) { p.Kernels[KernelMatmul].GPURate = 0 },
		func(p *Params) { p.Kernels[KernelKMeans].SatThreads = -5 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}
