// Package costmodel derives per-stage service demands for simulated task
// execution on a heterogeneous CPU-GPU cluster.
//
// The model replaces the paper's physical testbed (NVIDIA K80 GPUs over PCIe
// 3.0 in the BSC Minotauro cluster) with an analytic device model. It
// produces, for a task profile, the *pure* execution times on dedicated
// resources — the serial fraction, the parallel fraction on a CPU core or a
// GPU, CPU-side (de)serialization — plus the byte volumes that the
// discrete-event simulation then pushes through contended links (PCIe, node
// disks, NICs, the shared GPFS backend). Contention is therefore simulated,
// not modeled analytically, exactly like the paper's distinction between
// task user code metrics and data-movement/parallel-task metrics (§4.2).
//
// GPU parallel-fraction time uses a saturation ("occupancy") form:
//
//	t_gpu = launch + ParallelOps / (GPURate · occ),   occ = T/(T+T_sat)
//
// where T is the thread-level parallelism the kernel exposes. Small kernels
// under-utilize the SIMT width, so the GPU speedup over CPU grows with block
// size until it saturates — reproducing the paper's Figure 7 ("speedups
// obtained in the parallel fraction scale with the block size") and
// Figure 8 (matmul_func reaching ≈21×). Per-kernel effective rates encode
// roofline (arithmetic-intensity) differences between kernels: the
// communication-bound add_func never wins on GPU, the compute-bound
// matmul_func wins big, and K-means' partial_sum sits in between.
package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// DeviceKind selects the processor type a task's parallel fraction runs on.
// It corresponds to the paper's "processor type" factor (Table 1, factor f).
type DeviceKind int

const (
	// CPU runs the parallel fraction single-threaded on the owning core
	// (the paper's recommended 1-task-per-core configuration, §3.3).
	CPU DeviceKind = iota
	// GPU offloads the parallel fraction to a GPU device; the serial
	// fraction and (de)serialization still run on the owning CPU core.
	GPU
)

func (d DeviceKind) String() string {
	switch d {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		// Unreachable for valid kinds; only a corrupted value formats.
		return fmt.Sprintf("DeviceKind(%d)", int(d)) //wfsimlint:allow hotalloc
	}
}

// Kernel identifies the computational kernel class of a task, selecting the
// calibrated per-kernel rates. Distinct kernels have distinct arithmetic
// intensities and therefore distinct effective device throughputs.
type Kernel int

const (
	// KernelMatmul is dislib's matmul_func: O(N³) dense block multiply,
	// compute-bound, high GPU gain (Figure 8 left).
	KernelMatmul Kernel = iota
	// KernelAdd is dislib's add_func: O(N²) block accumulate,
	// bandwidth-bound, communication dominates on GPU (Figure 8 right).
	KernelAdd
	// KernelKMeans is dislib's partial_sum: O(M·N·K²) distance/assignment
	// step with a serial O(M·K) bookkeeping fraction (Figures 1, 7b, 9a).
	KernelKMeans
	// KernelFMA is the COMPSs Fused-Multiply-Add matmul variant
	// (Figure 12); same complexity class as KernelMatmul with a slightly
	// different constant factor.
	KernelFMA
	// KernelGeneric is for user-defined tasks outside the paper's set.
	KernelGeneric

	numKernels
)

func (k Kernel) String() string {
	switch k {
	case KernelMatmul:
		return "matmul_func"
	case KernelAdd:
		return "add_func"
	case KernelKMeans:
		return "partial_sum"
	case KernelFMA:
		return "fma_func"
	case KernelGeneric:
		return "generic"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Profile is the analytic cost profile of one task: everything the
// simulator needs to know about the task's resource demands. Application
// packages (internal/apps/...) construct profiles from block dimensions.
type Profile struct {
	Kernel Kernel

	// SerialOps is the size of the serial (single-threaded, CPU-only)
	// fraction of the task user code, in abstract scalar operations
	// executed at Params.SerialRate.
	SerialOps float64

	// ParallelOps is the size of the parallelizable fraction, in
	// floating-point operations executed at the kernel's device rate.
	ParallelOps float64

	// Threads is the thread-level parallelism the kernel exposes (e.g.
	// N² for a block matmul, M·K for the K-means distance kernel). It
	// drives GPU occupancy.
	Threads float64

	// BytesIn and BytesOut are the host-to-device and device-to-host
	// transfer volumes for GPU execution (CPU-GPU communication stage).
	BytesIn, BytesOut float64

	// ReadBytes and WriteBytes are the storage volumes deserialized
	// before and serialized after the user code.
	ReadBytes, WriteBytes float64

	// DeviceMemBytes is the peak GPU memory footprint (inputs + outputs +
	// intermediates). Exceeding the GPU memory is the paper's GPU OOM.
	DeviceMemBytes float64

	// HostMemBytes is the peak host RAM footprint of the task.
	HostMemBytes float64
}

// KernelParams holds the calibrated effective rates for one kernel class.
type KernelParams struct {
	// CPURate is the effective parallel-fraction throughput on one CPU
	// core (ops/s): the vectorized NumPy-style single-core rate, already
	// discounted for the kernel's memory-boundedness.
	CPURate float64
	// GPURate is the saturated effective throughput on one GPU (ops/s).
	GPURate float64
	// SatThreads is the occupancy half-saturation constant: with
	// Threads == SatThreads the GPU reaches half its saturated rate.
	SatThreads float64
}

// Params gathers every calibrated constant of the simulated testbed. The
// default values model the paper's Minotauro configuration; each constant's
// comment states the figure it was calibrated against.
type Params struct {
	// SerialRate is the CPU-core rate for serial-fraction ops (ops/s).
	// Serial fractions are interpreter-level code in the paper's Python
	// stack, orders of magnitude slower than vectorized kernels.
	SerialRate float64

	// GPULaunch is the fixed kernel-launch + driver overhead per parallel
	// fraction executed on a GPU (seconds).
	GPULaunch float64

	// PCIeBandwidth / PCIeLatency model the per-node PCIe 3.0 bus shared
	// by the node's GPUs (bytes/s, seconds per transfer).
	PCIeBandwidth float64
	PCIeLatency   float64

	// GPUMemBytes is the memory capacity of one GPU device (the K80's
	// 12 GB; the OOM threshold in Figures 7, 9a and §5.3).
	GPUMemBytes float64

	// NodeRAMBytes is the host memory per node (128 GB on Minotauro).
	NodeRAMBytes float64

	// DeserRate / SerRate are the CPU-side decode/encode rates for data
	// (de)serialization (bytes/s per core), on top of storage I/O.
	DeserRate float64
	SerRate   float64

	// DiskBandwidth / DiskLatency model one node-local disk.
	DiskBandwidth float64
	DiskLatency   float64

	// SharedBandwidth / SharedLatency model the shared GPFS backend: a
	// single aggregate pipe all nodes contend on, plus per-access latency
	// (network round-trip + metadata). Shared disk being slower and more
	// contention-sensitive than local disk is Observation O5/O6 territory.
	SharedBandwidth float64
	SharedLatency   float64

	// NICBandwidth / NICLatency model one node's network interface, used
	// for peer-to-peer block fetches under the local-disk architecture.
	NICBandwidth float64
	NICLatency   float64

	// SchedFIFO / SchedLocality are the master-side per-decision service
	// times of the two scheduling policies (§3.2: generation order is
	// cheap, data locality pays a placement search).
	SchedFIFO     float64
	SchedLocality float64

	// SchedLIFO / SchedRandom are the per-decision base costs of the two
	// ablation policies. LIFO pops the other end of the same ring as FIFO
	// (near-identical cost); Random replaces the least-loaded scan with a
	// single PRNG draw (cheapest of all). They are deliberately distinct
	// constants: the ext6 overhead sweep distinguishes policies by cost,
	// and aliasing them to SchedFIFO (the pre-zoo bug) collapsed three
	// policies onto one service time.
	SchedLIFO   float64
	SchedRandom float64

	// SchedHEFT / SchedBLevel / SchedMinMin are the base per-decision
	// costs of the lookahead policies, on top of which the per-decision
	// model adds queue- and cluster-dependent terms:
	//
	//	cost = SchedOverheadScale × (base
	//	        + SchedPerRank × readyQueueLen   [rank/priority scan]
	//	        + SchedPerNode × numNodes)       [per-candidate EFT scan]
	//
	// b-level pays no per-node term: its placement is the same
	// least-loaded scan the cheap policies use, while HEFT and min-min
	// evaluate an earliest-finish-time estimate on every candidate node.
	// Calibrated against Beránek et al.'s measured scheduler runtimes
	// (single-digit ms per decision for HEFT-class schedulers at modest
	// cluster sizes, tens of µs for queue pops).
	SchedHEFT   float64
	SchedBLevel float64
	SchedMinMin float64

	// SchedWorkSteal is the per-decision cost of the work-stealing
	// discipline: deque pops are near-free and the steal scan is
	// amortized, so this sits below every centralized policy — the
	// decentralized-runtime end of the Dask-overheads spectrum.
	SchedWorkSteal float64

	// SchedPerRank / SchedPerNode are the marginal per-decision costs of
	// scanning one ready-queue entry (priority comparison) and one
	// candidate node (EFT evaluation) respectively.
	SchedPerRank float64
	SchedPerNode float64

	// SchedOverheadScale multiplies every policy's per-decision master
	// service time. 1 is the calibrated testbed; 0 is the "free
	// scheduler" limit in which lookahead quality is all that matters;
	// large values model a slow master (interpreter-bound COMPSs/Dask
	// runtimes at fine task granularity). This is the x-axis of the ext6
	// ranking-flip study.
	SchedOverheadScale float64

	// SoloThreadSpeedup is the multi-threaded speedup a CPU task's
	// vectorized kernel achieves when it is the only task at its DAG
	// level (NumPy/BLAS spread over the node's 16 otherwise-idle cores
	// — dgemm-class kernels scale near-linearly). It produces the paper's §5.3 drop of the
	// parallel-task time at the maximum block size.
	SoloThreadSpeedup float64

	// Kernels holds the per-kernel calibrated rates.
	Kernels [numKernels]KernelParams
}

// DefaultParams returns the calibrated testbed model. Calibration targets
// are the paper's headline shapes (see DESIGN.md §3 and
// internal/experiments/calibration_test.go):
//
//   - Figure 1: K-means parallel-fraction speedup ≈5.7×, user-code ≈1.24×,
//     parallel-tasks < 1× (GPU loses end-to-end at 256 tasks).
//   - Figure 8: matmul_func speedup grows with block size to ≈21×; add_func
//     stays below 1×.
//   - Figure 9a: user-code speedup grows with #clusters and saturates ≈8×.
func DefaultParams() Params {
	p := Params{
		SerialRate: 5e7,

		GPULaunch: 300e-6,
		// Effective host<->device copy bandwidth. PCIe 3.0 x16 line rate
		// is ~12 GB/s, but the paper's stack (CuPy over pageable NumPy
		// buffers) achieves a fraction of it; 2.5 GB/s reproduces the
		// communication-dominated add_func of Figure 8 and the
		// user-code-vs-parallel-fraction speedup gap of Figure 7a.
		PCIeBandwidth: 2.5e9,
		PCIeLatency:   25e-6,
		GPUMemBytes:   12 * 1e9,
		NodeRAMBytes:  128 << 30, // 128 GiB: fits the 100 GB K-means block at 1x1, not the 10 GB × 1000-cluster footprint (Fig 9a)

		DeserRate: 1.4e9,
		SerRate:   1.1e9,

		DiskBandwidth: 550e6, // node-local SATA/SAS array
		DiskLatency:   0.8e-3,

		// GPFS backend aggregate: calibrated against Figure 1's
		// parallel-task inversion (−1.20×) — the shared-disk I/O floor
		// sets how much of the GPU's 32-slot serialization is exposed —
		// and consistent with the paper's finding that data
		// (de-)serialization dominates storage I/O as the critical
		// bottleneck (§5.1).
		SharedBandwidth: 1.25e9,
		SharedLatency:   4e-3,

		NICBandwidth: 2.5e9, // QDR InfiniBand-class per-node
		NICLatency:   80e-6,

		SchedFIFO:     0.35e-3,
		SchedLocality: 1.6e-3,

		SchedLIFO:   0.32e-3,
		SchedRandom: 0.25e-3,

		SchedHEFT:      0.9e-3,
		SchedBLevel:    0.55e-3,
		SchedMinMin:    0.7e-3,
		SchedWorkSteal: 0.08e-3,
		SchedPerRank:   0.012e-3,
		SchedPerNode:   0.025e-3,

		SchedOverheadScale: 1,

		SoloThreadSpeedup: 16,
	}
	p.Kernels[KernelMatmul] = KernelParams{
		// Single-core dgemm ≈ 4 GFLOP/s; K80 effective dgemm ≈ 90
		// GFLOP/s ⇒ saturated speedup ≈ 22.5×, hit at the largest
		// non-OOM block (2048 MB, N=16384, occ ≈ 0.95 ⇒ ≈21×, Fig 8).
		CPURate: 4e9, GPURate: 9e10, SatThreads: 1.5e7,
	}
	p.Kernels[KernelAdd] = KernelParams{
		// Streaming add: ~24 bytes per FLOP, bandwidth-bound on both
		// devices. CPU ≈ 10 GB/s / 24 B; GPU ≈ high, but the PCIe
		// transfer (simulated separately) dominates ⇒ GPU loses (Fig 8).
		CPURate: 5e8, GPURate: 2e10, SatThreads: 1.5e7,
	}
	p.Kernels[KernelKMeans] = KernelParams{
		// Pairwise-distance kernel: memory-bound on GPU (K80 ratio ≈
		// 9.2× saturated). SatThreads tuned so that at K=10 clusters and
		// M≈48828 rows (10 GB / 256 tasks) occupancy ≈ 0.62, giving the
		// 5.69× parallel-fraction speedup of Figure 1.
		CPURate: 1.6e9, GPURate: 1.472e10, SatThreads: 3.0e5,
	}
	p.Kernels[KernelFMA] = KernelParams{
		// FMA matmul variant (Figure 12): same class as matmul_func,
		// marginally better GPU utilization of fused pipes.
		CPURate: 4.2e9, GPURate: 9.5e10, SatThreads: 1.4e7,
	}
	p.Kernels[KernelGeneric] = KernelParams{
		CPURate: 2e9, GPURate: 3e10, SatThreads: 5e6,
	}
	return p
}

// Occupancy returns the fraction of a GPU's saturated rate a kernel with
// the given thread parallelism achieves: T/(T+sat).
func Occupancy(threads, sat float64) float64 {
	if threads <= 0 {
		return 0
	}
	return threads / (threads + sat)
}

// ErrGPUOOM is returned when a task's device footprint exceeds GPU memory,
// matching the paper's "GPU OOM" chart annotations.
var ErrGPUOOM = errors.New("costmodel: task footprint exceeds GPU memory")

// ErrHostOOM is returned when a task's host footprint exceeds node RAM
// (the "CPU GPU OOM" annotation in Figure 9a at 10 GB blocks × 1000
// clusters).
var ErrHostOOM = errors.New("costmodel: task footprint exceeds node RAM")

// CheckMemory validates the task fits on the chosen device. The host check
// applies to both device kinds (the block must be deserialized into host
// RAM either way); the device check applies only to GPU execution.
func (p *Params) CheckMemory(prof Profile, dev DeviceKind) error {
	if prof.HostMemBytes > p.NodeRAMBytes {
		return ErrHostOOM
	}
	if dev == GPU && prof.DeviceMemBytes > p.GPUMemBytes {
		return ErrGPUOOM
	}
	return nil
}

// SerialTime returns the serial-fraction execution time (always on a CPU
// core, regardless of device kind — §3.3).
func (p *Params) SerialTime(prof Profile) float64 {
	return prof.SerialOps / p.SerialRate
}

// ParallelTime returns the parallel-fraction execution time on the given
// device, excluding CPU-GPU communication (which the simulator performs on
// the contended PCIe link).
func (p *Params) ParallelTime(prof Profile, dev DeviceKind) float64 {
	if prof.ParallelOps == 0 {
		return 0
	}
	k := p.Kernels[prof.Kernel]
	switch dev {
	case CPU:
		return prof.ParallelOps / k.CPURate
	case GPU:
		occ := Occupancy(prof.Threads, k.SatThreads)
		if occ <= 0 {
			occ = 1e-9
		}
		return p.GPULaunch + prof.ParallelOps/(k.GPURate*occ)
	default:
		// Programming-error path: the panic message formats only when the
		// simulation is already dead.
		panic(fmt.Sprintf("costmodel: unknown device kind %d", dev)) //wfsimlint:allow hotalloc
	}
}

// CommBytes returns the total CPU-GPU transfer volume for GPU execution
// (zero for CPU execution: no device boundary is crossed).
func (p *Params) CommBytes(prof Profile, dev DeviceKind) float64 {
	if dev != GPU {
		return 0
	}
	return prof.BytesIn + prof.BytesOut
}

// CommTimeUncontended returns the CPU-GPU communication time assuming a
// dedicated PCIe bus: two transfers' latency plus the volume at line rate.
// The simulator uses the link model instead; this helper exists for
// analytic single-task comparisons (Figures 1, 8, 9a report per-task
// averages where PCIe contention is negligible).
func (p *Params) CommTimeUncontended(prof Profile, dev DeviceKind) float64 {
	b := p.CommBytes(prof, dev)
	if b == 0 {
		return 0
	}
	return 2*p.PCIeLatency + b/p.PCIeBandwidth
}

// DeserTime returns the CPU-side decode time for the task's input bytes
// (storage I/O is simulated separately on the storage links).
func (p *Params) DeserTime(prof Profile) float64 {
	return prof.ReadBytes / p.DeserRate
}

// SerTime returns the CPU-side encode time for the task's output bytes.
func (p *Params) SerTime(prof Profile) float64 {
	return prof.WriteBytes / p.SerRate
}

// UserCodeTimeUncontended returns the full task-user-code time (serial +
// parallel + CPU-GPU communication) on a dedicated node: the quantity the
// paper's "Usr. Code" speedup charts compare.
func (p *Params) UserCodeTimeUncontended(prof Profile, dev DeviceKind) float64 {
	return p.SerialTime(prof) + p.ParallelTime(prof, dev) + p.CommTimeUncontended(prof, dev)
}

// Speedup returns t_cpu/t_gpu for the given per-device time function — the
// paper's "GPU speedup over CPU" metric. Values below 1 mean the GPU loses
// (rendered as negative speedup in the paper's Figure 1).
func Speedup(tCPU, tGPU float64) float64 {
	if tGPU == 0 {
		return 0
	}
	return tCPU / tGPU
}

// Validate checks every calibrated constant is physically meaningful
// (positive rates, positive capacities). Custom Params should be validated
// before simulation; DefaultParams always validates.
func (p *Params) Validate() error {
	check := func(name string, v float64) error {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("costmodel: %s = %v, must be positive and finite", name, v)
		}
		return nil
	}
	// Ordered slices, not map literals: which violation is reported when
	// several constants are invalid must not depend on map iteration
	// order (wfsimlint:maporder would flag the map form).
	positive := []struct {
		name string
		v    float64
	}{
		{"SerialRate", p.SerialRate},
		{"GPULaunch", p.GPULaunch},
		{"PCIeBandwidth", p.PCIeBandwidth},
		{"GPUMemBytes", p.GPUMemBytes},
		{"NodeRAMBytes", p.NodeRAMBytes},
		{"DeserRate", p.DeserRate},
		{"SerRate", p.SerRate},
		{"DiskBandwidth", p.DiskBandwidth},
		{"SharedBandwidth", p.SharedBandwidth},
		{"NICBandwidth", p.NICBandwidth},
		{"SoloThreadSpeedup", p.SoloThreadSpeedup},
	}
	for _, c := range positive {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	nonNegative := []struct {
		name string
		v    float64
	}{
		{"PCIeLatency", p.PCIeLatency},
		{"DiskLatency", p.DiskLatency},
		{"SharedLatency", p.SharedLatency},
		{"NICLatency", p.NICLatency},
		{"SchedFIFO", p.SchedFIFO},
		{"SchedLocality", p.SchedLocality},
		{"SchedLIFO", p.SchedLIFO},
		{"SchedRandom", p.SchedRandom},
		{"SchedHEFT", p.SchedHEFT},
		{"SchedBLevel", p.SchedBLevel},
		{"SchedMinMin", p.SchedMinMin},
		{"SchedWorkSteal", p.SchedWorkSteal},
		{"SchedPerRank", p.SchedPerRank},
		{"SchedPerNode", p.SchedPerNode},
		{"SchedOverheadScale", p.SchedOverheadScale},
	}
	for _, c := range nonNegative {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("costmodel: %s = %v, must be non-negative and finite", c.name, c.v)
		}
	}
	for k := range p.Kernels {
		kp := p.Kernels[k]
		if kp.CPURate <= 0 || kp.GPURate <= 0 || kp.SatThreads < 0 {
			return fmt.Errorf("costmodel: kernel %v has invalid rates %+v", Kernel(k), kp)
		}
	}
	return nil
}

// ModernParams returns a forward-looking testbed model (§5.5.2 of the
// paper discusses how newer architectures would shift its findings):
// A100-class accelerators on an NVLink-class host interconnect, 40 GB of
// device memory, faster hosts and a modern parallel file system. Used by
// the ext2 experiment to separate findings that are architecture-bound
// (OOM boundaries, communication penalties) from those that are
// fundamental (the serial-fraction Amdahl ceiling, the task-parallelism
// asymmetry).
func ModernParams() Params {
	p := DefaultParams()
	// Host: modern cores and serialization stacks (Arrow-style) are a few
	// times faster.
	p.SerialRate *= 3
	p.DeserRate *= 4
	p.SerRate *= 4
	// Interconnect: NVLink-class effective copy bandwidth.
	p.PCIeBandwidth = 60e9
	p.PCIeLatency = 10e-6
	// Device: A100-class memory and throughput.
	p.GPUMemBytes = 40e9
	p.GPULaunch = 100e-6
	for k := range p.Kernels {
		p.Kernels[k].CPURate *= 3  // modern vectorized cores
		p.Kernels[k].GPURate *= 10 // K80 -> A100-class
		p.Kernels[k].SatThreads *= 4
	}
	// Storage: modern parallel file system and NVMe-class local disks.
	p.SharedBandwidth = 12e9
	p.SharedLatency = 0.5e-3
	p.DiskBandwidth = 3e9
	p.DiskLatency = 0.1e-3
	p.NICBandwidth = 12e9
	return p
}
