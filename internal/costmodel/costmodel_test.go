package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOccupancyBounds(t *testing.T) {
	if got := Occupancy(0, 100); got != 0 {
		t.Fatalf("Occupancy(0) = %v, want 0", got)
	}
	if got := Occupancy(100, 100); got != 0.5 {
		t.Fatalf("Occupancy(sat) = %v, want 0.5", got)
	}
	if got := Occupancy(1e18, 100); got <= 0.999 {
		t.Fatalf("Occupancy(huge) = %v, want ≈1", got)
	}
	f := func(threads, sat float64) bool {
		threads = math.Abs(threads)
		sat = math.Abs(sat) + 1
		o := Occupancy(threads, sat)
		return o >= 0 && o <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyMonotone(t *testing.T) {
	prev := -1.0
	for thr := 1.0; thr < 1e12; thr *= 3 {
		o := Occupancy(thr, 1e6)
		if o <= prev {
			t.Fatalf("occupancy not strictly increasing at threads=%v", thr)
		}
		prev = o
	}
}

func TestParallelTimeCPUProportional(t *testing.T) {
	p := DefaultParams()
	a := Profile{Kernel: KernelMatmul, ParallelOps: 1e9, Threads: 1e6}
	b := a
	b.ParallelOps = 2e9
	ta, tb := p.ParallelTime(a, CPU), p.ParallelTime(b, CPU)
	if math.Abs(tb-2*ta) > 1e-12 {
		t.Fatalf("CPU time not proportional to ops: %v vs %v", ta, tb)
	}
}

func TestGPUSpeedupGrowsWithThreads(t *testing.T) {
	// The core mechanism behind "parallel-fraction speedups scale with
	// block size" (Figure 7): with ops ∝ threads^1.5 (matmul-like), GPU
	// speedup must increase monotonically with block size.
	p := DefaultParams()
	prev := 0.0
	for n := 1024.0; n <= 32768; n *= 2 {
		prof := Profile{Kernel: KernelMatmul, ParallelOps: 2 * n * n * n, Threads: n * n}
		s := Speedup(p.ParallelTime(prof, CPU), p.ParallelTime(prof, GPU))
		if s <= prev {
			t.Fatalf("speedup not increasing at N=%v: %v <= %v", n, s, prev)
		}
		prev = s
	}
	if prev < 15 || prev > 30 {
		t.Fatalf("saturated matmul speedup = %v, want ≈21× band [15,30]", prev)
	}
}

func TestAddFuncGPUNeverWins(t *testing.T) {
	// Figure 8 right: add_func user code is communication-dominated; the
	// GPU loses at every block size.
	p := DefaultParams()
	for n := 2048.0; n <= 32768; n *= 2 {
		prof := Profile{
			Kernel:      KernelAdd,
			ParallelOps: n * n,
			Threads:     n * n,
			BytesIn:     2 * 8 * n * n,
			BytesOut:    8 * n * n,
		}
		s := Speedup(p.UserCodeTimeUncontended(prof, CPU), p.UserCodeTimeUncontended(prof, GPU))
		if s >= 1 {
			t.Fatalf("add_func GPU speedup = %v at N=%v, want < 1", s, n)
		}
	}
}

func TestCheckMemory(t *testing.T) {
	p := DefaultParams()
	small := Profile{DeviceMemBytes: 1e9, HostMemBytes: 1e9}
	if err := p.CheckMemory(small, GPU); err != nil {
		t.Fatalf("small task OOM: %v", err)
	}
	bigDev := Profile{DeviceMemBytes: 24e9, HostMemBytes: 24e9}
	if err := p.CheckMemory(bigDev, GPU); err != ErrGPUOOM {
		t.Fatalf("24 GB device footprint on GPU: err = %v, want ErrGPUOOM", err)
	}
	if err := p.CheckMemory(bigDev, CPU); err != nil {
		t.Fatalf("24 GB host footprint on CPU: err = %v, want nil (fits 128 GB)", err)
	}
	bigHost := Profile{HostMemBytes: 200e9}
	if err := p.CheckMemory(bigHost, CPU); err != ErrHostOOM {
		t.Fatalf("200 GB host footprint: err = %v, want ErrHostOOM", err)
	}
}

func TestSerialAlwaysOnCPU(t *testing.T) {
	p := DefaultParams()
	prof := Profile{Kernel: KernelKMeans, SerialOps: 5e7}
	if got, want := p.SerialTime(prof), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SerialTime = %v, want %v", got, want)
	}
}

func TestCommBytesCPUZero(t *testing.T) {
	p := DefaultParams()
	prof := Profile{BytesIn: 100, BytesOut: 50}
	if got := p.CommBytes(prof, CPU); got != 0 {
		t.Fatalf("CPU CommBytes = %v, want 0", got)
	}
	if got := p.CommBytes(prof, GPU); got != 150 {
		t.Fatalf("GPU CommBytes = %v, want 150", got)
	}
	if p.CommTimeUncontended(prof, CPU) != 0 {
		t.Fatal("CPU comm time nonzero")
	}
}

func TestStringers(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("DeviceKind stringer broken")
	}
	names := map[Kernel]string{
		KernelMatmul: "matmul_func", KernelAdd: "add_func",
		KernelKMeans: "partial_sum", KernelFMA: "fma_func", KernelGeneric: "generic",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kernel(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestSpeedupZeroDenominator(t *testing.T) {
	if Speedup(1, 0) != 0 {
		t.Fatal("Speedup with zero denominator should report 0")
	}
}
