package sim

import (
	"math/rand/v2"
	"testing"
)

// TestArenaReuse round-trips an arena across engines and checks the
// second run executes correctly on recycled storage, that stale handles
// from the first run degrade to no-ops, and that steady-state trials stop
// allocating node slabs.
func TestArenaReuse(t *testing.T) {
	var a Arena
	var staleEvents []Event

	runOne := func(kind QueueKind, n int) {
		e := NewIn(&a)
		e.SetQueueKind(kind)
		rng := rand.New(rand.NewPCG(5, uint64(n)))
		fired := 0
		last := -1.0
		for i := 0; i < n; i++ {
			ev := e.Schedule(rng.Float64()*100, func() {
				if e.Now() < last {
					t.Errorf("out of order: %v after %v", e.Now(), last)
				}
				last = e.Now()
				fired++
			})
			if i%100 == 0 {
				staleEvents = append(staleEvents, ev)
			}
		}
		// Cancel a few through their handles; this-run handles must
		// cancel for real (fired stays below n), covering Cancel against
		// both queue kinds.
		for _, ev := range staleEvents[:len(staleEvents)/2] {
			ev.Cancel()
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Release(&a)
		staleEvents = staleEvents[:0]
	}

	runOne(QueueHeap, 2000)
	if len(a.slabs) == 0 {
		t.Fatal("release retained no slabs")
	}
	slabs := len(a.slabs)
	runOne(QueueLadder, 2000) // same size: must need no new slab chunks
	if len(a.slabs) != slabs {
		t.Fatalf("second run grew slab count %d -> %d despite arena reuse", slabs, len(a.slabs))
	}
	if a.lq == nil {
		t.Fatal("ladder queue was not retained by Release")
	}
	runOne(QueueAuto, 500)
}

// TestArenaCancelSemantics: a handle cancelled in run 1 must not cancel
// the node's reincarnation in run 2 (generation bump on adoption).
func TestArenaCancelSemantics(t *testing.T) {
	var a Arena
	e1 := NewIn(&a)
	ev := e1.Schedule(1, func() {})
	if err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	e1.Release(&a)

	e2 := NewIn(&a)
	fired := false
	e2.Schedule(1, func() { fired = true })
	ev.Cancel() // stale handle from run 1; must be a no-op
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale handle from a released run cancelled a recycled node's new event")
	}
}
