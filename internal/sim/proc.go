package sim

import (
	"iter"
	"sync"
)

// Proc is a simulated process: a sequential function executing in virtual
// time. Procs are created with Engine.Go and may block on Wait,
// Server.Acquire and Link.Transfer. All Proc methods must be called from the
// process's own goroutine.
//
// Procs are coroutines over the engine's dispatch loop: suspending and
// resuming a process is a direct goroutine switch (iter.Pull's coroutine
// machinery), not a channel rendezvous through the Go scheduler. Procs are
// pooled by the engine: when a process function returns, the Proc parks in
// the engine's free list and the next Engine.Go reuses it — its coroutine,
// its pre-bound resume event node, and its warmed-up goroutine stack — so
// spawning a process in steady state allocates nothing and pays no
// goroutine-creation cost.
type Proc struct {
	eng  *Engine
	name string
	fn   func(*Proc)
	ev   event // pre-bound resume/start node, reused across park cycles

	// Coroutine plumbing, bound once per Proc: resume transfers control
	// into the process (from the dispatch loop only), yield transfers it
	// back out, stop tears the coroutine down.
	resume func() (struct{}, bool)
	stop   func()
	yield  func(struct{}) bool

	pooled bool // suspended at its reuse point (in freeProcs), not mid-task
}

// procStopped is the unwind sentinel thrown through a suspended process
// when the engine tears its coroutine down mid-task (deadlocked processes
// at the end of Run). It is recovered at the coroutine's top level.
type procStopped struct{}

// procPool recycles idle process coroutines across engines: spinning up a
// coroutine costs several allocations (iter.Pull's internal state), so an
// engine finishing its run donates its pooled Procs here and the next
// engine adopts them instead of creating fresh ones. Pooled coroutines sit
// suspended at their reuse point; the pool is capped so at most
// procPoolCap idle goroutines exist process-wide, and overflow coroutines
// are stopped outright. The mutex both serializes concurrent engines and
// publishes the donated Proc's state to its adopter.
var procPool struct {
	mu   sync.Mutex
	free []*Proc
}

const procPoolCap = 1024

// adoptProc transfers a pooled coroutine from the global pool to engine e,
// or returns nil when the pool is empty.
func adoptProc(e *Engine) *Proc {
	procPool.mu.Lock()
	var p *Proc
	if k := len(procPool.free); k > 0 {
		p = procPool.free[k-1]
		procPool.free[k-1] = nil
		procPool.free = procPool.free[:k-1]
	}
	procPool.mu.Unlock()
	if p != nil {
		p.eng = e
		p.ev.eng = e
		e.allProcs = append(e.allProcs, p)
	}
	return p
}

// donateProcs moves an exiting engine's idle Procs into the global pool,
// stopping any overflow beyond the pool cap.
func donateProcs(procs []*Proc) {
	procPool.mu.Lock()
	room := procPoolCap - len(procPool.free)
	if room > len(procs) {
		room = len(procs)
	}
	for _, p := range procs[:room] {
		p.eng = nil
		p.ev.eng = nil
		procPool.free = append(procPool.free, p)
	}
	procPool.mu.Unlock()
	for _, p := range procs[room:] {
		p.stop()
	}
}

// Go starts fn as a simulated process at the current virtual time. The name
// is used in diagnostics only. Go may be called both from outside Run (to
// seed the simulation) and from a running process or event callback.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	e.GoAfter(name, 0, fn)
}

// GoAfter starts fn as a simulated process after delay seconds of virtual
// time. The process's start node takes its schedule position now, so among
// same-instant events it orders exactly where a Wait of the same delay
// issued at this point would.
func (e *Engine) GoAfter(name string, delay float64, fn func(p *Proc)) {
	var p *Proc
	if k := len(e.freeProcs); k > 0 {
		p = e.freeProcs[k-1]
		e.freeProcs[k-1] = nil
		e.freeProcs = e.freeProcs[:k-1]
	} else if p = adoptProc(e); p == nil {
		p = &Proc{eng: e}
		p.ev.eng = e
		p.ev.index = -1
		p.ev.proc = p
		p.ev.owned = true
		p.resume, p.stop = iter.Pull(p.run)
		e.allProcs = append(e.allProcs, p)
	}
	p.pooled = false
	p.name, p.fn = name, fn
	e.liveProcs++
	e.schedNode(&p.ev, delay)
}

// run is the process coroutine body: it runs the current function; when the
// function returns the Proc pools itself and suspends until the engine
// either assigns it new work (pool reuse via Go) or stops the coroutine
// (simulation over). A stop that lands while the process is suspended
// mid-task (inside suspend) unwinds the process function with a procStopped
// panic, recovered here.
func (p *Proc) run(yield func(struct{}) bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procStopped); !ok {
				panic(r)
			}
		}
	}()
	p.yield = yield
	for {
		p.fn(p)
		// p.eng is re-read each cycle: a pooled coroutine may be adopted by
		// a different engine between runs.
		e := p.eng
		e.liveProcs--
		p.fn = nil
		p.name = ""
		p.pooled = true
		e.freeProcs = append(e.freeProcs, p)
		if !yield(struct{}{}) {
			return // engine shut down the pool
		}
		// Resumed by a later Go with a fresh fn.
	}
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// suspend returns control to the dispatch loop until this process's own
// wake-up arrives. It must only be called with a wake-up already arranged:
// the process's resume node scheduled (Wait, unpark) or a queue
// registration that will eventually unpark it, otherwise Run reports a
// deadlock.
func (p *Proc) suspend() {
	e := p.eng
	e.parkedProcs++
	if !p.yield(struct{}{}) {
		panic(procStopped{})
	}
	e.parkedProcs--
}

// park blocks the process until another event resumes it via unpark.
func (p *Proc) park() { p.suspend() }

// unpark schedules the process's pre-bound resume node at the current
// instant; when it is dispatched, the dispatch loop switches control to the
// parked process directly. It must be called from the engine side (an event
// callback) or from another process; never from the parked process itself.
// A parked process has no pending node (Wait's node fired before it
// parked), so the node is always free here.
func (p *Proc) unpark() {
	p.eng.schedNode(&p.ev, 0)
}

// Wait advances the process by d seconds of virtual time. d must be
// non-negative; zero is allowed and yields to other events scheduled at the
// same instant.
//
// Fast path: when the resume would fire strictly before every pending
// event, no other event can run during the wait — parking would bounce
// control to the dispatch loop only for it to switch straight back — so
// the clock advances in place, skipping the schedule/park/pop/resume
// cycle (two coroutine switches and a heap push+pop). The strictness
// matters: a pending event at exactly the resume instant holds a smaller
// seq and must run first, so ties take the slow path. Heap regime only;
// the ladder queue has no cheap peek.
func (p *Proc) Wait(d float64) {
	e := p.eng
	if e.lq == nil && d >= 0 && e.ringLive == 0 {
		if t := e.now + d; len(e.hq.h) == 0 || t < e.hq.h[0].at {
			e.now = t
			return
		}
	}
	e.schedNode(&p.ev, d)
	p.suspend()
}
