package sim

// Proc is a simulated process: a sequential function executing in virtual
// time. Procs are created with Engine.Go and may block on Wait,
// Server.Acquire and Link.Transfer. All Proc methods must be called from the
// process's own goroutine.
//
// Procs (and their goroutines and channels) are pooled by the engine: when
// a process function returns, the Proc parks in the engine's free list and
// the next Engine.Go reuses it — its resume channel, its pre-bound resume
// event node, and its warmed-up goroutine stack — so spawning a process in
// steady state allocates nothing and pays no goroutine-creation cost.
type Proc struct {
	eng     *Engine
	name    string
	fn      func(*Proc)
	resume  chan struct{}
	ev      event // pre-bound resume/start node, reused across park cycles
	spawned bool  // goroutine exists (running, parked, or pooled)
}

// Go starts fn as a simulated process at the current virtual time. The name
// is used in diagnostics only. Go may be called both from outside Run (to
// seed the simulation) and from a running process or event callback.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	var p *Proc
	if k := len(e.freeProcs); k > 0 {
		p = e.freeProcs[k-1]
		e.freeProcs[k-1] = nil
		e.freeProcs = e.freeProcs[:k-1]
	} else {
		p = &Proc{eng: e, resume: make(chan struct{})}
		p.ev.eng = e
		p.ev.index = -1
		p.ev.proc = p
		p.ev.owned = true
	}
	p.name, p.fn = name, fn
	e.liveProcs++
	e.schedNode(&p.ev, 0)
}

// begin transfers the baton to p: a fresh process gets its goroutine here
// (the goroutine starts running the process function immediately); a parked
// or pooled one is woken with a single channel send. The caller must block
// right after — on its own resume channel or on engine.done — so exactly
// one goroutine keeps running.
func (p *Proc) begin() {
	if p.spawned {
		p.resume <- struct{}{}
	} else {
		p.spawned = true
		go p.main()
	}
}

// main is the process goroutine: it runs the current function; when the
// function returns, the process keeps the baton, so it continues dispatching
// events, pools itself once the baton moves on, and then sleeps until the
// engine either assigns it new work (pool reuse via Go) or closes the resume
// channel (simulation over).
func (p *Proc) main() {
	e := p.eng
	for {
		p.fn(p)
		e.liveProcs--
		p.fn = nil
		p.name = ""
		next := e.dispatch()
		// Pool p before the handoff: p's goroutine touches no engine state
		// after this point, and a dispatched Go may immediately reuse it.
		e.freeProcs = append(e.freeProcs, p)
		if next != nil {
			next.begin()
		} else {
			e.done <- struct{}{} // simulation over; wake Run
		}
		<-p.resume // reused by a later Go, or woken by close
		if p.fn == nil {
			return // engine shut down the pool
		}
	}
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// waitTurn hands the baton onward until this process's own wake-up arrives.
// It must only be called with a wake-up already arranged: the process's
// resume node scheduled (Wait, unpark) or a queue registration that will
// eventually unpark it, otherwise Run reports a deadlock.
//
// The process keeps dispatching events inline; when the next event belongs
// to another process it wakes that process (one channel send) and blocks
// until a later baton holder dispatches this process's own resume node.
func (p *Proc) waitTurn() {
	e := p.eng
	next := e.dispatch()
	if next == p {
		return // our own node came up: keep running, keep the baton
	}
	if next != nil {
		next.begin()
		<-p.resume // a later holder dispatched our node
		return
	}
	// Queue drained (deadlock: we are still mid-task) or corrupt time.
	// End the simulation and abandon this goroutine, exactly as a parked
	// process with no wake-up would be abandoned.
	e.done <- struct{}{}
	<-p.resume // never signalled: parks forever
}

// park blocks the process until another event resumes it via unpark.
func (p *Proc) park() {
	e := p.eng
	e.parkedProcs++
	p.waitTurn()
	e.parkedProcs--
}

// unpark schedules the process's pre-bound resume node at the current
// instant; when it is dispatched, the baton holder transfers control to the
// parked process directly. It must be called from the engine side (an event
// callback) or from another process; never from the parked process itself.
// A parked process has no pending node (Wait's node fired before it
// parked), so the node is always free here.
func (p *Proc) unpark() {
	p.eng.schedNode(&p.ev, 0)
}

// Wait advances the process by d seconds of virtual time. d must be
// non-negative; zero is allowed and yields to other events scheduled at the
// same instant.
func (p *Proc) Wait(d float64) {
	e := p.eng
	e.schedNode(&p.ev, d)
	e.parkedProcs++
	p.waitTurn()
	e.parkedProcs--
}
