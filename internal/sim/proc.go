package sim

// Proc is a simulated process: a sequential function executing in virtual
// time. Procs are created with Engine.Go and may block on Wait,
// Server.Acquire and Link.Transfer. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
}

// Go starts fn as a simulated process at the current virtual time. The name
// is used in diagnostics only. Go may be called both from outside Run (to
// seed the simulation) and from a running process or event callback.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.liveProcs++
	e.Schedule(0, func() {
		go func() {
			fn(p)
			e.liveProcs--
			e.yield <- struct{}{} // hand control back: process finished
		}()
		<-e.yield // wait until the new process parks or finishes
	})
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// park blocks the process until another event resumes it via unpark. It
// must only be called with a wake-up already arranged (a scheduled event or
// a queue registration), otherwise Run reports a deadlock.
func (p *Proc) park() {
	p.eng.parkedProcs++
	p.eng.yield <- struct{}{} // give control back to the engine
	<-p.resume                // wait to be woken
	p.eng.parkedProcs--
}

// unpark schedules an event at the current instant that transfers control to
// the parked process. It must be called from the engine side (an event
// callback) or from another process; never from the parked process itself.
func (p *Proc) unpark() {
	p.eng.Schedule(0, func() {
		p.resume <- struct{}{} // wake the process
		<-p.eng.yield          // wait until it parks again or finishes
	})
}

// Wait advances the process by d seconds of virtual time. d must be
// non-negative; zero is allowed and yields to other events scheduled at the
// same instant.
func (p *Proc) Wait(d float64) {
	p.eng.Schedule(d, func() {
		p.resume <- struct{}{}
		<-p.eng.yield
	})
	p.eng.parkedProcs++
	p.eng.yield <- struct{}{}
	<-p.resume
	p.eng.parkedProcs--
}
