package sim

import (
	"fmt"
	"math"
)

// completionEpsilon is the residual byte count below which a flow is
// considered finished; it absorbs float64 drift from repeated rate
// recomputation.
const completionEpsilon = 1e-6

// Link is a fluid-flow bandwidth resource: all active transfers progress
// simultaneously, sharing the link's bandwidth equally. Whenever a transfer
// starts or finishes, the per-flow rate is recomputed and the next
// completion is rescheduled. This is the classic fluid ("TCP fair share")
// model used by network/storage simulators; it captures the contention
// effects the paper measures — an abundance of concurrent readers slows
// every reader down — without simulating individual blocks or packets.
//
// Link models PCIe buses, node-local disks, NICs and the shared GPFS
// backend. Latency, if non-zero, is a per-transfer startup delay paid before
// the flow joins the shared pipe (seek/RPC/DMA-setup time); it counts as
// link occupancy for busy-time accounting.
//
// The link owns a single completion event node, moved in place with
// heap.Fix on every membership change (no cancel-and-repush, no dead heap
// entries), and a free list of flow structs, so steady-state transfer
// traffic allocates nothing.
type Link struct {
	eng     *Engine
	name    string
	bw      float64 // bytes per second
	latency float64 // seconds per transfer

	active    []*flow // insertion order: deterministic completion handling
	freeFlows []*flow

	lastUpdate float64
	next       event // owned completion node, on-heap while target != nil
	target     *flow // earliest-finishing active flow; the completion drains it

	bytesMoved float64 // total bytes fully transferred
	transfers  uint64
	busyInt    float64 // ∫ [occupied] dt, occupancy = active flows + latency waits
	busySince  float64 // valid when occ > 0
	occ        int     // active flows + transfers paying their startup latency
}

type flow struct {
	remaining float64
	total     float64
	proc      *Proc
	link      *Link
	join      event // owned node: fires when the startup latency elapses
}

// NewLink creates a link with the given bandwidth (bytes/second) and
// per-transfer latency (seconds). Bandwidth must be positive and finite;
// latency must be non-negative.
func NewLink(e *Engine, name string, bandwidth, latency float64) *Link {
	if bandwidth <= 0 || math.IsInf(bandwidth, 0) || math.IsNaN(bandwidth) {
		panic(fmt.Sprintf("sim: link %q with invalid bandwidth %v", name, bandwidth))
	}
	if latency < 0 || math.IsNaN(latency) {
		panic(fmt.Sprintf("sim: link %q with invalid latency %v", name, latency))
	}
	l := &Link{eng: e, name: name, bw: bandwidth, latency: latency}
	// Pre-size for a few dozen concurrent flows: links on the simulated
	// hot path (the shared storage backend) see whole task waves at once,
	// and growing these under load is measurable allocator traffic.
	l.active = make([]*flow, 0, 32)
	l.freeFlows = make([]*flow, 0, 32)
	l.next.eng = e
	l.next.index = -1
	l.next.owned = true
	l.next.fn = l.complete
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link's total bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.bw }

// Latency returns the per-transfer startup latency in seconds.
func (l *Link) Latency() float64 { return l.latency }

// Active returns the number of flows currently sharing the link.
func (l *Link) Active() int { return len(l.active) }

// BytesMoved returns the total bytes completed over the link.
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// Transfers returns the number of completed transfers.
func (l *Link) Transfers() uint64 { return l.transfers }

// BusyTime returns the total virtual time during which the link was
// occupied: at least one flow active or at least one transfer paying its
// startup latency (a latency-only transfer is real occupancy too).
func (l *Link) BusyTime() float64 {
	b := l.busyInt
	if l.occ > 0 {
		b += l.eng.now - l.busySince
	}
	return b
}

// occupy/vacate maintain the busy-time integral over the link's occupancy
// count (active flows + latency waiters).
func (l *Link) occupy() {
	if l.occ == 0 {
		l.busySince = l.eng.now
	}
	l.occ++
}

func (l *Link) vacate() {
	l.occ--
	if l.occ == 0 {
		l.busyInt += l.eng.now - l.busySince
	}
}

// rate returns the current per-flow rate in bytes/second.
func (l *Link) rate() float64 { return l.bw / float64(len(l.active)) }

// advance applies progress to all active flows for the time elapsed since
// the last update.
func (l *Link) advance() {
	if len(l.active) > 0 {
		progressed := (l.eng.now - l.lastUpdate) * l.rate()
		for _, f := range l.active {
			f.remaining -= progressed
		}
	}
	l.lastUpdate = l.eng.now
}

// getFlow/putFlow recycle flow structs across transfers. A flow's join
// node and its callback are bound once at creation and reused for the
// struct's whole pooled lifetime.
func (l *Link) getFlow(bytes float64, p *Proc) *flow {
	if k := len(l.freeFlows); k > 0 {
		f := l.freeFlows[k-1]
		l.freeFlows[k-1] = nil
		l.freeFlows = l.freeFlows[:k-1]
		f.remaining, f.total, f.proc = bytes, bytes, p
		return f
	}
	f := &flow{remaining: bytes, total: bytes, proc: p, link: l}
	f.join.eng = l.eng
	f.join.index = -1
	f.join.owned = true
	f.join.fn = f.joinLatent
	return f
}

func (l *Link) putFlow(f *flow) {
	f.proc = nil
	l.freeFlows = append(l.freeFlows, f)
}

// retarget points the pending completion event at flow f. All flows drain
// at the same rate, so f stays the earliest finisher until the next
// membership change. The rate is constant between membership changes, so at
// the event instant f's remainder is zero up to float64 drift; complete
// forces it to zero, which guarantees progress even when the delay is too
// small to advance the clock (a tiny residue absorbed by now+delay == now
// would otherwise livelock). The completion node gets a fresh sequence
// number, preserving the event order of the cancel-and-repush protocol this
// replaces.
func (l *Link) retarget(f *flow) {
	delay := f.remaining / l.rate()
	if delay < 0 {
		delay = 0
	}
	l.target = f
	l.eng.fixNode(&l.next, delay)
}

// complete fires when the target flow has drained; it removes the target
// plus any other flow within float64 drift of empty, wakes their processes
// in insertion order, and retargets the earliest remaining flow — found
// during the same removal sweep, not by a second scan.
func (l *Link) complete() {
	if l.target != nil {
		l.target.remaining = 0
	}
	l.target = nil
	l.advance()
	kept := l.active[:0]
	var min *flow
	for _, f := range l.active {
		if f.remaining <= completionEpsilon+1e-12*f.total {
			l.transfers++
			l.bytesMoved += f.total
			f.proc.unpark()
			l.putFlow(f)
			l.vacate()
		} else {
			kept = append(kept, f)
			if min == nil || f.remaining < min.remaining {
				min = f
			}
		}
	}
	for i := len(kept); i < len(l.active); i++ {
		l.active[i] = nil
	}
	l.active = kept
	if min != nil {
		l.retarget(min)
	}
}

// joinNow adds a flow to the shared pipe at the current instant.
func (l *Link) joinNow(f *flow) {
	l.advance()
	l.occupy()
	l.active = append(l.active, f)
	// Incremental min tracking: the new flow preempts the current target
	// only if it finishes strictly earlier; either way the shared rate
	// changed, so the completion event moves.
	if l.target == nil || f.remaining < l.target.remaining {
		l.retarget(f)
	} else {
		l.retarget(l.target)
	}
}

// joinLatent fires when a flow's startup latency elapses: the latency
// occupancy converts into flow occupancy and the flow joins the pipe. It
// runs inline on the dispatch goroutine, so the latency leg costs no
// process handoff.
func (f *flow) joinLatent() {
	f.link.vacate()
	f.link.joinNow(f)
}

// Transfer moves bytes over the link on behalf of process p, blocking in
// virtual time until the transfer completes. Concurrent transfers share the
// bandwidth equally. A zero-byte transfer pays only the latency.
//
// On a link with startup latency the flow's join is a scheduled inline
// event rather than a process wake-up, so the calling process parks exactly
// once per transfer — halving the goroutine handoffs on the hottest
// substrate path. The join event receives the same schedule position the
// process's own latency wake-up would have had, so event ordering (and with
// it the simulation's determinism) is unchanged.
func (l *Link) Transfer(p *Proc, bytes float64) {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("sim: transfer of %v bytes on link %q", bytes, l.name))
	}
	if l.latency > 0 {
		l.occupy()
		if bytes == 0 {
			p.Wait(l.latency)
			l.vacate()
			l.transfers++
			return
		}
		f := l.getFlow(bytes, p)
		l.eng.schedNode(&f.join, l.latency)
		p.park()
		return
	}
	if bytes == 0 {
		l.transfers++
		return
	}
	l.joinNow(l.getFlow(bytes, p))
	p.park()
}
