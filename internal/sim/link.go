package sim

import (
	"fmt"
	"math"
)

// completionEpsilon is the residual byte count below which a flow is
// considered finished; it absorbs float64 drift from repeated rate
// recomputation.
const completionEpsilon = 1e-6

// Link is a fluid-flow bandwidth resource: all active transfers progress
// simultaneously, sharing the link's bandwidth equally. Whenever a transfer
// starts or finishes, the per-flow rate is recomputed and the next
// completion is rescheduled. This is the classic fluid ("TCP fair share")
// model used by network/storage simulators; it captures the contention
// effects the paper measures — an abundance of concurrent readers slows
// every reader down — without simulating individual blocks or packets.
//
// Link models PCIe buses, node-local disks, NICs and the shared GPFS
// backend. Latency, if non-zero, is a per-transfer startup delay paid before
// the flow joins the shared pipe (seek/RPC/DMA-setup time).
type Link struct {
	eng     *Engine
	name    string
	bw      float64 // bytes per second
	latency float64 // seconds per transfer

	active     []*flow // insertion order: deterministic completion handling
	lastUpdate float64
	next       *Event // pending completion event, nil if no active flows
	target     *flow  // the flow the pending completion event drains

	bytesMoved float64 // total bytes fully transferred
	transfers  uint64
	busyInt    float64 // ∫ [active>0] dt
	busySince  float64 // valid when len(active)>0
}

type flow struct {
	remaining float64
	total     float64
	proc      *Proc
}

// NewLink creates a link with the given bandwidth (bytes/second) and
// per-transfer latency (seconds). Bandwidth must be positive and finite;
// latency must be non-negative.
func NewLink(e *Engine, name string, bandwidth, latency float64) *Link {
	if bandwidth <= 0 || math.IsInf(bandwidth, 0) || math.IsNaN(bandwidth) {
		panic(fmt.Sprintf("sim: link %q with invalid bandwidth %v", name, bandwidth))
	}
	if latency < 0 || math.IsNaN(latency) {
		panic(fmt.Sprintf("sim: link %q with invalid latency %v", name, latency))
	}
	return &Link{eng: e, name: name, bw: bandwidth, latency: latency}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link's total bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.bw }

// Latency returns the per-transfer startup latency in seconds.
func (l *Link) Latency() float64 { return l.latency }

// Active returns the number of flows currently sharing the link.
func (l *Link) Active() int { return len(l.active) }

// BytesMoved returns the total bytes completed over the link.
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// Transfers returns the number of completed transfers.
func (l *Link) Transfers() uint64 { return l.transfers }

// BusyTime returns the total virtual time during which at least one flow was
// active on the link.
func (l *Link) BusyTime() float64 {
	b := l.busyInt
	if len(l.active) > 0 {
		b += l.eng.now - l.busySince
	}
	return b
}

// rate returns the current per-flow rate in bytes/second.
func (l *Link) rate() float64 { return l.bw / float64(len(l.active)) }

// advance applies progress to all active flows for the time elapsed since
// the last update.
func (l *Link) advance() {
	if len(l.active) > 0 {
		progressed := (l.eng.now - l.lastUpdate) * l.rate()
		for _, f := range l.active {
			f.remaining -= progressed
		}
	}
	l.lastUpdate = l.eng.now
}

// reschedule cancels any pending completion event and schedules one that
// drains the earliest-finishing active flow. The rate is constant between
// membership changes, so at the event instant that flow's remainder is zero
// up to float64 drift; complete forces it to zero, which guarantees
// progress even when the delay is too small to advance the clock (a tiny
// residue absorbed by now+delay == now would otherwise livelock).
func (l *Link) reschedule() {
	if l.next != nil {
		l.next.Cancel()
		l.next = nil
		l.target = nil
	}
	if len(l.active) == 0 {
		return
	}
	minFlow := l.active[0]
	for _, f := range l.active[1:] {
		if f.remaining < minFlow.remaining {
			minFlow = f
		}
	}
	delay := minFlow.remaining / l.rate()
	if delay < 0 {
		delay = 0
	}
	l.target = minFlow
	l.next = l.eng.Schedule(delay, l.complete)
}

// complete fires when the target flow has drained; it removes the target
// plus any other flow within float64 drift of empty, wakes their processes
// in insertion order, and reschedules the remainder.
func (l *Link) complete() {
	l.next = nil
	if l.target != nil {
		l.target.remaining = 0
	}
	l.target = nil
	l.advance()
	kept := l.active[:0]
	for _, f := range l.active {
		if f.remaining <= completionEpsilon+1e-12*f.total {
			l.transfers++
			l.bytesMoved += f.total
			f.proc.unpark()
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(l.active); i++ {
		l.active[i] = nil
	}
	l.active = kept
	if len(l.active) == 0 {
		l.busyInt += l.eng.now - l.busySince
	}
	l.reschedule()
}

// Transfer moves bytes over the link on behalf of process p, blocking in
// virtual time until the transfer completes. Concurrent transfers share the
// bandwidth equally. A zero-byte transfer pays only the latency.
func (l *Link) Transfer(p *Proc, bytes float64) {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("sim: transfer of %v bytes on link %q", bytes, l.name))
	}
	if l.latency > 0 {
		p.Wait(l.latency)
	}
	if bytes == 0 {
		l.transfers++
		return
	}
	l.advance()
	if len(l.active) == 0 {
		l.busySince = l.eng.now
	}
	f := &flow{remaining: bytes, total: bytes, proc: p}
	l.active = append(l.active, f)
	l.reschedule()
	p.park()
}
