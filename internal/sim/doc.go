// Package sim implements a deterministic discrete-event simulation (DES)
// engine used to model the heterogeneous CPU-GPU cluster on which the
// reproduced experiments run.
//
// The engine follows a coroutine style: simulated activities are written as
// ordinary sequential Go functions (processes) that block on virtual-time
// primitives — Wait, Server.Acquire, Link.Transfer — while the engine
// advances a virtual clock through an indexed event heap. A single baton of
// control moves between goroutines: the current holder runs the
// event-dispatch loop inline and wakes the next process with one channel
// send, so a park/resume cycle costs a single send/receive pair and exactly
// one goroutine is ever running. Simulations are therefore fully
// deterministic: the same inputs always produce the same event order and the
// same virtual timestamps, regardless of GOMAXPROCS.
//
// The substrate is allocation-lean by design — this package is the hot path
// of every experiment sweep. Event nodes are pooled and recycled
// (generation-stamped handles keep Cancel safe across reuse); processes,
// their goroutines and resume channels are pooled across Engine.Go calls;
// blocking primitives reschedule pre-bound event nodes in place on the live
// heap (Engine.Reschedule / heap fix) instead of cancelling and re-pushing.
// Steady-state event traffic and process churn allocate nothing.
//
// Three primitives cover everything the cluster model needs:
//
//   - Engine: the virtual clock and event queue.
//   - Server: a capacity-constrained resource with a FIFO wait queue
//     (CPU cores, GPU devices, the scheduler master thread).
//   - Link: a fluid-flow, fair-shared bandwidth resource (PCIe buses, node
//     disks, NICs, the shared GPFS backend). Concurrent transfers share the
//     bandwidth equally; rates are recomputed whenever a transfer starts or
//     finishes, which models I/O contention at the granularity the paper's
//     analysis needs (SimGrid-style fluid model).
//
// Virtual time is measured in float64 seconds.
package sim
