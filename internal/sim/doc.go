// Package sim implements a deterministic discrete-event simulation (DES)
// engine used to model the heterogeneous CPU-GPU cluster on which the
// reproduced experiments run.
//
// The engine follows a coroutine style: simulated activities are written as
// ordinary sequential Go functions (processes) that block on virtual-time
// primitives — Wait, Server.Acquire, Link.Transfer — while the engine
// advances a virtual clock through a cancellable event heap. Control is
// handed between the engine goroutine and exactly one process goroutine at a
// time, so simulations are fully deterministic: the same inputs always
// produce the same event order and the same virtual timestamps, regardless
// of GOMAXPROCS.
//
// Three primitives cover everything the cluster model needs:
//
//   - Engine: the virtual clock and event queue.
//   - Server: a capacity-constrained resource with a FIFO wait queue
//     (CPU cores, GPU devices, the scheduler master thread).
//   - Link: a fluid-flow, fair-shared bandwidth resource (PCIe buses, node
//     disks, NICs, the shared GPFS backend). Concurrent transfers share the
//     bandwidth equally; rates are recomputed whenever a transfer starts or
//     finishes, which models I/O contention at the granularity the paper's
//     analysis needs (SimGrid-style fluid model).
//
// Virtual time is measured in float64 seconds.
package sim
