package sim

import "fmt"

// Server is a capacity-constrained resource with a FIFO wait queue. It
// models CPU cores, GPU devices and the scheduler master thread: at most
// Capacity processes hold the server at once; further Acquire calls queue in
// arrival order.
//
// The wait queue is a head-index ring buffer, so dequeueing a waiter on
// Release is O(1) instead of sliding the whole slice.
//
// Server also integrates its occupancy over virtual time so experiments can
// report resource utilization (the paper's "resource wastage" discussion).
type Server struct {
	eng  *Engine
	name string
	cap  int

	inUse int

	// FIFO waiters: ring buffer of qlen entries starting at queue[qhead].
	queue []*Proc
	qhead int
	qlen  int

	lastChange float64
	busyInt    float64 // ∫ inUse dt
	acquired   uint64  // total successful acquisitions
}

// NewServer creates a server with the given capacity. Capacity must be
// positive.
func NewServer(e *Engine, name string, capacity int) *Server {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: server %q with capacity %d", name, capacity))
	}
	return &Server{eng: e, name: name, cap: capacity}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Capacity returns the number of concurrent holders the server admits.
func (s *Server) Capacity() int { return s.cap }

// InUse returns the number of processes currently holding the server.
func (s *Server) InUse() int { return s.inUse }

// QueueLen returns the number of processes waiting to acquire the server.
func (s *Server) QueueLen() int { return s.qlen }

// Acquired returns the total number of successful acquisitions so far.
func (s *Server) Acquired() uint64 { return s.acquired }

// qpush appends a waiter to the ring, growing (and linearizing) it when
// full.
func (s *Server) qpush(p *Proc) {
	if s.qlen == len(s.queue) {
		grown := make([]*Proc, max(2*len(s.queue), 8))
		for i := 0; i < s.qlen; i++ {
			grown[i] = s.queue[(s.qhead+i)%len(s.queue)]
		}
		s.queue = grown
		s.qhead = 0
	}
	s.queue[(s.qhead+s.qlen)%len(s.queue)] = p
	s.qlen++
}

// qpop removes and returns the head waiter.
func (s *Server) qpop() *Proc {
	p := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead = (s.qhead + 1) % len(s.queue)
	s.qlen--
	return p
}

func (s *Server) accumulate() {
	now := s.eng.now
	s.busyInt += float64(s.inUse) * (now - s.lastChange)
	s.lastChange = now
}

// Acquire blocks the process until a slot is free, then takes it. Slots are
// granted strictly in arrival order.
func (s *Server) Acquire(p *Proc) {
	if s.inUse < s.cap && s.qlen == 0 {
		s.accumulate()
		s.inUse++
		s.acquired++
		return
	}
	s.qpush(p)
	p.park()
	// The releaser already took the slot on our behalf (see Release), so
	// nothing to do here: we own a slot when we wake.
}

// TryAcquire takes a slot if one is immediately free and no process is
// queued ahead; it reports whether the acquisition succeeded.
func (s *Server) TryAcquire() bool {
	if s.inUse < s.cap && s.qlen == 0 {
		s.accumulate()
		s.inUse++
		s.acquired++
		return true
	}
	return false
}

// Release frees one slot. If processes are queued, the slot is handed
// directly to the head of the queue (so capacity can never be stolen by a
// later arrival) and that process is woken at the current instant.
func (s *Server) Release() {
	if s.inUse <= 0 {
		panic(fmt.Sprintf("sim: Release of idle server %q", s.name))
	}
	s.accumulate()
	s.inUse--
	if s.qlen > 0 {
		next := s.qpop()
		s.inUse++ // hand the slot to next before anyone else can take it
		s.acquired++
		next.unpark()
	}
}

// BusyTime returns the occupancy integral ∫ inUse dt up to the current
// virtual time, in slot-seconds.
func (s *Server) BusyTime() float64 {
	return s.busyInt + float64(s.inUse)*(s.eng.now-s.lastChange)
}

// Utilization returns the mean fraction of capacity in use over [0, now].
// It returns 0 before any virtual time has elapsed.
func (s *Server) Utilization() float64 {
	if s.eng.now == 0 {
		return 0
	}
	return s.BusyTime() / (float64(s.cap) * s.eng.now)
}
