package sim

import "fmt"

// Server is a capacity-constrained resource with a FIFO wait queue. It
// models CPU cores, GPU devices and the scheduler master thread: at most
// Capacity processes hold the server at once; further Acquire calls queue in
// arrival order.
//
// The wait queue is a head-index ring buffer, so dequeueing a waiter on
// Release is O(1) instead of sliding the whole slice.
//
// Server also integrates its occupancy over virtual time so experiments can
// report resource utilization (the paper's "resource wastage" discussion).
type Server struct {
	eng  *Engine
	name string
	cap  int

	inUse int

	// FIFO waiters: ring buffer of qlen entries starting at queue[qhead].
	queue []*Proc
	qhead int
	qlen  int

	lastChange float64
	busyInt    float64 // ∫ inUse dt
	acquired   uint64  // total successful acquisitions
}

// NewServer creates a server with the given capacity. Capacity must be
// positive.
func NewServer(e *Engine, name string, capacity int) *Server {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: server %q with capacity %d", name, capacity))
	}
	return &Server{eng: e, name: name, cap: capacity}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Capacity returns the number of concurrent holders the server admits.
func (s *Server) Capacity() int { return s.cap }

// InUse returns the number of processes currently holding the server.
func (s *Server) InUse() int { return s.inUse }

// QueueLen returns the number of processes waiting to acquire the server.
func (s *Server) QueueLen() int { return s.qlen }

// Acquired returns the total number of successful acquisitions so far.
func (s *Server) Acquired() uint64 { return s.acquired }

// qpush appends a waiter to the ring, growing (and linearizing) it when
// full.
func (s *Server) qpush(p *Proc) {
	if s.qlen == len(s.queue) {
		grown := make([]*Proc, max(2*len(s.queue), 8))
		for i := 0; i < s.qlen; i++ {
			grown[i] = s.queue[(s.qhead+i)%len(s.queue)]
		}
		s.queue = grown
		s.qhead = 0
	}
	s.queue[(s.qhead+s.qlen)%len(s.queue)] = p
	s.qlen++
}

// qpop removes and returns the head waiter.
func (s *Server) qpop() *Proc {
	p := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead = (s.qhead + 1) % len(s.queue)
	s.qlen--
	return p
}

func (s *Server) accumulate() {
	now := s.eng.now
	s.busyInt += float64(s.inUse) * (now - s.lastChange)
	s.lastChange = now
}

// Acquire blocks the process until a slot is free, then takes it. Slots are
// granted strictly in arrival order.
func (s *Server) Acquire(p *Proc) {
	if s.inUse < s.cap && s.qlen == 0 {
		s.accumulate()
		s.inUse++
		s.acquired++
		return
	}
	s.qpush(p)
	p.park()
	// The releaser already took the slot on our behalf (see Release), so
	// nothing to do here: we own a slot when we wake.
}

// TryAcquire takes a slot if one is immediately free and no process is
// queued ahead; it reports whether the acquisition succeeded.
func (s *Server) TryAcquire() bool {
	if s.inUse < s.cap && s.qlen == 0 {
		s.accumulate()
		s.inUse++
		s.acquired++
		return true
	}
	return false
}

// Release frees one slot. If processes are queued, the slot is handed
// directly to the head of the queue (so capacity can never be stolen by a
// later arrival) and that process is woken at the current instant.
func (s *Server) Release() {
	if s.inUse <= 0 {
		panic(fmt.Sprintf("sim: Release of idle server %q", s.name))
	}
	s.accumulate()
	s.inUse--
	if s.qlen > 0 {
		next := s.qpop()
		s.inUse++ // hand the slot to next before anyone else can take it
		s.acquired++
		next.unpark()
	}
}

// BusyTime returns the occupancy integral ∫ inUse dt up to the current
// virtual time, in slot-seconds.
func (s *Server) BusyTime() float64 {
	return s.busyInt + float64(s.inUse)*(s.eng.now-s.lastChange)
}

// ServiceLine is a capacity-1 FIFO dispatch gate: anonymous requests line
// up for the station, and each grant runs the line's onGrant callback
// engine-side at the grant instant. Unlike Server, a request carries no
// process — the holder's work is whatever onGrant schedules (typically a
// process started with GoAfter once the decision's service time elapses) —
// so queueing for the station costs no goroutine handoffs at all. End
// passes the station to the next request via a grant event at the current
// instant: the exact schedule position a Server's wake-up of that waiter
// would occupy, so event ordering matches the Acquire/Release protocol it
// replaces.
type ServiceLine struct {
	eng     *Engine
	name    string
	onGrant func()
	busy    bool
	waiters int

	grantFn  func() // pre-bound grant, so scheduling one allocates nothing
	acquired uint64
}

// NewServiceLine creates an idle service line.
func NewServiceLine(e *Engine, name string) *ServiceLine {
	s := &ServiceLine{eng: e, name: name}
	s.grantFn = s.grant
	return s
}

// Name returns the line's diagnostic name.
func (s *ServiceLine) Name() string { return s.name }

// Capacity returns 1: a service line serves one request at a time.
func (s *ServiceLine) Capacity() int { return 1 }

// QueueLen returns the number of requests waiting for the station.
func (s *ServiceLine) QueueLen() int { return s.waiters }

// Acquired returns the total number of granted requests so far.
func (s *ServiceLine) Acquired() uint64 { return s.acquired }

// SetOnGrant installs the grant-instant callback. It must be set before the
// simulation runs and is shared by every request.
func (s *ServiceLine) SetOnGrant(fn func()) { s.onGrant = fn }

// Request asks for the station. If it is free the grant happens
// immediately (onGrant runs inline); otherwise the request queues and is
// granted in arrival order as holders call End.
func (s *ServiceLine) Request() {
	if s.busy {
		s.waiters++
		return
	}
	s.busy = true
	s.grant()
}

// grant hands the station to the oldest outstanding request.
func (s *ServiceLine) grant() {
	s.acquired++
	if s.onGrant != nil {
		s.onGrant()
	}
}

// End releases the station. With requests queued it is handed directly to
// the oldest one via a grant event at the current instant.
func (s *ServiceLine) End() {
	if !s.busy {
		panic(fmt.Sprintf("sim: End of idle service line %q", s.name))
	}
	if s.waiters > 0 {
		s.waiters--
		s.eng.Schedule(0, s.grantFn)
		return // busy stays true: the station moved, it never went idle
	}
	s.busy = false
}

// Utilization returns the mean fraction of capacity in use over [0, now].
// It returns 0 before any virtual time has elapsed.
func (s *Server) Utilization() float64 {
	if s.eng.now == 0 {
		return 0
	}
	return s.BusyTime() / (float64(s.cap) * s.eng.now)
}
