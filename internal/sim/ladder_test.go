package sim

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// queueHarness drives one eventQueue implementation through a scripted
// workload over its own private node set, recording the pop order.
type queueHarness struct {
	q     eventQueue
	nodes []*event
	seq   uint64
	now   float64
}

func newQueueHarness(q eventQueue, capacity int) *queueHarness {
	return &queueHarness{q: q, nodes: make([]*event, 0, capacity)}
}

// sched mirrors Engine.schedNode: fresh node, fresh seq. Returns the node's
// id (its index in the harness's node list).
func (h *queueHarness) sched(delay float64) int {
	h.seq++
	n := &event{at: h.now + delay, seq: h.seq, index: -1}
	h.nodes = append(h.nodes, n)
	h.q.push(n)
	return len(h.nodes) - 1
}

// resched mirrors Engine.fixNode on a queued node: new key, fresh seq.
func (h *queueHarness) resched(id int, delay float64) {
	n := h.nodes[id]
	n.at = h.now + delay
	h.seq++
	n.seq = h.seq
	h.q.fix(n)
}

func (h *queueHarness) cancel(id int) {
	h.q.remove(h.nodes[id])
}

// pop advances the clock to the popped event, mirroring dispatch. Returns
// (at, seq) or ok=false when empty.
func (h *queueHarness) pop(t *testing.T) (float64, uint64, bool) {
	n := h.q.pop()
	if n == nil {
		return 0, 0, false
	}
	if n.at < h.now {
		t.Fatalf("queue popped event at t=%v after clock reached %v", n.at, h.now)
	}
	h.now = n.at
	return n.at, n.seq, true
}

// TestLadderMatchesHeapOrder drives the heap and the ladder queue through
// identical randomized schedule/reschedule/cancel/pop workloads (seeded
// PCG) and asserts every pop agrees on (at, seq) — the engine's entire
// observable ordering contract.
func TestLadderMatchesHeapOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0x1adde7, uint64(trial)))
			hh := newQueueHarness(&heapQueue{}, 4096)
			hl := newQueueHarness(newLadderQueue(), 4096)

			// pending tracks ids scheduled and not yet popped/cancelled,
			// mirrored across both harnesses (ids are allocation-order
			// identical by construction).
			var pending []int
			popped := map[int]bool{}
			drop := func(i int) {
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
			}
			// Mixed workload: bursts bias the pending count up and down so
			// the ladder exercises top spreads, rung spawns and bottom
			// inserts, not just one regime.
			steps := 6000
			for s := 0; s < steps; s++ {
				switch op := rng.IntN(10); {
				case op < 5 || len(pending) == 0: // schedule
					d := rng.Float64() * 100
					if rng.IntN(8) == 0 {
						d = 0 // same-instant events stress seq tie-breaks
					}
					if rng.IntN(16) == 0 {
						d *= 1e6 // far-future events stress top routing
					}
					id := hh.sched(d)
					if got := hl.sched(d); got != id {
						t.Fatalf("id drift: heap %d ladder %d", id, got)
					}
					pending = append(pending, id)
				case op < 6: // reschedule a random pending event
					i := rng.IntN(len(pending))
					d := rng.Float64() * 50
					hh.resched(pending[i], d)
					hl.resched(pending[i], d)
				case op < 7: // cancel a random pending event
					i := rng.IntN(len(pending))
					hh.cancel(pending[i])
					hl.cancel(pending[i])
					drop(i)
				default: // pop
					ha, hs, hok := hh.pop(t)
					la, ls, lok := hl.pop(t)
					if hok != lok || ha != la || hs != ls {
						t.Fatalf("step %d: pop mismatch: heap (%v,%d,%v) ladder (%v,%d,%v)",
							s, ha, hs, hok, la, ls, lok)
					}
					if hok {
						for i, id := range pending {
							if hh.nodes[id].seq == hs && !popped[id] {
								popped[id] = true
								drop(i)
								break
							}
						}
					}
				}
				if hh.q.len() != hl.q.len() {
					t.Fatalf("step %d: len mismatch: heap %d ladder %d", s, hh.q.len(), hl.q.len())
				}
			}
			// Drain both completely; the full tail must agree too.
			for {
				ha, hs, hok := hh.pop(t)
				la, ls, lok := hl.pop(t)
				if hok != lok || ha != la || hs != ls {
					t.Fatalf("drain: pop mismatch: heap (%v,%d,%v) ladder (%v,%d,%v)",
						ha, hs, hok, la, ls, lok)
				}
				if !hok {
					break
				}
			}
		})
	}
}

// TestEngineAutoMigration checks that an engine under QueueAuto actually
// migrates once pending events cross the threshold, and keeps firing in
// order afterwards.
func TestEngineAutoMigration(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewPCG(7, 7))
	fired := 0
	last := -1.0
	n := ladderThreshold + 5000
	for i := 0; i < n; i++ {
		e.Schedule(rng.Float64()*1000, func() {
			if e.Now() < last {
				t.Errorf("fired out of order: %v after %v", e.Now(), last)
			}
			last = e.Now()
			fired++
		})
	}
	if e.lq == nil {
		t.Fatalf("engine did not migrate to ladder at %d pending events", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != n {
		t.Fatalf("fired %d of %d events", fired, n)
	}
}

// TestEngineForcedLadder runs a reschedule/cancel-heavy engine workload
// pinned to each queue kind and compares the full fire sequences.
func TestEngineForcedLadder(t *testing.T) {
	runSeq := func(kind QueueKind) []float64 {
		e := New()
		e.SetQueueKind(kind)
		rng := rand.New(rand.NewPCG(3, 9))
		var seq []float64
		var evs []Event
		for i := 0; i < 3000; i++ {
			i := i
			evs = append(evs, e.Schedule(rng.Float64()*100, func() {
				seq = append(seq, e.Now(), float64(i))
			}))
		}
		// Reschedule a third, cancel a tenth — through the public API, so
		// generation-stamp interactions are covered too.
		for i := 0; i < 1000; i++ {
			ev := evs[rng.IntN(len(evs))]
			if ev.Scheduled() {
				e.Reschedule(ev, rng.Float64()*100)
			}
		}
		for i := 0; i < 300; i++ {
			evs[rng.IntN(len(evs))].Cancel()
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return seq
	}
	heapSeq := runSeq(QueueHeap)
	ladderSeq := runSeq(QueueLadder)
	if len(heapSeq) != len(ladderSeq) {
		t.Fatalf("fire count mismatch: heap %d ladder %d", len(heapSeq)/2, len(ladderSeq)/2)
	}
	for i := range heapSeq {
		if heapSeq[i] != ladderSeq[i] {
			t.Fatalf("fire sequence diverges at %d: heap %v ladder %v", i, heapSeq[i], ladderSeq[i])
		}
	}
}

// BenchmarkEventQueue measures steady-state queue throughput at fixed
// pending-event counts: a classic hold model (pop one, push one) after
// priming, the access pattern the simulator's event loop produces. This
// is the data behind ladderThreshold.
func BenchmarkEventQueue(b *testing.B) {
	for _, pending := range []int{1 << 10, 32 << 10, 1 << 20} {
		for _, impl := range []string{"heap", "ladder"} {
			b.Run(fmt.Sprintf("%s/pending=%d", impl, pending), func(b *testing.B) {
				var q eventQueue
				if impl == "heap" {
					q = &heapQueue{}
				} else {
					q = newLadderQueue()
				}
				rng := rand.New(rand.NewPCG(11, uint64(pending)))
				h := newQueueHarness(q, pending)
				free := make([]*event, 0, pending)
				for i := 0; i < pending; i++ {
					h.sched(rng.Float64() * 1000)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := q.pop()
					h.now = n.at
					free = append(free, n)
					// Reuse the popped node, as the engine's pool does.
					n = free[len(free)-1]
					free = free[:len(free)-1]
					n.at = h.now + rng.Float64()*1000
					h.seq++
					n.seq = h.seq
					q.push(n)
				}
			})
		}
	}
}
