package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestServerFIFO(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			s.Acquire(p)
			order = append(order, i)
			p.Wait(1)
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want 0..3", order)
		}
	}
	if e.Now() != 4 {
		t.Fatalf("makespan = %v, want 4", e.Now())
	}
}

func TestServerCapacity(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 3)
	maxInUse := 0
	for i := 0; i < 10; i++ {
		e.Go("w", func(p *Proc) {
			s.Acquire(p)
			if s.InUse() > maxInUse {
				maxInUse = s.InUse()
			}
			p.Wait(1)
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInUse != 3 {
		t.Fatalf("max in use = %d, want 3", maxInUse)
	}
	// 10 tasks of 1s on 3 slots: ceil(10/3) waves = 4s makespan.
	if e.Now() != 4 {
		t.Fatalf("makespan = %v, want 4", e.Now())
	}
	if s.Acquired() != 10 {
		t.Fatalf("acquired = %d, want 10", s.Acquired())
	}
}

func TestServerTryAcquire(t *testing.T) {
	e := New()
	s := NewServer(e, "gpu", 1)
	got := []bool{}
	e.Go("a", func(p *Proc) {
		got = append(got, s.TryAcquire()) // true
		got = append(got, s.TryAcquire()) // false: full
		p.Wait(1)
		s.Release()
		got = append(got, s.TryAcquire()) // true again
		s.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryAcquire results = %v, want %v", got, want)
		}
	}
}

func TestServerHandoffNoSteal(t *testing.T) {
	// A Release with a waiter queued must hand the slot to the waiter even
	// if another process calls TryAcquire at the same instant afterwards.
	e := New()
	s := NewServer(e, "cpu", 1)
	var winner string
	e.Go("holder", func(p *Proc) {
		s.Acquire(p)
		p.Wait(1)
		s.Release()
	})
	e.Go("waiter", func(p *Proc) {
		s.Acquire(p)
		if winner == "" {
			winner = "waiter"
		}
		s.Release()
	})
	e.Go("thief", func(p *Proc) {
		p.Wait(1) // arrives exactly when holder releases
		if s.TryAcquire() {
			if winner == "" {
				winner = "thief"
			}
			s.Release()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if winner != "waiter" {
		t.Fatalf("winner = %q, want waiter", winner)
	}
}

func TestServerUtilization(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 2)
	e.Go("a", func(p *Proc) {
		s.Acquire(p)
		p.Wait(2)
		s.Release()
	})
	e.Go("idle", func(p *Proc) { p.Wait(4) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 slot busy for 2s out of 2 slots * 4s = 0.25.
	if got := s.Utilization(); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := s.BusyTime(); got != 2 {
		t.Fatalf("busy time = %v, want 2", got)
	}
}

func TestServerDeadlockDetected(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 1)
	e.Go("a", func(p *Proc) {
		s.Acquire(p)
		// never released
	})
	e.Go("b", func(p *Proc) {
		s.Acquire(p) // parks forever
		t.Error("b acquired a never-released server")
	})
	if err := e.Run(); err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestServerReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle server did not panic")
		}
	}()
	e := New()
	NewServer(e, "cpu", 1).Release()
}

// TestServerCapacityInvariant is a property test: for random workloads, the
// server never exceeds capacity and every acquirer eventually runs.
func TestServerCapacityInvariant(t *testing.T) {
	f := func(seed uint64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		n := int(nRaw)%64 + 1
		rng := rand.New(rand.NewPCG(seed, 42))
		e := New()
		s := NewServer(e, "cpu", capacity)
		completed := 0
		ok := true
		for i := 0; i < n; i++ {
			hold := rng.Float64() * 2
			start := rng.Float64() * 2
			e.Go("w", func(p *Proc) {
				p.Wait(start)
				s.Acquire(p)
				if s.InUse() > capacity {
					ok = false
				}
				p.Wait(hold)
				s.Release()
				completed++
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok && completed == n && s.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
