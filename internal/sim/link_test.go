package sim

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinkSingleTransfer(t *testing.T) {
	e := New()
	l := NewLink(e, "disk", 100, 0) // 100 B/s
	var done float64
	e.Go("t", func(p *Proc) {
		l.Transfer(p, 500)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(done, 5, 1e-9) {
		t.Fatalf("transfer time = %v, want 5", done)
	}
	if l.BytesMoved() != 500 {
		t.Fatalf("bytes moved = %v, want 500", l.BytesMoved())
	}
	if l.Transfers() != 1 {
		t.Fatalf("transfers = %d, want 1", l.Transfers())
	}
}

func TestLinkLatency(t *testing.T) {
	e := New()
	l := NewLink(e, "gpfs", 100, 0.25)
	var done float64
	e.Go("t", func(p *Proc) {
		l.Transfer(p, 100)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(done, 1.25, 1e-9) {
		t.Fatalf("transfer time = %v, want 1.25", done)
	}
}

func TestLinkZeroBytes(t *testing.T) {
	e := New()
	l := NewLink(e, "net", 100, 0.5)
	var done float64
	e.Go("t", func(p *Proc) {
		l.Transfer(p, 0)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(done, 0.5, 1e-9) {
		t.Fatalf("zero-byte transfer time = %v, want 0.5 (latency only)", done)
	}
	if l.Transfers() != 1 {
		t.Fatalf("transfers = %d, want 1", l.Transfers())
	}
}

func TestLinkFairShare(t *testing.T) {
	// Two equal simultaneous transfers each see half the bandwidth and
	// complete together at 2x the solo time.
	e := New()
	l := NewLink(e, "disk", 100, 0)
	var t1, t2 float64
	e.Go("a", func(p *Proc) {
		l.Transfer(p, 100)
		t1 = p.Now()
	})
	e.Go("b", func(p *Proc) {
		l.Transfer(p, 100)
		t2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(t1, 2, 1e-9) || !almostEqual(t2, 2, 1e-9) {
		t.Fatalf("completion times = %v, %v; want 2, 2", t1, t2)
	}
}

func TestLinkUnevenShare(t *testing.T) {
	// A 100B and a 300B transfer start together on a 100 B/s link.
	// Phase 1: both at 50 B/s. Small one finishes at t=2 (300-100=200 left
	// on the big one). Phase 2: big one alone at 100 B/s, finishes at t=4.
	e := New()
	l := NewLink(e, "disk", 100, 0)
	var small, big float64
	e.Go("small", func(p *Proc) {
		l.Transfer(p, 100)
		small = p.Now()
	})
	e.Go("big", func(p *Proc) {
		l.Transfer(p, 300)
		big = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(small, 2, 1e-6) {
		t.Fatalf("small completion = %v, want 2", small)
	}
	if !almostEqual(big, 4, 1e-6) {
		t.Fatalf("big completion = %v, want 4", big)
	}
}

func TestLinkLateJoiner(t *testing.T) {
	// A 200B transfer starts at t=0 alone (100 B/s). At t=1 a 50B transfer
	// joins: both at 50 B/s. Joiner finishes at t=2; first has 100-50=50
	// left, alone again at 100 B/s, finishes at t=2.5.
	e := New()
	l := NewLink(e, "disk", 100, 0)
	var first, joiner float64
	e.Go("first", func(p *Proc) {
		l.Transfer(p, 200)
		first = p.Now()
	})
	e.Go("joiner", func(p *Proc) {
		p.Wait(1)
		l.Transfer(p, 50)
		joiner = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(joiner, 2, 1e-6) {
		t.Fatalf("joiner completion = %v, want 2", joiner)
	}
	if !almostEqual(first, 2.5, 1e-6) {
		t.Fatalf("first completion = %v, want 2.5", first)
	}
}

func TestLinkBusyTime(t *testing.T) {
	e := New()
	l := NewLink(e, "disk", 100, 0)
	e.Go("a", func(p *Proc) {
		l.Transfer(p, 100) // busy [0,1]
		p.Wait(1)          // idle [1,2]
		l.Transfer(p, 200) // busy [2,4]
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.BusyTime(), 3, 1e-6) {
		t.Fatalf("busy time = %v, want 3", l.BusyTime())
	}
}

func TestLinkInvalidConstruction(t *testing.T) {
	for _, tc := range []struct{ bw, lat float64 }{
		{0, 0}, {-1, 0}, {math.Inf(1), 0}, {math.NaN(), 0}, {1, -1}, {1, math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(bw=%v, lat=%v) did not panic", tc.bw, tc.lat)
				}
			}()
			NewLink(New(), "bad", tc.bw, tc.lat)
		}()
	}
}

// TestLinkConservation is a property test: for random concurrent transfers,
// (a) all bytes are delivered, (b) the makespan is at least
// totalBytes/bandwidth (the link cannot exceed its capacity), and (c) each
// individual transfer takes at least bytes/bandwidth.
func TestLinkConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		rng := rand.New(rand.NewPCG(seed, 7))
		e := New()
		bw := 50 + rng.Float64()*1000
		l := NewLink(e, "link", bw, 0)
		total := 0.0
		lastArrival := 0.0
		ok := true
		for i := 0; i < n; i++ {
			bytes := 1 + rng.Float64()*10000
			start := rng.Float64() * 5
			total += bytes
			if start > lastArrival {
				lastArrival = start
			}
			e.Go("t", func(p *Proc) {
				p.Wait(start)
				t0 := p.Now()
				l.Transfer(p, bytes)
				if p.Now()-t0 < bytes/bw-1e-6 {
					ok = false // faster than line rate: impossible
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !almostEqual(l.BytesMoved(), total, 1e-3*total) {
			return false
		}
		// All arrivals happen by lastArrival; afterwards the link drains at
		// full rate, so makespan >= total/bw is only guaranteed from t=0 if
		// arrivals are at 0. Weaker but always-true bound:
		if e.Now() < total/bw-1e-6 {
			return false
		}
		return ok && l.Active() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
