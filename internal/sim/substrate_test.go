package sim

import (
	"math"
	"testing"
)

// TestPendingExcludesCancelled pins the Pending contract: cancelled events
// leave the schedule immediately, so they are never counted.
func TestPendingExcludesCancelled(t *testing.T) {
	e := New()
	a := e.Schedule(1.0, func() {})
	e.Schedule(2.0, func() {})
	e.Schedule(3.0, func() {})
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d, want 3", got)
	}
	a.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending() after Cancel = %d, want 2", got)
	}
	// Cancelling mid-run must drop the count the same way.
	var midRun int
	b := e.Schedule(2.5, func() {})
	e.Schedule(2.0, func() {
		b.Cancel()
		midRun = e.Pending()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// At the t=2.0 callback: the 2.0 event itself already popped, b is
	// cancelled, only the 3.0 event remains.
	if midRun != 1 {
		t.Fatalf("Pending() mid-run after Cancel = %d, want 1", midRun)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() after Run = %d, want 0", e.Pending())
	}
}

func TestRescheduleEarlier(t *testing.T) {
	e := New()
	var order []string
	ev := e.Schedule(5.0, func() { order = append(order, "moved") })
	e.Schedule(2.0, func() { order = append(order, "fixed") })
	e.Schedule(1.0, func() { e.Reschedule(ev, 0.5) }) // 5.0 -> 1.5
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "moved" || order[1] != "fixed" {
		t.Fatalf("order = %v, want [moved fixed]", order)
	}
	if e.Now() != 2.0 {
		t.Fatalf("Now() = %v, want 2.0", e.Now())
	}
}

func TestRescheduleLater(t *testing.T) {
	e := New()
	var order []string
	ev := e.Schedule(1.5, func() { order = append(order, "moved") })
	e.Schedule(2.0, func() { order = append(order, "fixed") })
	e.Schedule(1.0, func() { e.Reschedule(ev, 4.0) }) // 1.5 -> 5.0
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fixed" || order[1] != "moved" {
		t.Fatalf("order = %v, want [fixed moved]", order)
	}
	if e.Now() != 5.0 {
		t.Fatalf("Now() = %v, want 5.0", e.Now())
	}
}

// TestRescheduleFreshSeq pins the determinism contract: a rescheduled event
// gets a fresh sequence number, so among same-instant events it fires after
// those already queued — exactly as if it had been cancelled and
// re-scheduled.
func TestRescheduleFreshSeq(t *testing.T) {
	e := New()
	var order []string
	ev := e.Schedule(1.0, func() { order = append(order, "moved") })
	e.Schedule(2.0, func() { order = append(order, "fixed") })
	e.Schedule(0.5, func() { e.Reschedule(ev, 1.5) }) // 1.0 -> 2.0, same instant as "fixed"
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fixed" || order[1] != "moved" {
		t.Fatalf("order = %v, want [fixed moved]", order)
	}
}

func TestRescheduleAt(t *testing.T) {
	e := New()
	ev := e.Schedule(5.0, func() {})
	if ev.At() != 5.0 {
		t.Fatalf("At() = %v, want 5.0", ev.At())
	}
	e.Reschedule(ev, 2.5)
	if ev.At() != 2.5 {
		t.Fatalf("At() after Reschedule = %v, want 2.5", ev.At())
	}
	if !ev.Scheduled() {
		t.Fatal("Scheduled() = false for pending event")
	}
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRescheduleCompletedPanics(t *testing.T) {
	// Rescheduling a fired event panics.
	e := New()
	ev := e.Schedule(1.0, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reschedule of fired event did not panic")
			}
		}()
		e.Reschedule(ev, 1.0)
	}()
	// Rescheduling a cancelled event panics too.
	e2 := New()
	ev2 := e2.Schedule(1.0, func() {})
	ev2.Cancel()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reschedule of cancelled event did not panic")
			}
		}()
		e2.Reschedule(ev2, 1.0)
	}()
}

// TestStaleHandleAfterRecycle pins the generation-stamp safety property:
// once an event fires its node may be recycled for a later Schedule, and the
// old handle must become inert rather than acting on the new event.
func TestStaleHandleAfterRecycle(t *testing.T) {
	e := New()
	var stale Event
	fired := false
	stale = e.Schedule(1.0, func() {})
	e.Schedule(2.0, func() {
		// stale's node is free by now; this Schedule recycles it.
		e.Schedule(1.0, func() { fired = true })
		stale.Cancel() // must NOT cancel the recycled event
		if stale.Canceled() {
			t.Error("stale handle reports Canceled")
		}
		if stale.Scheduled() {
			t.Error("stale handle reports Scheduled")
		}
		if !math.IsNaN(stale.At()) {
			t.Errorf("stale At() = %v, want NaN", stale.At())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("recycled event was cancelled through a stale handle")
	}
}

// TestProcPoolReuse drives enough sequential process churn that Go must
// reuse pooled goroutines, and checks the simulation stays correct and the
// pool is torn down at Run exit.
func TestProcPoolReuse(t *testing.T) {
	e := New()
	ran := 0
	// Chain of short-lived processes: each finishes before spawning the
	// next, so every generation after the first reuses the pooled Proc.
	var spawn func()
	spawn = func() {
		e.Go("gen", func(p *Proc) {
			p.Wait(0.1)
			ran++
			if ran < 50 {
				e.Schedule(0.1, spawn)
			}
		})
	}
	spawn()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 50 {
		t.Fatalf("ran = %d, want 50", ran)
	}
	if len(e.freeProcs) != 0 {
		t.Fatalf("freeProcs = %d after Run, want 0 (pool torn down)", len(e.freeProcs))
	}
	if e.liveProcs != 0 || e.parkedProcs != 0 {
		t.Fatalf("liveProcs = %d, parkedProcs = %d after Run, want 0, 0",
			e.liveProcs, e.parkedProcs)
	}
}

// TestServerQueueWraparound forces the FIFO ring's head index to wrap by
// cycling far more waiters through the queue than its initial capacity, and
// checks strict arrival-order grants throughout.
func TestServerQueueWraparound(t *testing.T) {
	e := New()
	srv := NewServer(e, "cpu", 1)
	const n = 64
	var grants []int
	for i := 0; i < n; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Wait(float64(i) * 1e-3) // staggered arrivals: deterministic queue order
			srv.Acquire(p)
			grants = append(grants, i)
			p.Wait(1) // hold long enough that everyone queues
			srv.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(grants) != n {
		t.Fatalf("grants = %d, want %d", len(grants), n)
	}
	for i, g := range grants {
		if g != i {
			t.Fatalf("grant order %v: position %d got waiter %d", grants, i, g)
		}
	}
	if srv.QueueLen() != 0 || srv.InUse() != 0 {
		t.Fatalf("queue = %d, inUse = %d after Run, want 0, 0", srv.QueueLen(), srv.InUse())
	}
	if srv.Acquired() != n {
		t.Fatalf("Acquired() = %d, want %d", srv.Acquired(), n)
	}
}

// TestLinkLatencyOnlyBusyTime pins the occupancy fix: a zero-byte transfer
// pays only latency, but that latency is real link occupancy and must show
// up in BusyTime.
func TestLinkLatencyOnlyBusyTime(t *testing.T) {
	e := New()
	l := NewLink(e, "gpfs", 100, 0.5)
	e.Go("t", func(p *Proc) {
		l.Transfer(p, 0) // latency-only: busy [0, 0.5]
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.BusyTime(), 0.5, 1e-9) {
		t.Fatalf("busy time = %v, want 0.5 (latency-only transfer occupies the link)", l.BusyTime())
	}
	if l.Transfers() != 1 {
		t.Fatalf("transfers = %d, want 1", l.Transfers())
	}
}

// TestLinkOverlappingLatencyBusyTime checks that concurrent latency waits
// are counted as one occupancy interval, not summed per waiter.
func TestLinkOverlappingLatencyBusyTime(t *testing.T) {
	e := New()
	l := NewLink(e, "gpfs", 100, 0.5)
	for i := 0; i < 3; i++ {
		e.Go("t", func(p *Proc) {
			l.Transfer(p, 0)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.BusyTime(), 0.5, 1e-9) {
		t.Fatalf("busy time = %v, want 0.5 (overlapping waits count once)", l.BusyTime())
	}
}

// TestLinkLatencyThenFlowBusyTime covers the combined case: latency interval
// followed by the flow interval, with a gap in between from another process.
func TestLinkLatencyThenFlowBusyTime(t *testing.T) {
	e := New()
	l := NewLink(e, "disk", 100, 0.25)
	e.Go("t", func(p *Proc) {
		l.Transfer(p, 100) // latency [0,0.25] + flow [0.25,1.25]
		p.Wait(1)          // idle [1.25,2.25]
		l.Transfer(p, 0)   // latency [2.25,2.5]
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.BusyTime(), 1.5, 1e-9) {
		t.Fatalf("busy time = %v, want 1.5", l.BusyTime())
	}
}

// TestPoolChurnDeterminism runs a workload with heavy event/flow/proc
// pooling twice and demands identical timestamps — pooling must be
// invisible to the simulation.
func TestPoolChurnDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New()
		var stamps []float64
		srv := NewServer(e, "cpu", 3)
		link := NewLink(e, "net", 1000, 0.001)
		for w := 0; w < 4; w++ {
			e.Go("w", func(p *Proc) {
				for i := 0; i < 10; i++ {
					srv.Acquire(p)
					link.Transfer(p, 100*float64(i+1))
					p.Wait(0.01)
					srv.Release()
					stamps = append(stamps, p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stamp %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestZeroDelayRingOrder pins the zero-delay ring's ordering contract
// against the heap: events at the same instant fire in seq (schedule)
// order regardless of which structure holds them. The critical case is a
// heap event sharing its instant with earlier-pushed ring entries — the
// heap root's smaller seq must win the tie.
func TestZeroDelayRingOrder(t *testing.T) {
	e := New()
	var got []string
	log := func(s string) func() { return func() { got = append(got, s) } }

	e.Schedule(5, func() {
		got = append(got, "H1")
		// Scheduled at t=5 while H2 (also at 5, smaller seq) is still
		// pending on the heap: H2 must fire before these ring entries.
		e.Schedule(0, log("X"))
		e.Schedule(0, log("Y"))
	})
	e.Schedule(5, log("H2"))
	e.Schedule(0, log("A")) // ring at t=0
	e.Schedule(0, log("B"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "H1", "H2", "X", "Y"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestZeroDelayRingCancelReschedule pins handle semantics for
// ring-resident events: Cancel suppresses the fire and corrects Pending,
// Reschedule moves the event out of (or back into) the ring with a fresh
// seq, and the stale ring entries left behind are skipped silently.
func TestZeroDelayRingCancelReschedule(t *testing.T) {
	e := New()
	var got []string
	log := func(s string) func() { return func() { got = append(got, s) } }

	z := e.Schedule(0, log("Z"))
	if !z.Scheduled() {
		t.Fatal("ring event reports not scheduled")
	}
	if p := e.Pending(); p != 1 {
		t.Fatalf("Pending = %d, want 1", p)
	}
	z.Cancel()
	if z.Scheduled() || !z.Canceled() {
		t.Fatal("cancelled ring event still reports scheduled")
	}
	if p := e.Pending(); p != 0 {
		t.Fatalf("Pending after Cancel = %d, want 0", p)
	}

	// R starts on the ring at t=0, is rescheduled to t=2 (ring → heap),
	// and must fire after the t=1 heap event despite its earlier seq.
	r := e.Schedule(0, log("R"))
	e.Schedule(1, log("M"))
	e.Reschedule(r, 2)
	if !r.Scheduled() {
		t.Fatal("rescheduled ring event reports not scheduled")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"M", "R"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

// TestZeroDelayRingRescheduleToNow covers the ring-to-ring reschedule: a
// ring-resident event rescheduled with delay 0 stays at the current
// instant but takes a fresh seq, so it fires after zero-delay events
// scheduled in between.
func TestZeroDelayRingRescheduleToNow(t *testing.T) {
	e := New()
	var got []string
	log := func(s string) func() { return func() { got = append(got, s) } }

	r := e.Schedule(0, log("R"))
	e.Schedule(0, log("A"))
	e.Reschedule(r, 0) // R's seq now follows A's
	e.Schedule(0, log("B"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "R", "B"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("fired %v, want %v", got, want)
	}
}
