package sim

import (
	"fmt"
	"math"
)

// event is the engine-internal scheduled-callback node. Nodes are pooled:
// when a pool-owned node fires it is recycled for the next Schedule, so
// steady-state event traffic allocates nothing. Nodes owned by a Proc or a
// Link (owned == true) are never returned to the pool — their owner reuses
// them directly across schedule cycles.
type event struct {
	at  float64
	seq uint64 // tie-breaker: FIFO among events at the same instant

	// Exactly one of fn/proc is set: fn is a plain callback; proc marks a
	// process handoff node that the dispatch loop resumes directly, with no
	// closure or callback indirection.
	fn   func()
	proc *Proc

	eng      *Engine
	index    int    // heap index, -1 while off-heap
	gen      uint64 // bumped each time a pooled node is recycled
	owned    bool   // Proc-/Link-owned: reused by the owner, never pooled
	canceled bool
}

// Event is a handle to a scheduled callback, returned by Engine.Schedule.
// It is a small value (copyable) carrying a generation stamp, so a handle
// that outlives its event — the underlying storage may have been recycled
// for a later Schedule — degrades safely: Cancel becomes a no-op and
// Canceled reports false rather than corrupting an unrelated event.
type Event struct {
	n   *event
	gen uint64
}

// Cancel removes the event from the schedule so it never fires. Cancelling
// an already-fired, already-cancelled or zero Event is a no-op.
func (ev Event) Cancel() {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.index == -1 || n.canceled {
		return
	}
	n.canceled = true
	if n.index == ringIndex {
		// The ring entry goes stale (index no longer matches) and is
		// reaped lazily at pop.
		n.index = -1
		n.eng.ringLive--
	} else {
		n.eng.q.remove(n)
	}
	// The node is intentionally NOT pooled: it keeps its generation and
	// canceled flag forever, so Canceled() on this handle stays accurate.
}

// Canceled reports whether Cancel was called on the event.
func (ev Event) Canceled() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.canceled
}

// Scheduled reports whether the event is still pending (not yet fired and
// not cancelled).
func (ev Event) Scheduled() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.index != -1
}

// At returns the virtual time at which the event is scheduled to fire. It
// is meaningful only while the event is pending (see Scheduled).
func (ev Event) At() float64 {
	if ev.n == nil || ev.n.gen != ev.gen {
		return math.NaN()
	}
	return ev.n.at
}

// heapEntry is one scheduled event with its ordering key inlined: sift
// comparisons read (at, seq) straight from the heap's backing array instead
// of dereferencing two event pointers per comparison — the event-heap is
// the hottest data structure in the simulator and the pointer chases were
// its dominant cost.
type heapEntry struct {
	at  float64
	seq uint64
	n   *event
}

// eventHeap is a 4-ary min-heap ordered by (at, seq), implemented directly
// on the concrete element type: no container/heap interface dispatch, and
// sift operations move elements with single assignments instead of swaps.
// The shallower 4-ary shape trades a few extra comparisons per level for
// half the levels and better cache behaviour on the hot push/pop path.
type eventHeap []heapEntry

// before reports whether a fires strictly before b.
func before(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) up(i int) {
	e := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].n.index = i
		i = parent
	}
	h[i] = e
	e.n.index = i
}

// down sifts h[i] toward the leaves; it reports whether the element moved.
func (h eventHeap) down(i int) bool {
	e := h[i]
	start := i
	sz := len(h)
	for {
		first := i<<2 + 1
		if first >= sz {
			break
		}
		min := first
		last := first + 4
		if last > sz {
			last = sz
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[min]) {
				min = c
			}
		}
		if !before(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].n.index = i
		i = min
	}
	h[i] = e
	e.n.index = i
	return i != start
}

func (h *eventHeap) push(n *event) {
	*h = append(*h, heapEntry{at: n.at, seq: n.seq, n: n})
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	root := old[0].n
	last := len(old) - 1
	e := old[last]
	old[last] = heapEntry{}
	*h = old[:last]
	if last > 0 {
		(*h)[0] = e
		(*h).down(0)
	}
	root.index = -1
	return root
}

// fix repairs the heap after the element at index i changed its key,
// refreshing the inlined key from the event first.
func (h eventHeap) fix(i int) {
	h[i].at, h[i].seq = h[i].n.at, h[i].n.seq
	if !h.down(i) {
		h.up(i)
	}
}

// remove deletes the element at index i.
func (h *eventHeap) remove(i int) {
	old := *h
	last := len(old) - 1
	removed := old[i].n
	if i != last {
		old[i] = old[last]
		old[i].n.index = i
	}
	old[last] = heapEntry{}
	*h = old[:last]
	if i < last {
		if !old[:last].down(i) {
			old[:last].up(i)
		}
	}
	removed.index = -1
}

// eventQueue is the pending-event schedule contract: both implementations
// pop events in exactly (at, seq) order, so the engine's observable event
// sequence — and therefore every golden fixture — is independent of which
// queue is active. The 4-ary heap wins below ~10⁴ pending events; the
// ladder queue's amortized O(1) operations win beyond (see
// BenchmarkEventQueue), which is why the engine switches adaptively.
type eventQueue interface {
	// push enqueues an off-queue node keyed by its current (at, seq).
	push(n *event)
	// pop removes and returns the earliest pending node (nil when empty),
	// leaving n.index < 0.
	pop() *event
	// fix re-keys a queued node whose (at, seq) was just updated.
	fix(n *event)
	// remove deletes a queued node.
	remove(n *event)
	// len reports the number of live queued nodes.
	len() int
}

// heapQueue adapts eventHeap to the eventQueue contract.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(n *event) { q.h.push(n) }
func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h.pop()
}
func (q *heapQueue) fix(n *event)    { q.h.fix(n.index) }
func (q *heapQueue) remove(n *event) { q.h.remove(n.index) }
func (q *heapQueue) len() int        { return len(q.h) }

// QueueKind selects the engine's pending-event queue implementation.
type QueueKind int

const (
	// QueueAuto starts on the 4-ary heap and migrates to the ladder
	// queue when the pending-event count first crosses ladderThreshold.
	// This is the default: small runs never pay the ladder's setup, and
	// million-task runs never pay O(log n) heap pops.
	QueueAuto QueueKind = iota
	// QueueHeap pins the 4-ary heap.
	QueueHeap
	// QueueLadder pins the ladder queue from the first event.
	QueueLadder
)

// ringIndex is the event.index sentinel for nodes parked on the engine's
// zero-delay ring rather than the queue proper. Off-queue stays exactly
// -1: every "is this node pending" check in the package tests index != -1,
// never index < 0, so ring residency reads as scheduled.
const ringIndex = -2

// ringEntry is one zero-delay ring slot. The seq snapshot detects stale
// entries: cancelling or rescheduling the node changes n.index or n.seq,
// and the mismatched entry is skipped at pop instead of being searched for
// and removed eagerly.
type ringEntry struct {
	seq uint64
	n   *event
}

// ladderThreshold is the pending-event count at which QueueAuto migrates
// from the heap to the ladder queue. BenchmarkEventQueue's hold model
// measures the ladder ahead at every scale (1k: 125 vs 141 ns/op, 32k:
// 190 vs 215, 1M: 354 vs 452) but it amortizes ~25-85 B/op of bucket
// storage where the heap is allocation-free — so small runs, which sit
// under the alloc guard's budget, stay on the heap, and the ladder
// engages where its O(1) advantage compounds and the amortized bytes
// vanish against the run's footprint.
const ladderThreshold = 16384

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct with New.
//
// # Handoff protocol
//
// The engine runs processes as coroutines: Run's goroutine executes the
// event-dispatch loop, running plain callback events inline; when the next
// event belongs to a process, the loop switches control into that process's
// coroutine directly (iter.Pull's coroutine transfer — a goroutine switch
// that bypasses the Go scheduler entirely) and gets control back the moment
// the process suspends or finishes. A blocking primitive (Wait,
// Server.Acquire, Link.Transfer) therefore costs a single switch-out/
// switch-in pair per park/resume — no channel operations, no scheduler
// wake-ups — and the simulation stays deterministic regardless of
// GOMAXPROCS because exactly one goroutine is ever runnable.
type Engine struct {
	now float64
	seq uint64

	// q is the active pending-event queue; hq is the embedded default
	// heap, lq the ladder queue once instantiated (nil while on the
	// heap). qkind is the selection policy (see SetQueueKind).
	q     eventQueue
	hq    heapQueue
	lq    *ladderQueue
	qkind QueueKind
	// spareLQ is an arena-recycled ladder queue adopted at NewIn, used
	// (instead of allocating) if this engine migrates.
	spareLQ *ladderQueue

	// ring is the zero-delay FIFO: events scheduled at exactly the current
	// instant bypass the heap — ~35% of all events in the workflow runs
	// (every proc wakeup is a zero-delay schedule), each saving an O(log n)
	// sift pair. Seq order equals append order because seq assignment is
	// globally monotonic, so a plain FIFO preserves the (at, seq) pop
	// contract; pop still compares against the heap root, which wins a
	// same-instant tie on a smaller seq. Active only in the heap regime:
	// migration to the ladder flushes the ring and routes everything
	// through the ladder (see flushRing).
	ring     []ringEntry
	ringHead int
	ringLive int // non-stale ring entries (for Pending)

	free     []*event  // recycled pool-owned event nodes
	nodeSlab []event   // current node slab; chunks never move once handed out
	slabs    [][]event // every chunk ever carved, for arena recycling

	err error // sticky corrupt-simulation error discovered during dispatch

	liveProcs   int // started and not yet finished
	parkedProcs int // suspended awaiting a resume event

	// freeProcs holds finished Procs awaiting reuse; Go pops from here
	// before allocating. allProcs holds every Proc ever created on this
	// engine, so Run can tear every coroutine down on exit — including
	// processes left suspended mid-task by a deadlock.
	freeProcs []*Proc
	allProcs  []*Proc

	ran bool
}

// New returns an empty engine with the clock at 0.
func New() *Engine {
	e := &Engine{}
	e.q = &e.hq
	return e
}

// SetQueueKind selects the pending-event queue policy. It may be called at
// any point; pinning a kind the engine is not currently on migrates every
// pending event in (at, seq) order, so the observable event sequence is
// unaffected. QueueAuto (the default) keeps whatever queue is active and
// re-enables threshold-based migration.
func (e *Engine) SetQueueKind(k QueueKind) {
	e.qkind = k
	switch k {
	case QueueLadder:
		if e.lq == nil {
			e.migrateToLadder()
		}
	case QueueHeap:
		if e.lq != nil {
			e.migrateToHeap()
		}
	}
}

// migrateToLadder drains the heap into a fresh ladder queue in pop order.
// Both queues pop in exactly (at, seq) order, so migration at any instant
// preserves the event sequence.
func (e *Engine) migrateToLadder() {
	lq := e.spareLQ
	e.spareLQ = nil
	if lq == nil {
		lq = newLadderQueue()
	}
	for {
		n := e.hq.pop()
		if n == nil {
			break
		}
		lq.push(n)
	}
	e.flushRing(lq)
	e.lq = lq
	e.q = lq
}

// migrateToHeap drains the ladder queue back into the heap.
func (e *Engine) migrateToHeap() {
	for {
		n := e.lq.pop()
		if n == nil {
			break
		}
		e.hq.push(n)
	}
	e.lq = nil
	e.q = &e.hq
}

// pushNode enqueues n on the active queue and applies the adaptive
// migration policy: once the heap's pending count crosses ladderThreshold
// under QueueAuto, the engine moves to the ladder queue for good (pending
// counts oscillate near a threshold; flapping back would thrash).
func (e *Engine) pushNode(n *event) {
	if n.at == e.now && e.lq == nil {
		n.index = ringIndex
		e.ring = append(e.ring, ringEntry{seq: n.seq, n: n})
		e.ringLive++
		return
	}
	e.q.push(n)
	if e.qkind == QueueAuto && e.lq == nil && e.hq.len() >= ladderThreshold {
		e.migrateToLadder()
	}
}

// popNode removes and returns the earliest pending event across the queue
// and the zero-delay ring, or nil when both are empty. Every non-stale ring
// entry fires at the current instant (the clock cannot advance past an
// undrained minimum), so the queue wins only when its root shares the
// instant with a smaller sequence number — the one case where events
// scheduled earlier at this timestamp must fire before a ring entry.
func (e *Engine) popNode() *event {
	for e.ringHead < len(e.ring) {
		ent := &e.ring[e.ringHead]
		if ent.n.index == ringIndex && ent.n.seq == ent.seq {
			break
		}
		ent.n = nil // cancelled or rescheduled away: reap
		e.ringHead++
	}
	if e.ringHead == len(e.ring) {
		if e.ringHead > 0 {
			e.ring = e.ring[:0]
			e.ringHead = 0
		}
		return e.q.pop()
	}
	ent := &e.ring[e.ringHead]
	if h := e.hq.h; len(h) > 0 && h[0].at == ent.n.at && h[0].seq < ent.seq {
		return e.q.pop()
	}
	n := ent.n
	ent.n = nil
	e.ringHead++
	e.ringLive--
	n.index = -1
	return n
}

// flushRing drains every live ring entry into q, keyed by its existing
// (at, seq) — the queue orders them, so insertion order is irrelevant.
func (e *Engine) flushRing(q eventQueue) {
	for e.ringHead < len(e.ring) {
		ent := &e.ring[e.ringHead]
		if ent.n.index == ringIndex && ent.n.seq == ent.seq {
			ent.n.index = -1
			q.push(ent.n)
		}
		ent.n = nil
		e.ringHead++
	}
	e.ring = e.ring[:0]
	e.ringHead = 0
	e.ringLive = 0
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// checkDelay panics on the delays the simulated cluster never produces —
// a negative or NaN delay indicates a cost-model bug that must not be
// silently clamped.
func (e *Engine) checkDelay(delay float64) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
}

// getNode returns a pool-owned node ready for scheduling. Fresh nodes are
// carved from fixed-capacity slab chunks (a chunk is abandoned, not grown,
// when full — its nodes stay alive through the free list and the heap), so
// the pool warming up costs one allocation per chunk rather than one per
// node.
func (e *Engine) getNode() *event {
	if k := len(e.free); k > 0 {
		n := e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		return n
	}
	if len(e.nodeSlab) == cap(e.nodeSlab) {
		e.nodeSlab = make([]event, 0, 256)
		e.slabs = append(e.slabs, e.nodeSlab[:256])
	}
	e.nodeSlab = e.nodeSlab[:len(e.nodeSlab)+1]
	n := &e.nodeSlab[len(e.nodeSlab)-1]
	n.eng = e
	n.index = -1
	return n
}

// putNode recycles a fired pool-owned node. Bumping the generation
// invalidates every outstanding handle to the node's previous use.
func (e *Engine) putNode(n *event) {
	n.gen++
	n.fn = nil
	n.canceled = false
	e.free = append(e.free, n)
}

// schedNode pushes an off-heap node with a fresh sequence number. It is the
// single entry point for owned nodes (Proc resume events, Link completion
// events), so its seq assignment order — not node identity — is what fixes
// the deterministic event order.
func (e *Engine) schedNode(n *event, delay float64) {
	e.checkDelay(delay)
	if n.index != -1 {
		panic(fmt.Sprintf("sim: event already scheduled at t=%v", n.at))
	}
	n.at = e.now + delay
	e.seq++
	n.seq = e.seq
	n.canceled = false
	e.pushNode(n)
}

// fixNode reschedules a node in place: if it is on the heap its position is
// repaired with fix (no pop/re-push, no dead entry left behind); otherwise
// it is pushed. Either way it receives a fresh sequence number, exactly as
// if it had been cancelled and re-scheduled — so event ordering is
// identical to the cancel-and-repush protocol it replaces.
func (e *Engine) fixNode(n *event, delay float64) {
	e.checkDelay(delay)
	n.at = e.now + delay
	e.seq++
	n.seq = e.seq
	switch {
	case n.index >= 0:
		e.q.fix(n)
	case n.index == ringIndex:
		// The old ring entry went stale the moment seq changed. Re-ring
		// when still at the current instant (the ring exists only in the
		// heap regime, and a node can only be ring-resident then);
		// otherwise fall back to the queue.
		if n.at == e.now {
			e.ring = append(e.ring, ringEntry{seq: n.seq, n: n})
		} else {
			n.index = -1
			e.ringLive--
			e.pushNode(n)
		}
	default:
		n.canceled = false
		e.pushNode(n)
	}
}

// Schedule registers fn to run after delay seconds of virtual time and
// returns a handle so it can be cancelled or rescheduled. A negative or NaN
// delay panics.
func (e *Engine) Schedule(delay float64, fn func()) Event {
	n := e.getNode()
	n.fn = fn
	e.schedNode(n, delay)
	return Event{n: n, gen: n.gen}
}

// Reschedule moves a still-pending event to fire after delay seconds from
// the current instant, updating its position in the schedule in place
// (fix on the live heap index) instead of cancelling and re-adding it. The
// event receives a fresh sequence number, so it orders among same-instant
// events exactly as a newly scheduled one. Rescheduling an event that
// already fired or was cancelled panics: it no longer exists, so the caller
// holds a stale handle and must Schedule anew.
func (e *Engine) Reschedule(ev Event, delay float64) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.index == -1 {
		panic(fmt.Sprintf("sim: Reschedule of completed event at t=%v", e.now))
	}
	e.fixNode(n, delay)
}

// dispatch is the event loop: it pops events, advances the clock, runs
// callback events inline and switches control into process coroutines for
// handoff events. It returns when the queue is exhausted or the simulation
// is corrupt (see e.err).
func (e *Engine) dispatch() {
	for {
		n := e.popNode()
		if n == nil {
			return
		}
		if n.at < e.now {
			// Fatal invariant violation: formats once, then the run dies.
			e.err = fmt.Errorf("sim: time went backwards: %v < %v", n.at, e.now) //wfsimlint:allow hotalloc
			return
		}
		e.now = n.at
		if n.proc != nil {
			// Control transfers into the process and comes back the moment
			// it suspends (Wait, park) or finishes.
			n.proc.resume()
			continue
		}
		fn := n.fn
		if !n.owned {
			e.putNode(n)
		}
		fn()
	}
}

// Run executes events until the queue drains. It returns an error if the
// queue drains while processes are still parked (a deadlock: some process
// waits for a resource that will never be released). Run may only be called
// once per engine.
func (e *Engine) Run() error {
	if e.ran {
		return fmt.Errorf("sim: Run called twice") //wfsimlint:allow hotalloc
	}
	e.ran = true
	e.dispatch()
	deadlocked := e.parkedProcs
	e.stopProcs()
	if e.err != nil {
		return e.err
	}
	if deadlocked > 0 {
		// Terminal diagnosis after the queue drained: never steady-state.
		//wfsimlint:allow hotalloc
		return fmt.Errorf("sim: deadlock: %d process(es) parked with no pending events at t=%v",
			deadlocked, e.now)
	}
	return nil
}

// stopProcs releases every process coroutine created on or adopted by this
// engine when the simulation ends: idle ones are donated to the global
// coroutine pool for the next engine (overflow beyond the pool cap is
// stopped), while ones left suspended mid-task by a deadlock are stopped,
// unwinding via procStopped. Beyond the bounded pool, an engine leaks no
// goroutines.
func (e *Engine) stopProcs() {
	for i, p := range e.allProcs {
		if !p.pooled {
			p.stop()
		}
		e.allProcs[i] = nil
	}
	e.allProcs = e.allProcs[:0]
	donateProcs(e.freeProcs)
	for i := range e.freeProcs {
		e.freeProcs[i] = nil
	}
	e.freeProcs = e.freeProcs[:0]
}

// Pending returns the number of live scheduled events. Cancelled events
// never count: the heap removes them immediately, and the ladder queue
// decrements its live count at Cancel even though the entry is reaped
// lazily.
func (e *Engine) Pending() int { return e.q.len() + e.ringLive }
