package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback in virtual time. Events are created with
// Engine.Schedule and may be cancelled before they fire.
type Event struct {
	at       float64
	seq      uint64 // tie-breaker: FIFO among events at the same instant
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() float64 { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct with New.
type Engine struct {
	now    float64
	events eventHeap
	seq    uint64

	// yield is the engine<->process handoff channel. A process goroutine
	// sends one token when it parks or finishes; the engine (inside event
	// dispatch) receives it. Unbuffered, so exactly one goroutine runs at a
	// time and the simulation is deterministic.
	yield chan struct{}

	liveProcs   int // started and not yet finished
	parkedProcs int // blocked on a resume channel

	ran bool
}

// New returns an empty engine with the clock at 0.
func New() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule registers fn to run after delay seconds of virtual time and
// returns the event so it can be cancelled. A negative or NaN delay panics:
// the simulated cluster never produces one, so it indicates a cost-model bug
// that must not be silently clamped.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
	e.seq++
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Run executes events until the queue drains. It returns an error if the
// queue drains while processes are still parked (a deadlock: some process
// waits for a resource that will never be released). Run may only be called
// once per engine.
func (e *Engine) Run() error {
	if e.ran {
		return fmt.Errorf("sim: Run called twice")
	}
	e.ran = true
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			return fmt.Errorf("sim: time went backwards: %v < %v", ev.at, e.now)
		}
		e.now = ev.at
		ev.fn()
	}
	if e.parkedProcs > 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) parked with no pending events at t=%v",
			e.parkedProcs, e.now)
	}
	return nil
}

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }
