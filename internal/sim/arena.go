package sim

// Arena holds a finished engine's recyclable substrate storage — event-node
// slabs, the heap's backing array, proc bookkeeping slices and the ladder
// queue's bucket freelists — so a sweep running thousands of trials warms
// these allocations once per worker instead of once per trial.
//
// Lifetime rules (see DESIGN.md §12): an Arena may be used by one run at a
// time (runner gives each worker its own); Engine.Release may only be
// called after Run has returned, when no events are pending; and adopted
// node slabs get a generation bump, so Event handles from a released run
// degrade into no-ops exactly like handles to recycled pool nodes within
// a run. Process coroutines are not arena state — they already recycle
// engine-to-engine through the package-global proc pool.
type Arena struct {
	slabs     [][]event
	free      []*event
	heap      eventHeap
	ring      []ringEntry
	lq        *ladderQueue
	allProcs  []*Proc
	freeProcs []*Proc
}

// NewIn returns an engine whose substrate storage is adopted from the
// arena (New semantics when a is nil or empty). Every adopted node is
// re-stamped: generation bumped, re-pointed at the new engine, and filed
// on the free list.
func NewIn(a *Arena) *Engine {
	e := New()
	if a == nil {
		return e
	}
	e.slabs, a.slabs = a.slabs, nil
	e.free, a.free = a.free[:0], nil
	for _, slab := range e.slabs {
		for i := range slab {
			n := &slab[i]
			n.gen++
			n.eng = e
			n.index = -1
			n.fn = nil
			n.proc = nil
			n.owned = false
			n.canceled = false
			e.free = append(e.free, n)
		}
	}
	e.hq.h, a.heap = a.heap, nil
	e.ring, a.ring = a.ring, nil
	e.spareLQ, a.lq = a.lq, nil
	e.allProcs, a.allProcs = a.allProcs, nil
	e.freeProcs, a.freeProcs = a.freeProcs, nil
	return e
}

// Release donates the engine's substrate storage to the arena for the
// next NewIn. It must only be called once the engine is finished (Run
// returned): the schedule is empty, so every slab node is idle.
func (e *Engine) Release(a *Arena) {
	a.slabs = append(a.slabs, e.slabs...)
	e.slabs, e.nodeSlab = nil, nil
	a.free, e.free = e.free[:0], nil
	a.heap, e.hq.h = e.hq.h[:0], nil
	a.ring, e.ring = e.ring[:0], nil
	e.ringHead, e.ringLive = 0, 0
	if e.lq != nil {
		e.lq.reset()
		a.lq, e.lq = e.lq, nil
	}
	a.allProcs, e.allProcs = e.allProcs[:0], nil
	a.freeProcs, e.freeProcs = e.freeProcs[:0], nil
	e.q = &e.hq
}

// reset empties a drained ladder queue for reuse, keeping its bucket and
// rung freelists warm. Any resident stale entries (cancelled nodes never
// reaped) are cleared so no pointer into the previous run's slabs
// survives.
func (q *ladderQueue) reset() {
	for _, r := range q.rungs {
		q.putRung(r)
	}
	q.rungs = q.rungs[:0]
	clear(q.bottom)
	q.bottom, q.bot0 = nil, 0
	clear(q.top)
	q.top = q.top[:0]
	q.nlive = 0
	q.spread = false
	q.topStart, q.topMax = 0, 0
}
