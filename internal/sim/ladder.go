package sim

import (
	"math"
	"slices"
)

// This file implements the ladder queue (Tang, Goh & Thng, ACM TOMACS
// 2005): a multi-level calendar structure whose enqueue and dequeue are
// amortized O(1) regardless of pending-event count, where a binary or
// 4-ary heap pays O(log n) per operation. At 10⁶ pending events the heap
// walks ~10 levels of increasingly cold cache lines per pop; the ladder
// touches one bucket.
//
// Structure. Events live in three tiers:
//
//   - top: an unsorted overflow list for far-future events (at >=
//     topStart). While the queue has no spread structure yet, every
//     insert lands here — bulk loading is O(1) per event.
//   - rungs: a stack of bucket arrays. Each rung divides a time span into
//     fixed-width buckets; rungs[0] covers the latest span (created by
//     spreading top) and each deeper rung subdivides one bucket of the
//     rung above it into a finer span. Buckets within a rung are consumed
//     in ascending index order (r.cur is the consumption cursor).
//   - bottom: the earliest bucket's events, sorted by (at, seq) and
//     consumed front to back (bot0). Sorting is confined to one bucket at
//     a time, which is what keeps the amortized cost constant: a bucket
//     that is still too large to sort cheaply is spread into a finer rung
//     instead.
//
// Ordering invariant. Bucket assignment uses the canonical index
// floor((at-base)/width), which is monotone non-decreasing in at (IEEE
// subtraction and division are monotone, floor is monotone), so for
// buckets i < j every event in i keys <= every event in j; consuming
// buckets in index order and sorting each one before handing it to bottom
// therefore yields the exact global (at, seq) order the heap produces.
// Inserts route to the coarsest rung whose unconsumed region contains the
// event's canonical bucket; events earlier than every unconsumed bucket
// sort-insert directly into bottom (at position >= bot0 — the clock never
// goes backwards, so an insert is never earlier than an already-popped
// event).
//
// Deletion and reschedule are lazy: Cancel only flags the node (index =
// -1) and Engine.fixNode inserts a fresh entry under the node's new seq.
// A resident entry is live iff its captured seq still matches the node's
// and the node is on-queue; everything else is reaped when its bucket is
// spread, sorted, or popped. Sequence numbers are globally unique, so at
// most one entry per node is ever live.

const (
	// ladderSortMax is the largest bucket sorted straight into bottom;
	// bigger live buckets are spread into a finer rung instead (unless
	// degenerate: zero time span, or maxRungs reached).
	ladderSortMax = 64
	// ladderMaxBuckets caps a rung's bucket count: spreading N events
	// targets ~1 event per bucket but never more than this many buckets,
	// so a million-event top spread costs ~100 KB of bucket headers, not
	// ~24 MB. Overfull buckets simply spread again one level down.
	ladderMaxBuckets = 4096
	// ladderMaxRungs bounds the rung stack; a bucket that is still
	// oversized at the bottom rung is sorted directly. Spans shrink by
	// ~ladderMaxBuckets per level, so real schedules never get close.
	ladderMaxRungs = 16
)

// lent is one resident ladder entry: the node's ordering key captured at
// insert time, plus the node. A stale entry (seq mismatch or off-queue
// node) is reaped lazily.
type lent struct {
	at  float64
	seq uint64
	n   *event
}

// lentBefore orders entries by (at, seq).
func lentBefore(a, b lent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func cmpLent(a, b lent) int {
	if lentBefore(a, b) {
		return -1
	}
	return 1 // keys are unique (seq is), so equality never happens
}

// rung is one ladder level: a bucket array over [base, base+width*len).
type rung struct {
	base    float64
	width   float64
	cur     int // next bucket to consume; buckets below cur are dead
	buckets [][]lent
	// remaining counts resident entries (live or stale) in buckets[cur:],
	// so an exhausted rung is detected without scanning.
	remaining int
}

// ladderQueue implements eventQueue. See the file comment for structure
// and invariants.
type ladderQueue struct {
	nlive int // live entries (Pending)

	bottom []lent
	bot0   int // consumption cursor into bottom

	rungs []*rung

	top      []lent
	topStart float64 // established by the first top spread
	topMax   float64 // max at currently resident in top
	spread   bool    // true once the first top spread happened

	// freelists: consumed bucket backing arrays and exhausted rungs are
	// recycled; with arena reuse they survive across runs.
	freeBuckets [][]lent
	freeRungs   []*rung
}

func newLadderQueue() *ladderQueue { return &ladderQueue{} }

func (q *ladderQueue) len() int { return q.nlive }

// stale reports whether a resident entry no longer represents its node's
// current schedule.
func stale(e lent) bool { return e.n.index < 0 || e.n.seq != e.seq }

func (q *ladderQueue) push(n *event) {
	n.index = 0 // on-queue marker; the ladder needs no positional index
	q.nlive++
	q.insert(lent{at: n.at, seq: n.seq, n: n})
}

func (q *ladderQueue) fix(n *event) {
	// The node was re-keyed in place (Engine.fixNode assigns a fresh seq
	// first); the old entry went stale by seq mismatch the same moment.
	// Inserting the new key is all a lazy-deletion reschedule needs —
	// nlive is unchanged, the node never left the queue.
	q.insert(lent{at: n.at, seq: n.seq, n: n})
}

func (q *ladderQueue) remove(n *event) {
	// Lazy: flag the node off-queue; its entry dies by the stale test.
	n.index = -1
	q.nlive--
}

func (q *ladderQueue) insert(e lent) {
	if !q.spread || e.at >= q.topStart {
		if len(q.top) == 0 || e.at > q.topMax {
			q.topMax = e.at
		}
		q.top = append(q.top, e)
		return
	}
	for _, r := range q.rungs {
		b := int(math.Floor((e.at - r.base) / r.width))
		if b >= len(r.buckets) {
			b = len(r.buckets) - 1
		}
		if b >= r.cur {
			q.bucketAppend(r, b, e)
			r.remaining++
			return
		}
		// The event precedes this rung's unconsumed region; it belongs
		// to a finer rung below or directly in bottom.
	}
	q.insertBottom(e)
}

// insertBottom sort-inserts into the unconsumed tail of bottom.
func (q *ladderQueue) insertBottom(e lent) {
	q.bottom = append(q.bottom, lent{})
	i := len(q.bottom) - 1
	for i > q.bot0 && lentBefore(e, q.bottom[i-1]) {
		q.bottom[i] = q.bottom[i-1]
		i--
	}
	q.bottom[i] = e
}

func (q *ladderQueue) pop() *event {
	for {
		for q.bot0 < len(q.bottom) {
			e := q.bottom[q.bot0]
			q.bottom[q.bot0] = lent{}
			q.bot0++
			if stale(e) {
				continue
			}
			e.n.index = -1
			q.nlive--
			return e.n
		}
		q.putBucket(q.bottom)
		q.bottom, q.bot0 = nil, 0
		if !q.refill() {
			return nil
		}
	}
}

// refill loads the next non-empty bucket into bottom: from the finest
// rung first, then by spreading top. Returns false when the queue is
// truly empty.
func (q *ladderQueue) refill() bool {
	for len(q.rungs) > 0 {
		r := q.rungs[len(q.rungs)-1]
		if r.remaining == 0 {
			q.putRung(r)
			q.rungs = q.rungs[:len(q.rungs)-1]
			continue
		}
		for len(r.buckets[r.cur]) == 0 {
			r.cur++
		}
		b := r.buckets[r.cur]
		r.buckets[r.cur] = nil
		r.cur++
		r.remaining -= len(b)
		live := compactLive(b)
		if len(live) == 0 {
			q.putBucket(b)
			continue
		}
		if len(live) > ladderSortMax && len(q.rungs) < ladderMaxRungs && q.spawnRung(live) {
			q.putBucket(b)
			continue
		}
		slices.SortFunc(live, cmpLent)
		q.bottom, q.bot0 = live, 0
		return true
	}
	if len(q.top) == 0 {
		return false
	}
	live := compactLive(q.top)
	q.topStart = q.topMax
	q.spread = true
	if len(live) == 0 {
		q.top = q.top[:0]
		return false
	}
	if len(live) > ladderSortMax && q.spawnRung(live) {
		q.top = q.top[:0]
		return true // recurse via the rung path next iteration
	}
	slices.SortFunc(live, cmpLent)
	q.bottom, q.bot0 = live, 0
	q.top = nil // bottom adopted top's backing array
	return true
}

// spawnRung spreads entries into a fresh finer rung. It returns false
// when the entries' time span is degenerate (all-equal at, or a width
// that underflows to zero) — the caller must sort instead.
func (q *ladderQueue) spawnRung(entries []lent) bool {
	minAt, maxAt := entries[0].at, entries[0].at
	for _, e := range entries[1:] {
		if e.at < minAt {
			minAt = e.at
		}
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	nb := len(entries)
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
	}
	width := (maxAt - minAt) / float64(nb)
	if width <= 0 || math.IsInf(width, 0) {
		return false
	}
	r := q.getRung(nb)
	r.base, r.width = minAt, width
	for _, e := range entries {
		b := int(math.Floor((e.at - r.base) / r.width))
		if b >= nb {
			b = nb - 1
		}
		q.bucketAppend(r, b, e)
	}
	r.remaining = len(entries)
	q.rungs = append(q.rungs, r)
	return true
}

// compactLive filters stale entries in place and returns the live prefix.
func compactLive(b []lent) []lent {
	k := 0
	for _, e := range b {
		if !stale(e) {
			b[k] = e
			k++
		}
	}
	clear(b[k:])
	return b[:k]
}

func (q *ladderQueue) bucketAppend(r *rung, b int, e lent) {
	if r.buckets[b] == nil {
		if k := len(q.freeBuckets); k > 0 {
			r.buckets[b] = q.freeBuckets[k-1]
			q.freeBuckets = q.freeBuckets[:k-1]
		}
	}
	r.buckets[b] = append(r.buckets[b], e)
}

// putBucket recycles a consumed bucket's backing array. Oversized or
// undersized arrays are dropped: the freelist exists for the steady
// churn of small per-bucket slices.
func (q *ladderQueue) putBucket(b []lent) {
	if b == nil || cap(b) == 0 || cap(b) > 4*ladderSortMax || len(q.freeBuckets) >= 256 {
		return
	}
	clear(b[:cap(b)])
	q.freeBuckets = append(q.freeBuckets, b[:0])
}

func (q *ladderQueue) getRung(nb int) *rung {
	var r *rung
	if k := len(q.freeRungs); k > 0 {
		r = q.freeRungs[k-1]
		q.freeRungs = q.freeRungs[:k-1]
	} else {
		r = &rung{}
	}
	if cap(r.buckets) < nb {
		r.buckets = make([][]lent, nb)
	}
	r.buckets = r.buckets[:nb]
	r.cur = 0
	return r
}

func (q *ladderQueue) putRung(r *rung) {
	for i := range r.buckets {
		q.putBucket(r.buckets[i])
		r.buckets[i] = nil
	}
	if len(q.freeRungs) < ladderMaxRungs {
		q.freeRungs = append(q.freeRungs, r)
	}
}
