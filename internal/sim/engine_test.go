package sim

import (
	"math"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(2.0, func() { got = append(got, 3) })
	e.Schedule(1.0, func() { got = append(got, 1) })
	e.Schedule(1.0, func() { got = append(got, 2) }) // same instant: FIFO
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 2.0 {
		t.Fatalf("Now() = %v, want 2.0", e.Now())
	}
}

func TestScheduleZeroDelayDuringRun(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(1.0, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "b") })
	})
	e.Schedule(1.0, func() { order = append(order, "c") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Zero-delay events scheduled at t are dispatched after events already
	// queued for t (they get a later sequence number).
	want := "acb"
	var s string
	for _, x := range order {
		s += x
	}
	if s != want {
		t.Fatalf("order = %q, want %q", s, want)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1.0, func() { fired = true })
	e.Schedule(0.5, func() { ev.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestScheduleInvalidDelayPanics(t *testing.T) {
	for _, d := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Schedule(%v) did not panic", d)
				}
			}()
			New().Schedule(d, func() {})
		}()
	}
}

func TestRunTwice(t *testing.T) {
	e := New()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run did not error")
	}
}

func TestProcWait(t *testing.T) {
	e := New()
	var stamps []float64
	e.Go("p", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Wait(1.5)
		stamps = append(stamps, p.Now())
		p.Wait(0)
		stamps = append(stamps, p.Now())
		p.Wait(2.5)
		stamps = append(stamps, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 1.5, 4.0}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Wait(2)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Wait(1)
		order = append(order, "b1")
		p.Wait(2)
		order = append(order, "b3")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNestedGo(t *testing.T) {
	e := New()
	done := 0
	e.Go("outer", func(p *Proc) {
		p.Wait(1)
		p.Engine().Go("inner", func(q *Proc) {
			q.Wait(1)
			if q.Now() != 2 {
				t.Errorf("inner Now = %v, want 2", q.Now())
			}
			done++
		})
		p.Wait(5)
		done++
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New()
		var stamps []float64
		srv := NewServer(e, "cpu", 2)
		link := NewLink(e, "net", 100, 0.001)
		for i := 0; i < 8; i++ {
			e.Go("w", func(p *Proc) {
				srv.Acquire(p)
				link.Transfer(p, 250)
				p.Wait(0.5)
				srv.Release()
				stamps = append(stamps, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return stamps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
