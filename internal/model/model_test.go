package model

import (
	"math"
	"testing"
	"testing/quick"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

func TestBreakdownReproducesFigure1(t *testing.T) {
	// The analytic decomposition must reproduce Figure 1's single-task
	// numbers without any simulation.
	p := costmodel.DefaultParams()
	part, err := dataset.ByGrid(dataset.KMeansSmall, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, 10)
	b := Breakdown(p, prof)
	if b.KernelSpeedup < 4.5 || b.KernelSpeedup > 7 {
		t.Errorf("kernel speedup = %.2f, want ≈5.69", b.KernelSpeedup)
	}
	if b.UserCodeSpeedup < 1.05 || b.UserCodeSpeedup > 1.6 {
		t.Errorf("user code speedup = %.2f, want ≈1.24", b.UserCodeSpeedup)
	}
	// Amdahl consistency: user-code speedup can never exceed the Amdahl
	// limit, and the limit follows from the parallel fraction.
	if b.UserCodeSpeedup > b.AmdahlLimit {
		t.Errorf("speedup %.2f exceeds Amdahl limit %.2f", b.UserCodeSpeedup, b.AmdahlLimit)
	}
	if f := b.ParallelFraction; f < 0.1 || f > 0.4 {
		t.Errorf("parallel fraction = %.2f, want the paper's low ratio", f)
	}
}

func TestBoundsForLevel(t *testing.T) {
	b := BoundsForLevel([]float64{1, 1, 1, 1}, 2)
	if b.Lower != 2 || b.Upper != 3 {
		t.Fatalf("bounds = %+v, want lower 2 upper 3", b)
	}
	// Span-dominated case.
	b = BoundsForLevel([]float64{10, 1, 1}, 4)
	if b.Lower != 10 || b.Upper != 13 {
		t.Fatalf("bounds = %+v, want lower 10 upper 13", b)
	}
	if z := BoundsForLevel(nil, 4); z.Lower != 0 || z.Upper != 0 {
		t.Fatal("empty level should bound to zero")
	}
}

func TestBoundsProperty(t *testing.T) {
	// Lower ≤ Upper, both ≥ max task, Lower ≥ work/p.
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := int(pRaw)%16 + 1
		times := make([]float64, len(raw))
		var sum, max float64
		for i, r := range raw {
			times[i] = float64(r)/100 + 0.01
			sum += times[i]
			if times[i] > max {
				max = times[i]
			}
		}
		b := BoundsForLevel(times, p)
		return b.Lower <= b.Upper+1e-12 &&
			b.Lower >= max-1e-12 &&
			b.Lower >= sum/float64(p)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatorRespectsBounds checks every simulated parallel_sum level
// lies within [analytic lower bound, generous upper bound] — the
// simulator-vs-theory validation loop.
func TestSimulatorRespectsBounds(t *testing.T) {
	params := costmodel.DefaultParams()
	for _, grid := range []int64{32, 128, 256} {
		wf, err := kmeans.Build(kmeans.Config{
			Dataset: dataset.KMeansSmall, Grid: grid, Clusters: 10, Iterations: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.CPU})
		if err != nil {
			t.Fatal(err)
		}
		part, _ := dataset.ByGrid(dataset.KMeansSmall, grid, 1)
		prof := kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, 10)
		prof.ReadBytes = float64(part.BlockBytes())
		perTask := TaskTime(params, prof, costmodel.CPU)
		times := make([]float64, grid)
		for i := range times {
			times[i] = perTask
		}
		b := BoundsForLevel(times, 128)
		start, end, ok := res.Collector.LevelSpan(0)
		if !ok {
			t.Fatal("no level 0 records")
		}
		span := end - start
		if span < b.Lower*0.95 {
			t.Errorf("grid %d: simulated level %.2fs below analytic lower bound %.2fs",
				grid, span, b.Lower)
		}
		// Contention (shared GPFS, scheduler) may exceed the
		// contention-free Graham upper bound; allow the I/O floor on top.
		floor := IOFloor(float64(grid)*float64(part.BlockBytes()), params.SharedBandwidth)
		if span > b.Upper+floor+1 {
			t.Errorf("grid %d: simulated level %.2fs far above upper bound %.2fs + floor %.2fs",
				grid, span, b.Upper, floor)
		}
	}
}

// TestAdvisorAgreesWithSimulator validates the §5.4.3 advisor: its verdict
// must match the simulator's measured winner across the Figure 7b sweep.
func TestAdvisorAgreesWithSimulator(t *testing.T) {
	adv := NewAdvisor()
	for _, grid := range []int64{16, 32, 64, 128, 256} {
		part, err := dataset.ByGrid(dataset.KMeansSmall, grid, 1)
		if err != nil {
			t.Fatal(err)
		}
		prof := kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, 10)
		prof.ReadBytes = float64(part.BlockBytes())
		prof.WriteBytes = 8 * 10 * 101
		rec := adv.Recommend(prof, int(grid))

		// Ground truth: simulate both devices and compare the
		// partial_sum level spans.
		span := func(dev costmodel.DeviceKind) float64 {
			wf, err := kmeans.Build(kmeans.Config{
				Dataset: dataset.KMeansSmall, Grid: grid, Clusters: 10, Iterations: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{Device: dev})
			if err != nil {
				t.Fatal(err)
			}
			s, e, _ := res.Collector.LevelSpan(0)
			return e - s
		}
		cpuSpan, gpuSpan := span(costmodel.CPU), span(costmodel.GPU)
		simGPUWins := gpuSpan < cpuSpan
		// Tolerate disagreement only in the near-tie region (<12%).
		gap := math.Abs(gpuSpan-cpuSpan) / math.Max(gpuSpan, cpuSpan)
		if rec.UseGPU != simGPUWins && gap > 0.12 {
			t.Errorf("grid %d: advisor says GPU=%v, simulator says GPU=%v (cpu %.2fs gpu %.2fs)",
				grid, rec.UseGPU, simGPUWins, cpuSpan, gpuSpan)
		}
	}
}

func TestAdvisorOOM(t *testing.T) {
	adv := NewAdvisor()
	// Matmul at 8 GB blocks: GPU OOM → advisor must say CPU, confidently.
	mm, _ := matmul.Profiles(32768)
	mm.ReadBytes, mm.WriteBytes = mm.BytesIn, mm.BytesOut
	rec := adv.Recommend(mm, 1)
	if rec.UseGPU || !rec.Confident || !rec.GPU.OOM {
		t.Fatalf("rec = %+v, want confident CPU due to GPU OOM", rec)
	}
}

func TestAdvisorPrefersGPUForCompute(t *testing.T) {
	adv := NewAdvisor()
	// Matmul 2 GB blocks, 8 tasks: the Figure 7a regime where GPU wins big.
	mm, _ := matmul.Profiles(16384)
	mm.ReadBytes, mm.WriteBytes = mm.BytesIn, mm.BytesOut
	rec := adv.Recommend(mm, 8)
	if !rec.UseGPU {
		t.Fatalf("advisor should offload 2 GB matmul blocks (rec = %+v)", rec)
	}
}

func TestMaxGPUBlockElements(t *testing.T) {
	p := costmodel.DefaultParams()
	// Matmul memory model: 3 blocks of 8 bytes/element ⇒ max elements =
	// 12 GB / 24.
	max := MaxGPUBlockElements(p, 0, 24)
	if math.Abs(max-p.GPUMemBytes/24) > 1 {
		t.Fatalf("max = %v", max)
	}
	// The paper's boundary: a 2 GB block (N=16384) fits, an 8 GB does not.
	if 16384.0*16384 > max {
		t.Error("2 GB matmul block should fit")
	}
	if 32768.0*32768 < max {
		t.Error("8 GB matmul block should not fit")
	}
	if MaxGPUBlockElements(p, 13e9, 24) != 0 {
		t.Error("overflowing base should return 0")
	}
	if !math.IsInf(MaxGPUBlockElements(p, 1e9, 0), 1) {
		t.Error("zero per-element cost should be unbounded")
	}
}

func TestIOFloor(t *testing.T) {
	if IOFloor(1e9, 1e9) != 1 {
		t.Fatal("floor math broken")
	}
	if IOFloor(1e9, 0) != 0 {
		t.Fatal("zero bandwidth should not divide")
	}
}
