// Package model provides closed-form analytic predictions for task-based
// workflow performance: the theoretical counterpart ([53] in the paper) to
// the simulator's empirical measurements. It serves three purposes:
//
//  1. Validation — Graham-style makespan bounds that every simulated run
//     must respect (tested in this package and used as simulator sanity
//     checks).
//  2. Explanation — Amdahl decompositions of user-code speedups, making
//     explicit how the serial fraction and CPU-GPU transfer erode the
//     kernel gain (the Figure 1 story in formula form).
//  3. Automation — the §5.4.3 "toward automated design" direction: an
//     Advisor that predicts whether GPU offload pays off for a given task
//     profile and task count, without running anything.
package model

import (
	"math"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
)

// UserCodeBreakdown decomposes a task's user-code time on both devices.
type UserCodeBreakdown struct {
	SerialSec   float64 // serial fraction (CPU either way)
	CPUParallel float64 // parallel fraction on one CPU core
	GPUParallel float64 // parallel fraction on the GPU (incl. launch)
	CommSec     float64 // CPU-GPU transfer at line rate

	// KernelSpeedup is the parallel-fraction-only gain (Figure 1's 5.69x).
	KernelSpeedup float64
	// UserCodeSpeedup is the whole-user-code gain (Figure 1's 1.24x).
	UserCodeSpeedup float64
	// ParallelFraction is the share of CPU user-code time that is
	// parallelizable — the Amdahl f.
	ParallelFraction float64
	// AmdahlLimit is the user-code speedup with an infinitely fast GPU
	// and free transfers: 1/(1-f).
	AmdahlLimit float64
}

// Breakdown computes the analytic user-code decomposition of a profile.
func Breakdown(p costmodel.Params, prof costmodel.Profile) UserCodeBreakdown {
	b := UserCodeBreakdown{
		SerialSec:   p.SerialTime(prof),
		CPUParallel: p.ParallelTime(prof, costmodel.CPU),
		GPUParallel: p.ParallelTime(prof, costmodel.GPU),
		CommSec:     p.CommTimeUncontended(prof, costmodel.GPU),
	}
	if b.GPUParallel > 0 {
		b.KernelSpeedup = b.CPUParallel / b.GPUParallel
	}
	cpu := b.SerialSec + b.CPUParallel
	gpu := b.SerialSec + b.GPUParallel + b.CommSec
	if gpu > 0 {
		b.UserCodeSpeedup = cpu / gpu
	}
	if cpu > 0 {
		b.ParallelFraction = b.CPUParallel / cpu
	}
	if b.ParallelFraction < 1 {
		b.AmdahlLimit = 1 / (1 - b.ParallelFraction)
	} else {
		b.AmdahlLimit = math.Inf(1)
	}
	return b
}

// LevelBounds are Graham bounds on the makespan of one DAG level: a set of
// independent tasks with the given per-task service times on P identical
// servers.
type LevelBounds struct {
	// Lower is max(Σt/P, max t): no schedule can beat either the work
	// bound or the span bound.
	Lower float64
	// Upper is Σt/P + max t: any greedy (list) schedule achieves it.
	Upper float64
}

// BoundsForLevel computes Graham bounds for per-task times on p servers.
func BoundsForLevel(times []float64, p int) LevelBounds {
	if len(times) == 0 || p <= 0 {
		return LevelBounds{}
	}
	var sum, max float64
	for _, t := range times {
		sum += t
		if t > max {
			max = t
		}
	}
	work := sum / float64(p)
	lower := work
	if max > lower {
		lower = max
	}
	return LevelBounds{Lower: lower, Upper: work + max}
}

// TaskTime is the full per-task service demand (deser + user code + ser)
// on the chosen device, excluding contention: the per-slot cost a Graham
// bound needs.
func TaskTime(p costmodel.Params, prof costmodel.Profile, dev costmodel.DeviceKind) float64 {
	return p.DeserTime(prof) + p.UserCodeTimeUncontended(prof, dev) + p.SerTime(prof)
}

// IOFloor returns the lower bound the storage architecture imposes on a
// level that moves totalBytes through an aggregate pipe of the given
// bandwidth: no schedule finishes before the data does.
func IOFloor(totalBytes, aggregateBandwidth float64) float64 {
	if aggregateBandwidth <= 0 {
		return 0
	}
	return totalBytes / aggregateBandwidth
}

// Prediction is the Advisor's analytic estimate for one configuration.
type Prediction struct {
	Device costmodel.DeviceKind
	// LevelLower/LevelUpper bound the parallel-task (level) time.
	LevelLower, LevelUpper float64
	// OOM marks configurations that cannot run at all.
	OOM bool
}

// Advisor predicts device choice for a homogeneous level of tasks: the
// §5.4.3 automated-design method. It combines the paper's key factors —
// kernel speedup, serial fraction, CPU-GPU communication, task-level
// parallelism asymmetry (#cores vs #GPUs), (de)serialization volume and
// the storage I/O floor — all of which the correlation analysis found
// interrelated.
type Advisor struct {
	Params  costmodel.Params
	Cluster cluster.Spec
	// StorageBandwidth is the aggregate storage bandwidth (e.g.
	// Params.SharedBandwidth for GPFS).
	StorageBandwidth float64
}

// NewAdvisor returns an advisor for the paper's default environment
// (Minotauro + shared disk).
func NewAdvisor() *Advisor {
	p := costmodel.DefaultParams()
	return &Advisor{Params: p, Cluster: cluster.Minotauro(), StorageBandwidth: p.SharedBandwidth}
}

// Predict bounds the level time for nTasks identical tasks on the device.
func (a *Advisor) Predict(prof costmodel.Profile, nTasks int, dev costmodel.DeviceKind) Prediction {
	pred := Prediction{Device: dev}
	if a.Params.CheckMemory(prof, dev) != nil {
		pred.OOM = true
		return pred
	}
	slots := a.Cluster.TotalCores()
	if dev == costmodel.GPU {
		slots = a.Cluster.TotalGPUs()
	}
	if slots <= 0 {
		pred.OOM = true
		return pred
	}
	t := TaskTime(a.Params, prof, dev)
	times := make([]float64, nTasks)
	for i := range times {
		times[i] = t
	}
	b := BoundsForLevel(times, slots)
	floor := IOFloor(float64(nTasks)*(prof.ReadBytes+prof.WriteBytes), a.StorageBandwidth)
	pred.LevelLower = math.Max(b.Lower, floor)
	pred.LevelUpper = math.Max(b.Upper, floor)
	return pred
}

// Recommendation is the advisor's verdict for a task profile.
type Recommendation struct {
	CPU, GPU Prediction
	// UseGPU reports whether GPU offload is predicted to win.
	UseGPU bool
	// Confident is true when the winner's upper bound beats the loser's
	// lower bound — the prediction holds under any greedy schedule.
	Confident bool
}

// Recommend compares devices for a level of nTasks tasks. The profile's
// ReadBytes/WriteBytes fields must be populated (they drive the I/O floor).
func (a *Advisor) Recommend(prof costmodel.Profile, nTasks int) Recommendation {
	r := Recommendation{
		CPU: a.Predict(prof, nTasks, costmodel.CPU),
		GPU: a.Predict(prof, nTasks, costmodel.GPU),
	}
	switch {
	case r.GPU.OOM:
		r.UseGPU, r.Confident = false, true
	case r.CPU.OOM:
		r.UseGPU, r.Confident = true, true
	default:
		// Compare midpoints; confidence from bound separation.
		cpuMid := (r.CPU.LevelLower + r.CPU.LevelUpper) / 2
		gpuMid := (r.GPU.LevelLower + r.GPU.LevelUpper) / 2
		r.UseGPU = gpuMid < cpuMid
		if r.UseGPU {
			r.Confident = r.GPU.LevelUpper < r.CPU.LevelLower
		} else {
			r.Confident = r.CPU.LevelUpper < r.GPU.LevelLower
		}
	}
	return r
}

// MaxGPUBlockElements solves the GPU OOM boundary for a memory model of
// the form mem(x) = base + perElem·x ≤ GPUMemBytes, returning the largest
// admissible x (e.g. block elements). Returns 0 when even base overflows.
func MaxGPUBlockElements(p costmodel.Params, base, perElem float64) float64 {
	if perElem <= 0 || base >= p.GPUMemBytes {
		if base >= p.GPUMemBytes {
			return 0
		}
		return math.Inf(1)
	}
	return (p.GPUMemBytes - base) / perElem
}

// WorkflowBounds are Graham bounds for a whole DAG-structured workflow on
// P homogeneous slots: Lower = max(work/P, critical path), Upper = work/P +
// critical path (any greedy list schedule). Contention on storage and
// interconnects sits on top of these compute bounds, so a simulated
// makespan may exceed Upper by I/O time but never undercut Lower.
type WorkflowBounds struct {
	Lower, Upper float64
	// CriticalPath is the span term; CriticalTasks the task IDs on it.
	CriticalPath  float64
	CriticalTasks []int
	// Work is the total service demand across tasks.
	Work float64
}

// BoundsForWorkflow computes whole-DAG bounds given a per-task service
// time function and the device slot count.
func BoundsForWorkflow(g *dag.Graph, slots int, taskTime func(*dag.Task) float64) WorkflowBounds {
	if slots <= 0 || g.Len() == 0 {
		return WorkflowBounds{}
	}
	path, span := g.CriticalPath(taskTime)
	work := g.TotalWeight(taskTime)
	b := WorkflowBounds{
		CriticalPath:  span,
		CriticalTasks: path,
		Work:          work,
	}
	b.Lower = work / float64(slots)
	if span > b.Lower {
		b.Lower = span
	}
	b.Upper = work/float64(slots) + span
	return b
}
