package model

import (
	"testing"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/linreg"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

// taskTimer derives a per-task service-time function from the workflow's
// attached profiles.
func taskTimer(wf *runtime.Workflow, params costmodel.Params, dev costmodel.DeviceKind) func(*dag.Task) float64 {
	return func(t *dag.Task) float64 {
		return params.UserCodeTimeUncontended(wf.Spec(t).Profile, dev)
	}
}

// TestWorkflowBoundsHoldInSimulation: the whole-DAG lower bound must never
// exceed a simulated makespan, for multiple workloads and devices.
func TestWorkflowBoundsHoldInSimulation(t *testing.T) {
	params := costmodel.DefaultParams()
	builds := []struct {
		name string
		wf   func() (*runtime.Workflow, error)
	}{
		{"kmeans-64", func() (*runtime.Workflow, error) {
			return kmeans.Build(kmeans.Config{Dataset: dataset.KMeansSmall, Grid: 64, Clusters: 10, Iterations: 3})
		}},
		{"linreg-32", func() (*runtime.Workflow, error) {
			return linreg.Build(linreg.Config{Dataset: dataset.KMeansSmall, Grid: 32, Iterations: 4})
		}},
	}
	for _, b := range builds {
		for _, dev := range []costmodel.DeviceKind{costmodel.CPU, costmodel.GPU} {
			wf, err := b.wf()
			if err != nil {
				t.Fatal(err)
			}
			slots := 128
			if dev == costmodel.GPU {
				slots = 32
			}
			bounds := BoundsForWorkflow(wf.Graph, slots, taskTimer(wf, params, dev))
			res, err := runtime.RunSim(wf, runtime.SimConfig{Device: dev})
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < bounds.Lower*0.999 {
				t.Errorf("%s/%v: makespan %.3f below lower bound %.3f",
					b.name, dev, res.Makespan, bounds.Lower)
			}
			if bounds.Upper < bounds.Lower {
				t.Errorf("%s/%v: upper %v < lower %v", b.name, dev, bounds.Upper, bounds.Lower)
			}
			if len(bounds.CriticalTasks) == 0 {
				t.Errorf("%s/%v: empty critical path", b.name, dev)
			}
		}
	}
}

// TestCriticalPathAlternatesKMeans: K-means' critical path must alternate
// partial_sum and merge tasks through every iteration.
func TestCriticalPathAlternatesKMeans(t *testing.T) {
	params := costmodel.DefaultParams()
	wf, err := kmeans.Build(kmeans.Config{Dataset: dataset.KMeansSmall, Grid: 8, Clusters: 10, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	path, _ := wf.Graph.CriticalPath(taskTimer(wf, params, costmodel.CPU))
	if len(path) != 6 {
		t.Fatalf("critical path length = %d tasks, want 6 (3 iterations × 2)", len(path))
	}
	for i, id := range path {
		name := wf.Graph.Task(id).Name
		want := "partial_sum"
		if i%2 == 1 {
			want = "merge"
		}
		if name != want {
			t.Fatalf("path[%d] = %s, want %s", i, name, want)
		}
	}
}

func TestWorkflowBoundsDegenerate(t *testing.T) {
	if b := BoundsForWorkflow(dag.New(), 4, func(*dag.Task) float64 { return 1 }); b.Lower != 0 {
		t.Fatal("empty graph should bound to zero")
	}
	g := dag.New()
	g.Add("t", nil)
	if b := BoundsForWorkflow(g, 0, func(*dag.Task) float64 { return 1 }); b.Lower != 0 {
		t.Fatal("zero slots should bound to zero")
	}
}
