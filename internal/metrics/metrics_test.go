package metrics

import (
	"strings"
	"sync"
	"testing"
)

func sample() *Collector {
	c := NewCollector()
	// Two tasks of type "a" on level 0, one "b" on level 1.
	c.Add(Record{TaskID: 0, TaskName: "a", Level: 0, Core: 0, Stage: StageDeser, Start: 0, End: 1})
	c.Add(Record{TaskID: 0, TaskName: "a", Level: 0, Core: 0, Stage: StageParallel, Start: 1, End: 3})
	c.Add(Record{TaskID: 1, TaskName: "a", Level: 0, Core: 1, Stage: StageDeser, Start: 0, End: 2})
	c.Add(Record{TaskID: 1, TaskName: "a", Level: 0, Core: 1, Stage: StageParallel, Start: 2, End: 6})
	c.Add(Record{TaskID: 2, TaskName: "b", Level: 1, Core: 0, Stage: StageSerial, Start: 6, End: 8})
	return c
}

func TestMeanStage(t *testing.T) {
	c := sample()
	m, n := c.MeanStage("a", StageParallel)
	if n != 2 || m != 3 {
		t.Fatalf("mean = %v over %d, want 3 over 2", m, n)
	}
	if m, n = c.MeanStage("", StageDeser); n != 2 || m != 1.5 {
		t.Fatalf("all-type deser mean = %v over %d", m, n)
	}
	if _, n = c.MeanStage("zzz", StageDeser); n != 0 {
		t.Fatal("unknown task type matched")
	}
}

func TestSumStage(t *testing.T) {
	c := sample()
	if got := c.SumStage("a", StageParallel); got != 6 {
		t.Fatalf("sum = %v, want 6", got)
	}
}

func TestUserCodeMean(t *testing.T) {
	c := sample()
	// Task type "a": parallel mean 3; no serial/comm records.
	if got := c.UserCodeMean("a"); got != 3 {
		t.Fatalf("user code mean = %v, want 3", got)
	}
	if got := c.UserCodeMean("b"); got != 2 {
		t.Fatalf("user code mean (b) = %v, want 2 (serial only)", got)
	}
}

func TestMovementPerCore(t *testing.T) {
	c := sample()
	// Core 0: 1s deser; core 1: 2s deser → mean 1.5 across 2 active cores.
	if got := c.MovementPerCore(StageDeser); got != 1.5 {
		t.Fatalf("per-core deser = %v, want 1.5", got)
	}
	if got := c.MovementPerCore(StageSer); got != 0 {
		t.Fatalf("no-ser per-core = %v, want 0", got)
	}
}

func TestLevelSpans(t *testing.T) {
	c := sample()
	s, e, ok := c.LevelSpan(0)
	if !ok || s != 0 || e != 6 {
		t.Fatalf("level 0 span = [%v,%v] ok=%v", s, e, ok)
	}
	if _, _, ok := c.LevelSpan(9); ok {
		t.Fatal("missing level reported ok")
	}
	levels := c.Levels()
	if len(levels) != 2 || levels[0] != 0 || levels[1] != 1 {
		t.Fatalf("levels = %v", levels)
	}
	// Mean of spans: (6-0) and (8-6) → 4.
	if got := c.MeanLevelSpan(); got != 4 {
		t.Fatalf("mean level span = %v, want 4", got)
	}
	if got := c.Makespan(); got != 8 {
		t.Fatalf("makespan = %v, want 8", got)
	}
}

func TestTaskNames(t *testing.T) {
	c := sample()
	names := c.TaskNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.Makespan() != 0 || c.MeanLevelSpan() != 0 || c.MovementPerCore(StageDeser) != 0 {
		t.Fatal("empty collector returned nonzero aggregates")
	}
	if m, n := c.MeanStage("", StageDeser); m != 0 || n != 0 {
		t.Fatal("empty MeanStage nonzero")
	}
}

func TestConcurrentAdd(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(Record{TaskID: i, TaskName: "x", Stage: StageParallel, Start: 0, End: 1})
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 3200 {
		t.Fatalf("len = %d, want 3200", c.Len())
	}
}

func TestWriteCSV(t *testing.T) {
	c := sample()
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "task_id,task_name,") {
		t.Fatal("missing CSV header")
	}
	if strings.Count(out, "\n") != 6 {
		t.Fatalf("CSV rows = %d, want 6 (header + 5)", strings.Count(out, "\n"))
	}
	if !strings.Contains(out, "parallel") {
		t.Fatal("stage name missing")
	}
}

func TestWritePRV(t *testing.T) {
	c := sample()
	var b strings.Builder
	if err := c.WritePRV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "#Paraver") {
		t.Fatal("missing Paraver header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("PRV lines = %d, want 6", len(lines))
	}
	// State records are 8 colon-separated fields starting with "1".
	for _, l := range lines[1:] {
		if parts := strings.Split(l, ":"); len(parts) != 8 || parts[0] != "1" {
			t.Fatalf("bad PRV record %q", l)
		}
	}
}

func TestStageString(t *testing.T) {
	if StageDeser.String() != "deser" || StageSer.String() != "ser" {
		t.Fatal("stage stringers broken")
	}
	if !strings.Contains(Stage(99).String(), "99") {
		t.Fatal("unknown stage stringer broken")
	}
}

func TestRecordsCopy(t *testing.T) {
	c := sample()
	recs := c.Records()
	recs[0].TaskID = 999
	if c.Records()[0].TaskID == 999 {
		t.Fatal("Records returned aliased slice")
	}
}
