package metrics

import (
	"math/rand"
	"testing"
)

// TestAggregatesMatchCollector feeds an identical randomized record stream
// to a Collector and an Aggregates and demands every shared query agree to
// the exact float: the streaming sink claims bit-for-bit equivalence
// (arrival-order accumulation, ascending-index reductions), and "close
// enough" would let sweep results drift when a run switches modes.
func TestAggregatesMatchCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"gradient", "update", "partial_sum", "matmul_func"}
	devices := []string{"gpu0", "cpu", ""}

	c := NewCollector()
	a := NewAggregates()
	// Two passes over the same sink pair, with a Reset between, prove
	// Reset leaves no residue in either the accumulators or the intern
	// cache.
	for pass := 0; pass < 2; pass++ {
		c = NewCollector()
		a.Reset()
		var last Record
		for i := 0; i < 5000; i++ {
			r := Record{
				TaskID:   i / NumStages,
				TaskName: names[rng.Intn(len(names))],
				Device:   devices[rng.Intn(len(devices))],
				Stage:    Stage(rng.Intn(NumStages)),
				Core:     rng.Intn(9) - 1,
				Level:    rng.Intn(10),
			}
			r.Start = rng.Float64() * 100
			r.End = r.Start + rng.Float64()*10
			// Exercise the last-hit intern cache: repeat the previous
			// record's name roughly half the time, like the real stream
			// of per-stage records for one task does.
			if i > 0 && rng.Intn(2) == 0 {
				r.TaskName = last.TaskName
			}
			last = r
			c.Observe(r)
			a.Observe(r)
		}

		if c.Len() != a.Len() {
			t.Fatalf("Len: collector %d, aggregates %d", c.Len(), a.Len())
		}
		for _, name := range append([]string{""}, names...) {
			for st := Stage(0); st < Stage(NumStages); st++ {
				cm, cn := c.MeanStage(name, st)
				am, an := a.MeanStage(name, st)
				if cm != am || cn != an {
					t.Errorf("MeanStage(%q, %v): collector (%v, %d), aggregates (%v, %d)",
						name, st, cm, cn, am, an)
				}
				if cs, as := c.SumStage(name, st), a.SumStage(name, st); cs != as {
					t.Errorf("SumStage(%q, %v): collector %v, aggregates %v", name, st, cs, as)
				}
			}
			if cu, au := c.UserCodeMean(name), a.UserCodeMean(name); cu != au {
				t.Errorf("UserCodeMean(%q): collector %v, aggregates %v", name, cu, au)
			}
		}
		for st := Stage(0); st < Stage(NumStages); st++ {
			if cm, am := c.MovementPerCore(st), a.MovementPerCore(st); cm != am {
				t.Errorf("MovementPerCore(%v): collector %v, aggregates %v", st, cm, am)
			}
		}
		cl, al := c.Levels(), a.Levels()
		if len(cl) != len(al) {
			t.Fatalf("Levels: collector %v, aggregates %v", cl, al)
		}
		for i := range cl {
			if cl[i] != al[i] {
				t.Fatalf("Levels: collector %v, aggregates %v", cl, al)
			}
			cs, ce, cok := c.LevelSpan(cl[i])
			as, ae, aok := a.LevelSpan(al[i])
			if cs != as || ce != ae || cok != aok {
				t.Errorf("LevelSpan(%d): collector (%v, %v, %v), aggregates (%v, %v, %v)",
					cl[i], cs, ce, cok, as, ae, aok)
			}
		}
		if cm, am := c.MeanLevelSpan(), a.MeanLevelSpan(); cm != am {
			t.Errorf("MeanLevelSpan: collector %v, aggregates %v", cm, am)
		}
		if cm, am := c.Makespan(), a.Makespan(); cm != am {
			t.Errorf("Makespan: collector %v, aggregates %v", cm, am)
		}
		cn, an := c.TaskNames(), a.TaskNames()
		if len(cn) != len(an) {
			t.Fatalf("TaskNames: collector %v, aggregates %v", cn, an)
		}
		for i := range cn {
			if cn[i] != an[i] {
				t.Fatalf("TaskNames: collector %v, aggregates %v", cn, an)
			}
		}
	}
}
