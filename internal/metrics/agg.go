package metrics

import (
	"sort"

	"wfsim/internal/stats"
)

// sumCount is one streaming (sum of durations, contributing records)
// accumulator.
type sumCount struct {
	sum float64
	n   int
}

// span is a streaming min-start/max-end window.
type span struct {
	start, end float64
	seen       bool
}

func (s *span) observe(start, end float64) {
	if !s.seen {
		s.start, s.end, s.seen = start, end, true
		return
	}
	if start < s.start {
		s.start = start
	}
	if end > s.end {
		s.end = end
	}
}

// Aggregates is the streaming Sink: it folds records into the fixed-size
// sums the experiment figures query — per-(task type, stage) means,
// per-core data movement, per-level spans, makespan — without retaining
// any record. Memory is O(task types × stages + cores + levels),
// independent of task count, which is what lets a 10⁶-task sweep cell run
// in a few MB where a Collector would retain ~50 MB of records.
//
// Every query reproduces the corresponding Collector method bit-for-bit:
// durations are accumulated in record-arrival order — the same order the
// Collector's queries sum its retained records in — and cross-core /
// cross-level reductions sum in ascending index order exactly as
// Collector.MovementPerCore and Collector.MeanLevelSpan do. Switching a
// run from Collector to Aggregates therefore cannot change a reported
// float by even one ULP; the fig1 golden render pins this.
//
// Aggregates is not safe for concurrent use (see Sink). The zero value is
// ready to use; Reset recycles one across trials without reallocating.
type Aggregates struct {
	n int

	names  []string
	byName map[string]int32
	// Last-hit intern cache (see Collector): consecutive records share a
	// task name, and upstream interning makes the strings
	// pointer-identical, so the compare is one pointer check. The empty
	// string bypasses the cache (it is its unset state).
	lastName   string
	lastNameID int32
	// taskName marks name-table entries seen as task names (the table is
	// shared with device names, which TaskNames must not report).
	taskName []bool

	// all[stage] accumulates over every record of the stage; perName is
	// indexed [name*NumStages + stage]. Keeping both costs one extra add
	// per record but makes MeanStage("",·) exact: summing per-name sums
	// would re-associate the float additions.
	all     [numStages]sumCount
	perName []sumCount

	// perCore is indexed [stage][core+1] (+1 absorbs the scheduler's
	// core = -1 records); coreSeen tracks which cores contributed so the
	// mean divides by active cores only.
	perCore  [numStages][]float64
	coreSeen [numStages][]bool

	levels []span // indexed by DAG level

	whole span // makespan window

	// dist[stage] streams per-stage duration quantiles; nil unless
	// WithQuantiles was called (three P² estimators per stage are not
	// free on a hot path that otherwise costs a handful of adds).
	dist *[numStages]*stats.Stream
}

// NewAggregates returns an empty streaming sink.
func NewAggregates() *Aggregates { return &Aggregates{} }

// WithQuantiles enables per-stage duration quantile streams (p50/p95/p99
// via stats.Stream) and returns the receiver.
func (a *Aggregates) WithQuantiles() *Aggregates {
	var d [numStages]*stats.Stream
	for i := range d {
		d[i] = stats.NewStream()
	}
	a.dist = &d
	return a
}

// Reset clears every accumulator while keeping capacity, so one Aggregates
// serves every trial a sweep worker runs.
func (a *Aggregates) Reset() {
	a.n = 0
	a.names = a.names[:0]
	a.lastName, a.lastNameID = "", 0
	clear(a.byName)
	a.taskName = a.taskName[:0]
	a.all = [numStages]sumCount{}
	clear(a.perName)
	a.perName = a.perName[:0]
	for s := range a.perCore {
		clear(a.perCore[s])
		for i := range a.coreSeen[s] {
			a.coreSeen[s][i] = false
		}
	}
	a.levels = a.levels[:0]
	a.whole = span{}
	if a.dist != nil {
		for i := range a.dist {
			a.dist[i] = stats.NewStream()
		}
	}
}

func (a *Aggregates) intern(s string, isTask bool) int32 {
	id, ok := a.byName[s]
	if !ok {
		id = a.internSlow(s)
	}
	if isTask {
		a.taskName[id] = true
	}
	return id
}

// internSlow registers a previously unseen task-type name. Cold by
// construction: a workload has a handful of distinct names, interned in
// its first few records, after which every Observe takes the map-hit path
// in intern. Reset keeps the capacity, so across a sweep these
// allocations happen once per worker, not once per trial.
func (a *Aggregates) internSlow(s string) int32 {
	if a.byName == nil {
		a.byName = make(map[string]int32, 16) //wfsimlint:allow hotalloc
	}
	id := int32(len(a.names))
	a.names = append(a.names, s)           //wfsimlint:allow hotalloc
	a.taskName = append(a.taskName, false) //wfsimlint:allow hotalloc
	a.byName[s] = id
	//wfsimlint:allow hotalloc
	a.perName = append(a.perName, make([]sumCount, NumStages)...)
	return id
}

// Observe folds one record into the aggregates.
func (a *Aggregates) Observe(r Record) {
	a.n++
	d := r.End - r.Start
	st := int(r.Stage)
	name := a.lastNameID
	if r.TaskName != a.lastName || r.TaskName == "" {
		name = a.intern(r.TaskName, true)
		a.lastName, a.lastNameID = r.TaskName, name
	}

	a.all[st].sum += d
	a.all[st].n++
	pn := &a.perName[int(name)*NumStages+st]
	pn.sum += d
	pn.n++

	core := r.Core + 1
	if core >= len(a.perCore[st]) {
		a.growCore(st, core)
	}
	a.perCore[st][core] += d
	a.coreSeen[st][core] = true

	if r.Level >= len(a.levels) {
		a.growLevels(r.Level)
	}
	a.levels[r.Level].observe(r.Start, r.End)

	a.whole.observe(r.Start, r.End)

	if a.dist != nil {
		a.dist[st].Observe(d)
	}
}

// growCore extends the per-core accumulators of one stage up to core.
// Cold by construction: each stage grows to the cluster's core count in
// the first simulated wave and never again — Reset keeps the capacity,
// so later trials on the same worker reuse the backing arrays.
func (a *Aggregates) growCore(st, core int) {
	//wfsimlint:allow hotalloc
	a.perCore[st] = append(a.perCore[st], make([]float64, core+1-len(a.perCore[st]))...)
	//wfsimlint:allow hotalloc
	a.coreSeen[st] = append(a.coreSeen[st], make([]bool, core+1-len(a.coreSeen[st]))...)
}

// growLevels extends the per-level spans through level. Cold by
// construction: levels grow monotonically to the DAG height once per
// workload shape, and Reset keeps the capacity.
func (a *Aggregates) growLevels(level int) {
	//wfsimlint:allow hotalloc
	a.levels = append(a.levels, make([]span, level+1-len(a.levels))...)
}

// Len returns the number of records observed.
func (a *Aggregates) Len() int { return a.n }

// MeanStage mirrors Collector.MeanStage: the mean duration of a stage over
// tasks of the given type ("" matches every type) and the contributing
// record count.
func (a *Aggregates) MeanStage(taskName string, stage Stage) (float64, int) {
	sc := a.all[stage]
	if taskName != "" {
		id, ok := a.byName[taskName]
		if !ok {
			return 0, 0
		}
		sc = a.perName[int(id)*NumStages+int(stage)]
	}
	if sc.n == 0 {
		return 0, 0
	}
	return sc.sum / float64(sc.n), sc.n
}

// SumStage mirrors Collector.SumStage.
func (a *Aggregates) SumStage(taskName string, stage Stage) float64 {
	if taskName == "" {
		return a.all[stage].sum
	}
	id, ok := a.byName[taskName]
	if !ok {
		return 0
	}
	return a.perName[int(id)*NumStages+int(stage)].sum
}

// UserCodeMean mirrors Collector.UserCodeMean.
func (a *Aggregates) UserCodeMean(taskName string) float64 {
	var total float64
	for _, st := range []Stage{StageSerial, StageParallel, StageCommIn, StageCommOut} {
		m, n := a.MeanStage(taskName, st)
		if n > 0 {
			total += m
		}
	}
	return total
}

// MovementPerCore mirrors Collector.MovementPerCore: per-core sums are
// reduced in ascending core order, the same order the Collector's sorted
// reduction uses.
func (a *Aggregates) MovementPerCore(stage Stage) float64 {
	var sum float64
	active := 0
	for core, seen := range a.coreSeen[stage] {
		if seen {
			sum += a.perCore[stage][core]
			active++
		}
	}
	if active == 0 {
		return 0
	}
	return sum / float64(active)
}

// LevelSpan mirrors Collector.LevelSpan.
func (a *Aggregates) LevelSpan(level int) (start, end float64, ok bool) {
	if level < 0 || level >= len(a.levels) || !a.levels[level].seen {
		return 0, 0, false
	}
	return a.levels[level].start, a.levels[level].end, true
}

// Levels mirrors Collector.Levels: the sorted levels observed.
func (a *Aggregates) Levels() []int {
	out := []int{}
	for l, sp := range a.levels {
		if sp.seen {
			out = append(out, l)
		}
	}
	return out
}

// MeanLevelSpan mirrors Collector.MeanLevelSpan: level spans reduce in
// ascending level order.
func (a *Aggregates) MeanLevelSpan() float64 {
	var sum float64
	n := 0
	for _, sp := range a.levels {
		if sp.seen {
			sum += sp.end - sp.start
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Makespan mirrors Collector.Makespan.
func (a *Aggregates) Makespan() float64 {
	if !a.whole.seen {
		return 0
	}
	return a.whole.end - a.whole.start
}

// TaskNames mirrors Collector.TaskNames: distinct task types, sorted.
// (Names arrive in first-observation order, which is deterministic, but
// the sorted contract matches the Collector's.)
func (a *Aggregates) TaskNames() []string {
	out := []string{}
	for id, isTask := range a.taskName {
		if isTask {
			out = append(out, a.names[id])
		}
	}
	sort.Strings(out)
	return out
}

// StageDist returns the streaming duration distribution of one stage, or
// nil unless WithQuantiles was enabled.
func (a *Aggregates) StageDist(stage Stage) *stats.Stream {
	if a.dist == nil {
		return nil
	}
	return a.dist[stage]
}
