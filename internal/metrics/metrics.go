// Package metrics records and aggregates per-task stage timings using the
// paper's measurement taxonomy (§4.2):
//
//   - task user code metrics, aggregated per task type: serial fraction,
//     parallel fraction, CPU-GPU communication, and their sum;
//   - data-movement overheads, aggregated per CPU core: deserialization and
//     serialization;
//   - task-level metrics, per DAG level: parallel task execution time.
//
// The collector is the in-Go analog of the paper's instrumentation stack
// (Python perf counters, CUDA events and Paraver traces); a Paraver-like
// trace export is provided for inspection.
//
// Two consumption models exist. Collector retains every record —
// required by trace/Gantt/CSV export and any post-hoc query. Aggregates
// folds records into fixed-size sums as they arrive — O(1) memory per
// (task type, stage) pair instead of O(tasks), for million-task runs whose
// traces would not fit. Both implement Sink, the record-consumer contract
// the simulated runtime emits into.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Stage enumerates the task processing stages of the paper's Figure 4.
type Stage int

const (
	// StageSched is the time from task readiness to placement (queueing
	// plus the scheduler's per-decision service time).
	StageSched Stage = iota
	// StageDeser covers storage read + decode into host memory.
	StageDeser
	// StageCommIn is host-to-device transfer (GPU tasks only).
	StageCommIn
	// StageParallel is the parallel fraction of the user code.
	StageParallel
	// StageSerial is the serial fraction of the user code.
	StageSerial
	// StageCommOut is device-to-host transfer (GPU tasks only).
	StageCommOut
	// StageSer covers encode + storage write of outputs.
	StageSer
	// StageRecovery is fault-recovery overhead: the span an aborted
	// attempt held its core before a node crash, transient failure or
	// lost input forced it off (fault-injected runs only).
	StageRecovery

	numStages
)

// NumStages is the number of distinct task stages; a task contributes at
// most NumStages records to a collector.
const NumStages = int(numStages)

var stageNames = [numStages]string{
	"sched", "deser", "comm_in", "parallel", "serial", "comm_out", "ser",
	"recovery",
}

func (s Stage) String() string {
	if s < 0 || int(s) >= len(stageNames) {
		return fmt.Sprintf("Stage(%d)", int(s))
	}
	return stageNames[s]
}

// Record is one measured stage of one task.
type Record struct {
	TaskID   int
	TaskName string
	Level    int
	Node     int
	Core     int // cluster-global core index the task's host side ran on
	Device   string
	Stage    Stage
	Start    float64
	End      float64
}

// Duration returns the record's elapsed time.
func (r Record) Duration() float64 { return r.End - r.Start }

// Sink consumes stage records one at a time as the runtime emits them.
// Implementations are not required to be safe for concurrent use: the
// simulated backend is single-threaded, so Observe is called from exactly
// one goroutine per run. Callers that share a sink across goroutines (the
// local backend) must use a concurrency-safe entry point such as
// Collector.Add.
type Sink interface {
	Observe(Record)
}

// crec is the retained, pointer-free form of a Record: the two string
// fields are interned into the owning collector's name table, so the
// record buffer contains no pointers — the GC never scans it, and each
// record costs 48 bytes instead of 88. At the 10⁶-task scale this is the
// difference between a ~50 MB no-scan buffer and a ~90 MB scanned one.
type crec struct {
	taskID int32
	name   int32 // index into Collector.names
	level  int32
	node   int32
	core   int32
	device int32 // index into Collector.names (devices share the table)
	stage  int32
	start  float64
	end    float64
}

// Collector accumulates and retains records. Add is safe for concurrent
// use (the local backend runs real tasks on multiple goroutines); Observe
// is the lock-free single-writer path the simulated backend uses.
type Collector struct {
	mu     sync.Mutex
	recs   []crec
	names  []string
	byName map[string]int32
	// Last-hit intern caches: a task emits NumStages consecutive records
	// with the same task name and device, and upstream interning makes the
	// repeated strings pointer-identical, so caching the previous hit
	// turns almost every intern into one pointer-equal string compare.
	// Task and device names cache separately — they alternate within one
	// Observe call and would evict each other from a shared slot.
	lastName   string
	lastNameID int32
	lastDev    string
	lastDevID  int32
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// intern returns the dense ID of s in the collector's name table. Repeat
// lookups of runtime-emitted names hit the map's pointer-equality fast
// path: task and device names are themselves interned upstream, so the
// string headers compare equal without a byte comparison.
func (c *Collector) intern(s string) int32 {
	if id, ok := c.byName[s]; ok {
		return id
	}
	if c.byName == nil {
		c.byName = make(map[string]int32, 16)
	}
	id := int32(len(c.names))
	c.names = append(c.names, s)
	c.byName[s] = id
	return id
}

// lookup returns the ID of s, or -1 if no record has mentioned it.
func (c *Collector) lookup(s string) int32 {
	if id, ok := c.byName[s]; ok {
		return id
	}
	return -1
}

// decode rematerializes the public Record form.
func (c *Collector) decode(r crec) Record {
	return Record{
		TaskID: int(r.taskID), TaskName: c.names[r.name], Level: int(r.level),
		Node: int(r.node), Core: int(r.core), Device: c.names[r.device],
		Stage: Stage(r.stage), Start: r.start, End: r.end,
	}
}

// Grow pre-sizes the record buffer for at least n additional records, so a
// run whose record count is known up front (tasks × stages) appends without
// reallocating mid-simulation.
func (c *Collector) Grow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if free := cap(c.recs) - len(c.recs); free < n {
		grown := make([]crec, len(c.recs), len(c.recs)+n)
		copy(grown, c.recs)
		c.recs = grown
	}
}

// Observe appends a record without locking — the Sink entry point for the
// single-threaded simulated backend. The empty string bypasses the
// last-hit caches (it is their unset state).
func (c *Collector) Observe(r Record) {
	name := c.lastNameID
	if r.TaskName != c.lastName || r.TaskName == "" {
		name = c.intern(r.TaskName)
		c.lastName, c.lastNameID = r.TaskName, name
	}
	dev := c.lastDevID
	if r.Device != c.lastDev || r.Device == "" {
		dev = c.intern(r.Device)
		c.lastDev, c.lastDevID = r.Device, dev
	}
	c.recs = append(c.recs, crec{
		taskID: int32(r.TaskID), name: name, level: int32(r.Level),
		node: int32(r.Node), core: int32(r.Core), device: dev,
		stage: int32(r.Stage), start: r.Start, end: r.End,
	})
}

// Add appends a record under the collector's lock (safe for concurrent
// producers).
func (c *Collector) Add(r Record) {
	c.mu.Lock()
	c.Observe(r)
	c.mu.Unlock()
}

// Records returns a copy of all records.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.recs))
	for i, r := range c.recs {
		out[i] = c.decode(r)
	}
	return out
}

// Each calls fn for every record in insertion order, without copying the
// backing slice — the streaming-aggregation path for long multi-workflow
// runs, where Records' per-workflow copy would double peak memory. fn
// must not call back into the collector.
func (c *Collector) Each(fn func(Record)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.recs {
		fn(c.decode(r))
	}
}

// Len returns the number of records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// MeanStage returns the average duration of a stage over tasks of the given
// type ("" matches every task type) — the paper's "average time per task"
// user-code metrics. The second result is the number of tasks that
// contributed.
func (c *Collector) MeanStage(taskName string, stage Stage) (float64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := int32(-1)
	if taskName != "" {
		if name = c.lookup(taskName); name < 0 {
			return 0, 0
		}
	}
	var sum float64
	n := 0
	for _, r := range c.recs {
		if Stage(r.stage) == stage && (name < 0 || r.name == name) {
			sum += r.end - r.start
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// SumStage returns the total duration of a stage across matching tasks.
func (c *Collector) SumStage(taskName string, stage Stage) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := int32(-1)
	if taskName != "" {
		if name = c.lookup(taskName); name < 0 {
			return 0
		}
	}
	var sum float64
	for _, r := range c.recs {
		if Stage(r.stage) == stage && (name < 0 || r.name == name) {
			sum += r.end - r.start
		}
	}
	return sum
}

// UserCodeMean returns the average full user-code time per task of the
// given type: serial + parallel + CPU-GPU communication (§4.2).
func (c *Collector) UserCodeMean(taskName string) float64 {
	var total float64
	for _, st := range []Stage{StageSerial, StageParallel, StageCommIn, StageCommOut} {
		m, n := c.MeanStage(taskName, st)
		if n > 0 {
			total += m
		}
	}
	return total
}

// MovementPerCore returns the mean (de)serialization time per active CPU
// core — the paper's data-movement overhead metric, which exposes how well
// (de)serialization parallelism matches the available cores.
func (c *Collector) MovementPerCore(stage Stage) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	perCore := map[int]float64{}
	for _, r := range c.recs {
		if Stage(r.stage) == stage {
			perCore[int(r.core)] += r.end - r.start
		}
	}
	if len(perCore) == 0 {
		return 0
	}
	// Sum in core order: float addition is non-associative, so summing in
	// map order would make the reported mean's bits vary run to run.
	cores := make([]int, 0, len(perCore))
	for c := range perCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	var sum float64
	for _, c := range cores {
		sum += perCore[c]
	}
	return sum / float64(len(perCore))
}

// LevelSpan returns the wall-clock span of one DAG level: from the first
// stage start to the last stage end among the level's tasks. This is the
// paper's "parallel task execution time", which includes every overhead
// (scheduling, I/O, queueing).
func (c *Collector) LevelSpan(level int) (start, end float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := true
	for _, r := range c.recs {
		if int(r.level) != level {
			continue
		}
		if first {
			start, end, first = r.start, r.end, false
			continue
		}
		if r.start < start {
			start = r.start
		}
		if r.end > end {
			end = r.end
		}
	}
	return start, end, !first
}

// Levels returns the sorted set of DAG levels present in the records.
func (c *Collector) Levels() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := map[int]bool{}
	for _, r := range c.recs {
		set[int(r.level)] = true
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// MeanLevelSpan averages LevelSpan over every level — the per-iteration
// parallel-task execution time reported in Figures 7 and 10.
func (c *Collector) MeanLevelSpan() float64 {
	levels := c.Levels()
	if len(levels) == 0 {
		return 0
	}
	var sum float64
	for _, l := range levels {
		s, e, ok := c.LevelSpan(l)
		if ok {
			sum += e - s
		}
	}
	return sum / float64(len(levels))
}

// Makespan returns the overall workflow span across all records.
func (c *Collector) Makespan() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.recs) == 0 {
		return 0
	}
	start, end := c.recs[0].start, c.recs[0].end
	for _, r := range c.recs[1:] {
		if r.start < start {
			start = r.start
		}
		if r.end > end {
			end = r.end
		}
	}
	return end - start
}

// TaskNames returns the distinct task types observed, sorted.
func (c *Collector) TaskNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make([]bool, len(c.names))
	for _, r := range c.recs {
		seen[r.name] = true
	}
	out := []string{}
	for id, s := range seen {
		if s {
			out = append(out, c.names[id])
		}
	}
	sort.Strings(out)
	return out
}

// WriteCSV dumps all records as CSV.
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task_id,task_name,level,node,core,device,stage,start,end"); err != nil {
		return err
	}
	for _, r := range c.Records() {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%s,%s,%.9f,%.9f\n",
			r.TaskID, r.TaskName, r.Level, r.Node, r.Core, r.Device, r.Stage, r.Start, r.End); err != nil {
			return err
		}
	}
	return nil
}

// WritePRV dumps the records as Paraver-style state lines
// ("1:core:appl:task:thread:start:end:state"), the trace format the paper
// extracted (de)serialization times from. Stage index is used as the state
// value; times are in nanoseconds as Paraver expects integers.
func (c *Collector) WritePRV(w io.Writer) error {
	recs := c.Records()
	var maxEnd float64
	for _, r := range recs {
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	if _, err := fmt.Fprintf(w, "#Paraver (wfsim):%d_ns:1(%d):1:1(%d:1)\n",
		int64(maxEnd*1e9), len(recs), len(recs)); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "1:%d:1:%d:1:%d:%d:%d\n",
			r.Core+1, r.TaskID+1, int64(r.Start*1e9), int64(r.End*1e9), int(r.Stage)+1); err != nil {
			return err
		}
	}
	return nil
}
