package metrics

import (
	"strings"
	"testing"
)

func TestWriteGantt(t *testing.T) {
	c := NewCollector()
	c.Add(Record{TaskID: 0, Core: 0, Stage: StageDeser, Start: 0, End: 4})
	c.Add(Record{TaskID: 0, Core: 0, Stage: StageParallel, Start: 4, End: 10})
	c.Add(Record{TaskID: 1, Core: 1, Stage: StageSer, Start: 0, End: 2})
	var b strings.Builder
	if err := c.WriteGantt(&b, 10, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"timeline", "legend", "core    0", "core    1", "busy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// Core 0 is fully busy: its row must contain both 'd' and 'P' bins and
	// 100% busy.
	lines := strings.Split(out, "\n")
	var core0 string
	for _, l := range lines {
		if strings.HasPrefix(l, "core    0") {
			core0 = l
		}
	}
	if !strings.Contains(core0, "d") || !strings.Contains(core0, "P") {
		t.Fatalf("core 0 row missing stages: %q", core0)
	}
	if !strings.Contains(core0, "100.0%") {
		t.Fatalf("core 0 should be 100%% busy: %q", core0)
	}
}

func TestWriteGanttEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewCollector().WriteGantt(&b, 20, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no records") {
		t.Fatal("empty gantt should say so")
	}
}

func TestWriteGanttCapsCores(t *testing.T) {
	c := NewCollector()
	for core := 0; core < 20; core++ {
		c.Add(Record{TaskID: core, Core: core, Stage: StageParallel,
			Start: 0, End: float64(core + 1)})
	}
	var b strings.Builder
	if err := c.WriteGantt(&b, 20, 5); err != nil {
		t.Fatal(err)
	}
	rows := strings.Count(b.String(), "core ")
	if rows != 5 {
		t.Fatalf("gantt rows = %d, want 5 (busiest-first cap)", rows)
	}
	// Busiest core (19) listed first.
	if !strings.Contains(strings.Split(b.String(), "\n")[2], "core   19") {
		t.Fatalf("busiest core not first:\n%s", b.String())
	}
}
