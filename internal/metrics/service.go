// Service-level metrics for multi-tenant runs: when one cluster serves a
// stream of workflows, the interesting numbers are not a single makespan
// but per-tenant distributions — how long tasks queue, how long workflows
// take end to end, and how much contention stretches them versus running
// alone (slowdown). A load sweep observes millions of tasks, so every
// distribution is held as a streaming summary (internal/stats.Stream):
// O(1) state per tenant instead of O(total-tasks) retained samples.

package metrics

import "wfsim/internal/stats"

// Summary is the reporting snapshot of one streaming distribution.
type Summary struct {
	N                             int
	Mean, Min, Max, P50, P95, P99 float64
}

func summarize(s *stats.Stream) Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), Min: s.Min(), Max: s.Max(),
		P50: s.P50(), P95: s.P95(), P99: s.P99(),
	}
}

// TenantStream accumulates one tenant's service metrics across every
// workflow it submits.
type TenantStream struct {
	// QueueWait observes one sample per task: the sched-stage duration
	// (readiness to placement, queueing plus decision time).
	QueueWait *stats.Stream
	// Response observes one sample per workflow: finish − submit.
	Response *stats.Stream
	// Slowdown observes one sample per workflow: response divided by the
	// workflow's isolated (empty-cluster) makespan. 1.0 = no contention.
	Slowdown *stats.Stream
	// Workflows and Tasks count completed workflows and their tasks.
	Workflows int
	Tasks     int
}

// QueueWaitSummary returns the tenant's queue-wait distribution snapshot.
func (t *TenantStream) QueueWaitSummary() Summary { return summarize(t.QueueWait) }

// ResponseSummary returns the tenant's response-time distribution snapshot.
func (t *TenantStream) ResponseSummary() Summary { return summarize(t.Response) }

// SlowdownSummary returns the tenant's slowdown distribution snapshot.
func (t *TenantStream) SlowdownSummary() Summary { return summarize(t.Slowdown) }

// ServiceStats aggregates streaming service metrics for n tenants. It is
// fed from completion callbacks on the engine's single thread; it is not
// safe for concurrent use.
type ServiceStats struct {
	tenants []*TenantStream
}

// NewServiceStats returns empty per-tenant streams for n tenants.
func NewServiceStats(n int) *ServiceStats {
	s := &ServiceStats{tenants: make([]*TenantStream, n)}
	for i := range s.tenants {
		s.tenants[i] = &TenantStream{
			QueueWait: stats.NewStream(),
			Response:  stats.NewStream(),
			Slowdown:  stats.NewStream(),
		}
	}
	return s
}

// NumTenants returns the tenant count.
func (s *ServiceStats) NumTenants() int { return len(s.tenants) }

// Tenant returns tenant i's stream.
func (s *ServiceStats) Tenant(i int) *TenantStream { return s.tenants[i] }

// ObserveWorkflow folds one completed workflow into its tenant's streams:
// the workflow-level samples plus, via the collector walk, one queue-wait
// sample per sched-stage record. The collector is only read — the caller
// may discard it afterwards, which is the point: the streams retain O(1)
// state per tenant however many workflows flow through.
func (s *ServiceStats) ObserveWorkflow(tenant int, response, slowdown float64, c *Collector) {
	t := s.tenants[tenant]
	t.Workflows++
	t.Response.Observe(response)
	t.Slowdown.Observe(slowdown)
	if c == nil {
		return
	}
	c.Each(func(r Record) {
		if r.Stage == StageSched {
			t.Tasks++
			t.QueueWait.Observe(r.Duration())
		}
	})
}
