package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ganttGlyphs maps each stage to the character drawn in timeline cells.
var ganttGlyphs = [numStages]byte{
	StageSched:    '.',
	StageDeser:    'd',
	StageCommIn:   'c',
	StageParallel: 'P',
	StageSerial:   's',
	StageCommOut:  'c',
	StageSer:      'w',
	StageRecovery: 'x',
}

// WriteGantt renders an ASCII per-core timeline of the collected records:
// one row per core (busiest first, up to maxCores), one column per time
// bin, each cell showing the stage that occupied most of the bin. It is
// the terminal equivalent of a Paraver timeline view and makes load
// imbalance and (de)serialization dominance visible at a glance.
func (c *Collector) WriteGantt(w io.Writer, width, maxCores int) error {
	if width < 10 {
		width = 10
	}
	recs := c.Records()
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "(no records)")
		return err
	}
	start, end := recs[0].Start, recs[0].End
	busy := map[int]float64{}
	for _, r := range recs {
		if r.Start < start {
			start = r.Start
		}
		if r.End > end {
			end = r.End
		}
		busy[r.Core] += r.Duration()
	}
	span := end - start
	if span <= 0 {
		span = 1
	}
	cores := make([]int, 0, len(busy))
	for core := range busy {
		cores = append(cores, core)
	}
	sort.Slice(cores, func(i, j int) bool {
		if busy[cores[i]] != busy[cores[j]] {
			return busy[cores[i]] > busy[cores[j]]
		}
		return cores[i] < cores[j]
	})
	if len(cores) > maxCores {
		cores = cores[:maxCores]
	}
	shown := map[int]bool{}
	for _, core := range cores {
		shown[core] = true
	}

	// Per core, accumulate stage occupancy per bin.
	type binAcc [numStages]float64
	rows := map[int][]binAcc{}
	for _, core := range cores {
		rows[core] = make([]binAcc, width)
	}
	binW := span / float64(width)
	for _, r := range recs {
		if !shown[r.Core] || r.Duration() <= 0 {
			continue
		}
		b0 := int((r.Start - start) / binW)
		b1 := int((r.End - start) / binW)
		for b := b0; b <= b1 && b < width; b++ {
			if b < 0 {
				continue
			}
			lo := start + float64(b)*binW
			hi := lo + binW
			ov := minF(hi, r.End) - maxF(lo, r.Start)
			if ov > 0 {
				rows[r.Core][b][r.Stage] += ov
			}
		}
	}

	if _, err := fmt.Fprintf(w, "timeline %.3fs – %.3fs (%d bins of %.4fs)\n",
		start, end, width, binW); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "legend: .=sched d=deser c=cpu-gpu comm P=parallel s=serial w=ser x=recovery"); err != nil {
		return err
	}
	for _, core := range cores {
		var line strings.Builder
		for b := 0; b < width; b++ {
			best, bestV := -1, 0.0
			for st := 0; st < int(numStages); st++ {
				if v := rows[core][b][st]; v > bestV {
					best, bestV = st, v
				}
			}
			if best < 0 {
				line.WriteByte(' ')
			} else {
				line.WriteByte(ganttGlyphs[best])
			}
		}
		if _, err := fmt.Fprintf(w, "core %4d |%s| busy %.1f%%\n",
			core, line.String(), busy[core]/span*100); err != nil {
			return err
		}
	}
	return nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
