package metrics

import (
	"math"
	"testing"
)

func TestServiceStatsObserveWorkflow(t *testing.T) {
	s := NewServiceStats(2)
	c := NewCollector()
	// Three tasks: two sched records (waits 1 and 3) and noise stages the
	// walk must ignore.
	c.Add(Record{TaskID: 0, Stage: StageSched, Start: 0, End: 1})
	c.Add(Record{TaskID: 0, Stage: StageParallel, Start: 1, End: 9})
	c.Add(Record{TaskID: 1, Stage: StageSched, Start: 2, End: 5})
	c.Add(Record{TaskID: 1, Stage: StageSer, Start: 5, End: 6})

	s.ObserveWorkflow(1, 10, 2.5, c)
	s.ObserveWorkflow(1, 20, 5.0, nil) // nil collector: workflow samples only

	ten := s.Tenant(1)
	if ten.Workflows != 2 || ten.Tasks != 2 {
		t.Fatalf("workflows=%d tasks=%d, want 2 and 2", ten.Workflows, ten.Tasks)
	}
	if got := ten.QueueWaitSummary(); got.N != 2 || got.Mean != 2 || got.Min != 1 || got.Max != 3 {
		t.Errorf("queue wait summary %+v, want N=2 mean=2 min=1 max=3", got)
	}
	if got := ten.ResponseSummary(); got.Mean != 15 || got.Max != 20 {
		t.Errorf("response summary %+v, want mean=15 max=20", got)
	}
	if got := ten.SlowdownSummary(); got.P50 != 3.75 {
		// Two samples: exact small-sample median interpolates to 3.75.
		t.Errorf("slowdown p50 = %v, want 3.75", got.P50)
	}
	// The untouched tenant stays empty and reports NaN percentiles.
	if other := s.Tenant(0); other.Workflows != 0 || !math.IsNaN(other.ResponseSummary().P99) {
		t.Errorf("tenant 0 polluted: %+v", other.ResponseSummary())
	}
	if s.NumTenants() != 2 {
		t.Errorf("NumTenants = %d", s.NumTenants())
	}
}

func TestCollectorEach(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.Add(Record{TaskID: i})
	}
	var ids []int
	c.Each(func(r Record) { ids = append(ids, r.TaskID) })
	if len(ids) != 5 {
		t.Fatalf("Each visited %d records, want 5", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("Each out of insertion order: %v", ids)
		}
	}
}
