package sched

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"wfsim/internal/dag"
)

// randomGraph builds a random dependency DAG the same way the
// critical-path property tests do: tasks touching a small pool of data
// names with random directions, so write-read chains emerge naturally.
func randomGraph(seed uint64, n int) (*dag.Graph, []float64) {
	rng := rand.New(rand.NewPCG(seed, 37))
	g := dag.New()
	data := []string{"a", "b", "c", "d"}
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		params := []dag.Param{
			{Data: data[rng.IntN(len(data))], Dir: dag.Direction(rng.IntN(3))},
		}
		task := g.Add("t", nil, params...)
		weights[task.ID] = rng.Float64()*5 + 0.1
	}
	return g, weights
}

// TestBLevelMatchesCriticalPath pins the ISSUE property: under matching
// weights, the b-level of the critical path's source task equals the
// Graph.CriticalPath length, and no task's b-level exceeds it.
func TestBLevelMatchesCriticalPath(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		g, weights := randomGraph(seed, n)
		wfn := func(task *dag.Task) float64 { return weights[task.ID] }
		levels := BLevels(g, wfn)
		path, length := g.CriticalPath(wfn)
		// The first task of the critical path heads the longest
		// downward chain, which is exactly its bottom level.
		if math.Abs(levels[path[0]]-length) > 1e-9 {
			return false
		}
		// b-level is the longest path *starting* at a task, so the
		// maximum over all tasks is the critical path itself, and each
		// task's level is its own weight plus its best successor.
		var maxLevel float64
		for id, l := range levels {
			if l > maxLevel {
				maxLevel = l
			}
			var below float64
			for _, succ := range g.Task(id).Succs() {
				if levels[succ] > below {
					below = levels[succ]
				}
			}
			if math.Abs(l-(weights[id]+below)) > 1e-9 {
				return false
			}
		}
		return math.Abs(maxLevel-length) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestUpwardRanksReduceToBLevels pins the homogeneous-cluster property:
// with no communication pricing (shared storage, or a uniform cluster
// where transfer cost vanishes), HEFT's upward ranks are exactly the
// b-levels; uniform speed scaling scales ranks linearly; and a positive
// comm term only ever raises a rank.
func TestUpwardRanksReduceToBLevels(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		g, weights := randomGraph(seed, n)
		wfn := func(task *dag.Task) float64 { return weights[task.ID] }
		levels := BLevels(g, wfn)
		ranks := UpwardRanks(g, wfn, nil)
		for id := range levels {
			if ranks[id] != levels[id] {
				return false
			}
		}
		// A homogeneous cluster scales every task's mean cost by the
		// same 1/speed factor, so ranks scale linearly and the priority
		// order is unchanged.
		scaled := UpwardRanks(g, func(task *dag.Task) float64 { return 2.5 * wfn(task) }, nil)
		for id := range levels {
			if math.Abs(scaled[id]-2.5*levels[id]) > 1e-9 {
				return false
			}
		}
		// Pricing communication can only push ranks up.
		comm := UpwardRanks(g, wfn, func(from, to *dag.Task) float64 { return 0.7 })
		for id := range levels {
			if comm[id] < levels[id]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestUpwardRanksCommChain pins the comm term's placement on a concrete
// chain: rank(t) = w(t) + comm(t, succ) + rank(succ).
func TestUpwardRanksCommChain(t *testing.T) {
	g := dag.New()
	g.Add("a", nil, dag.Param{Data: "x", Dir: dag.Out})
	g.Add("b", nil, dag.Param{Data: "x", Dir: dag.In}, dag.Param{Data: "y", Dir: dag.Out})
	g.Add("c", nil, dag.Param{Data: "y", Dir: dag.In})
	unit := func(*dag.Task) float64 { return 1 }
	ranks := UpwardRanks(g, unit, func(from, to *dag.Task) float64 { return 10 })
	want := []float64{23, 12, 1}
	for id, w := range want {
		if ranks[id] != w {
			t.Errorf("rank[%d] = %v, want %v", id, ranks[id], w)
		}
	}
	levels := BLevels(g, unit)
	wantL := []float64{3, 2, 1}
	for id, w := range wantL {
		if levels[id] != w {
			t.Errorf("blevel[%d] = %v, want %v", id, levels[id], w)
		}
	}
}
