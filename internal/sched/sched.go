// Package sched implements the runtime's pluggable task scheduling
// policies (§3.2). The paper evaluates two COMPSs policies — task
// generation order (FIFO) and data locality — and we add LIFO and a seeded
// random policy as ablation baselines.
//
// A policy makes two choices: which ready task to dispatch next (queue
// discipline) and which node to place it on. Each decision costs a
// per-policy service time on the capacity-1 master server, so scheduling
// overhead scales with the number of tasks — the mechanism behind the
// paper's observation that fine-grained workloads suffer scheduling
// bottlenecks, and that the locality policy's pricier placement search
// shows up at low task granularity.
//
// Data is identified by interned datum IDs (see dag.Interner): locality
// decisions index flat per-node scratch instead of hashing strings, so a
// placement decision allocates nothing in steady state.
package sched

import (
	"fmt"
	"math/rand/v2"

	"wfsim/internal/costmodel"
)

// DataLoc describes one input datum of a task for locality decisions.
type DataLoc struct {
	// ID is the datum's interned ID (dag.Interner).
	ID    int32
	Bytes float64
}

// TaskRef is the scheduler-visible view of a ready task.
type TaskRef struct {
	ID     int
	Name   string
	Inputs []DataLoc
	// Enqueued is the virtual instant the task entered the ready queue.
	// It rides with the ref so queue disciplines that reorder dispatch
	// (LIFO) still attribute the correct wait to each task.
	Enqueued float64
	// Tenant tags the workload stream the task belongs to; the queue
	// keeps per-tenant length accounting so a fair-share dispatch gate
	// can pick a tenant without popping. Single-workflow runs leave it 0.
	Tenant int32
	// Session identifies the submitted workflow instance within the
	// runtime's multiplexed engine (one tenant may stream many
	// workflows). Opaque to the scheduler; 0 in single-workflow runs.
	Session int32
}

// View is the scheduler-visible cluster state.
type View struct {
	// NumNodes is the cluster node count.
	NumNodes int
	// Load is the number of dispatched-but-unfinished tasks per node.
	Load []int
	// Locate resolves a datum ID to its holding node (local-disk
	// storage); shared storage always reports no affinity.
	Locate func(id int32) (int, bool)
	// Up marks nodes accepting work; nil means every node is up (the
	// fault-free case). Placement never targets a down node; Place
	// returns -1 when no node is up.
	Up []bool
}

// UpNode reports whether node n accepts work.
func (v *View) UpNode(n int) bool { return v.Up == nil || v.Up[n] }

// leastLoaded returns the up node with the fewest outstanding tasks,
// lowest ID winning ties (deterministic), or -1 when every node is down.
func (v *View) leastLoaded() int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for n := 0; n < v.NumNodes; n++ {
		if v.UpNode(n) && v.Load[n] < bestLoad {
			best, bestLoad = n, v.Load[n]
		}
	}
	return best
}

// Queue is the ready-task queue, ordered by task generation order. It is
// a ring buffer: PopFront recycles its slot instead of shrinking the
// slice from the front, so the backing array stays bounded by the peak
// queue depth instead of growing for the whole run.
type Queue struct {
	items []TaskRef
	head  int
	count int
	// perTenant[t] counts queued refs tagged with tenant t, so a
	// fair-share gate can inspect tenant backlogs without popping. The
	// slice grows to cover the highest tenant tag ever pushed.
	perTenant []int
}

// Push appends a newly ready task. Tasks become ready in generation order
// among tasks freed at the same instant, so Push order is the paper's
// "task generation order".
func (q *Queue) Push(t TaskRef) {
	if q.count == len(q.items) {
		grown := make([]TaskRef, 2*len(q.items)+4)
		for i := 0; i < q.count; i++ {
			grown[i] = q.items[(q.head+i)%len(q.items)]
		}
		q.items, q.head = grown, 0
	}
	q.items[(q.head+q.count)%len(q.items)] = t
	q.count++
	for int(t.Tenant) >= len(q.perTenant) {
		q.perTenant = append(q.perTenant, 0)
	}
	q.perTenant[t.Tenant]++
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int { return q.count }

// TenantLen returns the number of queued tasks tagged with tenant t.
func (q *Queue) TenantLen(t int32) int {
	if int(t) >= len(q.perTenant) {
		return 0
	}
	return q.perTenant[t]
}

// Peek returns the oldest ready task without removing it.
func (q *Queue) Peek() (TaskRef, bool) {
	if q.count == 0 {
		return TaskRef{}, false
	}
	return q.items[q.head], true
}

// PopFront removes and returns the oldest ready task.
func (q *Queue) PopFront() (TaskRef, bool) {
	if q.count == 0 {
		return TaskRef{}, false
	}
	t := q.items[q.head]
	q.items[q.head] = TaskRef{} // release the Inputs backing for reuse
	q.head = (q.head + 1) % len(q.items)
	q.count--
	q.perTenant[t.Tenant]--
	return t, true
}

// PopBack removes and returns the newest ready task.
func (q *Queue) PopBack() (TaskRef, bool) {
	if q.count == 0 {
		return TaskRef{}, false
	}
	i := (q.head + q.count - 1) % len(q.items)
	t := q.items[i]
	q.items[i] = TaskRef{}
	q.count--
	q.perTenant[t.Tenant]--
	return t, true
}

// at returns the physical index of the i-th queued ref (0 = oldest).
func (q *Queue) at(i int) int { return (q.head + i) % len(q.items) }

// removeAt deletes the i-th queued ref (0 = oldest), preserving the
// relative order of every other ref by shifting the shorter side of the
// ring toward the gap. No allocation.
func (q *Queue) removeAt(i int) TaskRef {
	t := q.items[q.at(i)]
	if i < q.count-i-1 {
		// Shift the front segment back by one.
		for j := i; j > 0; j-- {
			q.items[q.at(j)] = q.items[q.at(j-1)]
		}
		q.items[q.head] = TaskRef{}
		q.head = (q.head + 1) % len(q.items)
	} else {
		// Shift the tail segment forward by one.
		for j := i; j < q.count-1; j++ {
			q.items[q.at(j)] = q.items[q.at(j+1)]
		}
		q.items[q.at(q.count-1)] = TaskRef{}
	}
	q.count--
	q.perTenant[t.Tenant]--
	return t
}

// PopFrontTenant removes and returns the oldest ready task tagged with
// tenant t. The scan from the head is linear in queue depth; the
// fair-share gate calls it once per dispatch.
func (q *Queue) PopFrontTenant(t int32) (TaskRef, bool) {
	if q.TenantLen(t) == 0 {
		return TaskRef{}, false
	}
	for i := 0; i < q.count; i++ {
		if q.items[q.at(i)].Tenant == t {
			return q.removeAt(i), true
		}
	}
	return TaskRef{}, false
}

// PopBackTenant removes and returns the newest ready task tagged with
// tenant t.
func (q *Queue) PopBackTenant(t int32) (TaskRef, bool) {
	if q.TenantLen(t) == 0 {
		return TaskRef{}, false
	}
	for i := q.count - 1; i >= 0; i-- {
		if q.items[q.at(i)].Tenant == t {
			return q.removeAt(i), true
		}
	}
	return TaskRef{}, false
}

// Policy identifies a scheduling policy.
type Policy int

const (
	// FIFO is COMPSs' task-generation-order policy: cheap decisions,
	// placement on the least-loaded node.
	FIFO Policy = iota
	// Locality is COMPSs' data-locality policy: pricier decisions,
	// placement on the node holding the most input bytes.
	Locality
	// LIFO dispatches the most recently generated ready task first
	// (ablation).
	LIFO
	// Random places tasks uniformly at random (seeded; ablation
	// baseline).
	Random
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "task generation order"
	case Locality:
		return "data locality"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Scheduler selects and places ready tasks.
type Scheduler interface {
	// Policy identifies the implementation.
	Policy() Policy
	// Overhead is the master-side service time per scheduling decision.
	Overhead(p costmodel.Params) float64
	// Next removes and returns the next task to dispatch.
	Next(q *Queue) (TaskRef, bool)
	// NextFor removes and returns the next task to dispatch among those
	// tagged with the given tenant, applying the same queue discipline as
	// Next restricted to that tenant's refs. A fair-share dispatch gate
	// picks the tenant; the policy still picks the task.
	NextFor(q *Queue, tenant int32) (TaskRef, bool)
	// Place picks the target node for the task.
	Place(t TaskRef, v *View) int
}

// New constructs the scheduler for a policy. Seed is used only by Random.
func New(p Policy, seed uint64) (Scheduler, error) {
	switch p {
	case FIFO:
		return fifoSched{}, nil
	case Locality:
		return &localitySched{}, nil
	case LIFO:
		return lifoSched{}, nil
	case Random:
		return &randomSched{rng: rand.New(rand.NewPCG(seed, 0x5eed))}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %d", p)
	}
}

type fifoSched struct{}

func (fifoSched) Policy() Policy                      { return FIFO }
func (fifoSched) Overhead(p costmodel.Params) float64 { return p.SchedFIFO }
func (fifoSched) Next(q *Queue) (TaskRef, bool)       { return q.PopFront() }
func (fifoSched) Place(t TaskRef, v *View) int        { return v.leastLoaded() }

func (fifoSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopFrontTenant(t) }

type lifoSched struct{}

func (lifoSched) Policy() Policy                      { return LIFO }
func (lifoSched) Overhead(p costmodel.Params) float64 { return p.SchedFIFO }
func (lifoSched) Next(q *Queue) (TaskRef, bool)       { return q.PopBack() }
func (lifoSched) Place(t TaskRef, v *View) int        { return v.leastLoaded() }

func (lifoSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopBackTenant(t) }

// localitySched carries reusable per-node scratch so a placement decision
// performs zero allocations: byNode tallies resident input bytes per node,
// seen tracks membership, and touched remembers which entries to reset
// afterwards.
type localitySched struct {
	byNode  []float64
	seen    []bool
	touched []int
}

func (*localitySched) Policy() Policy                      { return Locality }
func (*localitySched) Overhead(p costmodel.Params) float64 { return p.SchedLocality }
func (*localitySched) Next(q *Queue) (TaskRef, bool)       { return q.PopFront() }

func (*localitySched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopFrontTenant(t) }

// Place tallies input bytes per holding node and chooses the node with the
// best locality score; without any located input (e.g. shared storage,
// where blocks have no node affinity) it falls back to least-loaded. The
// score discounts resident bytes by the node's outstanding load — COMPSs'
// locality scheduler likewise prefers local data only among free
// resources, so a data hotspot does not serialize the whole level.
func (l *localitySched) Place(t TaskRef, v *View) int {
	if len(l.byNode) < v.NumNodes {
		l.byNode = make([]float64, v.NumNodes)
		l.seen = make([]bool, v.NumNodes)
	}
	for _, in := range t.Inputs {
		// Membership is tracked explicitly (seen), not via byNode[n] == 0:
		// zero-byte inputs are legal, and keying on the tally would append
		// the same node to touched once per such input.
		if n, ok := v.Locate(in.ID); ok && n >= 0 && v.UpNode(n) {
			if !l.seen[n] {
				l.seen[n] = true
				l.touched = append(l.touched, n)
			}
			l.byNode[n] += in.Bytes
		}
	}
	best, bestScore := -1, 0.0
	for _, n := range l.touched {
		// Strictly-greater keeps the lowest node ID on ties for
		// determinism — touched holds distinct nodes in first-tally
		// order, so compare against the lowest-ID candidate explicitly.
		if score := l.byNode[n] / float64(1+v.Load[n]); score > bestScore ||
			(score == bestScore && best >= 0 && n < best) {
			best, bestScore = n, score
		}
	}
	for _, n := range l.touched {
		l.byNode[n] = 0
		l.seen[n] = false
	}
	l.touched = l.touched[:0]
	if best < 0 {
		return v.leastLoaded()
	}
	return best
}

type randomSched struct {
	rng *rand.Rand
}

func (*randomSched) Policy() Policy                      { return Random }
func (*randomSched) Overhead(p costmodel.Params) float64 { return p.SchedFIFO }
func (*randomSched) Next(q *Queue) (TaskRef, bool)       { return q.PopFront() }

func (*randomSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopFrontTenant(t) }

// Place draws a uniform node; with down nodes it keeps the single draw
// (so the fault-free stream is untouched) and scans forward to the next
// up node, returning -1 when the whole cluster is down.
func (r *randomSched) Place(t TaskRef, v *View) int {
	n := r.rng.IntN(v.NumNodes)
	for k := 0; k < v.NumNodes; k++ {
		if c := (n + k) % v.NumNodes; v.UpNode(c) {
			return c
		}
	}
	return -1
}
