// Package sched implements the runtime's pluggable task scheduling
// policies (§3.2). The paper evaluates two COMPSs policies — task
// generation order (FIFO) and data locality — plus LIFO and a seeded
// random policy as ablation baselines. On top of those, the zoo adds the
// lookahead and dynamic schedulers of Beránek et al.'s simulator study:
// HEFT (upward-rank priority, earliest-finish-time placement), b-level
// (bottom-level priority, least-loaded placement), min-min (shortest
// estimated task first, earliest-finish-time placement) and work stealing
// (per-node deques with steal-on-idle).
//
// A policy makes two choices: which ready task to dispatch next (queue
// discipline) and which node to place it on. Each decision costs a
// per-decision service time on the capacity-1 master server — base cost
// plus, for the lookahead policies, a per-ready-task priority-scan term
// and a per-candidate-node placement-scan term (see Scheduler.Overhead
// and costmodel's Sched* constants) — so scheduling overhead scales with
// the number of tasks, queue depth and cluster size. That is the
// mechanism behind the paper's observation that fine-grained workloads
// suffer scheduling bottlenecks, and behind the ext6 ranking flip:
// lookahead wins while decisions are free and loses once they are not.
//
// Data is identified by interned datum IDs (see dag.Interner): locality
// decisions index flat per-node scratch instead of hashing strings, so a
// placement decision allocates nothing in steady state.
package sched

import (
	"fmt"
	"math"
	"math/rand/v2"

	"wfsim/internal/costmodel"
)

// DataLoc describes one input datum of a task for locality decisions.
type DataLoc struct {
	// ID is the datum's interned ID (dag.Interner).
	ID    int32
	Bytes float64
}

// TaskRef is the scheduler-visible view of a ready task.
type TaskRef struct {
	ID     int
	Name   string
	Inputs []DataLoc
	// Enqueued is the virtual instant the task entered the ready queue.
	// It rides with the ref so queue disciplines that reorder dispatch
	// (LIFO) still attribute the correct wait to each task.
	Enqueued float64
	// Tenant tags the workload stream the task belongs to; the queue
	// keeps per-tenant length accounting so a fair-share dispatch gate
	// can pick a tenant without popping. Single-workflow runs leave it 0.
	Tenant int32
	// Session identifies the submitted workflow instance within the
	// runtime's multiplexed engine (one tenant may stream many
	// workflows). Opaque to the scheduler; 0 in single-workflow runs.
	Session int32
	// Rank is the task's precomputed lookahead priority (HEFT upward rank
	// or b-level), stamped from the session's per-workflow rank table at
	// enqueue. Higher dispatches first. Zero for policies without
	// lookahead.
	Rank float64
	// Cost is the task's estimated dedicated-resource execution time
	// (deserialize + user code + serialize on a nominal-speed node),
	// stamped alongside Rank. min-min dispatches the smallest Cost first;
	// earliest-finish-time placement scales it by candidate node speed.
	Cost float64
}

// View is the scheduler-visible cluster state.
type View struct {
	// NumNodes is the cluster node count.
	NumNodes int
	// Load is the number of dispatched-but-unfinished tasks per node.
	Load []int
	// Locate resolves a datum ID to its holding node (local-disk
	// storage); shared storage always reports no affinity.
	Locate func(id int32) (int, bool)
	// Up marks nodes accepting work; nil means every node is up (the
	// fault-free case). Placement never targets a down node; Place
	// returns -1 when no node is up.
	Up []bool
	// Speed is the per-node compute-rate multiplier (SimConfig.NodeSpeed);
	// nil means a homogeneous cluster. Earliest-finish-time placement
	// scales task cost estimates by it.
	Speed []float64
	// XferRate is the estimated node-to-node transfer bandwidth (bytes/s)
	// used to price pulling non-resident input bytes in placement
	// estimates; 0 disables the transfer term.
	XferRate float64
}

// UpNode reports whether node n accepts work.
func (v *View) UpNode(n int) bool { return v.Up == nil || v.Up[n] }

// speed returns node n's compute-rate multiplier (1 when homogeneous).
func (v *View) speed(n int) float64 {
	if v.Speed == nil {
		return 1
	}
	return v.Speed[n]
}

// leastLoaded returns the up node with the fewest outstanding tasks,
// lowest ID winning ties (deterministic), or -1 when every node is down.
func (v *View) leastLoaded() int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for n := 0; n < v.NumNodes; n++ {
		if v.UpNode(n) && v.Load[n] < bestLoad {
			best, bestLoad = n, v.Load[n]
		}
	}
	return best
}

// Queue is the ready-task queue, ordered by task generation order. It is
// a ring buffer: PopFront recycles its slot instead of shrinking the
// slice from the front, so the backing array stays bounded by the peak
// queue depth instead of growing for the whole run.
type Queue struct {
	items []TaskRef
	head  int
	count int
	// perTenant[t] counts queued refs tagged with tenant t, so a
	// fair-share gate can inspect tenant backlogs without popping. The
	// slice grows to cover the highest tenant tag ever pushed.
	perTenant []int
}

// Push appends a newly ready task. Tasks become ready in generation order
// among tasks freed at the same instant, so Push order is the paper's
// "task generation order".
func (q *Queue) Push(t TaskRef) {
	if q.count == len(q.items) {
		grown := make([]TaskRef, 2*len(q.items)+4)
		for i := 0; i < q.count; i++ {
			grown[i] = q.items[(q.head+i)%len(q.items)]
		}
		q.items, q.head = grown, 0
	}
	q.items[(q.head+q.count)%len(q.items)] = t
	q.count++
	for int(t.Tenant) >= len(q.perTenant) {
		q.perTenant = append(q.perTenant, 0)
	}
	q.perTenant[t.Tenant]++
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int { return q.count }

// TenantLen returns the number of queued tasks tagged with tenant t.
func (q *Queue) TenantLen(t int32) int {
	if int(t) >= len(q.perTenant) {
		return 0
	}
	return q.perTenant[t]
}

// Peek returns the oldest ready task without removing it.
func (q *Queue) Peek() (TaskRef, bool) {
	if q.count == 0 {
		return TaskRef{}, false
	}
	return q.items[q.head], true
}

// PopFront removes and returns the oldest ready task.
func (q *Queue) PopFront() (TaskRef, bool) {
	if q.count == 0 {
		return TaskRef{}, false
	}
	t := q.items[q.head]
	q.items[q.head] = TaskRef{} // release the Inputs backing for reuse
	q.head = (q.head + 1) % len(q.items)
	q.count--
	q.perTenant[t.Tenant]--
	return t, true
}

// PopBack removes and returns the newest ready task.
func (q *Queue) PopBack() (TaskRef, bool) {
	if q.count == 0 {
		return TaskRef{}, false
	}
	i := (q.head + q.count - 1) % len(q.items)
	t := q.items[i]
	q.items[i] = TaskRef{}
	q.count--
	q.perTenant[t.Tenant]--
	return t, true
}

// at returns the physical index of the i-th queued ref (0 = oldest).
func (q *Queue) at(i int) int { return (q.head + i) % len(q.items) }

// removeAt deletes the i-th queued ref (0 = oldest), preserving the
// relative order of every other ref by shifting the shorter side of the
// ring toward the gap. No allocation.
func (q *Queue) removeAt(i int) TaskRef {
	t := q.items[q.at(i)]
	if i < q.count-i-1 {
		// Shift the front segment back by one.
		for j := i; j > 0; j-- {
			q.items[q.at(j)] = q.items[q.at(j-1)]
		}
		q.items[q.head] = TaskRef{}
		q.head = (q.head + 1) % len(q.items)
	} else {
		// Shift the tail segment forward by one.
		for j := i; j < q.count-1; j++ {
			q.items[q.at(j)] = q.items[q.at(j+1)]
		}
		q.items[q.at(q.count-1)] = TaskRef{}
	}
	q.count--
	q.perTenant[t.Tenant]--
	return t
}

// PopFrontTenant removes and returns the oldest ready task tagged with
// tenant t. The scan from the head is linear in queue depth; the
// fair-share gate calls it once per dispatch.
func (q *Queue) PopFrontTenant(t int32) (TaskRef, bool) {
	if q.TenantLen(t) == 0 {
		return TaskRef{}, false
	}
	for i := 0; i < q.count; i++ {
		if q.items[q.at(i)].Tenant == t {
			return q.removeAt(i), true
		}
	}
	return TaskRef{}, false
}

// PopBackTenant removes and returns the newest ready task tagged with
// tenant t.
func (q *Queue) PopBackTenant(t int32) (TaskRef, bool) {
	if q.TenantLen(t) == 0 {
		return TaskRef{}, false
	}
	for i := q.count - 1; i >= 0; i-- {
		if q.items[q.at(i)].Tenant == t {
			return q.removeAt(i), true
		}
	}
	return TaskRef{}, false
}

// rankGreater and costLess are the lookahead queue disciplines: highest
// precomputed priority first (HEFT, b-level) and smallest estimated
// execution time first (min-min). Named functions, not closures, so the
// dispatch path carries no per-call allocations.
func rankGreater(a, b TaskRef) bool { return a.Rank > b.Rank }
func costLess(a, b TaskRef) bool    { return a.Cost < b.Cost }

// popBest removes and returns the queued ref preferred by better(cand,
// incumbent), scanning front to back; with a strict comparison the oldest
// ref wins ties, so equal-priority work keeps generation order. With
// anyTenant false only refs tagged with the given tenant compete — the
// fair-share gate picks the tenant, the discipline picks within it.
func (q *Queue) popBest(tenant int32, anyTenant bool, better func(cand, best TaskRef) bool) (TaskRef, bool) {
	if !anyTenant && q.TenantLen(tenant) == 0 {
		return TaskRef{}, false
	}
	bestIdx := -1
	var best TaskRef
	for i := 0; i < q.count; i++ {
		ref := q.items[q.at(i)]
		if !anyTenant && ref.Tenant != tenant {
			continue
		}
		if bestIdx < 0 || better(ref, best) {
			bestIdx, best = i, ref
		}
	}
	if bestIdx < 0 {
		return TaskRef{}, false
	}
	return q.removeAt(bestIdx), true
}

// Policy identifies a scheduling policy.
type Policy int

const (
	// FIFO is COMPSs' task-generation-order policy: cheap decisions,
	// placement on the least-loaded node.
	FIFO Policy = iota
	// Locality is COMPSs' data-locality policy: pricier decisions,
	// placement on the node holding the most input bytes.
	Locality
	// LIFO dispatches the most recently generated ready task first
	// (ablation).
	LIFO
	// Random places tasks uniformly at random (seeded; ablation
	// baseline).
	Random
	// HEFT dispatches by precomputed upward rank (critical-path-aware
	// lookahead) and places on the node with the earliest estimated
	// finish time, accounting for node speed and input residency.
	HEFT
	// BLevel dispatches by precomputed bottom level — the weight of the
	// heaviest path from the task to a sink — with the cheap least-loaded
	// placement: priority lookahead without the per-node placement scan.
	BLevel
	// MinMin dispatches the ready task with the smallest estimated
	// execution time first and places it at its earliest estimated
	// finish time.
	MinMin
	// WorkSteal models per-node deques with steal-on-idle: the idle
	// (least-loaded) node pops the newest task homed on it, or steals the
	// oldest ready task when its own deque is empty.
	WorkSteal
)

// String returns the policy's stable lowercase token. These tokens are
// the policy's durable external names — CLI flags, HTTP what-if requests
// and report documentation all use them, and they are append-only (see
// ParsePolicy). Result-cache keys encode the Policy enum value itself,
// so tokens and keys are stable independently. Paper-phrase display
// names live in Describe.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Locality:
		return "locality"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	case HEFT:
		return "heft"
	case BLevel:
		return "blevel"
	case MinMin:
		return "minmin"
	case WorkSteal:
		return "worksteal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Describe returns the policy's report display name: the paper's
// phrasing for the two COMPSs policies, conventional names for the rest.
// Report renderers use Describe; machine-facing surfaces use String.
func (p Policy) Describe() string {
	switch p {
	case FIFO:
		return "task generation order"
	case Locality:
		return "data locality"
	case HEFT:
		return "heft"
	case BLevel:
		return "b-level"
	case MinMin:
		return "min-min"
	case WorkSteal:
		return "work stealing"
	default:
		return p.String()
	}
}

// Policies returns every implemented policy in enum order.
func Policies() []Policy {
	return []Policy{FIFO, Locality, LIFO, Random, HEFT, BLevel, MinMin, WorkSteal}
}

// ParsePolicy resolves a stable policy token (Policy.String) back to its
// Policy. Tokens are part of the external interface (CLI, HTTP) and are
// never renamed, only added.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", s)
}

// Scheduler selects and places ready tasks.
type Scheduler interface {
	// Policy identifies the implementation.
	Policy() Policy
	// Overhead is the master-side service time of one scheduling
	// decision made with queueLen ready tasks on a numNodes cluster:
	// SchedOverheadScale × (per-policy base + priority-scan and
	// placement-scan terms for the lookahead policies). The runtime
	// charges it on the master's service line at every grant.
	Overhead(p *costmodel.Params, queueLen, numNodes int) float64
	// Next removes and returns the next task to dispatch.
	Next(q *Queue) (TaskRef, bool)
	// NextFor removes and returns the next task to dispatch among those
	// tagged with the given tenant, applying the same queue discipline as
	// Next restricted to that tenant's refs. A fair-share dispatch gate
	// picks the tenant; the policy still picks the task.
	NextFor(q *Queue, tenant int32) (TaskRef, bool)
	// Place picks the target node for the task.
	Place(t TaskRef, v *View) int
}

// ViewBinder is implemented by schedulers whose queue discipline needs
// cluster state (work stealing picks the idle node before it picks the
// task). The runtime binds its live View once at construction; Next may
// then consult it.
type ViewBinder interface {
	BindView(v *View)
}

// New constructs the scheduler for a policy. Seed is used only by Random.
func New(p Policy, seed uint64) (Scheduler, error) {
	switch p {
	case FIFO:
		return fifoSched{}, nil
	case Locality:
		return &localitySched{}, nil
	case LIFO:
		return lifoSched{}, nil
	case Random:
		return &randomSched{rng: rand.New(rand.NewPCG(seed, 0x5eed))}, nil
	case HEFT:
		return &heftSched{}, nil
	case BLevel:
		return &blevelSched{}, nil
	case MinMin:
		return &minminSched{}, nil
	case WorkSteal:
		return &workStealSched{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %d", p)
	}
}

type fifoSched struct{}

func (fifoSched) Policy() Policy { return FIFO }
func (fifoSched) Overhead(p *costmodel.Params, _, _ int) float64 {
	return p.SchedOverheadScale * p.SchedFIFO
}
func (fifoSched) Next(q *Queue) (TaskRef, bool) { return q.PopFront() }
func (fifoSched) Place(t TaskRef, v *View) int  { return v.leastLoaded() }

func (fifoSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopFrontTenant(t) }

type lifoSched struct{}

func (lifoSched) Policy() Policy { return LIFO }
func (lifoSched) Overhead(p *costmodel.Params, _, _ int) float64 {
	return p.SchedOverheadScale * p.SchedLIFO
}
func (lifoSched) Next(q *Queue) (TaskRef, bool) { return q.PopBack() }
func (lifoSched) Place(t TaskRef, v *View) int  { return v.leastLoaded() }

func (lifoSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopBackTenant(t) }

// residency is the reusable per-node scratch behind every data-aware
// placement decision: byNode tallies resident input bytes per node, seen
// tracks membership, and touched remembers which entries to reset
// afterwards, so a decision performs zero steady-state allocations.
type residency struct {
	byNode  []float64
	seen    []bool
	touched []int
}

// size adapts the scratch to the view's node count. Growth past capacity
// reallocates; any other change (a cluster resized mid-session, or a
// scheduler reused across differently-sized views) re-slices in place —
// the stale-capacity path that used to silently keep oversized
// assumptions. Entries beyond the previous length are zero: reset zeroes
// every touched entry after each decision.
func (r *residency) size(n int) {
	if cap(r.byNode) < n {
		// Runs on the first decision and when the cluster grows past every
		// previous size — a reconfiguration event, not steady state.
		r.byNode = make([]float64, n) //wfsimlint:allow hotalloc
		r.seen = make([]bool, n)      //wfsimlint:allow hotalloc
	} else if len(r.byNode) != n {
		r.byNode = r.byNode[:n]
		r.seen = r.seen[:n]
	}
}

// tally accumulates the resident bytes of t's inputs per up node. The
// n < NumNodes guard drops stale locations recorded under a larger
// cluster: affinity to a node that no longer exists is no affinity.
func (r *residency) tally(t TaskRef, v *View) {
	r.size(v.NumNodes)
	for _, in := range t.Inputs {
		// Membership is tracked explicitly (seen), not via byNode[n] == 0:
		// zero-byte inputs are legal, and keying on the tally would append
		// the same node to touched once per such input.
		if n, ok := v.Locate(in.ID); ok && n >= 0 && n < v.NumNodes && v.UpNode(n) {
			if !r.seen[n] {
				r.seen[n] = true
				// Capacity is retained across decisions and bounded by the
				// node count, so steady state never grows it.
				r.touched = append(r.touched, n) //wfsimlint:allow hotalloc
			}
			r.byNode[n] += in.Bytes
		}
	}
}

// reset zeroes the touched entries, leaving the scratch clean for the
// next decision.
func (r *residency) reset() {
	for _, n := range r.touched {
		r.byNode[n] = 0
		r.seen[n] = false
	}
	r.touched = r.touched[:0]
}

// localitySched places on the node holding the most input bytes, using
// the shared residency scratch.
type localitySched struct {
	res residency
}

func (*localitySched) Policy() Policy { return Locality }
func (*localitySched) Overhead(p *costmodel.Params, _, _ int) float64 {
	return p.SchedOverheadScale * p.SchedLocality
}
func (*localitySched) Next(q *Queue) (TaskRef, bool) { return q.PopFront() }

func (*localitySched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopFrontTenant(t) }

// Place tallies input bytes per holding node and chooses the node with the
// best locality score; without any located input (e.g. shared storage,
// where blocks have no node affinity) it falls back to least-loaded. The
// score discounts resident bytes by the node's outstanding load — COMPSs'
// locality scheduler likewise prefers local data only among free
// resources, so a data hotspot does not serialize the whole level.
//
// When every resident input is zero-byte the affinity is still real
// (node-resident metadata, empty partitions): the task goes to the least
// loaded of the touched nodes instead of forgetting them — the
// zero-score fall-through to the global least-loaded scan was a bug that
// discarded known placement signal.
func (l *localitySched) Place(t TaskRef, v *View) int {
	l.res.tally(t, v)
	best, bestScore := -1, 0.0
	for _, n := range l.res.touched {
		// Strictly-greater keeps the lowest node ID on ties for
		// determinism — touched holds distinct nodes in first-tally
		// order, so compare against the lowest-ID candidate explicitly.
		if score := l.res.byNode[n] / float64(1+v.Load[n]); score > bestScore ||
			(score == bestScore && best >= 0 && n < best) {
			best, bestScore = n, score
		}
	}
	if best < 0 {
		for _, n := range l.res.touched {
			if best < 0 || v.Load[n] < v.Load[best] ||
				(v.Load[n] == v.Load[best] && n < best) {
				best = n
			}
		}
	}
	l.res.reset()
	if best < 0 {
		return v.leastLoaded()
	}
	return best
}

type randomSched struct {
	rng *rand.Rand
}

func (*randomSched) Policy() Policy { return Random }
func (*randomSched) Overhead(p *costmodel.Params, _, _ int) float64 {
	return p.SchedOverheadScale * p.SchedRandom
}
func (*randomSched) Next(q *Queue) (TaskRef, bool) { return q.PopFront() }

func (*randomSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return q.PopFrontTenant(t) }

// Place draws a uniform node; with down nodes it keeps the single draw
// (so the fault-free stream is untouched) and scans forward to the next
// up node, returning -1 when the whole cluster is down.
func (r *randomSched) Place(t TaskRef, v *View) int {
	n := r.rng.IntN(v.NumNodes)
	for k := 0; k < v.NumNodes; k++ {
		if c := (n + k) % v.NumNodes; v.UpNode(c) {
			return c
		}
	}
	return -1
}

// eftNode returns the up node with the earliest estimated finish time for
// t: the work queued ahead of it (plus itself) scaled by the node's
// speed, plus the estimated transfer time for input bytes not resident on
// the candidate. res must already hold t's residency tally. Lowest node
// ID wins ties (strictly-less comparison); -1 when every node is down.
// Refs without a cost estimate degrade to a speed-blind least-loaded
// choice, so the placement stays sane outside the runtime's stamping.
func eftNode(t TaskRef, v *View, res *residency) int {
	var total float64
	for _, in := range t.Inputs {
		total += in.Bytes
	}
	best, bestEFT := -1, math.Inf(1)
	for n := 0; n < v.NumNodes; n++ {
		if !v.UpNode(n) {
			continue
		}
		eft := float64(v.Load[n] + 1)
		if t.Cost > 0 {
			eft *= t.Cost / v.speed(n)
		}
		if v.XferRate > 0 {
			eft += (total - res.byNode[n]) / v.XferRate
		}
		if eft < bestEFT {
			best, bestEFT = n, eft
		}
	}
	return best
}

// heftSched dispatches by precomputed upward rank and places at the
// earliest estimated finish time: the full HEFT discipline, priced by the
// overhead model as a rank scan over the ready queue plus an EFT
// evaluation per candidate node.
type heftSched struct {
	res residency
}

func (*heftSched) Policy() Policy { return HEFT }
func (*heftSched) Overhead(p *costmodel.Params, queueLen, numNodes int) float64 {
	return p.SchedOverheadScale *
		(p.SchedHEFT + p.SchedPerRank*float64(queueLen) + p.SchedPerNode*float64(numNodes))
}
func (*heftSched) Next(q *Queue) (TaskRef, bool) { return q.popBest(0, true, rankGreater) }
func (*heftSched) NextFor(q *Queue, t int32) (TaskRef, bool) {
	return q.popBest(t, false, rankGreater)
}
func (h *heftSched) Place(t TaskRef, v *View) int {
	h.res.tally(t, v)
	n := eftNode(t, v, &h.res)
	h.res.reset()
	return n
}

// blevelSched dispatches by precomputed bottom level with the cheap
// least-loaded placement: priority lookahead without HEFT's per-node
// placement scan, and priced accordingly (no SchedPerNode term).
type blevelSched struct{}

func (blevelSched) Policy() Policy { return BLevel }
func (blevelSched) Overhead(p *costmodel.Params, queueLen, _ int) float64 {
	return p.SchedOverheadScale * (p.SchedBLevel + p.SchedPerRank*float64(queueLen))
}
func (blevelSched) Next(q *Queue) (TaskRef, bool) { return q.popBest(0, true, rankGreater) }
func (blevelSched) NextFor(q *Queue, t int32) (TaskRef, bool) {
	return q.popBest(t, false, rankGreater)
}
func (blevelSched) Place(t TaskRef, v *View) int { return v.leastLoaded() }

// minminSched dispatches the ready task with the smallest estimated
// execution time and places it at its earliest estimated finish time —
// min-min's greedy completion-time heuristic over the ready set.
type minminSched struct {
	res residency
}

func (*minminSched) Policy() Policy { return MinMin }
func (*minminSched) Overhead(p *costmodel.Params, queueLen, numNodes int) float64 {
	return p.SchedOverheadScale *
		(p.SchedMinMin + p.SchedPerRank*float64(queueLen) + p.SchedPerNode*float64(numNodes))
}
func (*minminSched) Next(q *Queue) (TaskRef, bool) { return q.popBest(0, true, costLess) }
func (*minminSched) NextFor(q *Queue, t int32) (TaskRef, bool) {
	return q.popBest(t, false, costLess)
}
func (m *minminSched) Place(t TaskRef, v *View) int {
	m.res.tally(t, v)
	n := eftNode(t, v, &m.res)
	m.res.reset()
	return n
}

// workStealSched models per-node deques with steal-on-idle inside the
// centralized dispatch loop: the thief is the least-loaded up node; it
// pops the newest ready task homed on it (owner-side LIFO keeps the
// cache-warm tail), or steals the oldest ready task outright (thief-side
// FIFO takes the victim's deque head). A ref's home is the up node
// holding its largest located input, falling back to a stable ID hash
// when storage reports no affinity. The chosen node is carried to Place
// through scratch — safe because the capacity-1 master strictly
// alternates Next and Place.
type workStealSched struct {
	v       *View
	pending int
	bound   bool
}

// BindView gives the discipline the live cluster view; without it (plain
// queue use outside the runtime) Next degrades to FIFO order.
func (w *workStealSched) BindView(v *View) { w.v = v }

func (*workStealSched) Policy() Policy { return WorkSteal }
func (*workStealSched) Overhead(p *costmodel.Params, _, _ int) float64 {
	return p.SchedOverheadScale * p.SchedWorkSteal
}

func (w *workStealSched) Next(q *Queue) (TaskRef, bool)             { return w.next(q, 0, true) }
func (w *workStealSched) NextFor(q *Queue, t int32) (TaskRef, bool) { return w.next(q, t, false) }

func (w *workStealSched) next(q *Queue, tenant int32, anyTenant bool) (TaskRef, bool) {
	w.bound = false
	v := w.v
	var thief int
	if v == nil || v.NumNodes == 0 {
		thief = -1
	} else {
		thief = v.leastLoaded()
	}
	if thief < 0 {
		if anyTenant {
			return q.PopFront()
		}
		return q.PopFrontTenant(tenant)
	}
	// Owner-side pop: newest ref homed on the thief.
	for i := q.count - 1; i >= 0; i-- {
		ref := q.items[q.at(i)]
		if !anyTenant && ref.Tenant != tenant {
			continue
		}
		if refHome(ref, v) == thief {
			w.pending, w.bound = thief, true
			return q.removeAt(i), true
		}
	}
	// Steal: the oldest ready ref migrates to the idle node.
	var ref TaskRef
	var ok bool
	if anyTenant {
		ref, ok = q.PopFront()
	} else {
		ref, ok = q.PopFrontTenant(tenant)
	}
	if ok {
		w.pending, w.bound = thief, true
	}
	return ref, ok
}

// Place dispatches to the node Next chose, falling back to least-loaded
// when the choice is stale (the node crashed during the decision's
// service time) or when Next never ran (direct Place calls).
func (w *workStealSched) Place(t TaskRef, v *View) int {
	if w.bound {
		n := w.pending
		w.bound = false
		if n < v.NumNodes && v.UpNode(n) {
			return n
		}
	}
	return v.leastLoaded()
}

// refHome is the deque a ready task conceptually sits in: the up node
// holding its largest located input (first such input wins byte ties,
// deterministically), else a stable hash of the task ID.
func refHome(t TaskRef, v *View) int {
	best, bestBytes := -1, -1.0
	for _, in := range t.Inputs {
		if n, ok := v.Locate(in.ID); ok && n >= 0 && n < v.NumNodes && v.UpNode(n) && in.Bytes > bestBytes {
			best, bestBytes = n, in.Bytes
		}
	}
	if best >= 0 {
		return best
	}
	return t.ID % v.NumNodes
}
