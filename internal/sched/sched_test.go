package sched

import (
	"testing"

	"wfsim/internal/costmodel"
)

func view(load ...int) *View {
	return &View{
		NumNodes: len(load),
		Load:     load,
		Locate:   func(int32) (int, bool) { return -1, false },
	}
}

func TestQueueDisciplines(t *testing.T) {
	q := &Queue{}
	for i := 0; i < 3; i++ {
		q.Push(TaskRef{ID: i})
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	front, _ := q.PopFront()
	back, _ := q.PopBack()
	if front.ID != 0 || back.ID != 2 {
		t.Fatalf("front=%d back=%d", front.ID, back.ID)
	}
	q.PopFront()
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if _, ok := q.PopBack(); ok {
		t.Fatal("pop back from empty queue succeeded")
	}
}

func TestFIFOOrder(t *testing.T) {
	s, err := New(FIFO, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := &Queue{}
	q.Push(TaskRef{ID: 7})
	q.Push(TaskRef{ID: 8})
	first, _ := s.Next(q)
	if first.ID != 7 {
		t.Fatalf("FIFO dispatched %d first", first.ID)
	}
	// Least-loaded placement.
	if n := s.Place(TaskRef{}, view(3, 1, 2)); n != 1 {
		t.Fatalf("placed on %d, want least-loaded 1", n)
	}
	// Deterministic tie-break: lowest node.
	if n := s.Place(TaskRef{}, view(2, 2, 2)); n != 0 {
		t.Fatalf("tie placed on %d, want 0", n)
	}
}

func TestLIFOOrder(t *testing.T) {
	s, _ := New(LIFO, 0)
	q := &Queue{}
	q.Push(TaskRef{ID: 1})
	q.Push(TaskRef{ID: 2})
	first, _ := s.Next(q)
	if first.ID != 2 {
		t.Fatalf("LIFO dispatched %d first", first.ID)
	}
}

func TestLocalityPlacement(t *testing.T) {
	s, _ := New(Locality, 0)
	locs := map[int32]int{0: 2, 1: 2, 2: 0}
	v := &View{
		NumNodes: 4,
		Load:     []int{0, 0, 0, 0},
		Locate: func(id int32) (int, bool) {
			n, ok := locs[id]
			return n, ok
		},
	}
	task := TaskRef{Inputs: []DataLoc{
		{ID: 0, Bytes: 100}, {ID: 1, Bytes: 100}, {ID: 2, Bytes: 150},
	}}
	// Node 2 holds 200 bytes vs node 0's 150.
	if n := s.Place(task, v); n != 2 {
		t.Fatalf("placed on %d, want data-richest node 2", n)
	}
	// Heavy load on the data-rich node shifts the decision.
	v.Load = []int{0, 0, 9, 0}
	if n := s.Place(task, v); n != 0 {
		t.Fatalf("placed on %d, want node 0 once node 2 is loaded", n)
	}
	// No located inputs: least-loaded fallback.
	vShared := view(5, 0, 3, 1)
	if n := s.Place(task, vShared); n != 1 {
		t.Fatalf("fallback placed on %d, want 1", n)
	}
}

func TestOverheads(t *testing.T) {
	p := costmodel.DefaultParams()
	fifo, _ := New(FIFO, 0)
	loc, _ := New(Locality, 0)
	if fifo.Overhead(&p, 0, 4) >= loc.Overhead(&p, 0, 4) {
		t.Fatal("locality decisions must cost more than generation-order (§3.2)")
	}
}

// TestOverheadConstantsDistinct is the regression test for the
// constant-aliasing bug: LIFO and Random both returned p.SchedFIFO, so
// three policies silently shared one overhead constant. No two policies
// may produce the same per-decision cost at default params.
func TestOverheadConstantsDistinct(t *testing.T) {
	p := costmodel.DefaultParams()
	type oh struct {
		pol Policy
		v   float64
	}
	var all []oh
	for _, pol := range Policies() {
		s, err := New(pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, oh{pol, s.Overhead(&p, 0, 0)})
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].v == all[j].v {
				t.Errorf("policies %v and %v share overhead constant %v",
					all[i].pol, all[j].pol, all[i].v)
			}
		}
	}
}

// TestOverheadModel pins the shape of the per-decision cost model: the
// scale knob multiplies every policy linearly (0 = free scheduler), the
// lookahead policies grow with queue depth, and HEFT/min-min — but not
// b-level, whose placement is the cheap least-loaded scan — grow with
// cluster size.
func TestOverheadModel(t *testing.T) {
	p := costmodel.DefaultParams()
	for _, pol := range Policies() {
		s, _ := New(pol, 0)
		base := s.Overhead(&p, 16, 8)
		if base <= 0 {
			t.Errorf("%v overhead = %v, want positive", pol, base)
		}
		pz := p
		pz.SchedOverheadScale = 0
		if got := s.Overhead(&pz, 16, 8); got != 0 {
			t.Errorf("%v overhead at scale 0 = %v, want 0", pol, got)
		}
		p2 := p
		p2.SchedOverheadScale = 2
		if got := s.Overhead(&p2, 16, 8); got != 2*base {
			t.Errorf("%v overhead at scale 2 = %v, want %v", pol, got, 2*base)
		}
	}
	for _, pol := range []Policy{HEFT, BLevel, MinMin} {
		s, _ := New(pol, 0)
		if s.Overhead(&p, 64, 4) <= s.Overhead(&p, 4, 4) {
			t.Errorf("%v overhead must grow with ready-queue depth", pol)
		}
	}
	for _, pol := range []Policy{HEFT, MinMin} {
		s, _ := New(pol, 0)
		if s.Overhead(&p, 4, 64) <= s.Overhead(&p, 4, 4) {
			t.Errorf("%v overhead must grow with cluster size", pol)
		}
	}
	bl, _ := New(BLevel, 0)
	if bl.Overhead(&p, 4, 64) != bl.Overhead(&p, 4, 4) {
		t.Error("b-level pays no per-node placement scan")
	}
	// The legacy policies are pure base constants at default scale —
	// FIFO's 0.35 ms and Locality's 1.6 ms are golden-pinned through the
	// trace fixtures and must not pick up queue- or cluster-dependence.
	for _, pol := range []Policy{FIFO, Locality, LIFO, Random, WorkSteal} {
		s, _ := New(pol, 0)
		if s.Overhead(&p, 64, 64) != s.Overhead(&p, 0, 0) {
			t.Errorf("%v overhead must not depend on queue depth or cluster size", pol)
		}
	}
}

func TestRandomSeededDeterministic(t *testing.T) {
	run := func() []int {
		s, _ := New(Random, 99)
		var out []int
		for i := 0; i < 16; i++ {
			out = append(out, s.Place(TaskRef{}, view(0, 0, 0, 0)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeded random scheduler is nondeterministic")
		}
		if a[i] < 0 || a[i] > 3 {
			t.Fatalf("placement %d out of range", a[i])
		}
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New(Policy(42), 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestPolicyStrings pins both naming surfaces: String returns the stable
// lowercase token used by CLI flags, HTTP requests and documentation
// (append-only — renaming one breaks external references), Describe the
// report display name (the paper's phrasing for the COMPSs policies).
func TestPolicyStrings(t *testing.T) {
	tokens := map[Policy]string{
		FIFO: "fifo", Locality: "locality", LIFO: "lifo", Random: "random",
		HEFT: "heft", BLevel: "blevel", MinMin: "minmin", WorkSteal: "worksteal",
	}
	describe := map[Policy]string{
		FIFO: "task generation order", Locality: "data locality",
		LIFO: "lifo", Random: "random",
		HEFT: "heft", BLevel: "b-level", MinMin: "min-min", WorkSteal: "work stealing",
	}
	if len(Policies()) != len(tokens) {
		t.Fatalf("Policies() lists %d policies, tokens table has %d", len(Policies()), len(tokens))
	}
	for p, s := range tokens {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
		got, err := ParsePolicy(s)
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = (%v, %v), want %v", s, got, err, p)
		}
	}
	for p, s := range describe {
		if p.Describe() != s {
			t.Fatalf("%d.Describe() = %q, want %q", int(p), p.Describe(), s)
		}
	}
	if _, err := ParsePolicy("task generation order"); err == nil {
		t.Fatal("ParsePolicy accepted a display name; only stable tokens parse")
	}
	for _, p := range Policies() {
		s, err := New(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Policy() != p {
			t.Fatalf("Policy() = %v, want %v", s.Policy(), p)
		}
	}
}

// TestLocalityZeroByteInputsSingleTouch is the regression test for two
// zero-byte-input bugs. First, the duplicate-scratch bug: membership in
// the touched list was keyed on the byte tally (byNode[n] == 0), which
// stays true for zero-byte inputs — legal per Workflow — so the same node
// was appended once per such input. Second, the discarded-affinity bug: a
// zero-byte resident input scores 0, which never beat the bestScore := 0
// sentinel, so known node affinity fell through to the global
// least-loaded scan as if the inputs had no location at all.
func TestLocalityZeroByteInputsSingleTouch(t *testing.T) {
	s, _ := New(Locality, 0)
	l := s.(*localitySched)
	v := &View{
		NumNodes: 4,
		Load:     []int{9, 0, 0, 0},
		Locate:   func(id int32) (int, bool) { return 0, true },
	}
	inputs := make([]DataLoc, 256) // zero-byte blocks, all located on node 0
	for i := range inputs {
		inputs[i] = DataLoc{ID: int32(i)}
	}
	// Every resident input is zero-byte, but the affinity is real: the
	// task goes to the (only) touched node, load notwithstanding — not to
	// the globally least-loaded node 1.
	if got := l.Place(TaskRef{Inputs: inputs}, v); got != 0 {
		t.Errorf("Place = %d, want node 0 holding the zero-byte inputs", got)
	}
	if c := cap(l.res.touched); c > v.NumNodes {
		t.Errorf("touched scratch grew to %d entries for %d nodes — duplicate entries per zero-byte input", c, v.NumNodes)
	}
	// Among several zero-byte-touched nodes, the least loaded wins,
	// lowest ID on ties.
	v.Locate = func(id int32) (int, bool) { return int(id) % 3, true }
	v.Load = []int{4, 2, 2, 0}
	if got := l.Place(TaskRef{Inputs: inputs}, v); got != 1 {
		t.Errorf("Place = %d, want least-loaded touched node 1", got)
	}
	// Zero-byte inputs must not drown out a real locality signal either.
	inputs = append(inputs, DataLoc{ID: 999, Bytes: 100})
	locs := func(id int32) (int, bool) {
		if id == 999 {
			return 2, true
		}
		return 0, true
	}
	v.Locate = locs
	v.Load = []int{9, 0, 0, 0}
	if got := l.Place(TaskRef{Inputs: inputs}, v); got != 2 {
		t.Errorf("Place = %d, want node 2 holding the only real bytes", got)
	}
}

// TestLocalityClusterResize drives one scheduler across views of
// different sizes, the mid-session cluster-resize case: the scratch must
// follow the view's node count in both directions (the old grow-only
// check kept stale capacity assumptions forever), and locations recorded
// under a larger cluster must be ignored, not crash placement.
func TestLocalityClusterResize(t *testing.T) {
	s, _ := New(Locality, 0)
	l := s.(*localitySched)
	task := TaskRef{Inputs: []DataLoc{{ID: 5, Bytes: 100}}}
	cases := []struct {
		name  string
		nodes int
		home  int // Locate result for every ID
		load  []int
		want  int
	}{
		{"initial", 4, 3, []int{0, 0, 0, 0}, 3},
		{"shrink", 2, 1, []int{0, 0}, 1},
		{"stale location beyond cluster", 2, 3, []int{1, 0}, 1}, // affinity dropped: least-loaded
		{"regrow within capacity", 4, 2, []int{0, 0, 0, 0}, 2},
		{"grow past capacity", 8, 7, make([]int, 8), 7},
	}
	for _, tc := range cases {
		v := &View{
			NumNodes: tc.nodes,
			Load:     tc.load,
			Locate:   func(int32) (int, bool) { return tc.home, true },
		}
		if got := l.Place(task, v); got != tc.want {
			t.Errorf("%s: Place = %d, want %d", tc.name, got, tc.want)
		}
		if len(l.res.byNode) != tc.nodes {
			t.Errorf("%s: scratch sized %d for %d nodes", tc.name, len(l.res.byNode), tc.nodes)
		}
	}
}

// TestPlacementSkipsDownNodes covers the fault-injection view: no policy
// may target a down node, and placement reports -1 when the whole cluster
// is down.
func TestPlacementSkipsDownNodes(t *testing.T) {
	up := []bool{false, true, false, true}
	v := &View{NumNodes: 4, Load: []int{0, 5, 0, 1}, Up: up,
		Locate: func(int32) (int, bool) { return -1, false }}
	for _, pol := range []Policy{FIFO, LIFO} {
		s, _ := New(pol, 0)
		if n := s.Place(TaskRef{}, v); n != 3 {
			t.Errorf("%v placed on %d, want least-loaded up node 3", pol, n)
		}
	}
	rnd, _ := New(Random, 42)
	for i := 0; i < 50; i++ {
		if n := rnd.Place(TaskRef{}, v); !up[n] {
			t.Fatalf("random placement chose down node %d", n)
		}
	}
	// Locality must ignore data resident on a down node.
	loc, _ := New(Locality, 0)
	vLoc := &View{NumNodes: 4, Load: []int{0, 5, 0, 1}, Up: up,
		Locate: func(int32) (int, bool) { return 0, true }}
	if n := loc.Place(TaskRef{Inputs: []DataLoc{{ID: 1, Bytes: 100}}}, vLoc); n != 3 {
		t.Errorf("locality placed on %d, want 3 (data owner is down)", n)
	}
	// The lookahead policies' EFT scan must likewise skip down nodes.
	for _, pol := range []Policy{HEFT, MinMin, BLevel, WorkSteal} {
		s, _ := New(pol, 0)
		if n := s.Place(TaskRef{Cost: 1}, v); n != 3 {
			t.Errorf("%v placed on %d, want up node 3", pol, n)
		}
	}
	// Whole cluster down: every policy reports -1.
	allDown := &View{NumNodes: 2, Load: []int{0, 0}, Up: []bool{false, false},
		Locate: func(int32) (int, bool) { return -1, false }}
	for _, pol := range Policies() {
		s, _ := New(pol, 0)
		if n := s.Place(TaskRef{}, allDown); n != -1 {
			t.Errorf("%v placed on %d with every node down, want -1", pol, n)
		}
	}
}

// TestQueueWraparound drives the ring buffer through repeated grow /
// wrap cycles under mixed Push, PopFront and PopBack, checking the queue
// against a reference slice after every operation.
func TestQueueWraparound(t *testing.T) {
	q := &Queue{}
	var ref []TaskRef // reference model: plain slice, front at index 0
	next := 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			tr := TaskRef{ID: next, Tenant: int32(next % 3)}
			next++
			q.Push(tr)
			ref = append(ref, tr)
		}
	}
	popFront := func(n int) {
		for i := 0; i < n; i++ {
			got, ok := q.PopFront()
			if !ok {
				t.Fatalf("PopFront failed with %d refs modeled", len(ref))
			}
			if got.ID != ref[0].ID {
				t.Fatalf("PopFront = %d, want %d", got.ID, ref[0].ID)
			}
			ref = ref[1:]
		}
	}
	popBack := func(n int) {
		for i := 0; i < n; i++ {
			got, ok := q.PopBack()
			if !ok {
				t.Fatalf("PopBack failed with %d refs modeled", len(ref))
			}
			if got.ID != ref[len(ref)-1].ID {
				t.Fatalf("PopBack = %d, want %d", got.ID, ref[len(ref)-1].ID)
			}
			ref = ref[:len(ref)-1]
		}
	}
	check := func() {
		t.Helper()
		if q.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", q.Len(), len(ref))
		}
		if len(ref) > 0 {
			if got, ok := q.Peek(); !ok || got.ID != ref[0].ID {
				t.Fatalf("Peek = (%d,%v), want %d", got.ID, ok, ref[0].ID)
			}
		} else if _, ok := q.Peek(); ok {
			t.Fatal("Peek on empty queue succeeded")
		}
		want := map[int32]int{}
		for _, r := range ref {
			want[r.Tenant]++
		}
		for ten := int32(0); ten < 3; ten++ {
			if got := q.TenantLen(ten); got != want[ten] {
				t.Fatalf("TenantLen(%d) = %d, want %d", ten, got, want[ten])
			}
		}
	}
	// Cross the grow boundary, drain low, refill past the old head so the
	// live window wraps around the end of the backing array, repeatedly.
	script := []struct {
		op string
		n  int
	}{
		{"push", 5}, {"popF", 3}, {"push", 6}, {"popB", 2}, {"popF", 4},
		{"push", 12}, {"popF", 7}, {"popB", 3}, {"push", 9}, {"popF", 5},
		{"popB", 6}, {"push", 2}, {"popF", 4}, {"push", 30}, {"popB", 15},
		{"popF", 15},
	}
	for _, s := range script {
		switch s.op {
		case "push":
			push(s.n)
		case "popF":
			popFront(s.n)
		case "popB":
			popBack(s.n)
		}
		check()
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// TestQueueTenantPops pins the per-tenant disciplines: PopFrontTenant and
// PopBackTenant select within one tenant's refs while preserving the
// relative order of everything else.
func TestQueueTenantPops(t *testing.T) {
	q := &Queue{}
	// Interleave tenants 0/1: IDs 0..7, tenant = ID % 2.
	for i := 0; i < 8; i++ {
		q.Push(TaskRef{ID: i, Tenant: int32(i % 2)})
	}
	if got, ok := q.PopFrontTenant(1); !ok || got.ID != 1 {
		t.Fatalf("PopFrontTenant(1) = (%d,%v), want 1", got.ID, ok)
	}
	if got, ok := q.PopBackTenant(1); !ok || got.ID != 7 {
		t.Fatalf("PopBackTenant(1) = (%d,%v), want 7", got.ID, ok)
	}
	if q.TenantLen(0) != 4 || q.TenantLen(1) != 2 {
		t.Fatalf("tenant lens = %d,%d, want 4,2", q.TenantLen(0), q.TenantLen(1))
	}
	// Remaining refs keep their relative order: 0,2,3,4,5,6.
	want := []int{0, 2, 3, 4, 5, 6}
	for _, w := range want {
		got, ok := q.PopFront()
		if !ok || got.ID != w {
			t.Fatalf("PopFront = (%d,%v), want %d", got.ID, ok, w)
		}
	}
	// Absent tenant: clean miss, including tenants never pushed.
	if _, ok := q.PopFrontTenant(0); ok {
		t.Fatal("PopFrontTenant on empty queue succeeded")
	}
	if _, ok := q.PopBackTenant(42); ok {
		t.Fatal("PopBackTenant for unknown tenant succeeded")
	}
	if q.TenantLen(42) != 0 {
		t.Fatal("TenantLen for unknown tenant nonzero")
	}
}

// TestSchedulerNextFor pins the per-tenant discipline each policy applies:
// FIFO/Locality/Random take the tenant's oldest ref, LIFO its newest.
func TestSchedulerNextFor(t *testing.T) {
	fill := func() *Queue {
		q := &Queue{}
		for i := 0; i < 6; i++ {
			q.Push(TaskRef{ID: i, Tenant: int32(i % 2)})
		}
		return q
	}
	for _, pol := range []Policy{FIFO, Locality, Random} {
		s, _ := New(pol, 1)
		got, ok := s.NextFor(fill(), 1)
		if !ok || got.ID != 1 {
			t.Errorf("%v NextFor(1) = (%d,%v), want oldest 1", pol, got.ID, ok)
		}
	}
	lifo, _ := New(LIFO, 0)
	if got, ok := lifo.NextFor(fill(), 1); !ok || got.ID != 5 {
		t.Errorf("LIFO NextFor(1) = (%d,%v), want newest 5", got.ID, ok)
	}
}

// TestLookaheadDisciplines pins the queue orders of the lookahead
// policies: HEFT and b-level pop the highest precomputed Rank, min-min
// the lowest Cost, and all three resolve ties toward the oldest ref so
// equal-priority work keeps generation order.
func TestLookaheadDisciplines(t *testing.T) {
	fill := func() *Queue {
		q := &Queue{}
		q.Push(TaskRef{ID: 0, Rank: 5, Cost: 3})
		q.Push(TaskRef{ID: 1, Rank: 9, Cost: 2})
		q.Push(TaskRef{ID: 2, Rank: 9, Cost: 1})
		q.Push(TaskRef{ID: 3, Rank: 1, Cost: 1})
		return q
	}
	for _, pol := range []Policy{HEFT, BLevel} {
		s, _ := New(pol, 0)
		q := fill()
		want := []int{1, 2, 0, 3} // rank desc, oldest wins the 9-9 tie
		for _, w := range want {
			got, ok := s.Next(q)
			if !ok || got.ID != w {
				t.Fatalf("%v popped %d, want %d", pol, got.ID, w)
			}
		}
	}
	mm, _ := New(MinMin, 0)
	q := fill()
	want := []int{2, 3, 1, 0} // cost asc, oldest wins the 1-1 tie
	for _, w := range want {
		got, ok := mm.Next(q)
		if !ok || got.ID != w {
			t.Fatalf("min-min popped %d, want %d", got.ID, w)
		}
	}
	// Tenant-restricted pops apply the same discipline within the tenant.
	q = &Queue{}
	q.Push(TaskRef{ID: 0, Tenant: 0, Rank: 99, Cost: 0})
	q.Push(TaskRef{ID: 1, Tenant: 1, Rank: 2, Cost: 9})
	q.Push(TaskRef{ID: 2, Tenant: 1, Rank: 7, Cost: 4})
	h, _ := New(HEFT, 0)
	if got, ok := h.NextFor(q, 1); !ok || got.ID != 2 {
		t.Fatalf("HEFT NextFor(1) = %d, want 2", got.ID)
	}
	if _, ok := h.NextFor(q, 3); ok {
		t.Fatal("NextFor for absent tenant succeeded")
	}
}

// TestEFTPlacement pins the earliest-finish-time estimate: node speed
// outweighs raw load when the speed gap is large enough, resident input
// bytes discount a candidate's transfer term, and ties break to the
// lowest node ID.
func TestEFTPlacement(t *testing.T) {
	h, _ := New(HEFT, 0)
	// Heterogeneous speeds: node 0 is nominal, node 1 four times slower.
	// Equal load, so the fast node finishes first.
	v := &View{
		NumNodes: 2, Load: []int{1, 1},
		Speed:  []float64{1.0, 0.25},
		Locate: func(int32) (int, bool) { return -1, false },
	}
	if n := h.Place(TaskRef{Cost: 10}, v); n != 0 {
		t.Errorf("EFT placed on %d, want fast node 0", n)
	}
	// The fast node absorbs proportionally more load before the slow one
	// wins: at 4x the queue it is still no worse.
	v.Load = []int{7, 1}
	if n := h.Place(TaskRef{Cost: 10}, v); n != 0 {
		t.Errorf("EFT placed on %d, want fast node 0 at 4x queue", n)
	}
	v.Load = []int{9, 1}
	if n := h.Place(TaskRef{Cost: 10}, v); n != 1 {
		t.Errorf("EFT placed on %d, want slow node 1 once the fast queue exceeds the speed ratio", n)
	}
	// Resident bytes discount the transfer term.
	vd := &View{
		NumNodes: 2, Load: []int{0, 0}, XferRate: 100,
		Locate: func(id int32) (int, bool) { return 1, true },
	}
	if n := h.Place(TaskRef{Cost: 1, Inputs: []DataLoc{{ID: 0, Bytes: 1000}}}, vd); n != 1 {
		t.Errorf("EFT placed on %d, want data-holding node 1", n)
	}
	// Homogeneous, equal load, no data: lowest node ID.
	if n := h.Place(TaskRef{Cost: 1}, view(2, 2, 2)); n != 0 {
		t.Errorf("EFT tie placed on %d, want 0", n)
	}
	// min-min shares the placement; b-level stays least-loaded.
	mm, _ := New(MinMin, 0)
	if n := mm.Place(TaskRef{Cost: 10}, &View{NumNodes: 2, Load: []int{1, 1},
		Speed:  []float64{1.0, 0.25},
		Locate: func(int32) (int, bool) { return -1, false }}); n != 0 {
		t.Errorf("min-min placed on %d, want fast node 0", n)
	}
	bl, _ := New(BLevel, 0)
	if n := bl.Place(TaskRef{Cost: 10}, view(3, 1, 2)); n != 1 {
		t.Errorf("b-level placed on %d, want least-loaded 1", n)
	}
}

// TestWorkStealing pins the deque model: the least-loaded node is the
// thief; it pops the newest ready task homed on it (owner-side LIFO), or
// steals the oldest ready task when nothing is homed on it (thief-side
// FIFO), and Place dispatches to the thief chosen at Next.
func TestWorkStealing(t *testing.T) {
	s, _ := New(WorkSteal, 0)
	ws := s.(*workStealSched)
	home := map[int32]int{10: 0, 11: 0, 20: 1}
	v := &View{
		NumNodes: 2, Load: []int{0, 3},
		Locate: func(id int32) (int, bool) {
			n, ok := home[id]
			return n, ok
		},
	}
	ws.BindView(v)
	q := &Queue{}
	q.Push(TaskRef{ID: 1, Inputs: []DataLoc{{ID: 10, Bytes: 5}}}) // home 0
	q.Push(TaskRef{ID: 2, Inputs: []DataLoc{{ID: 20, Bytes: 5}}}) // home 1
	q.Push(TaskRef{ID: 3, Inputs: []DataLoc{{ID: 11, Bytes: 5}}}) // home 0

	// Thief is node 0 (load 0): pops its newest homed ref — ID 3, not 1.
	got, ok := s.Next(q)
	if !ok || got.ID != 3 {
		t.Fatalf("Next = %d, want newest owned ref 3", got.ID)
	}
	if n := s.Place(got, v); n != 0 {
		t.Fatalf("Place = %d, want thief node 0", n)
	}
	// Then its older homed ref.
	got, _ = s.Next(q)
	if got.ID != 1 {
		t.Fatalf("Next = %d, want remaining owned ref 1", got.ID)
	}
	if n := s.Place(got, v); n != 0 {
		t.Fatalf("Place = %d, want thief node 0", n)
	}
	// Deque empty: node 0 steals the oldest ready ref even though it is
	// homed on node 1.
	got, _ = s.Next(q)
	if got.ID != 2 {
		t.Fatalf("Next = %d, want stolen ref 2", got.ID)
	}
	if n := s.Place(got, v); n != 0 {
		t.Fatalf("Place = %d, want stealing node 0", n)
	}
	// Unbound (no view): degrades to FIFO order with least-loaded
	// placement, so direct queue use stays sane.
	s2, _ := New(WorkSteal, 0)
	q2 := &Queue{}
	q2.Push(TaskRef{ID: 7})
	q2.Push(TaskRef{ID: 8})
	if got, _ := s2.Next(q2); got.ID != 7 {
		t.Fatalf("unbound Next = %d, want FIFO 7", got.ID)
	}
	if n := s2.Place(TaskRef{}, view(2, 0)); n != 1 {
		t.Fatalf("unbound Place = %d, want least-loaded 1", n)
	}
	// Refs with no located inputs home by stable ID hash.
	vh := &View{NumNodes: 4, Load: []int{0, 0, 0, 0},
		Locate: func(int32) (int, bool) { return -1, false }}
	if h := refHome(TaskRef{ID: 6}, vh); h != 2 {
		t.Fatalf("refHome = %d, want 6 %% 4 = 2", h)
	}
}

// TestTaskRefCarriesEnqueueInstant pins that queue disciplines preserve
// each ref's own enqueue timestamp through reordering (the LIFO
// attribution fix; the end-to-end check lives in the runtime tests).
func TestTaskRefCarriesEnqueueInstant(t *testing.T) {
	q := &Queue{}
	for i := 0; i < 4; i++ {
		q.Push(TaskRef{ID: i, Enqueued: float64(i) * 1.5})
	}
	lifo, _ := New(LIFO, 0)
	for want := 3; want >= 0; want-- {
		ref, ok := lifo.Next(q)
		if !ok || ref.ID != want || ref.Enqueued != float64(want)*1.5 {
			t.Fatalf("LIFO popped %+v, want ID %d with Enqueued %v", ref, want, float64(want)*1.5)
		}
	}
}
