package sched

import (
	"testing"

	"wfsim/internal/costmodel"
)

func view(load ...int) *View {
	return &View{
		NumNodes: len(load),
		Load:     load,
		Locate:   func(int32) (int, bool) { return -1, false },
	}
}

func TestQueueDisciplines(t *testing.T) {
	q := &Queue{}
	for i := 0; i < 3; i++ {
		q.Push(TaskRef{ID: i})
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	front, _ := q.PopFront()
	back, _ := q.PopBack()
	if front.ID != 0 || back.ID != 2 {
		t.Fatalf("front=%d back=%d", front.ID, back.ID)
	}
	q.PopFront()
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if _, ok := q.PopBack(); ok {
		t.Fatal("pop back from empty queue succeeded")
	}
}

func TestFIFOOrder(t *testing.T) {
	s, err := New(FIFO, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := &Queue{}
	q.Push(TaskRef{ID: 7})
	q.Push(TaskRef{ID: 8})
	first, _ := s.Next(q)
	if first.ID != 7 {
		t.Fatalf("FIFO dispatched %d first", first.ID)
	}
	// Least-loaded placement.
	if n := s.Place(TaskRef{}, view(3, 1, 2)); n != 1 {
		t.Fatalf("placed on %d, want least-loaded 1", n)
	}
	// Deterministic tie-break: lowest node.
	if n := s.Place(TaskRef{}, view(2, 2, 2)); n != 0 {
		t.Fatalf("tie placed on %d, want 0", n)
	}
}

func TestLIFOOrder(t *testing.T) {
	s, _ := New(LIFO, 0)
	q := &Queue{}
	q.Push(TaskRef{ID: 1})
	q.Push(TaskRef{ID: 2})
	first, _ := s.Next(q)
	if first.ID != 2 {
		t.Fatalf("LIFO dispatched %d first", first.ID)
	}
}

func TestLocalityPlacement(t *testing.T) {
	s, _ := New(Locality, 0)
	locs := map[int32]int{0: 2, 1: 2, 2: 0}
	v := &View{
		NumNodes: 4,
		Load:     []int{0, 0, 0, 0},
		Locate: func(id int32) (int, bool) {
			n, ok := locs[id]
			return n, ok
		},
	}
	task := TaskRef{Inputs: []DataLoc{
		{ID: 0, Bytes: 100}, {ID: 1, Bytes: 100}, {ID: 2, Bytes: 150},
	}}
	// Node 2 holds 200 bytes vs node 0's 150.
	if n := s.Place(task, v); n != 2 {
		t.Fatalf("placed on %d, want data-richest node 2", n)
	}
	// Heavy load on the data-rich node shifts the decision.
	v.Load = []int{0, 0, 9, 0}
	if n := s.Place(task, v); n != 0 {
		t.Fatalf("placed on %d, want node 0 once node 2 is loaded", n)
	}
	// No located inputs: least-loaded fallback.
	vShared := view(5, 0, 3, 1)
	if n := s.Place(task, vShared); n != 1 {
		t.Fatalf("fallback placed on %d, want 1", n)
	}
}

func TestOverheads(t *testing.T) {
	p := costmodel.DefaultParams()
	fifo, _ := New(FIFO, 0)
	loc, _ := New(Locality, 0)
	if fifo.Overhead(p) >= loc.Overhead(p) {
		t.Fatal("locality decisions must cost more than generation-order (§3.2)")
	}
}

func TestRandomSeededDeterministic(t *testing.T) {
	run := func() []int {
		s, _ := New(Random, 99)
		var out []int
		for i := 0; i < 16; i++ {
			out = append(out, s.Place(TaskRef{}, view(0, 0, 0, 0)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeded random scheduler is nondeterministic")
		}
		if a[i] < 0 || a[i] > 3 {
			t.Fatalf("placement %d out of range", a[i])
		}
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New(Policy(42), 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		FIFO: "task generation order", Locality: "data locality",
		LIFO: "lifo", Random: "random",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	for _, p := range []Policy{FIFO, Locality, LIFO, Random} {
		s, err := New(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Policy() != p {
			t.Fatalf("Policy() = %v, want %v", s.Policy(), p)
		}
	}
}

// TestLocalityZeroByteInputsSingleTouch is the regression test for the
// duplicate-scratch bug: membership in the touched list was keyed on the
// byte tally (byNode[n] == 0), which stays true for zero-byte inputs —
// legal per Workflow — so the same node was appended once per such input.
func TestLocalityZeroByteInputsSingleTouch(t *testing.T) {
	s, _ := New(Locality, 0)
	l := s.(*localitySched)
	v := &View{
		NumNodes: 4,
		Load:     []int{9, 0, 0, 0},
		Locate:   func(id int32) (int, bool) { return 0, true },
	}
	inputs := make([]DataLoc, 256) // zero-byte blocks, all located on node 0
	for i := range inputs {
		inputs[i] = DataLoc{ID: int32(i)}
	}
	// Zero resident bytes carry no locality signal: least-loaded fallback.
	if got := l.Place(TaskRef{Inputs: inputs}, v); got != 1 {
		t.Errorf("Place = %d, want least-loaded node 1", got)
	}
	if c := cap(l.touched); c > v.NumNodes {
		t.Errorf("touched scratch grew to %d entries for %d nodes — duplicate entries per zero-byte input", c, v.NumNodes)
	}
	// Zero-byte inputs must not drown out a real locality signal either.
	inputs = append(inputs, DataLoc{ID: 999, Bytes: 100})
	locs := func(id int32) (int, bool) {
		if id == 999 {
			return 2, true
		}
		return 0, true
	}
	v.Locate = locs
	if got := l.Place(TaskRef{Inputs: inputs}, v); got != 2 {
		t.Errorf("Place = %d, want node 2 holding the only real bytes", got)
	}
}

// TestPlacementSkipsDownNodes covers the fault-injection view: no policy
// may target a down node, and placement reports -1 when the whole cluster
// is down.
func TestPlacementSkipsDownNodes(t *testing.T) {
	up := []bool{false, true, false, true}
	v := &View{NumNodes: 4, Load: []int{0, 5, 0, 1}, Up: up,
		Locate: func(int32) (int, bool) { return -1, false }}
	for _, pol := range []Policy{FIFO, LIFO} {
		s, _ := New(pol, 0)
		if n := s.Place(TaskRef{}, v); n != 3 {
			t.Errorf("%v placed on %d, want least-loaded up node 3", pol, n)
		}
	}
	rnd, _ := New(Random, 42)
	for i := 0; i < 50; i++ {
		if n := rnd.Place(TaskRef{}, v); !up[n] {
			t.Fatalf("random placement chose down node %d", n)
		}
	}
	// Locality must ignore data resident on a down node.
	loc, _ := New(Locality, 0)
	vLoc := &View{NumNodes: 4, Load: []int{0, 5, 0, 1}, Up: up,
		Locate: func(int32) (int, bool) { return 0, true }}
	if n := loc.Place(TaskRef{Inputs: []DataLoc{{ID: 1, Bytes: 100}}}, vLoc); n != 3 {
		t.Errorf("locality placed on %d, want 3 (data owner is down)", n)
	}
	// Whole cluster down: every policy reports -1.
	allDown := &View{NumNodes: 2, Load: []int{0, 0}, Up: []bool{false, false},
		Locate: func(int32) (int, bool) { return -1, false }}
	for _, pol := range []Policy{FIFO, Locality, LIFO, Random} {
		s, _ := New(pol, 0)
		if n := s.Place(TaskRef{}, allDown); n != -1 {
			t.Errorf("%v placed on %d with every node down, want -1", pol, n)
		}
	}
}

// TestQueueWraparound drives the ring buffer through repeated grow /
// wrap cycles under mixed Push, PopFront and PopBack, checking the queue
// against a reference slice after every operation.
func TestQueueWraparound(t *testing.T) {
	q := &Queue{}
	var ref []TaskRef // reference model: plain slice, front at index 0
	next := 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			tr := TaskRef{ID: next, Tenant: int32(next % 3)}
			next++
			q.Push(tr)
			ref = append(ref, tr)
		}
	}
	popFront := func(n int) {
		for i := 0; i < n; i++ {
			got, ok := q.PopFront()
			if !ok {
				t.Fatalf("PopFront failed with %d refs modeled", len(ref))
			}
			if got.ID != ref[0].ID {
				t.Fatalf("PopFront = %d, want %d", got.ID, ref[0].ID)
			}
			ref = ref[1:]
		}
	}
	popBack := func(n int) {
		for i := 0; i < n; i++ {
			got, ok := q.PopBack()
			if !ok {
				t.Fatalf("PopBack failed with %d refs modeled", len(ref))
			}
			if got.ID != ref[len(ref)-1].ID {
				t.Fatalf("PopBack = %d, want %d", got.ID, ref[len(ref)-1].ID)
			}
			ref = ref[:len(ref)-1]
		}
	}
	check := func() {
		t.Helper()
		if q.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", q.Len(), len(ref))
		}
		if len(ref) > 0 {
			if got, ok := q.Peek(); !ok || got.ID != ref[0].ID {
				t.Fatalf("Peek = (%d,%v), want %d", got.ID, ok, ref[0].ID)
			}
		} else if _, ok := q.Peek(); ok {
			t.Fatal("Peek on empty queue succeeded")
		}
		want := map[int32]int{}
		for _, r := range ref {
			want[r.Tenant]++
		}
		for ten := int32(0); ten < 3; ten++ {
			if got := q.TenantLen(ten); got != want[ten] {
				t.Fatalf("TenantLen(%d) = %d, want %d", ten, got, want[ten])
			}
		}
	}
	// Cross the grow boundary, drain low, refill past the old head so the
	// live window wraps around the end of the backing array, repeatedly.
	script := []struct {
		op string
		n  int
	}{
		{"push", 5}, {"popF", 3}, {"push", 6}, {"popB", 2}, {"popF", 4},
		{"push", 12}, {"popF", 7}, {"popB", 3}, {"push", 9}, {"popF", 5},
		{"popB", 6}, {"push", 2}, {"popF", 4}, {"push", 30}, {"popB", 15},
		{"popF", 15},
	}
	for _, s := range script {
		switch s.op {
		case "push":
			push(s.n)
		case "popF":
			popFront(s.n)
		case "popB":
			popBack(s.n)
		}
		check()
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// TestQueueTenantPops pins the per-tenant disciplines: PopFrontTenant and
// PopBackTenant select within one tenant's refs while preserving the
// relative order of everything else.
func TestQueueTenantPops(t *testing.T) {
	q := &Queue{}
	// Interleave tenants 0/1: IDs 0..7, tenant = ID % 2.
	for i := 0; i < 8; i++ {
		q.Push(TaskRef{ID: i, Tenant: int32(i % 2)})
	}
	if got, ok := q.PopFrontTenant(1); !ok || got.ID != 1 {
		t.Fatalf("PopFrontTenant(1) = (%d,%v), want 1", got.ID, ok)
	}
	if got, ok := q.PopBackTenant(1); !ok || got.ID != 7 {
		t.Fatalf("PopBackTenant(1) = (%d,%v), want 7", got.ID, ok)
	}
	if q.TenantLen(0) != 4 || q.TenantLen(1) != 2 {
		t.Fatalf("tenant lens = %d,%d, want 4,2", q.TenantLen(0), q.TenantLen(1))
	}
	// Remaining refs keep their relative order: 0,2,3,4,5,6.
	want := []int{0, 2, 3, 4, 5, 6}
	for _, w := range want {
		got, ok := q.PopFront()
		if !ok || got.ID != w {
			t.Fatalf("PopFront = (%d,%v), want %d", got.ID, ok, w)
		}
	}
	// Absent tenant: clean miss, including tenants never pushed.
	if _, ok := q.PopFrontTenant(0); ok {
		t.Fatal("PopFrontTenant on empty queue succeeded")
	}
	if _, ok := q.PopBackTenant(42); ok {
		t.Fatal("PopBackTenant for unknown tenant succeeded")
	}
	if q.TenantLen(42) != 0 {
		t.Fatal("TenantLen for unknown tenant nonzero")
	}
}

// TestSchedulerNextFor pins the per-tenant discipline each policy applies:
// FIFO/Locality/Random take the tenant's oldest ref, LIFO its newest.
func TestSchedulerNextFor(t *testing.T) {
	fill := func() *Queue {
		q := &Queue{}
		for i := 0; i < 6; i++ {
			q.Push(TaskRef{ID: i, Tenant: int32(i % 2)})
		}
		return q
	}
	for _, pol := range []Policy{FIFO, Locality, Random} {
		s, _ := New(pol, 1)
		got, ok := s.NextFor(fill(), 1)
		if !ok || got.ID != 1 {
			t.Errorf("%v NextFor(1) = (%d,%v), want oldest 1", pol, got.ID, ok)
		}
	}
	lifo, _ := New(LIFO, 0)
	if got, ok := lifo.NextFor(fill(), 1); !ok || got.ID != 5 {
		t.Errorf("LIFO NextFor(1) = (%d,%v), want newest 5", got.ID, ok)
	}
}

// TestTaskRefCarriesEnqueueInstant pins that queue disciplines preserve
// each ref's own enqueue timestamp through reordering (the LIFO
// attribution fix; the end-to-end check lives in the runtime tests).
func TestTaskRefCarriesEnqueueInstant(t *testing.T) {
	q := &Queue{}
	for i := 0; i < 4; i++ {
		q.Push(TaskRef{ID: i, Enqueued: float64(i) * 1.5})
	}
	lifo, _ := New(LIFO, 0)
	for want := 3; want >= 0; want-- {
		ref, ok := lifo.Next(q)
		if !ok || ref.ID != want || ref.Enqueued != float64(want)*1.5 {
			t.Fatalf("LIFO popped %+v, want ID %d with Enqueued %v", ref, want, float64(want)*1.5)
		}
	}
}
