package sched

import "wfsim/internal/dag"

// Lookahead rank computation for the priority schedulers. Ranks are
// computed once per workflow (task IDs are assigned in generation order,
// which dag.Graph guarantees is topological) and stamped onto TaskRefs by
// the runtime, so the dispatch path never walks the DAG.

// BLevels returns every task's bottom level: the weight of the heaviest
// weight-summed path from the task to any sink, inclusive of the task
// itself. A source task on the critical path therefore carries exactly
// the Graph.CriticalPath length under the same weight function. One
// reverse-topological pass, O(V+E).
func BLevels(g *dag.Graph, weight func(*dag.Task) float64) []float64 {
	levels := make([]float64, g.Len())
	for id := g.Len() - 1; id >= 0; id-- {
		t := g.Task(id)
		var below float64
		for _, succ := range t.Succs() {
			if levels[succ] > below {
				below = levels[succ]
			}
		}
		levels[id] = weight(t) + below
	}
	return levels
}

// UpwardRanks returns HEFT's upward rank for every task:
//
//	rank(t) = w(t) + max over successors s of (comm(t, s) + rank(s))
//
// where w is the task's mean execution cost across the (possibly
// heterogeneous) cluster and comm prices the data handed from t to s. A
// nil comm means zero transfer cost, under which UpwardRanks reduces
// exactly to BLevels — the property the scheduler tests pin.
func UpwardRanks(g *dag.Graph, weight func(*dag.Task) float64, comm func(from, to *dag.Task) float64) []float64 {
	ranks := make([]float64, g.Len())
	for id := g.Len() - 1; id >= 0; id-- {
		t := g.Task(id)
		var below float64
		for _, succ := range t.Succs() {
			r := ranks[succ]
			if comm != nil {
				r += comm(t, g.Task(succ))
			}
			if r > below {
				below = r
			}
		}
		ranks[id] = weight(t) + below
	}
	return ranks
}
