package runner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeCache is an in-memory Cache recording traffic for assertions.
type fakeCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newFakeCache() *fakeCache { return &fakeCache{m: map[string][]byte{}} }

func (c *fakeCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	v, ok := c.m[key]
	return v, ok
}

func (c *fakeCache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = append([]byte(nil), payload...)
}

type row struct {
	N int
	X float64
}

func cacheTrial(key string, ran *atomic.Int64) Trial {
	return Trial{
		ID:    "t-" + key,
		Key:   key,
		Codec: JSONCodec[row](),
		Run: func(context.Context) (any, error) {
			ran.Add(1)
			return row{N: 7, X: 1.5}, nil
		},
	}
}

func TestCacheMissPopulatesThenServes(t *testing.T) {
	cache := newFakeCache()
	var ran atomic.Int64

	// First process: miss → execute → Put.
	e1 := New(2)
	e1.SetCache(cache)
	rep, err := e1.Run(context.Background(), []Trial{cacheTrial("k", &ran)})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 || cache.puts != 1 || rep.CacheHits != 0 {
		t.Fatalf("cold run: ran=%d puts=%d cacheHits=%d", ran.Load(), cache.puts, rep.CacheHits)
	}

	// Second process (fresh engine, same cache): served without executing.
	e2 := New(2)
	e2.SetCache(cache)
	rep, err = e2.Run(context.Background(), []Trial{cacheTrial("k", &ran)})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatalf("warm run re-executed the trial (ran=%d)", ran.Load())
	}
	o := rep.Outcomes[0]
	if !o.CacheHit || !o.Memoized || rep.CacheHits != 1 {
		t.Fatalf("warm outcome = %+v, report CacheHits = %d", o, rep.CacheHits)
	}
	if got := o.Value.(row); got != (row{N: 7, X: 1.5}) {
		t.Fatalf("decoded value = %+v", got)
	}
	if st := e2.Stats(); st.CacheHits != 1 {
		t.Fatalf("engine stats CacheHits = %d, want 1", st.CacheHits)
	}
}

func TestCacheCorruptPayloadFallsThroughToRun(t *testing.T) {
	cache := newFakeCache()
	cache.m["k"] = []byte("{not json")
	var ran atomic.Int64
	e := New(1)
	e.SetCache(cache)
	rep, err := e.Run(context.Background(), []Trial{cacheTrial("k", &ran)})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatal("undecodable payload was not recomputed")
	}
	if rep.CacheHits != 0 {
		t.Fatalf("CacheHits = %d for a decode failure", rep.CacheHits)
	}
	// The recomputed result overwrote the bad payload.
	if string(cache.m["k"]) != `{"N":7,"X":1.5}` {
		t.Fatalf("cache not healed: %q", cache.m["k"])
	}
}

func TestCacheSkippedWithoutCodecOrKey(t *testing.T) {
	cache := newFakeCache()
	var ran atomic.Int64
	e := New(1)
	e.SetCache(cache)
	trials := []Trial{
		{ID: "keyed-no-codec", Key: "k1", Run: func(context.Context) (any, error) {
			ran.Add(1)
			return 1, nil
		}},
		{ID: "unkeyed", Codec: JSONCodec[int](), Run: func(context.Context) (any, error) {
			ran.Add(1)
			return 2, nil
		}},
	}
	if _, err := e.Run(context.Background(), trials); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 || cache.gets != 0 || cache.puts != 0 {
		t.Fatalf("cache touched: ran=%d gets=%d puts=%d", ran.Load(), cache.gets, cache.puts)
	}
}

func TestMapAttachesCodecForKeyedItems(t *testing.T) {
	cache := newFakeCache()
	var ran atomic.Int64
	run := func(_ context.Context, i int) (row, error) {
		ran.Add(1)
		return row{N: i, X: float64(i) / 3}, nil
	}
	key := func(i int) string { return fmt.Sprintf("map-%d", i) }

	e1 := New(4)
	e1.SetCache(cache)
	items := []int{0, 1, 2, 3, 4}
	cold, err := Map(context.Background(), e1, "m", items, key, run)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 || cache.puts != 5 {
		t.Fatalf("cold map: ran=%d puts=%d", ran.Load(), cache.puts)
	}

	e2 := New(4)
	e2.SetCache(cache)
	warm, err := Map(context.Background(), e2, "m", items, key, run)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("warm map re-executed (ran=%d)", ran.Load())
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("item %d: cold %+v != warm %+v", i, cold[i], warm[i])
		}
	}
	if st := e2.Stats(); st.CacheHits != 5 {
		t.Fatalf("warm CacheHits = %d, want 5", st.CacheHits)
	}
}
