// Package runner is the trial-execution engine behind every experiment:
// it takes an enumerable set of independent trials — each a self-contained
// closure with a stable ID — and executes them on a bounded goroutine
// worker pool with context cancellation, deterministic first-error
// propagation, optional memoization of repeated trials, and per-trial
// wall-clock/virtual-time accounting.
//
// The engine separates experiment *specification* (the trial set, built
// serially and deterministically) from *execution* (the pool), so a
// 192-sample sweep saturates the machine while its rendered output stays
// byte-identical to a serial run: results are returned in submission
// order, never completion order, and every trial is an independent
// deterministic simulation.
//
// This package is the real-time layer by design: it times trials with the
// host clock, so it is exempt from the walltime determinism lint.
//
//wfsimlint:wallclock
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Slot is worker-local scratch state that persists across Run calls: a
// worker goroutine checks one out for the duration of a trial batch and
// returns it when the batch drains, so whatever a trial stashes here
// (simulation arenas, streaming aggregators) is reused by later trials on
// the same slot instead of reallocated. Exactly one worker holds a slot
// at a time — trials may mutate it without locking — but successive
// holders are different goroutines, so anything stored must be safe to
// hand off (plain data, not goroutine-affine handles).
type Slot struct{ value any }

// Value returns what the previous trial on this slot stored, or nil.
func (s *Slot) Value() any { return s.value }

// Set stores v for later trials executing on this slot.
func (s *Slot) Set(v any) { s.value = v }

type slotCtxKey struct{}

// WorkerSlot returns the executing worker's persistent scratch slot, or
// nil when ctx did not come from an Engine worker (direct trial
// invocation in tests, plain contexts).
func WorkerSlot(ctx context.Context) *Slot {
	s, _ := ctx.Value(slotCtxKey{}).(*Slot)
	return s
}

// Cache is a persistent result store the engine can consult before
// executing a keyed trial and populate after: the cross-process
// counterpart of the in-process memo map. internal/resultcache.Store
// implements it. Implementations must be safe for concurrent use.
type Cache interface {
	// Get returns the payload stored under key, or false on a miss.
	Get(key string) ([]byte, bool)
	// Put stores payload under key. Put must not fail the caller: a
	// cache that cannot write degrades to a smaller cache.
	Put(key string, payload []byte)
}

// Codec converts a trial's result value to and from the byte payload a
// Cache persists. The zero Codec marks a trial as non-persistable (it
// still participates in the in-process memo).
type Codec struct {
	Encode func(v any) ([]byte, error)
	Decode func(payload []byte) (any, error)
}

// Persistable reports whether the codec can round-trip values.
func (c Codec) Persistable() bool { return c.Encode != nil && c.Decode != nil }

// JSONCodec round-trips a concrete result type R through encoding/json.
// This is lossless for the experiment row types (exported scalar fields;
// Go's float64 JSON rendering is shortest-exact), so a decoded value
// renders byte-identically to a freshly computed one — the property the
// warm-sweep determinism test pins.
func JSONCodec[R any]() Codec {
	return Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v.(R)) },
		Decode: func(payload []byte) (any, error) {
			var r R
			if err := json.Unmarshal(payload, &r); err != nil {
				return nil, err
			}
			return r, nil
		},
	}
}

// Trial is one independent unit of work: typically a single simulated
// workflow execution for one factor combination.
type Trial struct {
	// ID is a stable identifier used for ordering, accounting, and error
	// messages. IDs should be unique within a trial set.
	ID string
	// Key optionally enables memoization: trials with the same non-empty
	// Key are executed once per engine lifetime and share the result
	// (including an error, if the first execution failed). Memoized
	// results must be treated as immutable by all sharers. An empty Key
	// disables memoization for the trial.
	//
	// Keys should be canonical (resultcache.KeyOf) — stable across
	// processes and struct-field refactors — because they also address
	// the engine's persistent cache when one is attached.
	Key string
	// Codec, when persistable, lets a keyed trial's result be served
	// from and stored to the engine's persistent cache across processes.
	// Trials without a codec (or without a key) never touch it.
	Codec Codec
	// Run executes the trial. The context is cancelled when a sibling
	// trial fails or the caller aborts; long-running trials may honor it,
	// short deterministic simulations can ignore it (the engine stops
	// launching new trials either way).
	Run func(ctx context.Context) (any, error)
}

// Outcome is the per-trial execution record.
type Outcome struct {
	// ID echoes the trial's ID.
	ID string
	// Value is the trial's result.
	Value any
	// Wall is the trial's wall-clock execution time (zero when the value
	// was served from the memo cache).
	Wall time.Duration
	// Virtual is the simulated (virtual) seconds the trial reported via
	// the VirtualTimed interface, zero otherwise.
	Virtual float64
	// Memoized marks values served from (or shared through) the cache.
	Memoized bool
	// CacheHit marks values decoded from the persistent cache rather
	// than executed in this process (CacheHit implies Memoized).
	CacheHit bool
}

// Report is the result of one Run call: outcomes in submission order plus
// set-level accounting.
type Report struct {
	// Outcomes has one entry per submitted trial, in submission order.
	Outcomes []Outcome
	// Wall is the wall-clock time of the whole set.
	Wall time.Duration
	// CPUWall is the summed per-trial wall time — the serial-equivalent
	// cost; CPUWall/Wall estimates the achieved parallelism.
	CPUWall time.Duration
	// Virtual is the summed virtual seconds simulated across the set.
	Virtual float64
	// Memoized counts trials served from the cache.
	Memoized int
	// CacheHits counts trials served from the persistent cache.
	CacheHits int
}

// VirtualTimed is implemented by trial results that carry simulated
// (virtual) time; the engine aggregates it alongside wall-clock time so
// sweeps can report how much virtual time they simulated per wall second.
type VirtualTimed interface {
	VirtualSeconds() float64
}

// Stats is the engine's cumulative accounting across all Run calls.
type Stats struct {
	Trials    int
	Memoized  int
	CacheHits int
	Failed    int
	CPUWall   time.Duration
	Virtual   float64
}

// Engine executes trial sets on a bounded worker pool. An Engine is safe
// for concurrent use; its memo cache persists across Run calls, so
// experiments sharing factor combinations (e.g. `run all`) simulate each
// combination once.
type Engine struct {
	workers int
	// cache, when non-nil, persists keyed+codec'd trial results across
	// processes. Consulted only on first execution of a key (the
	// in-process memo absorbs repeats within one engine lifetime).
	cache Cache

	mu    sync.Mutex
	memo  map[string]*memoEntry
	stats Stats
	// free is the slot pool. Slots are checked out per worker goroutine
	// per Run call; the pool never shrinks, so at most max-concurrent-
	// workers slots ever exist.
	free []*Slot
}

type memoEntry struct {
	done     chan struct{}
	value    any
	virtual  float64
	cacheHit bool
	err      error
}

// New returns an engine with the given worker-pool bound. A bound < 1
// selects runtime.NumCPU().
func New(workers int) *Engine {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &Engine{workers: workers, memo: map[string]*memoEntry{}}
}

// Workers returns the pool bound.
func (e *Engine) Workers() int { return e.workers }

// SetCache attaches a persistent result cache. Attach before the first
// Run call; the engine consults it for every keyed trial with a
// persistable codec and writes freshly computed results back.
func (e *Engine) SetCache(c Cache) { e.cache = c }

// Stats returns cumulative accounting across every Run call so far.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run executes the trial set and returns outcomes in submission order.
// On failure it returns the error of the lowest-index failing trial
// (wrapped with the trial ID) after cancelling and draining the rest; on
// caller cancellation it returns the context error.
func (e *Engine) Run(ctx context.Context, trials []Trial) (*Report, error) {
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make([]Outcome, len(trials))
	errs := make([]error, len(trials))

	workers := e.workers
	if workers > len(trials) {
		workers = len(trials)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			slot := e.acquireSlot()
			defer e.releaseSlot(slot)
			slotCtx := context.WithValue(runCtx, slotCtxKey{}, slot)
			for i := range idx {
				errs[i] = e.runTrial(slotCtx, trials[i], &outcomes[i])
				if errs[i] != nil {
					cancel() // first-error propagation: stop launching
				}
			}
		}()
	}
feed:
	for i := range trials {
		select {
		case idx <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	rep := &Report{Outcomes: outcomes, Wall: time.Since(start)}
	for _, o := range outcomes {
		rep.CPUWall += o.Wall
		rep.Virtual += o.Virtual
		if o.Memoized {
			rep.Memoized++
		}
		if o.CacheHit {
			rep.CacheHits++
		}
	}
	failed := 0
	var firstErr error
	for i, err := range errs {
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("trial %s: %w", trials[i].ID, err)
			}
		}
	}
	e.mu.Lock()
	e.stats.Trials += len(trials)
	e.stats.Memoized += rep.Memoized
	e.stats.CacheHits += rep.CacheHits
	e.stats.Failed += failed
	e.stats.CPUWall += rep.CPUWall
	e.stats.Virtual += rep.Virtual
	e.mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	// The caller's context aborted the set before every trial ran.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// runTrial executes (or memo-serves) one trial, filling its outcome slot.
func (e *Engine) runTrial(ctx context.Context, t Trial, out *Outcome) error {
	out.ID = t.ID
	if err := ctx.Err(); err != nil {
		return nil // cancelled before start; Run reports the context error
	}
	if t.Key == "" {
		start := time.Now()
		v, err := t.Run(ctx)
		if err != nil {
			return err
		}
		out.Value, out.Wall, out.Virtual = v, time.Since(start), virtualOf(v)
		return nil
	}

	e.mu.Lock()
	ent, inFlight := e.memo[t.Key]
	if !inFlight {
		ent = &memoEntry{done: make(chan struct{})}
		e.memo[t.Key] = ent
	}
	e.mu.Unlock()

	if inFlight {
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil // Run reports the context error
		}
		if ent.err != nil {
			return ent.err
		}
		out.Value, out.Virtual, out.Memoized, out.CacheHit = ent.value, ent.virtual, true, ent.cacheHit
		return nil
	}

	// First execution of this key in this process: the persistent cache
	// may already hold the result from an earlier run.
	if e.cache != nil && t.Codec.Persistable() {
		if payload, ok := e.cache.Get(t.Key); ok {
			if v, err := t.Codec.Decode(payload); err == nil {
				ent.value, ent.virtual, ent.cacheHit = v, virtualOf(v), true
				close(ent.done)
				out.Value, out.Virtual, out.Memoized, out.CacheHit = v, ent.virtual, true, true
				return nil
			}
			// Undecodable payload (stale codec, foreign writer): fall
			// through and recompute; the fresh Put below overwrites it.
		}
	}

	start := time.Now()
	ent.value, ent.err = t.Run(ctx)
	ent.virtual = virtualOf(ent.value)
	close(ent.done)
	if ent.err != nil {
		return ent.err
	}
	if e.cache != nil && t.Codec.Persistable() {
		if payload, err := t.Codec.Encode(ent.value); err == nil {
			e.cache.Put(t.Key, payload)
		}
	}
	out.Value, out.Wall, out.Virtual = ent.value, time.Since(start), ent.virtual
	return nil
}

// acquireSlot checks a scratch slot out of the pool, creating one when
// every existing slot is held (concurrent Run calls).
func (e *Engine) acquireSlot() *Slot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	return &Slot{}
}

func (e *Engine) releaseSlot(s *Slot) {
	e.mu.Lock()
	e.free = append(e.free, s)
	e.mu.Unlock()
}

func virtualOf(v any) float64 {
	if vt, ok := v.(VirtualTimed); ok {
		return vt.VirtualSeconds()
	}
	return 0
}

// Map executes one trial per item through the engine, preserving item
// order in the returned slice. The optional key function enables
// memoization (nil disables it); label prefixes trial IDs for error
// messages and accounting.
func Map[T, R any](ctx context.Context, e *Engine, label string, items []T, key func(T) string, run func(context.Context, T) (R, error)) ([]R, error) {
	trials := make([]Trial, len(items))
	for i := range items {
		item := items[i]
		k := ""
		if key != nil {
			k = key(item)
		}
		trials[i] = Trial{
			ID:  fmt.Sprintf("%s[%d]", label, i),
			Key: k,
			Run: func(ctx context.Context) (any, error) { return run(ctx, item) },
		}
		if k != "" {
			// Keyed Map trials are persistable for free: R is a concrete
			// row type that round-trips losslessly through JSON.
			trials[i].Codec = JSONCodec[R]()
		}
	}
	rep, err := e.Run(ctx, trials)
	if err != nil {
		return nil, err
	}
	out := make([]R, len(items))
	for i, o := range rep.Outcomes {
		out[i] = o.Value.(R)
	}
	return out, nil
}
