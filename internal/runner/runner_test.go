package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func trialSet(n int, fn func(i int) Trial) []Trial {
	out := make([]Trial, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	e := New(8)
	trials := trialSet(64, func(i int) Trial {
		return Trial{
			ID: fmt.Sprintf("t%d", i),
			Run: func(context.Context) (any, error) {
				// Reverse the natural completion order so any
				// completion-order bug scrambles the results.
				time.Sleep(time.Duration(64-i) * 10 * time.Microsecond)
				return i * i, nil
			},
		}
	})
	rep, err := e.Run(context.Background(), trials)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range rep.Outcomes {
		if o.ID != fmt.Sprintf("t%d", i) || o.Value.(int) != i*i {
			t.Fatalf("outcome %d out of order: %+v", i, o)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(workers)
	var cur, max atomic.Int32
	trials := trialSet(32, func(i int) Trial {
		return Trial{ID: fmt.Sprint(i), Run: func(context.Context) (any, error) {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	})
	if _, err := e.Run(context.Background(), trials); err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Errorf("observed %d concurrent trials, pool bound is %d", got, workers)
	}
}

func TestFirstErrorPropagation(t *testing.T) {
	e := New(4)
	boom := errors.New("boom")
	var started atomic.Int32
	trials := trialSet(100, func(i int) Trial {
		return Trial{ID: fmt.Sprintf("t%d", i), Run: func(context.Context) (any, error) {
			started.Add(1)
			if i == 5 {
				return nil, boom
			}
			time.Sleep(100 * time.Microsecond)
			return i, nil
		}}
	})
	_, err := e.Run(context.Background(), trials)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "trial t5") {
		t.Errorf("error should name the failing trial: %v", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("failure did not stop the launch of remaining trials")
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Two failures in one set: the reported error must be the
	// lowest-index one regardless of completion order.
	e := New(2)
	early, late := errors.New("early"), errors.New("late")
	trials := []Trial{
		{ID: "a", Run: func(context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			return nil, early
		}},
		{ID: "b", Run: func(context.Context) (any, error) { return nil, late }},
	}
	_, err := e.Run(context.Background(), trials)
	if !errors.Is(err, early) || !strings.Contains(err.Error(), "trial a") {
		t.Fatalf("err = %v, want trial a's error", err)
	}
}

func TestCallerCancellation(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	trials := trialSet(50, func(i int) Trial {
		return Trial{ID: fmt.Sprint(i), Run: func(context.Context) (any, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return i, nil
		}}
	})
	_, err := e.Run(ctx, trials)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 50 {
		t.Error("cancellation did not stop the set")
	}
}

func TestMemoizationSharesOneExecution(t *testing.T) {
	e := New(8)
	var execs atomic.Int32
	trials := trialSet(40, func(i int) Trial {
		return Trial{
			ID:  fmt.Sprintf("t%d", i),
			Key: fmt.Sprintf("k%d", i%4), // 4 distinct keys
			Run: func(context.Context) (any, error) {
				execs.Add(1)
				time.Sleep(time.Millisecond)
				return i % 4, nil
			},
		}
	})
	rep, err := e.Run(context.Background(), trials)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 4 {
		t.Errorf("executions = %d, want 4 (one per key)", got)
	}
	if rep.Memoized != 36 {
		t.Errorf("memoized = %d, want 36", rep.Memoized)
	}
	for i, o := range rep.Outcomes {
		if o.Value.(int) != i%4 {
			t.Fatalf("outcome %d has wrong shared value %v", i, o.Value)
		}
	}

	// The cache persists across Run calls on the same engine.
	rep2, err := e.Run(context.Background(), trials[:4])
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 4 || rep2.Memoized != 4 {
		t.Errorf("second run re-executed: execs=%d memoized=%d", execs.Load(), rep2.Memoized)
	}
}

func TestMemoizationSharesErrors(t *testing.T) {
	e := New(1)
	boom := errors.New("boom")
	var execs atomic.Int32
	mk := func(id string) Trial {
		return Trial{ID: id, Key: "same", Run: func(context.Context) (any, error) {
			execs.Add(1)
			return nil, boom
		}}
	}
	if _, err := e.Run(context.Background(), []Trial{mk("a")}); !errors.Is(err, boom) {
		t.Fatalf("first run: %v", err)
	}
	if _, err := e.Run(context.Background(), []Trial{mk("b")}); !errors.Is(err, boom) {
		t.Fatalf("second run should share the cached error: %v", err)
	}
	if execs.Load() != 1 {
		t.Errorf("failing trial executed %d times, want 1", execs.Load())
	}
}

type virtualResult float64

func (v virtualResult) VirtualSeconds() float64 { return float64(v) }

func TestVirtualTimeAccounting(t *testing.T) {
	e := New(4)
	trials := trialSet(10, func(i int) Trial {
		return Trial{ID: fmt.Sprint(i), Run: func(context.Context) (any, error) {
			return virtualResult(2.5), nil
		}}
	})
	rep, err := e.Run(context.Background(), trials)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Virtual != 25 {
		t.Errorf("virtual = %v, want 25", rep.Virtual)
	}
	if rep.Outcomes[0].Virtual != 2.5 {
		t.Errorf("per-trial virtual = %v, want 2.5", rep.Outcomes[0].Virtual)
	}
	if rep.CPUWall <= 0 || rep.Wall <= 0 {
		t.Errorf("wall accounting missing: wall=%v cpuwall=%v", rep.Wall, rep.CPUWall)
	}
	st := e.Stats()
	if st.Trials != 10 || st.Virtual != 25 {
		t.Errorf("stats = %+v, want 10 trials / 25 virtual", st)
	}
}

func TestMapPreservesOrderAndTypes(t *testing.T) {
	e := New(8)
	items := make([]int, 30)
	for i := range items {
		items[i] = i
	}
	sq, err := Map(context.Background(), e, "sq", items, nil,
		func(_ context.Context, x int) (float64, error) {
			time.Sleep(time.Duration(30-x) * 20 * time.Microsecond)
			return float64(x * x), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sq {
		if v != float64(i*i) {
			t.Fatalf("sq[%d] = %v", i, v)
		}
	}

	_, err = Map(context.Background(), e, "fail", items, nil,
		func(_ context.Context, x int) (int, error) {
			if x == 7 {
				return 0, errors.New("nope")
			}
			return x, nil
		})
	if err == nil || !strings.Contains(err.Error(), "fail[7]") {
		t.Fatalf("Map error should carry the labeled trial ID: %v", err)
	}
}

func TestMapMemoization(t *testing.T) {
	e := New(4)
	var execs atomic.Int32
	items := []string{"a", "b", "a", "a", "b"}
	got, err := Map(context.Background(), e, "memo", items,
		func(s string) string { return s },
		func(_ context.Context, s string) (string, error) {
			execs.Add(1)
			return strings.ToUpper(s), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 2 {
		t.Errorf("executions = %d, want 2", execs.Load())
	}
	want := []string{"A", "B", "A", "A", "B"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewDefaultsToNumCPU(t *testing.T) {
	if got := New(0).Workers(); got != runtime.NumCPU() {
		t.Errorf("New(0).Workers() = %d, want NumCPU=%d", got, runtime.NumCPU())
	}
	if got := New(-3).Workers(); got != runtime.NumCPU() {
		t.Errorf("New(-3).Workers() = %d, want NumCPU=%d", got, runtime.NumCPU())
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d", got)
	}
}

func TestEmptyTrialSet(t *testing.T) {
	rep, err := New(4).Run(context.Background(), nil)
	if err != nil || len(rep.Outcomes) != 0 {
		t.Fatalf("empty set: rep=%+v err=%v", rep, err)
	}
}

// TestConcurrentEngineUse exercises one engine from many goroutines with
// overlapping memo keys — the go test -race target for the cache paths.
func TestConcurrentEngineUse(t *testing.T) {
	e := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			trials := trialSet(20, func(i int) Trial {
				return Trial{
					ID:  fmt.Sprintf("g%d-t%d", g, i),
					Key: fmt.Sprintf("shared-%d", i%5),
					Run: func(context.Context) (any, error) {
						return virtualResult(1), nil
					},
				}
			})
			if _, err := e.Run(context.Background(), trials); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if st := e.Stats(); st.Trials != 160 {
		t.Errorf("stats.Trials = %d, want 160", st.Trials)
	}
}
