// Streaming statistics for service-level metrics: long multi-tenant
// simulations observe one sample per task (queue wait) and one per
// workflow (response time, slowdown), and must report percentiles without
// retaining every sample — O(1) state per tracked quantile instead of
// O(total-tasks) memory growth.
//
// Quantiles are estimated with the P² algorithm (Jain & Chlamtac, CACM
// 1985): five markers per quantile, adjusted with piecewise-parabolic
// interpolation as samples stream in. The estimator is a pure function of
// the observation sequence, so deterministic runs report bit-identical
// percentiles.

package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs exactly, by linear
// interpolation between the sorted order statistics (the common "type 7"
// estimator). It copies xs, so the caller's slice is untouched. NaN is
// returned for an empty slice or an out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P2 is a streaming estimator of one quantile (the P² algorithm). The
// zero value is not usable; construct with NewP2. Observing fewer than
// five samples falls back to the exact small-sample quantile.
type P2 struct {
	q float64
	n int // samples observed

	// Marker state, meaningful once n >= 5. pos are the actual marker
	// positions (1-based sample counts), want the desired positions,
	// dWant their per-sample increments, h the marker heights (estimates
	// of the 0, q/2, q, (1+q)/2 and 1 quantiles).
	pos   [5]int
	want  [5]float64
	dWant [5]float64
	h     [5]float64
}

// NewP2 returns an estimator for the q-th quantile (0 < q < 1).
func NewP2(q float64) *P2 {
	p := &P2{q: q}
	p.dWant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Quantile returns the quantile the estimator tracks.
func (p *P2) Quantile() float64 { return p.q }

// N returns the number of samples observed.
func (p *P2) N() int { return p.n }

// Observe feeds one sample.
func (p *P2) Observe(x float64) {
	if p.n < 5 {
		// Bootstrap: keep the first five samples sorted in h.
		i := p.n
		for i > 0 && p.h[i-1] > x {
			p.h[i] = p.h[i-1]
			i--
		}
		p.h[i] = x
		p.n++
		if p.n == 5 {
			for j := 0; j < 5; j++ {
				p.pos[j] = j + 1
				p.want[j] = 1 + 4*p.dWant[j]
			}
		}
		return
	}
	p.n++

	// Find the cell the sample falls into and bump the end markers.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for j := k + 1; j < 5; j++ {
		p.pos[j]++
	}
	for j := 0; j < 5; j++ {
		p.want[j] += p.dWant[j]
	}

	// Adjust the three interior markers toward their desired positions.
	for j := 1; j <= 3; j++ {
		d := p.want[j] - float64(p.pos[j])
		if (d >= 1 && p.pos[j+1]-p.pos[j] > 1) || (d <= -1 && p.pos[j-1]-p.pos[j] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			if h := p.parabolic(j, sign); p.h[j-1] < h && h < p.h[j+1] {
				p.h[j] = h
			} else {
				p.h[j] = p.linear(j, sign)
			}
			p.pos[j] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic (PP) height prediction for
// moving marker j by sign (±1).
func (p *P2) parabolic(j, sign int) float64 {
	d := float64(sign)
	np, n, nn := float64(p.pos[j-1]), float64(p.pos[j]), float64(p.pos[j+1])
	return p.h[j] + d/(nn-np)*((n-np+d)*(p.h[j+1]-p.h[j])/(nn-n)+(nn-n-d)*(p.h[j]-p.h[j-1])/(n-np))
}

// linear is the fallback height prediction when the parabolic one would
// leave the markers unordered.
func (p *P2) linear(j, sign int) float64 {
	d := float64(sign)
	return p.h[j] + d*(p.h[j+sign]-p.h[j])/(float64(p.pos[j+sign])-float64(p.pos[j]))
}

// Value returns the current quantile estimate; NaN before any sample.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		// Exact small-sample quantile over the sorted bootstrap buffer.
		return Quantile(p.h[:p.n], p.q)
	}
	return p.h[2]
}

// Stream accumulates one metric's streaming summary: count, mean, min,
// max and the p50/p95/p99 service percentiles, in O(1) memory. The zero
// value is not usable; construct with NewStream.
type Stream struct {
	n        int
	sum      float64
	min, max float64
	p50      *P2
	p95      *P2
	p99      *P2
}

// NewStream returns an empty stream summary.
func NewStream() *Stream {
	return &Stream{p50: NewP2(0.50), p95: NewP2(0.95), p99: NewP2(0.99)}
}

// Observe feeds one sample.
func (s *Stream) Observe(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.p50.Observe(x)
	s.p95.Observe(x)
	s.p99.Observe(x)
}

// N returns the number of samples observed.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (NaN before any sample).
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observed sample (NaN before any sample).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observed sample (NaN before any sample).
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// P50 returns the streaming median estimate.
func (s *Stream) P50() float64 { return s.p50.Value() }

// P95 returns the streaming 95th-percentile estimate.
func (s *Stream) P95() float64 { return s.p95.Value() }

// P99 returns the streaming 99th-percentile estimate.
func (s *Stream) P99() float64 { return s.p99.Value() }
