package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestQuantileExact(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{0.125, 1.5}, // interpolated between order statistics
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := xs[0]; got != 4 {
		t.Errorf("Quantile mutated its input: xs[0] = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
	if !math.IsNaN(Quantile(xs, 1.5)) {
		t.Error("Quantile(q>1) should be NaN")
	}
}

// TestP2SmallSampleExact: below five samples the estimator must agree
// exactly with the exact quantile of the observed set.
func TestP2SmallSampleExact(t *testing.T) {
	xs := []float64{10, 2, 7}
	p := NewP2(0.5)
	for _, x := range xs {
		p.Observe(x)
	}
	if got, want := p.Value(), Quantile(xs, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("small-sample median = %v, want exact %v", got, want)
	}
	if !math.IsNaN(NewP2(0.5).Value()) {
		t.Fatal("empty estimator should report NaN")
	}
}

// TestP2KnownDistributions compares the streaming estimate against the
// exact sample quantile on seeded uniform and exponential draws. P² is an
// approximation; on 10k samples of these smooth distributions it should
// land within a few percent of the exact sample quantile.
func TestP2KnownDistributions(t *testing.T) {
	const n = 10000
	draws := []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
	}
	quantiles := []float64{0.5, 0.95, 0.99}
	for _, d := range draws {
		rng := rand.New(rand.NewPCG(7, 13))
		xs := make([]float64, n)
		ests := make([]*P2, len(quantiles))
		for i, q := range quantiles {
			ests[i] = NewP2(q)
		}
		for i := 0; i < n; i++ {
			x := d.gen(rng)
			xs[i] = x
			for _, e := range ests {
				e.Observe(x)
			}
		}
		for i, q := range quantiles {
			exact := Quantile(xs, q)
			got := ests[i].Value()
			// Relative tolerance on the quantile value; exact is bounded
			// away from 0 for these distributions and quantiles.
			if math.Abs(got-exact)/exact > 0.05 {
				t.Errorf("%s p%g: streaming %v vs exact %v (>5%% off)",
					d.name, q*100, got, exact)
			}
			if ests[i].N() != n {
				t.Errorf("%s p%g: N = %d, want %d", d.name, q*100, ests[i].N(), n)
			}
		}
	}
}

// TestStreamDeterministic: two identical observation sequences must yield
// bit-identical summaries — the estimator state is a pure function of the
// sequence.
func TestStreamDeterministic(t *testing.T) {
	run := func() *Stream {
		rng := rand.New(rand.NewPCG(42, 1))
		s := NewStream()
		for i := 0; i < 5000; i++ {
			s.Observe(rng.ExpFloat64() * 3)
		}
		return s
	}
	a, b := run(), run()
	if a.P50() != b.P50() || a.P95() != b.P95() || a.P99() != b.P99() ||
		a.Mean() != b.Mean() || a.Max() != b.Max() || a.Min() != b.Min() || a.N() != b.N() {
		t.Fatalf("streams diverged: %+v vs %+v",
			[]float64{a.P50(), a.P95(), a.P99(), a.Mean()},
			[]float64{b.P50(), b.P95(), b.P99(), b.Mean()})
	}
}

func TestStreamMoments(t *testing.T) {
	s := NewStream()
	for _, x := range []float64{2, 4, 6} {
		s.Observe(x)
	}
	if s.N() != 3 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	empty := NewStream()
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Max()) || !math.IsNaN(empty.Min()) {
		t.Fatal("empty stream moments should be NaN")
	}
}

// TestP2MonotoneMarkers: the five marker heights must stay ordered under a
// long adversarial (sorted then reversed) stream — the invariant the
// linear fallback protects.
func TestP2MonotoneMarkers(t *testing.T) {
	p := NewP2(0.95)
	for i := 0; i < 1000; i++ {
		p.Observe(float64(i))
	}
	for i := 1000; i > 0; i-- {
		p.Observe(float64(i))
	}
	for j := 0; j < 4; j++ {
		if p.h[j] > p.h[j+1] {
			t.Fatalf("markers unordered: h[%d]=%v > h[%d]=%v", j, p.h[j], j+1, p.h[j+1])
		}
	}
}
