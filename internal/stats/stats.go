// Package stats implements the statistical tooling of the paper's §5.4
// correlation analysis: Spearman rank correlation (chosen by the authors
// for robustness to non-linear relationships), tie-aware ranking, one-hot
// encoding of categorical factors, and a correlation-matrix container.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Rank returns the 1-based ranks of xs, assigning tied values the average
// of their positional ranks (fractional ranking), as Spearman requires.
func Rank(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, or NaN when either series has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n == 0 {
		return math.NaN()
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of two equal-length
// series: the Pearson correlation of their fractional ranks. The result is
// in [-1, 1], or NaN for degenerate inputs.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	return Pearson(Rank(xs), Rank(ys))
}

// OneHot expands a categorical column into one indicator column per
// distinct value (sorted for determinism). This is how the paper encodes
// processor type, storage architecture and scheduling policy before
// correlating them (§5.4).
func OneHot(values []string) (names []string, columns [][]float64) {
	set := map[string]bool{}
	for _, v := range values {
		set[v] = true
	}
	names = make([]string, 0, len(set))
	for v := range set {
		names = append(names, v)
	}
	sort.Strings(names)
	columns = make([][]float64, len(names))
	for i, name := range names {
		col := make([]float64, len(values))
		for j, v := range values {
			if v == name {
				col[j] = 1
			}
		}
		columns[i] = col
	}
	return names, columns
}

// Matrix is a symmetric correlation matrix over named features.
type Matrix struct {
	Names []string
	// R[i][j] is the correlation of feature i with feature j.
	R [][]float64
}

// CorrelationMatrix computes the pairwise Spearman matrix of the given
// feature columns. All columns must have equal length.
func CorrelationMatrix(names []string, cols [][]float64) (*Matrix, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), len(cols))
	}
	n := len(cols)
	for i := 1; i < n; i++ {
		if len(cols[i]) != len(cols[0]) {
			return nil, fmt.Errorf("stats: column %q has %d samples, want %d",
				names[i], len(cols[i]), len(cols[0]))
		}
	}
	m := &Matrix{Names: names, R: make([][]float64, n)}
	ranks := make([][]float64, n)
	for i := range cols {
		ranks[i] = Rank(cols[i])
	}
	for i := 0; i < n; i++ {
		m.R[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			r := Pearson(ranks[i], ranks[j])
			m.R[i][j] = r
			m.R[j][i] = r
		}
	}
	return m, nil
}

// At returns the correlation between two named features.
func (m *Matrix) At(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, n := range m.Names {
		if n == a {
			ia = i
		}
		if n == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("stats: unknown feature %q/%q", a, b)
	}
	return m.R[ia][ib], nil
}
