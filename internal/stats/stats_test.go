package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRankSimple(t *testing.T) {
	got := Rank([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestRankTies(t *testing.T) {
	// Tied values take the average of their positional ranks.
	got := Rank([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
	got = Rank([]float64{5, 5, 5})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("all-ties ranks = %v, want all 2", got)
		}
	}
}

func TestSpearmanKnownValues(t *testing.T) {
	// Perfect monotone (non-linear) relation: rho = 1 even though Pearson
	// on raw values would be < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !close(got, 1, 1e-12) {
		t.Fatalf("rho = %v, want 1", got)
	}
	// Perfect inverse.
	ys2 := []float64{10, 8, 6, 4, 2}
	if got := Spearman(xs, ys2); !close(got, -1, 1e-12) {
		t.Fatalf("rho = %v, want -1", got)
	}
	// Hand-computed example with a swap: xs vs {1,3,2,4,5}.
	// d = {0,1,1,0,0}, Σd² = 2, rho = 1 - 6·2/(5·24) = 0.9.
	ys3 := []float64{1, 3, 2, 4, 5}
	if got := Spearman(xs, ys3); !close(got, 0.9, 1e-12) {
		t.Fatalf("rho = %v, want 0.9", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if !math.IsNaN(Spearman([]float64{1, 2}, []float64{1})) {
		t.Fatal("length mismatch must be NaN")
	}
	if !math.IsNaN(Spearman(nil, nil)) {
		t.Fatal("empty must be NaN")
	}
	if !math.IsNaN(Spearman([]float64{3, 3, 3}, []float64{1, 2, 3})) {
		t.Fatal("constant series must be NaN")
	}
}

func TestSpearmanProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 3
		rng := rand.New(rand.NewPCG(seed, 11))
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		rho := Spearman(xs, ys)
		if math.IsNaN(rho) {
			return false
		}
		// In range.
		if rho < -1-1e-12 || rho > 1+1e-12 {
			return false
		}
		// Symmetry.
		if !close(rho, Spearman(ys, xs), 1e-12) {
			return false
		}
		// Invariance under strictly monotone transforms of either input.
		tx := make([]float64, n)
		for i := range xs {
			tx[i] = math.Exp(xs[i] / 25)
		}
		if !close(rho, Spearman(tx, ys), 1e-9) {
			return false
		}
		// Self-correlation is exactly 1.
		return close(Spearman(xs, xs), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	if got := Pearson(xs, ys); !close(got, 1, 1e-12) {
		t.Fatalf("pearson = %v, want 1", got)
	}
}

func TestOneHot(t *testing.T) {
	names, cols := OneHot([]string{"CPU", "GPU", "CPU", "GPU", "GPU"})
	if len(names) != 2 || names[0] != "CPU" || names[1] != "GPU" {
		t.Fatalf("names = %v", names)
	}
	wantCPU := []float64{1, 0, 1, 0, 0}
	for i := range wantCPU {
		if cols[0][i] != wantCPU[i] {
			t.Fatalf("CPU column = %v", cols[0])
		}
		if cols[0][i]+cols[1][i] != 1 {
			t.Fatal("one-hot columns must sum to 1 per row")
		}
	}
}

func TestOneHotComplementAnticorrelated(t *testing.T) {
	// The paper's matrix shows CPU and GPU perfectly anti-correlated
	// (-1.0); that must fall out of one-hot + Spearman.
	_, cols := OneHot([]string{"CPU", "GPU", "CPU", "GPU"})
	if got := Spearman(cols[0], cols[1]); !close(got, -1, 1e-12) {
		t.Fatalf("rho(CPU, GPU) = %v, want -1", got)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	names := []string{"a", "b", "c"}
	cols := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8}, // same ranks as a
		{8, 6, 4, 2}, // inverse
	}
	m, err := CorrelationMatrix(names, cols)
	if err != nil {
		t.Fatal(err)
	}
	if ab, _ := m.At("a", "b"); !close(ab, 1, 1e-12) {
		t.Fatalf("r(a,b) = %v", ab)
	}
	if ac, _ := m.At("a", "c"); !close(ac, -1, 1e-12) {
		t.Fatalf("r(a,c) = %v", ac)
	}
	for i := range names {
		if !close(m.R[i][i], 1, 1e-12) {
			t.Fatalf("diagonal %d = %v", i, m.R[i][i])
		}
		for j := range names {
			if m.R[i][j] != m.R[j][i] {
				t.Fatal("matrix not symmetric")
			}
		}
	}
	if _, err := m.At("a", "zzz"); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestCorrelationMatrixErrors(t *testing.T) {
	if _, err := CorrelationMatrix([]string{"a"}, nil); err == nil {
		t.Fatal("mismatched names/cols accepted")
	}
	if _, err := CorrelationMatrix([]string{"a", "b"}, [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}
