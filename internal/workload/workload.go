// Package workload generates synthetic task-based workflows: random DAGs
// with configurable shape (width/depth bias), task profiles spanning the
// paper's two extremes (fully parallelizable, compute-bound vs partially
// parallelizable, serial-heavy), and data sizes. It serves two purposes:
//
//   - Property testing: the runtime must execute any generated workflow
//     deterministically, completely and causally (tests in this package
//     and internal/runtime).
//   - Extension studies: the paper's §5.5.1 notes that more algorithms
//     would populate the space between Matmul and K-means; the generator's
//     ParallelFraction knob sweeps exactly that axis.
package workload

import (
	"fmt"
	"math/rand/v2"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/runtime"
)

// Config shapes the generated workflow.
type Config struct {
	// Seed makes generation reproducible.
	Seed uint64
	// Tasks is the number of tasks to generate.
	Tasks int
	// MaxFanIn bounds how many earlier outputs a task may read (≥1).
	MaxFanIn int
	// ChainBias in [0,1] skews reads toward recent outputs, making the
	// DAG deeper (1 ≈ chains) or wider (0 ≈ uniform fan-out).
	ChainBias float64
	// ParallelFraction in [0,1] sets the share of each task's work that
	// is parallelizable: 1 ≈ Matmul-like, 0.2 ≈ K-means-like.
	ParallelFraction float64
	// WorkOps is the mean total ops per task.
	WorkOps float64
	// DataBytes is the mean datum size.
	DataBytes float64
}

// Default returns a mid-sized mixed workload.
func Default(seed uint64) Config {
	return Config{
		Seed: seed, Tasks: 100, MaxFanIn: 3, ChainBias: 0.5,
		ParallelFraction: 0.7, WorkOps: 1e9, DataBytes: 16e6,
	}
}

func (c Config) validate() error {
	if c.Tasks <= 0 {
		return fmt.Errorf("workload: non-positive task count %d", c.Tasks)
	}
	if c.MaxFanIn < 1 {
		return fmt.Errorf("workload: MaxFanIn must be ≥ 1")
	}
	if c.ParallelFraction < 0 || c.ParallelFraction > 1 {
		return fmt.Errorf("workload: ParallelFraction %v outside [0,1]", c.ParallelFraction)
	}
	if c.ChainBias < 0 || c.ChainBias > 1 {
		return fmt.Errorf("workload: ChainBias %v outside [0,1]", c.ChainBias)
	}
	return nil
}

// Generate builds a random workflow. Task i reads up to MaxFanIn outputs
// of earlier tasks (or the workflow input for roots) and writes one new
// datum, so the result is always a valid DAG.
func Generate(cfg Config) (*runtime.Workflow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x3017))
	wf := runtime.NewWorkflow(fmt.Sprintf("synthetic-%d", cfg.Seed))
	wf.SetSize("input", cfg.DataBytes)

	outName := func(i int) string { return fmt.Sprintf("d%d", i) }
	for i := 0; i < cfg.Tasks; i++ {
		params := []dag.Param{}
		if i == 0 {
			params = append(params, dag.Param{Data: "input", Dir: dag.In})
		} else {
			fanIn := rng.IntN(cfg.MaxFanIn) + 1
			seen := map[int]bool{}
			for f := 0; f < fanIn; f++ {
				var src int
				if rng.Float64() < cfg.ChainBias {
					// Recent-biased: one of the last few outputs.
					back := rng.IntN(3) + 1
					src = i - back
					if src < 0 {
						src = 0
					}
				} else {
					src = rng.IntN(i)
				}
				if !seen[src] {
					seen[src] = true
					params = append(params, dag.Param{Data: outName(src), Dir: dag.In})
				}
			}
		}
		params = append(params, dag.Param{Data: outName(i), Dir: dag.Out})

		work := cfg.WorkOps * (0.5 + rng.Float64())
		bytes := cfg.DataBytes * (0.5 + rng.Float64())
		wf.SetSize(outName(i), bytes)
		prof := costmodel.Profile{
			Kernel:         costmodel.KernelGeneric,
			ParallelOps:    work * cfg.ParallelFraction,
			SerialOps:      work * (1 - cfg.ParallelFraction) / 20, // serial ops run ~20x slower per op
			Threads:        work * cfg.ParallelFraction / 100,
			BytesIn:        bytes,
			BytesOut:       bytes,
			DeviceMemBytes: 3 * bytes,
			HostMemBytes:   3 * bytes,
		}
		wf.AddTask(fmt.Sprintf("gen%d", i%4), runtime.TaskSpec{Profile: prof}, params...)
	}
	return wf, nil
}
