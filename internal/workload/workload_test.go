package workload

import (
	"testing"
	"testing/quick"

	"wfsim/internal/costmodel"
	"wfsim/internal/metrics"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

func TestGenerateValidates(t *testing.T) {
	bad := []Config{
		{Tasks: 0, MaxFanIn: 1},
		{Tasks: 5, MaxFanIn: 0},
		{Tasks: 5, MaxFanIn: 1, ParallelFraction: 1.5},
		{Tasks: 5, MaxFanIn: 1, ChainBias: -0.1},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Len() != b.Graph.Len() || a.Graph.MaxWidth() != b.Graph.MaxWidth() ||
		a.Graph.MaxHeight() != b.Graph.MaxHeight() {
		t.Fatal("same seed produced different workflows")
	}
}

func TestChainBiasShapesDAG(t *testing.T) {
	cfg := Default(3)
	cfg.Tasks = 200
	cfg.ChainBias = 0.98
	deep, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChainBias = 0.0
	cfg.Seed = 3
	wide, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Graph.MaxHeight() <= wide.Graph.MaxHeight() {
		t.Fatalf("chain bias did not deepen the DAG: %d vs %d",
			deep.Graph.MaxHeight(), wide.Graph.MaxHeight())
	}
}

// TestRandomWorkflowsExecute is the central property test: any generated
// workflow must (a) validate, (b) simulate to completion on every
// storage × policy × device combination, (c) produce one record set per
// task, and (d) respect causality — no task stage starts before all of its
// dependencies' final stages end.
func TestRandomWorkflowsExecute(t *testing.T) {
	f := func(seed uint64, tasksRaw uint8, pfRaw uint8, biasRaw uint8) bool {
		cfg := Default(seed)
		cfg.Tasks = int(tasksRaw)%60 + 2
		cfg.ParallelFraction = float64(pfRaw%101) / 100
		cfg.ChainBias = float64(biasRaw%101) / 100
		wf, err := Generate(cfg)
		if err != nil {
			return false
		}
		if wf.Validate() != nil {
			return false
		}
		res, err := runtime.RunSim(wf, runtime.SimConfig{
			Storage: storage.Architecture(seed % 2),
			Policy:  sched.Policy(seed % 4),
			Device:  costmodel.DeviceKind(seed % 2),
			Seed:    seed,
		})
		if err != nil {
			return false
		}
		// One sched record per task.
		per := map[int]int{}
		taskEnd := map[int]float64{}
		taskStart := map[int]float64{}
		for _, rec := range res.Collector.Records() {
			if rec.Stage == metrics.StageSched {
				per[rec.TaskID]++
			}
			if rec.End > taskEnd[rec.TaskID] {
				taskEnd[rec.TaskID] = rec.End
			}
			// Earliest post-scheduling stage start (deser).
			if rec.Stage == metrics.StageDeser {
				taskStart[rec.TaskID] = rec.Start
			}
		}
		if len(per) != wf.Graph.Len() {
			return false
		}
		for _, n := range per {
			if n != 1 {
				return false
			}
		}
		// Causality: a task's deser cannot begin before each dependency's
		// last stage ended.
		for _, task := range wf.Graph.Tasks() {
			for _, d := range task.Deps() {
				if taskStart[task.ID] < taskEnd[d]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelFractionAxis sweeps the §5.5.1 axis between the paper's two
// algorithm families: higher parallel fraction ⇒ higher GPU benefit.
func TestParallelFractionAxis(t *testing.T) {
	speedup := func(pf float64) float64 {
		cfg := Default(11)
		cfg.Tasks = 64
		cfg.ChainBias = 0
		cfg.ParallelFraction = pf
		makespan := func(dev costmodel.DeviceKind) float64 {
			wf, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{Device: dev})
			if err != nil {
				t.Fatal(err)
			}
			return res.Makespan
		}
		return makespan(costmodel.CPU) / makespan(costmodel.GPU)
	}
	low, high := speedup(0.2), speedup(0.98)
	if high <= low {
		t.Fatalf("GPU benefit should grow with parallel fraction: pf=0.2 → %.2f, pf=0.98 → %.2f",
			low, high)
	}
}
