// Package server is the warm-serving front over the experiment registry
// and the persistent result cache: an HTTP/JSON API that runs experiments
// by name, answers single-trial what-if queries ("same run, one more
// node", "double the failure rate") by hashing the perturbed
// configuration and simulating only on a cache miss, and exposes the
// cache counters.
//
// The server exists because the simulator is deterministic: a result is a
// pure function of its canonical configuration, so a cache keyed on that
// configuration never serves a wrong answer — only a fast one. A warm
// server answers a what-if delta in microseconds where a cold one pays a
// full simulation.
//
// The HTTP layer is real-time by nature and exempt from the walltime
// determinism lint.
//
//wfsimlint:wallclock
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/experiments"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// Server serves the experiment registry over HTTP. It owns a trial engine
// (with its in-process memo) and optionally a persistent result cache
// shared with every other wfsim process pointing at the same directory.
type Server struct {
	eng   *runner.Engine
	store *resultcache.Store // nil when serving without persistence
	mux   *http.ServeMux
}

// New builds a server over eng. store may be nil (no persistence: only
// the engine's in-process memo accelerates repeated queries).
func New(eng *runner.Engine, store *resultcache.Store) *Server {
	if store != nil {
		eng.SetCache(store)
	}
	s := &Server{eng: eng, store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/experiments", s.handleExperiments)
	s.mux.HandleFunc("/run/", s.handleRun)
	s.mux.HandleFunc("/whatif", s.handleWhatIf)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleExperiments lists the registry: GET /experiments.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range experiments.All() {
		out = append(out, item{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// RunResponse is the payload of GET /run/{id}.
type RunResponse struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Rendered is the experiment's paper-style textual output — exactly
	// what `wfsim run <id>` prints, so warm and cold answers are
	// byte-comparable.
	Rendered string `json:"rendered"`
	WallMS   int64  `json:"wall_ms"`
	// Trials/Memoized/CacheHits are the engine-accounting deltas for this
	// request: CacheHits counts trials served from the persistent cache.
	Trials    int `json:"trials"`
	Memoized  int `json:"memoized"`
	CacheHits int `json:"cache_hits"`
}

// handleRun executes one experiment by ID: GET /run/fig7a.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/run/")
	e, err := experiments.ByID(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	before := s.eng.Stats()
	start := time.Now()
	res, err := e.Run(r.Context(), s.eng)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%s: %v", id, err)
		return
	}
	after := s.eng.Stats()
	writeJSON(w, http.StatusOK, RunResponse{
		ID:        e.ID,
		Title:     e.Title,
		Rendered:  res.Render(),
		WallMS:    time.Since(start).Milliseconds(),
		Trials:    after.Trials - before.Trials,
		Memoized:  after.Memoized - before.Memoized,
		CacheHits: after.CacheHits - before.CacheHits,
	})
}

// Perturbation is the delta a what-if query applies to its base cell.
// Zero-valued fields leave the base untouched.
type Perturbation struct {
	// NodesDelta adds (or, negative, removes) cluster nodes. The base
	// topology is the cell's cluster, defaulting to Minotauro.
	NodesDelta int `json:"nodes_delta,omitempty"`
	// FaultScale multiplies the failure intensity: task-failure
	// probability scales up by it, node and straggler MTBFs scale down.
	// 2 = "double the failure rate"; 0 means unchanged.
	FaultScale float64 `json:"fault_scale,omitempty"`
	// Device switches the compute device: "cpu" or "gpu".
	Device string `json:"device,omitempty"`
	// Storage switches the storage architecture: "shared" or "local".
	Storage string `json:"storage,omitempty"`
	// Policy switches the scheduling policy by its stable token: "fifo",
	// "locality", "lifo", "random", "heft", "blevel", "minmin" or
	// "worksteal" (sched.ParsePolicy).
	Policy string `json:"policy,omitempty"`
}

// Apply returns the perturbed copy of cfg.
func (p Perturbation) Apply(cfg experiments.CellConfig) (experiments.CellConfig, error) {
	if p.NodesDelta != 0 {
		if cfg.Cluster == (cluster.Spec{}) {
			cfg.Cluster = cluster.Minotauro()
		}
		cfg.Cluster.Nodes += p.NodesDelta
		if cfg.Cluster.Nodes < 1 {
			return cfg, fmt.Errorf("nodes_delta %d leaves %d nodes", p.NodesDelta, cfg.Cluster.Nodes)
		}
	}
	if p.FaultScale != 0 {
		f := &cfg.Faults
		f.TaskFailProb *= p.FaultScale
		if f.TaskFailProb > 1 {
			f.TaskFailProb = 1
		}
		f.NodeMTBF /= p.FaultScale
		f.StragglerMTBF /= p.FaultScale
	}
	switch p.Device {
	case "":
	case "cpu":
		cfg.Device = costmodel.CPU
	case "gpu":
		cfg.Device = costmodel.GPU
	default:
		return cfg, fmt.Errorf("unknown device %q", p.Device)
	}
	switch p.Storage {
	case "":
	case "shared":
		cfg.Storage = storage.Shared
	case "local":
		cfg.Storage = storage.Local
	default:
		return cfg, fmt.Errorf("unknown storage %q", p.Storage)
	}
	if p.Policy != "" {
		pol, err := sched.ParsePolicy(p.Policy)
		if err != nil {
			return cfg, fmt.Errorf("unknown policy %q", p.Policy)
		}
		cfg.Policy = pol
	}
	return cfg, nil
}

// WhatIfRequest is the payload of POST /whatif: a base factor combination
// plus a perturbation. The perturbed configuration is canonically hashed;
// a warm cache answers without simulating.
type WhatIfRequest struct {
	Cell    experiments.CellConfig `json:"cell"`
	Perturb Perturbation           `json:"perturb"`
}

// WhatIfResponse reports both the perturbed cell's outcome and the base's
// (also cache-served when warm), so a single query answers "what does the
// change buy".
type WhatIfResponse struct {
	Key    string           `json:"key"`
	Base   experiments.Cell `json:"base"`
	Cell   experiments.Cell `json:"cell"`
	Wall   float64          `json:"wall_seconds"`
	Source string           `json:"source"` // "cache", "memo" or "simulation"
	// MakespanDelta is cell minus base makespan, negative = improvement.
	MakespanDelta float64 `json:"makespan_delta"`
}

// handleWhatIf answers a single-trial perturbation query.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST a WhatIfRequest")
		return
	}
	var req WhatIfRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	perturbed, err := req.Perturb.Apply(req.Cell)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad perturbation: %v", err)
		return
	}
	start := time.Now()
	base, _, err := s.runCellCached(r.Context(), req.Cell)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "base: %v", err)
		return
	}
	cell, source, err := s.runCellCached(r.Context(), perturbed)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "perturbed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, WhatIfResponse{
		Key:           experiments.CellKey(perturbed),
		Base:          base,
		Cell:          cell,
		Wall:          time.Since(start).Seconds(),
		Source:        source,
		MakespanDelta: cell.Makespan - base.Makespan,
	})
}

// runCellCached executes one factor combination through the engine — so
// it flows through the same memo and persistent-cache layers as every
// experiment — and reports where the answer came from: "cache" when the
// persistent store served it, "memo" when this process had already
// simulated it, "simulation" when it ran fresh.
func (s *Server) runCellCached(ctx context.Context, cfg experiments.CellConfig) (experiments.Cell, string, error) {
	key := experiments.CellKey(cfg)
	trial := runner.Trial{
		ID:    "whatif:" + key[:12],
		Key:   key,
		Codec: runner.JSONCodec[experiments.Cell](),
		Run:   func(context.Context) (any, error) { return experiments.RunCell(cfg) },
	}
	rep, err := s.eng.Run(ctx, []runner.Trial{trial})
	if err != nil {
		return experiments.Cell{}, "", err
	}
	o := rep.Outcomes[0]
	source := "simulation"
	switch {
	case o.CacheHit:
		source = "cache"
	case o.Memoized:
		source = "memo"
	}
	return o.Value.(experiments.Cell), source, nil
}

// handleStats reports cache and engine counters: GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type stats struct {
		Engine runner.Stats       `json:"engine"`
		Cache  *resultcache.Stats `json:"cache,omitempty"`
	}
	out := stats{Engine: s.eng.Stats()}
	if s.store != nil {
		st := s.store.Stats()
		out.Cache = &st
	}
	writeJSON(w, http.StatusOK, out)
}
