package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"wfsim/internal/dataset"
	"wfsim/internal/experiments"
	"wfsim/internal/resultcache"
	"wfsim/internal/runner"
)

func getJSON(t *testing.T, srv *Server, path string, out any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

func postWhatIf(t *testing.T, srv *Server, req WhatIfRequest) WhatIfResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	hr := httptest.NewRequest(http.MethodPost, "/whatif", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, hr)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /whatif = %d: %s", rec.Code, rec.Body)
	}
	var resp WhatIfResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// smallCell is a fast factor combination for server tests.
func smallCell() experiments.CellConfig {
	return experiments.CellConfig{
		Algorithm: experiments.KMeans,
		Dataset:   dataset.KMeansSmall,
		Grid:      32,
		Clusters:  10,
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	srv := New(runner.New(2), nil)
	var items []struct{ ID, Title string }
	getJSON(t, srv, "/experiments", &items)
	if len(items) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, it := range items {
		seen[it.ID] = true
	}
	for _, want := range []string{"fig1", "table1", "ext1"} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestRunEndpointUnknownID(t *testing.T) {
	srv := New(runner.New(2), nil)
	req := httptest.NewRequest(http.MethodGet, "/run/nope", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("code = %d, want 404", rec.Code)
	}
}

func TestWhatIfPerturbations(t *testing.T) {
	srv := New(runner.New(4), nil)

	// Identity perturbation: base and cell identical.
	same := postWhatIf(t, srv, WhatIfRequest{Cell: smallCell()})
	if same.MakespanDelta != 0 {
		t.Fatalf("identity perturbation changed the makespan by %v", same.MakespanDelta)
	}
	if same.Cell.Makespan <= 0 {
		t.Fatal("zero makespan")
	}

	// Device switch must change the result (GPU beats CPU on kmeans small
	// blocks or vice versa — either way, not equal).
	dev := postWhatIf(t, srv, WhatIfRequest{Cell: smallCell(), Perturb: Perturbation{Device: "gpu"}})
	if dev.MakespanDelta == 0 {
		t.Fatal("device switch left the makespan unchanged")
	}

	// Doubling the failure rate on a faultless base is a no-op
	// physically but must still be a *different key* when the base has
	// faults configured; on a zero config it stays equal.
	if k := experiments.CellKey(smallCell()); dev.Key == k {
		t.Fatal("perturbed key equals base key")
	}

	// Invalid perturbation → 400.
	body, _ := json.Marshal(WhatIfRequest{Cell: smallCell(), Perturb: Perturbation{Device: "tpu"}})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/whatif", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad device: code = %d, want 400", rec.Code)
	}
}

// TestWhatIfServedFromCache is the acceptance test for the warm-serving
// layer: a second server process (fresh engine, fresh memo) over the same
// cache directory answers the same what-if query from the persistent
// cache, without re-simulating, byte-identically.
func TestWhatIfServedFromCache(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Server, *resultcache.Store) {
		store, err := resultcache.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return New(runner.New(2), store), store
	}
	req := WhatIfRequest{Cell: smallCell(), Perturb: Perturbation{NodesDelta: 1}}

	srv1, store1 := open()
	cold := postWhatIf(t, srv1, req)
	if cold.Source != "simulation" {
		t.Fatalf("cold source = %q, want simulation", cold.Source)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, store2 := open()
	defer store2.Close()
	warm := postWhatIf(t, srv2, req)
	if warm.Source != "cache" {
		t.Fatalf("warm source = %q, want cache", warm.Source)
	}
	if warm.Cell != cold.Cell || warm.Base != cold.Base {
		t.Fatal("cache-served what-if differs from the simulated one")
	}
	if warm.Key != cold.Key {
		t.Fatalf("key drifted across processes: %s vs %s", warm.Key, cold.Key)
	}

	// /stats reflects the warm serving.
	var st struct {
		Engine runner.Stats       `json:"engine"`
		Cache  *resultcache.Stats `json:"cache"`
	}
	getJSON(t, srv2, "/stats", &st)
	if st.Engine.CacheHits < 2 { // base + perturbed
		t.Fatalf("engine CacheHits = %d, want >= 2", st.Engine.CacheHits)
	}
	if st.Cache == nil || st.Cache.Hits < 2 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
}

// TestRunEndpointWarm: the same experiment served twice across processes
// renders byte-identically, the second time from cache.
func TestRunEndpointWarm(t *testing.T) {
	dir := t.TempDir()
	srv1, store1 := func() (*Server, *resultcache.Store) {
		store, err := resultcache.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return New(runner.New(4), store), store
	}()
	var cold RunResponse
	getJSON(t, srv1, "/run/ext3", &cold)
	if cold.CacheHits != 0 || cold.Trials == 0 {
		t.Fatalf("cold run: %+v", cold)
	}
	store1.Close()

	store2, err := resultcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2 := New(runner.New(4), store2)
	var warm RunResponse
	getJSON(t, srv2, "/run/ext3", &warm)
	if warm.Rendered != cold.Rendered {
		t.Fatal("warm render differs from cold render")
	}
	if warm.CacheHits != warm.Trials {
		t.Fatalf("warm run: %d/%d trials from cache", warm.CacheHits, warm.Trials)
	}
}
