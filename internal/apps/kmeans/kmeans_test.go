package kmeans

import (
	"math"
	"testing"

	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

func TestDAGShape(t *testing.T) {
	// Figure 6a: grid 4x1, 3 iterations — per iteration 4 partial_sum
	// tasks then a merge; narrow and deep.
	wf, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 4, Clusters: 10, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := wf.Graph.CountByName()
	if counts["partial_sum"] != 12 {
		t.Fatalf("partial_sum = %d, want 12", counts["partial_sum"])
	}
	if counts["merge"] != 3 {
		t.Fatalf("merge = %d, want 3", counts["merge"])
	}
	if w := wf.Graph.MaxWidth(); w != 4 {
		t.Fatalf("width = %d, want 4", w)
	}
	if h := wf.Graph.MaxHeight(); h != 6 {
		t.Fatalf("height = %d, want 6 (3 iterations × 2 levels)", h)
	}
	if err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIterationDependency(t *testing.T) {
	// partial_sums of iteration 1 must depend on iteration 0's merge.
	wf, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 2, Clusters: 10, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	levels := wf.Graph.Levels()
	if len(levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(levels))
	}
	for _, id := range levels[2] {
		if wf.Graph.Task(id).Name != "partial_sum" {
			t.Fatalf("level 2 contains %s", wf.Graph.Task(id).Name)
		}
	}
}

func TestProfileComplexities(t *testing.T) {
	p := PartialSumProfile(1000, 100, 10)
	if p.ParallelOps != 1000*100*10*10 {
		t.Fatalf("parallel ops = %v, want M·N·K²", p.ParallelOps)
	}
	if p.SerialOps != 100*1000*10 {
		t.Fatalf("serial ops = %v, want 100·M·K", p.SerialOps)
	}
	if p.Threads != 1000*10 {
		t.Fatalf("threads = %v, want M·K", p.Threads)
	}
	m := MergeProfile(4, 100, 10)
	if m.ParallelOps != 0 {
		t.Fatal("merge must be a serial task")
	}
}

func TestSerialFractionDominatesAtLowK(t *testing.T) {
	// The paper picked K-means for its low parallel/serial ratio: at
	// K=10 the serial fraction time must exceed the CPU parallel time is
	// not required, but the ratio must be "low" — parallel below ~40% of
	// user code.
	params := costmodel.DefaultParams()
	prof := PartialSumProfile(48828, 100, 10)
	ser := params.SerialTime(prof)
	par := params.ParallelTime(prof, costmodel.CPU)
	if par/(par+ser) > 0.4 {
		t.Fatalf("parallel fraction = %.2f of user code at K=10, want < 0.4 (low ratio)", par/(par+ser))
	}
}

func TestLargeKOOM(t *testing.T) {
	// Figure 9a: at 10 GB blocks (grid 1x1) with 1000 clusters both the
	// GPU and the host run out of memory; with 10 clusters only the GPU
	// does.
	wf1000, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 1, Clusters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, errGPU := runtime.RunSim(wf1000, runtime.SimConfig{Device: costmodel.GPU})
	if !runtime.ErrOOM(errGPU) {
		t.Fatalf("1000 clusters GPU err = %v, want OOM", errGPU)
	}
	_, errCPU := runtime.RunSim(wf1000, runtime.SimConfig{Device: costmodel.CPU})
	if !runtime.ErrOOM(errCPU) {
		t.Fatalf("1000 clusters CPU err = %v, want host OOM", errCPU)
	}

	wf10, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 1, Clusters: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, errGPU10 := runtime.RunSim(wf10, runtime.SimConfig{Device: costmodel.GPU})
	if !runtime.ErrOOM(errGPU10) {
		t.Fatalf("10 clusters GPU at 10 GB blocks err = %v, want OOM", errGPU10)
	}
	if _, err := runtime.RunSim(wf10, runtime.SimConfig{Device: costmodel.CPU}); err != nil {
		t.Fatalf("10 clusters CPU run: %v", err)
	}
}

func TestRealExecutionConverges(t *testing.T) {
	cfg := Config{
		Dataset:     dataset.Dataset{Name: "blobs", Rows: 3000, Cols: 8},
		Grid:        4,
		Clusters:    5,
		Iterations:  6,
		Materialize: true,
	}
	wf, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Inertia must be non-increasing across iterations (Lloyd property).
	prev := math.Inf(1)
	for it := 1; it <= cfg.Iterations; it++ {
		in, err := Inertia(res.Store, cfg, KeyCenters(it))
		if err != nil {
			t.Fatal(err)
		}
		if in > prev*(1+1e-9) {
			t.Fatalf("inertia increased at iteration %d: %v -> %v", it, prev, in)
		}
		prev = in
	}
	// With well-separated blobs and k == true cluster count, final
	// inertia must be far below the first iteration's.
	first, _ := Inertia(res.Store, cfg, KeyCenters(1))
	if prev > first {
		t.Fatalf("no convergence: first %v, final %v", first, prev)
	}
}

func TestPartialSumMatchesDirectLloydStep(t *testing.T) {
	// One iteration over 2 blocks must equal a single-threaded Lloyd step
	// over the concatenated data.
	cfg := Config{
		Dataset:     dataset.Dataset{Name: "v", Rows: 200, Cols: 4},
		Grid:        2,
		Clusters:    3,
		Iterations:  1,
		Materialize: true,
	}
	wf, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	store := res.Store
	c0 := store.MustGet(KeyCenters(0))
	c1 := store.MustGet(KeyCenters(1))

	// Direct Lloyd step.
	sums := make([][]float64, cfg.Clusters)
	counts := make([]float64, cfg.Clusters)
	for i := range sums {
		sums[i] = make([]float64, cfg.Dataset.Cols)
	}
	for b := int64(0); b < 2; b++ {
		x := store.MustGet(keyBlock(b))
		for r := int64(0); r < x.Rows; r++ {
			best, bestD := 0, math.Inf(1)
			for c := int64(0); c < cfg.Clusters; c++ {
				var d float64
				for j := int64(0); j < x.Cols; j++ {
					diff := x.At(r, j) - c0.At(c, j)
					d += diff * diff
				}
				if d < bestD {
					best, bestD = int(c), d
				}
			}
			for j := int64(0); j < x.Cols; j++ {
				sums[best][j] += x.At(r, j)
			}
			counts[best]++
		}
	}
	for c := int64(0); c < cfg.Clusters; c++ {
		for j := int64(0); j < cfg.Dataset.Cols; j++ {
			want := c0.At(c, j)
			if counts[c] > 0 {
				want = sums[c][j] / counts[c]
			}
			if math.Abs(c1.At(c, j)-want) > 1e-9 {
				t.Fatalf("center[%d][%d] = %v, want %v", c, j, c1.At(c, j), want)
			}
		}
	}
}

func TestDefaults(t *testing.T) {
	wf, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 10 clusters, 5 iterations.
	if got := wf.Graph.CountByName()["merge"]; got != 5 {
		t.Fatalf("default iterations = %d, want 5", got)
	}
}

func TestSimAtPaperScale(t *testing.T) {
	// 10 GB dataset, 256 blocks, GPU mode: the Figure 1 configuration.
	wf, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 256, Clusters: 10, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}
