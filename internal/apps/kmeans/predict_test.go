package kmeans

import (
	"testing"

	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

func TestPredictLabelsMatchNearestCenter(t *testing.T) {
	// Fit then predict: with well-separated blobs, every sample's label
	// must be the argmin-distance center, and blocks from the same blob
	// structure should produce low inertia under the labels.
	cfg := Config{
		Dataset:     dataset.Dataset{Name: "blobs", Rows: 2000, Cols: 6},
		Grid:        4,
		Clusters:    4,
		Iterations:  5,
		Materialize: true,
	}
	fit, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fitRes, err := runtime.RunLocal(fit, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	centers := fitRes.Store.MustGet(KeyCenters(cfg.Iterations))

	pred, err := BuildPredict(cfg, "centers")
	if err != nil {
		t.Fatal(err)
	}
	pred.SetInput("centers", centers)
	predRes, err := runtime.RunLocal(pred, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Verify labels against a direct argmin for every sample.
	for b := int64(0); b < cfg.Grid; b++ {
		x := predRes.Store.MustGet(keyBlock(b))
		labels := predRes.Store.MustGet(KeyLabels(b))
		if labels.Rows != x.Rows || labels.Cols != 1 {
			t.Fatalf("labels shape %dx%d", labels.Rows, labels.Cols)
		}
		for r := int64(0); r < x.Rows; r++ {
			got := int64(labels.At(r, 0))
			best, bestD := int64(0), 1e300
			for c := int64(0); c < cfg.Clusters; c++ {
				var d float64
				for j := int64(0); j < x.Cols; j++ {
					diff := x.At(r, j) - centers.At(c, j)
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			if got != best {
				t.Fatalf("block %d row %d: label %d, want %d", b, r, got, best)
			}
		}
	}
}

func TestPredictDAGIsFullyParallel(t *testing.T) {
	// Predict tasks share only the read-only centers: width == grid,
	// height == 1.
	wf, err := BuildPredict(Config{Dataset: dataset.KMeansSmall, Grid: 64, Clusters: 10}, "centers")
	if err != nil {
		t.Fatal(err)
	}
	if w := wf.Graph.MaxWidth(); w != 64 {
		t.Fatalf("width = %d, want 64", w)
	}
	if h := wf.Graph.MaxHeight(); h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
}

func TestPredictSimAtPaperScale(t *testing.T) {
	wf, err := BuildPredict(Config{Dataset: dataset.KMeansSmall, Grid: 128, Clusters: 10}, "centers")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestPredictProfile(t *testing.T) {
	p := PredictProfile(1000, 100, 10)
	ps := PartialSumProfile(1000, 100, 10)
	if p.ParallelOps != ps.ParallelOps {
		t.Fatal("predict parallel fraction should match the distance kernel")
	}
	if p.SerialOps >= ps.SerialOps {
		t.Fatal("predict serial fraction should be below partial_sum's")
	}
	if p.BytesOut != 8*1000 {
		t.Fatalf("labels output bytes = %v", p.BytesOut)
	}
}
