// Package kmeans implements the paper's partially parallelizable workload:
// dislib-style distributed K-means (§4.4.4).
//
// The dataset (M samples × N features) is chunked row-wise into a g×1 grid
// — one block per task, as the paper enforces by setting grid columns to 1.
// Each Lloyd iteration emits:
//
//   - partial_sum — one per block (g tasks): assigns the block's samples to
//     the nearest current center and accumulates per-cluster feature sums
//     and counts. Its user code is partially parallel: the O(M·N·K²)
//     distance computation is GPU-accelerable while an O(M·K) bookkeeping
//     fraction stays serial, giving the low parallel/serial ratio the paper
//     selected K-means for.
//   - merge — one per iteration: reduces the g partial sums into the next
//     centers. Serial, so it always runs on a CPU core.
//
// Each iteration depends on the previous iteration's centers, so the DAG is
// narrow and deep (Figure 6a): low task-level parallelism and a high degree
// of task dependency.
package kmeans

import (
	"fmt"
	"math"
	"strconv"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

// Config parameterizes a K-means workflow.
type Config struct {
	// Dataset is the samples matrix (M rows × N feature columns).
	Dataset dataset.Dataset
	// Grid is g: the dataset is chunked row-wise into g blocks.
	Grid int64
	// Clusters is K, the algorithm-specific parameter of Table 1 /
	// Figure 9a.
	Clusters int64
	// Iterations is the number of Lloyd iterations (DAG depth).
	Iterations int
	// Materialize attaches real blocks and kernels.
	Materialize bool
	// Generator fills materialized inputs (nil: blob generator, seed 42).
	Generator *dataset.Generator
	// MaterializeBudget caps real allocation (default 256 MB).
	MaterializeBudget int64
	// RawData fills materialized blocks with the generator's raw
	// distribution (uniform or skewed) instead of clustered blobs — used
	// by the data-skew experiment (Figure 9b), where the distribution
	// itself is the factor under test.
	RawData bool
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 10
	}
	if c.Iterations == 0 {
		c.Iterations = 5
	}
	if c.MaterializeBudget == 0 {
		c.MaterializeBudget = 256 << 20
	}
	return c
}

// PartialSumProfile returns the analytic profile of one partial_sum task
// over a block of m rows × n features with k clusters.
//
// Calibration (see costmodel.DefaultParams and DESIGN.md §4): the parallel
// fraction follows the paper's stated O(M·N·K²) complexity, while the
// serial bookkeeping fraction grows only linearly in K (O(M·K)). Parallel
// work thus outgrows serial work as K rises, which is exactly why Figure
// 9a's user-code speedup climbs from ≈1.2× at K=10 toward the kernel's
// saturated ≈9× at K=1000, and why speedups are insensitive to block size
// (both fractions are linear in M).
func PartialSumProfile(m, n, k int64) costmodel.Profile {
	M, N, K := float64(m), float64(n), float64(k)
	blockBytes := 8 * M * N
	return costmodel.Profile{
		Kernel:      costmodel.KernelKMeans,
		SerialOps:   100 * M * K,
		ParallelOps: M * N * K * K,
		Threads:     M * K,
		BytesIn:     blockBytes + 8*K*N,
		BytesOut:    8 * K * (N + 1),
		// Device footprint: the staged block (CuPy keeps host-pinned and
		// device copies briefly: ~1.15×), the centers, and the M×K
		// distance matrix — the term that causes the large-K OOMs of
		// Figure 9a.
		DeviceMemBytes: 1.15*blockBytes + 8*K*N + 8*M*K,
		// Host footprint additionally keeps per-cluster masks/labels
		// derived from the distances (~1.3× the distance matrix), which
		// is what pushes the 10 GB-block × 1000-cluster configuration
		// past the node's 128 GB ("CPU GPU OOM" in Figure 9a).
		HostMemBytes: 1.15*blockBytes + 8*K*N + 1.3*8*M*K,
	}
}

// MergeProfile returns the profile of the per-iteration serial reduction
// over g partial results with k clusters and n features.
func MergeProfile(g, n, k int64) costmodel.Profile {
	return costmodel.Profile{
		Kernel:    costmodel.KernelKMeans,
		SerialOps: 50 * float64(g) * float64(k) * float64(n+1),
		// ParallelOps == 0: merge is a serial task and stays on CPU.
		HostMemBytes: 8 * float64(g) * float64(k) * float64(n+1),
	}
}

// Data keys. Built with strconv appends instead of fmt.Sprintf: key
// construction dominates workflow-build allocations at large grids, and an
// append chain into a pre-sized buffer costs a single string allocation.
func keyBlock(b int64) string {
	buf := make([]byte, 0, 16)
	buf = append(buf, "X["...)
	buf = strconv.AppendInt(buf, b, 10)
	buf = append(buf, ']')
	return string(buf)
}

// KeyCenters returns the datum name of the centers after iteration it
// (KeyCenters(0) is the initial centers input).
func KeyCenters(it int) string {
	buf := make([]byte, 0, 12)
	buf = append(buf, 'C')
	buf = strconv.AppendInt(buf, int64(it), 10)
	return string(buf)
}

func keyPartial(it int, b int64) string {
	buf := make([]byte, 0, 24)
	buf = append(buf, "ps["...)
	buf = strconv.AppendInt(buf, int64(it), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, b, 10)
	buf = append(buf, ']')
	return string(buf)
}

// Build constructs the workflow.
func Build(cfg Config) (*runtime.Workflow, error) {
	cfg = cfg.withDefaults()
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, 1)
	if err != nil {
		return nil, fmt.Errorf("kmeans: %w", err)
	}
	g := part.GridRows
	n := cfg.Dataset.Cols
	k := cfg.Clusters

	wf := runtime.NewWorkflow("kmeans")
	// Exact shape: per iteration g partial_sums (3 params each) + one
	// merge (g+1 params); datums are g blocks, iters+1 centers versions
	// and g partials per iteration.
	iters := cfg.Iterations
	wf.Hint(iters*(int(g)+1),
		int(g)+iters+1+iters*int(g),
		iters*(4*int(g)+1))
	gen := cfg.Generator
	if gen == nil {
		gen = dataset.NewGenerator(42)
	}
	if cfg.Materialize && part.SizeBytes() > cfg.MaterializeBudget {
		return nil, fmt.Errorf("kmeans: %s input exceeds materialization budget %s",
			dataset.FormatBytes(part.SizeBytes()), dataset.FormatBytes(cfg.MaterializeBudget))
	}

	// Input blocks. Keys are built once and reused across every iteration
	// below — at grid 1024 × 100 iterations that is ~100k avoided string
	// builds.
	blockKeys := make([]string, g)
	for b := int64(0); b < g; b++ {
		blockKeys[b] = keyBlock(b)
		rows, cols, err := part.BlockShape(b, 0)
		if err != nil {
			return nil, err
		}
		if cfg.Materialize {
			blk := dataset.NewBlock(dataset.BlockID{Row: b}, rows, cols)
			if cfg.RawData {
				gen.Fill(blk)
			} else {
				gen.FillBlobs(blk, int(k), 0.5)
			}
			wf.SetInput(blockKeys[b], blk)
		} else {
			wf.SetSize(blockKeys[b], float64(rows*cols*dataset.ElemSize))
		}
	}
	// Initial centers: the first k rows of block 0 (dislib's default-ish
	// deterministic init).
	centersBytes := float64(k * n * dataset.ElemSize)
	if cfg.Materialize {
		first := wf.Size(keyBlock(0)) // ensure block exists
		_ = first
		blk0Rows, _, _ := part.BlockShape(0, 0)
		if blk0Rows < k {
			return nil, fmt.Errorf("kmeans: block 0 has %d rows < %d clusters", blk0Rows, k)
		}
		c0 := dataset.NewBlock(dataset.BlockID{Row: -1}, k, n)
		// Copy from a freshly generated block 0 so C0 matches the input.
		src := dataset.NewBlock(dataset.BlockID{Row: 0}, blk0Rows, n)
		if cfg.RawData {
			gen.Fill(src)
		} else {
			gen.FillBlobs(src, int(k), 0.5)
		}
		copy(c0.Data, src.Data[:k*n])
		wf.SetInput(KeyCenters(0), c0)
	} else {
		wf.SetSize(KeyCenters(0), centersBytes)
	}

	// Iterations.
	mergeParams := make([]dag.Param, 0, g+1)
	for it := 0; it < cfg.Iterations; it++ {
		prevC := KeyCenters(it)
		mergeParams = mergeParams[:0]
		for b := int64(0); b < g; b++ {
			rows, cols, err := part.BlockShape(b, 0)
			if err != nil {
				return nil, err
			}
			ps := keyPartial(it, b)
			wf.SetSize(ps, float64(k*(n+1)*dataset.ElemSize))
			spec := runtime.TaskSpec{Profile: PartialSumProfile(rows, cols, k)}
			if cfg.Materialize {
				xKey, cKey, psKey := blockKeys[b], prevC, ps
				kk := k
				spec.Exec = func(s *runtime.Store) error {
					return execPartialSum(s, xKey, cKey, psKey, kk)
				}
			}
			wf.AddTask("partial_sum", spec,
				dag.Param{Data: blockKeys[b], Dir: dag.In},
				dag.Param{Data: prevC, Dir: dag.In},
				dag.Param{Data: ps, Dir: dag.Out})
			mergeParams = append(mergeParams, dag.Param{Data: ps, Dir: dag.In})
		}
		nextC := KeyCenters(it + 1)
		wf.SetSize(nextC, centersBytes)
		mergeParams = append(mergeParams, dag.Param{Data: nextC, Dir: dag.Out})
		spec := runtime.TaskSpec{Profile: MergeProfile(g, n, k)}
		if cfg.Materialize {
			itCopy, kk, nn, gg := it, k, n, g
			spec.Exec = func(s *runtime.Store) error {
				return execMerge(s, itCopy, gg, kk, nn)
			}
		}
		wf.AddTask("merge", spec, mergeParams...)
	}
	return wf, nil
}

// execPartialSum assigns each sample of the block to its nearest center
// and emits a (K × N+1) partial: per-cluster feature sums plus counts.
func execPartialSum(s *runtime.Store, xKey, cKey, psKey string, k int64) error {
	x, centers := s.MustGet(xKey), s.MustGet(cKey)
	n := x.Cols
	if centers.Rows != k || centers.Cols != n {
		return fmt.Errorf("kmeans: centers %dx%d, want %dx%d", centers.Rows, centers.Cols, k, n)
	}
	ps := dataset.NewBlock(dataset.BlockID{}, k, n+1)
	for r := int64(0); r < x.Rows; r++ {
		best, bestDist := int64(0), math.Inf(1)
		for c := int64(0); c < k; c++ {
			var d float64
			for j := int64(0); j < n; j++ {
				diff := x.At(r, j) - centers.At(c, j)
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		for j := int64(0); j < n; j++ {
			ps.Set(best, j, ps.At(best, j)+x.At(r, j))
		}
		ps.Set(best, n, ps.At(best, n)+1)
	}
	s.Put(psKey, ps)
	return nil
}

// execMerge reduces the iteration's partials into the next centers. Empty
// clusters keep their previous center (dislib behaviour).
func execMerge(s *runtime.Store, it int, g, k, n int64) error {
	prev := s.MustGet(KeyCenters(it))
	next := dataset.NewBlock(dataset.BlockID{}, k, n)
	sums := dataset.NewBlock(dataset.BlockID{}, k, n+1)
	for b := int64(0); b < g; b++ {
		ps := s.MustGet(keyPartial(it, b))
		for i := range sums.Data {
			sums.Data[i] += ps.Data[i]
		}
	}
	for c := int64(0); c < k; c++ {
		count := sums.At(c, n)
		for j := int64(0); j < n; j++ {
			if count > 0 {
				next.Set(c, j, sums.At(c, j)/count)
			} else {
				next.Set(c, j, prev.At(c, j))
			}
		}
	}
	s.Put(KeyCenters(it+1), next)
	return nil
}

// Inertia computes the within-cluster sum of squares of the materialized
// blocks against the given centers — the quantity Lloyd iterations must
// not increase, used to verify convergence.
func Inertia(store *runtime.Store, cfg Config, centersKey string) (float64, error) {
	cfg = cfg.withDefaults()
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, 1)
	if err != nil {
		return 0, err
	}
	centers := store.Get(centersKey)
	if centers == nil {
		return 0, fmt.Errorf("kmeans: centers %q not found", centersKey)
	}
	var total float64
	for b := int64(0); b < part.GridRows; b++ {
		x := store.MustGet(keyBlock(b))
		for r := int64(0); r < x.Rows; r++ {
			best := math.Inf(1)
			for c := int64(0); c < centers.Rows; c++ {
				var d float64
				for j := int64(0); j < x.Cols; j++ {
					diff := x.At(r, j) - centers.At(c, j)
					d += diff * diff
				}
				if d < best {
					best = d
				}
			}
			total += best
		}
	}
	return total, nil
}

// PredictProfile returns the analytic profile of one predict task: the
// label-assignment pass over a block (distance computation without the
// update bookkeeping).
func PredictProfile(m, n, k int64) costmodel.Profile {
	p := PartialSumProfile(m, n, k)
	p.SerialOps /= 4 // no per-cluster accumulation, only argmin bookkeeping
	p.BytesOut = 8 * float64(m)
	return p
}

// BuildPredict appends label-assignment tasks for the fitted centers to a
// new workflow: one predict task per block, writing a labels vector (M×1)
// per block under KeyLabels. This is dislib's KMeans.predict counterpart.
func BuildPredict(cfg Config, centersKey string) (*runtime.Workflow, error) {
	cfg = cfg.withDefaults()
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, 1)
	if err != nil {
		return nil, fmt.Errorf("kmeans: %w", err)
	}
	wf := runtime.NewWorkflow("kmeans-predict")
	gen := cfg.Generator
	if gen == nil {
		gen = dataset.NewGenerator(42)
	}
	if cfg.Materialize && part.SizeBytes() > cfg.MaterializeBudget {
		return nil, fmt.Errorf("kmeans: %s exceeds materialization budget",
			dataset.FormatBytes(part.SizeBytes()))
	}
	wf.SetSize(centersKey, float64(cfg.Clusters*cfg.Dataset.Cols*dataset.ElemSize))
	for b := int64(0); b < part.GridRows; b++ {
		rows, cols, err := part.BlockShape(b, 0)
		if err != nil {
			return nil, err
		}
		if cfg.Materialize {
			blk := dataset.NewBlock(dataset.BlockID{Row: b}, rows, cols)
			gen.FillBlobs(blk, int(cfg.Clusters), 0.5)
			wf.SetInput(keyBlock(b), blk)
		} else {
			wf.SetSize(keyBlock(b), float64(rows*cols*dataset.ElemSize))
		}
		lbl := KeyLabels(b)
		wf.SetSize(lbl, float64(rows*dataset.ElemSize))
		spec := runtime.TaskSpec{Profile: PredictProfile(rows, cols, cfg.Clusters)}
		if cfg.Materialize {
			xKey, cKey, lKey, kk := keyBlock(b), centersKey, lbl, cfg.Clusters
			spec.Exec = func(s *runtime.Store) error {
				return execPredict(s, xKey, cKey, lKey, kk)
			}
		}
		wf.AddTask("predict", spec,
			dag.Param{Data: keyBlock(b), Dir: dag.In},
			dag.Param{Data: centersKey, Dir: dag.In},
			dag.Param{Data: lbl, Dir: dag.Out})
	}
	return wf, nil
}

// KeyLabels returns the datum name of block b's label vector.
func KeyLabels(b int64) string { return fmt.Sprintf("labels[%d]", b) }

// execPredict assigns each sample its nearest-center index.
func execPredict(s *runtime.Store, xKey, cKey, lKey string, k int64) error {
	x, centers := s.MustGet(xKey), s.MustGet(cKey)
	labels := dataset.NewBlock(dataset.BlockID{}, x.Rows, 1)
	for r := int64(0); r < x.Rows; r++ {
		best, bestDist := int64(0), math.Inf(1)
		for c := int64(0); c < k; c++ {
			var d float64
			for j := int64(0); j < x.Cols; j++ {
				diff := x.At(r, j) - centers.At(c, j)
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		labels.Set(r, 0, float64(best))
	}
	s.Put(lKey, labels)
	return nil
}
