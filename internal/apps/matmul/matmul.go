// Package matmul implements the paper's fully parallelizable workload:
// dislib-style distributed blocked matrix multiplication (§4.4.4).
//
// C = A × B over a g×g grid produces two task types:
//
//   - matmul_func — one per (i, j, k) triple (g³ tasks): the O(N³) block
//     product A[i,k]·B[k,j]. Fully parallel user code, high arithmetic
//     intensity, the workload where GPUs shine (Figure 8 left).
//   - add_func — accumulates the g partial products of each output block
//     with a binary reduction tree (g²·(g-1) tasks): O(N²), fully parallel
//     but bandwidth-bound, the workload where CPU-GPU communication
//     dominates and GPUs lose (Figure 8 right).
//
// The resulting DAG is wide and shallow — high task-level parallelism
// (Figure 6b). A second variant reproduces the COMPSs Fused-Multiply-Add
// implementation (Figure 12): fma_func accumulates C[i,j] += A[i,k]·B[k,j]
// in place, yielding g³ tasks in g sequential waves with no add tasks.
package matmul

import (
	"fmt"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

// Variant selects the implementation.
type Variant int

const (
	// Dislib is the dislib implementation: matmul_func + add_func tree.
	Dislib Variant = iota
	// FMA is the COMPSs fused-multiply-add implementation (Figure 12).
	FMA
)

func (v Variant) String() string {
	if v == FMA {
		return "matmul-fma"
	}
	return "matmul"
}

// Config parameterizes a matmul workflow.
type Config struct {
	// Dataset is the square input matrix (both A and B have this shape).
	Dataset dataset.Dataset
	// Grid is g: the dataset is partitioned g×g.
	Grid int64
	// Variant selects dislib or FMA.
	Variant Variant
	// Materialize attaches real input blocks and kernels; requires the
	// dataset to fit MaterializeBudget.
	Materialize bool
	// Generator fills materialized inputs (nil: uniform seed 42).
	Generator *dataset.Generator
	// MaterializeBudget caps real allocation (default 256 MB).
	MaterializeBudget int64
}

// Profiles returns the analytic cost profiles for the two dislib task
// types at block order n (square N×N blocks), matching §4.4.4:
// matmul_func is O(N³), add_func is O(N).
func Profiles(n int64) (mm, add costmodel.Profile) {
	N := float64(n)
	blockBytes := 8 * N * N
	mm = costmodel.Profile{
		Kernel:      costmodel.KernelMatmul,
		SerialOps:   0, // fully parallel user code (§4.4.4)
		ParallelOps: 2 * N * N * N,
		Threads:     N * N,
		BytesIn:     2 * blockBytes,
		BytesOut:    blockBytes,
		// "Matmul requires memory equal to three times the block size
		// (each task has two block inputs and one block output)" — §5.3.
		DeviceMemBytes: 3 * blockBytes,
		HostMemBytes:   3 * blockBytes,
	}
	add = mm
	add.Kernel = costmodel.KernelAdd
	add.ParallelOps = N * N
	return mm, add
}

// FMAProfile returns the profile of the fused fma_func task at block
// order n: same O(N³) class as matmul_func with three I/O blocks.
func FMAProfile(n int64) costmodel.Profile {
	mm, _ := Profiles(n)
	mm.Kernel = costmodel.KernelFMA
	mm.BytesIn = 3 * 8 * float64(n) * float64(n) // A, B and the C accumulator
	return mm
}

// keyA, keyB, keyC name the data blocks.
func keyA(r, c int64) string { return fmt.Sprintf("A[%d,%d]", r, c) }
func keyB(r, c int64) string { return fmt.Sprintf("B[%d,%d]", r, c) }

// KeyC returns the datum name of output block (r, c): the key examples and
// tests read results from.
func KeyC(r, c int64) string { return fmt.Sprintf("C[%d,%d]", r, c) }

func keyPartial(r, c, k int64) string { return fmt.Sprintf("P[%d,%d,%d]", r, c, k) }

// Build constructs the workflow.
func Build(cfg Config) (*runtime.Workflow, error) {
	if cfg.Dataset.Rows != cfg.Dataset.Cols {
		return nil, fmt.Errorf("matmul: dataset must be square, got %dx%d",
			cfg.Dataset.Rows, cfg.Dataset.Cols)
	}
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, cfg.Grid)
	if err != nil {
		return nil, fmt.Errorf("matmul: %w", err)
	}
	g := part.GridRows
	if part.GridCols != g {
		return nil, fmt.Errorf("matmul: non-square effective grid %s", part.GridString())
	}

	wf := runtime.NewWorkflow(cfg.Variant.String())
	// Dislib: g³ matmul_funcs + ~g³ add-tree reductions, 3 params each,
	// over 2g² inputs + ~2g³ intermediates. FMA: g² zero_funcs + g³
	// 3-param fma_funcs over 2g²+g² datums. The dislib figures slightly
	// overshoot for g=1 edge shapes; Hint only needs to be close.
	gi := int(g)
	switch cfg.Variant {
	case FMA:
		wf.Hint(gi*gi*(gi+1), 3*gi*gi, gi*gi+3*gi*gi*gi)
	default:
		wf.Hint(2*gi*gi*gi, 2*gi*gi*(gi+1), 6*gi*gi*gi)
	}
	gen := cfg.Generator
	if gen == nil {
		gen = dataset.NewGenerator(42)
	}
	budget := cfg.MaterializeBudget
	if budget == 0 {
		budget = 256 << 20
	}
	if cfg.Materialize && 2*part.SizeBytes() > budget {
		return nil, fmt.Errorf("matmul: 2×%s inputs exceed materialization budget %s",
			dataset.FormatBytes(part.SizeBytes()), dataset.FormatBytes(budget))
	}

	// Declare input blocks (A and B share the partition geometry).
	for r := int64(0); r < g; r++ {
		for c := int64(0); c < g; c++ {
			rows, cols, err := part.BlockShape(r, c)
			if err != nil {
				return nil, err
			}
			bytes := float64(rows * cols * dataset.ElemSize)
			for _, mk := range []struct {
				key  string
				id   dataset.BlockID
				fill func(*dataset.Block)
			}{
				{keyA(r, c), dataset.BlockID{Row: r, Col: c}, gen.Fill},
				{keyB(r, c), dataset.BlockID{Row: r + g, Col: c}, gen.Fill},
			} {
				if cfg.Materialize {
					b := dataset.NewBlock(mk.id, rows, cols)
					mk.fill(b)
					wf.SetInput(mk.key, b)
				} else {
					wf.SetSize(mk.key, bytes)
				}
			}
		}
	}

	switch cfg.Variant {
	case Dislib:
		buildDislib(wf, part, cfg.Materialize)
	case FMA:
		buildFMA(wf, part, cfg.Materialize)
	default:
		return nil, fmt.Errorf("matmul: unknown variant %d", cfg.Variant)
	}
	return wf, nil
}

// buildDislib emits g³ matmul_func tasks plus per-output binary add trees.
func buildDislib(wf *runtime.Workflow, part dataset.Partition, real bool) {
	g := part.GridRows
	mmProf, addProf := Profiles(part.BlockRows)
	for r := int64(0); r < g; r++ {
		for c := int64(0); c < g; c++ {
			// Partial products.
			partials := make([]string, 0, g)
			for k := int64(0); k < g; k++ {
				out := keyPartial(r, c, k)
				if g == 1 {
					out = KeyC(r, c) // single product is the output
				}
				wf.SetSize(out, float64(part.BlockRows*part.BlockCols*dataset.ElemSize))
				spec := runtime.TaskSpec{Profile: mmProf}
				if real {
					a, b := keyA(r, k), keyB(k, c)
					outKey := out
					spec.Exec = func(s *runtime.Store) error {
						return execMatmul(s, a, b, outKey)
					}
				}
				wf.AddTask("matmul_func", spec,
					dag.Param{Data: keyA(r, k), Dir: dag.In},
					dag.Param{Data: keyB(k, c), Dir: dag.In},
					dag.Param{Data: out, Dir: dag.Out})
				partials = append(partials, out)
			}
			// Binary reduction tree over the g partials.
			round := 0
			for len(partials) > 1 {
				var next []string
				for i := 0; i < len(partials); i += 2 {
					if i+1 == len(partials) {
						next = append(next, partials[i])
						continue
					}
					out := fmt.Sprintf("S[%d,%d]r%d.%d", r, c, round, i/2)
					if len(partials) == 2 {
						out = KeyC(r, c)
					}
					wf.SetSize(out, float64(part.BlockRows*part.BlockCols*dataset.ElemSize))
					spec := runtime.TaskSpec{Profile: addProf}
					if real {
						x, y, outKey := partials[i], partials[i+1], out
						spec.Exec = func(s *runtime.Store) error {
							return execAdd(s, x, y, outKey)
						}
					}
					wf.AddTask("add_func", spec,
						dag.Param{Data: partials[i], Dir: dag.In},
						dag.Param{Data: partials[i+1], Dir: dag.In},
						dag.Param{Data: out, Dir: dag.Out})
					next = append(next, out)
				}
				partials = next
				round++
			}
		}
	}
}

// buildFMA emits g³ fused tasks: C[i,j] += A[i,k]·B[k,j], serialized in k
// per output block by the INOUT accumulator dependency.
func buildFMA(wf *runtime.Workflow, part dataset.Partition, real bool) {
	g := part.GridRows
	prof := FMAProfile(part.BlockRows)
	for r := int64(0); r < g; r++ {
		for c := int64(0); c < g; c++ {
			out := KeyC(r, c)
			wf.SetSize(out, float64(part.BlockRows*part.BlockCols*dataset.ElemSize))
			// Zero-init accumulator task (serial, negligible cost).
			initSpec := runtime.TaskSpec{Profile: costmodel.Profile{
				Kernel: costmodel.KernelGeneric, SerialOps: 1000,
			}}
			if real {
				rr, cc := r, c
				initSpec.Exec = func(s *runtime.Store) error {
					rows, cols, err := part.BlockShape(rr, cc)
					if err != nil {
						return err
					}
					s.Put(KeyC(rr, cc), dataset.NewBlock(dataset.BlockID{Row: rr, Col: cc}, rows, cols))
					return nil
				}
			}
			wf.AddTask("zero_func", initSpec, dag.Param{Data: out, Dir: dag.Out})
			for k := int64(0); k < g; k++ {
				spec := runtime.TaskSpec{Profile: prof}
				if real {
					a, b, outKey := keyA(r, k), keyB(k, c), out
					spec.Exec = func(s *runtime.Store) error {
						return execFMA(s, a, b, outKey)
					}
				}
				wf.AddTask("fma_func", spec,
					dag.Param{Data: keyA(r, k), Dir: dag.In},
					dag.Param{Data: keyB(k, c), Dir: dag.In},
					dag.Param{Data: out, Dir: dag.InOut})
			}
		}
	}
}

// execMatmul computes out = a × b with a cache-friendly ikj loop.
func execMatmul(s *runtime.Store, aKey, bKey, outKey string) error {
	a, b := s.MustGet(aKey), s.MustGet(bKey)
	if a.Cols != b.Rows {
		return fmt.Errorf("matmul: inner dims %d vs %d", a.Cols, b.Rows)
	}
	out := dataset.NewBlock(dataset.BlockID{}, a.Rows, b.Cols)
	mulInto(out, a, b)
	s.Put(outKey, out)
	return nil
}

// execFMA computes out += a × b in place.
func execFMA(s *runtime.Store, aKey, bKey, outKey string) error {
	a, b, out := s.MustGet(aKey), s.MustGet(bKey), s.MustGet(outKey)
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		return fmt.Errorf("fma: shape mismatch")
	}
	mulInto(out, a, b)
	return nil
}

// mulInto accumulates a×b into out.
func mulInto(out, a, b *dataset.Block) {
	for i := int64(0); i < a.Rows; i++ {
		for k := int64(0); k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range bRow {
				outRow[j] += aik * bRow[j]
			}
		}
	}
}

// execAdd computes out = x + y elementwise.
func execAdd(s *runtime.Store, xKey, yKey, outKey string) error {
	x, y := s.MustGet(xKey), s.MustGet(yKey)
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return fmt.Errorf("add: shape mismatch %dx%d vs %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	out := dataset.NewBlock(dataset.BlockID{}, x.Rows, x.Cols)
	for i := range out.Data {
		out.Data[i] = x.Data[i] + y.Data[i]
	}
	s.Put(outKey, out)
	return nil
}

// Reference computes the full product of the materialized inputs naively,
// for verification: C_ref = A × B assembled from the workflow's input
// blocks.
func Reference(wf *runtime.Workflow, store *runtime.Store, cfg Config) error {
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, cfg.Grid)
	if err != nil {
		return err
	}
	g := part.GridRows
	for r := int64(0); r < g; r++ {
		for c := int64(0); c < g; c++ {
			rows, _, err := part.BlockShape(r, c)
			if err != nil {
				return err
			}
			_, cols, err := part.BlockShape(r, c)
			if err != nil {
				return err
			}
			want := dataset.NewBlock(dataset.BlockID{}, rows, cols)
			for k := int64(0); k < g; k++ {
				a := store.MustGet(keyA(r, k))
				b := store.MustGet(keyB(k, c))
				mulInto(want, a, b)
			}
			got := store.MustGet(KeyC(r, c))
			if got.Rows != want.Rows || got.Cols != want.Cols {
				return fmt.Errorf("C[%d,%d]: shape %dx%d, want %dx%d",
					r, c, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			for i := range want.Data {
				diff := got.Data[i] - want.Data[i]
				if diff > 1e-6 || diff < -1e-6 {
					return fmt.Errorf("C[%d,%d][%d] = %v, want %v", r, c, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
	return nil
}
