package matmul

import (
	"testing"

	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

func TestDAGShapeDislib(t *testing.T) {
	// Figure 6b: grid 4x4 — 64 matmul_func (g³) and 48 add_func
	// (g²·(g-1)), wide and shallow.
	wf, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := wf.Graph.CountByName()
	if counts["matmul_func"] != 64 {
		t.Fatalf("matmul_func = %d, want 64", counts["matmul_func"])
	}
	if counts["add_func"] != 48 {
		t.Fatalf("add_func = %d, want 48", counts["add_func"])
	}
	if w := wf.Graph.MaxWidth(); w != 64 {
		t.Fatalf("width = %d, want 64", w)
	}
	// 1 matmul level + ceil(log2(4)) = 2 add levels.
	if h := wf.Graph.MaxHeight(); h != 3 {
		t.Fatalf("height = %d, want 3", h)
	}
	if err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDAGShapeSingleBlock(t *testing.T) {
	wf, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := wf.Graph.CountByName()
	if counts["matmul_func"] != 1 || counts["add_func"] != 0 {
		t.Fatalf("counts = %v, want 1 matmul, 0 add", counts)
	}
}

func TestDAGShapeFMA(t *testing.T) {
	// FMA: g³ fma tasks + g² init tasks; each output chain serializes in
	// k, so height = g + 1.
	wf, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 4, Variant: FMA})
	if err != nil {
		t.Fatal(err)
	}
	counts := wf.Graph.CountByName()
	if counts["fma_func"] != 64 {
		t.Fatalf("fma_func = %d, want 64", counts["fma_func"])
	}
	if counts["zero_func"] != 16 {
		t.Fatalf("zero_func = %d, want 16", counts["zero_func"])
	}
	if h := wf.Graph.MaxHeight(); h != 5 {
		t.Fatalf("height = %d, want 5 (init + 4 chained FMAs)", h)
	}
}

func TestProfilesMatchComplexities(t *testing.T) {
	mm, add := Profiles(1000)
	if mm.ParallelOps != 2e9 {
		t.Fatalf("matmul ops = %v, want 2N³", mm.ParallelOps)
	}
	if add.ParallelOps != 1e6 {
		t.Fatalf("add ops = %v, want N²", add.ParallelOps)
	}
	if mm.SerialOps != 0 || add.SerialOps != 0 {
		t.Fatal("matmul tasks are fully parallel: serial ops must be 0")
	}
	if mm.DeviceMemBytes != 3*8e6 {
		t.Fatalf("device mem = %v, want 3 block sizes (§5.3)", mm.DeviceMemBytes)
	}
}

func TestGPUOOMAtMaxBlock(t *testing.T) {
	// §5.3: the 8 GB dataset at grid 1x1 needs 3×8 GB = 24 GB on a 12 GB
	// GPU — OOM. CPU execution still fits (128 GB RAM).
	wf, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.GPU})
	if !runtime.ErrOOM(err) {
		t.Fatalf("err = %v, want GPU OOM", err)
	}
	if _, err := runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.CPU}); err != nil {
		t.Fatalf("CPU run: %v", err)
	}
	// Grid 2x2 (2048 MB blocks, 6 GB footprint) fits the GPU.
	wf2, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.RunSim(wf2, runtime.SimConfig{Device: costmodel.GPU}); err != nil {
		t.Fatalf("2x2 GPU run: %v", err)
	}
}

func TestRealExecutionMatchesReference(t *testing.T) {
	cfg := Config{
		Dataset:     dataset.Dataset{Name: "small", Rows: 96, Cols: 96},
		Grid:        3, // exercises the odd-partial reduction tree
		Materialize: true,
	}
	wf, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Reference(wf, res.Store, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFMAMatchesDislib(t *testing.T) {
	// Both variants must compute the same product.
	ds := dataset.Dataset{Name: "small", Rows: 64, Cols: 64}
	run := func(v Variant) *runtime.Store {
		wf, err := Build(Config{Dataset: ds, Grid: 2, Variant: v, Materialize: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Store
	}
	a, b := run(Dislib), run(FMA)
	for r := int64(0); r < 2; r++ {
		for c := int64(0); c < 2; c++ {
			x, y := a.MustGet(KeyC(r, c)), b.MustGet(KeyC(r, c))
			for i := range x.Data {
				diff := x.Data[i] - y.Data[i]
				if diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("C[%d,%d][%d]: dislib %v vs fma %v", r, c, i, x.Data[i], y.Data[i])
				}
			}
		}
	}
}

func TestRaggedRealExecution(t *testing.T) {
	// 100x100 over a 3x3 grid: ragged 34/33-row blocks must still produce
	// a correct product.
	cfg := Config{
		Dataset:     dataset.Dataset{Name: "ragged", Rows: 100, Cols: 100},
		Grid:        3,
		Materialize: true,
	}
	wf, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Reference(wf, res.Store, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{Dataset: dataset.Dataset{Name: "rect", Rows: 10, Cols: 20}, Grid: 2}); err == nil {
		t.Fatal("non-square dataset accepted")
	}
	if _, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 2, Materialize: true}); err == nil {
		t.Fatal("paper-scale materialization accepted")
	}
}

func TestSimAtPaperScale(t *testing.T) {
	// The 8 GB dataset at grid 8x8 simulates without materializing 8 GB.
	wf, err := Build(Config{Dataset: dataset.MatmulSmall, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := wf.Graph.Len(); got != 512+448 {
		t.Fatalf("tasks = %d, want 960", got)
	}
	res, err := runtime.RunSim(wf, runtime.SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}
