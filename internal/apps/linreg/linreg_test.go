package linreg

import (
	"testing"

	"wfsim/internal/apps/kmeans"
	"wfsim/internal/apps/matmul"
	"wfsim/internal/costmodel"
	"wfsim/internal/dataset"
	"wfsim/internal/model"
	"wfsim/internal/runtime"
)

func TestDAGShape(t *testing.T) {
	wf, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 8, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := wf.Graph.CountByName()
	if counts["gradient"] != 24 || counts["update"] != 3 {
		t.Fatalf("counts = %v, want 24 gradient + 3 update", counts)
	}
	// Narrow and deep, like K-means: iterations serialize.
	if h := wf.Graph.MaxHeight(); h != 6 {
		t.Fatalf("height = %d, want 6", h)
	}
	if w := wf.Graph.MaxWidth(); w != 8 {
		t.Fatalf("width = %d, want 8", w)
	}
}

func TestConvergesToTrueWeights(t *testing.T) {
	cfg := Config{
		Dataset:      dataset.Dataset{Name: "lin", Rows: 4000, Cols: 8},
		Grid:         4,
		Iterations:   20,
		LocalEpochs:  10,
		LearningRate: 0.3,
		Materialize:  true,
	}
	wf, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunLocal(wf, runtime.LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := MSE(res.Store, cfg, KeyWeights(1))
	if err != nil {
		t.Fatal(err)
	}
	final, err := MSE(res.Store, cfg, KeyWeights(cfg.Iterations))
	if err != nil {
		t.Fatal(err)
	}
	if final >= first {
		t.Fatalf("gradient descent did not reduce MSE: %v -> %v", first, final)
	}
	if final > 0.01 {
		t.Fatalf("final MSE = %v, want near-exact recovery (noise-free targets)", final)
	}
	// Recovered weights approximate the hidden generator.
	w := res.Store.MustGet(KeyWeights(cfg.Iterations))
	trueW := TrueWeights(cfg.Dataset.Cols)
	for j := int64(0); j < cfg.Dataset.Cols; j++ {
		diff := w.At(j, 0) - trueW[j]
		if diff > 0.2 || diff < -0.2 {
			t.Fatalf("w[%d] = %v, want ≈%v", j, w.At(j, 0), trueW[j])
		}
	}
}

// TestIntermediateParallelism verifies the §5.5.1 purpose of this
// algorithm: its user-code GPU speedup sits strictly between K-means at
// K=10 (≈1.24x, serial-heavy) and Matmul at large blocks (≈21x, fully
// parallel).
func TestIntermediateParallelism(t *testing.T) {
	params := costmodel.DefaultParams()
	part, err := dataset.ByGrid(dataset.KMeansSmall, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	lr := model.Breakdown(params, GradientProfile(part.BlockRows, part.BlockCols, 10))
	km := model.Breakdown(params, kmeans.PartialSumProfile(part.BlockRows, part.BlockCols, 10))
	mmProf, _ := matmul.Profiles(16384)
	mm := model.Breakdown(params, mmProf)
	if !(lr.UserCodeSpeedup > km.UserCodeSpeedup && lr.UserCodeSpeedup < mm.UserCodeSpeedup) {
		t.Fatalf("linreg speedup %.2f should lie between kmeans %.2f and matmul %.2f",
			lr.UserCodeSpeedup, km.UserCodeSpeedup, mm.UserCodeSpeedup)
	}
	if !(lr.ParallelFraction > km.ParallelFraction && lr.ParallelFraction < mm.ParallelFraction) {
		t.Fatalf("linreg parallel fraction %.2f should lie between kmeans %.2f and matmul %.2f",
			lr.ParallelFraction, km.ParallelFraction, mm.ParallelFraction)
	}
}

func TestSimAtPaperScale(t *testing.T) {
	wf, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 128, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []costmodel.DeviceKind{costmodel.CPU, costmodel.GPU} {
		res, err := runtime.RunSim(wf, runtime.SimConfig{Device: dev})
		if err != nil {
			t.Fatalf("%v: %v", dev, err)
		}
		if res.Makespan <= 0 {
			t.Fatal("zero makespan")
		}
	}
}

func TestBudget(t *testing.T) {
	if _, err := Build(Config{Dataset: dataset.KMeansSmall, Grid: 4, Materialize: true}); err == nil {
		t.Fatal("paper-scale materialization accepted")
	}
}
