// Package linreg implements distributed linear regression by batch
// gradient descent — the paper's §5.5.1 extension direction made concrete:
// an algorithm whose parallel/serial ratio sits *between* the two extremes
// the paper analyzes (fully parallelizable Matmul vs serial-heavy K-means),
// providing the intermediate data point the authors call for.
//
// The dataset (M samples × N features) is chunked row-wise; each gradient
// descent iteration emits:
//
//   - gradient — one per block: E local full-batch descent passes over
//     the block (local-SGD / federated-averaging style), emitting the
//     block's weight delta. The O(E·M·N) matrix-vector work is
//     GPU-parallelizable; an O(E·M) residual bookkeeping fraction stays
//     serial, putting ≈half the user code in the parallel fraction —
//     between matmul_func (all parallel) and partial_sum (serial-heavy).
//     The local passes amortize the CPU-GPU transfer of the block over E
//     kernels, the staged-pipeline technique the paper cites for
//     mitigating transfer bottlenecks.
//   - update — one per iteration: averages the g deltas into the next
//     weights. Serial, CPU-only.
//
// Like K-means, the DAG is narrow and deep (iterations serialize); like
// Matmul, the per-task kernel is a dense vectorizable operation.
package linreg

import (
	"fmt"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/runtime"
)

// Config parameterizes a linear-regression workflow.
type Config struct {
	// Dataset is the design matrix X (M samples × N features). The
	// targets y are generated alongside the blocks.
	Dataset dataset.Dataset
	// Grid is g: row-wise chunking into g blocks.
	Grid int64
	// Iterations is the number of outer (synchronized) rounds.
	Iterations int
	// LocalEpochs is E: full-batch descent passes each gradient task runs
	// locally before synchronizing (default 10).
	LocalEpochs int
	// LearningRate is the step size η (default 0.05).
	LearningRate float64
	// Materialize attaches real blocks and kernels; targets are produced
	// from a hidden true weight vector plus noise so convergence is
	// verifiable.
	Materialize bool
	// Generator seeds synthetic data (nil: seed 42).
	Generator *dataset.Generator
	// MaterializeBudget caps real allocation (default 256 MB).
	MaterializeBudget int64
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 10
	}
	if c.MaterializeBudget == 0 {
		c.MaterializeBudget = 256 << 20
	}
	return c
}

// GradientProfile returns the analytic profile of one gradient task over a
// block of m rows × n features running e local epochs.
//
// The parallel fraction is the dense matrix-vector work (≈4·M·N flops per
// epoch, element-parallel: M·N threads); the serial fraction is residual
// bookkeeping at ≈12 interpreter ops per row per epoch. At the paper-scale
// shapes (N = 100, E = 10) the parallel share of user-code time is ≈50% —
// squarely between Matmul (≈100%) and K-means at K=10 (≈24%).
func GradientProfile(m, n int64, e int) costmodel.Profile {
	M, N, E := float64(m), float64(n), float64(e)
	blockBytes := 8 * M * N
	return costmodel.Profile{
		Kernel:      costmodel.KernelKMeans, // memory-bound mat-vec class
		SerialOps:   12 * M * E,
		ParallelOps: 4 * M * N * E,
		Threads:     M * N,
		BytesIn:     blockBytes + 8*M + 8*N, // X block, y block, w
		BytesOut:    8 * N,                  // weight delta
		DeviceMemBytes: 1.15*blockBytes + 8*M + 16*N +
			8*M, // residual vector
		HostMemBytes: 1.15*blockBytes + 8*M + 16*N + 8*M,
	}
}

// UpdateProfile returns the serial per-iteration reduce+step profile.
func UpdateProfile(g, n int64) costmodel.Profile {
	return costmodel.Profile{
		Kernel:       costmodel.KernelGeneric,
		SerialOps:    30 * float64(g) * float64(n),
		HostMemBytes: 8 * float64(g) * float64(n),
	}
}

// Data keys.
func keyX(b int64) string { return fmt.Sprintf("X[%d]", b) }
func keyY(b int64) string { return fmt.Sprintf("y[%d]", b) }

// KeyWeights returns the datum name of the weights after iteration it
// (KeyWeights(0) is the zero-initialized input).
func KeyWeights(it int) string { return fmt.Sprintf("w%d", it) }

func keyDelta(it int, b int64) string { return fmt.Sprintf("d[%d,%d]", it, b) }

// TrueWeights returns the hidden weight vector targets are generated from
// (for convergence verification): w*_j = (j+1)/N.
func TrueWeights(n int64) []float64 {
	w := make([]float64, n)
	for j := range w {
		w[j] = float64(j+1) / float64(n)
	}
	return w
}

// Build constructs the workflow.
func Build(cfg Config) (*runtime.Workflow, error) {
	cfg = cfg.withDefaults()
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, 1)
	if err != nil {
		return nil, fmt.Errorf("linreg: %w", err)
	}
	g := part.GridRows
	n := cfg.Dataset.Cols

	wf := runtime.NewWorkflow("linreg")
	// Per iteration: g 4-param gradients + one (g+2)-param update; datums
	// are 2g inputs, iters+1 weights versions and g deltas per iteration.
	iters := cfg.Iterations
	wf.Hint(iters*(int(g)+1),
		2*int(g)+iters+1+iters*int(g),
		iters*(5*int(g)+2))
	gen := cfg.Generator
	if gen == nil {
		gen = dataset.NewGenerator(42)
	}
	if cfg.Materialize && part.SizeBytes() > cfg.MaterializeBudget {
		return nil, fmt.Errorf("linreg: %s exceeds materialization budget",
			dataset.FormatBytes(part.SizeBytes()))
	}

	trueW := TrueWeights(n)
	for b := int64(0); b < g; b++ {
		rows, cols, err := part.BlockShape(b, 0)
		if err != nil {
			return nil, err
		}
		if cfg.Materialize {
			x := dataset.NewBlock(dataset.BlockID{Row: b}, rows, cols)
			gen.Fill(x)
			y := dataset.NewBlock(dataset.BlockID{Row: b, Col: 1}, rows, 1)
			for r := int64(0); r < rows; r++ {
				var v float64
				for j := int64(0); j < cols; j++ {
					v += x.At(r, j) * trueW[j]
				}
				y.Set(r, 0, v)
			}
			wf.SetInput(keyX(b), x)
			wf.SetInput(keyY(b), y)
		} else {
			wf.SetSize(keyX(b), float64(rows*cols*dataset.ElemSize))
			wf.SetSize(keyY(b), float64(rows*dataset.ElemSize))
		}
	}
	wBytes := float64(n * dataset.ElemSize)
	if cfg.Materialize {
		wf.SetInput(KeyWeights(0), dataset.NewBlock(dataset.BlockID{Row: -1}, n, 1))
	} else {
		wf.SetSize(KeyWeights(0), wBytes)
	}

	for it := 0; it < cfg.Iterations; it++ {
		prevW := KeyWeights(it)
		updateParams := []dag.Param{}
		for b := int64(0); b < g; b++ {
			rows, cols, err := part.BlockShape(b, 0)
			if err != nil {
				return nil, err
			}
			gk := keyDelta(it, b)
			wf.SetSize(gk, wBytes)
			spec := runtime.TaskSpec{Profile: GradientProfile(rows, cols, cfg.LocalEpochs)}
			if cfg.Materialize {
				xK, yK, wK, gK := keyX(b), keyY(b), prevW, gk
				epochs, eta := cfg.LocalEpochs, cfg.LearningRate
				spec.Exec = func(s *runtime.Store) error {
					return execLocalGD(s, xK, yK, wK, gK, epochs, eta)
				}
			}
			wf.AddTask("gradient", spec,
				dag.Param{Data: keyX(b), Dir: dag.In},
				dag.Param{Data: keyY(b), Dir: dag.In},
				dag.Param{Data: prevW, Dir: dag.In},
				dag.Param{Data: gk, Dir: dag.Out})
			updateParams = append(updateParams, dag.Param{Data: gk, Dir: dag.In})
		}
		nextW := KeyWeights(it + 1)
		wf.SetSize(nextW, wBytes)
		updateParams = append(updateParams,
			dag.Param{Data: prevW, Dir: dag.In},
			dag.Param{Data: nextW, Dir: dag.Out})
		spec := runtime.TaskSpec{Profile: UpdateProfile(g, n)}
		if cfg.Materialize {
			itC, gg, eta, rowsTotal := it, g, cfg.LearningRate, cfg.Dataset.Rows
			spec.Exec = func(s *runtime.Store) error {
				return execUpdate(s, itC, gg, eta, rowsTotal)
			}
		}
		wf.AddTask("update", spec, updateParams...)
	}
	return wf, nil
}

// execLocalGD runs e full-batch descent passes over the block from the
// shared weights and emits the resulting weight delta.
func execLocalGD(s *runtime.Store, xKey, yKey, wKey, dKey string, e int, eta float64) error {
	x, y, w := s.MustGet(xKey), s.MustGet(yKey), s.MustGet(wKey)
	loc := w.Clone()
	grad := make([]float64, loc.Rows)
	for epoch := 0; epoch < e; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		for r := int64(0); r < x.Rows; r++ {
			var pred float64
			for j := int64(0); j < x.Cols; j++ {
				pred += x.At(r, j) * loc.At(j, 0)
			}
			resid := pred - y.At(r, 0)
			for j := int64(0); j < x.Cols; j++ {
				grad[j] += resid * x.At(r, j)
			}
		}
		for j := int64(0); j < loc.Rows; j++ {
			loc.Set(j, 0, loc.At(j, 0)-eta*grad[j]/float64(x.Rows))
		}
	}
	delta := dataset.NewBlock(dataset.BlockID{}, w.Rows, 1)
	for j := int64(0); j < w.Rows; j++ {
		delta.Set(j, 0, loc.At(j, 0)-w.At(j, 0))
	}
	s.Put(dKey, delta)
	return nil
}

// execUpdate averages the blocks' deltas into the next weights
// (federated-averaging step).
func execUpdate(s *runtime.Store, it int, g int64, eta float64, totalRows int64) error {
	_ = eta
	_ = totalRows
	prev := s.MustGet(KeyWeights(it))
	next := prev.Clone()
	for b := int64(0); b < g; b++ {
		delta := s.MustGet(keyDelta(it, b))
		for j := int64(0); j < next.Rows; j++ {
			next.Set(j, 0, next.At(j, 0)+delta.At(j, 0)/float64(g))
		}
	}
	s.Put(KeyWeights(it+1), next)
	return nil
}

// MSE computes mean squared error of the weights under wKey against the
// materialized blocks — the convergence measure.
func MSE(store *runtime.Store, cfg Config, wKey string) (float64, error) {
	cfg = cfg.withDefaults()
	part, err := dataset.ByGrid(cfg.Dataset, cfg.Grid, 1)
	if err != nil {
		return 0, err
	}
	w := store.Get(wKey)
	if w == nil {
		return 0, fmt.Errorf("linreg: weights %q not found", wKey)
	}
	var sum float64
	var count int64
	for b := int64(0); b < part.GridRows; b++ {
		x, y := store.MustGet(keyX(b)), store.MustGet(keyY(b))
		for r := int64(0); r < x.Rows; r++ {
			var pred float64
			for j := int64(0); j < x.Cols; j++ {
				pred += x.At(r, j) * w.At(j, 0)
			}
			d := pred - y.At(r, 0)
			sum += d * d
			count++
		}
	}
	return sum / float64(count), nil
}
