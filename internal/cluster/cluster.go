// Package cluster models the heterogeneous CPU-GPU cluster the workflows
// execute on: the paper's Minotauro system (§4.4.1) — 8 nodes, each with 16
// CPU cores, 4 NVIDIA K80 GPUs (12 GB, PCIe 3.0) and 128 GB of RAM, plus a
// GPFS shared file system and node-local disks.
//
// Each node's resources map onto sim primitives: cores and GPUs are
// capacity Servers; the PCIe bus, the local disk and the NIC are fair-share
// fluid Links. The GPFS backend is one cluster-wide Link all nodes contend
// on. The runtime master (scheduler) is a capacity-1 Server, matching the
// single-threaded dispatch of a COMPSs-style master.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"wfsim/internal/costmodel"
	"wfsim/internal/sim"
)

// Spec describes a cluster topology. Link/device rates come from
// costmodel.Params so topology and calibration stay separate.
type Spec struct {
	// Name labels the cluster in outputs.
	Name string `json:"name"`
	// Nodes is the number of compute nodes.
	Nodes int `json:"nodes"`
	// CoresPerNode is the number of CPU cores per node.
	CoresPerNode int `json:"cores_per_node"`
	// GPUsPerNode is the number of GPU devices per node.
	GPUsPerNode int `json:"gpus_per_node"`
}

// Validate checks the spec is buildable.
func (s Spec) Validate() error {
	if s.Nodes <= 0 || s.CoresPerNode <= 0 || s.GPUsPerNode < 0 {
		return fmt.Errorf("cluster: invalid spec %+v", s)
	}
	return nil
}

// TotalCores returns the cluster-wide CPU core count (the maximum
// task-level parallelism for CPU tasks — 128 on Minotauro).
func (s Spec) TotalCores() int { return s.Nodes * s.CoresPerNode }

// TotalGPUs returns the cluster-wide GPU count (the maximum task-level
// parallelism for GPU tasks — 32 on Minotauro).
func (s Spec) TotalGPUs() int { return s.Nodes * s.GPUsPerNode }

// Minotauro returns the paper's cluster configuration: 8 of the system's
// nodes, 16 cores + 4 GPUs each.
func Minotauro() Spec {
	return Spec{Name: "minotauro", Nodes: 8, CoresPerNode: 16, GPUsPerNode: 4}
}

// LoadSpec reads a Spec from a JSON file, for user-defined topologies.
func LoadSpec(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("cluster: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return Spec{}, fmt.Errorf("cluster: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Node is one compute node's simulated resources.
type Node struct {
	ID    int
	Cores *sim.Server // CPU cores (capacity = CoresPerNode)
	GPUs  *sim.Server // GPU devices (capacity = GPUsPerNode)
	PCIe  *sim.Link   // CPU-GPU interconnect shared by the node's GPUs
	Disk  *sim.Link   // node-local disk
	NIC   *sim.Link   // network interface
}

// Cluster is a built topology bound to a simulation engine.
type Cluster struct {
	Spec
	Params costmodel.Params
	Nodes  []*Node
	// Shared is the GPFS backend: a single pipe all nodes contend on.
	Shared *sim.Link
	// Master is the runtime's scheduling thread (capacity 1); per-task
	// scheduling decisions serialize through it, which is how an excess
	// of fine-grained tasks turns scheduling into a bottleneck.
	Master *sim.ServiceLine
}

// Build instantiates the topology on the engine using the calibrated rates
// in params.
func Build(eng *sim.Engine, spec Spec, params costmodel.Params) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Spec:   spec,
		Params: params,
		Shared: sim.NewLink(eng, "gpfs", params.SharedBandwidth, params.SharedLatency),
		Master: sim.NewServiceLine(eng, "master"),
	}
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{
			ID:    i,
			Cores: sim.NewServer(eng, fmt.Sprintf("node%d.cores", i), spec.CoresPerNode),
			PCIe:  sim.NewLink(eng, fmt.Sprintf("node%d.pcie", i), params.PCIeBandwidth, params.PCIeLatency),
			Disk:  sim.NewLink(eng, fmt.Sprintf("node%d.disk", i), params.DiskBandwidth, params.DiskLatency),
			NIC:   sim.NewLink(eng, fmt.Sprintf("node%d.nic", i), params.NICBandwidth, params.NICLatency),
		}
		gpus := spec.GPUsPerNode
		if gpus == 0 {
			// A Server needs positive capacity; a zero-GPU node gets a
			// 1-capacity server that scheduling never routes to.
			gpus = 1
		}
		n.GPUs = sim.NewServer(eng, fmt.Sprintf("node%d.gpus", i), gpus)
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) *Node { return c.Nodes[id] }
