package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"wfsim/internal/costmodel"
	"wfsim/internal/sim"
)

func TestMinotauroSpec(t *testing.T) {
	s := Minotauro()
	if s.TotalCores() != 128 {
		t.Fatalf("cores = %d, want 128", s.TotalCores())
	}
	if s.TotalGPUs() != 32 {
		t.Fatalf("gpus = %d, want 32", s.TotalGPUs())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTopology(t *testing.T) {
	eng := sim.New()
	c, err := Build(eng, Minotauro(), costmodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 8 {
		t.Fatalf("nodes = %d, want 8", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if n.Cores.Capacity() != 16 || n.GPUs.Capacity() != 4 {
			t.Fatalf("node %d: %d cores, %d gpus", i, n.Cores.Capacity(), n.GPUs.Capacity())
		}
		for _, link := range []interface{ Bandwidth() float64 }{n.PCIe, n.Disk, n.NIC} {
			if link.Bandwidth() <= 0 {
				t.Fatal("non-positive link bandwidth")
			}
		}
	}
	if c.Master.Capacity() != 1 {
		t.Fatal("master must be capacity 1")
	}
	if c.Shared == nil {
		t.Fatal("no shared backend")
	}
}

func TestBuildZeroGPUNode(t *testing.T) {
	eng := sim.New()
	c, err := Build(eng, Spec{Name: "cpuonly", Nodes: 2, CoresPerNode: 4, GPUsPerNode: 0}, costmodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalGPUs() != 0 {
		t.Fatal("TotalGPUs should be 0")
	}
	// Server still exists so the topology is uniform.
	if c.Node(0).GPUs == nil {
		t.Fatal("nil GPU server")
	}
}

func TestBuildInvalidSpec(t *testing.T) {
	if _, err := Build(sim.New(), Spec{Nodes: 0}, costmodel.DefaultParams()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(`{"name":"test","nodes":4,"cores_per_node":8,"gpus_per_node":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalCores() != 32 || s.TotalGPUs() != 8 {
		t.Fatalf("loaded spec = %+v", s)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"nodes": -1}`), 0o644)
	if _, err := LoadSpec(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	notJSON := filepath.Join(dir, "notjson.json")
	os.WriteFile(notJSON, []byte(`{{`), 0o644)
	if _, err := LoadSpec(notJSON); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
