package faults

import (
	"testing"

	"wfsim/internal/sim"
)

func TestEnabledAndDefaults(t *testing.T) {
	var zero Config
	if zero.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	d := zero.WithDefaults()
	if d.MaxAttempts != 4 || d.RetryBackoff != 0.05 || d.StragglerFactor != 0.25 {
		t.Fatalf("defaults = %+v", d)
	}
	if d.NodeMTTR != 0 || d.StragglerDuration != 0 {
		t.Fatal("defaults invented time constants for disabled mechanisms")
	}
	c := Config{NodeMTBF: 10, StragglerMTBF: 40}.WithDefaults()
	if c.NodeMTTR != 1 || c.StragglerDuration != 4 {
		t.Fatalf("derived defaults = %+v", c)
	}
	if !c.Enabled() {
		t.Fatal("crash config reports disabled")
	}
	if !(Config{TaskFailProb: 0.1}).Enabled() {
		t.Fatal("transient-only config reports disabled")
	}
}

func TestValidate(t *testing.T) {
	good := Config{NodeMTBF: 5, TaskFailProb: 0.2, StragglerMTBF: 7}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NodeMTBF: -1},
		{TaskFailProb: 1.0},
		{TaskFailProb: -0.1},
		{NodeMTBF: 5}, // MTTR unset without WithDefaults
		{MaxAttempts: -2, TaskFailProb: 0.1},
		{RetryBackoff: -1, MaxAttempts: 1},
		{StragglerFactor: 1.5, MaxAttempts: 1, StragglerMTBF: 1, StragglerDuration: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestBackoffDoubles(t *testing.T) {
	c := Config{RetryBackoff: 0.1}
	want := []float64{0.1, 0.2, 0.4, 0.8}
	for n := 1; n <= 4; n++ {
		if got := c.Backoff(n); got != want[n-1] {
			t.Errorf("Backoff(%d) = %v, want %v", n, got, want[n-1])
		}
	}
}

// crashLog runs an injector for a fixed horizon and records every crash
// and repair instant.
func crashLog(t *testing.T, cfg Config, horizon float64) []float64 {
	t.Helper()
	eng := sim.New()
	inj := NewInjector(eng, cfg.WithDefaults(), 4)
	var log []float64
	inj.OnCrash = func(n int) { log = append(log, eng.Now()) }
	inj.OnRepair = func(n int) { log = append(log, -eng.Now()) }
	inj.Start()
	eng.Schedule(horizon, inj.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

func TestCrashScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 3, NodeMTBF: 1.0, NodeMTTR: 0.2}
	a := crashLog(t, cfg, 50)
	b := crashLog(t, cfg, 50)
	if len(a) == 0 {
		t.Fatal("no crashes in 50 virtual seconds at MTBF 1")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at %v vs %v", i, a[i], b[i])
		}
	}
	c := crashLog(t, Config{Seed: 4, NodeMTBF: 1.0, NodeMTTR: 0.2}, 50)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced an identical crash schedule")
	}
}

func TestCrashFlipsStateAndEpoch(t *testing.T) {
	eng := sim.New()
	inj := NewInjector(eng, Config{Seed: 1, NodeMTBF: 1.0, NodeMTTR: 0.2}.WithDefaults(), 2)
	for n := 0; n < 2; n++ {
		if !inj.Up(n) || inj.Epoch(n) != 0 || inj.Speed(n) != 1 {
			t.Fatal("fresh injector not nominal")
		}
	}
	crashed, repaired := -1, -1
	inj.OnCrash = func(n int) {
		if crashed < 0 {
			crashed = n
			if inj.Up(n) {
				t.Error("node still up inside OnCrash")
			}
			if inj.Epoch(n) != 1 {
				t.Errorf("epoch = %d at first crash, want 1", inj.Epoch(n))
			}
			if !inj.AnyUp() {
				t.Error("one crash took AnyUp to false on a 2-node cluster")
			}
		}
	}
	inj.OnRepair = func(n int) {
		if repaired < 0 {
			repaired = n
			if !inj.Up(n) {
				t.Error("node still down inside OnRepair")
			}
		}
	}
	inj.Start()
	eng.Schedule(20, inj.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if crashed < 0 || repaired < 0 {
		t.Fatal("no crash/repair cycle observed in 20 virtual seconds")
	}
	if inj.Crashes() == 0 {
		t.Fatal("crash counter stayed zero")
	}
	for n := 0; n < 2; n++ {
		if uint64(0) == inj.Epoch(n) && inj.Crashes() >= 4 {
			// With several crashes across 2 nodes both epochs very likely
			// moved; tolerate a lopsided draw but flag the common case.
			t.Logf("node %d never crashed (%d total crashes)", n, inj.Crashes())
		}
	}
}

func TestStragglerEpisodesAndStop(t *testing.T) {
	eng := sim.New()
	cfg := Config{Seed: 9, StragglerMTBF: 1.0, StragglerDuration: 0.5, StragglerFactor: 0.25}
	inj := NewInjector(eng, cfg.WithDefaults(), 3)
	sawSlow := false
	probe := func() {
		for n := 0; n < 3; n++ {
			if s := inj.Speed(n); s == 0.25 {
				sawSlow = true
			} else if s != 1 {
				t.Errorf("speed = %v, want 1 or 0.25", s)
			}
		}
	}
	inj.Start()
	for i := 1; i <= 100; i++ {
		eng.Schedule(float64(i)*0.2, probe)
	}
	eng.Schedule(21, inj.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawSlow {
		t.Fatal("never observed a straggler slowdown in 20 virtual seconds")
	}
	if inj.Episodes() == 0 {
		t.Fatal("episode counter stayed zero")
	}
	// Stop must cancel pending events: the engine drained, so Run returned.
	// A second Stop is a no-op.
	inj.Stop()
}

func TestAttemptFailsRespectsProb(t *testing.T) {
	eng := sim.New()
	off := NewInjector(eng, Config{Seed: 1}.WithDefaults(), 1)
	for i := 0; i < 100; i++ {
		if fail, _ := off.AttemptFails(); fail {
			t.Fatal("zero TaskFailProb produced a failure")
		}
	}
	on := NewInjector(eng, Config{Seed: 1, TaskFailProb: 0.5}.WithDefaults(), 1)
	fails := 0
	for i := 0; i < 1000; i++ {
		if fail, frac := on.AttemptFails(); fail {
			fails++
			if frac < 0 || frac >= 1 {
				t.Fatalf("failure fraction %v outside [0,1)", frac)
			}
		}
	}
	if fails < 400 || fails > 600 {
		t.Fatalf("%d/1000 failures at p=0.5", fails)
	}
}
