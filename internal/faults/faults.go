// Package faults injects deterministic, seeded failures into a simulated
// run: node crash/restart cycles (MTBF/MTTR), transient per-task failures,
// and straggler slowdown episodes. All fault events are driven by the
// engine's virtual clock and an explicitly seeded PCG stream, so a faulty
// run is exactly as reproducible as a clean one — same seed, same
// byte-identical trace.
//
// The injector only flips state (node up/down epochs, per-node speed
// factors) and fires hooks; recovery policy — retrying failed attempts,
// re-queueing tasks stranded on a dead node, lineage recomputation of lost
// blocks — lives in the runtime, which observes the state at task stage
// boundaries. This mirrors how a COMPSs-style master detects worker loss:
// not preemptively, but when a dispatched task's heartbeat or result is
// due.
package faults

import (
	"fmt"
	"math/rand/v2"

	"wfsim/internal/sim"
)

// Config parameterizes the failure model. The zero value disables
// injection entirely (Enabled reports false) and the runtime's fault
// machinery is a strict no-op.
type Config struct {
	// Seed feeds the fault PCG streams. Runs with equal seeds and configs
	// produce identical fault schedules.
	Seed uint64
	// NodeMTBF is the mean time between node crashes, per node, in
	// virtual seconds (exponential). Zero disables crashes.
	NodeMTBF float64
	// NodeMTTR is the mean node repair time in virtual seconds
	// (exponential). A crashed node loses its local disk contents; on
	// repair it rejoins empty. Defaults to NodeMTBF/10.
	NodeMTTR float64
	// TaskFailProb is the probability that one task attempt suffers a
	// transient failure (bad allocation, flaky kernel, killed worker
	// process) partway through its compute stage. Zero disables.
	TaskFailProb float64
	// MaxAttempts caps how many consecutive transient failures a single
	// task may suffer before the run aborts with an error; a successful
	// attempt resets the count. Defaults to 4.
	MaxAttempts int
	// RetryBackoff is the base delay before re-queueing a transiently
	// failed task; it doubles per accumulated failure. Defaults to 50 ms.
	RetryBackoff float64
	// StragglerMTBF is the mean time between straggler episodes per node
	// (exponential). Zero disables stragglers.
	StragglerMTBF float64
	// StragglerDuration is the mean episode length (exponential).
	// Defaults to StragglerMTBF/10.
	StragglerDuration float64
	// StragglerFactor is the node's relative compute speed during an
	// episode (0 < factor ≤ 1). Defaults to 0.25.
	StragglerFactor float64
}

// Enabled reports whether any fault mechanism is active.
func (c Config) Enabled() bool {
	return c.NodeMTBF > 0 || c.TaskFailProb > 0 || c.StragglerMTBF > 0
}

// WithDefaults fills unset tuning knobs with their documented defaults.
func (c Config) WithDefaults() Config {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 0.05
	}
	if c.NodeMTBF > 0 && c.NodeMTTR == 0 {
		c.NodeMTTR = c.NodeMTBF / 10
	}
	if c.StragglerMTBF > 0 && c.StragglerDuration == 0 {
		c.StragglerDuration = c.StragglerMTBF / 10
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 0.25
	}
	return c
}

// Validate checks the (defaults-applied) config for usable values.
func (c Config) Validate() error {
	if c.NodeMTBF < 0 || c.NodeMTTR < 0 || c.StragglerMTBF < 0 || c.StragglerDuration < 0 {
		return fmt.Errorf("faults: negative time constant in %+v", c)
	}
	if c.TaskFailProb < 0 || c.TaskFailProb >= 1 {
		return fmt.Errorf("faults: TaskFailProb %v outside [0, 1)", c.TaskFailProb)
	}
	if c.NodeMTBF > 0 && c.NodeMTTR <= 0 {
		return fmt.Errorf("faults: NodeMTBF %v requires a positive NodeMTTR", c.NodeMTBF)
	}
	if c.MaxAttempts < 1 {
		return fmt.Errorf("faults: MaxAttempts %d < 1", c.MaxAttempts)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("faults: negative RetryBackoff %v", c.RetryBackoff)
	}
	if c.StragglerFactor <= 0 || c.StragglerFactor > 1 {
		return fmt.Errorf("faults: StragglerFactor %v outside (0, 1]", c.StragglerFactor)
	}
	return nil
}

// CheckRanges rejects structurally invalid values even on a disabled
// config. Enabled treats only strictly positive rates as active, so a
// negative MTBF or failure probability used to silently disable injection
// — a config typo the caller almost certainly wants surfaced. Unlike
// Validate it accepts unset (zero) tuning knobs: WithDefaults has not run
// yet.
func (c Config) CheckRanges() error {
	if c.NodeMTBF < 0 || c.NodeMTTR < 0 || c.StragglerMTBF < 0 || c.StragglerDuration < 0 {
		return fmt.Errorf("faults: negative time constant in %+v", c)
	}
	if c.TaskFailProb < 0 || c.TaskFailProb >= 1 {
		return fmt.Errorf("faults: TaskFailProb %v outside [0, 1)", c.TaskFailProb)
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("faults: negative MaxAttempts %d", c.MaxAttempts)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("faults: negative RetryBackoff %v", c.RetryBackoff)
	}
	if c.StragglerFactor < 0 || c.StragglerFactor > 1 {
		return fmt.Errorf("faults: StragglerFactor %v outside [0, 1]", c.StragglerFactor)
	}
	return nil
}

// Backoff returns the re-queue delay after the n-th transient failure of a
// task (n ≥ 1): RetryBackoff doubling per failure.
func (c Config) Backoff(n int) float64 {
	d := c.RetryBackoff
	for ; n > 1; n-- {
		d *= 2
	}
	return d
}

// Injector owns the fault state of one simulated run. All methods run in
// engine context (single-threaded virtual time); it is not safe for
// concurrent use.
type Injector struct {
	cfg   Config
	eng   *sim.Engine
	nodes int

	// Independent PCG streams so the crash schedule does not shift when
	// the workload (and hence the per-attempt draw count) changes.
	crashRng *rand.Rand
	taskRng  *rand.Rand
	slowRng  *rand.Rand

	up      []bool
	epoch   []uint64 // bumped on every crash; attempts compare at stage boundaries
	slow    []float64
	upCount int

	crashes  int
	episodes int

	pending []sim.Event // one crash-cycle and one straggler-cycle event per node
	stopped bool

	// OnCrash and OnRepair fire engine-side at the crash/repair instant,
	// after the injector's own state flip. The runtime uses them to
	// invalidate storage and to drain stalled tasks.
	OnCrash  func(node int)
	OnRepair func(node int)
}

// NewInjector builds an injector for a cluster of n nodes. cfg is used
// as given — apply WithDefaults and Validate first.
func NewInjector(eng *sim.Engine, cfg Config, n int) *Injector {
	inj := &Injector{
		cfg: cfg, eng: eng, nodes: n,
		crashRng: rand.New(rand.NewPCG(cfg.Seed, 0xc4a5)),
		taskRng:  rand.New(rand.NewPCG(cfg.Seed, 0x7a5f)),
		slowRng:  rand.New(rand.NewPCG(cfg.Seed, 0x510e)),
		up:       make([]bool, n),
		epoch:    make([]uint64, n),
		slow:     make([]float64, n),
		upCount:  n,
		pending:  make([]sim.Event, 2*n),
	}
	for i := 0; i < n; i++ {
		inj.up[i] = true
		inj.slow[i] = 1
	}
	return inj
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Start schedules the first crash and straggler episode of every node.
func (i *Injector) Start() {
	for n := 0; n < i.nodes; n++ {
		if i.cfg.NodeMTBF > 0 {
			i.scheduleCrash(n)
		}
		if i.cfg.StragglerMTBF > 0 {
			i.scheduleEpisode(n)
		}
	}
}

// Stop cancels every pending fault event so the engine can drain. Called
// by the runtime at workflow completion (or on a fatal task failure);
// without it the crash/repair cycles would keep the clock alive forever.
func (i *Injector) Stop() {
	if i.stopped {
		return
	}
	i.stopped = true
	for _, ev := range i.pending {
		ev.Cancel()
	}
}

func (i *Injector) scheduleCrash(n int) {
	d := i.crashRng.ExpFloat64() * i.cfg.NodeMTBF
	i.pending[2*n] = i.eng.Schedule(d, func() { i.crash(n) })
}

func (i *Injector) crash(n int) {
	i.up[n] = false
	i.upCount--
	i.epoch[n]++
	i.crashes++
	if i.OnCrash != nil {
		i.OnCrash(n)
	}
	d := i.crashRng.ExpFloat64() * i.cfg.NodeMTTR
	i.pending[2*n] = i.eng.Schedule(d, func() { i.repair(n) })
}

func (i *Injector) repair(n int) {
	i.up[n] = true
	i.upCount++
	if i.OnRepair != nil {
		i.OnRepair(n)
	}
	i.scheduleCrash(n)
}

func (i *Injector) scheduleEpisode(n int) {
	d := i.slowRng.ExpFloat64() * i.cfg.StragglerMTBF
	i.pending[2*n+1] = i.eng.Schedule(d, func() { i.slowStart(n) })
}

func (i *Injector) slowStart(n int) {
	i.slow[n] = i.cfg.StragglerFactor
	i.episodes++
	d := i.slowRng.ExpFloat64() * i.cfg.StragglerDuration
	i.pending[2*n+1] = i.eng.Schedule(d, func() { i.slowEnd(n) })
}

func (i *Injector) slowEnd(n int) {
	i.slow[n] = 1
	i.scheduleEpisode(n)
}

// UpNodes returns the live up/down slice, suitable as a sched.View.Up
// reference: the scheduler always sees the current instant's state.
func (i *Injector) UpNodes() []bool { return i.up }

// Up reports whether node n is currently up.
func (i *Injector) Up(n int) bool { return i.up[n] }

// AnyUp reports whether at least one node is up.
func (i *Injector) AnyUp() bool { return i.upCount > 0 }

// Epoch returns node n's restart epoch. An attempt captures the epoch at
// placement; a mismatch at a later stage boundary means the node crashed
// under the task.
func (i *Injector) Epoch(n int) uint64 { return i.epoch[n] }

// Speed returns node n's current compute-speed factor (1 nominal,
// StragglerFactor during an episode).
func (i *Injector) Speed(n int) float64 { return i.slow[n] }

// AttemptFails draws one task attempt's transient-failure outcome: whether
// it fails and, if so, the fraction of its compute stage completed before
// the failure strikes.
func (i *Injector) AttemptFails() (bool, float64) {
	if i.cfg.TaskFailProb == 0 {
		return false, 0
	}
	if i.taskRng.Float64() >= i.cfg.TaskFailProb {
		return false, 0
	}
	return true, i.taskRng.Float64()
}

// Crashes returns the number of node crashes injected so far.
func (i *Injector) Crashes() int { return i.crashes }

// Episodes returns the number of straggler episodes started so far.
func (i *Injector) Episodes() int { return i.episodes }
