package tables

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Title", "col", "longer column")
	tb.AddRow("a", "b")
	tb.AddRow("longer cell", "c")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("missing title: %q", lines[0])
	}
	// Header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatal("missing separator")
	}
	// All data lines padded to equal width for the first column.
	if !strings.HasPrefix(lines[3], "a          ") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestTableExtraCells(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x", "overflow")
	if !strings.Contains(tb.String(), "overflow") {
		t.Fatal("overflow cell dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRowf("s", 3.14159, 42)
	out := tb.String()
	for _, want := range []string{"s", "3.142", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		12345:      "12345",
		42.5:       "42.5",
		3.14159:    "3.142",
		0.00042:    "4.20e-04",
		math.NaN(): "-",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSpeedup(t *testing.T) {
	// The paper's convention: below-1 speedups render negative
	// ("-1.20x" = GPU 1.2x slower).
	cases := map[float64]string{
		5.69:    "5.69x",
		1.0:     "1.00x",
		1 / 1.2: "-1.20x",
		0:       "-",
	}
	for in, want := range cases {
		if got := FormatSpeedup(in); got != want {
			t.Errorf("FormatSpeedup(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatSpeedup(math.NaN()) != "-" {
		t.Error("NaN speedup should render as -")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(0.001, 10, 10); got != "#" {
		t.Fatalf("small Bar = %q, want single #", got)
	}
	if got := Bar(20, 10, 10); len(got) != 10 {
		t.Fatalf("overflow Bar len = %d", len(got))
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}
