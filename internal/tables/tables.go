// Package tables renders experiment results as aligned ASCII tables and
// simple series charts, the textual equivalent of the paper's figures.
package tables

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted cells, one per (format, value) use of
// fmt.Sprintf with a single %v-style verb each.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders a float compactly: 3 significant-ish digits with
// magnitude-aware precision, NaN as "-".
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// FormatSpeedup renders a speedup the way the paper's Figure 1 annotates
// it: values below 1 become negative ("-1.20x speedup" means the GPU is
// 1.2× slower).
func FormatSpeedup(s float64) string {
	if math.IsNaN(s) || s == 0 {
		return "-"
	}
	if s >= 1 {
		return fmt.Sprintf("%.2fx", s)
	}
	return fmt.Sprintf("-%.2fx", 1/s)
}

// Bar renders a proportional ASCII bar of at most width characters.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(math.Round(value / max * float64(width)))
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}
