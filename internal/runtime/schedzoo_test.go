package runtime

import (
	"testing"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/faults"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// newPolicies are the lookahead and work-stealing schedulers this file
// pins: determinism and rank-table correctness beyond the smoke coverage
// the shared policy loops give every member of sched.Policies().
var newPolicies = []sched.Policy{sched.HEFT, sched.BLevel, sched.MinMin, sched.WorkSteal}

// TestNewSchedulersDeterministic runs every new scheduler twice on an
// identical configuration — fault-free and under an ext4-style failure
// schedule, on a heterogeneous cluster — and requires byte-identical
// traces: the simulated clock is the only clock, so a rerun must replay
// exactly.
func TestNewSchedulersDeterministic(t *testing.T) {
	spec := cluster.Minotauro()
	speeds := make([]float64, spec.Nodes)
	for i := range speeds {
		speeds[i] = 1.0
		if i%2 == 1 {
			speeds[i] = 0.6
		}
	}
	for _, pol := range newPolicies {
		for _, faulty := range []bool{false, true} {
			cfg := SimConfig{
				Cluster: spec, Policy: pol, Device: costmodel.CPU,
				Storage: storage.Local, NodeSpeed: speeds, Seed: 11,
			}
			if faulty {
				cfg.Faults = faults.Config{
					Seed:     19,
					NodeMTBF: 50, NodeMTTR: 5,
					TaskFailProb: 0.05, MaxAttempts: 25,
					StragglerMTBF: 100,
				}
			}
			a, err := RunSim(gridWorkflow(4, 16, testProf), cfg)
			if err != nil {
				t.Fatalf("%v faulty=%v: first run: %v", pol, faulty, err)
			}
			b, err := RunSim(gridWorkflow(4, 16, testProf), cfg)
			if err != nil {
				t.Fatalf("%v faulty=%v: second run: %v", pol, faulty, err)
			}
			if a.Makespan != b.Makespan {
				t.Errorf("%v faulty=%v: makespans differ: %v vs %v",
					pol, faulty, a.Makespan, b.Makespan)
			}
			if ta, tb := traceCSV(t, a.Collector), traceCSV(t, b.Collector); ta != tb {
				t.Errorf("%v faulty=%v: traces diverge between identical runs", pol, faulty)
			}
		}
	}
}

// TestRankTablesProperties pins the runtime-side lookahead tables against
// the sched-package rank primitives: the b-level table is exactly
// sched.BLevels over the task estimates; HEFT on a homogeneous cluster
// with shared storage (no transfer pricing) reduces to the same table;
// heterogeneity and local storage only scale or raise ranks; non-lookahead
// policies carry no tables at all.
func TestRankTablesProperties(t *testing.T) {
	wf := gridWorkflow(4, 16, testProf)
	base := SimConfig{Policy: sched.BLevel, Device: costmodel.CPU, Storage: storage.Shared}
	base = base.withDefaults()

	blRanks, blCosts := rankTables(wf, &base)
	if blRanks == nil || blCosts == nil {
		t.Fatal("b-level tables missing")
	}
	want := sched.BLevels(wf.Graph, func(task *dag.Task) float64 {
		return taskEstimate(wf, task, base.Params, base.Device)
	})
	for id := range want {
		if blRanks[id] != want[id] {
			t.Fatalf("b-level rank[%d] = %v, sched.BLevels says %v", id, blRanks[id], want[id])
		}
		if blCosts[id] <= 0 {
			t.Fatalf("cost[%d] = %v, want positive", id, blCosts[id])
		}
	}

	heft := base
	heft.Policy = sched.HEFT
	hRanks, hCosts := rankTables(wf, &heft)
	for id := range want {
		if hRanks[id] != blRanks[id] {
			t.Fatalf("homogeneous shared-storage HEFT rank[%d] = %v, want b-level %v",
				id, hRanks[id], blRanks[id])
		}
		if hCosts[id] != blCosts[id] {
			t.Fatalf("HEFT cost[%d] diverges from b-level cost", id)
		}
	}

	// A uniformly slower cluster scales every rank by the same factor —
	// the priority order is invariant under homogeneous speed.
	slow := heft
	slow.NodeSpeed = make([]float64, slow.Cluster.Nodes)
	for i := range slow.NodeSpeed {
		slow.NodeSpeed[i] = 0.5
	}
	sRanks, _ := rankTables(wf, &slow)
	for id := range want {
		if diff := sRanks[id] - 2*hRanks[id]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("half-speed rank[%d] = %v, want %v", id, sRanks[id], 2*hRanks[id])
		}
	}

	// Local storage prices producer-to-consumer transfers: ranks can only
	// go up relative to the unpriced table.
	local := heft
	local.Storage = storage.Local
	lRanks, _ := rankTables(wf, &local)
	raised := false
	for id := range want {
		if lRanks[id] < hRanks[id] {
			t.Fatalf("local-storage rank[%d] = %v below unpriced %v", id, lRanks[id], hRanks[id])
		}
		if lRanks[id] > hRanks[id] {
			raised = true
		}
	}
	if !raised {
		t.Error("local-storage transfer pricing raised no rank on a multi-level workflow")
	}

	mm := base
	mm.Policy = sched.MinMin
	mmRanks, mmCosts := rankTables(wf, &mm)
	if mmRanks != nil {
		t.Error("min-min carries a rank table; it orders by cost only")
	}
	if len(mmCosts) != wf.Graph.Len() {
		t.Error("min-min cost table missing")
	}
	for _, pol := range []sched.Policy{sched.FIFO, sched.Locality, sched.LIFO, sched.Random, sched.WorkSteal} {
		c := base
		c.Policy = pol
		if r, co := rankTables(wf, &c); r != nil || co != nil {
			t.Errorf("%v carries lookahead tables", pol)
		}
	}
}
